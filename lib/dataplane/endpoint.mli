(** SCION endpoint with multi-path failover (§1, §4.1).

    The endpoint fetches a set of paths once (long path lifetimes make
    this cheap, §4.1), keeps them ordered by preference, and on an SCMP
    link-failure notification immediately switches to the best path not
    containing the failed link — no routing convergence is involved. *)

type t

type stats = {
  sends : int;  (** {!send} calls *)
  delivered : int;  (** sends that ended in [Forwarding.Delivered] *)
  dropped : int;  (** sends that ended in [Forwarding.Dropped] *)
  failovers : int;  (** path switches forced by link-failure SCMPs *)
  resolutions : int;  (** path-set fetches (creation plus {!refresh}es) *)
}
(** Lifetime counters of one endpoint. A send that fails over and then
    delivers counts once under [delivered] and once per switch under
    [failovers], so [delivered + dropped = sends] always holds. *)

val create : Control_service.t -> Forwarding.network -> src:int -> dst:int -> t
(** Resolves the path set at creation time. *)

val available_paths : t -> Fwd_path.t list
(** Paths not (yet) excluded by failure notifications, in preference
    order. *)

val active_path : t -> Fwd_path.t option

val send : t -> ?payload_bytes:int -> now:float -> unit -> Forwarding.result
(** Send one packet on the active path. On a link-failure drop the
    endpoint processes the SCMP message, fails over, and retries on the
    next path — repeatedly if needed — returning the final outcome.
    Failovers are counted in {!failovers}. *)

val failovers : t -> int

val stats : t -> stats
(** Snapshot of the endpoint's lifetime counters. *)

val refresh : t -> unit
(** Re-resolve the path set (e.g., after revocations or new beaconing). *)

val exclude_link : t -> int -> unit
(** Manually mark a link as unusable (as if an SCMP arrived). *)
