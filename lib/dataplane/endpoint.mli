(** SCION endpoint with multi-path failover (§1, §4.1).

    The endpoint fetches a set of paths once (long path lifetimes make
    this cheap, §4.1), keeps them ordered by preference, and on an SCMP
    link-failure notification immediately switches to the best path not
    containing the failed link — no routing convergence is involved. *)

type t

val create : Control_service.t -> Forwarding.network -> src:int -> dst:int -> t
(** Resolves the path set at creation time. *)

val available_paths : t -> Fwd_path.t list
(** Paths not (yet) excluded by failure notifications, in preference
    order. *)

val active_path : t -> Fwd_path.t option

val send : t -> ?payload_bytes:int -> now:float -> unit -> Forwarding.result
(** Send one packet on the active path. On a link-failure drop the
    endpoint processes the SCMP message, fails over, and retries on the
    next path — repeatedly if needed — returning the final outcome.
    Failovers are counted in {!failovers}. *)

val failovers : t -> int

val refresh : t -> unit
(** Re-resolve the path set (e.g., after revocations or new beaconing). *)

val exclude_link : t -> int -> unit
(** Manually mark a link as unusable (as if an SCMP arrived). *)
