type packet = {
  path : Fwd_path.t;
  mutable position : int;
  payload_bytes : int;
}

let packet path ?(payload_bytes = 1000) () = { path; position = 0; payload_bytes }

type drop_reason =
  | Bad_mac of int
  | Expired_hop of int
  | Link_down of int
  | Unauthorized_interface of int
  | Topology_mismatch of int

type result =
  | Delivered of { hops : int; trace : int list }
  | Dropped of { at_as : int; reason : drop_reason; scmp : Scmp.message option }

type network = {
  graph : Graph.t;
  keys : Fwd_keys.t;
  mutable failed_links : int list;
}

let network graph keys = { graph; keys; failed_links = [] }

let fail_link net l =
  if not (List.mem l net.failed_links) then net.failed_links <- l :: net.failed_links

let restore_link net l =
  net.failed_links <- List.filter (fun x -> x <> l) net.failed_links

(* The in/out interfaces of a crossing must be authorised by its proofs:
   interface 0 (local origination/delivery) is always allowed; a
   peering egress is allowed when the link is advertised in a proof. *)
let interface_authorised (c : Fwd_path.crossing) ~iface ~link =
  iface = 0
  || List.exists
       (fun (p : Segment.hop_field) ->
         p.Segment.ingress = iface || p.Segment.egress = iface
         || Array.exists (fun l -> l = link) p.Segment.peers)
       c.Fwd_path.proofs

let validate_crossing net ~now (c : Fwd_path.crossing) =
  let v = c.Fwd_path.as_idx in
  let macs_ok =
    List.for_all
      (fun (p : Segment.hop_field) ->
        Hmac.verify
          ~key:(Fwd_keys.key net.keys p.Segment.as_idx)
          ~tag:p.Segment.mac
          (Segment.mac_payload ~as_idx:p.Segment.as_idx ~if1:p.Segment.ingress
             ~if2:p.Segment.egress ~expiry:p.Segment.expiry))
      c.Fwd_path.proofs
  in
  if not macs_ok then Error (Bad_mac v)
  else if
    List.exists (fun (p : Segment.hop_field) -> now >= p.Segment.expiry) c.Fwd_path.proofs
  then Error (Expired_hop v)
  else if
    not
      (interface_authorised c ~iface:c.Fwd_path.in_if ~link:c.Fwd_path.in_link
      && interface_authorised c ~iface:c.Fwd_path.out_if ~link:c.Fwd_path.out_link)
  then Error (Unauthorized_interface v)
  else Ok ()

let forward net ~now pkt =
  let crossings = pkt.path.Fwd_path.crossings in
  let n = Array.length crossings in
  let rec step i trace =
    if i >= n then
      Delivered { hops = n; trace = List.rev trace }
    else begin
      let c = crossings.(i) in
      let v = c.Fwd_path.as_idx in
      pkt.position <- i;
      match validate_crossing net ~now c with
      | Error reason -> Dropped { at_as = v; reason; scmp = None }
      | Ok () ->
          if c.Fwd_path.out_link < 0 then step (i + 1) (v :: trace)
          else begin
            let l = c.Fwd_path.out_link in
            let lk = Graph.link net.graph l in
            let connects_next =
              i + 1 < n
              &&
              let next = crossings.(i + 1).Fwd_path.as_idx in
              (lk.Graph.a = v && lk.Graph.b = next)
              || (lk.Graph.b = v && lk.Graph.a = next)
            in
            if not connects_next then
              Dropped { at_as = v; reason = Topology_mismatch v; scmp = None }
            else if List.mem l net.failed_links then
              Dropped
                {
                  at_as = v;
                  reason = Link_down l;
                  scmp =
                    Some
                      {
                        Scmp.kind =
                          Scmp.Link_failure
                            {
                              link = l;
                              if_a = lk.Graph.a_if;
                              if_b = lk.Graph.b_if;
                              expiry = now +. Scmp.default_revocation_ttl;
                            };
                        origin_as = v;
                        at = now;
                      };
                }
            else step (i + 1) (v :: trace)
          end
    end
  in
  step 0 []
