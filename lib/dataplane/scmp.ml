type message = { kind : kind; origin_as : int; at : float }

and kind =
  | Link_failure of { link : int }
  | Path_expired
  | Destination_unreachable

let wire_bytes _ = 16 + 64

let pp fmt m =
  let kind_s =
    match m.kind with
    | Link_failure { link } -> Printf.sprintf "link-failure(%d)" link
    | Path_expired -> "path-expired"
    | Destination_unreachable -> "destination-unreachable"
  in
  Format.fprintf fmt "SCMP[%s from AS %d at %.0f]" kind_s m.origin_as m.at
