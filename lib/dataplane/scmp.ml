type message = { kind : kind; origin_as : int; at : float }

and kind =
  | Link_failure of { link : int; if_a : Id.iface; if_b : Id.iface; expiry : float }
  | Path_expired
  | Destination_unreachable

let default_revocation_ttl = 600.0

let header_bytes = 16

let quote_bytes = 64

(* Kind-dependent payload on top of header + quote: a link failure
   names the link (4 B), its interface pair (2 x 2 B) and the
   revocation expiry (8 B); path-expired quotes the expired hop's
   timestamp (8 B); destination-unreachable adds nothing. *)
let payload_bytes = function
  | Link_failure _ -> 4 + 2 + 2 + 8
  | Path_expired -> 8
  | Destination_unreachable -> 0

let wire_bytes m = header_bytes + quote_bytes + payload_bytes m.kind

let pp fmt m =
  let kind_s =
    match m.kind with
    | Link_failure { link; if_a; if_b; expiry } ->
        Printf.sprintf "link-failure(%d if %d<->%d until %.0f)" link if_a if_b expiry
    | Path_expired -> "path-expired"
    | Destination_unreachable -> "destination-unreachable"
  in
  Format.fprintf fmt "SCMP[%s from AS %d at %.0f]" kind_s m.origin_as m.at
