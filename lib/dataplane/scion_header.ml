type header = {
  src : Id.endpoint;
  dst : Id.endpoint;
  payload_len : int;
  path : Fwd_path.t;
}

let version = 1

exception Bad of string

(* --- Writers (big-endian) --- *)

let u8 buf v =
  if v < 0 || v > 0xFF then invalid_arg "Scion_header: u8 out of range";
  Buffer.add_char buf (Char.chr v)

let u16 buf v =
  if v < 0 || v > 0xFFFF then invalid_arg "Scion_header: u16 out of range";
  Buffer.add_char buf (Char.chr (v lsr 8));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let u24 buf v =
  if v < 0 || v > 0xFFFFFF then invalid_arg "Scion_header: u24 out of range";
  Buffer.add_char buf (Char.chr (v lsr 16));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let u32 buf v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Scion_header: u32 out of range";
  u16 buf (v lsr 16);
  u16 buf (v land 0xFFFF)

let u48 buf v =
  if v < 0 || v > 0xFFFFFFFFFFFF then invalid_arg "Scion_header: u48 out of range";
  u24 buf (v lsr 24);
  u24 buf (v land 0xFFFFFF)

let f64 buf v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

(* Signed 24-bit field for link ids, which use -1 as "none". *)
let link24 buf v =
  if v < -1 || v > 0xFFFFFE then invalid_arg "Scion_header: link id out of range";
  u24 buf (if v = -1 then 0xFFFFFF else v)

let bytes_fixed buf s n =
  if String.length s <> n then invalid_arg "Scion_header: bad raw address length";
  Buffer.add_string buf s

(* --- Readers --- *)

type cursor = { data : string; mutable pos : int }

let need c n = if c.pos + n > String.length c.data then raise (Bad "truncated header")

let r_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

(* Explicit lets: OCaml evaluates operator arguments right-to-left, so
   [(r_u8 c lsl 8) lor r_u8 c] would read the bytes in reverse order. *)
let r_u16 c =
  let hi = r_u8 c in
  let lo = r_u8 c in
  (hi lsl 8) lor lo

let r_u24 c =
  let hi = r_u16 c in
  let lo = r_u8 c in
  (hi lsl 8) lor lo

let r_u32 c =
  let hi = r_u16 c in
  let lo = r_u16 c in
  (hi lsl 16) lor lo

let r_u48 c =
  let hi = r_u24 c in
  let lo = r_u24 c in
  (hi lsl 24) lor lo

let r_f64 c =
  let bits = ref 0L in
  for _ = 1 to 8 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (r_u8 c))
  done;
  Int64.float_of_bits !bits

let r_link24 c =
  let v = r_u24 c in
  if v = 0xFFFFFF then -1 else v

let r_bytes c n =
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

(* --- Addresses --- *)

let w_host buf = function
  | Id.Ipv4 v ->
      u8 buf 1;
      u32 buf (Int32.to_int (Int32.logand v 0xFFFFFFFFl) land 0xFFFFFFFF)
  | Id.Ipv6 raw ->
      u8 buf 2;
      bytes_fixed buf raw 16
  | Id.Mac raw ->
      u8 buf 3;
      bytes_fixed buf raw 6

let r_host c =
  match r_u8 c with
  | 1 -> Id.Ipv4 (Int32.of_int (r_u32 c))
  | 2 -> Id.Ipv6 (r_bytes c 16)
  | 3 -> Id.Mac (r_bytes c 6)
  | t -> raise (Bad (Printf.sprintf "unknown host address type %d" t))

let w_endpoint buf (e : Id.endpoint) =
  u16 buf e.Id.host_ia.Id.isd;
  u48 buf e.Id.host_ia.Id.asn;
  w_host buf e.Id.local

let r_endpoint c =
  let isd = r_u16 c in
  let asn = r_u48 c in
  let local = r_host c in
  { Id.host_ia = Id.ia isd asn; local }

(* --- Path --- *)

let combination_tag = function
  | Fwd_path.Up_only -> 0
  | Fwd_path.Down_only -> 1
  | Fwd_path.Core_only -> 2
  | Fwd_path.Up_core -> 3
  | Fwd_path.Core_down -> 4
  | Fwd_path.Up_down -> 5
  | Fwd_path.Up_core_down -> 6
  | Fwd_path.Shortcut -> 7
  | Fwd_path.Peering_shortcut -> 8

let combination_of_tag = function
  | 0 -> Fwd_path.Up_only
  | 1 -> Fwd_path.Down_only
  | 2 -> Fwd_path.Core_only
  | 3 -> Fwd_path.Up_core
  | 4 -> Fwd_path.Core_down
  | 5 -> Fwd_path.Up_down
  | 6 -> Fwd_path.Up_core_down
  | 7 -> Fwd_path.Shortcut
  | 8 -> Fwd_path.Peering_shortcut
  | t -> raise (Bad (Printf.sprintf "unknown path combination tag %d" t))

let w_proof buf (p : Segment.hop_field) =
  u32 buf p.Segment.as_idx;
  u16 buf p.Segment.ingress;
  u16 buf p.Segment.egress;
  link24 buf p.Segment.link_in;
  link24 buf p.Segment.link_out;
  u8 buf (Array.length p.Segment.peers);
  Array.iter (fun l -> u24 buf l) p.Segment.peers;
  f64 buf p.Segment.expiry;
  if String.length p.Segment.mac <> 6 then invalid_arg "Scion_header: MAC must be 6 bytes";
  Buffer.add_string buf p.Segment.mac

let r_proof c =
  let as_idx = r_u32 c in
  let ingress = r_u16 c in
  let egress = r_u16 c in
  let link_in = r_link24 c in
  let link_out = r_link24 c in
  let n_peers = r_u8 c in
  let peers = Array.init n_peers (fun _ -> r_u24 c) in
  let expiry = r_f64 c in
  let mac = r_bytes c 6 in
  {
    Segment.as_idx;
    ingress;
    egress;
    link_in;
    link_out;
    peers;
    expiry;
    mac;
  }

let w_crossing buf (cr : Fwd_path.crossing) =
  u32 buf cr.Fwd_path.as_idx;
  u16 buf cr.Fwd_path.in_if;
  u16 buf cr.Fwd_path.out_if;
  link24 buf cr.Fwd_path.in_link;
  link24 buf cr.Fwd_path.out_link;
  u8 buf (List.length cr.Fwd_path.proofs);
  List.iter (w_proof buf) cr.Fwd_path.proofs

let r_crossing c =
  let as_idx = r_u32 c in
  let in_if = r_u16 c in
  let out_if = r_u16 c in
  let in_link = r_link24 c in
  let out_link = r_link24 c in
  let n = r_u8 c in
  let proofs = List.init n (fun _ -> r_proof c) in
  { Fwd_path.as_idx; in_if; out_if; in_link; out_link; proofs }

let encode h =
  let buf = Buffer.create 128 in
  u8 buf version;
  u16 buf h.payload_len;
  w_endpoint buf h.src;
  w_endpoint buf h.dst;
  u8 buf (combination_tag h.path.Fwd_path.combination);
  u8 buf (Array.length h.path.Fwd_path.crossings);
  Array.iter (w_crossing buf) h.path.Fwd_path.crossings;
  u8 buf (Array.length h.path.Fwd_path.links);
  Array.iter (fun l -> u24 buf l) h.path.Fwd_path.links;
  Buffer.contents buf

let decode s =
  try
    let c = { data = s; pos = 0 } in
    let v = r_u8 c in
    if v <> version then raise (Bad (Printf.sprintf "unsupported version %d" v));
    let payload_len = r_u16 c in
    let src = r_endpoint c in
    let dst = r_endpoint c in
    let combination = combination_of_tag (r_u8 c) in
    let n_cross = r_u8 c in
    let crossings = Array.init n_cross (fun _ -> r_crossing c) in
    let n_links = r_u8 c in
    let links = Array.init n_links (fun _ -> r_u24 c) in
    if c.pos <> String.length s then raise (Bad "trailing bytes");
    Ok { src; dst; payload_len; path = { Fwd_path.crossings; links; combination } }
  with Bad msg -> Error msg

let encoded_size h = String.length (encode h)
