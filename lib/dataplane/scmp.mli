(** SCION Control Message Protocol messages (§4.1).

    A border router observing a failed link notifies affected sources
    with an SCMP message; endpoints immediately switch to an alternate
    path not containing the failed link. *)

type message = {
  kind : kind;
  origin_as : int;  (** AS of the reporting border router *)
  at : float;
}

and kind =
  | Link_failure of { link : int }
  | Path_expired
  | Destination_unreachable

val wire_bytes : message -> int
(** SCMP messages are small (64-byte quote of the offending packet plus
    a fixed header). *)

val pp : Format.formatter -> message -> unit
