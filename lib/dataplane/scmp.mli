(** SCION Control Message Protocol messages (§4.1).

    A border router observing a failed link notifies affected sources
    with an SCMP message; endpoints immediately switch to an alternate
    path not containing the failed link. A link-failure notification
    doubles as a path revocation: it names the failed link by its
    interface pair and carries an expiry after which the revocation
    lapses and the link may be used again (§4.1, "Path Revocations"). *)

type message = {
  kind : kind;
  origin_as : int;  (** AS of the reporting border router *)
  at : float;
}

and kind =
  | Link_failure of {
      link : int;  (** failed link id *)
      if_a : Id.iface;  (** interface on the link's [a] endpoint *)
      if_b : Id.iface;  (** interface on the link's [b] endpoint *)
      expiry : float;  (** revocation expiry (absolute time) *)
    }
  | Path_expired
  | Destination_unreachable

val default_revocation_ttl : float
(** How long a link-failure revocation stays active before the link may
    be retried: 600 s (one beaconing interval). *)

val header_bytes : int
(** Fixed SCMP header (type/code/checksum plus the SCION address
    header), 16 bytes. *)

val quote_bytes : int
(** The offending-packet quote every SCMP message carries, 64 bytes. *)

val wire_bytes : message -> int
(** On-the-wire size of the message: the fixed {!header_bytes} and
    {!quote_bytes} plus a kind-dependent payload — a link-failure
    notification additionally carries the link id, its interface pair
    and the revocation expiry; a path-expired notification carries the
    expired hop's timestamp; destination-unreachable carries nothing
    beyond the quote. *)

val pp : Format.formatter -> message -> unit
