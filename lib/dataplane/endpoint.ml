type stats = {
  sends : int;
  delivered : int;
  dropped : int;
  failovers : int;
  resolutions : int;
}

type t = {
  cs : Control_service.t;
  net : Forwarding.network;
  src : int;
  dst : int;
  mutable paths : Fwd_path.t list;
  mutable excluded_links : int list;
  mutable failover_count : int;
  mutable send_count : int;
  mutable delivered_count : int;
  mutable dropped_count : int;
  mutable resolution_count : int;
}

let resolve t =
  t.paths <- Control_service.resolve t.cs ~src:t.src ~dst:t.dst;
  t.resolution_count <- t.resolution_count + 1

let create cs net ~src ~dst =
  let t =
    {
      cs;
      net;
      src;
      dst;
      paths = [];
      excluded_links = [];
      failover_count = 0;
      send_count = 0;
      delivered_count = 0;
      dropped_count = 0;
      resolution_count = 0;
    }
  in
  resolve t;
  t

let usable t (p : Fwd_path.t) =
  not (List.exists (fun l -> Fwd_path.contains_link p l) t.excluded_links)

let available_paths t = List.filter (usable t) t.paths

let active_path t = match available_paths t with [] -> None | p :: _ -> Some p

let exclude_link t l =
  if not (List.mem l t.excluded_links) then t.excluded_links <- l :: t.excluded_links

let failovers t = t.failover_count

let stats t =
  {
    sends = t.send_count;
    delivered = t.delivered_count;
    dropped = t.dropped_count;
    failovers = t.failover_count;
    resolutions = t.resolution_count;
  }

let refresh t =
  resolve t;
  t.excluded_links <- []

let send t ?(payload_bytes = 1000) ~now () =
  t.send_count <- t.send_count + 1;
  let record = function
    | Forwarding.Delivered _ as r ->
        t.delivered_count <- t.delivered_count + 1;
        r
    | Forwarding.Dropped _ as r ->
        t.dropped_count <- t.dropped_count + 1;
        r
  in
  let rec attempt () =
    match active_path t with
    | None ->
        record
          (Forwarding.Dropped
             {
               at_as = t.src;
               reason = Forwarding.Link_down (-1);
               scmp =
                 Some
                   {
                     Scmp.kind = Scmp.Destination_unreachable;
                     origin_as = t.src;
                     at = now;
                   };
             })
    | Some path -> (
        let pkt = Forwarding.packet path ~payload_bytes () in
        match Forwarding.forward t.net ~now pkt with
        | Forwarding.Dropped
            { scmp = Some { Scmp.kind = Scmp.Link_failure { link; _ }; _ }; _ } ->
            (* Fast failover: drop every path using the failed link and
               retry immediately (§4.1). *)
            exclude_link t link;
            t.failover_count <- t.failover_count + 1;
            attempt ()
        | other -> record other)
  in
  attempt ()
