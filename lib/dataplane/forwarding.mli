(** Border-router packet forwarding (§2.3).

    Routers are stateless: each crossing of a forwarding path is
    validated against the AS's forwarding key (hop-field MAC + expiry)
    and against the topology (the claimed interfaces must belong to the
    traversed links). A failed link triggers an SCMP notification back
    to the source (§4.1, Path Revocations). *)

type packet = {
  path : Fwd_path.t;
  mutable position : int;  (** index of the crossing being processed *)
  payload_bytes : int;
}

val packet : Fwd_path.t -> ?payload_bytes:int -> unit -> packet

type drop_reason =
  | Bad_mac of int  (** AS where validation failed *)
  | Expired_hop of int
  | Link_down of int  (** link id *)
  | Unauthorized_interface of int  (** AS where in/out did not match proofs *)
  | Topology_mismatch of int

type result =
  | Delivered of { hops : int; trace : int list }  (** AS trace src→dst *)
  | Dropped of { at_as : int; reason : drop_reason; scmp : Scmp.message option }

type network = {
  graph : Graph.t;
  keys : Fwd_keys.t;
  mutable failed_links : int list;
}

val network : Graph.t -> Fwd_keys.t -> network

val fail_link : network -> int -> unit
(** Mark a link as failed; routers adjacent to it emit SCMP messages
    when packets try to cross it. *)

val restore_link : network -> int -> unit

val forward : network -> now:float -> packet -> result
(** Walk the packet across the network, validating each crossing. *)
