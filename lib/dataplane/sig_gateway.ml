type entry = { prefix : int32; prefix_len : int; as_idx : int }

type stats = {
  packets_encapsulated : int;
  encapsulation_overhead_bytes : int;
  no_mapping_drops : int;
}

type t = {
  cs : Control_service.t;
  net : Forwarding.network;
  local_as : int;
  mutable asmap : entry list; (* kept sorted by descending prefix length *)
  endpoints : (int, Endpoint.t) Hashtbl.t; (* per remote AS *)
  mutable packets_encapsulated : int;
  mutable encapsulation_overhead_bytes : int;
  mutable no_mapping_drops : int;
}

let create cs net ~local_as =
  {
    cs;
    net;
    local_as;
    asmap = [];
    endpoints = Hashtbl.create 16;
    packets_encapsulated = 0;
    encapsulation_overhead_bytes = 0;
    no_mapping_drops = 0;
  }

let add_mapping t ~prefix ~prefix_len ~as_idx =
  if prefix_len < 0 || prefix_len > 32 then
    invalid_arg "Sig_gateway.add_mapping: prefix length outside [0, 32]";
  t.asmap <-
    List.sort
      (fun a b -> compare b.prefix_len a.prefix_len)
      ({ prefix; prefix_len; as_idx } :: t.asmap)

let matches ip e =
  if e.prefix_len = 0 then true
  else begin
    let shift = 32 - e.prefix_len in
    Int32.shift_right_logical ip shift
    = Int32.shift_right_logical e.prefix shift
  end

let lookup t ip =
  match List.find_opt (matches ip) t.asmap with
  | Some e -> Some e.as_idx
  | None -> None

(* Common header (12) + src/dst IA + host addresses (24) + per-segment
   info fields and 12-byte hop fields, approximating the SCION header
   layout. *)
let scion_header_bytes ~path_hops = 12 + 24 + 8 + (12 * path_hops)

type send_error =
  | No_mapping
  | No_path
  | Forwarding_failed of Forwarding.result

let endpoint t remote =
  match Hashtbl.find_opt t.endpoints remote with
  | Some e -> e
  | None ->
      let e = Endpoint.create t.cs t.net ~src:t.local_as ~dst:remote in
      Hashtbl.replace t.endpoints remote e;
      e

let send_ip t ~now ~dst_ip ~payload_bytes =
  match lookup t dst_ip with
  | None ->
      t.no_mapping_drops <- t.no_mapping_drops + 1;
      Error No_mapping
  | Some remote -> (
      let ep = endpoint t remote in
      match Endpoint.active_path ep with
      | None -> Error No_path
      | Some path -> (
          let overhead = scion_header_bytes ~path_hops:(Fwd_path.length path) in
          match Endpoint.send ep ~payload_bytes:(payload_bytes + overhead) ~now () with
          | Forwarding.Delivered _ as r ->
              t.packets_encapsulated <- t.packets_encapsulated + 1;
              t.encapsulation_overhead_bytes <-
                t.encapsulation_overhead_bytes + overhead;
              Ok r
          | other -> Error (Forwarding_failed other)))

let stats t =
  {
    packets_encapsulated = t.packets_encapsulated;
    encapsulation_overhead_bytes = t.encapsulation_overhead_bytes;
    no_mapping_drops = t.no_mapping_drops;
  }
