(** SCION packet header wire format.

    A byte-level encoding of the packet-carried forwarding state: the
    common header (version, header/payload lengths), the address header
    (source and destination [(ISD, AS)] plus IPv4 hosts), and the path —
    every AS crossing with its interfaces, traversed links and hop-field
    proofs (interface pair, expiry, 6-byte MAC). Big-endian throughout.

    The decoder is total: malformed input yields [Error], never an
    exception, and a decoded header re-encodes to the identical bytes. *)

type header = {
  src : Id.endpoint;
  dst : Id.endpoint;
  payload_len : int;
  path : Fwd_path.t;
}

val encode : header -> string
(** Serialise; raises [Invalid_argument] if a field exceeds its wire
    range (interface ids are 16-bit, link ids 24-bit, AS crossings and
    proofs 8-bit counts, payload length 16-bit). *)

val decode : string -> (header, string) result
(** Parse a header produced by {!encode}; trailing bytes are rejected. *)

val encoded_size : header -> int
(** Exact wire size of {!encode}'s output. *)

val version : int
(** Wire-format version tag included in the common header. *)
