(** SCION-IP Gateway (SIG, §3.4).

    The SIG gives legacy IP hosts transparent access to the SCION
    network: it maps the destination IP address to a SCION AS through
    its ASMap table, fetches paths from the control service on the
    hosts' behalf, encapsulates the IP packet in a SCION header, and
    routes it via a border router. A carrier-grade SIG (CGSIG) is the
    same machinery aggregating many customer networks. *)

type t

val create : Control_service.t -> Forwarding.network -> local_as:int -> t

val add_mapping : t -> prefix:int32 -> prefix_len:int -> as_idx:int -> unit
(** Insert an ASMap entry (IPv4 prefix → SCION AS). Raises
    [Invalid_argument] for prefix lengths outside [\[0, 32\]]. *)

val lookup : t -> int32 -> int option
(** Longest-prefix-match against the ASMap. *)

type send_error =
  | No_mapping  (** destination IP not in the ASMap *)
  | No_path  (** control service returned no path *)
  | Forwarding_failed of Forwarding.result

val send_ip :
  t -> now:float -> dst_ip:int32 -> payload_bytes:int -> (Forwarding.result, send_error) result
(** Encapsulate one IP packet and forward it. The SCION encapsulation
    overhead is accounted in {!stats}. *)

type stats = {
  packets_encapsulated : int;
  encapsulation_overhead_bytes : int;
  no_mapping_drops : int;
}

val stats : t -> stats

val scion_header_bytes : path_hops:int -> int
(** Size of the SCION header added by encapsulation: common + address
    headers plus the packed path (info + hop fields). *)
