type t = {
  growth : float;
  log_growth : float;
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  mutable nonpos : int;
  buckets : (int, int ref) Hashtbl.t;
}

let default_growth = 2.0 ** 0.25

let create ?(growth = default_growth) () =
  if not (Float.is_finite growth) || growth <= 1.0 then
    invalid_arg "Histogram.create: growth must be a finite float > 1";
  {
    growth;
    log_growth = log growth;
    count = 0;
    sum = 0.0;
    vmin = infinity;
    vmax = neg_infinity;
    nonpos = 0;
    buckets = Hashtbl.create 32;
  }

let growth t = t.growth

let bucket_of t v = int_of_float (Float.floor (log v /. t.log_growth))

let lower_bound t i = t.growth ** float_of_int i

let observe t v =
  if Float.is_nan v then invalid_arg "Histogram.observe: nan";
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  if v <= 0.0 then t.nonpos <- t.nonpos + 1
  else begin
    let i = bucket_of t v in
    match Hashtbl.find_opt t.buckets i with
    | Some r -> incr r
    | None -> Hashtbl.replace t.buckets i (ref 1)
  end

let count t = t.count

let sum t = t.sum

let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count

let min_value t = if t.count = 0 then nan else t.vmin

let max_value t = if t.count = 0 then nan else t.vmax

let sorted_buckets t =
  Hashtbl.fold (fun i r acc -> (i, !r) :: acc) t.buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q outside [0,1]";
  if t.count = 0 then nan
  else begin
    (* Rank of the requested order statistic, 1-based. *)
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.count)))
    in
    if rank <= t.nonpos then Float.min 0.0 t.vmax |> Float.max t.vmin
    else begin
      let rest = rank - t.nonpos in
      let rec walk acc = function
        | [] -> t.vmax
        | (i, c) :: tl ->
            if acc + c >= rest then
              (* Geometric midpoint of the matched bucket, clamped to
                 the observed range so tail quantiles stay honest. *)
              lower_bound t i *. sqrt t.growth |> Float.max t.vmin |> Float.min t.vmax
            else walk (acc + c) tl
      in
      walk 0 (sorted_buckets t)
    end
  end

let fraction_le t x =
  if t.count = 0 then nan
  else begin
    let inside = ref (if x >= 0.0 then t.nonpos else 0) in
    let covered = ref 0.0 in
    List.iter
      (fun (i, c) ->
        let lo = lower_bound t i and hi = lower_bound t (i + 1) in
        if x >= hi then inside := !inside + c
        else if x > lo then
          (* Interpolate inside the straddled bucket, linearly in log
             space (the bucket's natural scale). *)
          covered :=
            !covered
            +. (float_of_int c *. (log x -. log lo) /. (log hi -. log lo)))
      (sorted_buckets t);
    (float_of_int !inside +. !covered) /. float_of_int t.count
  end

let merge ~into src =
  if into.growth <> src.growth then invalid_arg "Histogram.merge: growth mismatch";
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.vmin < into.vmin then into.vmin <- src.vmin;
  if src.vmax > into.vmax then into.vmax <- src.vmax;
  into.nonpos <- into.nonpos + src.nonpos;
  Hashtbl.iter
    (fun i r ->
      match Hashtbl.find_opt into.buckets i with
      | Some r' -> r' := !r' + !r
      | None -> Hashtbl.replace into.buckets i (ref !r))
    src.buckets

let reset t =
  t.count <- 0;
  t.sum <- 0.0;
  t.vmin <- infinity;
  t.vmax <- neg_infinity;
  t.nonpos <- 0;
  Hashtbl.reset t.buckets

type dump = {
  d_growth : float;
  d_count : int;
  d_sum : float;
  d_vmin : float;
  d_vmax : float;
  d_nonpos : int;
  d_buckets : (int * int) list;
}

let dump t =
  {
    d_growth = t.growth;
    d_count = t.count;
    d_sum = t.sum;
    d_vmin = t.vmin;
    d_vmax = t.vmax;
    d_nonpos = t.nonpos;
    d_buckets = sorted_buckets t;
  }

let of_dump d =
  let t = create ~growth:d.d_growth () in
  t.count <- d.d_count;
  t.sum <- d.d_sum;
  t.vmin <- d.d_vmin;
  t.vmax <- d.d_vmax;
  t.nonpos <- d.d_nonpos;
  List.iter (fun (i, c) -> Hashtbl.replace t.buckets i (ref c)) d.d_buckets;
  t

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summarize (t : t) =
  {
    count = t.count;
    sum = t.sum;
    min = min_value t;
    max = max_value t;
    mean = mean t;
    p50 = quantile t 0.5;
    p90 = quantile t 0.9;
    p99 = quantile t 0.99;
  }

let to_json t =
  let s = summarize t in
  let buckets =
    List.map
      (fun (i, c) ->
        Obs_json.Obj
          [
            ("le", Obs_json.Float (lower_bound t (i + 1)));
            ("count", Obs_json.Int c);
          ])
      (sorted_buckets t)
  in
  let buckets =
    if t.nonpos = 0 then buckets
    else Obs_json.Obj [ ("le", Obs_json.Float 0.0); ("count", Obs_json.Int t.nonpos) ] :: buckets
  in
  Obs_json.Obj
    [
      ("count", Obs_json.Int s.count);
      ("sum", Obs_json.Float s.sum);
      ("min", Obs_json.Float s.min);
      ("max", Obs_json.Float s.max);
      ("mean", Obs_json.Float s.mean);
      ("p50", Obs_json.Float s.p50);
      ("p90", Obs_json.Float s.p90);
      ("p99", Obs_json.Float s.p99);
      ("buckets", Obs_json.List buckets);
    ]
