(** Log-bucketed histograms with quantile readout.

    Observations land in exponentially-spaced buckets
    [\[growth^i, growth^(i+1))], so a histogram covers many orders of
    magnitude (bytes on an interface, nanoseconds of latency) in O(1)
    memory per occupied bucket with a bounded relative error of
    [growth - 1] per quantile. The default growth factor [2^0.25]
    (~19 % bucket width) keeps p50/p90/p99 within a few percent.

    Non-positive observations are counted in a dedicated underflow
    bucket; exact [min]/[max] are tracked alongside so tail quantiles
    are clamped to the observed range. *)

type t

val default_growth : float
(** [2{^0.25}]. *)

val create : ?growth:float -> unit -> t
(** Empty histogram. [growth] is the bucket-boundary ratio; it must be
    a finite float > 1 or [Invalid_argument] is raised. *)

val growth : t -> float
(** The bucket-boundary ratio the histogram was created with. *)

val observe : t -> float -> unit
(** Record one observation. Raises [Invalid_argument] on [nan]. *)

val count : t -> int
(** Number of observations. *)

val sum : t -> float
(** Sum of all observations (exact, not bucketed). *)

val mean : t -> float
(** [nan] when empty. *)

val min_value : t -> float
(** Exact minimum observation; [nan] when empty. *)

val max_value : t -> float
(** Exact maximum observation; [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0,1\]]: the geometric midpoint of the
    bucket holding the order statistic of rank [ceil (q * count)],
    clamped to [\[min, max\]]. [nan] when empty; [Invalid_argument]
    when [q] is outside [\[0,1\]]. *)

val fraction_le : t -> float -> float
(** Fraction of observations [<= x], interpolating log-linearly inside
    the bucket that straddles [x]. [nan] when empty. *)

val merge : into:t -> t -> unit
(** Accumulate a second histogram ([Invalid_argument] if the growth
    factors differ). The source is left unchanged. *)

val reset : t -> unit
(** Drop every observation; bucket configuration is kept. *)

(** {1 Checkpointing} *)

type dump = {
  d_growth : float;
  d_count : int;
  d_sum : float;
  d_vmin : float;
  d_vmax : float;
  d_nonpos : int;
  d_buckets : (int * int) list;  (** occupied buckets, sorted by index *)
}
(** Complete, canonical value of a histogram: two histograms with the
    same observations dump equal values regardless of internal
    hash-table layout. *)

val dump : t -> dump

val of_dump : dump -> t
(** Inverse of {!dump}: the rebuilt histogram answers every query
    identically and [dump (of_dump d) = d]. *)

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}
(** One-shot readout of the headline statistics. *)

val summarize : t -> summary

val to_json : t -> Obs_json.t
(** Summary plus the occupied buckets as [{le; count}] pairs ([le] is
    the bucket's upper bound, mirroring Prometheus conventions). *)
