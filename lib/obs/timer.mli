(** Named wall-clock phase timers.

    Each name accumulates total elapsed seconds and an invocation
    count, so an experiment can report where its run time went
    (topology generation vs beaconing vs analysis). Backed by
    [Unix.gettimeofday]; at the multi-millisecond granularity of
    experiment phases the difference from a monotonic clock is
    immaterial, and it keeps the dependency footprint to [unix]. *)

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t name f] runs [f ()], accumulating its wall-clock duration
    under [name] (also on exception). *)

val record : t -> string -> float -> unit
(** Accumulate an externally measured duration in seconds. *)

val total : t -> string -> float
(** Accumulated seconds; 0. for unknown names. *)

val report : t -> (string * float * int) list
(** [(name, total_seconds, count)], sorted by name. *)

val to_json : t -> Obs_json.t
(** Object keyed by timer name with [{seconds; count}] values. *)

val merge : into:t -> t -> unit
(** Accumulate the source's totals and counts into [into] (per name);
    the source is left unchanged. Totals merged from concurrently
    running phases report aggregate busy time, which can exceed
    wall-clock time. *)

val reset : t -> unit
