type labels = (string * string) list

type metric =
  | M_counter of float ref
  | M_gauge of float ref
  | M_hist of Histogram.t

type t = { tbl : (string * labels, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let norm labels = List.sort (fun (a, _) (b, _) -> compare a b) labels

let find_or_create t name labels make describe =
  let key = (name, norm labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.replace t.tbl key m;
      ignore describe;
      m

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_hist _ -> "histogram"

let wrong_kind name expected m =
  invalid_arg
    (Printf.sprintf "Registry: %s is a %s, not a %s" name (kind_name m) expected)

let counter t ?(labels = []) name =
  match find_or_create t name labels (fun () -> M_counter (ref 0.0)) "counter" with
  | M_counter r -> r
  | m -> wrong_kind name "counter" m

let gauge t ?(labels = []) name =
  match find_or_create t name labels (fun () -> M_gauge (ref 0.0)) "gauge" with
  | M_gauge r -> r
  | m -> wrong_kind name "gauge" m

let histogram ?growth t ?(labels = []) name =
  match
    find_or_create t name labels
      (fun () -> M_hist (Histogram.create ?growth ()))
      "histogram"
  with
  | M_hist h -> h
  | m -> wrong_kind name "histogram" m

let add t ?labels name v =
  let r = counter t ?labels name in
  r := !r +. v

let incr t ?labels name = add t ?labels name 1.0

let set t ?labels name v =
  let r = gauge t ?labels name in
  r := v

let observe t ?labels name v = Histogram.observe (histogram t ?labels name) v

type value =
  | Counter of float
  | Gauge of float
  | Hist of Histogram.summary

type sample = { name : string; labels : labels; value : value }

type snapshot = sample list

let snapshot t =
  Hashtbl.fold
    (fun (name, labels) m acc ->
      let value =
        match m with
        | M_counter r -> Counter !r
        | M_gauge r -> Gauge !r
        | M_hist h -> Hist (Histogram.summarize h)
      in
      { name; labels; value } :: acc)
    t.tbl []
  |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))

let diff ~before ~after =
  let base = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace base (s.name, s.labels) s.value) before;
  List.map
    (fun s ->
      match (Hashtbl.find_opt base (s.name, s.labels), s.value) with
      | Some (Counter b), Counter a -> { s with value = Counter (a -. b) }
      | Some (Hist b), Hist a ->
          (* Quantiles are not subtractable; keep the after-side shape
             but report the count/sum accumulated in between. *)
          { s with value = Hist { a with count = a.count - b.count; sum = a.sum -. b.sum } }
      | _ -> s)
    after

let labels_to_string labels =
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let sample_to_json s =
  let fields =
    [
      ("name", Obs_json.String s.name);
      ( "labels",
        Obs_json.Obj (List.map (fun (k, v) -> (k, Obs_json.String v)) s.labels) );
    ]
  in
  let value_fields =
    match s.value with
    | Counter v -> [ ("kind", Obs_json.String "counter"); ("value", Obs_json.Float v) ]
    | Gauge v -> [ ("kind", Obs_json.String "gauge"); ("value", Obs_json.Float v) ]
    | Hist h ->
        [
          ("kind", Obs_json.String "histogram");
          ("count", Obs_json.Int h.Histogram.count);
          ("sum", Obs_json.Float h.Histogram.sum);
          ("min", Obs_json.Float h.Histogram.min);
          ("max", Obs_json.Float h.Histogram.max);
          ("mean", Obs_json.Float h.Histogram.mean);
          ("p50", Obs_json.Float h.Histogram.p50);
          ("p90", Obs_json.Float h.Histogram.p90);
          ("p99", Obs_json.Float h.Histogram.p99);
        ]
  in
  Obs_json.Obj (fields @ value_fields)

let snapshot_to_json snap = Obs_json.List (List.map sample_to_json snap)

let to_json t =
  (* Full export: histograms carry their buckets, not just the summary. *)
  let metrics =
    Hashtbl.fold
      (fun (name, labels) m acc -> ((name, labels), m) :: acc)
      t.tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun ((name, labels), m) ->
           let base =
             [
               ("name", Obs_json.String name);
               ( "labels",
                 Obs_json.Obj
                   (List.map (fun (k, v) -> (k, Obs_json.String v)) labels) );
               ("kind", Obs_json.String (kind_name m));
             ]
           in
           match m with
           | M_counter r -> Obs_json.Obj (base @ [ ("value", Obs_json.Float !r) ])
           | M_gauge r -> Obs_json.Obj (base @ [ ("value", Obs_json.Float !r) ])
           | M_hist h ->
               Obs_json.Obj (base @ [ ("histogram", Histogram.to_json h) ]))
  in
  Obs_json.List metrics

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "name,labels,kind,value,count,sum,min,max,mean,p50,p90,p99\n";
  let num v = if Float.is_nan v then "" else Printf.sprintf "%.12g" v in
  List.iter
    (fun s ->
      let cells =
        match s.value with
        | Counter v ->
            [ "counter"; num v; ""; ""; ""; ""; ""; ""; ""; "" ]
        | Gauge v -> [ "gauge"; num v; ""; ""; ""; ""; ""; ""; ""; "" ]
        | Hist h ->
            [
              "histogram";
              "";
              string_of_int h.Histogram.count;
              num h.Histogram.sum;
              num h.Histogram.min;
              num h.Histogram.max;
              num h.Histogram.mean;
              num h.Histogram.p50;
              num h.Histogram.p90;
              num h.Histogram.p99;
            ]
      in
      Buffer.add_string buf
        (String.concat ","
           (csv_escape s.name :: csv_escape (labels_to_string s.labels) :: cells));
      Buffer.add_char buf '\n')
    (snapshot t);
  Buffer.contents buf

type metric_dump =
  | D_counter of float
  | D_gauge of float
  | D_hist of Histogram.dump

type dump = (string * labels * metric_dump) list

let dump t =
  Hashtbl.fold
    (fun (name, labels) m acc ->
      let d =
        match m with
        | M_counter r -> D_counter !r
        | M_gauge r -> D_gauge !r
        | M_hist h -> D_hist (Histogram.dump h)
      in
      (name, labels, d) :: acc)
    t.tbl []
  |> List.sort (fun (n, l, _) (n', l', _) -> compare (n, l) (n', l'))

let of_dump d =
  let t = create () in
  List.iter
    (fun (name, labels, m) ->
      let m =
        match m with
        | D_counter v -> M_counter (ref v)
        | D_gauge v -> M_gauge (ref v)
        | D_hist h -> M_hist (Histogram.of_dump h)
      in
      Hashtbl.replace t.tbl (name, norm labels) m)
    d;
  t

let merge ~into src =
  Hashtbl.iter
    (fun (name, labels) m ->
      match m with
      | M_counter r ->
          let r' = counter into ~labels name in
          r' := !r' +. !r
      | M_gauge r ->
          let r' = gauge into ~labels name in
          r' := !r
      | M_hist h ->
          let h' = histogram ~growth:(Histogram.growth h) into ~labels name in
          Histogram.merge ~into:h' h)
    src.tbl

let reset t = Hashtbl.reset t.tbl
