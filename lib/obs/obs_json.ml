type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Finite floats only; [write] maps nan/infinity to null first. *)
let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v ->
      if Float.is_nan v || v = Float.infinity || v = Float.neg_infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr v)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  write buf j;
  Buffer.contents buf

let rec write_indented buf ~indent ~level = function
  | List ([] : t list) -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List items ->
      let pad = String.make ((level + 1) * indent) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          write_indented buf ~indent ~level:(level + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (level * indent) ' ');
      Buffer.add_char buf ']'
  | Obj fields ->
      let pad = String.make ((level + 1) * indent) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write_indented buf ~indent ~level:(level + 1) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (level * indent) ' ');
      Buffer.add_char buf '}'
  | leaf -> write buf leaf

let to_string_pretty ?(indent = 2) j =
  let buf = Buffer.create 4096 in
  write_indented buf ~indent ~level:0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf
