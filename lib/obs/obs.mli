(** Observability context: one value bundling the {!Registry} of
    metrics, the {!Trace} ring and the phase {!Timer}s of a run.

    Instrumented code takes an optional [?obs] argument defaulting to
    {!disabled} and guards every metric update with {!on} (and every
    trace payload with {!Trace.enabled}), so instrumentation costs
    nothing unless a caller opts in:
    {[
      let run ?(obs = Obs.disabled) config = ...
      if Obs.on obs then Registry.add (Obs.registry obs) "events_total" 1.0
    ]} *)

type t

val disabled : t
(** The shared no-op context: {!on} is [false], the trace is
    {!Trace.null}. Default for every [?obs] argument. *)

val create : ?trace:Trace.t -> unit -> t
(** Fresh context with an empty registry and timers. [trace] defaults
    to {!Trace.null} (metrics only). *)

val on : t -> bool
(** [false] exactly for {!disabled}; gate metric updates with this. *)

val registry : t -> Registry.t

val trace : t -> Trace.t

val timers : t -> Timer.t

val phase : t -> string -> (unit -> 'a) -> 'a
(** [phase t name f] times [f] under [name] when the context is
    enabled; otherwise just runs [f]. *)

val fork : t -> t
(** An isolated child context for one parallel job: enabled exactly
    when [t] is, with a fresh registry and fresh timers. The child does
    {e not} share the parent's trace ring (its trace is {!Trace.null}),
    since the ring is not safe for concurrent writers; metrics and
    phase timers recorded in the child are brought back with {!merge}.
    Forking {!disabled} returns {!disabled}. *)

val merge : into:t -> t -> unit
(** Fold a {!fork}ed child back into its parent after the child's job
    completed: {!Registry.merge} on the metrics, {!Timer.merge} on the
    phase timers. No-op when either side is disabled. Call from one
    domain at a time (the parallel engine merges after its barrier). *)

val to_json : t -> Obs_json.t
(** [{metrics; timers; trace}] — the [--metrics-out] document. *)

val write_json_file : t -> string -> unit
(** Pretty-printed {!to_json} to a file (created or truncated). *)

val write_csv_file : t -> string -> unit
(** {!Registry.to_csv} of the metrics to a file. *)
