type entry = { mutable total : float; mutable count : int }

type t = { tbl : (string, entry) Hashtbl.t }

let create () = { tbl = Hashtbl.create 16 }

let now () = Unix.gettimeofday ()

let entry t name =
  match Hashtbl.find_opt t.tbl name with
  | Some e -> e
  | None ->
      let e = { total = 0.0; count = 0 } in
      Hashtbl.replace t.tbl name e;
      e

let record t name seconds =
  let e = entry t name in
  e.total <- e.total +. seconds;
  e.count <- e.count + 1

let time t name f =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> record t name (now () -. t0)) f

let total t name =
  match Hashtbl.find_opt t.tbl name with Some e -> e.total | None -> 0.0

let report t =
  Hashtbl.fold (fun name e acc -> (name, e.total, e.count) :: acc) t.tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let to_json t =
  Obs_json.Obj
    (List.map
       (fun (name, total, count) ->
         ( name,
           Obs_json.Obj
             [ ("seconds", Obs_json.Float total); ("count", Obs_json.Int count) ]
         ))
       (report t))

let merge ~into src =
  Hashtbl.iter
    (fun name e ->
      let e' = entry into name in
      e'.total <- e'.total +. e.total;
      e'.count <- e'.count + e.count)
    src.tbl

let reset t = Hashtbl.reset t.tbl
