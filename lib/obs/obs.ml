type t = {
  registry : Registry.t;
  trace : Trace.t;
  timers : Timer.t;
  enabled : bool;
}

let disabled =
  {
    registry = Registry.create ();
    trace = Trace.null;
    timers = Timer.create ();
    enabled = false;
  }

let create ?(trace = Trace.null) () =
  { registry = Registry.create (); trace = trace; timers = Timer.create (); enabled = true }

let on t = t.enabled

let registry t = t.registry

let trace t = t.trace

let timers t = t.timers

let phase t name f = if t.enabled then Timer.time t.timers name f else f ()

let fork t = if t.enabled then create () else disabled

let merge ~into src =
  if into.enabled && src.enabled then begin
    Registry.merge ~into:into.registry src.registry;
    Timer.merge ~into:into.timers src.timers
  end

let to_json t =
  Obs_json.Obj
    [
      ("metrics", Registry.to_json t.registry);
      ("timers", Timer.to_json t.timers);
      ("trace", Trace.to_json t.trace);
    ]

let write_json_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs_json.to_string_pretty (to_json t)))

let write_csv_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Registry.to_csv t.registry))
