(** Minimal JSON document builder for the observability exports.

    The simulator's dependency footprint is deliberately tiny (no
    [yojson] in the build environment), so the machine-readable exports
    ({!Registry}, {!Trace}, {!Timer}, [bench.json]) share this
    hand-rolled writer. It only builds and prints — there is no
    parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
      (** [nan] and infinities are printed as [null] (JSON has no
          representation for them). *)
  | String of string  (** Escaped on output. *)
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : ?indent:int -> t -> string
(** Human-diffable rendering, one field per line ([indent] defaults to
    2 spaces), with a trailing newline. *)
