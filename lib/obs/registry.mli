(** Labeled metric registry: counters, gauges and histograms.

    A metric is identified by a name plus a set of [(key, value)]
    labels — e.g. [beacon_bytes_total{algo=diversity}] — following the
    Prometheus data model, so exports translate directly to standard
    tooling. Labels are order-insensitive (normalised by sorting).

    Hot paths should hoist the lookup: obtain the cell once with
    {!counter}/{!gauge}/{!histogram} and update the returned reference
    directly, rather than calling {!add}/{!set}/{!observe} (which
    re-hash the key) per event. *)

type t

type labels = (string * string) list

val create : unit -> t

val counter : t -> ?labels:labels -> string -> float ref
(** Find-or-create the counter cell; mutate the returned ref to
    accumulate. Raises [Invalid_argument] if the name+labels already
    exists with a different metric kind. *)

val gauge : t -> ?labels:labels -> string -> float ref
(** Find-or-create a gauge cell (last-write-wins semantics). *)

val histogram : ?growth:float -> t -> ?labels:labels -> string -> Histogram.t
(** Find-or-create a histogram ([growth] only applies on creation). *)

val add : t -> ?labels:labels -> string -> float -> unit
(** One-shot counter accumulation (lookup per call). *)

val incr : t -> ?labels:labels -> string -> unit
(** [add t name 1.]. *)

val set : t -> ?labels:labels -> string -> float -> unit
(** One-shot gauge write. *)

val observe : t -> ?labels:labels -> string -> float -> unit
(** One-shot histogram observation. *)

(** {1 Snapshots} *)

type value =
  | Counter of float
  | Gauge of float
  | Hist of Histogram.summary

type sample = { name : string; labels : labels; value : value }

type snapshot = sample list
(** Sorted by (name, labels); an immutable copy of the registry
    contents at one instant. *)

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-series change between two snapshots: counters and histogram
    count/sum are subtracted; gauges and histogram quantiles keep the
    [after] value. Series absent from [before] are reported as-is. *)

(** {1 Exports} *)

val to_json : t -> Obs_json.t
(** Full machine-readable export: every series with kind, labels and —
    for histograms — the occupied buckets (see {!Histogram.to_json}). *)

val snapshot_to_json : snapshot -> Obs_json.t
(** Summary-level export of a snapshot (histograms as p50/p90/p99
    summaries without buckets). *)

val to_csv : t -> string
(** One row per series with a fixed
    [name,labels,kind,value,count,sum,min,max,mean,p50,p90,p99]
    header; empty cells where a column does not apply to the kind. *)

val labels_to_string : labels -> string
(** [k1=v1;k2=v2] rendering used in CSV and trace output. *)

(** {1 Checkpointing} *)

type metric_dump =
  | D_counter of float
  | D_gauge of float
  | D_hist of Histogram.dump

type dump = (string * labels * metric_dump) list
(** Complete registry contents, sorted by (name, labels) with labels
    normalised — a canonical value independent of hash-table layout,
    suitable for binary snapshots. *)

val dump : t -> dump

val of_dump : dump -> t
(** Rebuild a registry from a dump; [dump (of_dump d) = d]. *)

val merge : into:t -> t -> unit
(** Accumulate every series of the source registry into [into],
    creating missing series as needed: counters are summed, histograms
    are bucket-merged (see {!Histogram.merge}) and gauges take the
    source value (last merge wins). The source is left unchanged.
    Raises [Invalid_argument] if a series exists in both registries
    with different metric kinds.

    This is the reduction step of parallel experiment execution: each
    job records into a private registry and the per-job registries are
    merged after the barrier, giving the same totals as a sequential
    run. Merging counters and histograms is commutative, so the final
    state does not depend on merge order (gauges excepted). *)

val reset : t -> unit
(** Drop every series. *)
