type level = Error | Warn | Info | Debug

let level_rank = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string = function
  | "error" -> Stdlib.Ok Error
  | "warn" | "warning" -> Stdlib.Ok Warn
  | "info" -> Stdlib.Ok Info
  | "debug" -> Stdlib.Ok Debug
  | s ->
      Stdlib.Error
        (Printf.sprintf "unknown trace level %S (error|warn|info|debug)" s)

type event = {
  time : float;
  level : level;
  category : string;
  message : string;
  fields : (string * string) list;
}

type sink =
  | Null
  | Stderr
  | Channel of out_channel
  | Custom of (event -> unit)

type t = {
  max_level : level option;  (* [None]: tracing entirely off *)
  mutable sink : sink;
  capacity : int;
  mutable ring : event array;  (* allocated on first emit *)
  mutable next : int;
  mutable stored : int;
  mutable emitted : int;
}

let null =
  {
    max_level = None;
    sink = Null;
    capacity = 0;
    ring = [||];
    next = 0;
    stored = 0;
    emitted = 0;
  }

let create ?(capacity = 4096) ?(sink = Null) level =
  if capacity < 0 then invalid_arg "Trace.create: negative capacity";
  {
    max_level = Some level;
    sink;
    capacity;
    ring = [||];
    next = 0;
    stored = 0;
    emitted = 0;
  }

let set_sink t sink = t.sink <- sink

let enabled t level =
  match t.max_level with
  | None -> false
  | Some max -> level_rank level <= level_rank max

let render ev =
  let fields =
    match ev.fields with
    | [] -> ""
    | fs ->
        " {" ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) fs) ^ "}"
  in
  Printf.sprintf "[%12.3f] %-5s %s: %s%s" ev.time
    (level_to_string ev.level)
    ev.category ev.message fields

let to_sink t ev =
  match t.sink with
  | Null -> ()
  | Stderr ->
      output_string stderr (render ev);
      output_char stderr '\n';
      flush stderr
  | Channel oc ->
      output_string oc (render ev);
      output_char oc '\n'
  | Custom f -> f ev

let store t ev =
  if t.capacity > 0 then begin
    if Array.length t.ring = 0 then t.ring <- Array.make t.capacity ev;
    t.ring.(t.next) <- ev;
    t.next <- (t.next + 1) mod t.capacity;
    if t.stored < t.capacity then t.stored <- t.stored + 1
  end

let emit t level ~time ~category ?(fields = []) message =
  if enabled t level then begin
    let ev = { time; level; category; message; fields } in
    t.emitted <- t.emitted + 1;
    store t ev;
    to_sink t ev
  end

let emitted t = t.emitted

let dropped t = t.emitted - t.stored

let events t =
  if t.stored = 0 then []
  else begin
    let start =
      if t.stored < t.capacity then 0 else t.next (* oldest surviving event *)
    in
    List.init t.stored (fun i -> t.ring.((start + i) mod t.capacity))
  end

let event_to_json ev =
  Obs_json.Obj
    [
      ("time", Obs_json.Float ev.time);
      ("level", Obs_json.String (level_to_string ev.level));
      ("category", Obs_json.String ev.category);
      ("message", Obs_json.String ev.message);
      ( "fields",
        Obs_json.Obj (List.map (fun (k, v) -> (k, Obs_json.String v)) ev.fields)
      );
    ]

let to_json t =
  Obs_json.Obj
    [
      ("emitted", Obs_json.Int t.emitted);
      ("dropped", Obs_json.Int (dropped t));
      ("events", Obs_json.List (List.map event_to_json (events t)));
    ]
