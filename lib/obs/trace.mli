(** Bounded structured event tracing.

    Every event carries a (virtual or wall-clock) timestamp, a severity
    level, a category and optional string fields. Events are retained
    in a fixed-capacity ring buffer — old events are overwritten, never
    reallocated — and simultaneously forwarded to a pluggable sink
    (null / stderr / an [out_channel] / a callback).

    Tracing is designed to be zero-cost when off: {!null} rejects every
    level, and hot paths must guard payload construction with
    {!enabled}:
    {[
      if Trace.enabled tr Trace.Debug then
        Trace.emit tr Trace.Debug ~time ~category:"beacon"
          ~fields:[ ("as", string_of_int x) ] "pcb propagated"
    ]} *)

type level = Error | Warn | Info | Debug
(** Severities, most to least urgent. Enabling a level enables every
    more-urgent one. *)

val level_rank : level -> int
(** [Error] = 0 … [Debug] = 3. *)

val level_to_string : level -> string

val level_of_string : string -> (level, string) result

type event = {
  time : float;  (** simulation or wall-clock seconds, caller-defined *)
  level : level;
  category : string;  (** subsystem, e.g. ["beacon"], ["des"], ["bgp"] *)
  message : string;
  fields : (string * string) list;
}

type sink =
  | Null  (** ring buffer only *)
  | Stderr  (** one rendered line per event, flushed *)
  | Channel of out_channel  (** rendered lines; caller owns the channel *)
  | Custom of (event -> unit)

type t

val null : t
(** The shared disabled tracer: {!enabled} is always [false], {!emit}
    does nothing. Use as the default for optional [?trace] arguments. *)

val create : ?capacity:int -> ?sink:sink -> level -> t
(** Tracer accepting events up to [level]. [capacity] (default 4096)
    bounds the ring buffer; 0 disables retention (sink only). *)

val set_sink : t -> sink -> unit

val enabled : t -> level -> bool
(** Check before building an event payload on a hot path. *)

val emit :
  t -> level -> time:float -> category:string ->
  ?fields:(string * string) list -> string -> unit
(** Record an event (no-op when the level is not {!enabled}). *)

val events : t -> event list
(** Retained events, oldest first. *)

val emitted : t -> int
(** Total events accepted since creation. *)

val dropped : t -> int
(** Events lost to ring-buffer wraparound. *)

val render : event -> string
(** One-line human rendering, as written by the [Stderr] sink. *)

val event_to_json : event -> Obs_json.t

val to_json : t -> Obs_json.t
(** [{emitted; dropped; events}] with the retained events in order. *)
