let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else if Array.exists (fun x -> x <= 0.0) xs then 0.0
  else begin
    let log_sum = Array.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int n)
  end

let sorted_copy xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  let s = sorted_copy xs in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  if lo = hi then s.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    s.(lo) +. (frac *. (s.(hi) -. s.(lo)))
  end

let median xs = quantile xs 0.5

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      /. float_of_int n
    in
    sqrt var
  end

type cdf = (float * float) list

let cdf xs =
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let s = sorted_copy xs in
    let total = float_of_int n in
    let rec build i acc =
      if i >= n then List.rev acc
      else begin
        (* Advance to the last occurrence of this value. *)
        let v = s.(i) in
        let j = ref i in
        while !j + 1 < n && s.(!j + 1) = v do
          incr j
        done;
        build (!j + 1) ((v, float_of_int (!j + 1) /. total) :: acc)
      end
    in
    build 0 []
  end

let cdf_at c x =
  List.fold_left (fun acc (v, frac) -> if v <= x then frac else acc) 0.0 c

type five_number = {
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
  mean : float;
}

let five_number xs =
  if Array.length xs = 0 then invalid_arg "Stats.five_number: empty sample";
  {
    min = quantile xs 0.0;
    p25 = quantile xs 0.25;
    median = quantile xs 0.5;
    p75 = quantile xs 0.75;
    max = quantile xs 1.0;
    mean = mean xs;
  }

let summary xs =
  if Array.length xs = 0 then "(empty)"
  else begin
    let f = five_number xs in
    Printf.sprintf "min=%.3g p25=%.3g med=%.3g p75=%.3g max=%.3g mean=%.3g"
      f.min f.p25 f.median f.p75 f.max f.mean
  end
