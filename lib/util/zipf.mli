(** Zipf-distributed sampling.

    The paper relies on the Zipf distribution of Internet traffic
    destinations (§4.1, path-lookup caching) and on the heavy-tailed
    concentration of BGP updates on few prefixes (Fig. 5 churn model). *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares sampling over ranks [1..n] with exponent [s]
    (probability of rank [k] proportional to [1 / k^s]). Raises
    [Invalid_argument] if [n <= 0] or [s < 0.]. *)

val sample : t -> Rng.t -> int
(** Draw a rank in [\[0, n)] (0 = most popular), by inverse-CDF binary
    search over the precomputed cumulative weights. *)

val weight : t -> int -> float
(** [weight t k] is the normalised probability of rank [k] (0-based). *)

val n : t -> int
(** Number of ranks the distribution was created with. *)
