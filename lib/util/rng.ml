type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let state t = t.state

let of_state s = { state = s }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bound is always far below 2^63 so
     the bias is negligible for simulation purposes, but we still mask to a
     non-negative value first. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t lambda =
  let u = 1.0 -. float t 1.0 in
  -.log u /. lambda

let pareto t ~alpha ~x_min =
  let u = 1.0 -. float t 1.0 in
  x_min /. (u ** (1.0 /. alpha))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
