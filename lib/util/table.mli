(** Plain-text table rendering for experiment reports. *)

val render : header:string list -> rows:string list list -> string
(** [render ~header ~rows] lays the table out with column widths fitted
    to the content, an underline row after the header, and two spaces
    between columns. Rows shorter than the header are padded with empty
    cells. *)

val print : header:string list -> rows:string list list -> unit
(** {!render} followed by [print_string]. *)
