(** Fixed-capacity bitsets, used for customer-cone computation over the
    provider–customer DAG. *)

type t

val create : int -> t
(** [create n] is an empty set over universe [\[0, n)]. *)

val capacity : t -> int
(** The universe size [n] the set was created with. *)

val add : t -> int -> unit
(** Add an element (no-op if present). Raises [Invalid_argument] when
    the element is outside [\[0, capacity)]. *)

val mem : t -> int -> bool

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] sets [dst := dst ∪ src]. Capacities must
    match. *)

val cardinal : t -> int
(** Number of elements in the set (population count). *)

val iter : (int -> unit) -> t -> unit
(** Apply to every member in increasing order. *)

val to_list : t -> int list
(** Members in increasing order. *)
