(** Fixed-capacity bitsets, used for customer-cone computation over the
    provider–customer DAG. *)

type t

val create : int -> t
(** [create n] is an empty set over universe [\[0, n)]. *)

val capacity : t -> int

val add : t -> int -> unit

val mem : t -> int -> bool

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] sets [dst := dst ∪ src]. Capacities must
    match. *)

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit

val to_list : t -> int list
