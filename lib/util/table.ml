let pad cell width = cell ^ String.make (max 0 (width - String.length cell)) ' '

let render ~header ~rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row
    else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let line row =
    row
    |> List.mapi (fun i cell -> pad cell widths.(i))
    |> String.concat "  "
    |> fun s -> String.trim s ^ "\n"
  in
  let rule = List.init ncols (fun i -> String.make widths.(i) '-') in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line header);
  Buffer.add_string buf (line rule);
  List.iter (fun row -> Buffer.add_string buf (line row)) rows;
  Buffer.contents buf

let print ~header ~rows = print_string (render ~header ~rows)
