(** Mutable binary min-heap, used by the event queue and by shortest-path
    computations. Elements are ordered by a user-supplied comparison. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap with ordering [cmp]. *)

val length : 'a t -> int
(** Number of stored elements, O(1). *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Insert an element, O(log n). Equal elements are allowed; their
    relative pop order is unspecified (callers needing stability must
    encode a tiebreak in [cmp], as the event queue does). *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element, or [None] if empty. *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] on an empty heap. *)

val peek : 'a t -> 'a option
(** The minimum element without removing it, or [None] if empty. *)

val clear : 'a t -> unit
(** Remove every element, keeping the allocated storage. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
(** Heap containing the elements of the list (O(n log n)). *)

val to_sorted_list : 'a t -> 'a list
(** Drains the heap, returning elements in ascending order. *)
