(** Mutable binary min-heap, used by the event queue and by shortest-path
    computations. Elements are ordered by a user-supplied comparison. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap with ordering [cmp]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum element, or [None] if empty. *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] on an empty heap. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val to_sorted_list : 'a t -> 'a list
(** Drains the heap, returning elements in ascending order. *)
