(** Descriptive statistics and CDF reporting for the evaluation figures. *)

val mean : float array -> float
(** Arithmetic mean; 0. on an empty array. *)

val geometric_mean : float array -> float
(** Geometric mean of non-negative values. A single zero forces the
    result to 0. Returns 0. on an empty array. *)

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [\[0,1\]]: linear-interpolation quantile
    of the (unsorted) sample. Raises [Invalid_argument] on an empty
    array or [q] outside [\[0,1\]]. *)

val median : float array -> float
(** [quantile xs 0.5]. *)

val stddev : float array -> float
(** Population standard deviation; 0. on arrays shorter than 2. *)

type cdf = (float * float) list
(** Sorted [(value, cumulative fraction)] points. *)

val cdf : float array -> cdf
(** Empirical CDF of a sample: one point per distinct value. *)

val cdf_at : cdf -> float -> float
(** [cdf_at c x] is the fraction of the sample [<= x]. *)

val summary : float array -> string
(** One-line [min/p25/median/p75/max mean] summary used in reports. *)

type five_number = {
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
  mean : float;
}

val five_number : float array -> five_number
(** Five-number summary plus mean. Raises [Invalid_argument] if empty. *)
