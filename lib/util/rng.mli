(** Deterministic pseudo-random number generation.

    All stochastic parts of the simulator draw from this splittable
    SplitMix64 generator so that every experiment is exactly reproducible
    from its seed, independent of the OCaml stdlib [Random] state. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Distinct seeds yield
    independent streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val state : t -> int64
(** [state t] is the current internal state word. Together with
    {!of_state} it makes a generator checkpointable: restoring the
    state resumes the exact same stream. *)

val of_state : int64 -> t
(** [of_state s] rebuilds a generator whose next outputs equal those of
    the generator [state] was read from. [of_state (state t)] is
    equivalent to [copy t]. *)

val split : t -> t
(** [split t] derives a statistically independent child generator and
    advances [t]. Used to give each simulated node its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises
    [Invalid_argument] if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> float -> float
(** [exponential t lambda] draws from Exp(lambda) (mean [1. /. lambda]). *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Heavy-tailed Pareto draw with shape [alpha] and scale [x_min]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on
    an empty array. *)
