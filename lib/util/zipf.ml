type t = { cumulative : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: s must be non-negative";
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (k + 1) ** s));
    cumulative.(k) <- !acc
  done;
  let total = !acc in
  for k = 0 to n - 1 do
    cumulative.(k) <- cumulative.(k) /. total
  done;
  { cumulative }

let n t = Array.length t.cumulative

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Smallest index whose cumulative weight exceeds u. *)
  let lo = ref 0 and hi = ref (Array.length t.cumulative - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let weight t k =
  if k = 0 then t.cumulative.(0)
  else t.cumulative.(k) -. t.cumulative.(k - 1)
