type t = { words : Bytes.t; capacity : int }

(* One byte per 8 elements; Bytes gives compact, mutable storage. *)

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Bytes.make ((n + 7) / 8) '\000'; capacity = n }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let add t i =
  check t i;
  let byte = Char.code (Bytes.get t.words (i / 8)) in
  Bytes.set t.words (i / 8) (Char.chr (byte lor (1 lsl (i mod 8))))

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i / 8)) land (1 lsl (i mod 8)) <> 0

let union_into ~dst src =
  if dst.capacity <> src.capacity then
    invalid_arg "Bitset.union_into: capacity mismatch";
  for b = 0 to Bytes.length dst.words - 1 do
    Bytes.set dst.words b
      (Char.chr (Char.code (Bytes.get dst.words b) lor Char.code (Bytes.get src.words b)))
  done

let popcount_byte = Array.init 256 (fun b ->
    let rec count b acc = if b = 0 then acc else count (b lsr 1) (acc + (b land 1)) in
    count b 0)

let cardinal t =
  let total = ref 0 in
  Bytes.iter (fun c -> total := !total + popcount_byte.(Char.code c)) t.words;
  !total

let iter f t =
  for i = 0 to t.capacity - 1 do
    if Char.code (Bytes.get t.words (i / 8)) land (1 lsl (i mod 8)) <> 0 then f i
  done

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc
