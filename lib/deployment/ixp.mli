(** IXP deployment models (§3.5, Figure 4).

    In the {e big switch} model the IXP stays invisible to the SCION
    control plane and merely facilitates bilateral peering links among
    its member ASes. In the {e exposed topology} model the IXP operates
    one SCION AS per site, with inter-site links visible to the control
    plane, so members can exploit the IXP's internal redundancy with
    SCION multi-path and fast failover. Both models are implemented as
    graph transformations. *)

type member = { as_idx : int; site : int }
(** A member AS and the IXP site it connects at. *)

val big_switch :
  Graph.t -> members:member list -> full_mesh:bool -> Graph.t
(** Add bilateral peering links among members (all pairs when
    [full_mesh], mimicking a peering coordinator; otherwise only pairs
    meeting at the same site). The IXP itself does not appear. *)

type exposed = {
  graph : Graph.t;
  site_as : int array;  (** new AS index of each IXP site *)
}

val exposed_topology :
  Graph.t ->
  members:member list ->
  sites:int ->
  inter_site_links:(int * int * int) list ->
  isd:int ->
  exposed
(** Add one core AS per IXP site (owned by the IXP, in [isd]),
    [inter_site_links] as [(site_a, site_b, parallel_count)] core
    links, and a peering link from every member to its site AS. Raises
    [Invalid_argument] on bad site indices. *)

val member_pair_capacity : Graph.t -> int -> int -> int
(** Max-flow between two member ASes — used to show the diversity gain
    of exposing the IXP fabric. *)
