type member = { as_idx : int; site : int }

let copy_into_builder g =
  let b = Graph.builder () in
  for v = 0 to Graph.n g - 1 do
    let info = Graph.as_info g v in
    ignore
      (Graph.add_as b ~tier:info.Graph.tier ~cities:info.Graph.cities
         ~core:info.Graph.core info.Graph.ia)
  done;
  for l = 0 to Graph.num_links g - 1 do
    let lk = Graph.link g l in
    Graph.add_link b ~rel:lk.Graph.rel lk.Graph.a lk.Graph.b
  done;
  b

let big_switch g ~members ~full_mesh =
  let b = copy_into_builder g in
  let pairs = ref [] in
  List.iter
    (fun m1 ->
      List.iter
        (fun m2 ->
          if
            m1.as_idx < m2.as_idx
            && (full_mesh || m1.site = m2.site)
            && not (List.mem (m1.as_idx, m2.as_idx) !pairs)
          then begin
            pairs := (m1.as_idx, m2.as_idx) :: !pairs;
            Graph.add_link b ~rel:Graph.Peering m1.as_idx m2.as_idx
          end)
        members)
    members;
  Graph.freeze b

type exposed = { graph : Graph.t; site_as : int array }

let exposed_topology g ~members ~sites ~inter_site_links ~isd =
  if sites < 1 then invalid_arg "Ixp.exposed_topology: need at least one site";
  List.iter
    (fun m ->
      if m.site < 0 || m.site >= sites then
        invalid_arg "Ixp.exposed_topology: member at unknown site")
    members;
  let b = copy_into_builder g in
  let base_asn = 9000 in
  let site_as =
    Array.init sites (fun s ->
        Graph.add_as b ~tier:1 ~core:true (Id.ia isd (base_asn + s)))
  in
  List.iter
    (fun (sa, sb, count) ->
      if sa < 0 || sa >= sites || sb < 0 || sb >= sites then
        invalid_arg "Ixp.exposed_topology: inter-site link at unknown site";
      Graph.add_link b ~count ~rel:Graph.Core site_as.(sa) site_as.(sb))
    inter_site_links;
  List.iter
    (fun m -> Graph.add_link b ~rel:Graph.Peering m.as_idx site_as.(m.site))
    members;
  { graph = Graph.freeze b; site_as }

let member_pair_capacity g x y = Path_quality.optimum g ~src:x ~dst:y
