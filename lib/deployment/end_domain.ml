type model = Native_scion_as | Cpe_sig | Carrier_grade_sig

type capabilities = {
  own_as : bool;
  host_changes_required : bool;
  application_path_control : bool;
  multipath : bool;
  fast_failover : bool;
  premises_equipment : string;
}

let capabilities = function
  | Native_scion_as ->
      {
        own_as = true;
        host_changes_required = true;
        application_path_control = true;
        multipath = true;
        fast_failover = true;
        premises_equipment = "SCION border router + control service; hosts run the SCION stack";
      }
  | Cpe_sig ->
      {
        own_as = true;
        host_changes_required = false;
        application_path_control = false;
        multipath = true;
        fast_failover = true;
        premises_equipment = "CPE bundling SIG, border router and control service";
      }
  | Carrier_grade_sig ->
      {
        own_as = false;
        host_changes_required = false;
        application_path_control = false;
        multipath = false;
        fast_failover = true;
        premises_equipment = "none (provider-operated CGSIG)";
      }

let recommended ~hosts_scion_capable ~wants_own_as =
  if hosts_scion_capable then Native_scion_as
  else if wants_own_as then Cpe_sig
  else Carrier_grade_sig

let pp_model fmt = function
  | Native_scion_as -> Format.pp_print_string fmt "native SCION AS (case a)"
  | Cpe_sig -> Format.pp_print_string fmt "CPE-deployed SIG (case b)"
  | Carrier_grade_sig -> Format.pp_print_string fmt "carrier-grade SIG (case c)"
