(** End-domain deployment models (§3.4, Figure 3).

    A customer either becomes its own SCION AS (natively or behind a
    CPE that bundles SIG, border router and control service) or
    connects through the provider's carrier-grade SIG without any
    change on the customer premises. The model captures which
    capabilities each option yields. *)

type model =
  | Native_scion_as  (** Case a: own AS, hosts run the SCION stack *)
  | Cpe_sig  (** Case b: own AS, legacy hosts behind a CPE SIG *)
  | Carrier_grade_sig  (** Case c: provider-side CGSIG, no own AS *)

type capabilities = {
  own_as : bool;  (** the customer appears as a SCION AS *)
  host_changes_required : bool;
  application_path_control : bool;  (** apps pick paths themselves *)
  multipath : bool;  (** several paths used concurrently *)
  fast_failover : bool;
  premises_equipment : string;  (** what must be installed on site *)
}

val capabilities : model -> capabilities

val recommended : hosts_scion_capable:bool -> wants_own_as:bool -> model
(** The §3.4 decision: native when hosts are SCION-capable, CPE when
    the customer wants its own AS with legacy hosts, CGSIG otherwise. *)

val pp_model : Format.formatter -> model -> unit
