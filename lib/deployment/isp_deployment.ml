type underlay =
  | Native_cross_connect
  | Router_on_a_stick of { host_routes : bool }
  | Ip_tunnel

type link_deployment = {
  link : int;
  underlay : underlay;
  queueing_discipline : bool;
}

let bgp_free d =
  match d.underlay with
  | Native_cross_connect -> true
  | Router_on_a_stick { host_routes } -> host_routes
  | Ip_tunnel -> false

let congestion_safe d =
  match d.underlay with
  | Native_cross_connect -> true
  | Router_on_a_stick _ | Ip_tunnel -> d.queueing_discipline

type plan = link_deployment list

let uniform_plan g underlay =
  List.init (Graph.num_links g) (fun link ->
      { link; underlay; queueing_discipline = underlay <> Native_cross_connect })

let survives d ~bgp_failed ~ip_flood =
  (not (bgp_failed && not (bgp_free d))) && not (ip_flood && not (congestion_safe d))

let surviving_links plan ~bgp_failed ~ip_flood =
  List.filter_map
    (fun d -> if survives d ~bgp_failed ~ip_flood then Some d.link else None)
    plan

let components_over g links =
  let n = Graph.n g in
  let parent = Array.init n (fun i -> i) in
  let rec find x = if parent.(x) = x then x else begin
      parent.(x) <- find parent.(x);
      parent.(x)
    end
  in
  let union x y =
    let rx = find x and ry = find y in
    if rx <> ry then parent.(rx) <- ry
  in
  List.iter
    (fun l ->
      let lk = Graph.link g l in
      union lk.Graph.a lk.Graph.b)
    links;
  let roots = Hashtbl.create 8 in
  for v = 0 to n - 1 do
    let r = find v in
    Hashtbl.replace roots r (1 + Option.value ~default:0 (Hashtbl.find_opt roots r))
  done;
  Hashtbl.fold (fun _ size acc -> size :: acc) roots []

let scion_connected g plan ~bgp_failed ~ip_flood =
  let links = surviving_links plan ~bgp_failed ~ip_flood in
  match components_over g links with [ _ ] -> true | _ -> false

let connectivity_under_bgp_failure g plan =
  let links = surviving_links plan ~bgp_failed:true ~ip_flood:false in
  let sizes = components_over g links in
  let n = float_of_int (Graph.n g) in
  if n < 2.0 then 1.0
  else begin
    let pairs =
      List.fold_left (fun acc s -> acc +. (float_of_int s *. float_of_int (s - 1))) 0.0 sizes
    in
    pairs /. (n *. (n -. 1.0))
  end
