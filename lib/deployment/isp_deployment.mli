(** ISP deployment models (§3.3, Figure 2).

    Inter-ISP SCION connectivity is realised per link as a native
    layer-2 cross-connect, a Router-on-a-stick IP short-cut over the
    existing cross-connection, or a redundant combination of both. An
    IP tunnel across the public Internet (bridging SCION islands) is
    also modelled — it is exactly what the paper rules out for the
    production network because it inherits BGP's vulnerabilities. *)

type underlay =
  | Native_cross_connect
      (** dedicated L2 circuit between SCION border routers (Fig. 2a) *)
  | Router_on_a_stick of { host_routes : bool }
      (** SCION-in-IP over the existing cross-connection (Fig. 2b);
          with static host routes the link needs no BGP *)
  | Ip_tunnel
      (** SCION-in-IP across the public (BGP-routed) Internet *)

type link_deployment = {
  link : int;  (** link id in the topology *)
  underlay : underlay;
  queueing_discipline : bool;
      (** reserved minimum bandwidth for SCION on shared links (§3.2) *)
}

val bgp_free : link_deployment -> bool
(** Does the link stay up when BGP routing fails? Native links and
    host-routed Router-on-a-stick links do; tunnels do not. *)

val congestion_safe : link_deployment -> bool
(** Can IP traffic crowd out SCION on this link? Native links are safe
    by construction; shared links need the queueing discipline. *)

type plan = link_deployment list

val uniform_plan : Graph.t -> underlay -> plan
(** Deploy every link with the same underlay (queueing enabled on
    shared underlays). *)

val surviving_links : plan -> bgp_failed:bool -> ip_flood:bool -> int list
(** Link ids still providing SCION service under the given failure /
    attack conditions. *)

val scion_connected : Graph.t -> plan -> bgp_failed:bool -> ip_flood:bool -> bool
(** Is the SCION network still connected (single component over the
    surviving links)? The paper's BGP-free deployment keeps this true
    under [bgp_failed]. *)

val connectivity_under_bgp_failure : Graph.t -> plan -> float
(** Fraction of AS pairs that remain connected over surviving links
    when BGP fails (1.0 for a fully BGP-free plan). *)
