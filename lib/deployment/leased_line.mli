(** Leased-line replacement economics (§3.1).

    Connecting [n] branches with [k] data centres needs [n * k] leased
    lines (one per pair), but only [n + k] SCION connections — each
    site buys one SCION attachment and reaches every other site over
    the SCION network. With redundancy the gap widens further. *)

type scenario = {
  branches : int;
  data_centres : int;
  redundancy : int;  (** independent attachments per site, >= 1 *)
}

val leased_lines_needed : scenario -> int
(** [branches * data_centres * redundancy]. *)

val scion_connections_needed : scenario -> int
(** [(branches + data_centres) * redundancy]. *)

type costs = {
  leased_line_monthly : float;  (** per line *)
  scion_connection_monthly : float;  (** per attachment *)
  scion_equipment_once : float;  (** CPE / servers per site *)
}

val monthly_saving : scenario -> costs -> float
(** Leased-line total minus SCION total (positive = SCION cheaper). *)

val breakeven_months : scenario -> costs -> float option
(** Months until the one-off SCION equipment cost is recovered; [None]
    if SCION never breaks even under the given prices. *)

val properties_match : unit -> (string * bool) list
(** The leased-line properties §3.1 says SCION approximates, with
    whether the SCION production deployment provides each one
    (geofencing, path transparency, reliability/fast failover,
    flexibility for changes, short lead time). *)
