type scenario = { branches : int; data_centres : int; redundancy : int }

let check s =
  if s.branches < 0 || s.data_centres < 0 || s.redundancy < 1 then
    invalid_arg "Leased_line: invalid scenario"

let leased_lines_needed s =
  check s;
  s.branches * s.data_centres * s.redundancy

let scion_connections_needed s =
  check s;
  (s.branches + s.data_centres) * s.redundancy

type costs = {
  leased_line_monthly : float;
  scion_connection_monthly : float;
  scion_equipment_once : float;
}

let monthly_saving s c =
  (float_of_int (leased_lines_needed s) *. c.leased_line_monthly)
  -. (float_of_int (scion_connections_needed s) *. c.scion_connection_monthly)

let breakeven_months s c =
  let saving = monthly_saving s c in
  if saving <= 0.0 then None
  else begin
    let sites = float_of_int (s.branches + s.data_centres) in
    Some (sites *. c.scion_equipment_once /. saving)
  end

let properties_match () =
  [
    ("geofencing (policy-compliant paths only)", true);
    ("path transparency", true);
    ("high reliability via fast failover", true);
    ("flexibility for short-term changes", true);
    ("short lead time (days, not months)", true);
    ("dedicated physical capacity", false);
  ]
