type scope = As_scope | Isd_scope | Global_scope

type frequency = Hours | Minutes | Seconds

type component = {
  name : string;
  scope : scope;
  frequency : frequency;
  rationale : string;
}

let components =
  [
    {
      name = "Core Beaconing";
      scope = Global_scope;
      frequency = Minutes;
      rationale = "selective flooding among all core ASes, every beaconing interval";
    };
    {
      name = "Intra-ISD Beaconing";
      scope = Isd_scope;
      frequency = Minutes;
      rationale = "uni-directional dissemination along provider-customer links";
    };
    {
      name = "Down-Path Segment Lookup";
      scope = Global_scope;
      frequency = Hours;
      rationale = "unicast fetch, amortised by caching and long segment lifetimes";
    };
    {
      name = "Core-Path Segment Lookup";
      scope = Isd_scope;
      frequency = Hours;
      rationale = "fetched from a core AS inside the own ISD";
    };
    {
      name = "Endpoint Path Lookup";
      scope = As_scope;
      frequency = Seconds;
      rationale = "local query to the AS's own path server";
    };
    {
      name = "Path (De-)Registration";
      scope = Isd_scope;
      frequency = Minutes;
      rationale = "leaf ASes register segments at the ISD core every tens of minutes";
    };
    {
      name = "Path Revocation";
      scope = Isd_scope;
      frequency = Hours;
      rationale = "only on link failures; SCMP informs affected endpoints";
    };
  ]

let check b = if b then "x" else ""

let render () =
  let rows =
    List.map
      (fun c ->
        [
          c.name;
          check (c.scope = As_scope);
          check (c.scope = Isd_scope);
          check (c.scope = Global_scope);
          check (c.frequency = Hours);
          check (c.frequency = Minutes);
          check (c.frequency = Seconds);
        ])
      components
  in
  Table.render
    ~header:[ "SCION Control Plane Component"; "AS"; "ISD"; "Global"; "Hours"; "Minutes"; "Seconds" ]
    ~rows

type measured = { component : string; messages : float; bytes : float }

let coreify = Exp_common.coreify

let measure ?(obs = Obs.disabled) ?(jobs = 1) scale =
  let prepared = Exp_common.prepare scale in
  let cfg = Exp_common.beacon_config in
  (* A shorter horizon suffices to ground the taxonomy. *)
  let cfg = { cfg with Beaconing.duration = cfg.Beaconing.interval *. 8.0 } in
  let g = coreify prepared.Exp_common.isd in
  (* The two beaconing hierarchies are independent simulations; they
     are the parallel rows of this experiment. *)
  let core_out, intra_out =
    match
      Runner.map_jobs_obs ~obs ~jobs
        (fun ~obs (phase, scope) ->
          Obs.phase obs phase (fun () ->
              Beaconing.run ~obs g { cfg with Beaconing.scope = scope }))
        [|
          ("table1.beaconing.core", Beaconing.Core_beaconing);
          ("table1.beaconing.intra_isd", Beaconing.Intra_isd);
        |]
    with
    | [| core_out; intra_out |] -> (core_out, intra_out)
    | _ -> assert false
  in
  let cs = Control_service.build ~core:core_out ~intra:intra_out () in
  let rng = Rng.create 0xAB1EL in
  (* Zipf-popular destinations (§4.1): endpoints in random ASes resolve
     paths towards popular leaf ASes. *)
  let zipf = Zipf.create ~n:(Graph.n g) ~s:1.1 in
  let endpoint_lookups = ref 0 in
  let resolved_paths = ref 0 in
  for _ = 1 to 200 do
    let src = Rng.int rng (Graph.n g) in
    let dst = Zipf.sample zipf rng in
    if src <> dst then begin
      incr endpoint_lookups;
      resolved_paths := !resolved_paths + List.length (Control_service.resolve cs ~src ~dst)
    end
  done;
  (* One link failure: revoke affected segments. *)
  let failed_link = Graph.num_links g / 2 in
  let revoked = Control_service.revoke_link cs ~link:failed_link in
  (* Aggregate path-server stats over all core path servers. *)
  let agg =
    List.fold_left
      (fun acc c ->
        match Control_service.core_path_server cs c with
        | None -> acc
        | Some p ->
            let s = Path_server.stats p in
            ( (let a, b, c', d, e, f = acc in
               ( a + s.Path_server.registrations,
                 b + s.Path_server.registration_bytes,
                 c' + s.Path_server.lookups_down,
                 d + s.Path_server.reply_segments_down,
                 e + s.Path_server.lookups_core,
                 f + s.Path_server.reply_segments_core )) ))
      (0, 0, 0, 0, 0, 0)
      (Graph.core_ases g)
  in
  let regs, reg_bytes, lk_down, rep_down, lk_core, rep_core = agg in
  let seg_bytes = float_of_int (Wire.pcb_bytes ~hops:4 ~signature_bytes:96) in
  let fi = float_of_int in
  [
    {
      component = "Core Beaconing";
      messages = fi core_out.Beaconing.stats.Beaconing.total_pcbs;
      bytes = core_out.Beaconing.stats.Beaconing.total_bytes;
    };
    {
      component = "Intra-ISD Beaconing";
      messages = fi intra_out.Beaconing.stats.Beaconing.total_pcbs;
      bytes = intra_out.Beaconing.stats.Beaconing.total_bytes;
    };
    {
      component = "Down-Path Segment Lookup";
      messages = fi lk_down;
      bytes = fi rep_down *. seg_bytes;
    };
    {
      component = "Core-Path Segment Lookup";
      messages = fi lk_core;
      bytes = fi rep_core *. seg_bytes;
    };
    {
      component = "Endpoint Path Lookup";
      messages = fi !endpoint_lookups;
      bytes = fi !resolved_paths *. 64.0;
    };
    {
      component = "Path (De-)Registration";
      messages = fi regs;
      bytes = fi reg_bytes;
    };
    {
      component = "Path Revocation";
      messages = fi revoked;
      bytes = fi revoked *. 80.0;
    };
  ]

type config = { scale : Exp_common.scale; measure : bool }

let config ?(measure = true) scale = { scale; measure }

type result = { measured : measured list option }

let name = "table1"

let doc = "Table 1: control-plane overhead taxonomy"

let config_of_cli (c : Scenario.cli) = config c.scale

let run ?obs ?jobs { scale; measure = m } =
  { measured = (if m then Some (measure ?obs ?jobs scale) else None) }

let to_json (r : result) =
  let taxonomy =
    List.map
      (fun c ->
        Obs_json.Obj
          [
            ("component", Obs_json.String c.name);
            ( "scope",
              Obs_json.String
                (match c.scope with
                | As_scope -> "as"
                | Isd_scope -> "isd"
                | Global_scope -> "global") );
            ( "frequency",
              Obs_json.String
                (match c.frequency with
                | Hours -> "hours"
                | Minutes -> "minutes"
                | Seconds -> "seconds") );
            ("rationale", Obs_json.String c.rationale);
          ])
      components
  in
  let measured =
    match r.measured with
    | None -> Obs_json.Null
    | Some rows ->
        Obs_json.List
          (List.map
             (fun m ->
               Obs_json.Obj
                 [
                   ("component", Obs_json.String m.component);
                   ("messages", Obs_json.Float m.messages);
                   ("bytes", Obs_json.Float m.bytes);
                 ])
             rows)
  in
  Obs_json.Obj
    [
      ("experiment", Obs_json.String name);
      ("taxonomy", Obs_json.List taxonomy);
      ("measured", measured);
    ]

let print (r : result) =
  print_string (render ());
  match r.measured with
  | None -> ()
  | Some rows ->
      print_newline ();
      print_endline "Measured per-component traffic (short end-to-end simulation):";
      Table.print
        ~header:[ "Component"; "Messages"; "Bytes" ]
        ~rows:
          (List.map
             (fun m ->
               [ m.component; Printf.sprintf "%.0f" m.messages; Printf.sprintf "%.3g" m.bytes ])
             rows)

let exit_code _ = 0
