(** Table 1: path-management overhead comparison.

    The paper classifies every SCION control-plane component by the
    {e scope} of its communication (AS, ISD, global) and its
    {e frequency} (hours, minutes, seconds). We encode the taxonomy as
    data, derive the table from it, and optionally ground it with
    measured per-component traffic from a small end-to-end simulation. *)

type scope = As_scope | Isd_scope | Global_scope

type frequency = Hours | Minutes | Seconds

type component = {
  name : string;
  scope : scope;
  frequency : frequency;
  rationale : string;
}

val components : component list
(** The seven rows of Table 1, in paper order. *)

val render : unit -> string
(** The table in the paper's check-mark layout. *)

type measured = {
  component : string;
  messages : float;
  bytes : float;
}

val measure : ?obs:Obs.t -> ?jobs:int -> Exp_common.scale -> measured list
(** Run a small network end-to-end (core + intra-ISD beaconing, path
    registration, Zipf-weighted lookups with caching, one revocation)
    and report the per-component traffic that grounds the taxonomy.
    With [jobs > 1] the two beaconing hierarchies run on separate
    domains. With an enabled [obs] (default {!Obs.disabled}) the
    beaconing runs are instrumented and timed as [table1.*] phases. *)

(** {1 The {!Scenario.Cli} face}

    Drive it through [scion_expt run table1] or via {!config} and
    {!run}. *)

type config = {
  scale : Exp_common.scale;
  measure : bool;  (** also run the grounding simulation *)
}

val config : ?measure:bool -> Exp_common.scale -> config
(** [measure] defaults to [true] (the generic driver always grounds
    the taxonomy; the bare rendering needs no simulation). *)

type result = { measured : measured list option }

val name : string

val doc : string

val config_of_cli : Scenario.cli -> config

val run : ?obs:Obs.t -> ?jobs:int -> config -> result

val to_json : result -> Obs_json.t
(** The taxonomy rows plus the measured traffic (or [null]). *)

val print : result -> unit
(** The check-mark table, followed by the measured per-component
    traffic when present. *)

val exit_code : result -> int
(** Always [0]; this scenario has no tolerated-failure budget. *)
