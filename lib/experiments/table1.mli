(** Table 1: path-management overhead comparison.

    The paper classifies every SCION control-plane component by the
    {e scope} of its communication (AS, ISD, global) and its
    {e frequency} (hours, minutes, seconds). We encode the taxonomy as
    data, derive the table from it, and optionally ground it with
    measured per-component traffic from a small end-to-end simulation. *)

type scope = As_scope | Isd_scope | Global_scope

type frequency = Hours | Minutes | Seconds

type component = {
  name : string;
  scope : scope;
  frequency : frequency;
  rationale : string;
}

val components : component list
(** The seven rows of Table 1, in paper order. *)

val render : unit -> string
(** The table in the paper's check-mark layout. *)

type measured = {
  component : string;
  messages : float;
  bytes : float;
}

val measure : ?obs:Obs.t -> Exp_common.scale -> measured list
(** Run a small network end-to-end (core + intra-ISD beaconing, path
    registration, Zipf-weighted lookups with caching, one revocation)
    and report the per-component traffic that grounds the taxonomy.
    With an enabled [obs] (default {!Obs.disabled}) the beaconing runs
    are instrumented and timed as [table1.*] phases. *)

val print : ?measured:measured list -> unit -> unit
