(** Resilience scenario: failure recovery under injected faults.

    Sweeps failure rate × beaconing algorithm over the core topology.
    Each cell runs [trials] independent fault-injection trials through
    {!Fault_engine}: a seeded {!Fault_plan} mixing memoryless
    per-link failures (MTBF/MTTR) with one deterministic AS outage
    that blacks out every monitored pair homed on that AS, so the
    recovery distribution always has both regimes — fast SCMP-driven
    failovers to cached alternate paths, and blackout windows that
    only re-beaconing can close (§4.1, §5).

    Reported per cell: fault/affected/failover/blackout counts,
    summed blackout time, recovery-time quantiles (p50/p90/p99 over
    failover delays and blackout durations), revocation overhead in
    messages and bytes, and the post-run endpoint validation pass
    (pairs that deliver end-to-end over the surviving topology).

    Deterministic in config: trials derive their plan seeds with
    {!Runner.job_seed}, run as independent jobs and aggregate in
    input order, so results — and printed output — are byte-identical
    at any [jobs] value. *)

type rate = {
  rate_name : string;
  mtbf_s : float;  (** per-link mean time between failures *)
  mttr_s : float;  (** per-link mean time to repair *)
}

type algo_kind =
  | A_baseline of int  (** baseline selection, PCB storage limit *)
  | A_diversity of int  (** diversity selection, PCB storage limit *)

type cell_result = {
  algo : algo_kind;
  rate : rate;
  trials : int;
  events_down : int;
  events_up : int;
  affected_pairs : int;
  failovers : int;
  blackouts : int;
  unrecovered : int;
  blackout_time_s : float;
  recovery_samples : float array;  (** all trials, input order *)
  revocation_msgs : int;
  revocation_bytes : float;
  revoked_segments : int;
  dropped_pcbs : int;
  validated_pairs : int;
  validated_delivered : int;
  validated_failovers : int;
}

type result = {
  scale : Exp_common.scale;
  pairs : int;  (** monitored pairs per trial *)
  cells : cell_result list;
}

type config = {
  scale : Exp_common.scale;
  seed : int64;
  trials : int;
  rates : rate list;
  algos : algo_kind list;
  outage_at : float;
  outage_duration : float;
  beacon : Beaconing.config;
}

val config :
  ?seed:int64 ->
  ?trials:int ->
  ?rates:rate list ->
  ?algos:algo_kind list ->
  ?outage_at:float ->
  ?outage_duration:float ->
  ?beacon:Beaconing.config ->
  Exp_common.scale ->
  config
(** Defaults: seed [0xFA17L], 2 trials, low (6 h MTBF) and high (2 h
    MTBF) failure rates, storage-limited baseline (5) vs diversity
    (60), a 30 min AS outage starting at 1 h, §5.1 beaconing over a
    halved (3 h) horizon so the sweep stays CI-sized. *)

include Scenario.Cli with type config := config and type result := result
