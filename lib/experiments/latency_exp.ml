type algo_result = {
  name : string;
  stretch : float array;
  mean_stretch : float;
  p95_stretch : float;
  overhead_bytes : float;
}

type result = {
  scale : Exp_common.scale;
  pairs : (int * int) array;
  algos : algo_result list;
}

type config = {
  scale : Exp_common.scale;
  seed : int64 option;
  beacon : Beaconing.config;
}

let config ?seed ?(beacon = Exp_common.beacon_config) scale = { scale; seed; beacon }

let name = "latency"

let doc = "Latency-aware path construction (§4.2 extension)"

let config_of_cli (c : Scenario.cli) = config ?seed:c.seed c.scale

let evaluate name core weights pairs (outcome : Beaconing.outcome) =
  let now = outcome.Beaconing.config.Beaconing.duration -. 1.0 in
  let stretch =
    Array.map
      (fun (s, d) ->
        let opt = Latency_paths.best_latency core ~weights ~src:s ~dst:d in
        let got =
          Latency_paths.stored_best_latency ~weights
            (Beacon_store.paths outcome.Beaconing.stores.(s) ~now ~origin:d)
        in
        if Float.is_finite opt && opt > 0.0 then got /. opt else nan)
      pairs
  in
  let finite = Array.of_list (List.filter Float.is_finite (Array.to_list stretch)) in
  {
    name;
    stretch;
    mean_stretch = Stats.mean finite;
    p95_stretch = (if Array.length finite = 0 then nan else Stats.quantile finite 0.95);
    overhead_bytes = outcome.Beaconing.stats.Beaconing.total_bytes;
  }

let run ?(obs = Obs.disabled) ?(jobs = 1) { scale; seed; beacon } =
  let prepared = Exp_common.prepare ?seed scale in
  let core = prepared.Exp_common.core in
  let weights = Geo.latency_table core in
  let d = Exp_common.dimensions scale in
  let pairs =
    Exp_common.sample_pairs core ~count:d.Exp_common.sample_pairs ~seed:0x1A7E9CL
  in
  (* Scale chosen so a typical diameter-length path scores mid-range. *)
  let lat_scale = 4.0 *. Stats.mean weights *. 8.0 in
  (* One independent stage per algorithm: beaconing plus the stretch
     evaluation against the Dijkstra optimum. *)
  let stages =
    [|
      ("SCION Baseline (60)", "latency.beaconing.baseline", beacon);
      ( "SCION Diversity (60)",
        "latency.beaconing.diversity",
        {
          beacon with
          Beaconing.algorithm = Beacon_policy.Diversity Beacon_policy.default_div_params;
        } );
      ( "SCION Latency-aware (60)",
        "latency.beaconing.latency_aware",
        {
          beacon with
          Beaconing.algorithm =
            Beacon_policy.Latency_aware
              {
                Beacon_policy.base = Beacon_policy.default_div_params;
                link_latency_ms = weights;
                latency_scale_ms = lat_scale;
              };
        } );
    |]
  in
  let algos =
    Runner.map_jobs_obs ~obs ~jobs
      (fun ~obs (algo_name, phase, cfg) ->
        let out = Obs.phase obs phase (fun () -> Beaconing.run ~obs core cfg) in
        evaluate algo_name core weights pairs out)
      stages
  in
  { scale; pairs; algos = Array.to_list algos }

let to_json (r : result) =
  Obs_json.Obj
    [
      ("experiment", Obs_json.String name);
      ("scale", Obs_json.String (Exp_common.scale_to_string r.scale));
      ("pairs", Obs_json.Int (Array.length r.pairs));
      ( "algos",
        Obs_json.List
          (List.map
             (fun a ->
               Obs_json.Obj
                 [
                   ("name", Obs_json.String a.name);
                   ("mean_stretch", Obs_json.Float a.mean_stretch);
                   ("p95_stretch", Obs_json.Float a.p95_stretch);
                   ("overhead_bytes", Obs_json.Float a.overhead_bytes);
                 ])
             r.algos) );
    ]

let print (r : result) =
  Printf.printf
    "Latency-aware path construction (§4.2 extension) — scale=%s, %d AS pairs\n\n"
    (Exp_common.scale_to_string r.scale)
    (Array.length r.pairs);
  Table.print
    ~header:[ "Algorithm"; "mean stretch"; "p95 stretch"; "control-plane bytes" ]
    ~rows:
      (List.map
         (fun a ->
           [
             a.name;
             Printf.sprintf "%.3f" a.mean_stretch;
             Printf.sprintf "%.3f" a.p95_stretch;
             Printf.sprintf "%.3g" a.overhead_bytes;
           ])
         r.algos);
  print_newline ();
  print_endline
    "Stretch = lowest-latency disseminated path / latency-optimal path (Dijkstra).\n\
     The latency-aware variant trades some link diversity for latency, using the\n\
     same Eq. 1-3 dissemination machinery — the extensibility §4.2 argues for."

let exit_code _ = 0
