type algo_result = {
  name : string;
  stretch : float array;
  mean_stretch : float;
  p95_stretch : float;
  overhead_bytes : float;
}

type result = {
  scale : Exp_common.scale;
  pairs : (int * int) array;
  algos : algo_result list;
}

let evaluate name core weights pairs (outcome : Beaconing.outcome) =
  let now = outcome.Beaconing.config.Beaconing.duration -. 1.0 in
  let stretch =
    Array.map
      (fun (s, d) ->
        let opt = Latency_paths.best_latency core ~weights ~src:s ~dst:d in
        let got =
          Latency_paths.stored_best_latency ~weights
            (Beacon_store.paths outcome.Beaconing.stores.(s) ~now ~origin:d)
        in
        if Float.is_finite opt && opt > 0.0 then got /. opt else nan)
      pairs
  in
  let finite = Array.of_list (List.filter Float.is_finite (Array.to_list stretch)) in
  {
    name;
    stretch;
    mean_stretch = Stats.mean finite;
    p95_stretch = (if Array.length finite = 0 then nan else Stats.quantile finite 0.95);
    overhead_bytes = outcome.Beaconing.stats.Beaconing.total_bytes;
  }

let run ?(obs = Obs.disabled) ?(beacon = Exp_common.beacon_config) scale =
  let prepared = Exp_common.prepare scale in
  let core = prepared.Exp_common.core in
  let weights = Geo.latency_table core in
  let d = Exp_common.dimensions scale in
  let pairs =
    Exp_common.sample_pairs core ~count:d.Exp_common.sample_pairs ~seed:0x1A7E9CL
  in
  let base_out = Obs.phase obs "latency.beaconing.baseline" (fun () -> Beaconing.run ~obs core beacon) in
  let div_out =
    Obs.phase obs "latency.beaconing.diversity" (fun () ->
        Beaconing.run ~obs core
          { beacon with Beaconing.algorithm = Beacon_policy.Diversity Beacon_policy.default_div_params })
  in
  (* Scale chosen so a typical diameter-length path scores mid-range. *)
  let lat_scale = 4.0 *. Stats.mean weights *. 8.0 in
  let lat_out =
    Obs.phase obs "latency.beaconing.latency_aware" (fun () ->
        Beaconing.run ~obs core
          {
            beacon with
            Beaconing.algorithm =
              Beacon_policy.Latency_aware
                {
                  Beacon_policy.base = Beacon_policy.default_div_params;
                  link_latency_ms = weights;
                  latency_scale_ms = lat_scale;
                };
          })
  in
  {
    scale;
    pairs;
    algos =
      [
        evaluate "SCION Baseline (60)" core weights pairs base_out;
        evaluate "SCION Diversity (60)" core weights pairs div_out;
        evaluate "SCION Latency-aware (60)" core weights pairs lat_out;
      ];
  }

let print r =
  Printf.printf
    "Latency-aware path construction (§4.2 extension) — scale=%s, %d AS pairs\n\n"
    (Exp_common.scale_to_string r.scale)
    (Array.length r.pairs);
  Table.print
    ~header:[ "Algorithm"; "mean stretch"; "p95 stretch"; "control-plane bytes" ]
    ~rows:
      (List.map
         (fun a ->
           [
             a.name;
             Printf.sprintf "%.3f" a.mean_stretch;
             Printf.sprintf "%.3f" a.p95_stretch;
             Printf.sprintf "%.3g" a.overhead_bytes;
           ])
         r.algos);
  print_newline ();
  print_endline
    "Stretch = lowest-latency disseminated path / latency-optimal path (Dijkstra).\n\
     The latency-aware variant trades some link diversity for latency, using the\n\
     same Eq. 1-3 dissemination machinery — the extensibility §4.2 argues for."
