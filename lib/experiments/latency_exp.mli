(** Latency-aware path construction (§4.2, "Optimizing for other
    Criteria" — implemented here as the paper leaves it for future
    work).

    On the core topology with geo-derived link latencies, compare the
    best (lowest-latency) disseminated path per AS pair under the
    baseline, the diversity algorithm, and the latency-aware variant,
    against the true latency optimum (Dijkstra). Reported as latency
    stretch = best stored / optimal.

    Implements {!Scenario.Cli}: drive it through
    [scion_expt run latency] or directly via {!config} and {!run}. *)

type algo_result = {
  name : string;
  stretch : float array;  (** per sampled pair; [infinity] if no path *)
  mean_stretch : float;
  p95_stretch : float;
  overhead_bytes : float;
}

type result = {
  scale : Exp_common.scale;
  pairs : (int * int) array;
  algos : algo_result list;
}

type config = {
  scale : Exp_common.scale;
  seed : int64 option;  (** topology seed override (default §5.1 seed) *)
  beacon : Beaconing.config;
}

val config : ?seed:int64 -> ?beacon:Beaconing.config -> Exp_common.scale -> config
(** [beacon] overrides the §5.1 beaconing configuration. *)

val name : string

val doc : string

val config_of_cli : Scenario.cli -> config

val run : ?obs:Obs.t -> ?jobs:int -> config -> result
(** With [jobs > 1] the three algorithm stages (beaconing + stretch
    evaluation each) run on that many domains; the result is identical
    for every [jobs] value. With an enabled [obs] (default
    {!Obs.disabled}) the beaconing runs are instrumented and timed as
    [latency.*] phases. *)

val to_json : result -> Obs_json.t

val print : result -> unit
(** One row per algorithm: mean and p95 latency stretch plus absolute
    control-plane overhead. *)

val exit_code : result -> int
(** Always [0]; this scenario has no tolerated-failure budget. *)
