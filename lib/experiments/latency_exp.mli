(** Latency-aware path construction (§4.2, "Optimizing for other
    Criteria" — implemented here as the paper leaves it for future
    work).

    On the core topology with geo-derived link latencies, compare the
    best (lowest-latency) disseminated path per AS pair under the
    baseline, the diversity algorithm, and the latency-aware variant,
    against the true latency optimum (Dijkstra). Reported as latency
    stretch = best stored / optimal. *)

type algo_result = {
  name : string;
  stretch : float array;  (** per sampled pair; [infinity] if no path *)
  mean_stretch : float;
  p95_stretch : float;
  overhead_bytes : float;
}

type result = {
  scale : Exp_common.scale;
  pairs : (int * int) array;
  algos : algo_result list;
}

val run : ?obs:Obs.t -> ?beacon:Beaconing.config -> Exp_common.scale -> result
(** [beacon] overrides the §5.1 beaconing configuration. With an
    enabled [obs] (default {!Obs.disabled}) the three beaconing runs
    are instrumented and timed as [latency.*] phases. *)

val print : result -> unit
(** One row per algorithm: mean and p95 latency stretch plus absolute
    control-plane overhead. *)
