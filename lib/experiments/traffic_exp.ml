type cell_result = {
  label : string;
  strategy : string;
  width : int;
  report : Traffic_sim.report option;  (** [None] when the cell failed *)
}

type result = {
  scale : Exp_common.scale;
  seed : int64;
  flows_total : int;
  pairs : int;
  resolvable_pairs : int;
  outage_link : int option;
  cells : cell_result list;
  swarm : Swarm.comparison option;
  failures_allowed : int;
  report : Run_report.t;
}

type config = {
  scale : Exp_common.scale;
  seed : int64;
  flows : int;  (** demand flows per strategy cell *)
  strategies : Strategy.t list;
  capacity_scale : float;
  width : int;  (** swarm multipath width *)
  slot_s : float;
  drain_s : float;
  chunk : int;  (** slots per supervised work unit *)
  swarm_transfers : int;
  sup : Supervise.cli;
}

(* Scale presets: the small preset clears 100k total simulated flows
   (3 strategy cells + 3 swarm modes). *)
let default_flows = function
  | Exp_common.Tiny -> 3_000
  | Exp_common.Small -> 34_000
  | Exp_common.Medium -> 60_000
  | Exp_common.Paper -> 120_000

let default_transfers = function
  | Exp_common.Tiny -> 300
  | Exp_common.Small -> 2_000
  | Exp_common.Medium -> 3_000
  | Exp_common.Paper -> 5_000

let config ?(seed = 0x7AF1CL) ?flows ?strategy ?(capacity_scale = 0.2)
    ?(width = 3) ?(slot_s = 1.0) ?(drain_s = 600.0) ?(chunk = 1200)
    ?swarm_transfers ?(sup = Supervise.default_cli) scale =
  {
    scale;
    seed;
    flows = (match flows with Some f -> f | None -> default_flows scale);
    strategies =
      (match strategy with Some s -> [ s ] | None -> Strategy.all);
    capacity_scale;
    width;
    slot_s;
    drain_s;
    swarm_transfers =
      (match swarm_transfers with
      | Some t -> t
      | None -> default_transfers scale);
    chunk;
    sup;
  }

let name = "traffic"

let doc =
  "Flow-level traffic workloads over control-plane paths (strategy sweep + \
   swarm, checkpointable)"

let config_of_cli (c : Scenario.cli) =
  config ?seed:c.seed ?flows:c.flows ?strategy:c.strategy
    ?capacity_scale:c.capacity_scale ~sup:c.sup c.scale

(* --- setup ------------------------------------------------------------- *)

(* Offered path sets straight from the control plane: core + intra-ISD
   beaconing over the coreified ISD, then per-pair resolution. Capped
   so strategy scoring stays O(1) per flow. *)
let max_offered = 16

let resolve_paths cs pairs =
  Array.map
    (fun (s, d) ->
      let l = Control_service.resolve cs ~src:s ~dst:d in
      let arr = Array.of_list l in
      if Array.length arr > max_offered then Array.sub arr 0 max_offered
      else arr)
    pairs

(* A mid-run outage on a path link of the most popular resolvable pair
   — preferring a link some alternate path avoids, so failover (not
   just blackout) is exercised. *)
(* Fail a link on the path the latency-greedy strategy would actually
   prefer (the minimum-latency one) for the most popular resolvable
   pair, preferring a link some alternate path avoids — so the outage
   produces failovers, not just blackouts. *)
let pick_outage_link ~latency_ms paths =
  let path_lat (p : Fwd_path.t) =
    Array.fold_left (fun a l -> a +. latency_ms.(l)) 0.0 p.Fwd_path.links
  in
  let best = ref None in
  Array.iter
    (fun offered ->
      if !best = None && Array.length offered > 0 then begin
        let p0 =
          Array.fold_left
            (fun acc p ->
              if path_lat p < path_lat acc then p else acc)
            offered.(0) offered
        in
        let partial =
          Array.fold_left
            (fun acc l ->
              match acc with
              | Some _ -> acc
              | None ->
                  if
                    Array.exists
                      (fun p -> not (Fwd_path.contains_link p l))
                      offered
                  then Some l
                  else None)
            None p0.Fwd_path.links
        in
        best :=
          (match partial with
          | Some l -> Some l
          | None ->
              if Array.length p0.Fwd_path.links > 0 then
                Some p0.Fwd_path.links.(0)
              else None)
      end)
    paths;
  !best

type task = { label : string; strategy : string; width : int; sim : Traffic_sim.config }

let build_tasks cfg ~graph ~latency_ms ~paths ~swarm_paths ~demand ~swarm_demand
    ~swarm_params ~plan =
  let horizon = (Demand.params demand).Demand.horizon_s in
  let slots =
    int_of_float (Float.ceil ((horizon +. cfg.drain_s) /. cfg.slot_s)) + 1
  in
  let demand_tasks =
    List.map
      (fun s ->
        {
          label = "demand/" ^ Strategy.name s;
          strategy = Strategy.name s;
          width = 1;
          sim =
            {
              Traffic_sim.graph;
              paths;
              latency_ms;
              demand;
              strategy = s;
              width = 1;
              plan;
              capacity_scale = cfg.capacity_scale;
              slot_s = cfg.slot_s;
              slots;
              adapt_margin = 1.25;
              metric_labels =
                [ ("workload", "demand"); ("strategy", Strategy.name s) ];
            };
        })
      cfg.strategies
  in
  let swarm_tasks =
    List.map
      (fun mode ->
        let sim =
          Swarm.cell_config ~graph ~paths:swarm_paths ~latency_ms
            ~demand:swarm_demand ~capacity_scale:cfg.capacity_scale
            ~slot_s:cfg.slot_s swarm_params mode
        in
        {
          label = "swarm/" ^ Swarm.mode_name mode;
          strategy = Strategy.name sim.Traffic_sim.strategy;
          width = sim.Traffic_sim.width;
          sim;
        })
      Swarm.modes
  in
  Array.of_list (demand_tasks @ swarm_tasks)

(* --- checkpoint codec --------------------------------------------------- *)

let ckpt_prefix = "traffic"

let ckpt_version = 1

let schema_of cfg tasks =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "traffic/%d;" cfg.chunk);
  Array.iter
    (fun t -> Buffer.add_string b (Traffic_sim.config_key t.sim))
    tasks;
  "traffic:" ^ Sha256.hex (Sha256.digest (Buffer.contents b))

let w_status w = function
  | Ok bytes ->
      Snapshot.w_u8 w 0;
      Snapshot.w_str w bytes
  | Error (f : Run_report.failure) ->
      Snapshot.w_u8 w 1;
      Snapshot.w_int w f.Run_report.index;
      Snapshot.w_str w f.Run_report.label;
      Snapshot.w_opt w Snapshot.w_i64 f.Run_report.seed;
      Snapshot.w_int w f.Run_report.attempts;
      Snapshot.w_str w f.Run_report.error;
      Snapshot.w_str w f.Run_report.backtrace

let r_status r =
  match Snapshot.r_u8 r with
  | 0 -> Ok (Snapshot.r_str r)
  | 1 ->
      let index = Snapshot.r_int r in
      let label = Snapshot.r_str r in
      let seed = Snapshot.r_opt r Snapshot.r_i64 in
      let attempts = Snapshot.r_int r in
      let error = Snapshot.r_str r in
      let backtrace = Snapshot.r_str r in
      Error { Run_report.index; label; seed; attempts; error; backtrace }
  | t -> raise (Snapshot.Corrupt (Printf.sprintf "traffic: bad status tag %d" t))

let encode_progress ~slots_done statuses =
  let w = Snapshot.writer () in
  Snapshot.w_int w slots_done;
  Snapshot.w_arr w w_status statuses;
  Snapshot.contents w

let decode_progress ~n_tasks data =
  let r = Snapshot.reader data in
  let slots_done = Snapshot.r_int r in
  let statuses = Snapshot.r_arr r r_status in
  Snapshot.r_end r;
  if Array.length statuses <> n_tasks then
    raise (Snapshot.Corrupt "traffic checkpoint: cell count mismatch");
  (slots_done, statuses)

(* --- execution ---------------------------------------------------------- *)

let run ?(obs = Obs.disabled) ?(jobs = 1) cfg =
  if cfg.flows < 0 then invalid_arg "Traffic_exp.run: flows < 0";
  if cfg.chunk <= 0 then invalid_arg "Traffic_exp.run: chunk <= 0";
  if cfg.strategies = [] then invalid_arg "Traffic_exp.run: no strategies";
  (* No Obs.phase anywhere on this path: phase timers are wall-clock,
     and the CI smokes compare --metrics-out byte-for-byte. *)
  let prepared = Exp_common.prepare cfg.scale in
  let graph = Exp_common.coreify prepared.Exp_common.isd in
  let bcfg = Exp_common.beacon_config in
  let bcfg = { bcfg with Beaconing.duration = bcfg.Beaconing.interval *. 8.0 } in
  let core_out =
    Beaconing.run graph { bcfg with Beaconing.scope = Beaconing.Core_beaconing }
  in
  let intra_out =
    Beaconing.run graph { bcfg with Beaconing.scope = Beaconing.Intra_isd }
  in
  let cs = Control_service.build ~core:core_out ~intra:intra_out () in
  let latency_ms = Geo.latency_table graph in
  let d = Exp_common.dimensions cfg.scale in
  let demand =
    Demand.create graph
      {
        Demand.default_params with
        Demand.n_pairs = d.Exp_common.sample_pairs;
        flows = cfg.flows;
        seed = Runner.job_seed cfg.seed 1;
      }
  in
  let paths = resolve_paths cs (Demand.pairs demand) in
  let swarm_params =
    {
      Swarm.default_params with
      Swarm.transfers = cfg.swarm_transfers;
      width = cfg.width;
      seed = Runner.job_seed cfg.seed 2;
    }
  in
  let swarm_demand = Swarm.demand graph swarm_params in
  let swarm_paths = resolve_paths cs (Demand.pairs swarm_demand) in
  let outage_link = pick_outage_link ~latency_ms paths in
  let horizon = (Demand.params demand).Demand.horizon_s in
  let plan =
    Fault_plan.plan ~seed:(Runner.job_seed cfg.seed 3)
      (match outage_link with
      | None -> []
      | Some link ->
          [
            Fault_plan.Link_down
              { link; at = 0.4 *. horizon; duration = 0.2 *. horizon };
          ])
  in
  let tasks =
    build_tasks cfg ~graph ~latency_ms ~paths ~swarm_paths ~demand
      ~swarm_demand ~swarm_params ~plan
  in
  let n_tasks = Array.length tasks in
  let max_slots =
    Array.fold_left (fun acc t -> max acc t.sim.Traffic_sim.slots) 0 tasks
  in
  let schema = schema_of cfg tasks in
  let sup = cfg.sup in
  (* Start fresh at slot 0 — or, with --resume, from the newest
     compatible checkpoint. *)
  let start_slot, statuses =
    let fresh () =
      ( 0,
        Array.map
          (fun t -> Ok (Traffic_sim.encode (Traffic_sim.create t.sim)))
          tasks )
    in
    match sup.Supervise.checkpoint_dir with
    | Some dir when sup.Supervise.resume -> (
        match Checkpoint.latest ~dir ~prefix:ckpt_prefix with
        | None -> fresh ()
        | Some (_, file) ->
            let payload =
              Checkpoint.load ~dir ~name:file ~schema ~version:ckpt_version
            in
            let slots_done, statuses = decode_progress ~n_tasks payload in
            Printf.eprintf "traffic: resumed from %s (slot %d)\n%!" file
              slots_done;
            (slots_done, statuses))
    | _ -> fresh ()
  in
  let statuses = Array.copy statuses in
  let policy = Supervise.policy_of_cli sup in
  let ckpts_written = ref 0 in
  let last_ckpt = ref start_slot in
  let slots_done = ref start_slot in
  while !slots_done < max_slots do
    let upto = min max_slots (!slots_done + cfg.chunk) in
    let alive =
      Array.of_list
        (List.filter
           (fun i -> Result.is_ok statuses.(i))
           (List.init n_tasks Fun.id))
    in
    let inputs = Array.map (fun i -> (i, Result.get_ok statuses.(i))) alive in
    (* Jobs advance a decoded copy of the cell snapshot and hand back
       fresh bytes: a crashed or timed-out attempt can never leak
       partial progress. Deliberately unobserved — per-chunk counters
       would differ between uninterrupted and resumed runs. *)
    let results, _chunk_report =
      Supervise.map ~policy
        ~label_of:(fun j -> tasks.(alive.(j)).label)
        ~jobs
        ~base_seed:(Runner.job_seed cfg.seed (max_slots + !slots_done))
        (fun ~obs:_ ~seed:_ ~watchdog (i, bytes) ->
          (match sup.Supervise.inject_fail with
          | Some k when k = i ->
              failwith (Printf.sprintf "injected failure (--inject-fail %d)" i)
          | _ -> ());
          let t = Traffic_sim.restore tasks.(i).sim bytes in
          Traffic_sim.advance ~watchdog t ~upto;
          Traffic_sim.encode t)
        inputs
    in
    Array.iteri
      (fun j r ->
        let i = alive.(j) in
        match r with
        | Ok bytes -> statuses.(i) <- Ok bytes
        | Error f -> statuses.(i) <- Error { f with Run_report.index = i })
      results;
    slots_done := upto;
    match sup.Supervise.checkpoint_dir with
    | Some dir
      when sup.Supervise.checkpoint_every > 0
           && (upto - !last_ckpt >= sup.Supervise.checkpoint_every
              || upto = max_slots) ->
        (* Consistency gate before anything hits disk: every surviving
           snapshot must decode cleanly against its config. *)
        Array.iteri
          (fun i status ->
            match status with
            | Error _ -> ()
            | Ok bytes -> ignore (Traffic_sim.restore tasks.(i).sim bytes))
          statuses;
        ignore
          (Checkpoint.save ~dir
             ~name:(Checkpoint.numbered_name ~prefix:ckpt_prefix ~n:upto)
             ~schema ~version:ckpt_version
             (encode_progress ~slots_done:upto statuses));
        last_ckpt := upto;
        incr ckpts_written;
        (match sup.Supervise.kill_after with
        | Some k when !ckpts_written >= k ->
            raise (Supervise.Killed { checkpoints = !ckpts_written })
        | _ -> ())
    | _ -> ()
  done;
  (* Terminal accounting per cell, in task order (deterministic obs
     merges). *)
  let cell_results =
    Array.mapi
      (fun i task ->
        match statuses.(i) with
        | Error _ ->
            {
              label = task.label;
              strategy = task.strategy;
              width = task.width;
              report = None;
            }
        | Ok bytes ->
            let t = Traffic_sim.restore task.sim bytes in
            Traffic_sim.finish t;
            let r = Traffic_sim.report t in
            if Obs.on obs then begin
              Registry.merge ~into:(Obs.registry obs) (Traffic_sim.registry t);
              Recovery.observe obs (Traffic_sim.recovery t)
            end;
            {
              label = task.label;
              strategy = task.strategy;
              width = task.width;
              report = Some r;
            })
      tasks
  in
  let cell_results = Array.to_list cell_results in
  let find_swarm mode =
    List.find_map
      (fun (c : cell_result) ->
        if c.label = "swarm/" ^ Swarm.mode_name mode then c.report else None)
      cell_results
  in
  let swarm =
    match
      ( find_swarm Swarm.Single_path,
        find_swarm Swarm.Multi_diversity,
        find_swarm Swarm.Multi_adaptive )
    with
    | Some single, Some multi_diversity, Some multi_adaptive ->
        Some (Swarm.compare ~single ~multi_diversity ~multi_adaptive)
    | _ -> None
  in
  let resolvable =
    Array.fold_left
      (fun acc offered -> if Array.length offered > 0 then acc + 1 else acc)
      0 paths
  in
  let report =
    Run_report.make ~jobs:n_tasks
      (Array.to_list statuses
      |> List.filter_map (function Ok _ -> None | Error f -> Some f))
  in
  if Obs.on obs then Run_report.observe obs report;
  {
    scale = cfg.scale;
    seed = cfg.seed;
    flows_total =
      (List.length cfg.strategies * cfg.flows) + (3 * cfg.swarm_transfers);
    pairs = Array.length (Demand.pairs demand);
    resolvable_pairs = resolvable;
    outage_link;
    cells = cell_results;
    swarm;
    failures_allowed = sup.Supervise.max_failures;
    report;
  }

let exit_code r =
  if Run_report.n_failed r.report > r.failures_allowed then 1 else 0

(* --- rendering ---------------------------------------------------------- *)

let json_of_report (r : Traffic_sim.report) =
  Obs_json.Obj
    [
      ("flows_admitted", Obs_json.Int r.Traffic_sim.flows_admitted);
      ("flows_rejected", Obs_json.Int r.Traffic_sim.flows_rejected);
      ("flows_completed", Obs_json.Int r.Traffic_sim.flows_completed);
      ("flows_unfinished", Obs_json.Int r.Traffic_sim.flows_unfinished);
      ("mean_fct_s", Obs_json.Float r.Traffic_sim.mean_fct_s);
      ("fct_p50_s", Obs_json.Float r.Traffic_sim.fct.Histogram.p50);
      ("fct_p90_s", Obs_json.Float r.Traffic_sim.fct.Histogram.p90);
      ("fct_p99_s", Obs_json.Float r.Traffic_sim.fct.Histogram.p99);
      ("path_switches", Obs_json.Int r.Traffic_sim.path_switches);
      ("delivered_mbit", Obs_json.Float r.Traffic_sim.delivered_mbit);
      ("mean_utilization", Obs_json.Float r.Traffic_sim.mean_utilization);
      ("max_utilization", Obs_json.Float r.Traffic_sim.max_utilization);
      ( "fault_failovers",
        Obs_json.Int r.Traffic_sim.recovery.Recovery.failovers );
      ( "fault_blackouts",
        Obs_json.Int r.Traffic_sim.recovery.Recovery.blackouts );
      ( "fault_affected_pairs",
        Obs_json.Int r.Traffic_sim.recovery.Recovery.affected_pairs );
    ]

let to_json (r : result) =
  Obs_json.Obj
    [
      ("experiment", Obs_json.String name);
      ("scale", Obs_json.String (Exp_common.scale_to_string r.scale));
      ("seed", Obs_json.String (Int64.to_string r.seed));
      ("flows_total", Obs_json.Int r.flows_total);
      ("pairs", Obs_json.Int r.pairs);
      ("resolvable_pairs", Obs_json.Int r.resolvable_pairs);
      ( "outage_link",
        match r.outage_link with
        | None -> Obs_json.Null
        | Some l -> Obs_json.Int l );
      ( "cells",
        Obs_json.List
          (List.map
             (fun (c : cell_result) ->
               Obs_json.Obj
                 [
                   ("label", Obs_json.String c.label);
                   ("strategy", Obs_json.String c.strategy);
                   ("width", Obs_json.Int c.width);
                   ( "result",
                     match c.report with
                     | None -> Obs_json.Null
                     | Some rep -> json_of_report rep );
                 ])
             r.cells) );
      ( "swarm",
        match r.swarm with
        | None -> Obs_json.Null
        | Some s ->
            Obs_json.Obj
              [
                ("speedup_diversity", Obs_json.Float s.Swarm.speedup_diversity);
                ("speedup_adaptive", Obs_json.Float s.Swarm.speedup_adaptive);
              ] );
      ("supervision", Run_report.to_json r.report);
    ]

let print (r : result) =
  Printf.printf
    "Traffic workloads — flow-level load over control-plane paths (scale=%s, \
     %d flows total, %d/%d resolvable pairs)\n\n"
    (Exp_common.scale_to_string r.scale)
    r.flows_total r.resolvable_pairs r.pairs;
  Table.print
    ~header:
      [
        "cell";
        "w";
        "admitted";
        "done";
        "left";
        "fct mean";
        "fct p90";
        "switches";
        "failovers";
        "blackouts";
        "util mean";
        "util max";
      ]
    ~rows:
      (List.map
         (fun (c : cell_result) ->
           match c.report with
           | None -> [ c.label; string_of_int c.width; "FAILED"; ""; ""; ""; ""; ""; ""; ""; ""; "" ]
           | Some rep ->
               [
                 c.label;
                 string_of_int c.width;
                 string_of_int rep.Traffic_sim.flows_admitted;
                 string_of_int rep.Traffic_sim.flows_completed;
                 string_of_int rep.Traffic_sim.flows_unfinished;
                 Printf.sprintf "%.3fs" rep.Traffic_sim.mean_fct_s;
                 Printf.sprintf "%.3fs" rep.Traffic_sim.fct.Histogram.p90;
                 string_of_int rep.Traffic_sim.path_switches;
                 string_of_int rep.Traffic_sim.recovery.Recovery.failovers;
                 string_of_int rep.Traffic_sim.recovery.Recovery.blackouts;
                 Printf.sprintf "%.3f" rep.Traffic_sim.mean_utilization;
                 Printf.sprintf "%.3f" rep.Traffic_sim.max_utilization;
               ])
         r.cells);
  print_newline ();
  (match r.swarm with
  | None -> ()
  | Some s ->
      Printf.printf
        "Swarm file transfers: multipath (diversity, w=%d) %.2fx faster than \
         single-path;\n\
         multipath (load-adaptive) %.2fx faster. Mean FCT %.3fs / %.3fs / \
         %.3fs (single / diversity / adaptive).\n\n"
        (match
           List.find_opt (fun (c : cell_result) -> c.label = "swarm/multi-div") r.cells
         with
        | Some c -> c.width
        | None -> 0)
        s.Swarm.speedup_diversity s.Swarm.speedup_adaptive
        s.Swarm.single.Traffic_sim.mean_fct_s
        s.Swarm.multi_diversity.Traffic_sim.mean_fct_s
        s.Swarm.multi_adaptive.Traffic_sim.mean_fct_s);
  print_endline
    "Demand cells put the same Zipf flow population on each strategy under one\n\
     mid-run link outage, so failover/blackout counts compare like-for-like;\n\
     swarm cells rerun one bulk-transfer demand in single-path and multipath\n\
     modes. Utilization is delivered traffic over capacity x elapsed time, on\n\
     links that carried traffic.";
  if Run_report.n_failed r.report > 0 then begin
    print_newline ();
    Format.printf "%a@." Run_report.pp r.report
  end
