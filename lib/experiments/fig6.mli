(** Figure 6: path quality of the SCION path-selection algorithms and
    BGP on the core topology.

    For a sample of core AS pairs we compute, per algorithm, the
    max-flow over the union of the disseminated paths with unit
    capacity per inter-AS link. By Menger's theorem this single number
    is both Fig. 6a's minimum number of failing links that disconnects
    the pair and Fig. 6b's capacity in multiples of inter-AS links
    (§5.3 notes the equivalence). *)

type algo = {
  name : string;
  flows : int array;  (** per sampled pair *)
}

type result = {
  scale : Exp_common.scale;
  pairs : (int * int) array;
  optimum : int array;
  algos : algo list;  (** BGP, baseline, diversity at each storage limit *)
}

val run :
  ?obs:Obs.t ->
  ?diversity:Beacon_policy.div_params ->
  ?storage_limits:int list ->
  ?beacon:Beaconing.config ->
  Exp_common.scale ->
  result
(** [storage_limits] defaults to [\[15; 30; 60; max_int\]] (∞ printed
    for [max_int]), matching Fig. 6. The baseline runs at limit 60.
    With an enabled [obs] (default {!Obs.disabled}) the stages are
    timed as [fig6.*] phases and the beaconing runs instrumented. *)

val capacity_fraction : result -> string -> float
(** Mean achieved/optimal capacity over the sampled pairs for the named
    algorithm (the 82–99 % numbers of §5.3). *)

val print : result -> unit
(** Fig. 6a: mean achieved resilience grouped by optimal min-cut, plus
    the pair-count CDF. Fig. 6b: capacity CDFs and the fraction-of-
    optimum headline (Q2), plus the Q1 baseline-vs-BGP check. *)
