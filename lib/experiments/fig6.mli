(** Figure 6: path quality of the SCION path-selection algorithms and
    BGP on the core topology.

    For a sample of core AS pairs we compute, per algorithm, the
    max-flow over the union of the disseminated paths with unit
    capacity per inter-AS link. By Menger's theorem this single number
    is both Fig. 6a's minimum number of failing links that disconnects
    the pair and Fig. 6b's capacity in multiples of inter-AS links
    (§5.3 notes the equivalence).

    Implements {!Scenario.Cli}: drive it through [scion_expt run fig6]
    or directly via {!config} and {!run}. *)

(** Algorithms are identified structurally, not by display string, so
    renaming a label can never silently turn a headline check into
    [nan]. Storage limits are [int option]: [None] means unlimited (no
    [max_int] sentinel in this interface). *)
type algo_kind =
  | Bgp
  | Baseline of int  (** SCION baseline at the given storage limit *)
  | Diversity of int option
      (** SCION diversity; [None] = unlimited storage (∞ column) *)

type algo = {
  kind : algo_kind;
  name : string;  (** display string derived from [kind] *)
  flows : int array;  (** per sampled pair *)
}

type result = {
  scale : Exp_common.scale;
  pairs : (int * int) array;
  optimum : int array;
  algos : algo list;  (** BGP, baseline, diversity at each storage limit *)
}

type config = {
  scale : Exp_common.scale;
  seed : int64 option;  (** topology seed override (default §5.1 seed) *)
  diversity : Beacon_policy.div_params;
  storage_limits : int option list;
  beacon : Beaconing.config;
}

val baseline_limit : int
(** The baseline's storage limit (60, as in §5.1). *)

val config :
  ?seed:int64 ->
  ?diversity:Beacon_policy.div_params ->
  ?storage_limits:int option list ->
  ?beacon:Beaconing.config ->
  Exp_common.scale ->
  config
(** [storage_limits] defaults to [\[Some 15; Some 30; Some 60; None\]]
    (∞ printed for [None]), matching Fig. 6. *)

val name : string

val doc : string

val config_of_cli : Scenario.cli -> config

val run : ?obs:Obs.t -> ?jobs:int -> config -> result
(** With [jobs > 1] the independent stages — the optimum min-cuts, the
    BGP flows, the baseline beaconing run and one diversity run per
    storage limit — execute on that many domains; the result is
    identical for every [jobs] value.

    With an enabled [obs] (default {!Obs.disabled}) the stages are
    timed as [fig6.*] phases and the beaconing runs instrumented. *)

val capacity_fraction : result -> algo_kind -> float
(** Mean achieved/optimal capacity over the sampled pairs for the
    algorithm with the given kind (the 82–99 % numbers of §5.3); [nan]
    if the result holds no such algorithm. *)

val to_json : result -> Obs_json.t
(** Per-pair optimum cuts and, per algorithm, the flows array and
    capacity fraction. *)

val print : result -> unit
(** Fig. 6a: mean achieved resilience grouped by optimal min-cut, plus
    the pair-count CDF. Fig. 6b: capacity CDFs and the fraction-of-
    optimum headline (Q2), plus the Q1 baseline-vs-BGP check. *)

val exit_code : result -> int
(** Always [0]; this scenario has no tolerated-failure budget. *)
