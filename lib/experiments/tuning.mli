(** Two-stage parameter search for the diversity algorithm (§4.2).

    The paper selects α, β, γ and the score threshold per topology "by
    first performing a grid search with exponentially spaced values…
    followed by a grid search with linearly spaced values". The
    objective encodes §4.2's three goals: preserve connectivity,
    discover diverse paths, save bandwidth. *)

type objective = {
  params : Beacon_policy.div_params;
  overhead_bytes : float;
  capacity_fraction : float;  (** achieved/optimal max-flow over pairs *)
  connectivity : float;  (** fraction of (AS, origin) with a valid path *)
  score : float;  (** composite; higher is better *)
}

val evaluate :
  ?duration_rounds:int -> ?lifetime_rounds:int -> Graph.t -> Beacon_policy.div_params -> objective
(** Run diversity beaconing with a deliberately short PCB lifetime so
    refresh behaviour is exercised, then score the outcome. *)

val grid_search :
  ?verbose:bool -> ?duration_rounds:int -> ?lifetime_rounds:int -> Graph.t -> objective
(** Exponential stage over (α, β, γ, threshold), then a linear
    refinement around the winner. Deterministic. *)
