(** Two-stage parameter search for the diversity algorithm (§4.2).

    The paper selects α, β, γ and the score threshold per topology "by
    first performing a grid search with exponentially spaced values…
    followed by a grid search with linearly spaced values". The
    objective encodes §4.2's three goals: preserve connectivity,
    discover diverse paths, save bandwidth.

    Implements {!Scenario.Cli}: drive it through [scion_expt run tune]
    or directly via {!config} and {!run}. *)

type objective = {
  params : Beacon_policy.div_params;
  overhead_bytes : float;
  capacity_fraction : float;  (** achieved/optimal max-flow over pairs *)
  connectivity : float;  (** fraction of (AS, origin) with a valid path *)
  score : float;  (** composite; higher is better *)
}

val evaluate :
  ?obs:Obs.t ->
  ?duration_rounds:int ->
  ?lifetime_rounds:int ->
  Graph.t ->
  Beacon_policy.div_params ->
  objective
(** Run diversity beaconing with a deliberately short PCB lifetime so
    refresh behaviour is exercised, then score the outcome. *)

val grid_search :
  ?obs:Obs.t ->
  ?jobs:int ->
  ?verbose:bool ->
  ?duration_rounds:int ->
  ?lifetime_rounds:int ->
  Graph.t ->
  objective
(** Exponential stage over (α, β, γ, threshold), then a linear
    refinement around the winner. With [jobs > 1] each stage evaluates
    its candidates on that many domains; the winner, the tie-breaking
    (earliest candidate) and the [verbose] output are identical at any
    [jobs] value. Deterministic. *)

(** {1 The {!Scenario.Cli} face}

    The tuning topology is a Caida-like graph sized by [cores]; the
    CLI scale and seed do not apply. *)

type config = { cores : int; verbose : bool }

val config : ?cores:int -> ?verbose:bool -> unit -> config
(** [cores] defaults to 30, [verbose] to [false]. *)

val name : string

val doc : string

val config_of_cli : Scenario.cli -> config

type result = { cores : int; best : objective }

val run : ?obs:Obs.t -> ?jobs:int -> config -> result

val to_json : result -> Obs_json.t

val print : result -> unit
(** The winning parameters and their objective, as two summary lines. *)

val exit_code : result -> int
(** Always [0]; this scenario has no tolerated-failure budget. *)
