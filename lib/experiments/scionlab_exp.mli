(** Appendix B: SCIONLab testbed evaluation (Figures 7, 8, 9).

    On the 21-core-AS SCIONLab-like topology we compare the measured
    path set (the testbed's current algorithm, modelled as the baseline
    with storage limit 5 — Appendix B notes the close match) against
    the baseline and the diversity algorithm at storage limits 5, 10,
    15 and 60, plus the optimum; and report the per-interface beaconing
    bandwidth distribution.

    Implements {!Scenario.Cli}: drive it through
    [scion_expt run scionlab] or directly via {!config} and {!run}.
    The SCIONLab topology is fixed, so the CLI scale and seed are
    ignored. *)

type algo = { name : string; flows : int array }

type result = {
  pairs : (int * int) array;  (** all core AS pairs *)
  optimum : int array;
  algos : algo list;
  iface_bps : float array;  (** Fig. 9: Bps per core interface, baseline(5) *)
}

type config = { diversity : Beacon_policy.div_params }

val config : ?diversity:Beacon_policy.div_params -> unit -> config

val name : string

val doc : string

val config_of_cli : Scenario.cli -> config

val run : ?obs:Obs.t -> ?jobs:int -> config -> result
(** With [jobs > 1] the independent stages — the all-pairs optimum
    cuts, the baseline(5) run and one diversity run per storage
    limit — execute on that many domains; the result is identical for
    every [jobs] value.

    With an enabled [obs] (default {!Obs.disabled}) the beaconing runs
    are instrumented, the stages timed as [scionlab.*] phases, and the
    Fig. 9 per-interface rate distribution is exported as the
    [scionlab_iface_bps] histogram. *)

val to_json : result -> Obs_json.t

val print : result -> unit
(** Figures 7/8 CDFs, the diversity-vs-measurement fractions, and the
    Fig. 9 bandwidth distribution summarised through {!Histogram}
    (p50/p90/p99 and the fraction of interfaces below 4 KB/s). *)

val exit_code : result -> int
(** Always [0]; this scenario has no tolerated-failure budget. *)
