(** Convergence comparison (§5 note: "since there is no convergence
    phase in SCION, we cannot compare to BGP's convergence time. SCION
    path-segments are stable as soon as they are disseminated").

    We quantify that asymmetry with the event-driven BGP simulator:
    after initial convergence, fail a set of adjacencies and measure
    (a) how long BGP takes to re-converge and how many updates the
    exploration generates, and (b) what the same failure costs in
    SCION — one SCMP notification per affected flow and an immediate
    switch to an already-disseminated alternate path, with zero
    control-plane messages.

    Implements {!Scenario.Cli}: drive it through
    [scion_expt run convergence] or directly via {!config} and {!run}. *)

type failure_sample = {
  link : int;
  bgp_convergence_s : float;  (** quiescence time after the failure *)
  bgp_updates : int;  (** updates + withdrawals during exploration *)
  bgp_bytes : float;
  scion_failover_s : float;
      (** one-way SCMP delay + path switch at the endpoint *)
  scion_control_messages : int;  (** always 0: no dissemination needed *)
  scion_alternatives_ready : int;
      (** disseminated paths avoiding the failed link, already in the
          endpoint's possession *)
}

type result = {
  initial_convergence_s : float;
  initial_updates : int;
  samples : failure_sample list;
}

type config = {
  scale : Exp_common.scale;
  n_failures : int;
  seed : int64;  (** failure-selection seed, not the topology seed *)
}

val config : ?n_failures:int -> ?seed:int64 -> Exp_common.scale -> config
(** [n_failures] defaults to 5, [seed] to the fixed selection seed. *)

val name : string

val doc : string

val config_of_cli : Scenario.cli -> config

val run : ?obs:Obs.t -> ?jobs:int -> config -> result
(** Runs on the pruned core topology: BGP over the core graph (all-core
    links as peering), SCION beaconing with the diversity algorithm.

    Failure trials are independent: a cheap sequential pass selects the
    failed adjacencies from the beacon stores, then each trial measures
    BGP churn on a {e private} simulator brought to quiescence from
    scratch, so with [jobs > 1] the trials (and the initial-convergence
    measurement) run on that many domains with identical results at any
    [jobs] value.

    With an enabled [obs] (default {!Obs.disabled}) the BGP simulators
    and the beaconing run are instrumented and the stages timed as
    [convergence.*] phases. *)

val to_json : result -> Obs_json.t

val print : result -> unit

val exit_code : result -> int
(** Always [0]; this scenario has no tolerated-failure budget. *)
