(** Convergence comparison (§5 note: "since there is no convergence
    phase in SCION, we cannot compare to BGP's convergence time. SCION
    path-segments are stable as soon as they are disseminated").

    We quantify that asymmetry with the event-driven BGP simulator:
    after initial convergence, fail a set of links one at a time and
    measure (a) how long BGP takes to re-converge and how many updates
    the exploration generates, and (b) what the same failure costs in
    SCION — one SCMP notification per affected flow and an immediate
    switch to an already-disseminated alternate path, with zero
    control-plane messages. *)

type failure_sample = {
  link : int;
  bgp_convergence_s : float;  (** quiescence time after the failure *)
  bgp_updates : int;  (** updates + withdrawals during exploration *)
  bgp_bytes : float;
  scion_failover_s : float;
      (** one-way SCMP delay + path switch at the endpoint *)
  scion_control_messages : int;  (** always 0: no dissemination needed *)
  scion_alternatives_ready : int;
      (** disseminated paths avoiding the failed link, already in the
          endpoint's possession *)
}

type result = {
  initial_convergence_s : float;
  initial_updates : int;
  samples : failure_sample list;
}

val run : ?obs:Obs.t -> ?n_failures:int -> ?seed:int64 -> Exp_common.scale -> result
(** Runs on the pruned core topology: BGP over the core graph (all-core
    links as peering), SCION beaconing with the diversity algorithm.
    With an enabled [obs] (default {!Obs.disabled}) the BGP simulator
    and the beaconing run are instrumented (see {!Bgp_sim.create} and
    {!Beaconing.run}) and the two setup stages timed as
    [convergence.*] phases. *)

val print : result -> unit
