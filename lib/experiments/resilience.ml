type rate = { rate_name : string; mtbf_s : float; mttr_s : float }

type algo_kind = A_baseline of int | A_diversity of int

type cell_result = {
  algo : algo_kind;
  rate : rate;
  trials : int;
  events_down : int;
  events_up : int;
  affected_pairs : int;
  failovers : int;
  blackouts : int;
  unrecovered : int;
  blackout_time_s : float;
  recovery_samples : float array;
  revocation_msgs : int;
  revocation_bytes : float;
  revoked_segments : int;
  dropped_pcbs : int;
  validated_pairs : int;
  validated_delivered : int;
  validated_failovers : int;
}

type result = {
  scale : Exp_common.scale;
  pairs : int;
  cells : cell_result list;
}

type config = {
  scale : Exp_common.scale;
  seed : int64;
  trials : int;
  rates : rate list;
  algos : algo_kind list;
  outage_at : float;
  outage_duration : float;
  beacon : Beaconing.config;
}

let default_rates =
  [
    { rate_name = "low"; mtbf_s = 21600.0; mttr_s = 1800.0 };
    { rate_name = "high"; mtbf_s = 7200.0; mttr_s = 900.0 };
  ]

let default_algos = [ A_baseline 5; A_diversity 60 ]

(* Half the §5.1 horizon: 18 rounds are enough for warmup, outage and
   recovery, and keep the whole sweep CI-sized. *)
let default_beacon = { Exp_common.beacon_config with Beaconing.duration = 10800.0 }

let config ?(seed = 0xFA17L) ?(trials = 2) ?(rates = default_rates)
    ?(algos = default_algos) ?(outage_at = 3600.0) ?(outage_duration = 1800.0)
    ?(beacon = default_beacon) scale =
  { scale; seed; trials; rates; algos; outage_at; outage_duration; beacon }

let name = "resilience"

let doc = "Failure recovery under injected faults: failover vs blackout"

let config_of_cli (c : Scenario.cli) = config ?seed:c.seed c.scale

let algo_name = function
  | A_baseline limit -> Printf.sprintf "Baseline (%d)" limit
  | A_diversity limit -> Printf.sprintf "Diversity (%d)" limit

let beacon_of cfg = function
  | A_baseline limit ->
      {
        cfg.beacon with
        Beaconing.algorithm = Beacon_policy.Baseline;
        Beaconing.storage_limit = limit;
      }
  | A_diversity limit ->
      {
        cfg.beacon with
        Beaconing.algorithm =
          Beacon_policy.Diversity Beacon_policy.default_div_params;
        Beaconing.storage_limit = limit;
      }

(* One trial of one sweep cell; flattened so trials of every cell fan
   out together. *)
type task = { cell_idx : int; trial_idx : int; engine : Fault_engine.config }

let run ?(obs = Obs.disabled) ?(jobs = 1) cfg =
  let prepared =
    Obs.phase obs "resilience.prepare" (fun () -> Exp_common.prepare cfg.scale)
  in
  let core = prepared.Exp_common.core in
  let d = Exp_common.dimensions cfg.scale in
  let pairs =
    Exp_common.sample_pairs core ~count:d.Exp_common.sample_pairs ~seed:0xFA12L
  in
  (* The deterministic outage hits the destination AS of the first
     monitored pair, so at least one pair is guaranteed to lose every
     path and sit in blackout until re-beaconing after the repair. *)
  let outage_as = snd pairs.(0) in
  let scmp_delay_s = Bgp_sim.default_config.Bgp_sim.propagation_delay in
  let cells = List.concat_map (fun a -> List.map (fun r -> (a, r)) cfg.rates) cfg.algos in
  let cells_arr = Array.of_list cells in
  let tasks =
    Array.init
      (Array.length cells_arr * cfg.trials)
      (fun i ->
        let cell_idx = i / cfg.trials and trial_idx = i mod cfg.trials in
        let algo, rate = cells_arr.(cell_idx) in
        let plan =
          Fault_plan.plan ~seed:(Runner.job_seed cfg.seed i)
            [
              Fault_plan.Stochastic
                {
                  mtbf = rate.mtbf_s;
                  mttr = rate.mttr_s;
                  start = cfg.beacon.Beaconing.interval;
                  until = cfg.beacon.Beaconing.duration;
                };
              Fault_plan.As_outage
                {
                  as_idx = outage_as;
                  at = cfg.outage_at;
                  duration = cfg.outage_duration;
                };
            ]
        in
        {
          cell_idx;
          trial_idx;
          engine =
            {
              Fault_engine.graph = core;
              beacon = beacon_of cfg algo;
              plan;
              pairs;
              scmp_delay_s;
            };
        })
  in
  let results =
    Runner.map_jobs_obs ~obs ~jobs
      (fun ~obs task ->
        Obs.phase obs "resilience.trial" (fun () -> Fault_engine.run ~obs task.engine))
      tasks
  in
  let cell_results =
    List.mapi
      (fun cell_idx (algo, rate) ->
        let acc =
          ref
            {
              algo;
              rate;
              trials = 0;
              events_down = 0;
              events_up = 0;
              affected_pairs = 0;
              failovers = 0;
              blackouts = 0;
              unrecovered = 0;
              blackout_time_s = 0.0;
              recovery_samples = [||];
              revocation_msgs = 0;
              revocation_bytes = 0.0;
              revoked_segments = 0;
              dropped_pcbs = 0;
              validated_pairs = 0;
              validated_delivered = 0;
              validated_failovers = 0;
            }
        in
        Array.iteri
          (fun i (r : Fault_engine.result) ->
            if tasks.(i).cell_idx = cell_idx then begin
              let s = r.Fault_engine.recovery in
              let c = !acc in
              acc :=
                {
                  c with
                  trials = c.trials + 1;
                  events_down = c.events_down + s.Recovery.events_down;
                  events_up = c.events_up + s.Recovery.events_up;
                  affected_pairs = c.affected_pairs + s.Recovery.affected_pairs;
                  failovers = c.failovers + s.Recovery.failovers;
                  blackouts = c.blackouts + s.Recovery.blackouts;
                  unrecovered = c.unrecovered + s.Recovery.unrecovered;
                  blackout_time_s = c.blackout_time_s +. s.Recovery.blackout_time_s;
                  recovery_samples =
                    Array.append c.recovery_samples s.Recovery.recovery_samples;
                  revocation_msgs = c.revocation_msgs + s.Recovery.revocation_msgs;
                  revocation_bytes =
                    c.revocation_bytes +. s.Recovery.revocation_bytes;
                  revoked_segments = c.revoked_segments + s.Recovery.revoked_segments;
                  dropped_pcbs = c.dropped_pcbs + s.Recovery.dropped_pcbs;
                  validated_pairs = c.validated_pairs + r.Fault_engine.validated_pairs;
                  validated_delivered =
                    c.validated_delivered + r.Fault_engine.validated_delivered;
                  validated_failovers =
                    c.validated_failovers + r.Fault_engine.validated_failovers;
                }
            end)
          results;
        !acc)
      cells
  in
  { scale = cfg.scale; pairs = Array.length pairs; cells = cell_results }

let quantile_opt samples q =
  if Array.length samples = 0 then None else Some (Stats.quantile samples q)

let to_json (r : result) =
  Obs_json.Obj
    [
      ("experiment", Obs_json.String name);
      ("scale", Obs_json.String (Exp_common.scale_to_string r.scale));
      ("pairs", Obs_json.Int r.pairs);
      ( "cells",
        Obs_json.List
          (List.map
             (fun c ->
               let q x =
                 match quantile_opt c.recovery_samples x with
                 | None -> Obs_json.Null
                 | Some v -> Obs_json.Float v
               in
               Obs_json.Obj
                 [
                   ("algo", Obs_json.String (algo_name c.algo));
                   ("rate", Obs_json.String c.rate.rate_name);
                   ("mtbf_s", Obs_json.Float c.rate.mtbf_s);
                   ("mttr_s", Obs_json.Float c.rate.mttr_s);
                   ("trials", Obs_json.Int c.trials);
                   ("events_down", Obs_json.Int c.events_down);
                   ("events_up", Obs_json.Int c.events_up);
                   ("affected_pairs", Obs_json.Int c.affected_pairs);
                   ("failovers", Obs_json.Int c.failovers);
                   ("blackouts", Obs_json.Int c.blackouts);
                   ("unrecovered", Obs_json.Int c.unrecovered);
                   ("blackout_time_s", Obs_json.Float c.blackout_time_s);
                   ("recoveries", Obs_json.Int (Array.length c.recovery_samples));
                   ("recovery_p50_s", q 0.5);
                   ("recovery_p90_s", q 0.9);
                   ("recovery_p99_s", q 0.99);
                   ("revocation_msgs", Obs_json.Int c.revocation_msgs);
                   ("revocation_bytes", Obs_json.Float c.revocation_bytes);
                   ("revoked_segments", Obs_json.Int c.revoked_segments);
                   ("dropped_pcbs", Obs_json.Int c.dropped_pcbs);
                   ("validated_pairs", Obs_json.Int c.validated_pairs);
                   ("validated_delivered", Obs_json.Int c.validated_delivered);
                   ("validated_failovers", Obs_json.Int c.validated_failovers);
                 ])
             r.cells) );
    ]

let print (r : result) =
  Printf.printf
    "Resilience — failure recovery under injected faults (scale=%s, %d monitored \
     pairs)\n\n"
    (Exp_common.scale_to_string r.scale)
    r.pairs;
  let fmt_q c x =
    match quantile_opt c.recovery_samples x with
    | None -> "-"
    | Some v -> Printf.sprintf "%.1f s" v
  in
  Table.print
    ~header:
      [
        "algorithm";
        "fail rate";
        "down/up";
        "affected";
        "failovers";
        "blackouts";
        "blackout time";
        "rec p50";
        "rec p90";
        "rec p99";
        "revocation";
        "delivered";
      ]
    ~rows:
      (List.map
         (fun c ->
           [
             algo_name c.algo;
             c.rate.rate_name;
             Printf.sprintf "%d/%d" c.events_down c.events_up;
             string_of_int c.affected_pairs;
             string_of_int c.failovers;
             Printf.sprintf "%d (%d open)" c.blackouts c.unrecovered;
             Printf.sprintf "%.0f s" c.blackout_time_s;
             fmt_q c 0.5;
             fmt_q c 0.9;
             fmt_q c 0.99;
             Printf.sprintf "%d msg / %.1f KB" c.revocation_msgs
               (c.revocation_bytes /. 1024.0);
             Printf.sprintf "%d/%d" c.validated_delivered c.validated_pairs;
           ])
         r.cells);
  print_newline ();
  print_endline
    "Failovers recover in one SCMP round trip (cached alternate segments, §4.1);\n\
     blackouts last until re-beaconing re-disseminates a path — the storage-limited\n\
     baseline caches fewer alternates, so more failures escalate to blackouts than\n\
     under the diversity algorithm at the same fault plan.";
  print_endline
    "Revocation overhead counts SCMP link-failure messages to affected endpoints\n\
     and path servers; 'delivered' is the post-run end-to-end validation pass over\n\
     the surviving topology."

let exit_code _ = 0
