(** Traffic workloads: flow-level load over the control plane's paths.

    The missing data-plane half of the scalability story: the path
    sets that beaconing and segment resolution actually produced are
    put under Zipf-shaped flow demand ({!Demand}), with per-link
    capacities and fluid fair sharing ({!Link_load}), and the
    path-selection strategies of the axiomatic analysis
    ({!Strategy}) are swept against each other under one mid-run link
    outage — so failover and blackout accounting ({!Recovery})
    compare like-for-like. A second workload ({!Swarm}) reruns one
    bulk file-transfer demand in forced single-path and two multipath
    modes, demonstrating the multipath completion-time win.

    Cells advance in [chunk]-slot work units through {!Supervise.map};
    between chunks each cell's full simulation state round-trips
    through {!Traffic_sim.encode}, so [--checkpoint-every N
    --checkpoint-dir D] writes resumable checkpoints and [--resume]
    continues from the newest one. Interrupting at any checkpoint and
    resuming yields byte-identical stdout and [--metrics-out] JSON at
    any [--jobs] value. *)

type cell_result = {
  label : string;  (** [demand/<strategy>] or [swarm/<mode>] *)
  strategy : string;
  width : int;  (** subflows per flow *)
  report : Traffic_sim.report option;  (** [None] when the cell failed *)
}

type result = {
  scale : Exp_common.scale;
  seed : int64;
  flows_total : int;  (** flows simulated across all cells *)
  pairs : int;  (** demand endpoint pairs *)
  resolvable_pairs : int;  (** pairs the control plane found paths for *)
  outage_link : int option;  (** the injected mid-run failure site *)
  cells : cell_result list;
  swarm : Swarm.comparison option;
      (** [None] only when a swarm cell failed *)
  failures_allowed : int;  (** the [--max-failures] tolerance *)
  report : Run_report.t;
}

type config = {
  scale : Exp_common.scale;
  seed : int64;
  flows : int;  (** demand flows per strategy cell *)
  strategies : Strategy.t list;
  capacity_scale : float;
  width : int;  (** swarm multipath width *)
  slot_s : float;
  drain_s : float;  (** simulated drain time past the arrival horizon *)
  chunk : int;  (** slots per supervised work unit *)
  swarm_transfers : int;
  sup : Supervise.cli;
}

val config :
  ?seed:int64 ->
  ?flows:int ->
  ?strategy:Strategy.t ->
  ?capacity_scale:float ->
  ?width:int ->
  ?slot_s:float ->
  ?drain_s:float ->
  ?chunk:int ->
  ?swarm_transfers:int ->
  ?sup:Supervise.cli ->
  Exp_common.scale ->
  config
(** Defaults: seed [0x7AF1CL], all three strategies, capacity scale
    0.2 (a moderately contended regime), 3-way swarm multipath, 1 s
    slots with 10 min drain, 1200-slot chunks, and per-scale flow
    counts that put the small preset above 100k total flows. *)

include Scenario.Cli with type config := config and type result := result
