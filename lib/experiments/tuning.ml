type objective = {
  params : Beacon_policy.div_params;
  overhead_bytes : float;
  capacity_fraction : float;
  connectivity : float;
  score : float;
}

let evaluate ?(obs = Obs.disabled) ?(duration_rounds = 24) ?(lifetime_rounds = 12) g params =
  let cfg =
    {
      Exp_common.beacon_config with
      Beaconing.algorithm = Beacon_policy.Diversity params;
      Beaconing.duration = 600.0 *. float_of_int duration_rounds;
      Beaconing.lifetime = 600.0 *. float_of_int lifetime_rounds;
    }
  in
  let out = Beaconing.run ~obs g cfg in
  let now = cfg.Beaconing.duration -. 1.0 in
  let n = Graph.n g in
  (* Connectivity: every AS should hold a valid path to every origin. *)
  let have = ref 0 and want = ref 0 in
  for v = 0 to n - 1 do
    for o = 0 to n - 1 do
      if o <> v then begin
        incr want;
        if Beacon_store.paths out.Beaconing.stores.(v) ~now ~origin:o <> [] then incr have
      end
    done
  done;
  let connectivity = float_of_int !have /. float_of_int (max 1 !want) in
  (* Capacity fraction over a fixed sample of pairs. *)
  let pairs = Exp_common.sample_pairs g ~count:40 ~seed:0x7E57L in
  let num = ref 0.0 and den = ref 0.0 in
  Array.iter
    (fun (s, d) ->
      let opt = Path_quality.optimum g ~src:s ~dst:d in
      if opt > 0 then begin
        let pcbs = Beacon_store.paths out.Beaconing.stores.(s) ~now ~origin:d in
        let f = Path_quality.of_pcbs g pcbs ~src:s ~dst:d in
        num := !num +. float_of_int f;
        den := !den +. float_of_int opt
      end)
    pairs;
  let capacity_fraction = if !den = 0.0 then 0.0 else !num /. !den in
  let overhead_bytes = out.Beaconing.stats.Beaconing.total_bytes in
  (* Composite: §4.2's objectives. Losing connectivity is
     disqualifying; otherwise trade path quality against bandwidth. *)
  let score =
    if connectivity < 0.999 then connectivity -. 10.0
    else capacity_fraction -. (0.08 *. log10 (max 1.0 overhead_bytes))
  in
  { params; overhead_bytes; capacity_fraction; connectivity; score }

let candidates_stage1 =
  let base = Beacon_policy.default_div_params in
  List.concat_map
    (fun alpha ->
      List.concat_map
        (fun beta ->
          List.concat_map
            (fun gamma ->
              List.map
                (fun threshold ->
                  { base with Beacon_policy.alpha; beta; gamma; threshold })
                [ 0.05; 0.15; 0.45 ])
            [ 2.0; 4.0; 8.0 ])
        [ 1.0; 2.0; 4.0 ])
    [ 5.0; 20.0; 80.0 ]

let refine (p : Beacon_policy.div_params) =
  List.concat_map
    (fun alpha ->
      List.concat_map
        (fun beta ->
          List.concat_map
            (fun gamma ->
              List.map
                (fun threshold ->
                  { p with Beacon_policy.alpha; beta; gamma; threshold })
                [ p.Beacon_policy.threshold *. 0.7; p.Beacon_policy.threshold; p.Beacon_policy.threshold *. 1.3 ])
            [ p.Beacon_policy.gamma -. 1.0; p.Beacon_policy.gamma; p.Beacon_policy.gamma +. 1.0 ])
        [ p.Beacon_policy.beta *. 0.75; p.Beacon_policy.beta; p.Beacon_policy.beta *. 1.25 ])
    [ p.Beacon_policy.alpha *. 0.5; p.Beacon_policy.alpha; p.Beacon_policy.alpha *. 1.5 ]

let best_of ?(obs = Obs.disabled) ?(jobs = 1) ?(verbose = false) ?duration_rounds
    ?lifetime_rounds g cands =
  (* Candidate evaluations are independent; fan them out, then pick the
     winner (and print, in candidate order) after the barrier so the
     choice and the output are identical at any [jobs] value. The
     earliest candidate wins ties, as in the sequential fold. *)
  let objectives =
    Runner.map_jobs_obs ~obs ~jobs
      (fun ~obs p -> evaluate ~obs ?duration_rounds ?lifetime_rounds g p)
      (Array.of_list cands)
  in
  Array.fold_left
    (fun acc o ->
      let p = o.params in
      if verbose then
        Printf.printf
          "  alpha=%-5.1f beta=%-5.2f gamma=%-4.1f thr=%-5.3f -> conn=%.3f cap=%.3f bytes=%.3g score=%.3f\n%!"
          p.Beacon_policy.alpha p.Beacon_policy.beta p.Beacon_policy.gamma
          p.Beacon_policy.threshold o.connectivity o.capacity_fraction
          o.overhead_bytes o.score;
      match acc with
      | Some best when best.score >= o.score -> Some best
      | _ -> Some o)
    None objectives

let grid_search ?obs ?jobs ?(verbose = false) ?duration_rounds ?lifetime_rounds g =
  if verbose then print_endline "Stage 1: exponentially spaced grid";
  let stage1 =
    match
      best_of ?obs ?jobs ~verbose ?duration_rounds ?lifetime_rounds g candidates_stage1
    with
    | Some o -> o
    | None -> invalid_arg "Tuning.grid_search: empty candidate set"
  in
  if verbose then print_endline "Stage 2: linear refinement around the winner";
  match
    best_of ?obs ?jobs ~verbose ?duration_rounds ?lifetime_rounds g
      (refine stage1.params)
  with
  | Some o when o.score > stage1.score -> o
  | _ -> stage1

type config = { cores : int; verbose : bool }

let config ?(cores = 30) ?(verbose = false) () = { cores; verbose }

let name = "tune"

let doc = "Grid search for diversity parameters (§4.2)"

(* The tuning topology is sized by [cores], not by the CLI scale. *)
let config_of_cli (_ : Scenario.cli) = config ()

type result = { cores : int; best : objective }

let run ?obs ?jobs { cores; verbose } =
  let full =
    Caida_like.generate { Caida_like.small_params with Caida_like.n = cores * 8 }
  in
  let core, _ = Caida_like.core_subset full ~k:cores in
  { cores; best = grid_search ?obs ?jobs ~verbose core }

let to_json (r : result) =
  let p = r.best.params in
  Obs_json.Obj
    [
      ("experiment", Obs_json.String name);
      ("cores", Obs_json.Int r.cores);
      ( "params",
        Obs_json.Obj
          [
            ("alpha", Obs_json.Float p.Beacon_policy.alpha);
            ("beta", Obs_json.Float p.Beacon_policy.beta);
            ("gamma", Obs_json.Float p.Beacon_policy.gamma);
            ("threshold", Obs_json.Float p.Beacon_policy.threshold);
            ("gm_max", Obs_json.Float p.Beacon_policy.gm_max);
          ] );
      ("connectivity", Obs_json.Float r.best.connectivity);
      ("capacity_fraction", Obs_json.Float r.best.capacity_fraction);
      ("overhead_bytes", Obs_json.Float r.best.overhead_bytes);
      ("score", Obs_json.Float r.best.score);
    ]

let print (r : result) =
  let p = r.best.params in
  Printf.printf
    "Best parameters: alpha=%.1f beta=%.2f gamma=%.1f threshold=%.3f gm_max=%.1f\n"
    p.Beacon_policy.alpha p.Beacon_policy.beta p.Beacon_policy.gamma
    p.Beacon_policy.threshold p.Beacon_policy.gm_max;
  Printf.printf "connectivity=%.3f capacity=%.3f overhead=%.3g bytes score=%.3f\n"
    r.best.connectivity r.best.capacity_fraction r.best.overhead_bytes r.best.score

let exit_code _ = 0
