type scale = Tiny | Small | Medium | Paper

let scale_of_string = function
  | "tiny" -> Ok Tiny
  | "small" -> Ok Small
  | "medium" -> Ok Medium
  | "paper" -> Ok Paper
  | s -> Error (Printf.sprintf "unknown scale %S (tiny|small|medium|paper)" s)

let scale_to_string = function
  | Tiny -> "tiny"
  | Small -> "small"
  | Medium -> "medium"
  | Paper -> "paper"

type dimensions = {
  full_n : int;
  core_k : int;
  isd_cores : int;
  monitors : int;
  sample_pairs : int;
}

let dimensions = function
  | Tiny -> { full_n = 300; core_k = 40; isd_cores = 5; monitors = 10; sample_pairs = 60 }
  | Small ->
      { full_n = 1200; core_k = 100; isd_cores = 8; monitors = 26; sample_pairs = 150 }
  | Medium ->
      { full_n = 3000; core_k = 250; isd_cores = 11; monitors = 26; sample_pairs = 250 }
  | Paper ->
      { full_n = 12000; core_k = 2000; isd_cores = 11; monitors = 26; sample_pairs = 400 }

let topology_seed = 0x5C10AD00L

type prepared = {
  scale : scale;
  full : Graph.t;
  core : Graph.t;
  core_old_of_new : int array;
  isd : Graph.t;
  monitors_full : int list;
  monitors_core : int list;
}

let prepare ?(seed = topology_seed) scale =
  let d = dimensions scale in
  let params = { Caida_like.default_params with n = d.full_n; seed } in
  let full = Caida_like.generate params in
  let core, old_of_new = Caida_like.core_subset full ~k:d.core_k in
  let core = Caida_like.assign_isds core ~per_isd:10 in
  let isd, _ = Caida_like.build_isd full ~n_core:d.isd_cores in
  (* Monitors: the highest-degree full-topology ASes that survived the
     pruning, so BGP and SCION overheads are observed at the same ASes. *)
  let new_of_old = Hashtbl.create (Array.length old_of_new) in
  Array.iteri (fun ni oi -> Hashtbl.replace new_of_old oi ni) old_of_new;
  let candidates = Bgp_overhead.top_degree_monitors full ~count:(Graph.n full) in
  let rec pick acc_full acc_core n = function
    | [] -> (List.rev acc_full, List.rev acc_core)
    | _ when n = 0 -> (List.rev acc_full, List.rev acc_core)
    | m :: rest -> (
        match Hashtbl.find_opt new_of_old m with
        | Some nm -> pick (m :: acc_full) (nm :: acc_core) (n - 1) rest
        | None -> pick acc_full acc_core n rest)
  in
  let monitors_full, monitors_core = pick [] [] d.monitors candidates in
  { scale; full; core; core_old_of_new = old_of_new; isd; monitors_full; monitors_core }

let beacon_config = Beaconing.default_config

let months_factor (cfg : Beaconing.config) =
  30.0 *. 24.0 *. 3600.0 /. cfg.Beaconing.duration

let sample_pairs g ~count ~seed =
  let rng = Rng.create seed in
  let n = Graph.n g in
  if n < 2 then [||]
  else begin
    let seen = Hashtbl.create count in
    let acc = ref [] in
    let found = ref 0 in
    let attempts = ref 0 in
    let max_attempts = count * 50 in
    while !found < count && !attempts < max_attempts do
      incr attempts;
      let s = Rng.int rng n and d = Rng.int rng n in
      if s <> d && not (Hashtbl.mem seen (s, d)) then begin
        Hashtbl.replace seen (s, d) ();
        acc := (s, d) :: !acc;
        incr found
      end
    done;
    Array.of_list (List.rev !acc)
  end

(* Links between two core ASes become core links, so an ISD graph
   carries both levels of the beaconing hierarchy. *)
let coreify g =
  let b = Graph.builder () in
  for v = 0 to Graph.n g - 1 do
    let info = Graph.as_info g v in
    ignore
      (Graph.add_as b ~tier:info.Graph.tier ~cities:info.Graph.cities
         ~core:info.Graph.core info.Graph.ia)
  done;
  for l = 0 to Graph.num_links g - 1 do
    let lk = Graph.link g l in
    let rel =
      if Graph.is_core g lk.Graph.a && Graph.is_core g lk.Graph.b then Graph.Core
      else lk.Graph.rel
    in
    Graph.add_link b ~rel lk.Graph.a lk.Graph.b
  done;
  Graph.freeze b
