type profile =
  | P_flapping of { period_s : float; down_fraction : float; n_links : int }
  | P_stochastic of { mtbf_s : float; mttr_s : float }

type cell_result = {
  profile : profile;
  limit : int;
  trials_ok : int;
  trials_failed : int;
  availability_mean : float;
  availability_min : float;
  jaccard_mean : float;
  lifetime : Histogram.summary;
  survivors : int;
  link_failures : int;
  link_repairs : int;
  pcbs_dropped : int;
  segments_revoked : int;
  lookups : int;
  registrations : int;
  total_pcbs : int;
  total_bytes : float;
}

type result = {
  scale : Exp_common.scale;
  rounds : int;
  pairs : int;
  failures_allowed : int;
  cells : cell_result list;
  report : Run_report.t;
}

type config = {
  scale : Exp_common.scale;
  seed : int64;
  trials : int;
  rounds : int;  (** soak horizon in beaconing rounds *)
  chunk : int;  (** rounds per supervised work unit *)
  profiles : profile list;
  limits : int list;  (** PCB storage limits swept *)
  register_top : int;
  beacon : Beaconing.config;
  sup : Supervise.cli;
}

let default_profiles =
  [
    P_flapping { period_s = 3600.0; down_fraction = 0.25; n_links = 3 };
    P_stochastic { mtbf_s = 43200.0; mttr_s = 1800.0 };
  ]

let config ?(seed = 0xFA17L) ?(trials = 1) ?(rounds = 24) ?(chunk = 4)
    ?(profiles = default_profiles) ?(limits = [ 5; 20 ]) ?(register_top = 3)
    ?(beacon = Exp_common.beacon_config) ?(sup = Supervise.default_cli) scale =
  {
    scale;
    seed;
    trials;
    rounds;
    chunk;
    profiles;
    limits;
    register_top;
    beacon;
    sup;
  }

let name = "pathdyn"

let doc =
  "Long-horizon path-dynamics soak under link churn (checkpointable, supervised)"

let config_of_cli (c : Scenario.cli) = config ?seed:c.seed ~sup:c.sup c.scale

let profile_kind = function
  | P_flapping _ -> "flapping"
  | P_stochastic _ -> "stochastic"

let profile_name = function
  | P_flapping f ->
      Printf.sprintf "flapping %gs/%.0f%%/%d" f.period_s
        (f.down_fraction *. 100.0)
        f.n_links
  | P_stochastic s -> Printf.sprintf "mtbf %gs mttr %gs" s.mtbf_s s.mttr_s

(* Distinct flapping sites, drawn deterministically from the plan seed. *)
let pick_links rng ~num ~count =
  let count = min count num in
  let chosen = ref [] in
  while List.length !chosen < count do
    let l = Rng.int rng num in
    if not (List.mem l !chosen) then chosen := l :: !chosen
  done;
  List.rev !chosen

let plan_of_profile ~graph ~interval ~duration ~seed = function
  | P_stochastic { mtbf_s; mttr_s } ->
      Fault_plan.plan ~seed
        [
          Fault_plan.Stochastic
            { mtbf = mtbf_s; mttr = mttr_s; start = interval; until = duration };
        ]
  | P_flapping { period_s; down_fraction; n_links } ->
      let rng = Rng.create seed in
      let links = pick_links rng ~num:(Graph.num_links graph) ~count:n_links in
      Fault_plan.plan ~seed
        (List.map
           (fun link ->
             Fault_plan.Flapping
               { link; at = interval; period = period_s; down_fraction; until = duration })
           links)

type task = {
  cell_idx : int;
  trial_idx : int;
  label : string;
  soak : Soak.config;
}

let build_tasks cfg ~core ~pairs =
  let cells =
    List.concat_map (fun p -> List.map (fun l -> (p, l)) cfg.limits) cfg.profiles
  in
  let cells_arr = Array.of_list cells in
  let interval = cfg.beacon.Beaconing.interval in
  let duration = float_of_int cfg.rounds *. interval in
  let tasks =
    Array.init
      (Array.length cells_arr * cfg.trials)
      (fun i ->
        let cell_idx = i / cfg.trials and trial_idx = i mod cfg.trials in
        let profile, limit = cells_arr.(cell_idx) in
        let plan =
          plan_of_profile ~graph:core ~interval ~duration
            ~seed:(Runner.job_seed cfg.seed i) profile
        in
        {
          cell_idx;
          trial_idx;
          label =
            Printf.sprintf "%s/L%d/t%d" (profile_kind profile) limit trial_idx;
          soak =
            {
              Soak.graph = core;
              beacon =
                {
                  cfg.beacon with
                  Beaconing.algorithm = Beacon_policy.Baseline;
                  Beaconing.storage_limit = limit;
                  Beaconing.duration;
                };
              plan;
              pairs;
              register_top = cfg.register_top;
              metric_labels =
                [
                  ("profile", profile_kind profile);
                  ("limit", string_of_int limit);
                ];
            };
        })
  in
  (cells_arr, tasks)

(* --- checkpoint codec -------------------------------------------------- *)

let ckpt_prefix = "pathdyn"

let ckpt_version = 1

(* The schema fingerprints everything a resumed run must agree on: every
   trial's full soak configuration plus the chunking. A checkpoint from
   a different scale / seed / horizon is rejected on load. *)
let schema_of cfg tasks =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "pathdyn/%d/%d;" cfg.rounds cfg.chunk);
  Array.iter (fun t -> Buffer.add_string b (Soak.config_key t.soak)) tasks;
  "pathdyn:" ^ Sha256.hex (Sha256.digest (Buffer.contents b))

let w_status w = function
  | Ok bytes ->
      Snapshot.w_u8 w 0;
      Snapshot.w_str w bytes
  | Error (f : Run_report.failure) ->
      Snapshot.w_u8 w 1;
      Snapshot.w_int w f.Run_report.index;
      Snapshot.w_str w f.Run_report.label;
      Snapshot.w_opt w Snapshot.w_i64 f.Run_report.seed;
      Snapshot.w_int w f.Run_report.attempts;
      Snapshot.w_str w f.Run_report.error;
      Snapshot.w_str w f.Run_report.backtrace

let r_status r =
  match Snapshot.r_u8 r with
  | 0 -> Ok (Snapshot.r_str r)
  | 1 ->
      let index = Snapshot.r_int r in
      let label = Snapshot.r_str r in
      let seed = Snapshot.r_opt r Snapshot.r_i64 in
      let attempts = Snapshot.r_int r in
      let error = Snapshot.r_str r in
      let backtrace = Snapshot.r_str r in
      Error { Run_report.index; label; seed; attempts; error; backtrace }
  | t -> raise (Snapshot.Corrupt (Printf.sprintf "pathdyn: bad status tag %d" t))

let encode_progress ~rounds_done statuses =
  let w = Snapshot.writer () in
  Snapshot.w_int w rounds_done;
  Snapshot.w_arr w w_status statuses;
  Snapshot.contents w

let decode_progress ~n_tasks data =
  let r = Snapshot.reader data in
  let rounds_done = Snapshot.r_int r in
  let statuses = Snapshot.r_arr r r_status in
  Snapshot.r_end r;
  if Array.length statuses <> n_tasks then
    raise (Snapshot.Corrupt "pathdyn checkpoint: trial count mismatch");
  (rounds_done, statuses)

(* --- execution --------------------------------------------------------- *)

let run ?(obs = Obs.disabled) ?(jobs = 1) cfg =
  if cfg.rounds <= 0 then invalid_arg "Pathdyn.run: rounds <= 0";
  if cfg.chunk <= 0 then invalid_arg "Pathdyn.run: chunk <= 0";
  (* No Obs.phase anywhere on this path: phase timers are wall-clock, and
     the CI resume smoke compares --metrics-out byte-for-byte. *)
  let prepared = Exp_common.prepare cfg.scale in
  let core = prepared.Exp_common.core in
  let d = Exp_common.dimensions cfg.scale in
  let pairs =
    Exp_common.sample_pairs core ~count:d.Exp_common.sample_pairs ~seed:0xFA12L
  in
  let cells_arr, tasks = build_tasks cfg ~core ~pairs in
  let n_tasks = Array.length tasks in
  let schema = schema_of cfg tasks in
  let sup = cfg.sup in
  (* Start fresh at round 0 — or, with --resume, from the newest
     compatible checkpoint in the checkpoint directory. *)
  let start_round, statuses =
    let fresh () =
      (0, Array.map (fun t -> Ok (Soak.encode (Soak.create t.soak))) tasks)
    in
    match sup.Supervise.checkpoint_dir with
    | Some dir when sup.Supervise.resume -> (
        match Checkpoint.latest ~dir ~prefix:ckpt_prefix with
        | None -> fresh ()
        | Some (_, file) ->
            let payload =
              Checkpoint.load ~dir ~name:file ~schema ~version:ckpt_version
            in
            let rounds_done, statuses = decode_progress ~n_tasks payload in
            Printf.eprintf "pathdyn: resumed from %s (round %d)\n%!" file
              rounds_done;
            (rounds_done, statuses))
    | _ -> fresh ()
  in
  let statuses = Array.copy statuses in
  let policy = Supervise.policy_of_cli sup in
  let ckpts_written = ref 0 in
  let last_ckpt = ref start_round in
  let rounds_done = ref start_round in
  while !rounds_done < cfg.rounds do
    let upto = min cfg.rounds (!rounds_done + cfg.chunk) in
    let alive =
      Array.of_list
        (List.filter
           (fun i -> Result.is_ok statuses.(i))
           (List.init n_tasks Fun.id))
    in
    let inputs =
      Array.map (fun i -> (i, Result.get_ok statuses.(i))) alive
    in
    (* Jobs advance a *decoded copy* of the trial snapshot and hand back
       fresh bytes, so a crashed or timed-out attempt can never leak
       partial progress: every retry replays from the same snapshot.
       Deliberately unobserved — per-chunk supervision counters would
       differ between an uninterrupted run and a resumed one. *)
    let results, _chunk_report =
      Supervise.map ~policy
        ~label_of:(fun j -> tasks.(alive.(j)).label)
        ~jobs
        ~base_seed:(Runner.job_seed cfg.seed (cfg.rounds + !rounds_done))
        (fun ~obs:_ ~seed:_ ~watchdog (i, bytes) ->
          (match sup.Supervise.inject_fail with
          | Some k when k = i ->
              failwith (Printf.sprintf "injected failure (--inject-fail %d)" i)
          | _ -> ());
          let t = Soak.restore tasks.(i).soak bytes in
          Soak.advance ~watchdog t ~upto;
          Soak.encode t)
        inputs
    in
    Array.iteri
      (fun j r ->
        let i = alive.(j) in
        match r with
        | Ok bytes -> statuses.(i) <- Ok bytes
        | Error f -> statuses.(i) <- Error { f with Run_report.index = i })
      results;
    rounds_done := upto;
    match sup.Supervise.checkpoint_dir with
    | Some dir
      when sup.Supervise.checkpoint_every > 0
           && (upto - !last_ckpt >= sup.Supervise.checkpoint_every
              || upto = cfg.rounds) ->
        (* Consistency gate before anything hits disk. *)
        Array.iteri
          (fun i status ->
            match status with
            | Error _ -> ()
            | Ok bytes ->
                Invariants.check_exn
                  (Soak.invariant_ctx (Soak.restore tasks.(i).soak bytes)))
          statuses;
        ignore
          (Checkpoint.save ~dir
             ~name:(Checkpoint.numbered_name ~prefix:ckpt_prefix ~n:upto)
             ~schema ~version:ckpt_version
             (encode_progress ~rounds_done:upto statuses));
        last_ckpt := upto;
        incr ckpts_written;
        (match sup.Supervise.kill_after with
        | Some k when !ckpts_written >= k ->
            raise (Supervise.Killed { checkpoints = !ckpts_written })
        | _ -> ())
    | _ -> ()
  done;
  (* Aggregate the surviving trials per cell; failed trials are excluded
     from the statistics and surface in the run report instead. *)
  let cell_results =
    List.mapi
      (fun cell_idx (profile, limit) ->
        let labels =
          [ ("profile", profile_kind profile); ("limit", string_of_int limit) ]
        in
        let cell_reg = Registry.create () in
        let ok = ref 0 and failed = ref 0 in
        let avail_sum = ref 0.0
        and avail_min = ref 1.0
        and jacc_sum = ref 0.0
        and survivors = ref 0
        and link_failures = ref 0
        and link_repairs = ref 0
        and pcbs_dropped = ref 0
        and segments_revoked = ref 0
        and lookups = ref 0
        and registrations = ref 0
        and total_pcbs = ref 0
        and total_bytes = ref 0.0 in
        Array.iteri
          (fun i task ->
            if task.cell_idx = cell_idx then
              match statuses.(i) with
              | Error _ -> incr failed
              | Ok bytes ->
                  incr ok;
                  let t = Soak.restore task.soak bytes in
                  let r = Soak.report t in
                  Registry.merge ~into:cell_reg (Soak.registry t);
                  avail_sum := !avail_sum +. r.Soak.availability_mean;
                  avail_min := Float.min !avail_min r.Soak.availability_min;
                  jacc_sum := !jacc_sum +. r.Soak.jaccard_overall;
                  survivors := !survivors + r.Soak.survivors;
                  link_failures := !link_failures + r.Soak.link_failures;
                  link_repairs := !link_repairs + r.Soak.link_repairs;
                  pcbs_dropped := !pcbs_dropped + r.Soak.pcbs_dropped;
                  segments_revoked := !segments_revoked + r.Soak.segments_revoked;
                  lookups :=
                    !lookups + r.Soak.ps_stats.Path_server.lookups_core
                    + r.Soak.ps_stats.Path_server.lookups_down;
                  registrations :=
                    !registrations + r.Soak.ps_stats.Path_server.registrations;
                  total_pcbs := !total_pcbs + r.Soak.total_pcbs;
                  total_bytes := !total_bytes +. r.Soak.total_bytes)
          tasks;
        let lifetime =
          Histogram.summarize
            (Registry.histogram cell_reg ~labels "soak_path_lifetime_rounds")
        in
        if Obs.on obs then Registry.merge ~into:(Obs.registry obs) cell_reg;
        let per_ok v = if !ok = 0 then 0.0 else v /. float_of_int !ok in
        {
          profile;
          limit;
          trials_ok = !ok;
          trials_failed = !failed;
          availability_mean = per_ok !avail_sum;
          availability_min = (if !ok = 0 then 0.0 else !avail_min);
          jaccard_mean = per_ok !jacc_sum;
          lifetime;
          survivors = !survivors;
          link_failures = !link_failures;
          link_repairs = !link_repairs;
          pcbs_dropped = !pcbs_dropped;
          segments_revoked = !segments_revoked;
          lookups = !lookups;
          registrations = !registrations;
          total_pcbs = !total_pcbs;
          total_bytes = !total_bytes;
        })
      (Array.to_list cells_arr)
  in
  let report =
    Run_report.make ~jobs:n_tasks
      (Array.to_list statuses
      |> List.filter_map (function Ok _ -> None | Error f -> Some f))
  in
  if Obs.on obs then Run_report.observe obs report;
  {
    scale = cfg.scale;
    rounds = cfg.rounds;
    pairs = Array.length pairs;
    failures_allowed = sup.Supervise.max_failures;
    cells = cell_results;
    report;
  }

let exit_code r =
  if Run_report.n_failed r.report > r.failures_allowed then 1 else 0

(* --- rendering --------------------------------------------------------- *)

let to_json (r : result) =
  Obs_json.Obj
    [
      ("experiment", Obs_json.String name);
      ("scale", Obs_json.String (Exp_common.scale_to_string r.scale));
      ("rounds", Obs_json.Int r.rounds);
      ("pairs", Obs_json.Int r.pairs);
      ( "cells",
        Obs_json.List
          (List.map
             (fun c ->
               Obs_json.Obj
                 [
                   ("profile", Obs_json.String (profile_name c.profile));
                   ("storage_limit", Obs_json.Int c.limit);
                   ("trials_ok", Obs_json.Int c.trials_ok);
                   ("trials_failed", Obs_json.Int c.trials_failed);
                   ("availability_mean", Obs_json.Float c.availability_mean);
                   ("availability_min", Obs_json.Float c.availability_min);
                   ("jaccard_mean", Obs_json.Float c.jaccard_mean);
                   ("lifetimes_completed", Obs_json.Int c.lifetime.Histogram.count);
                   ("lifetime_mean_rounds", Obs_json.Float c.lifetime.Histogram.mean);
                   ("lifetime_p50_rounds", Obs_json.Float c.lifetime.Histogram.p50);
                   ("lifetime_p90_rounds", Obs_json.Float c.lifetime.Histogram.p90);
                   ("survivors", Obs_json.Int c.survivors);
                   ("link_failures", Obs_json.Int c.link_failures);
                   ("link_repairs", Obs_json.Int c.link_repairs);
                   ("pcbs_dropped", Obs_json.Int c.pcbs_dropped);
                   ("segments_revoked", Obs_json.Int c.segments_revoked);
                   ("ps_lookups", Obs_json.Int c.lookups);
                   ("ps_registrations", Obs_json.Int c.registrations);
                   ("total_pcbs", Obs_json.Int c.total_pcbs);
                   ("total_bytes", Obs_json.Float c.total_bytes);
                 ])
             r.cells) );
      ("supervision", Run_report.to_json r.report);
    ]

let print (r : result) =
  Printf.printf
    "Path dynamics — long-horizon soak under link churn (scale=%s, %d rounds, %d \
     tracked pairs)\n\n"
    (Exp_common.scale_to_string r.scale)
    r.rounds r.pairs;
  Table.print
    ~header:
      [
        "fault profile";
        "limit";
        "trials";
        "avail mean";
        "avail min";
        "jaccard";
        "lifetimes";
        "life p50";
        "life p90";
        "alive";
        "down/up";
        "dropped";
        "revoked";
      ]
    ~rows:
      (List.map
         (fun c ->
           [
             profile_name c.profile;
             string_of_int c.limit;
             (if c.trials_failed = 0 then string_of_int c.trials_ok
              else Printf.sprintf "%d (%d failed)" c.trials_ok c.trials_failed);
             Printf.sprintf "%.3f" c.availability_mean;
             Printf.sprintf "%.3f" c.availability_min;
             Printf.sprintf "%.3f" c.jaccard_mean;
             string_of_int c.lifetime.Histogram.count;
             Printf.sprintf "%.1f" c.lifetime.Histogram.p50;
             Printf.sprintf "%.1f" c.lifetime.Histogram.p90;
             string_of_int c.survivors;
             Printf.sprintf "%d/%d" c.link_failures c.link_repairs;
             string_of_int c.pcbs_dropped;
             string_of_int c.segments_revoked;
           ])
         r.cells);
  print_newline ();
  print_endline
    "Availability is the fraction of rounds a pair holds at least one valid path;\n\
     jaccard is the mean consecutive-round path-set similarity (1.0 = fully\n\
     static). Lifetimes count completed path lives in beaconing rounds; storage-\n\
     limited stores lose paths to eviction as well as to revocation, so their\n\
     path sets churn faster at the same fault plan.";
  if Run_report.n_failed r.report > 0 then begin
    print_newline ();
    Format.printf "%a@." Run_report.pp r.report
  end
