(** Path-dynamics soak: long-horizon beaconing under link churn, run
    under full supervision.

    Sweeps fault profile × PCB storage limit over the core topology.
    Each cell runs [trials] independent {!Soak} trials for [rounds]
    beaconing intervals while the profile's {!Fault_plan} flaps links,
    measuring the {e dynamics} of the path system rather than a single
    outage's recovery (the {!Resilience} scenario's job): completed
    path-lifetime distributions, consecutive-round path-set Jaccard
    stability, and per-AS-pair availability.

    This is also the proving ground for the supervision layer. Trials
    advance in [chunk]-round work units through {!Supervise.map} — a
    crashing or watchdog-expired trial is retried with deterministic
    seeds and, past its retry budget, excluded from aggregation and
    reported in the {!Run_report} while every other trial completes.
    Between chunks the full state of every trial round-trips through
    {!Soak.encode}, so [--checkpoint-every N --checkpoint-dir D] writes
    resumable checkpoints (validated by {!Invariants} before hitting
    disk) and [--resume] continues from the newest one. Interrupting a
    run at {e any} checkpoint and resuming yields byte-identical stdout
    and [--metrics-out] JSON at any [--jobs] value. *)

type profile =
  | P_flapping of { period_s : float; down_fraction : float; n_links : int }
      (** [n_links] sampled links flap with the given period *)
  | P_stochastic of { mtbf_s : float; mttr_s : float }
      (** memoryless churn on every link *)

type cell_result = {
  profile : profile;
  limit : int;  (** PCB storage limit of the cell *)
  trials_ok : int;
  trials_failed : int;  (** excluded from the statistics below *)
  availability_mean : float;
  availability_min : float;
  jaccard_mean : float;
  lifetime : Histogram.summary;  (** completed path lifetimes, rounds *)
  survivors : int;
  link_failures : int;
  link_repairs : int;
  pcbs_dropped : int;
  segments_revoked : int;
  lookups : int;
  registrations : int;
  total_pcbs : int;
  total_bytes : float;
}

type result = {
  scale : Exp_common.scale;
  rounds : int;
  pairs : int;
  failures_allowed : int;  (** the [--max-failures] tolerance *)
  cells : cell_result list;
  report : Run_report.t;  (** supervision outcome over all trials *)
}

type config = {
  scale : Exp_common.scale;
  seed : int64;
  trials : int;
  rounds : int;  (** soak horizon in beaconing rounds *)
  chunk : int;  (** rounds per supervised work unit *)
  profiles : profile list;
  limits : int list;  (** PCB storage limits swept *)
  register_top : int;  (** segments re-registered per pair per round *)
  beacon : Beaconing.config;
  sup : Supervise.cli;
}

val config :
  ?seed:int64 ->
  ?trials:int ->
  ?rounds:int ->
  ?chunk:int ->
  ?profiles:profile list ->
  ?limits:int list ->
  ?register_top:int ->
  ?beacon:Beaconing.config ->
  ?sup:Supervise.cli ->
  Exp_common.scale ->
  config
(** Defaults: seed [0xFA17L], 1 trial per cell, 24 rounds in chunks of
    4, a 3-link flapping profile and a 12 h MTBF / 30 min MTTR
    stochastic profile, storage limits 5 and 20, supervision off
    ({!Supervise.default_cli}). *)

include Scenario.Cli with type config := config and type result := result
