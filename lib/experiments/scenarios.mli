(** Registry of every experiment packaged behind {!Scenario.Cli}.

    The generic driver ([scion_expt run SCENARIO]) and the [all]
    subcommand iterate this list instead of naming the experiment
    modules; adding an experiment means implementing {!Scenario.Cli}
    and appending it here. *)

val all : (module Scenario.Cli) list
(** In presentation order: table1, fig5, fig6, scionlab, convergence,
    latency, tune. *)

val names : string list
(** The scenario names, in the same order as {!all}. *)

val find : string -> (module Scenario.Cli) option
(** Look a scenario up by {!Scenario.Cli.name}. *)
