type algo_kind =
  | Bgp
  | Baseline of int
  | Diversity of int option

type algo = { kind : algo_kind; name : string; flows : int array }

type result = {
  scale : Exp_common.scale;
  pairs : (int * int) array;
  optimum : int array;
  algos : algo list;
}

type config = {
  scale : Exp_common.scale;
  seed : int64 option;
  diversity : Beacon_policy.div_params;
  storage_limits : int option list;
  beacon : Beaconing.config;
}

let baseline_limit = 60

let config ?seed ?(diversity = Beacon_policy.default_div_params)
    ?(storage_limits = [ Some 15; Some 30; Some 60; None ])
    ?(beacon = Exp_common.beacon_config) scale =
  { scale; seed; diversity; storage_limits; beacon }

let name = "fig6"

let doc = "Figure 6: path quality (resilience and capacity)"

let config_of_cli (c : Scenario.cli) = config ?seed:c.seed c.scale

let storage_name = function None -> "\xe2\x88\x9e" (* ∞ *) | Some limit -> string_of_int limit

let kind_name = function
  | Bgp -> "BGP"
  | Baseline limit -> Printf.sprintf "SCION Baseline (%d)" limit
  | Diversity limit -> Printf.sprintf "SCION Diversity (%s)" (storage_name limit)

(* Beaconing stores at most [storage_limit] PCBs per origin; [None]
   (unlimited) maps onto the engine's [max_int] representation. *)
let beaconing_limit = function None -> max_int | Some limit -> limit

let scion_flows core outcome pairs =
  Array.map
    (fun (s, d) ->
      let pcbs =
        Beacon_store.paths outcome.Beaconing.stores.(s)
          ~now:(outcome.Beaconing.config.Beaconing.duration -. 1.0)
          ~origin:d
      in
      Path_quality.of_pcbs core pcbs ~src:s ~dst:d)
    pairs

(* Independent stages: the optimum cuts, the BGP flows and one
   beaconing run per algorithm all fan out as parallel jobs. *)
type stage = S_optimum of int array | S_algo of algo

let run ?(obs = Obs.disabled) ?(jobs = 1)
    { scale; seed; diversity; storage_limits; beacon } =
  let prepared =
    Obs.phase obs "fig6.prepare" (fun () -> Exp_common.prepare ?seed scale)
  in
  let core = prepared.Exp_common.core in
  let d = Exp_common.dimensions scale in
  let pairs = Exp_common.sample_pairs core ~count:d.Exp_common.sample_pairs ~seed:0xF16AL in
  let cfg = beacon in
  let beacon_algo ~obs kind config =
    let out = Beaconing.run ~obs core config in
    { kind; name = kind_name kind; flows = scion_flows core out pairs }
  in
  let stages =
    Array.of_list
      ((fun ~obs ->
         S_optimum
           (Obs.phase obs "fig6.optimum_cuts" (fun () ->
                Array.map (fun (s, d) -> Path_quality.optimum core ~src:s ~dst:d) pairs)))
      :: (fun ~obs ->
           S_algo
             (Obs.phase obs "fig6.bgp_flows" (fun () ->
                  let flows =
                    Array.map
                      (fun (s, d) ->
                        let paths = Bgp_routes.shortest_multipath core ~src:s ~dst:d in
                        Path_quality.of_as_paths core paths ~src:s ~dst:d)
                      pairs
                  in
                  { kind = Bgp; name = kind_name Bgp; flows })))
      :: (fun ~obs ->
           S_algo
             (Obs.phase obs "fig6.beaconing.baseline" (fun () ->
                  beacon_algo ~obs (Baseline baseline_limit)
                    { cfg with Beaconing.storage_limit = baseline_limit })))
      :: List.map
           (fun limit ~obs ->
             S_algo
               (Obs.phase obs "fig6.beaconing.diversity" (fun () ->
                    beacon_algo ~obs (Diversity limit)
                      {
                        cfg with
                        Beaconing.storage_limit = beaconing_limit limit;
                        Beaconing.algorithm = Beacon_policy.Diversity diversity;
                      })))
           storage_limits)
  in
  let staged = Runner.map_jobs_obs ~obs ~jobs (fun ~obs stage -> stage ~obs) stages in
  let optimum =
    match staged.(0) with S_optimum o -> o | S_algo _ -> assert false
  in
  let algos =
    Array.to_list staged
    |> List.filter_map (function S_algo a -> Some a | S_optimum _ -> None)
  in
  { scale; pairs; optimum; algos }

let find_kind r kind = List.find_opt (fun a -> a.kind = kind) r.algos

let capacity_fraction r kind =
  match find_kind r kind with
  | None -> nan
  | Some a ->
      (* Mean of per-pair achieved/optimal ratios (capped at 1), so a
         few extremely parallel pairs do not dominate the aggregate. *)
      let sum = ref 0.0 and cnt = ref 0 in
      Array.iteri
        (fun i f ->
          if r.optimum.(i) > 0 then begin
            sum := !sum +. min 1.0 (float_of_int f /. float_of_int r.optimum.(i));
            incr cnt
          end)
        a.flows;
      if !cnt = 0 then nan else !sum /. float_of_int !cnt

let to_json (r : result) =
  let ints a = Obs_json.List (List.map (fun v -> Obs_json.Int v) (Array.to_list a)) in
  Obs_json.Obj
    [
      ("experiment", Obs_json.String name);
      ("scale", Obs_json.String (Exp_common.scale_to_string r.scale));
      ("pairs", Obs_json.Int (Array.length r.pairs));
      ("optimum", ints r.optimum);
      ( "algos",
        Obs_json.List
          (List.map
             (fun a ->
               Obs_json.Obj
                 [
                   ("name", Obs_json.String a.name);
                   ( "capacity_fraction",
                     Obs_json.Float (capacity_fraction r a.kind) );
                   ("flows", ints a.flows);
                 ])
             r.algos) );
    ]

let print (r : result) =
  Printf.printf "Figure 6 — path quality on the core topology (scale=%s, %d AS pairs)\n\n"
    (Exp_common.scale_to_string r.scale)
    (Array.length r.pairs);
  (* --- Fig. 6a: achieved resilience grouped by optimal min-cut. --- *)
  print_endline
    "Fig. 6a — mean number of failing links needed to disconnect a pair,";
  print_endline "grouped by the pair's optimal (full-topology) min-cut:";
  let max_opt = Array.fold_left max 0 r.optimum in
  let buckets = List.init (max 1 (min max_opt 15)) (fun i -> i + 1) in
  let group_mean flows bucket =
    let sum = ref 0.0 and cnt = ref 0 in
    Array.iteri
      (fun i o ->
        let in_bucket = if bucket = 15 then o >= 15 else o = bucket in
        if in_bucket then begin
          sum := !sum +. float_of_int flows.(i);
          incr cnt
        end)
      r.optimum;
    if !cnt = 0 then None else Some (!sum /. float_of_int !cnt)
  in
  let header =
    "optimal cut" :: "#pairs" :: "Optimum" :: List.map (fun a -> a.name) r.algos
  in
  let rows =
    List.filter_map
      (fun b ->
        let count =
          Array.fold_left
            (fun acc o -> if (if b = 15 then o >= 15 else o = b) then acc + 1 else acc)
            0 r.optimum
        in
        if count = 0 then None
        else begin
          let cells =
            List.map
              (fun a ->
                match group_mean a.flows b with
                | None -> "-"
                | Some m -> Printf.sprintf "%.1f" m)
              r.algos
          in
          let label = if b = 15 then ">=15" else string_of_int b in
          Some (label :: string_of_int count
                :: (match group_mean r.optimum b with
                   | None -> "-"
                   | Some m -> Printf.sprintf "%.1f" m)
                :: cells)
        end)
      buckets
  in
  Table.print ~header ~rows;
  print_newline ();
  (* --- Fig. 6b: capacity CDF. --- *)
  print_endline "Fig. 6b — capacity CDF (fraction of pairs with capacity <= c):";
  let caps = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let cdf_at flows c =
    let n = Array.length flows in
    if n = 0 then 0.0
    else begin
      let le = Array.fold_left (fun acc f -> if f <= c then acc + 1 else acc) 0 flows in
      float_of_int le /. float_of_int n
    end
  in
  let header = "capacity <=" :: List.map (fun a -> a.name) r.algos @ [ "All Paths (optimum)" ] in
  let rows =
    List.map
      (fun c ->
        string_of_int c
        :: (List.map (fun a -> Printf.sprintf "%.2f" (cdf_at a.flows c)) r.algos
           @ [ Printf.sprintf "%.2f" (cdf_at r.optimum c) ]))
      caps
  in
  Table.print ~header ~rows;
  print_newline ();
  (* --- Headlines, matched on the algorithm variant (renaming the
     display strings can no longer silently drop them). --- *)
  print_endline "Headline checks (paper §5.3):";
  List.iter
    (fun a ->
      match a.kind with
      | Diversity _ ->
          Printf.printf "  %s reaches %.0f%% of optimal capacity (paper: 82-99%%)\n"
            a.name
            (100.0 *. capacity_fraction r a.kind)
      | Bgp | Baseline _ -> ())
    r.algos;
  (* Q1: baseline vs BGP for pairs with optimum <= 15. *)
  let mean_for kind pred =
    match find_kind r kind with
    | None -> nan
    | Some a ->
        let sum = ref 0.0 and cnt = ref 0 in
        Array.iteri
          (fun i f ->
            if pred r.optimum.(i) then begin
              sum := !sum +. float_of_int f;
              incr cnt
            end)
          a.flows;
        if !cnt = 0 then nan else !sum /. float_of_int !cnt
  in
  let small o = o <= 15 in
  let base_mean = mean_for (Baseline baseline_limit) small in
  let bgp_mean = mean_for Bgp small in
  Printf.printf
    "  baseline vs BGP resilience for pairs with optimum <=15 links: %.2fx (paper: >2x)\n"
    (base_mean /. bgp_mean)

let exit_code _ = 0
