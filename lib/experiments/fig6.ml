type algo = { name : string; flows : int array }

type result = {
  scale : Exp_common.scale;
  pairs : (int * int) array;
  optimum : int array;
  algos : algo list;
}

let storage_name limit =
  if limit = max_int then "\xe2\x88\x9e" (* ∞ *) else string_of_int limit

let scion_flows core outcome pairs =
  Array.map
    (fun (s, d) ->
      let pcbs =
        Beacon_store.paths outcome.Beaconing.stores.(s)
          ~now:(outcome.Beaconing.config.Beaconing.duration -. 1.0)
          ~origin:d
      in
      Path_quality.of_pcbs core pcbs ~src:s ~dst:d)
    pairs

let run ?(obs = Obs.disabled) ?(diversity = Beacon_policy.default_div_params)
    ?(storage_limits = [ 15; 30; 60; max_int ]) ?(beacon = Exp_common.beacon_config)
    scale =
  let prepared = Obs.phase obs "fig6.prepare" (fun () -> Exp_common.prepare scale) in
  let core = prepared.Exp_common.core in
  let d = Exp_common.dimensions scale in
  let pairs = Exp_common.sample_pairs core ~count:d.Exp_common.sample_pairs ~seed:0xF16AL in
  let optimum =
    Obs.phase obs "fig6.optimum_cuts" (fun () ->
        Array.map (fun (s, d) -> Path_quality.optimum core ~src:s ~dst:d) pairs)
  in
  let bgp_flows =
    Obs.phase obs "fig6.bgp_flows" (fun () ->
        Array.map
          (fun (s, d) ->
            let paths = Bgp_routes.shortest_multipath core ~src:s ~dst:d in
            Path_quality.of_as_paths core paths ~src:s ~dst:d)
          pairs)
  in
  let cfg = beacon in
  let base_out =
    Obs.phase obs "fig6.beaconing.baseline" (fun () ->
        Beaconing.run ~obs core { cfg with Beaconing.storage_limit = 60 })
  in
  let base = { name = "SCION Baseline (60)"; flows = scion_flows core base_out pairs } in
  let div_algos =
    List.map
      (fun limit ->
        let out =
          Obs.phase obs "fig6.beaconing.diversity" (fun () ->
              Beaconing.run ~obs core
                {
                  cfg with
                  Beaconing.storage_limit = limit;
                  Beaconing.algorithm = Beacon_policy.Diversity diversity;
                })
        in
        {
          name = Printf.sprintf "SCION Diversity (%s)" (storage_name limit);
          flows = scion_flows core out pairs;
        })
      storage_limits
  in
  {
    scale;
    pairs;
    optimum;
    algos = ({ name = "BGP"; flows = bgp_flows } :: base :: div_algos);
  }

let capacity_fraction r name =
  match List.find_opt (fun a -> a.name = name) r.algos with
  | None -> nan
  | Some a ->
      (* Mean of per-pair achieved/optimal ratios (capped at 1), so a
         few extremely parallel pairs do not dominate the aggregate. *)
      let sum = ref 0.0 and cnt = ref 0 in
      Array.iteri
        (fun i f ->
          if r.optimum.(i) > 0 then begin
            sum := !sum +. min 1.0 (float_of_int f /. float_of_int r.optimum.(i));
            incr cnt
          end)
        a.flows;
      if !cnt = 0 then nan else !sum /. float_of_int !cnt

let print r =
  Printf.printf "Figure 6 — path quality on the core topology (scale=%s, %d AS pairs)\n\n"
    (Exp_common.scale_to_string r.scale)
    (Array.length r.pairs);
  (* --- Fig. 6a: achieved resilience grouped by optimal min-cut. --- *)
  print_endline
    "Fig. 6a — mean number of failing links needed to disconnect a pair,";
  print_endline "grouped by the pair's optimal (full-topology) min-cut:";
  let max_opt = Array.fold_left max 0 r.optimum in
  let buckets = List.init (max 1 (min max_opt 15)) (fun i -> i + 1) in
  let group_mean flows bucket =
    let sum = ref 0.0 and cnt = ref 0 in
    Array.iteri
      (fun i o ->
        let in_bucket = if bucket = 15 then o >= 15 else o = bucket in
        if in_bucket then begin
          sum := !sum +. float_of_int flows.(i);
          incr cnt
        end)
      r.optimum;
    if !cnt = 0 then None else Some (!sum /. float_of_int !cnt)
  in
  let header =
    "optimal cut" :: "#pairs" :: "Optimum" :: List.map (fun a -> a.name) r.algos
  in
  let rows =
    List.filter_map
      (fun b ->
        let count =
          Array.fold_left
            (fun acc o -> if (if b = 15 then o >= 15 else o = b) then acc + 1 else acc)
            0 r.optimum
        in
        if count = 0 then None
        else begin
          let cells =
            List.map
              (fun a ->
                match group_mean a.flows b with
                | None -> "-"
                | Some m -> Printf.sprintf "%.1f" m)
              r.algos
          in
          let label = if b = 15 then ">=15" else string_of_int b in
          Some (label :: string_of_int count
                :: (match group_mean r.optimum b with
                   | None -> "-"
                   | Some m -> Printf.sprintf "%.1f" m)
                :: cells)
        end)
      buckets
  in
  Table.print ~header ~rows;
  print_newline ();
  (* --- Fig. 6b: capacity CDF. --- *)
  print_endline "Fig. 6b — capacity CDF (fraction of pairs with capacity <= c):";
  let caps = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let cdf_at flows c =
    let n = Array.length flows in
    if n = 0 then 0.0
    else begin
      let le = Array.fold_left (fun acc f -> if f <= c then acc + 1 else acc) 0 flows in
      float_of_int le /. float_of_int n
    end
  in
  let header = "capacity <=" :: List.map (fun a -> a.name) r.algos @ [ "All Paths (optimum)" ] in
  let rows =
    List.map
      (fun c ->
        string_of_int c
        :: (List.map (fun a -> Printf.sprintf "%.2f" (cdf_at a.flows c)) r.algos
           @ [ Printf.sprintf "%.2f" (cdf_at r.optimum c) ]))
      caps
  in
  Table.print ~header ~rows;
  print_newline ();
  (* --- Headlines. --- *)
  print_endline "Headline checks (paper §5.3):";
  List.iter
    (fun a ->
      if String.length a.name >= 15 && String.sub a.name 0 15 = "SCION Diversity" then
        Printf.printf "  %s reaches %.0f%% of optimal capacity (paper: 82-99%%)\n" a.name
          (100.0 *. capacity_fraction r a.name))
    r.algos;
  (* Q1: baseline vs BGP for pairs with optimum <= 15. *)
  let mean_for name pred =
    match List.find_opt (fun a -> a.name = name) r.algos with
    | None -> nan
    | Some a ->
        let sum = ref 0.0 and cnt = ref 0 in
        Array.iteri
          (fun i f ->
            if pred r.optimum.(i) then begin
              sum := !sum +. float_of_int f;
              incr cnt
            end)
          a.flows;
        if !cnt = 0 then nan else !sum /. float_of_int !cnt
  in
  let small o = o <= 15 in
  let base_mean = mean_for "SCION Baseline (60)" small in
  let bgp_mean = mean_for "BGP" small in
  Printf.printf
    "  baseline vs BGP resilience for pairs with optimum <=15 links: %.2fx (paper: >2x)\n"
    (base_mean /. bgp_mean)
