type algo = { name : string; flows : int array }

type result = {
  pairs : (int * int) array;
  optimum : int array;
  algos : algo list;
  iface_bps : float array;
}

type config = { diversity : Beacon_policy.div_params }

let config ?(diversity = Beacon_policy.default_div_params) () = { diversity }

let name = "scionlab"

let doc = "Appendix B: SCIONLab testbed evaluation (Figures 7-9)"

(* The SCIONLab topology is fixed; scale and seed do not apply. *)
let config_of_cli (_ : Scenario.cli) = config ()

let all_pairs g =
  let n = Graph.n g in
  let acc = ref [] in
  for s = 0 to n - 1 do
    for d = s + 1 to n - 1 do
      acc := (s, d) :: !acc
    done
  done;
  Array.of_list (List.rev !acc)

let scion_flows g outcome pairs =
  Array.map
    (fun (s, d) ->
      let pcbs =
        Beacon_store.paths outcome.Beaconing.stores.(s)
          ~now:(outcome.Beaconing.config.Beaconing.duration -. 1.0)
          ~origin:d
      in
      Path_quality.of_pcbs g pcbs ~src:s ~dst:d)
    pairs

(* Independent stages: the all-pairs optimum, the baseline(5) run (which
   also yields the measured path set and the Fig. 9 interface rates) and
   one diversity run per storage limit. *)
type stage =
  | S_optimum of int array
  | S_baseline of Beaconing.outcome
  | S_div of algo

let div_limits = [ 5; 10; 15; 60 ]

let run ?(obs = Obs.disabled) ?(jobs = 1) { diversity } =
  let g = Scionlab.generate Scionlab.default_params in
  let pairs = all_pairs g in
  let cfg = Exp_common.beacon_config in
  let stages =
    Array.of_list
      ((fun ~obs ->
         S_optimum
           (Obs.phase obs "scionlab.optimum_cuts" (fun () ->
                Array.map (fun (s, d) -> Path_quality.optimum g ~src:s ~dst:d) pairs)))
      :: (fun ~obs ->
           S_baseline
             (Obs.phase obs "scionlab.beaconing.baseline" (fun () ->
                  Beaconing.run ~obs g { cfg with Beaconing.storage_limit = 5 })))
      :: List.map
           (fun limit ~obs ->
             S_div
               (Obs.phase obs "scionlab.beaconing.diversity" (fun () ->
                    let out =
                      Beaconing.run ~obs g
                        {
                          cfg with
                          Beaconing.storage_limit = limit;
                          Beaconing.algorithm = Beacon_policy.Diversity diversity;
                        }
                    in
                    {
                      name = Printf.sprintf "SCION Diversity (%d)" limit;
                      flows = scion_flows g out pairs;
                    })))
           div_limits)
  in
  let staged = Runner.map_jobs_obs ~obs ~jobs (fun ~obs stage -> stage ~obs) stages in
  let optimum =
    match staged.(0) with S_optimum o -> o | _ -> assert false
  in
  let baseline5 =
    match staged.(1) with S_baseline b -> b | _ -> assert false
  in
  let divs =
    Array.to_list staged
    |> List.filter_map (function S_div a -> Some a | _ -> None)
  in
  let baseline_flows = scion_flows g baseline5 pairs in
  let algos =
    { name = "Measurement"; flows = baseline_flows }
    :: { name = "SCION Baseline (5)"; flows = baseline_flows }
    :: divs
  in
  let iface_bps =
    Array.map
      (fun b -> b /. baseline5.Beaconing.config.Beaconing.duration)
      (Beaconing.eligible_iface_bytes baseline5)
  in
  if Obs.on obs then begin
    let h = Registry.histogram (Obs.registry obs) "scionlab_iface_bps" in
    Array.iter (Histogram.observe h) iface_bps
  end;
  { pairs; optimum; algos; iface_bps }

let to_json (r : result) =
  let ints a = Obs_json.List (List.map (fun v -> Obs_json.Int v) (Array.to_list a)) in
  Obs_json.Obj
    [
      ("experiment", Obs_json.String name);
      ("pairs", Obs_json.Int (Array.length r.pairs));
      ("optimum", ints r.optimum);
      ( "algos",
        Obs_json.List
          (List.map
             (fun a ->
               Obs_json.Obj
                 [ ("name", Obs_json.String a.name); ("flows", ints a.flows) ])
             r.algos) );
      ( "iface_bps",
        Obs_json.List
          (List.map (fun v -> Obs_json.Float v) (Array.to_list r.iface_bps)) );
    ]

let cdf_rows values_list caps to_cell =
  List.map
    (fun c ->
      List.map
        (fun vs ->
          let n = Array.length vs in
          let le = Array.fold_left (fun acc v -> if v <= c then acc + 1 else acc) 0 vs in
          to_cell (float_of_int le /. float_of_int (max 1 n)))
        values_list)
    caps

let print (r : result) =
  Printf.printf "SCIONLab evaluation (Appendix B) — %d core AS pairs\n\n"
    (Array.length r.pairs);
  print_endline
    "Fig. 7/8 — resilience & capacity CDF (fraction of pairs with max-flow <= c):";
  let caps = [ 1; 2; 3; 4; 5; 6 ] in
  let series = List.map (fun a -> a.flows) r.algos @ [ r.optimum ] in
  let header =
    "flow <=" :: List.map (fun a -> a.name) r.algos @ [ "All Paths (optimum)" ]
  in
  let body = cdf_rows series caps (Printf.sprintf "%.2f") in
  let rows = List.map2 (fun c cells -> string_of_int c :: cells) caps body in
  Table.print ~header ~rows;
  print_newline ();
  (* Fraction of pairs where each diversity variant beats Measurement. *)
  (match List.find_opt (fun a -> a.name = "Measurement") r.algos with
  | None -> ()
  | Some m ->
      print_endline
        "Fraction of pairs where diversity beats the measured path set (paper: 17/42/52/55% for 5/10/15/60):";
      List.iter
        (fun a ->
          if a.name <> "Measurement" && a.name <> "SCION Baseline (5)" then begin
            let better = ref 0 in
            Array.iteri
              (fun i f -> if f > m.flows.(i) then incr better)
              a.flows;
            Printf.printf "  %s: %.0f%%\n" a.name
              (100.0 *. float_of_int !better /. float_of_int (Array.length m.flows))
          end)
        r.algos);
  print_newline ();
  print_endline "Fig. 9 — per-interface core-beaconing bandwidth (Bps), baseline(5):";
  (* Log-bucketed histogram over the per-interface rates: the same
     structure the observability export uses, so the printed quantiles
     match the [scionlab_iface_bps] histogram in --metrics-out. *)
  let h = Histogram.create () in
  Array.iter (Histogram.observe h) r.iface_bps;
  let s = Histogram.summarize h in
  Printf.printf
    "  %d interfaces: mean %.3g  p50 %.3g  p90 %.3g  p99 %.3g  max %.3g Bps\n"
    s.Histogram.count s.Histogram.mean s.Histogram.p50 s.Histogram.p90
    s.Histogram.p99 s.Histogram.max;
  Printf.printf "  interfaces below 4 KB/s: %.0f%% (paper: ~80%%)\n"
    (100.0 *. Histogram.fraction_le h 4096.0)

let exit_code _ = 0
