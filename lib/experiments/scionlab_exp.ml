type algo = { name : string; flows : int array }

type result = {
  pairs : (int * int) array;
  optimum : int array;
  algos : algo list;
  iface_bps : float array;
}

let all_pairs g =
  let n = Graph.n g in
  let acc = ref [] in
  for s = 0 to n - 1 do
    for d = s + 1 to n - 1 do
      acc := (s, d) :: !acc
    done
  done;
  Array.of_list (List.rev !acc)

let scion_flows g outcome pairs =
  Array.map
    (fun (s, d) ->
      let pcbs =
        Beacon_store.paths outcome.Beaconing.stores.(s)
          ~now:(outcome.Beaconing.config.Beaconing.duration -. 1.0)
          ~origin:d
      in
      Path_quality.of_pcbs g pcbs ~src:s ~dst:d)
    pairs

let run ?(obs = Obs.disabled) ?(diversity = Beacon_policy.default_div_params) () =
  let g = Scionlab.generate Scionlab.default_params in
  let pairs = all_pairs g in
  let optimum = Array.map (fun (s, d) -> Path_quality.optimum g ~src:s ~dst:d) pairs in
  let cfg = Exp_common.beacon_config in
  let baseline5 =
    Obs.phase obs "scionlab.beaconing.baseline" (fun () ->
        Beaconing.run ~obs g { cfg with Beaconing.storage_limit = 5 })
  in
  let algos =
    ({ name = "Measurement"; flows = scion_flows g baseline5 pairs }
    :: { name = "SCION Baseline (5)"; flows = scion_flows g baseline5 pairs }
    :: List.map
         (fun limit ->
           let out =
             Obs.phase obs "scionlab.beaconing.diversity" (fun () ->
                 Beaconing.run ~obs g
                   {
                     cfg with
                     Beaconing.storage_limit = limit;
                     Beaconing.algorithm = Beacon_policy.Diversity diversity;
                   })
           in
           {
             name = Printf.sprintf "SCION Diversity (%d)" limit;
             flows = scion_flows g out pairs;
           })
         [ 5; 10; 15; 60 ])
  in
  let iface_bps =
    Array.map
      (fun b -> b /. baseline5.Beaconing.config.Beaconing.duration)
      (Beaconing.eligible_iface_bytes baseline5)
  in
  if Obs.on obs then begin
    let h = Registry.histogram (Obs.registry obs) "scionlab_iface_bps" in
    Array.iter (Histogram.observe h) iface_bps
  end;
  { pairs; optimum; algos; iface_bps }

let cdf_rows values_list caps to_cell =
  List.map
    (fun c ->
      List.map
        (fun vs ->
          let n = Array.length vs in
          let le = Array.fold_left (fun acc v -> if v <= c then acc + 1 else acc) 0 vs in
          to_cell (float_of_int le /. float_of_int (max 1 n)))
        values_list)
    caps

let print r =
  Printf.printf "SCIONLab evaluation (Appendix B) — %d core AS pairs\n\n"
    (Array.length r.pairs);
  print_endline
    "Fig. 7/8 — resilience & capacity CDF (fraction of pairs with max-flow <= c):";
  let caps = [ 1; 2; 3; 4; 5; 6 ] in
  let series = List.map (fun a -> a.flows) r.algos @ [ r.optimum ] in
  let header =
    "flow <=" :: List.map (fun a -> a.name) r.algos @ [ "All Paths (optimum)" ]
  in
  let body = cdf_rows series caps (Printf.sprintf "%.2f") in
  let rows = List.map2 (fun c cells -> string_of_int c :: cells) caps body in
  Table.print ~header ~rows;
  print_newline ();
  (* Fraction of pairs where each diversity variant beats Measurement. *)
  (match List.find_opt (fun a -> a.name = "Measurement") r.algos with
  | None -> ()
  | Some m ->
      print_endline
        "Fraction of pairs where diversity beats the measured path set (paper: 17/42/52/55% for 5/10/15/60):";
      List.iter
        (fun a ->
          if a.name <> "Measurement" && a.name <> "SCION Baseline (5)" then begin
            let better = ref 0 in
            Array.iteri
              (fun i f -> if f > m.flows.(i) then incr better)
              a.flows;
            Printf.printf "  %s: %.0f%%\n" a.name
              (100.0 *. float_of_int !better /. float_of_int (Array.length m.flows))
          end)
        r.algos);
  print_newline ();
  print_endline "Fig. 9 — per-interface core-beaconing bandwidth (Bps), baseline(5):";
  (* Log-bucketed histogram over the per-interface rates: the same
     structure the observability export uses, so the printed quantiles
     match the [scionlab_iface_bps] histogram in --metrics-out. *)
  let h = Histogram.create () in
  Array.iter (Histogram.observe h) r.iface_bps;
  let s = Histogram.summarize h in
  Printf.printf
    "  %d interfaces: mean %.3g  p50 %.3g  p90 %.3g  p99 %.3g  max %.3g Bps\n"
    s.Histogram.count s.Histogram.mean s.Histogram.p50 s.Histogram.p90
    s.Histogram.p99 s.Histogram.max;
  Printf.printf "  interfaces below 4 KB/s: %.0f%% (paper: ~80%%)\n"
    (100.0 *. Histogram.fraction_le h 4096.0)
