let all : (module Scenario.Cli) list =
  [
    (module Table1);
    (module Fig5);
    (module Fig6);
    (module Scionlab_exp);
    (module Convergence);
    (module Resilience);
    (module Pathdyn);
    (module Latency_exp);
    (module Tuning);
    (module Traffic_exp);
  ]

let names = List.map (fun (module S : Scenario.Cli) -> S.name) all

let find name =
  List.find_opt (fun (module S : Scenario.Cli) -> S.name = name) all
