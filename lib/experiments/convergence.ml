type failure_sample = {
  link : int;
  bgp_convergence_s : float;
  bgp_updates : int;
  bgp_bytes : float;
  scion_failover_s : float;
  scion_control_messages : int;
  scion_alternatives_ready : int;
}

type result = {
  initial_convergence_s : float;
  initial_updates : int;
  samples : failure_sample list;
}

let run ?(obs = Obs.disabled) ?(n_failures = 5) ?(seed = 0xC0117L) scale =
  let prepared = Exp_common.prepare scale in
  let core = prepared.Exp_common.core in
  let rng = Rng.create seed in
  (* BGP over the core mesh: full transit, length-only decision (the
     §5.3 best-case model). *)
  let bgp =
    Bgp_sim.create ~obs core { Bgp_sim.default_config with Bgp_sim.full_transit = true }
  in
  Bgp_sim.announce_all bgp;
  let initial_convergence_s =
    Obs.phase obs "convergence.bgp_initial" (fun () -> Bgp_sim.run_to_quiescence bgp)
  in
  let initial_updates = (Bgp_sim.stats bgp).Bgp_sim.updates_sent in
  (* SCION: one diversity beaconing run; paths are then stable. *)
  let scion =
    Obs.phase obs "convergence.beaconing" (fun () ->
        Beaconing.run ~obs core
          {
            Exp_common.beacon_config with
            Beaconing.algorithm = Beacon_policy.Diversity Beacon_policy.default_div_params;
          })
  in
  let now = Exp_common.beacon_config.Beaconing.duration -. 1.0 in
  let prop = Bgp_sim.default_config.Bgp_sim.propagation_delay in
  (* Sample distinct links with enough redundancy that both protocols
     survive the failure. *)
  let samples = ref [] in
  let used = Hashtbl.create 8 in
  let attempts = ref 0 in
  while List.length !samples < n_failures && !attempts < 500 do
    incr attempts;
    let l = Rng.int rng (Graph.num_links core) in
    if not (Hashtbl.mem used l) then begin
      (* The failure takes down the whole adjacency: every parallel
         link between the two ASes (a shared conduit failing). *)
      let lk = Graph.link core l in
      let siblings =
        List.map
          (fun (x : Graph.link) -> x.Graph.link_id)
          (Graph.links_between core lk.Graph.a lk.Graph.b)
      in
      let on_any p = Array.exists (fun x -> List.mem x siblings) p.Pcb.links in
      let s = lk.Graph.a in
      let victims =
        List.filter_map
          (fun d ->
            if d = s then None
            else begin
              let paths = Beacon_store.paths scion.Beaconing.stores.(s) ~now ~origin:d in
              let on_link = List.filter on_any paths in
              if on_link = [] then None
              else begin
                let alternatives =
                  List.length (List.filter (fun p -> not (on_any p)) paths)
                in
                (* Failure distance: position of the link on the first
                   affected path determines the SCMP round trip. *)
                let dist =
                  match on_link with
                  | p :: _ ->
                      let pos = ref 0 in
                      Array.iteri
                        (fun i x -> if List.mem x siblings then pos := i)
                        p.Pcb.links;
                      !pos + 1
                  | [] -> 1
                in
                Some (d, alternatives, dist)
              end
            end)
          (Beacon_store.origins scion.Beaconing.stores.(s))
      in
      match victims with
      | [] -> ()
      | (_, alternatives, dist) :: _ ->
          List.iter (fun sl -> Hashtbl.replace used sl ()) siblings;
          (* BGP churn for the adjacency failure. *)
          Bgp_sim.reset_stats bgp;
          let t0 = Des.now (Bgp_sim.sim bgp) in
          List.iter (Bgp_sim.fail_link bgp) siblings;
          let tq = Bgp_sim.run_to_quiescence bgp in
          let st = Bgp_sim.stats bgp in
          let sample =
            {
              link = l;
              bgp_convergence_s = tq -. t0;
              bgp_updates = st.Bgp_sim.updates_sent + st.Bgp_sim.withdrawals_sent;
              bgp_bytes = st.Bgp_sim.bytes_sent;
              (* SCMP travels back from the failure point; the endpoint
                 switches to an already-known path immediately. *)
              scion_failover_s = float_of_int dist *. prop;
              scion_control_messages = 0;
              scion_alternatives_ready = alternatives;
            }
          in
          samples := sample :: !samples;
          (* Restore for the next sample. *)
          List.iter (Bgp_sim.restore_link bgp) siblings;
          ignore (Bgp_sim.run_to_quiescence bgp)
    end
  done;
  { initial_convergence_s; initial_updates; samples = List.rev !samples }

let print r =
  Printf.printf "Convergence after link failure — BGP vs SCION (§5 note)\n\n";
  Printf.printf "BGP initial convergence: %.2f s, %d updates\n\n" r.initial_convergence_s
    r.initial_updates;
  Table.print
    ~header:
      [
        "failed adjacency";
        "BGP reconvergence";
        "BGP churn msgs";
        "BGP churn bytes";
        "SCION failover";
        "SCION ctrl msgs";
        "SCION spare paths";
      ]
    ~rows:
      (List.map
         (fun s ->
           [
             string_of_int s.link;
             Printf.sprintf "%.2f s" s.bgp_convergence_s;
             string_of_int s.bgp_updates;
             Printf.sprintf "%.3g" s.bgp_bytes;
             Printf.sprintf "%.0f ms" (1000.0 *. s.scion_failover_s);
             string_of_int s.scion_control_messages;
             string_of_int s.scion_alternatives_ready;
           ])
         r.samples);
  print_newline ();
  print_endline
    "SCION needs no routing convergence: alternates were disseminated in advance;\n\
     the endpoint switches as soon as the SCMP notification arrives (§4.1, §5)."
