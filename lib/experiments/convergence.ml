type failure_sample = {
  link : int;
  bgp_convergence_s : float;
  bgp_updates : int;
  bgp_bytes : float;
  scion_failover_s : float;
  scion_control_messages : int;
  scion_alternatives_ready : int;
}

type result = {
  initial_convergence_s : float;
  initial_updates : int;
  samples : failure_sample list;
}

type config = {
  scale : Exp_common.scale;
  n_failures : int;
  seed : int64;
}

let config ?(n_failures = 5) ?(seed = 0xC0117L) scale = { scale; n_failures; seed }

let name = "convergence"

let doc = "BGP reconvergence vs SCION failover after link failures"

let config_of_cli (c : Scenario.cli) = config ?seed:c.seed c.scale

(* An adjacency failure chosen by the selection pass: every parallel
   link between the two ASes goes down (a shared conduit failing), and
   the SCION side of the answer is already known from the beacon
   stores alone. *)
type selected = {
  sel_link : int;
  sel_siblings : int list;
  sel_alternatives : int;
  sel_dist : int;
}

(* Sample distinct adjacencies with enough redundancy that both
   protocols survive the failure, via the shared fault-plan sampler
   (one [Rng.int] per attempt, parallel-link groups fail together).
   Consumes only the RNG and the beacon stores, so it is cheap and
   stays sequential; the expensive BGP churn measurements then fan out
   over the selected adjacencies. *)
let select_failures ~rng ~core ~scion ~now ~n_failures =
  Fault_plan.sample_adjacencies ~rng ~count:n_failures core
    ~accept:(fun ~link:lk ~siblings ->
      let on_any p = Array.exists (fun x -> List.mem x siblings) p.Pcb.links in
      let s = lk.Graph.a in
      let victims =
        List.filter_map
          (fun d ->
            if d = s then None
            else begin
              let paths = Beacon_store.paths scion.Beaconing.stores.(s) ~now ~origin:d in
              let on_link = List.filter on_any paths in
              if on_link = [] then None
              else begin
                let alternatives =
                  List.length (List.filter (fun p -> not (on_any p)) paths)
                in
                (* Failure distance: position of the link on the first
                   affected path determines the SCMP round trip. *)
                let dist =
                  match on_link with
                  | p :: _ ->
                      let pos = ref 0 in
                      Array.iteri
                        (fun i x -> if List.mem x siblings then pos := i)
                        p.Pcb.links;
                      !pos + 1
                  | [] -> 1
                in
                Some (d, alternatives, dist)
              end
            end)
          (Beacon_store.origins scion.Beaconing.stores.(s))
      in
      match victims with
      | [] -> None
      | (_, alternatives, dist) :: _ ->
          Some
            {
              sel_link = lk.Graph.link_id;
              sel_siblings = siblings;
              sel_alternatives = alternatives;
              sel_dist = dist;
            })

(* Each trial owns a private BGP simulator brought to quiescence from
   scratch, so trials are independent (and parallelisable) instead of
   threading one simulator through fail/restore cycles. *)
type task = T_initial | T_sample of selected

type task_result = R_initial of float * int | R_sample of failure_sample

let run ?(obs = Obs.disabled) ?(jobs = 1) { scale; n_failures; seed } =
  let prepared = Exp_common.prepare scale in
  let core = prepared.Exp_common.core in
  let rng = Rng.create seed in
  let bgp_config = { Bgp_sim.default_config with Bgp_sim.full_transit = true } in
  (* SCION: one diversity beaconing run; paths are then stable. *)
  let scion =
    Obs.phase obs "convergence.beaconing" (fun () ->
        Beaconing.run ~obs core
          {
            Exp_common.beacon_config with
            Beaconing.algorithm = Beacon_policy.Diversity Beacon_policy.default_div_params;
          })
  in
  let now = Exp_common.beacon_config.Beaconing.duration -. 1.0 in
  let prop = Bgp_sim.default_config.Bgp_sim.propagation_delay in
  let selected = select_failures ~rng ~core ~scion ~now ~n_failures in
  (* BGP over the core mesh: full transit, length-only decision (the
     §5.3 best-case model). *)
  let converged ~obs () =
    let bgp = Bgp_sim.create ~obs core bgp_config in
    Bgp_sim.announce_all bgp;
    let t = Bgp_sim.run_to_quiescence bgp in
    (bgp, t)
  in
  let tasks = Array.of_list (T_initial :: List.map (fun s -> T_sample s) selected) in
  let task_results =
    Runner.map_jobs_obs ~obs ~jobs
      (fun ~obs task ->
        match task with
        | T_initial ->
            let bgp, t =
              Obs.phase obs "convergence.bgp_initial" (fun () -> converged ~obs ())
            in
            R_initial (t, (Bgp_sim.stats bgp).Bgp_sim.updates_sent)
        | T_sample s ->
            Obs.phase obs "convergence.bgp_failure" (fun () ->
                let bgp, _ = converged ~obs () in
                (* Churn for the adjacency failure, measured from the
                   converged state. *)
                Bgp_sim.reset_stats bgp;
                let t0 = Des.now (Bgp_sim.sim bgp) in
                List.iter (Bgp_sim.fail_link bgp) s.sel_siblings;
                let tq = Bgp_sim.run_to_quiescence bgp in
                let st = Bgp_sim.stats bgp in
                R_sample
                  {
                    link = s.sel_link;
                    bgp_convergence_s = tq -. t0;
                    bgp_updates = st.Bgp_sim.updates_sent + st.Bgp_sim.withdrawals_sent;
                    bgp_bytes = st.Bgp_sim.bytes_sent;
                    (* SCMP travels back from the failure point; the
                       endpoint switches to an already-known path
                       immediately. *)
                    scion_failover_s = float_of_int s.sel_dist *. prop;
                    scion_control_messages = 0;
                    scion_alternatives_ready = s.sel_alternatives;
                  }))
      tasks
  in
  let initial_convergence_s, initial_updates =
    match task_results.(0) with
    | R_initial (t, u) -> (t, u)
    | R_sample _ -> assert false
  in
  let samples =
    Array.to_list task_results
    |> List.filter_map (function R_sample s -> Some s | R_initial _ -> None)
  in
  { initial_convergence_s; initial_updates; samples }

let to_json (r : result) =
  Obs_json.Obj
    [
      ("experiment", Obs_json.String name);
      ("initial_convergence_s", Obs_json.Float r.initial_convergence_s);
      ("initial_updates", Obs_json.Int r.initial_updates);
      ( "samples",
        Obs_json.List
          (List.map
             (fun s ->
               Obs_json.Obj
                 [
                   ("link", Obs_json.Int s.link);
                   ("bgp_convergence_s", Obs_json.Float s.bgp_convergence_s);
                   ("bgp_updates", Obs_json.Int s.bgp_updates);
                   ("bgp_bytes", Obs_json.Float s.bgp_bytes);
                   ("scion_failover_s", Obs_json.Float s.scion_failover_s);
                   ("scion_control_messages", Obs_json.Int s.scion_control_messages);
                   ( "scion_alternatives_ready",
                     Obs_json.Int s.scion_alternatives_ready );
                 ])
             r.samples) );
    ]

let print (r : result) =
  Printf.printf "Convergence after link failure — BGP vs SCION (§5 note)\n\n";
  Printf.printf "BGP initial convergence: %.2f s, %d updates\n\n" r.initial_convergence_s
    r.initial_updates;
  Table.print
    ~header:
      [
        "failed adjacency";
        "BGP reconvergence";
        "BGP churn msgs";
        "BGP churn bytes";
        "SCION failover";
        "SCION ctrl msgs";
        "SCION spare paths";
      ]
    ~rows:
      (List.map
         (fun s ->
           [
             string_of_int s.link;
             Printf.sprintf "%.2f s" s.bgp_convergence_s;
             string_of_int s.bgp_updates;
             Printf.sprintf "%.3g" s.bgp_bytes;
             Printf.sprintf "%.0f ms" (1000.0 *. s.scion_failover_s);
             string_of_int s.scion_control_messages;
             string_of_int s.scion_alternatives_ready;
           ])
         r.samples);
  print_newline ();
  print_endline
    "SCION needs no routing convergence: alternates were disseminated in advance;\n\
     the endpoint switches as soon as the SCMP notification arrives (§4.1, §5)."

let exit_code _ = 0
