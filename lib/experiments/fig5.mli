(** Figure 5: distribution of one-month control-plane overhead at the
    monitors, relative to BGP, for BGPsec, SCION core beaconing
    (baseline and diversity-based) and SCION intra-ISD beaconing.

    BGP and BGPsec run on the full topology; SCION core beaconing runs
    on the pruned core; intra-ISD beaconing runs on the large ISD. The
    6-hour beaconing simulations are extrapolated to 30 days exactly as
    in §5.2.

    Implements {!Scenario.Cli}: drive it through [scion_expt run fig5]
    or directly via {!config} and {!run}. *)

type series = {
  name : string;
  ratios : float array;  (** per-monitor overhead relative to BGP *)
  summary : Stats.five_number;
}

type result = {
  scale : Exp_common.scale;
  bgp_bytes : float array;  (** absolute monthly bytes per monitor *)
  series : series list;
  core_ases : int;
  full_ases : int;
  isd_ases : int;
}

type config = {
  scale : Exp_common.scale;
  seed : int64 option;  (** topology seed override (default §5.1 seed) *)
  diversity : Beacon_policy.div_params;
  beacon : Beaconing.config;
}

val config :
  ?seed:int64 ->
  ?diversity:Beacon_policy.div_params ->
  ?beacon:Beaconing.config ->
  Exp_common.scale ->
  config
(** [beacon] overrides the §5.1 beaconing configuration (used by the
    bench harness to run shorter horizons). *)

val name : string

val doc : string

val config_of_cli : Scenario.cli -> config

val run : ?obs:Obs.t -> ?jobs:int -> config -> result
(** With [jobs > 1] the four independent stages — BGP/BGPsec
    accounting, baseline beaconing, diversity beaconing, intra-ISD
    beaconing — run on that many domains; the result is identical for
    every [jobs] value.

    With an enabled [obs] context (default {!Obs.disabled}) the stages
    are timed as [fig5.*] phases, the three beaconing runs are
    instrumented (see {!Beaconing.run}) and each series' per-monitor
    ratio distribution is recorded as a [fig5_overhead_ratio{series}]
    histogram. *)

val to_json : result -> Obs_json.t
(** Topology sizes, absolute BGP bytes and each series' five-number
    summary plus raw per-monitor ratios. *)

val print : result -> unit
(** Paper-style rows: one series per protocol with the five-number
    summary of the per-monitor ratio distribution, plus the Q3
    headline checks (orders of magnitude). *)

val exit_code : result -> int
(** Always [0]; this scenario has no tolerated-failure budget. *)
