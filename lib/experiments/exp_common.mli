(** Shared experiment plumbing: scale presets and derived topologies.

    Paper scale (§5.1): 12 000-AS CAIDA-like topology, 2 000-AS core,
    an 11-core/7 000-AS ISD, 26 monitors, 6 h of beaconing at 10 min
    intervals. The smaller presets keep every structural knob but
    shrink the AS counts so the full suite runs in CI / bench time. *)

type scale = Tiny | Small | Medium | Paper

val scale_of_string : string -> (scale, string) result
(** Parse ["tiny" | "small" | "medium" | "paper"] (the CLI --scale
    values); [Error] carries a usage message. *)

val scale_to_string : scale -> string

type dimensions = {
  full_n : int;  (** ASes in the full topology *)
  core_k : int;  (** size of the pruned core *)
  isd_cores : int;  (** core ASes of the intra-ISD experiment *)
  monitors : int;
  sample_pairs : int;  (** AS pairs sampled for path-quality CDFs *)
}

val dimensions : scale -> dimensions
(** The structural knobs of each preset (Paper = the §5.1 sizes). *)

val topology_seed : int64
(** Seed shared by every experiment, so they all see the same
    generated topologies. *)

type prepared = {
  scale : scale;
  full : Graph.t;  (** the CAIDA-like topology *)
  core : Graph.t;  (** pruned high-degree core, all links Core *)
  core_old_of_new : int array;
  isd : Graph.t;  (** the large single ISD *)
  monitors_full : int list;  (** monitor AS indices in [full] *)
  monitors_core : int list;  (** the same monitors in [core] *)
}

val prepare : ?seed:int64 -> scale -> prepared
(** Generate and derive all experiment topologies (deterministic). *)

val beacon_config : Beaconing.config
(** §5.1 defaults (10 min interval, 6 h lifetime/duration, limits
    5/60, ECDSA-P384 sizes). *)

val months_factor : Beaconing.config -> float
(** How many simulated windows fit in 30 days — the extrapolation the
    paper applies to compare against one month of BGP traffic. *)

val sample_pairs : Graph.t -> count:int -> seed:int64 -> (int * int) array
(** Distinct random AS pairs. *)

val coreify : Graph.t -> Graph.t
(** Relabel every link between two core ASes as {!Graph.Core}, so an
    ISD graph supports both the core and the intra-ISD beaconing
    hierarchies (used by the Table-1 taxonomy and the traffic
    workloads). *)
