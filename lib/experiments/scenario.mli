(** The unified experiment interface.

    Every paper artefact (Table 1, Figs. 5/6, convergence, latency,
    SCIONLab, tuning) implements this one module type instead of an
    ad-hoc [run] signature: a [config] value fully describes a run, a
    [result] value fully describes its outcome, and the three
    operations — execute, serialise, pretty-print — are uniform. This
    is what lets the CLI drive any experiment through one generic
    [run <scenario>] subcommand, lets the registry ({!Scenarios.all})
    enumerate them as first-class modules, and lets tests compare
    [jobs:1] against [jobs:n] runs for every scenario the same way.

    Implementations must be {e deterministic in [config]}: two runs
    with equal configs (at any [jobs] value) must produce equal
    results. Parallelism, therefore, is an execution hint, not part of
    the experiment's identity. *)

type cli = {
  scale : Exp_common.scale;  (** the shared [--scale] flag *)
  seed : int64 option;  (** the shared [--seed] flag, if given *)
  sup : Supervise.cli;
      (** the shared supervision flags (checkpointing, resume, retries,
          failure injection); {!Supervise.default_cli} for scenarios
          that do not checkpoint *)
  flows : int option;
      (** the traffic scenario's [--flows] flag (flows per strategy
          cell); [None] everywhere else *)
  strategy : Strategy.t option;
      (** the traffic scenario's [--strategy] flag: restrict the
          demand sweep to one path-selection strategy *)
  capacity_scale : float option;
      (** the traffic scenario's [--capacity-scale] flag: uniform
          link-capacity multiplier *)
}
(** The shared command-line inputs the generic driver can offer a
    scenario; {!Cli.config_of_cli} turns them into the scenario's own
    config (ignoring what does not apply — e.g. the SCIONLab topology
    is fixed, so it ignores [scale]). *)

(** An experiment: deterministic, parallelisable, serialisable. *)
module type S = sig
  type config
  (** Complete description of one run. *)

  type result
  (** Complete outcome of one run. *)

  val run : ?obs:Obs.t -> ?jobs:int -> config -> result
  (** Execute. [obs] (default {!Obs.disabled}) collects metrics, phase
      timers and traces; [jobs] (default 1) bounds the number of
      domains used for the experiment's independent sub-computations.
      The result must not depend on [jobs]. *)

  val to_json : result -> Obs_json.t
  (** Machine-readable result document (the [--out] export). *)

  val print : result -> unit
  (** The paper-style rendering on stdout. *)
end

(** An experiment plus what the CLI needs to drive it generically. *)
module type Cli = sig
  include S

  val name : string
  (** Subcommand name ([fig5], [table1], …). *)

  val doc : string
  (** One-line description for [--help]. *)

  val config_of_cli : cli -> config
  (** Default config from the shared flags. *)

  val exit_code : result -> int
  (** Process exit code the driver should end with: [0] for a fully
      successful run. Supervised scenarios return nonzero when more
      jobs failed than the configured tolerance ([--max-failures]). *)
end
