type series = {
  name : string;
  ratios : float array;
  summary : Stats.five_number;
}

type result = {
  scale : Exp_common.scale;
  bgp_bytes : float array;
  series : series list;
  core_ases : int;
  full_ases : int;
  isd_ases : int;
}

type config = {
  scale : Exp_common.scale;
  seed : int64 option;
  diversity : Beacon_policy.div_params;
  beacon : Beaconing.config;
}

let config ?seed ?(diversity = Beacon_policy.default_div_params)
    ?(beacon = Exp_common.beacon_config) scale =
  { scale; seed; diversity; beacon }

let name = "fig5"

let doc = "Figure 5: control-plane overhead relative to BGP"

let config_of_cli (c : Scenario.cli) = config ?seed:c.seed c.scale

(* Per-interface monthly bytes, the quantity comparable to a monitor's
   single BGP session (one full feed = one interface). *)
let monthly_scion_bytes outcome monitors =
  let g = outcome.Beaconing.graph in
  let per_as = Beaconing.received_bytes_by_as outcome in
  let factor = Exp_common.months_factor outcome.Beaconing.config in
  List.map
    (fun m -> per_as.(m) *. factor /. float_of_int (max 1 (Graph.link_degree g m)))
    monitors
  |> Array.of_list

let make_series name ~bgp values =
  let ratios = Array.mapi (fun i v -> v /. max 1.0 bgp.(i)) values in
  { name; ratios; summary = Stats.five_number ratios }

(* The four heavy stages are independent: BGP/BGPsec accounting on the
   full topology and three beaconing simulations on two further
   graphs. They fan out as one parallel job each. *)
type stage = S_bgp of Bgp_overhead.result | S_beacon of Beaconing.outcome

let run ?(obs = Obs.disabled) ?(jobs = 1) { scale; seed; diversity; beacon } =
  let prepared =
    Obs.phase obs "fig5.prepare" (fun () -> Exp_common.prepare ?seed scale)
  in
  let full = prepared.Exp_common.full in
  let core = prepared.Exp_common.core in
  let isd = prepared.Exp_common.isd in
  (* BGP + BGPsec at the monitors over one month. The prefix load is
     calibrated so prefixes-per-core-origin matches the real Internet
     of §5.1 (~800k prefixes / 2000 core ASes = 400), keeping the
     BGP-vs-beaconing ratio meaningful at sub-Internet scales. *)
  let prefix_mean =
    min 400.0 (400.0 *. float_of_int (Graph.n core) /. float_of_int (Graph.n full))
  in
  let workload = Bgp_overhead.make_workload ~prefix_mean full ~seed:0xB6FL in
  let cfg = beacon in
  let stages =
    [|
      (fun ~obs ->
        S_bgp
          (Obs.phase obs "fig5.bgp_overhead" (fun () ->
               Bgp_overhead.monthly_overhead full workload
                 ~monitors:prepared.Exp_common.monitors_full
                 Bgp_overhead.default_params)));
      (fun ~obs ->
        S_beacon
          (Obs.phase obs "fig5.beaconing.baseline" (fun () ->
               Beaconing.run ~obs core cfg)));
      (fun ~obs ->
        S_beacon
          (Obs.phase obs "fig5.beaconing.diversity" (fun () ->
               Beaconing.run ~obs core
                 { cfg with Beaconing.algorithm = Beacon_policy.Diversity diversity })));
      (* Intra-ISD beaconing (baseline, as in the paper). *)
      (fun ~obs ->
        S_beacon
          (Obs.phase obs "fig5.beaconing.intra_isd" (fun () ->
               Beaconing.run ~obs isd { cfg with Beaconing.scope = Beaconing.Intra_isd })));
    |]
  in
  let bgp, base_out, div_out, intra_out =
    match Runner.map_jobs_obs ~obs ~jobs (fun ~obs stage -> stage ~obs) stages with
    | [| S_bgp bgp; S_beacon base; S_beacon div; S_beacon intra |] ->
        (bgp, base, div, intra)
    | _ -> assert false
  in
  let bgp_bytes = bgp.Bgp_overhead.bgp_bytes in
  let monitors_core = prepared.Exp_common.monitors_core in
  let base_bytes = monthly_scion_bytes base_out monitors_core in
  let div_bytes = monthly_scion_bytes div_out monitors_core in
  (* The intra-ISD per-AS samples are rank-paired with the monitors:
     i-th highest-degree ISD member against the i-th monitor. *)
  let isd_samples =
    Bgp_overhead.top_degree_monitors isd
      ~count:(List.length prepared.Exp_common.monitors_full)
  in
  let intra_bytes = monthly_scion_bytes intra_out isd_samples in
  let series =
    [
      make_series "BGPsec" ~bgp:bgp_bytes bgp.Bgp_overhead.bgpsec_bytes;
      make_series "SCION core beaconing (baseline)" ~bgp:bgp_bytes base_bytes;
      make_series "SCION core beaconing (diversity)" ~bgp:bgp_bytes div_bytes;
      make_series "SCION intra-ISD beaconing (baseline)" ~bgp:bgp_bytes intra_bytes;
    ]
  in
  if Obs.on obs then begin
    (* Per-monitor overhead ratios as one histogram per series, so the
       exported JSON carries the Fig. 5 distributions (p50/p90/p99). *)
    let reg = Obs.registry obs in
    List.iter
      (fun s ->
        let h =
          Registry.histogram reg ~labels:[ ("series", s.name) ] "fig5_overhead_ratio"
        in
        Array.iter (fun r -> if r > 0.0 then Histogram.observe h r) s.ratios)
      series
  end;
  {
    scale;
    bgp_bytes;
    series;
    core_ases = Graph.n core;
    full_ases = Graph.n full;
    isd_ases = Graph.n isd;
  }

let to_json (r : result) =
  let floats a = Obs_json.List (List.map (fun v -> Obs_json.Float v) (Array.to_list a)) in
  Obs_json.Obj
    [
      ("experiment", Obs_json.String name);
      ("scale", Obs_json.String (Exp_common.scale_to_string r.scale));
      ("full_ases", Obs_json.Int r.full_ases);
      ("core_ases", Obs_json.Int r.core_ases);
      ("isd_ases", Obs_json.Int r.isd_ases);
      ("bgp_monthly_bytes", floats r.bgp_bytes);
      ( "series",
        Obs_json.List
          (List.map
             (fun s ->
               Obs_json.Obj
                 [
                   ("name", Obs_json.String s.name);
                   ("min", Obs_json.Float s.summary.Stats.min);
                   ("p25", Obs_json.Float s.summary.Stats.p25);
                   ("median", Obs_json.Float s.summary.Stats.median);
                   ("p75", Obs_json.Float s.summary.Stats.p75);
                   ("max", Obs_json.Float s.summary.Stats.max);
                   ("ratios", floats s.ratios);
                 ])
             r.series) );
    ]

let print (r : result) =
  Printf.printf
    "Figure 5 — monthly control-plane overhead relative to BGP (scale=%s)\n"
    (Exp_common.scale_to_string r.scale);
  Printf.printf
    "topologies: %d ASes full (BGP/BGPsec), %d core ASes (SCION core), %d ASes in the ISD\n"
    r.full_ases r.core_ases r.isd_ases;
  Printf.printf "BGP monthly bytes per monitor: %s\n\n" (Stats.summary r.bgp_bytes);
  let fmt v = Printf.sprintf "%.3g" v in
  Table.print
    ~header:[ "Protocol"; "min"; "p25"; "median"; "p75"; "max" ]
    ~rows:
      (( [ "BGP (reference)"; "1"; "1"; "1"; "1"; "1" ] )
      :: List.map
           (fun s ->
             [
               s.name;
               fmt s.summary.Stats.min;
               fmt s.summary.Stats.p25;
               fmt s.summary.Stats.median;
               fmt s.summary.Stats.p75;
               fmt s.summary.Stats.max;
             ])
           r.series);
  print_newline ();
  let median name =
    match List.find_opt (fun s -> s.name = name) r.series with
    | Some s -> s.summary.Stats.median
    | None -> nan
  in
  let bgpsec = median "BGPsec" in
  let base = median "SCION core beaconing (baseline)" in
  let div = median "SCION core beaconing (diversity)" in
  let intra = median "SCION intra-ISD beaconing (baseline)" in
  Printf.printf "Headline checks (paper Fig. 5, §5.2):\n";
  Printf.printf
    "  BGPsec vs BGP:              %8.2fx   (paper: ~1 order of magnitude above)\n"
    bgpsec;
  Printf.printf
    "  baseline vs BGPsec:         %8.2fx   (paper: slightly higher)\n"
    (base /. bgpsec);
  Printf.printf
    "  baseline vs diversity:      %8.1fx   (paper: >2 orders of magnitude)\n"
    (base /. div);
  Printf.printf
    "  diversity vs BGP:           %8.3fx   (paper: ~1 order of magnitude below)\n"
    div;
  Printf.printf
    "  intra-ISD vs BGP:           %8.4fx   (paper: ~2 orders of magnitude below)\n"
    intra

let exit_code _ = 0
