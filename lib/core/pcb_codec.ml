let version = 1

exception Bad of string

let u8 buf v =
  if v < 0 || v > 0xFF then invalid_arg "Pcb_codec: u8 out of range";
  Buffer.add_char buf (Char.chr v)

let u16 buf v =
  if v < 0 || v > 0xFFFF then invalid_arg "Pcb_codec: u16 out of range";
  u8 buf (v lsr 8);
  u8 buf (v land 0xFF)

let u24 buf v =
  if v < 0 || v > 0xFFFFFF then invalid_arg "Pcb_codec: u24 out of range";
  u8 buf (v lsr 16);
  u16 buf (v land 0xFFFF)

let u32 buf v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Pcb_codec: u32 out of range";
  u16 buf (v lsr 16);
  u16 buf (v land 0xFFFF)

let f64 buf v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

type cursor = { data : string; mutable pos : int }

let need c n = if c.pos + n > String.length c.data then raise (Bad "truncated PCB")

let r_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u16 c =
  let hi = r_u8 c in
  let lo = r_u8 c in
  (hi lsl 8) lor lo

let r_u24 c =
  let hi = r_u8 c in
  let lo = r_u16 c in
  (hi lsl 16) lor lo

let r_u32 c =
  let hi = r_u16 c in
  let lo = r_u16 c in
  (hi lsl 16) lor lo

let r_f64 c =
  let bits = ref 0L in
  for _ = 1 to 8 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (r_u8 c))
  done;
  Int64.float_of_bits !bits

let r_bytes c n =
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let encode (p : Pcb.t) =
  let buf = Buffer.create 128 in
  u8 buf version;
  u32 buf p.Pcb.origin;
  f64 buf p.Pcb.timestamp;
  f64 buf p.Pcb.lifetime;
  u8 buf (Array.length p.Pcb.hops);
  Array.iter
    (fun (h : Pcb.hop) ->
      u32 buf h.Pcb.asn;
      u16 buf h.Pcb.ingress;
      u16 buf h.Pcb.egress;
      u24 buf h.Pcb.link;
      u8 buf (Array.length h.Pcb.peers);
      Array.iter (fun l -> u24 buf l) h.Pcb.peers)
    p.Pcb.hops;
  u8 buf (List.length p.Pcb.signatures);
  List.iter
    (fun s ->
      u16 buf (String.length s);
      Buffer.add_string buf s)
    p.Pcb.signatures;
  Buffer.contents buf

let decode s =
  try
    let c = { data = s; pos = 0 } in
    let v = r_u8 c in
    if v <> version then raise (Bad (Printf.sprintf "unsupported PCB version %d" v));
    let origin = r_u32 c in
    let timestamp = r_f64 c in
    let lifetime = r_f64 c in
    let n_hops = r_u8 c in
    let hops =
      List.init n_hops (fun _ ->
          let asn = r_u32 c in
          let ingress = r_u16 c in
          let egress = r_u16 c in
          let link = r_u24 c in
          let n_peers = r_u8 c in
          let peers = Array.init n_peers (fun _ -> r_u24 c) in
          (asn, ingress, egress, link, peers))
    in
    let n_sigs = r_u8 c in
    let signatures =
      List.init n_sigs (fun _ ->
          let len = r_u16 c in
          r_bytes c len)
    in
    if c.pos <> String.length s then raise (Bad "trailing bytes");
    (* Rebuild through the smart constructors so the key is correct.
       Signatures are attached newest-first, matching the original. *)
    let pcb = ref (Pcb.origin_pcb ~origin ~now:timestamp ~lifetime) in
    List.iter
      (fun (asn, ingress, egress, link, peers) ->
        pcb := Pcb.extend !pcb ~asn ~ingress ~egress ~link ~peers)
      hops;
    List.iter (fun sg -> pcb := Pcb.with_signature !pcb sg) (List.rev signatures);
    Ok !pcb
  with Bad msg -> Error msg

let encoded_size p = String.length (encode p)
