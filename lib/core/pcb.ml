type hop = {
  asn : int;
  ingress : Id.iface;
  egress : Id.iface;
  link : int;
  peers : int array;
}

type t = {
  origin : int;
  timestamp : float;
  lifetime : float;
  hops : hop array;
  links : int array;
  key : string;
  signatures : string list;
}

(* Link ids are encoded as 3 bytes each; sufficient for 2^24 links. *)
let path_key links =
  let b = Bytes.create (3 * Array.length links) in
  Array.iteri
    (fun i l ->
      Bytes.set b (3 * i) (Char.chr (l land 0xFF));
      Bytes.set b ((3 * i) + 1) (Char.chr ((l lsr 8) land 0xFF));
      Bytes.set b ((3 * i) + 2) (Char.chr ((l lsr 16) land 0xFF)))
    links;
  Bytes.to_string b

let extend_key key link =
  let b = Bytes.create 3 in
  Bytes.set b 0 (Char.chr (link land 0xFF));
  Bytes.set b 1 (Char.chr ((link lsr 8) land 0xFF));
  Bytes.set b 2 (Char.chr ((link lsr 16) land 0xFF));
  key ^ Bytes.to_string b

let with_signature t s = { t with signatures = s :: t.signatures }

let origin_pcb ~origin ~now ~lifetime =
  {
    origin;
    timestamp = now;
    lifetime;
    hops = [||];
    links = [||];
    key = "";
    signatures = [];
  }

let extend ?signature t ~asn ~ingress ~egress ~link ~peers =
  let nh = Array.length t.hops in
  let hops = Array.make (nh + 1) { asn; ingress; egress; link; peers } in
  Array.blit t.hops 0 hops 0 nh;
  let links = Array.make (nh + 1) link in
  Array.blit t.links 0 links 0 nh;
  let signatures =
    match signature with None -> t.signatures | Some s -> s :: t.signatures
  in
  { t with hops; links; key = path_key links; signatures }

let expires_at t = t.timestamp +. t.lifetime

let is_valid t ~now = now >= t.timestamp && now < expires_at t

let age t ~now = now -. t.timestamp

let remaining t ~now = max 0.0 (expires_at t -. now)

let num_hops t = Array.length t.hops

let contains_as t a =
  t.origin = a || Array.exists (fun h -> h.asn = a) t.hops

let last_link t =
  let n = Array.length t.links in
  if n = 0 then None else Some t.links.(n - 1)

let wire_bytes t ~signature_bytes =
  let base = Wire.pcb_bytes ~hops:(Array.length t.hops) ~signature_bytes in
  let peering =
    Array.fold_left (fun acc h -> acc + (16 * Array.length h.peers)) 0 t.hops
  in
  base + peering

let signable_bytes t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "pcb|%d|%.3f|%.0f|" t.origin t.timestamp t.lifetime);
  Array.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%d:%d:%d;" h.asn h.ingress h.egress h.link))
    t.hops;
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "PCB[origin=%d ts=%.0f hops=%d path=%s]" t.origin t.timestamp
    (Array.length t.hops)
    (String.concat "->"
       (Array.to_list (Array.map (fun h -> string_of_int h.asn) t.hops)))
