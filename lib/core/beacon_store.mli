(** Per-AS beacon database.

    Stores received PCBs grouped by origin AS, subject to the PCB
    storage limit of §5.1 (the maximum number of PCBs per origin AS a
    beacon server keeps). A new instance of an already-stored path
    replaces the older instance; when the per-origin budget is full, a
    new path is admitted only by evicting a worse entry (expired first,
    then longest, then oldest). *)

type t

type insert_outcome = Added | Refreshed | Evicted_other | Rejected

val create : limit:int -> t
(** [limit] may be [max_int] for unlimited storage. Raises
    [Invalid_argument] if [limit < 1]. *)

val limit : t -> int

val insert : t -> now:float -> Pcb.t -> insert_outcome
(** Expired PCBs are rejected outright. *)

val paths : t -> now:float -> origin:int -> Pcb.t list
(** Valid stored PCBs from [origin], sorted by (hop count, newer
    first, then path key) — a total order, so the result never depends
    on internal hash-table layout. *)

val origins : t -> int list
(** Origins with at least one stored PCB (validity not re-checked). *)

val count : t -> origin:int -> int

val total : t -> int

val last_modified : t -> origin:int -> float
(** Time of the last successful insert for this origin; [neg_infinity]
    if never. Lets selection algorithms skip unchanged origins. *)

val prune_expired : t -> now:float -> unit

val drop_link : t -> link:int -> int
(** Expire every stored PCB whose path traverses [link] (a revocation,
    §4.1: the beacon server discards paths over a failed link so they
    are neither used nor re-disseminated). Returns the number of PCBs
    dropped. *)

val all_paths : t -> now:float -> Pcb.t list
(** Every valid stored PCB, sorted by (origin, path key) (used by the
    quality analysis and segment extraction). *)

(** {1 Checkpointing} *)

type dump = {
  d_limit : int;
  d_origins : (int * float * Pcb.t list) list;
      (** (origin, last_modified, PCBs sorted by key), sorted by
          origin *)
}
(** Canonical value of the whole store: equal stores dump equal values
    regardless of insertion order or hash-table layout. Validity is
    {e not} re-checked — expired entries are dumped too, so a restored
    store behaves identically (including future [prune_expired]
    calls). *)

val dump : t -> dump

val of_dump : dump -> t
(** Rebuild a store from a dump; [dump (of_dump d) = d] and every
    subsequent operation behaves as on the original. *)
