(** Mutable per-AS state of the path-diversity-based algorithm (§4.2).

    Two data structures from the paper:

    - the {e Link History Table} per [(origin AS, neighbor AS)] pair,
      mapping link ids to the number of currently valid paths from the
      origin to the neighbor that traverse the link;
    - the {e Sent PCBs List} per egress interface, remembering for each
      disseminated path its diversity score at send time and the expiry
      of the instance last sent.

    Plus one engineering addition: per-pair evaluation gating, so the
    beacon server skips (origin, neighbor) pairs whose inputs cannot
    have changed since the last evaluation (no new stored paths, no
    sent instance near expiry). This does not alter selections, only
    when they are recomputed. *)

type sent_info = {
  ds : float;  (** diversity score recorded at first dissemination *)
  mutable sent_expires_at : float;  (** expiry of the last sent instance *)
  origin : int;
  neighbor : int;
  links : int array;  (** full path including the egress link *)
}

type t

val create : n_as:int -> t
(** [n_as] bounds the (origin, neighbor) pair key space. *)

val counters_gm : t -> origin:int -> neighbor:int -> links:int array -> extra:int -> float
(** Geometric mean of [(1 + counter)] over [links] plus the [extra]
    egress link, against the pair's Link History Table. *)

val counters_mean :
  t ->
  kind:Beacon_policy.mean_kind ->
  origin:int ->
  neighbor:int ->
  links:int array ->
  extra:int ->
  float
(** Like {!counters_gm} but with a selectable aggregation (the
    DESIGN.md ablation). *)

val increment : t -> origin:int -> neighbor:int -> links:int array -> extra:int -> unit
(** Count a newly disseminated path on every traversed link. *)

val find_sent : t -> egress:int -> key:string -> sent_info option

val record_sent :
  t ->
  origin:int ->
  neighbor:int ->
  egress:int ->
  key:string ->
  links:int array ->
  ds:float ->
  expires_at:float ->
  unit
(** Insert a fresh Sent-PCBs-List entry (first dissemination of this
    path on this interface). *)

val refresh_sent : sent_info -> expires_at:float -> unit
(** A path was re-sent: only its timers are updated (§4.2). *)

val should_evaluate :
  t -> origin:int -> neighbor:int -> store_last_mod:float -> now:float -> bool
(** Gating: evaluate if the store changed since the last evaluation or
    the pair's scheduled re-evaluation time has been reached. *)

val begin_evaluation : t -> origin:int -> neighbor:int -> now:float -> unit
(** Record the evaluation and clear the scheduled re-evaluation time
    (to be re-proposed from the scan's crossing-time predictions). *)

val propose_next_eval : t -> origin:int -> neighbor:int -> float -> unit
(** Lower the pair's scheduled re-evaluation time. *)

val prune : t -> now:float -> unit
(** Drop expired Sent-PCBs-List entries and decrement the link history
    counters of their paths, so counters keep reflecting {e valid}
    paths only. *)

val sent_count : t -> int
(** Total live Sent-PCBs-List entries (for tests and introspection). *)
