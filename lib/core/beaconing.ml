type scope = Core_beaconing | Intra_isd

type config = {
  scope : scope;
  algorithm : Beacon_policy.t;
  interval : float;
  lifetime : float;
  dissemination_limit : int;
  storage_limit : int;
  signature_bytes : int;
  duration : float;
  verify_crypto : bool;
  filters : (int * Beacon_filter.t) list;
}

let default_config =
  {
    scope = Core_beaconing;
    algorithm = Beacon_policy.Baseline;
    interval = 600.0;
    lifetime = 21600.0;
    dissemination_limit = 5;
    storage_limit = 60;
    signature_bytes = 96;
    duration = 21600.0;
    verify_crypto = false;
    filters = [];
  }

type stats = {
  bytes_on_iface : float array;
  pcbs_on_iface : int array;
  mutable total_bytes : float;
  mutable total_pcbs : int;
  mutable crypto_failures : int;
  rounds : int;
}

type outcome = {
  graph : Graph.t;
  config : config;
  stores : Beacon_store.t array;
  stats : stats;
}

(* A buffered message: the extended PCB, the link it travels on and the
   receiving AS. *)
type message = { pcb : Pcb.t; via : int; receiver : int }

let eligible_dir scope (h : Graph.half_link) =
  match scope with
  | Core_beaconing -> h.Graph.dir = Graph.To_core
  | Intra_isd -> h.Graph.dir = Graph.To_customer

let key_id v = "as:" ^ string_of_int v

let algo_label = function
  | Beacon_policy.Baseline -> "baseline"
  | Beacon_policy.Diversity _ -> "diversity"
  | Beacon_policy.Latency_aware _ -> "latency"

let scope_label = function Core_beaconing -> "core" | Intra_isd -> "intra-isd"

(* Export an outcome's byte-level accounting into [obs]: the directed
   per-interface byte distribution as a histogram (the Fig. 9 view) and
   the [top] busiest interfaces as pcb_bytes{as,ifid} labeled counters
   (bounded so paper-scale runs do not explode the export). *)
let observe ?(top = 16) obs (outcome : outcome) =
  if Obs.on obs then begin
    let g = outcome.graph in
    let stats = outcome.stats in
    let labels =
      [
        ("algo", algo_label outcome.config.algorithm);
        ("scope", scope_label outcome.config.scope);
      ]
    in
    let reg = Obs.registry obs in
    let h = Registry.histogram reg ~labels "beacon_iface_bytes" in
    Array.iter (Histogram.observe h) stats.bytes_on_iface;
    let m = Array.length stats.bytes_on_iface in
    let idx = Array.init m Fun.id in
    Array.sort
      (fun a b -> compare stats.bytes_on_iface.(b) stats.bytes_on_iface.(a))
      idx;
    for i = 0 to min top m - 1 do
      let d = idx.(i) in
      let lk = Graph.link g (d / 2) in
      let sender = if d land 1 = 0 then lk.Graph.a else lk.Graph.b in
      let ifid = Graph.iface_of lk sender in
      Registry.add reg "pcb_bytes"
        ~labels:
          (("as", string_of_int sender)
          :: ("ifid", string_of_int ifid)
          :: labels)
        stats.bytes_on_iface.(d)
    done;
    let trc = Obs.trace obs in
    if Trace.enabled trc Trace.Info then
      Trace.emit trc Trace.Info ~time:outcome.config.duration ~category:"beacon"
        ~fields:
          [
            ("algo", algo_label outcome.config.algorithm);
            ("scope", scope_label outcome.config.scope);
            ("rounds", string_of_int stats.rounds);
            ("total_pcbs", string_of_int stats.total_pcbs);
            ("total_bytes", Printf.sprintf "%.0f" stats.total_bytes);
          ]
        "beaconing complete"
  end

type engine = {
  eng_graph : Graph.t;
  eng_config : config;
  eng_stores : Beacon_store.t array;
  eng_stats : stats;
  eng_step : round:int -> unit;
}

let engine ?(obs = Obs.disabled) ?link_up ?stores ?stats g cfg =
  if cfg.interval <= 0.0 then
    invalid_arg "Beaconing.engine: interval must be positive";
  if cfg.dissemination_limit < 1 then
    invalid_arg "Beaconing.engine: dissemination limit must be >= 1";
  let n = Graph.n g in
  let num_links = Graph.num_links g in
  let rounds = max 1 (int_of_float ((cfg.duration /. cfg.interval) +. 0.5)) in
  let stores =
    match stores with
    | Some s ->
        if Array.length s <> n then
          invalid_arg "Beaconing.engine: stores array length mismatch";
        s
    | None ->
        Array.init n (fun _ -> Beacon_store.create ~limit:cfg.storage_limit)
  in
  let stats =
    match stats with
    | Some s ->
        if Array.length s.bytes_on_iface <> 2 * num_links then
          invalid_arg "Beaconing.engine: stats array length mismatch";
        s
    | None ->
        {
          bytes_on_iface = Array.make (2 * num_links) 0.0;
          pcbs_on_iface = Array.make (2 * num_links) 0;
          total_bytes = 0.0;
          total_pcbs = 0;
          crypto_failures = 0;
          rounds;
        }
  in
  (* Observability cells, hoisted so the send path pays one branch when
     disabled (the [Obs.disabled] default). *)
  let obs_on = Obs.on obs in
  let tr = Obs.trace obs in
  let obs_labels =
    [ ("algo", algo_label cfg.algorithm); ("scope", scope_label cfg.scope) ]
  in
  let c_sent, c_bytes, c_originated, c_filtered, c_crypto_fail =
    if obs_on then begin
      let reg = Obs.registry obs in
      ( Registry.counter reg ~labels:obs_labels "beacon_pcbs_sent_total",
        Registry.counter reg ~labels:obs_labels "beacon_bytes_sent_total",
        Registry.counter reg ~labels:obs_labels "beacon_pcbs_originated_total",
        Registry.counter reg ~labels:obs_labels "beacon_pcbs_filtered_total",
        Registry.counter reg ~labels:obs_labels "beacon_crypto_failures_total" )
    end
    else (ref 0.0, ref 0.0, ref 0.0, ref 0.0, ref 0.0)
  in
  (* Outgoing eligible interfaces, grouped by neighbor AS. *)
  let out_links =
    Array.init n (fun v ->
        Array.of_list
          (List.filter (eligible_dir cfg.scope) (Array.to_list (Graph.adj g v))))
  in
  let neighbor_groups =
    Array.init n (fun v ->
        let groups = Hashtbl.create 8 in
        Array.iter
          (fun (h : Graph.half_link) ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt groups h.Graph.peer) in
            Hashtbl.replace groups h.Graph.peer (h :: prev))
          out_links.(v);
        Hashtbl.fold (fun peer hs acc -> (peer, List.rev hs) :: acc) groups []
        |> List.sort (fun (a, _) (b, _) -> compare a b))
  in
  let peer_links =
    Array.init n (fun v ->
        match cfg.scope with
        | Core_beaconing -> [||]
        | Intra_isd ->
            Array.of_list
              (List.filter_map
                 (fun (h : Graph.half_link) ->
                   if h.Graph.dir = Graph.To_peer then Some h.Graph.via else None)
                 (Array.to_list (Graph.adj g v))))
  in
  let originator = Array.init n (fun v -> Graph.is_core g v) in
  let policies = Array.make n [] in
  List.iter
    (fun (v, rules) ->
      if v < 0 || v >= n then invalid_arg "Beaconing.run: filter for unknown AS";
      policies.(v) <- rules)
    cfg.filters;
  let policy_allows x p = Beacon_filter.allows g policies.(x) p in
  let keystore = Signature.create_keystore () in
  let keys =
    if cfg.verify_crypto then
      Array.init n (fun v -> Some (Signature.generate keystore Signature.Ecdsa_p384 ~id:(key_id v)))
    else Array.make n None
  in
  (* §2.1-2.2 PKI: each ISD's TRC anchors the keys of its core ASes;
     member ASes hold certificates issued by a core AS of their ISD.
     Receivers verify the signer's certificate against the signer's
     TRC before checking the PCB signature. ISDs without a core AS
     (possible in hand-built test graphs) skip the certificate layer. *)
  let trcs : (int, Trc.t) Hashtbl.t = Hashtbl.create 8 in
  let certs : Trc.cert option array = Array.make n None in
  if cfg.verify_crypto then begin
    let cores_by_isd = Hashtbl.create 8 in
    List.iter
      (fun c ->
        let isd = (Graph.as_info g c).Graph.ia.Id.isd in
        Hashtbl.replace cores_by_isd isd
          (c :: Option.value ~default:[] (Hashtbl.find_opt cores_by_isd isd)))
      (Graph.core_ases g);
    Hashtbl.iter
      (fun isd cores ->
        Hashtbl.replace trcs isd
          (Trc.create ~isd ~version:1 ~roots:(List.map key_id (List.rev cores))))
      cores_by_isd;
    for v = 0 to n - 1 do
      let isd = (Graph.as_info g v).Graph.ia.Id.isd in
      match Hashtbl.find_opt cores_by_isd isd with
      | Some (issuer :: _) -> (
          match keys.(issuer) with
          | Some issuer_key -> certs.(v) <- Some (Trc.issue issuer_key ~subject:(key_id v))
          | None -> ())
      | _ -> ()
    done
  end;
  let signer_chain_valid signer =
    match certs.(signer) with
    | None -> true (* no TRC coverage for this ISD: signature check only *)
    | Some cert -> (
        let isd = (Graph.as_info g signer).Graph.ia.Id.isd in
        match Hashtbl.find_opt trcs isd with
        | Some trc -> Trc.verify_cert keystore trc cert
        | None -> false)
  in
  let div_states =
    match cfg.algorithm with
    | Beacon_policy.Baseline -> [||]
    | Beacon_policy.Diversity _ | Beacon_policy.Latency_aware _ ->
        Array.init n (fun _ -> Diversity_state.create ~n_as:n)
  in
  let outbox = ref [] in
  let outbox_len = ref 0 in
  let link_alive =
    match link_up with None -> fun ~now:_ _ -> true | Some f -> f
  in
  let send ~now ~sender ~(h : Graph.half_link) pcb =
    if not (link_alive ~now h.Graph.via) then ()
    else begin
    let ingress =
      match Pcb.last_link pcb with
      | None -> 0
      | Some l -> Graph.iface_of (Graph.link g l) sender
    in
    let ext =
      Pcb.extend pcb ~asn:sender ~ingress ~egress:h.Graph.local_if ~link:h.Graph.via
        ~peers:peer_links.(sender)
    in
    let ext =
      match keys.(sender) with
      | None -> ext
      | Some kp -> Pcb.with_signature ext (Signature.sign kp (Pcb.signable_bytes ext))
    in
    let size = float_of_int (Pcb.wire_bytes ext ~signature_bytes:cfg.signature_bytes) in
    let lk = Graph.link g h.Graph.via in
    let dir_index = (2 * h.Graph.via) + if lk.Graph.a = sender then 0 else 1 in
    stats.bytes_on_iface.(dir_index) <- stats.bytes_on_iface.(dir_index) +. size;
    stats.pcbs_on_iface.(dir_index) <- stats.pcbs_on_iface.(dir_index) + 1;
    stats.total_bytes <- stats.total_bytes +. size;
    stats.total_pcbs <- stats.total_pcbs + 1;
    outbox := { pcb = ext; via = h.Graph.via; receiver = h.Graph.peer } :: !outbox;
    incr outbox_len;
    if obs_on then begin
      c_sent := !c_sent +. 1.0;
      c_bytes := !c_bytes +. size;
      if Trace.enabled tr Trace.Debug then
        Trace.emit tr Trace.Debug ~time:now ~category:"beacon"
          ~fields:
            [
              ("as", string_of_int sender);
              ("ifid", string_of_int h.Graph.local_if);
              ("receiver", string_of_int h.Graph.peer);
              ("bytes", Printf.sprintf "%.0f" size);
            ]
          "pcb propagated"
    end
    end
  in

  (* --- Baseline selection: P shortest per origin per interface. --- *)
  let run_baseline_as ~now x =
    let store = stores.(x) in
    let cand_cache : (int, Pcb.t list) Hashtbl.t = Hashtbl.create 16 in
    let candidates o =
      match Hashtbl.find_opt cand_cache o with
      | Some c -> c
      | None ->
          let c =
            if o = x then begin
              if obs_on then c_originated := !c_originated +. 1.0;
              [ Pcb.origin_pcb ~origin:x ~now ~lifetime:cfg.lifetime ]
            end
            else begin
              let all = Beacon_store.paths store ~now ~origin:o in
              let kept = List.filter (policy_allows x) all in
              if obs_on then
                c_filtered :=
                  !c_filtered
                  +. float_of_int (List.length all - List.length kept);
              kept
            end
          in
          Hashtbl.replace cand_cache o c;
          c
    in
    let origins =
      (if originator.(x) then [ x ] else []) @ Beacon_store.origins store
    in
    Array.iter
      (fun (h : Graph.half_link) ->
        let nbr = h.Graph.peer in
        List.iter
          (fun o ->
            if o <> nbr then begin
              let sent = ref 0 in
              List.iter
                (fun p ->
                  if !sent < cfg.dissemination_limit && not (Pcb.contains_as p nbr)
                  then begin
                    send ~now ~sender:x ~h p;
                    incr sent
                  end)
                (candidates o)
            end)
          origins)
      out_links.(x)
  in

  (* --- Quality-aware selection: Algorithm 1 per (origin, neighbor).
     [quality] is the metric-specific base score of a candidate path
     (link diversity, or latency for the §4.2 extension);
     [track_history] maintains the Link History Table (only meaningful
     for the diversity metric). --- *)
  let run_quality_as ~now ~(params : Beacon_policy.div_params) ~quality ~track_history x =
    let store = stores.(x) in
    let st = div_states.(x) in
    let cand_cache : (int, Pcb.t list) Hashtbl.t = Hashtbl.create 16 in
    let candidates o =
      match Hashtbl.find_opt cand_cache o with
      | Some c -> c
      | None ->
          let c =
            if o = x then begin
              if obs_on then c_originated := !c_originated +. 1.0;
              [ Pcb.origin_pcb ~origin:x ~now ~lifetime:cfg.lifetime ]
            end
            else begin
              let all = Beacon_store.paths store ~now ~origin:o in
              let kept = List.filter (policy_allows x) all in
              if obs_on then
                c_filtered :=
                  !c_filtered
                  +. float_of_int (List.length all - List.length kept);
              kept
            end
          in
          Hashtbl.replace cand_cache o c;
          c
    in
    let origins =
      (if originator.(x) then [ x ] else []) @ Beacon_store.origins store
    in
    List.iter
      (fun (nbr, hlist) ->
        List.iter
          (fun o ->
            if o <> nbr then begin
              let store_last_mod =
                if o = x then infinity else Beacon_store.last_modified store ~origin:o
              in
              if
                Diversity_state.should_evaluate st ~origin:o ~neighbor:nbr
                  ~store_last_mod ~now
              then begin
                Diversity_state.begin_evaluation st ~origin:o ~neighbor:nbr ~now;
                let cands = candidates o in
                let sent_cnt = ref 0 in
                let stop = ref false in
                (* Score every (path, egress) combination once; after a
                   dissemination only combinations whose inputs changed
                   are re-scored: the selected one (its key enters the
                   Sent PCBs List) and, when link history is tracked,
                   fresh-branch combinations sharing a link with the
                   sent path. Selections are identical to a full rescan
                   of Algorithm 1 at a fraction of the cost. *)
                let score_of (p : Pcb.t) (h : Graph.half_link) key_new =
                  match
                    Diversity_state.find_sent st ~egress:h.Graph.via ~key:key_new
                  with
                  | Some info when info.Diversity_state.sent_expires_at > now ->
                      let s =
                        Beacon_policy.score_resend params
                          ~ds:info.Diversity_state.ds
                          ~sent_remaining:
                            (info.Diversity_state.sent_expires_at -. now)
                          ~current_remaining:(Pcb.remaining p ~now)
                      in
                      if s <= params.Beacon_policy.threshold then
                        Diversity_state.propose_next_eval st ~origin:o ~neighbor:nbr
                          (Beacon_policy.resend_crossing_time params
                             ~ds:info.Diversity_state.ds ~now
                             ~sent_expires_at:info.Diversity_state.sent_expires_at
                             ~current_expires_at:(Pcb.expires_at p));
                      (s, `Resend info)
                  | _ ->
                      let ds =
                        quality st ~origin:o ~neighbor:nbr ~p ~egress:h.Graph.via
                      in
                      let s =
                        Beacon_policy.score_fresh params ~ds ~age:(Pcb.age p ~now)
                          ~lifetime:p.Pcb.lifetime
                      in
                      (s, `New)
                in
                let combos =
                  List.concat_map
                    (fun (p : Pcb.t) ->
                      if Pcb.contains_as p nbr then []
                      else
                        List.map
                          (fun (h : Graph.half_link) ->
                            let key_new = Pcb.extend_key p.Pcb.key h.Graph.via in
                            let score, action = score_of p h key_new in
                            (p, h, key_new, ref score, ref action))
                          hlist)
                    cands
                in
                (* Does the combo (p, egress) use any counter touched by
                   the sent path (its links plus its egress link)? *)
                let shares_link (p : Pcb.t) egress links extra =
                  let touched l = l = extra || Array.exists (fun l' -> l' = l) links in
                  touched egress || Array.exists touched p.Pcb.links
                in
                while !sent_cnt < cfg.dissemination_limit && not !stop do
                  let best = ref None in
                  let best_score = ref 0.0 in
                  List.iter
                    (fun ((_, _, _, score, _) as combo) ->
                      if
                        !score > params.Beacon_policy.threshold
                        && !score > !best_score
                      then begin
                        best_score := !score;
                        best := Some combo
                      end)
                    combos;
                  match !best with
                  | None -> stop := true
                  | Some (p, h, key_new, _score_ref, action_ref) ->
                      send ~now ~sender:x ~h p;
                      let expires_at = Pcb.expires_at p in
                      (match !action_ref with
                      | `Resend info ->
                          Diversity_state.refresh_sent info ~expires_at
                      | `New ->
                          if track_history then
                            Diversity_state.increment st ~origin:o ~neighbor:nbr
                              ~links:p.Pcb.links ~extra:h.Graph.via;
                          (* The recorded base score reflects the state
                             after this dissemination. *)
                          let ds_post =
                            quality st ~origin:o ~neighbor:nbr ~p ~egress:h.Graph.via
                          in
                          let links_full =
                            Array.append p.Pcb.links [| h.Graph.via |]
                          in
                          Diversity_state.record_sent st ~origin:o ~neighbor:nbr
                            ~egress:h.Graph.via ~key:key_new ~links:links_full
                            ~ds:ds_post ~expires_at);
                      incr sent_cnt;
                      (* Re-score what this dissemination affected. *)
                      let sent_links = p.Pcb.links and sent_egress = h.Graph.via in
                      List.iter
                        (fun (p', h', key', score', action') ->
                          let self = key' = key_new && h'.Graph.via = h.Graph.via in
                          let affected =
                            self
                            || (track_history
                               && (match !action' with
                                  | `New ->
                                      shares_link p' h'.Graph.via sent_links
                                        sent_egress
                                  | `Resend _ -> false))
                          in
                          if affected then begin
                            let s, a = score_of p' h' key' in
                            score' := s;
                            action' := a
                          end)
                        combos
                done
              end
            end)
          origins)
      neighbor_groups.(x)
  in

  let deliver ~now =
    List.iter
      (fun m ->
        let accept =
          if not cfg.verify_crypto then true
          else begin
            (* Verify the newest AS entry's signature; inner entries
               were verified by the upstream on-path verifiers. *)
            match m.pcb.Pcb.signatures with
            | [] -> false
            | newest :: _ ->
                let nh = Array.length m.pcb.Pcb.hops in
                let signer = m.pcb.Pcb.hops.(nh - 1).Pcb.asn in
                signer_chain_valid signer
                && Signature.verify keystore ~id:(key_id signer)
                     ~msg:(Pcb.signable_bytes m.pcb) ~signature:newest
          end
        in
        if accept then ignore (Beacon_store.insert stores.(m.receiver) ~now m.pcb)
        else begin
          stats.crypto_failures <- stats.crypto_failures + 1;
          if obs_on then begin
            c_crypto_fail := !c_crypto_fail +. 1.0;
            if Trace.enabled tr Trace.Warn then
              Trace.emit tr Trace.Warn ~time:now ~category:"beacon"
                ~fields:[ ("receiver", string_of_int m.receiver) ]
                "pcb rejected: signature verification failed"
          end
        end)
      (List.rev !outbox);
    outbox := [];
    outbox_len := 0
  in

  let step ~round:r =
    let now = float_of_int r *. cfg.interval in
    if r > 0 && r mod 6 = 0 then begin
      Array.iter (fun s -> Beacon_store.prune_expired s ~now) stores;
      Array.iter (fun st -> Diversity_state.prune st ~now) div_states
    end;
    let select () =
      for x = 0 to n - 1 do
        match cfg.algorithm with
        | Beacon_policy.Baseline -> run_baseline_as ~now x
        | Beacon_policy.Diversity params ->
            let quality st ~origin ~neighbor ~p ~egress =
              Beacon_policy.diversity_of_gm params
                (Diversity_state.counters_mean st
                   ~kind:params.Beacon_policy.mean_kind ~origin ~neighbor
                   ~links:p.Pcb.links ~extra:egress)
            in
            run_quality_as ~now ~params ~quality ~track_history:true x
        | Beacon_policy.Latency_aware lp ->
            let table = lp.Beacon_policy.link_latency_ms in
            let quality _st ~origin:_ ~neighbor:_ ~p ~egress =
              let total =
                Array.fold_left (fun acc l -> acc +. table.(l)) table.(egress)
                  p.Pcb.links
              in
              Beacon_policy.latency_quality lp ~total_ms:total
            in
            run_quality_as ~now ~params:lp.Beacon_policy.base ~quality
              ~track_history:false x
      done
    in
    Obs.phase obs "beacon.selection_round" select;
    if obs_on && Trace.enabled tr Trace.Info then
      Trace.emit tr Trace.Info ~time:now ~category:"beacon"
        ~fields:
          [
            ("round", string_of_int r);
            ("outbox", string_of_int !outbox_len);
            ("total_pcbs", string_of_int stats.total_pcbs);
          ]
        "selection round complete";
    deliver ~now
  in
  {
    eng_graph = g;
    eng_config = cfg;
    eng_stores = stores;
    eng_stats = stats;
    eng_step = step;
  }

let engine_stores e = e.eng_stores

let engine_stats e = e.eng_stats

let engine_round e ~round = e.eng_step ~round

let engine_outcome e =
  {
    graph = e.eng_graph;
    config = e.eng_config;
    stores = e.eng_stores;
    stats = e.eng_stats;
  }

let run ?(obs = Obs.disabled) ?link_up ?on_round_start ?on_round g cfg =
  let e = engine ~obs ?link_up g cfg in
  let rounds = e.eng_stats.rounds in
  for r = 0 to rounds - 1 do
    let now = float_of_int r *. cfg.interval in
    (match on_round_start with
    | None -> ()
    | Some f -> f ~round:r ~now ~stores:e.eng_stores);
    e.eng_step ~round:r;
    match on_round with None -> () | Some f -> f ~round:r ~now
  done;
  let outcome = engine_outcome e in
  if Obs.on obs then observe obs outcome;
  outcome

let received_bytes_by_as outcome =
  let g = outcome.graph in
  let acc = Array.make (Graph.n g) 0.0 in
  for l = 0 to Graph.num_links g - 1 do
    let lk = Graph.link g l in
    acc.(lk.Graph.b) <- acc.(lk.Graph.b) +. outcome.stats.bytes_on_iface.(2 * l);
    acc.(lk.Graph.a) <- acc.(lk.Graph.a) +. outcome.stats.bytes_on_iface.((2 * l) + 1)
  done;
  acc

let sent_bytes_by_as outcome =
  let g = outcome.graph in
  let acc = Array.make (Graph.n g) 0.0 in
  for l = 0 to Graph.num_links g - 1 do
    let lk = Graph.link g l in
    acc.(lk.Graph.a) <- acc.(lk.Graph.a) +. outcome.stats.bytes_on_iface.(2 * l);
    acc.(lk.Graph.b) <- acc.(lk.Graph.b) +. outcome.stats.bytes_on_iface.((2 * l) + 1)
  done;
  acc

let eligible_iface_bytes outcome =
  let g = outcome.graph in
  let acc = ref [] in
  for v = 0 to Graph.n g - 1 do
    Array.iter
      (fun (h : Graph.half_link) ->
        if eligible_dir outcome.config.scope h then begin
          let lk = Graph.link g h.Graph.via in
          let dir_index = (2 * h.Graph.via) + if lk.Graph.a = v then 0 else 1 in
          acc := outcome.stats.bytes_on_iface.(dir_index) :: !acc
        end)
      (Graph.adj g v)
  done;
  Array.of_list !acc
