type per_origin = {
  by_key : (string, Pcb.t) Hashtbl.t;
  mutable last_modified : float;
}

type t = { limit : int; origins : (int, per_origin) Hashtbl.t }

type insert_outcome = Added | Refreshed | Evicted_other | Rejected

let create ~limit =
  if limit < 1 then invalid_arg "Beacon_store.create: limit must be >= 1";
  { limit; origins = Hashtbl.create 64 }

let limit t = t.limit

let slot t origin =
  match Hashtbl.find_opt t.origins origin with
  | Some s -> s
  | None ->
      let s = { by_key = Hashtbl.create 8; last_modified = neg_infinity } in
      Hashtbl.replace t.origins origin s;
      s

(* Lexicographic badness: expired, then longer, then older. The path
   key breaks the remaining ties so the ordering is total — which entry
   wins never depends on hash-table iteration order. *)
let badness ~now (p : Pcb.t) =
  ( (if Pcb.is_valid p ~now then 0 else 1),
    Pcb.num_hops p,
    -.p.Pcb.timestamp,
    p.Pcb.key )

let insert t ~now (pcb : Pcb.t) =
  if not (Pcb.is_valid pcb ~now) then Rejected
  else begin
    let s = slot t pcb.Pcb.origin in
    match Hashtbl.find_opt s.by_key pcb.Pcb.key with
    | Some existing ->
        if pcb.Pcb.timestamp > existing.Pcb.timestamp then begin
          Hashtbl.replace s.by_key pcb.Pcb.key pcb;
          s.last_modified <- now;
          Refreshed
        end
        else Rejected
    | None ->
        if Hashtbl.length s.by_key < t.limit then begin
          Hashtbl.replace s.by_key pcb.Pcb.key pcb;
          s.last_modified <- now;
          Added
        end
        else begin
          (* Full: find the worst entry and replace it if the newcomer
             is strictly better. *)
          let worst =
            Hashtbl.fold
              (fun key p acc ->
                match acc with
                | None -> Some (key, p)
                | Some (_, wp) ->
                    if compare (badness ~now p) (badness ~now wp) > 0 then
                      Some (key, p)
                    else acc)
              s.by_key None
          in
          match worst with
          | Some (wkey, wp) when compare (badness ~now pcb) (badness ~now wp) < 0 ->
              Hashtbl.remove s.by_key wkey;
              Hashtbl.replace s.by_key pcb.Pcb.key pcb;
              s.last_modified <- now;
              Evicted_other
          | _ -> Rejected
        end
  end

let paths t ~now ~origin =
  match Hashtbl.find_opt t.origins origin with
  | None -> []
  | Some s ->
      Hashtbl.fold
        (fun _ p acc -> if Pcb.is_valid p ~now then p :: acc else acc)
        s.by_key []
      |> List.sort (fun (a : Pcb.t) (b : Pcb.t) ->
             match compare (Pcb.num_hops a) (Pcb.num_hops b) with
             | 0 -> (
                 match compare b.Pcb.timestamp a.Pcb.timestamp with
                 | 0 -> compare a.Pcb.key b.Pcb.key
                 | c -> c)
             | c -> c)

let origins t =
  Hashtbl.fold
    (fun origin s acc -> if Hashtbl.length s.by_key > 0 then origin :: acc else acc)
    t.origins []
  |> List.sort compare

let count t ~origin =
  match Hashtbl.find_opt t.origins origin with
  | None -> 0
  | Some s -> Hashtbl.length s.by_key

let total t =
  Hashtbl.fold (fun _ s acc -> acc + Hashtbl.length s.by_key) t.origins 0

let last_modified t ~origin =
  match Hashtbl.find_opt t.origins origin with
  | None -> neg_infinity
  | Some s -> s.last_modified

let prune_expired t ~now =
  Hashtbl.iter
    (fun _ s ->
      let stale =
        Hashtbl.fold
          (fun key p acc -> if Pcb.is_valid p ~now then acc else key :: acc)
          s.by_key []
      in
      List.iter (Hashtbl.remove s.by_key) stale)
    t.origins

let drop_link t ~link =
  let dropped = ref 0 in
  Hashtbl.iter
    (fun _ s ->
      let doomed =
        Hashtbl.fold
          (fun key (p : Pcb.t) acc ->
            if Array.exists (fun l -> l = link) p.Pcb.links then key :: acc
            else acc)
          s.by_key []
      in
      List.iter
        (fun key ->
          Hashtbl.remove s.by_key key;
          incr dropped)
        doomed)
    t.origins;
  !dropped

let all_paths t ~now =
  Hashtbl.fold
    (fun _ s acc ->
      Hashtbl.fold
        (fun _ p acc -> if Pcb.is_valid p ~now then p :: acc else acc)
        s.by_key acc)
    t.origins []
  |> List.sort (fun (a : Pcb.t) (b : Pcb.t) ->
         compare (a.Pcb.origin, a.Pcb.key) (b.Pcb.origin, b.Pcb.key))

type dump = { d_limit : int; d_origins : (int * float * Pcb.t list) list }

let dump t =
  let d_origins =
    Hashtbl.fold
      (fun origin s acc ->
        let pcbs =
          Hashtbl.fold (fun _ p acc -> p :: acc) s.by_key []
          |> List.sort (fun (a : Pcb.t) (b : Pcb.t) ->
                 compare a.Pcb.key b.Pcb.key)
        in
        (origin, s.last_modified, pcbs) :: acc)
      t.origins []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  { d_limit = t.limit; d_origins }

let of_dump d =
  let t = create ~limit:d.d_limit in
  List.iter
    (fun (origin, last_modified, pcbs) ->
      let s = slot t origin in
      List.iter (fun (p : Pcb.t) -> Hashtbl.replace s.by_key p.Pcb.key p) pcbs;
      s.last_modified <- last_modified)
    d.d_origins;
  t
