(** Round-based beaconing engine for core and intra-ISD beaconing (§2.2).

    Each beaconing interval, every originating core AS initiates a
    fresh PCB instance, and every AS runs its path-construction
    algorithm to select which stored PCBs to extend and disseminate on
    which eligible interfaces. Messages sent in one interval are
    delivered before the next (the intervals of §5.1 are three orders
    of magnitude longer than propagation delays), which is exactly the
    regime the paper's ns-3 simulations operate in.

    - {e Core beaconing}: selective flooding over core links; all core
      ASes originate.
    - {e Intra-ISD beaconing}: uni-directional dissemination from the
      ISD core down provider–customer links; only core ASes originate,
      and each AS entry advertises the AS's peering links. *)

type scope = Core_beaconing | Intra_isd

type config = {
  scope : scope;
  algorithm : Beacon_policy.t;
  interval : float;  (** beaconing interval, 600 s in §5.1 *)
  lifetime : float;  (** PCB lifetime, 21 600 s in §5.1 *)
  dissemination_limit : int;
      (** max PCBs per origin per interval — applied per interface for
          the baseline, per neighbor AS for the diversity algorithm
          (§5.1); 5 in all paper experiments *)
  storage_limit : int;  (** PCB storage limit per origin; [max_int] = ∞ *)
  signature_bytes : int;  (** 96 for ECDSA-P384 *)
  duration : float;  (** simulated time, 21 600 s in §5.1 *)
  verify_crypto : bool;
      (** sign every AS entry and verify whole chains on receipt
          (intended for small topologies and tests) *)
  filters : (int * Beacon_filter.t) list;
      (** AS-local propagation policies (§2.2): candidate PCBs an AS's
          policy rejects are never disseminated by that AS *)
}

val default_config : config
(** §5.1 settings: core beaconing, baseline algorithm, 10-minute
    interval, 6-hour lifetime and duration, limits 5/60, ECDSA-P384
    sizes, no crypto verification. *)

type stats = {
  bytes_on_iface : float array;
      (** sent bytes per directed interface; index [2*link + 0] for the
          [a]→[b] direction, [2*link + 1] for [b]→[a] *)
  pcbs_on_iface : int array;  (** sent PCB count, same indexing *)
  mutable total_bytes : float;
  mutable total_pcbs : int;
  mutable crypto_failures : int;
  rounds : int;
}

type outcome = {
  graph : Graph.t;
  config : config;
  stores : Beacon_store.t array;  (** final beacon store of every AS *)
  stats : stats;
}

(** {1 Stepwise engine}

    {!run} executes all rounds in one call. The engine below exposes
    the same simulation round by round, so a supervisor can checkpoint
    between rounds and resume later: build an engine over restored
    [stores]/[stats] and call {!engine_round} for the remaining rounds
    only. A resumed engine is behaviour-identical to one that executed
    the earlier rounds itself {e provided} the algorithm keeps no state
    outside stores and stats (true for [Baseline]; the diversity and
    latency algorithms keep history in an internal state that is not
    restorable, so checkpointing those is unsupported). *)

type engine

val engine :
  ?obs:Obs.t ->
  ?link_up:(now:float -> int -> bool) ->
  ?stores:Beacon_store.t array ->
  ?stats:stats ->
  Graph.t ->
  config ->
  engine
(** Set up a simulation without running any rounds. [stores]/[stats]
    inject previously checkpointed state (they are adopted, not
    copied); by default fresh empty ones are created. Raises
    [Invalid_argument] on a config {!run} would reject or on an
    injected array whose length does not match the graph. *)

val engine_round : engine -> round:int -> unit
(** Execute beaconing interval [round] (0-based): prune (every 6th
    round), select, disseminate, deliver. Rounds must be driven in
    increasing order starting at the first non-executed round;
    {!run}'s [on_round_start]/[on_round] hooks correspond to calling
    code before/after [engine_round]. *)

val engine_stores : engine -> Beacon_store.t array
(** The live store array (the one passed in, if any). *)

val engine_stats : engine -> stats
(** The live accounting record. [stats.rounds] is the planned round
    count [duration / interval]. *)

val engine_outcome : engine -> outcome
(** Package the engine's current state as an {!outcome}. Does not
    {!observe}. *)

val run :
  ?obs:Obs.t ->
  ?link_up:(now:float -> int -> bool) ->
  ?on_round_start:(round:int -> now:float -> stores:Beacon_store.t array -> unit) ->
  ?on_round:(round:int -> now:float -> unit) ->
  Graph.t ->
  config ->
  outcome
(** Simulate [duration / interval] beaconing intervals.

    [link_up ~now l] (default: always [true]) gates dissemination on
    link liveness: a PCB selected for propagation over a dead link is
    silently discarded — no bytes are accounted and nothing is
    delivered — modelling a border router whose interface is down
    (fault injection, {!Faults}). [on_round_start] fires at the start
    of every interval, before pruning and selection, with the live
    store array; fault drivers use it to advance an external event
    clock and expire revoked PCBs in lock-step with beaconing.
    [on_round] fires after the interval's messages are delivered.

    With an enabled [obs] context (default {!Obs.disabled}, which costs
    one branch per send) the run maintains
    [beacon_{pcbs_sent,bytes_sent,pcbs_originated,pcbs_filtered,crypto_failures}_total]
    counters labeled [{algo; scope}], times each selection round under
    the [beacon.selection_round] timer, emits [beacon]-category trace
    events (per-PCB at [Debug], per-round and end-of-run at [Info],
    crypto rejections at [Warn]) and finally calls {!observe} on the
    outcome. *)

val observe : ?top:int -> Obs.t -> outcome -> unit
(** Export an outcome's byte accounting into an {!Obs.t}: the directed
    per-interface sent-byte distribution as the [beacon_iface_bytes]
    histogram (the Fig. 9 quantity) and the [top] (default 16) busiest
    interfaces as [pcb_bytes{as; ifid; algo; scope}] labeled counters.
    No-op on a disabled context; {!run} already calls this when its
    [obs] is enabled. *)

val received_bytes_by_as : outcome -> float array
(** Control-plane bytes received per AS (PCBs arriving on its
    interfaces), the per-monitor quantity of Fig. 5. *)

val sent_bytes_by_as : outcome -> float array

val eligible_iface_bytes : outcome -> float array
(** Sent bytes of every directed interface that is eligible for the
    configured scope (the per-interface distribution of Fig. 9). *)
