(** Path-construction policies and the §4.2 scoring functions.

    The baseline algorithm disseminates the [P] shortest stored paths
    per origin on every eligible interface, each interval, irrespective
    of what was previously sent. The path-diversity-based algorithm
    scores candidate paths by link disjointness, age and lifetime
    (Equations 1–3) and sends only combinations scoring above a
    threshold. *)

type mean_kind =
  | Geometric  (** the paper's choice (§4.2) *)
  | Arithmetic  (** ablation: AM ≥ GM, so overlap is penalised harder *)

type div_params = {
  alpha : float;  (** Eq. 2 exponent weight for never-sent PCBs *)
  beta : float;  (** Eq. 3 ratio weight for previously-sent PCBs *)
  gamma : float;  (** Eq. 3 outer exponent *)
  threshold : float;  (** minimum score to disseminate *)
  mean_kind : mean_kind;  (** link-counter aggregation (ablation knob) *)
  gm_max : float;
      (** maximum acceptable geometric mean of link counters: the
          diversity score is [1 - (gm - 1) / gm_max], clamped to
          [\[0,1\]] (see DESIGN.md §6 for the interpretation) *)
}

val default_div_params : div_params
(** Parameters found by the two-stage grid search of §4.2 on the
    synthetic topologies (see {!Tuning}). *)

type latency_params = {
  base : div_params;
      (** the Eq. 1–3 age/lifetime machinery is metric-independent and
          reused verbatim; [gm_max] and [mean_kind] are unused here *)
  link_latency_ms : float array;
      (** per-link one-way latency, the information annotated PCBs (or
          a measurement side-channel) would carry (§4.2) *)
  latency_scale_ms : float;
      (** latency at which a path's quality reaches 0 *)
}

type t =
  | Baseline
  | Diversity of div_params
  | Latency_aware of latency_params
      (** §4.2 "optimizing for other criteria": same selection loop as
          the diversity algorithm, but candidate quality is derived
          from accumulated path latency instead of link disjointness *)

val diversity_of_gm : div_params -> float -> float
(** [diversity_of_gm p gm] maps a geometric mean of [(1 + counter)]
    values to the [\[0,1\]] link-diversity score. *)

val score_fresh : div_params -> ds:float -> age:float -> lifetime:float -> float
(** Eq. 1 lower branch with Eq. 2: [ds ** (alpha * age / lifetime)]. *)

val latency_quality : latency_params -> total_ms:float -> float
(** [clamp01 (1 - total_ms / latency_scale_ms)]: lower-latency paths
    score higher. *)

val score_resend :
  div_params -> ds:float -> sent_remaining:float -> current_remaining:float -> float
(** Eq. 1 upper branch with Eq. 3:
    [ds ** ((beta * sent_remaining / current_remaining) ** gamma)].
    Returns 0 when the current instance has no remaining lifetime. *)

val resend_crossing_time :
  div_params ->
  ds:float ->
  now:float ->
  sent_expires_at:float ->
  current_expires_at:float ->
  float
(** The earliest virtual time at which {!score_resend} for this
    previously-sent path and the given stored candidate instance can
    reach the threshold. Both remaining lifetimes decay linearly, so
    the crossing is solvable in closed form; [infinity] when it can
    never cross before the sent instance expires, [now] when the score
    is already above the threshold. Used by the beacon server to skip
    (origin, neighbor) pairs whose selection provably cannot change
    yet — a pure scheduling optimisation. *)
