type sent_info = {
  ds : float;
  mutable sent_expires_at : float;
  origin : int;
  neighbor : int;
  links : int array;
}

type pair_state = {
  mutable last_eval : float;
  mutable next_eval : float;
}

type t = {
  n_as : int;
  history : (int, (int, int ref) Hashtbl.t) Hashtbl.t; (* pair key -> link -> count *)
  sent : (int, (string, sent_info) Hashtbl.t) Hashtbl.t; (* egress link -> path key -> info *)
  pairs : (int, pair_state) Hashtbl.t;
}

let create ~n_as =
  {
    n_as;
    history = Hashtbl.create 256;
    sent = Hashtbl.create 64;
    pairs = Hashtbl.create 256;
  }

let pair_key t ~origin ~neighbor = (origin * t.n_as) + neighbor

let pair_state t ~origin ~neighbor =
  let k = pair_key t ~origin ~neighbor in
  match Hashtbl.find_opt t.pairs k with
  | Some s -> s
  | None ->
      let s = { last_eval = neg_infinity; next_eval = infinity } in
      Hashtbl.replace t.pairs k s;
      s

let history_table t ~origin ~neighbor =
  let k = pair_key t ~origin ~neighbor in
  match Hashtbl.find_opt t.history k with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.replace t.history k h;
      h

let counter table link =
  match Hashtbl.find_opt table link with Some r -> !r | None -> 0

let counters_gm t ~origin ~neighbor ~links ~extra =
  let table = history_table t ~origin ~neighbor in
  if Hashtbl.length table = 0 then 1.0
  else begin
  let log_sum = ref 0.0 in
  Array.iter
    (fun l -> log_sum := !log_sum +. log (float_of_int (1 + counter table l)))
    links;
  log_sum := !log_sum +. log (float_of_int (1 + counter table extra));
  exp (!log_sum /. float_of_int (Array.length links + 1))
  end

let counters_mean t ~kind ~origin ~neighbor ~links ~extra =
  match kind with
  | Beacon_policy.Geometric -> counters_gm t ~origin ~neighbor ~links ~extra
  | Beacon_policy.Arithmetic ->
      let table = history_table t ~origin ~neighbor in
      if Hashtbl.length table = 0 then 1.0
      else begin
        let sum = ref 0.0 in
        Array.iter
          (fun l -> sum := !sum +. float_of_int (1 + counter table l))
          links;
        sum := !sum +. float_of_int (1 + counter table extra);
        !sum /. float_of_int (Array.length links + 1)
      end

let bump table link delta =
  match Hashtbl.find_opt table link with
  | Some r ->
      r := !r + delta;
      if !r <= 0 then Hashtbl.remove table link
  | None -> if delta > 0 then Hashtbl.replace table link (ref delta)

let increment t ~origin ~neighbor ~links ~extra =
  let table = history_table t ~origin ~neighbor in
  Array.iter (fun l -> bump table l 1) links;
  bump table extra 1

let sent_table t egress =
  match Hashtbl.find_opt t.sent egress with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace t.sent egress s;
      s

let find_sent t ~egress ~key =
  match Hashtbl.find_opt t.sent egress with
  | None -> None
  | Some table -> Hashtbl.find_opt table key

let record_sent t ~origin ~neighbor ~egress ~key ~links ~ds ~expires_at =
  let info = { ds; sent_expires_at = expires_at; origin; neighbor; links } in
  Hashtbl.replace (sent_table t egress) key info

let refresh_sent info ~expires_at = info.sent_expires_at <- expires_at

let should_evaluate t ~origin ~neighbor ~store_last_mod ~now =
  let s = pair_state t ~origin ~neighbor in
  (* ">=": a store update in the same round as the last evaluation (the
     engine evaluates before it delivers) must trigger re-evaluation. *)
  store_last_mod >= s.last_eval || now >= s.next_eval

let begin_evaluation t ~origin ~neighbor ~now =
  let s = pair_state t ~origin ~neighbor in
  s.last_eval <- now;
  s.next_eval <- infinity

let propose_next_eval t ~origin ~neighbor time =
  let s = pair_state t ~origin ~neighbor in
  if time < s.next_eval then s.next_eval <- time

let prune t ~now =
  Hashtbl.iter
    (fun _ table ->
      let dead =
        Hashtbl.fold
          (fun key info acc ->
            if info.sent_expires_at <= now then (key, info) :: acc else acc)
          table []
      in
      List.iter
        (fun (key, info) ->
          Hashtbl.remove table key;
          let h = history_table t ~origin:info.origin ~neighbor:info.neighbor in
          Array.iter (fun l -> bump h l (-1)) info.links)
        dead)
    t.sent

let sent_count t =
  Hashtbl.fold (fun _ table acc -> acc + Hashtbl.length table) t.sent 0
