(** Path-segment Construction Beacons (§2.2).

    A PCB is initiated by a core AS and extended hop by hop: before
    propagating, each beacon server appends its AS entry carrying the
    ingress/egress interface pair of the traversed inter-domain link, a
    hop field for the data plane, and a signature. A PCB therefore
    encodes one path segment at inter-domain-interface granularity. *)

type hop = {
  asn : int;  (** AS index in the topology *)
  ingress : Id.iface;  (** receiving interface; 0 at the origin *)
  egress : Id.iface;  (** interface used to reach the next AS *)
  link : int;  (** link id of the egress link *)
  peers : int array;
      (** peering-link ids the AS advertised in its entry (intra-ISD
          beaconing, §2.2); enables peering shortcuts (§2.3) *)
}

type t = private {
  origin : int;  (** originating core AS index *)
  timestamp : float;  (** initiation time of this instance *)
  lifetime : float;
  hops : hop array;  (** AS entries from the origin onwards *)
  links : int array;  (** link ids traversed, in order *)
  key : string;  (** canonical identity of the {e path} (link sequence);
                     instances of the same path share the key *)
  signatures : string list;  (** per-AS-entry signatures, newest first
                                 (empty when crypto is disabled) *)
}

val origin_pcb : origin:int -> now:float -> lifetime:float -> t
(** A PCB as it exists inside its origin AS before the origin's own AS
    entry is appended: zero hops. *)

val extend :
  ?signature:string ->
  t ->
  asn:int ->
  ingress:Id.iface ->
  egress:Id.iface ->
  link:int ->
  peers:int array ->
  t
(** Append one AS entry; called by the beacon server just before
    propagation (the origin calls it with [ingress:0]). *)

val expires_at : t -> float

val is_valid : t -> now:float -> bool

val age : t -> now:float -> float

val remaining : t -> now:float -> float
(** Remaining lifetime, clamped at 0. *)

val num_hops : t -> int
(** Number of AS entries (= AS-path length of the encoded segment). *)

val contains_as : t -> int -> bool
(** Loop check: is the AS already on the path (origin included)? *)

val last_link : t -> int option
(** The link over which the PCB reached its current holder. *)

val path_key : int array -> string
(** Canonical key for a link sequence (also used for candidate paths
    that have not been materialised as PCBs yet). *)

val extend_key : string -> int -> string
(** [extend_key key link] is the key of the path obtained by appending
    [link], without materialising the PCB. *)

val with_signature : t -> string -> t
(** Attach the newest AS entry's signature (computed over
    {!signable_bytes} of the extended PCB). *)

val wire_bytes : t -> signature_bytes:int -> int
(** On-the-wire size of the (already extended) PCB. *)

val signable_bytes : t -> string
(** Deterministic serialisation of the PCB content covered by the next
    AS-entry signature. *)

val pp : Format.formatter -> t -> unit
