type mean_kind = Geometric | Arithmetic

type div_params = {
  alpha : float;
  beta : float;
  gamma : float;
  threshold : float;
  mean_kind : mean_kind;
  gm_max : float;
}

let default_div_params =
  {
    alpha = 40.0;
    beta = 6.0;
    gamma = 7.0;
    threshold = 0.30;
    mean_kind = Geometric;
    gm_max = 4.0;
  }

type latency_params = {
  base : div_params;
  link_latency_ms : float array;
  latency_scale_ms : float;
}

type t = Baseline | Diversity of div_params | Latency_aware of latency_params

let clamp01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let latency_quality p ~total_ms =
  if p.latency_scale_ms <= 0.0 then 0.0
  else clamp01 (1.0 -. (total_ms /. p.latency_scale_ms))

let diversity_of_gm p gm = clamp01 (1.0 -. ((gm -. 1.0) /. p.gm_max))

let score_fresh p ~ds ~age ~lifetime =
  if lifetime <= 0.0 then 0.0
  else begin
    let f = p.alpha *. (max 0.0 age /. lifetime) in
    ds ** f
  end

let score_resend p ~ds ~sent_remaining ~current_remaining =
  if current_remaining <= 0.0 then 0.0
  else begin
    let ratio = max 0.0 sent_remaining /. current_remaining in
    let g = (p.beta *. ratio) ** p.gamma in
    ds ** g
  end

let resend_crossing_time p ~ds ~now ~sent_expires_at ~current_expires_at =
  if ds >= 1.0 then now
  else if ds <= 0.0 then infinity
  else begin
    (* score >= threshold  <=>  sent_remaining / current_remaining <= r*. *)
    let r_star = (log p.threshold /. log ds) ** (1.0 /. p.gamma) /. p.beta in
    let sr = sent_expires_at -. now and cr = current_expires_at -. now in
    if cr <= 0.0 then infinity
    else if sr /. cr <= r_star then now
    else if current_expires_at <= sent_expires_at then
      (* The ratio does not decrease over time: it can only cross once
         the sent entry itself expires — which prune handles. *)
      infinity
    else if r_star >= 1.0 then now
    else begin
      let t = (sent_expires_at -. (r_star *. current_expires_at)) /. (1.0 -. r_star) in
      (* Past the sent instance's expiry the entry leaves the Sent PCBs
         List anyway; re-evaluate then at the latest. *)
      min t sent_expires_at
    end
  end
