(** Wire codec for Path-segment Construction Beacons.

    The control-plane message format: a PCB is serialised when the
    beacon server propagates it, and parsed (totally — malformed input
    yields [Error]) on receipt. Signatures are carried verbatim, so a
    decoded PCB verifies exactly like the original. Big-endian. *)

val encode : Pcb.t -> string
(** Raises [Invalid_argument] when a field exceeds its wire range
    (interfaces 16-bit, links 24-bit, hop and signature counts 8-bit). *)

val decode : string -> (Pcb.t, string) result
(** Inverse of {!encode}; trailing bytes are rejected, and the path key
    is recomputed so decoded PCBs interoperate with beacon stores. *)

val encoded_size : Pcb.t -> int

val version : int
