(** AS-local beaconing policies (§2.2).

    "The beacon server decides which PCBs to propagate on which
    interfaces based on AS-local policies." A policy is a list of
    rules evaluated against a candidate PCB before the selection
    algorithm sees it; any matching deny rule drops the candidate.
    Policies never affect other ASes' decisions — exactly the local
    autonomy the control plane is designed around. *)

type rule =
  | Deny_as of int  (** drop PCBs whose path contains the AS *)
  | Deny_isd of int  (** drop PCBs touching any AS of the ISD
                         (geofencing at dissemination time, §3.1) *)
  | Deny_link of int  (** drop PCBs traversing a specific link *)
  | Max_hops of int  (** drop paths longer than this many AS entries *)
  | Deny_origin of int  (** do not propagate this origin's PCBs at all *)

type t = rule list

val allows : Graph.t -> t -> Pcb.t -> bool
(** [true] when no rule rejects the PCB. The empty policy allows
    everything. *)

val pp_rule : Format.formatter -> rule -> unit
