type rule =
  | Deny_as of int
  | Deny_isd of int
  | Deny_link of int
  | Max_hops of int
  | Deny_origin of int

type t = rule list

let path_touches_isd g (p : Pcb.t) isd =
  (Graph.as_info g p.Pcb.origin).Graph.ia.Id.isd = isd
  || Array.exists
       (fun (h : Pcb.hop) -> (Graph.as_info g h.Pcb.asn).Graph.ia.Id.isd = isd)
       p.Pcb.hops

let rule_allows g (p : Pcb.t) = function
  | Deny_as a -> not (Pcb.contains_as p a)
  | Deny_isd isd -> not (path_touches_isd g p isd)
  | Deny_link l -> not (Array.exists (fun x -> x = l) p.Pcb.links)
  | Max_hops n -> Pcb.num_hops p <= n
  | Deny_origin o -> p.Pcb.origin <> o

let allows g t p = List.for_all (rule_allows g p) t

let pp_rule fmt = function
  | Deny_as a -> Format.fprintf fmt "deny-as %d" a
  | Deny_isd i -> Format.fprintf fmt "deny-isd %d" i
  | Deny_link l -> Format.fprintf fmt "deny-link %d" l
  | Max_hops n -> Format.fprintf fmt "max-hops %d" n
  | Deny_origin o -> Format.fprintf fmt "deny-origin %d" o
