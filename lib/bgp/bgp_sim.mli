(** Event-driven BGP / BGPsec simulator — the SimBGP stand-in (§5.1).

    A path-vector protocol over the AS graph with the paper's SimBGP
    configuration: a per-neighbor Minimum Route Advertisement Interval
    (15 s) and a per-update processing delay (5 ms). Each AS originates
    one prefix (identified with the AS index); the decision process is
    Gao–Rexford (customer > peer > provider, then shortest AS path,
    then lowest neighbor id) with standard export filtering. BGP
    sessions are per neighbor AS: parallel links only affect session
    liveness.

    The simulator measures what the closed-form {!Bgp_routes} model
    assumes: update counts and bytes during initial convergence and
    after link failures (path-exploration churn), and convergence
    times — the quantity SCION does not have, since path segments are
    stable upon dissemination (§5). *)

type config = {
  mrai : float;  (** seconds, 15.0 in §5.1 *)
  processing_delay : float;  (** per received update, 0.005 in §5.1 *)
  propagation_delay : float;  (** per inter-AS hop *)
  bgpsec : bool;  (** account RFC 8205 update sizes instead of RFC 4271 *)
  signature_bytes : int;
  full_transit : bool;
      (** disable Gao–Rexford export filtering and class preference
          (shortest-AS-path routing) — used on all-core subgraphs where
          every AS provides transit, mirroring {!Bgp_routes.shortest_multipath} *)
}

val default_config : config
(** MRAI 15 s, processing 5 ms, propagation 10 ms, plain BGP. *)

type t

val create : ?obs:Obs.t -> Graph.t -> config -> t
(** Build per-AS RIBs and BGP sessions; nothing is announced yet.

    With an enabled [obs] context (default {!Obs.disabled}) the
    simulator maintains
    [bgp_{updates,withdrawals,bytes}_sent_total] counters labeled
    [{proto}] ([bgp] or [bgpsec]), emits [bgp]-category trace events
    (per-message sends and best-route changes at [Debug], convergence
    epochs at [Info]) and passes [obs] to its internal {!Des.create},
    so the event engine's [des_events_total] / [des_queue_depth]
    instrumentation is active too. *)

val sim : t -> Des.t
(** The underlying event engine (shared clock). *)

val announce_all : t -> unit
(** Every AS originates its own prefix at the current virtual time. *)

val announce : t -> origin:int -> unit

val withdraw_origin : t -> origin:int -> unit
(** The origin stops announcing its prefix (route withdrawal cascade). *)

val fail_link : t -> int -> unit
(** Take one link down at the current time. If it was the session's
    last parallel link, both ends drop the routes learned over it and
    re-run their decision processes. *)

val restore_link : t -> int -> unit

val run_to_quiescence : ?max_time:float -> t -> float
(** Drain all events (bounded by [max_time], default 3600 s of virtual
    time); returns the virtual time of quiescence. *)

val best_path : t -> src:int -> prefix:int -> int list option
(** Current best AS path [src; ...; prefix origin]. *)

val adj_rib_in_paths : t -> src:int -> prefix:int -> int list list
(** All paths currently offered by neighbors (BGP multipath pool). *)

type stats = {
  updates_sent : int;
  withdrawals_sent : int;
  bytes_sent : float;
  updates_received_per_as : int array;
  bytes_received_per_as : float array;
  last_route_change : float;  (** virtual time of the latest best-route
                                  change anywhere — convergence marker *)
}

val stats : t -> stats

val reset_stats : t -> unit
(** Zero the counters (e.g., after initial convergence, before failing
    a link, so churn is measured in isolation). *)
