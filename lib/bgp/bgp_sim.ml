type config = {
  mrai : float;
  processing_delay : float;
  propagation_delay : float;
  bgpsec : bool;
  signature_bytes : int;
  full_transit : bool;
}

let default_config =
  {
    mrai = 15.0;
    processing_delay = 0.005;
    propagation_delay = 0.010;
    bgpsec = false;
    signature_bytes = 96;
    full_transit = false;
  }

(* A route as installed at an AS: the path starts with the AS itself
   and ends at the prefix origin. *)
type route = { path : int list; cls : Bgp_routes.route_class }

type session = {
  neighbor : int;
  dir : Graph.rel_from_self;
  mutable live_links : int;
  mutable ready_at : float;  (* MRAI: earliest next advertisement *)
  mutable fire_scheduled : bool;
  pending : (int, unit) Hashtbl.t;  (* prefixes awaiting advertisement *)
  out : (int, int list) Hashtbl.t;  (* Adj-RIB-Out: what this session advertised *)
}

type node = {
  idx : int;
  sessions : (int, session) Hashtbl.t;  (* by neighbor *)
  rib_in : (int * int, int list) Hashtbl.t;  (* (neighbor, prefix) -> neighbor-rooted path *)
  best : (int, route) Hashtbl.t;  (* prefix -> installed route *)
  mutable originating : bool;
  mutable busy_until : float;  (* serialises the 5 ms processing delay *)
}

type stats_mut = {
  mutable updates_sent : int;
  mutable withdrawals_sent : int;
  mutable bytes_sent : float;
  updates_received_per_as : int array;
  bytes_received_per_as : float array;
  mutable last_route_change : float;
}

type t = {
  graph : Graph.t;
  config : config;
  des : Des.t;
  nodes : node array;
  st : stats_mut;
  (* Observability cells, hoisted at creation (one branch per update
     when disabled). *)
  obs_on : bool;
  tr : Trace.t;
  c_updates : float ref;
  c_withdrawals : float ref;
  c_bytes : float ref;
}

type stats = {
  updates_sent : int;
  withdrawals_sent : int;
  bytes_sent : float;
  updates_received_per_as : int array;
  bytes_received_per_as : float array;
  last_route_change : float;
}

let create ?(obs = Obs.disabled) g config =
  let n = Graph.n g in
  let nodes =
    Array.init n (fun idx ->
        let sessions = Hashtbl.create 8 in
        Array.iter
          (fun (h : Graph.half_link) ->
            match Hashtbl.find_opt sessions h.Graph.peer with
            | Some s -> s.live_links <- s.live_links + 1
            | None ->
                Hashtbl.replace sessions h.Graph.peer
                  {
                    neighbor = h.Graph.peer;
                    dir = h.Graph.dir;
                    live_links = 1;
                    ready_at = 0.0;
                    fire_scheduled = false;
                    pending = Hashtbl.create 8;
                    out = Hashtbl.create 8;
                  })
          (Graph.adj g idx);
        {
          idx;
          sessions;
          rib_in = Hashtbl.create 64;
          best = Hashtbl.create 64;
          originating = false;
          busy_until = 0.0;
        })
  in
  let obs_on = Obs.on obs in
  let proto_labels =
    [ ("proto", if config.bgpsec then "bgpsec" else "bgp") ]
  in
  let c_updates, c_withdrawals, c_bytes =
    if obs_on then begin
      let reg = Obs.registry obs in
      ( Registry.counter reg ~labels:proto_labels "bgp_updates_sent_total",
        Registry.counter reg ~labels:proto_labels "bgp_withdrawals_sent_total",
        Registry.counter reg ~labels:proto_labels "bgp_bytes_sent_total" )
    end
    else (ref 0.0, ref 0.0, ref 0.0)
  in
  {
    graph = g;
    config;
    des = Des.create ~obs ();
    nodes;
    obs_on;
    tr = Obs.trace obs;
    c_updates;
    c_withdrawals;
    c_bytes;
    st =
      {
        updates_sent = 0;
        withdrawals_sent = 0;
        bytes_sent = 0.0;
        updates_received_per_as = Array.make n 0;
        bytes_received_per_as = Array.make n 0.0;
        last_route_change = 0.0;
      };
  }

let sim t = t.des

let class_of_dir = function
  | Graph.To_customer -> Bgp_routes.Via_customer
  | Graph.To_peer | Graph.To_core -> Bgp_routes.Via_peer
  | Graph.To_provider -> Bgp_routes.Via_provider

let class_rank = function
  | Bgp_routes.Self -> 4
  | Bgp_routes.Via_customer -> 3
  | Bgp_routes.Via_peer -> 2
  | Bgp_routes.Via_provider -> 1
  | Bgp_routes.No_route -> 0

(* Export filter: customer routes go everywhere; peer/provider routes
   only to customers. With [full_transit], everything is exported. *)
let exports t route (s : session) =
  if t.config.full_transit then route.cls <> Bgp_routes.No_route
  else begin
    match route.cls with
    | Bgp_routes.Self | Bgp_routes.Via_customer -> true
    | Bgp_routes.Via_peer | Bgp_routes.Via_provider -> s.dir = Graph.To_customer
    | Bgp_routes.No_route -> false
  end

let update_bytes t len =
  if t.config.bgpsec then
    float_of_int
      (Wire.bgpsec_update_bytes ~as_path_len:len
         ~signature_bytes:t.config.signature_bytes)
  else float_of_int (Wire.bgp_update_bytes ~as_path_len:len ~prefixes:1)

(* Compute the decision-process winner for [prefix] at [node]. *)
let decide t node prefix =
  let self =
    if node.originating && prefix = node.idx then
      Some { path = [ node.idx ]; cls = Bgp_routes.Self }
    else None
  in
  Hashtbl.fold
    (fun u (s : session) acc ->
      if s.live_links = 0 then acc
      else begin
        match Hashtbl.find_opt node.rib_in (u, prefix) with
        | None -> acc
        | Some p when List.mem node.idx p -> acc (* loop *)
        | Some p ->
            let cand = { path = node.idx :: p; cls = class_of_dir s.dir } in
            let better =
              match acc with
              | None -> true
              | Some best ->
                  let key r =
                    ( (if t.config.full_transit then
                         (* length-only decision under full transit
                            (except preferring the own prefix) *)
                         if r.cls = Bgp_routes.Self then 1 else 0
                       else class_rank r.cls),
                      -List.length r.path,
                      -(match r.path with _ :: nh :: _ -> nh | _ -> 0) )
                  in
                  compare (key cand) (key best) > 0
            in
            if better then Some cand else acc
      end)
    node.sessions self
  |> fun best -> best

let rec flush_session t node (s : session) =
  let now = Des.now t.des in
  if now >= s.ready_at then begin
    let prefixes = Hashtbl.fold (fun p () acc -> p :: acc) s.pending [] in
    Hashtbl.reset s.pending;
    if prefixes <> [] then begin
      let sent_something = ref false in
      List.iter
        (fun prefix ->
          let announce =
            match Hashtbl.find_opt node.best prefix with
            | Some r when exports t r s -> Some r.path
            | _ -> None
          in
          let previously = Hashtbl.find_opt s.out prefix in
          (* Adj-RIB-Out suppression: only state changes go on the wire,
             and a withdrawal is only sent for a previously announced
             route. *)
          let must_send =
            match (previously, announce) with
            | None, None -> false
            | Some p, Some p' -> p <> p'
            | None, Some _ | Some _, None -> true
          in
          if must_send then begin
            sent_something := true;
            (match announce with
            | Some p -> Hashtbl.replace s.out prefix p
            | None -> Hashtbl.remove s.out prefix);
            let size =
              match announce with
              | Some p -> update_bytes t (List.length p)
              | None -> float_of_int (Wire.bgp_withdraw_bytes ~prefixes:1)
            in
            (match announce with
            | Some _ -> t.st.updates_sent <- t.st.updates_sent + 1
            | None -> t.st.withdrawals_sent <- t.st.withdrawals_sent + 1);
            t.st.bytes_sent <- t.st.bytes_sent +. size;
            if t.obs_on then begin
              (match announce with
              | Some _ -> t.c_updates := !(t.c_updates) +. 1.0
              | None -> t.c_withdrawals := !(t.c_withdrawals) +. 1.0);
              t.c_bytes := !(t.c_bytes) +. size;
              if Trace.enabled t.tr Trace.Debug then
                Trace.emit t.tr Trace.Debug ~time:now ~category:"bgp"
                  ~fields:
                    [
                      ("from", string_of_int node.idx);
                      ("to", string_of_int s.neighbor);
                      ("prefix", string_of_int prefix);
                      ( "path_len",
                        match announce with
                        | Some p -> string_of_int (List.length p)
                        | None -> "0" );
                    ]
                  (match announce with
                  | Some _ -> "update sent"
                  | None -> "withdrawal sent")
            end;
            let receiver = s.neighbor in
            let sender = node.idx in
            Des.schedule t.des ~delay:t.config.propagation_delay (fun _ ->
                receive t ~receiver ~sender ~prefix ~path:announce ~size)
          end)
        prefixes;
      if !sent_something then s.ready_at <- now +. t.config.mrai
    end
  end
  else if not s.fire_scheduled then begin
    s.fire_scheduled <- true;
    Des.schedule_at t.des ~time:s.ready_at (fun _ ->
        s.fire_scheduled <- false;
        flush_session t node s)
  end

and schedule_exports t node prefix =
  Hashtbl.iter
    (fun _ (s : session) -> if s.live_links > 0 then begin
         Hashtbl.replace s.pending prefix ();
         flush_session t node s
       end)
    node.sessions

and reconsider t node prefix =
  let winner = decide t node prefix in
  let current = Hashtbl.find_opt node.best prefix in
  let changed =
    match (current, winner) with
    | None, None -> false
    | Some a, Some b -> a.path <> b.path || a.cls <> b.cls
    | _ -> true
  in
  if changed then begin
    (match winner with
    | Some r -> Hashtbl.replace node.best prefix r
    | None -> Hashtbl.remove node.best prefix);
    t.st.last_route_change <- Des.now t.des;
    if t.obs_on && Trace.enabled t.tr Trace.Debug then
      Trace.emit t.tr Trace.Debug ~time:(Des.now t.des) ~category:"bgp"
        ~fields:
          [
            ("as", string_of_int node.idx);
            ("prefix", string_of_int prefix);
            ( "path_len",
              match winner with
              | Some r -> string_of_int (List.length r.path)
              | None -> "0" );
          ]
        "best route changed";
    schedule_exports t node prefix
  end

and receive t ~receiver ~sender ~prefix ~path ~size =
  let node = t.nodes.(receiver) in
  (* Serialise processing: each update occupies the speaker for the
     configured processing delay. *)
  let now = Des.now t.des in
  let start = max now node.busy_until in
  let done_at = start +. t.config.processing_delay in
  node.busy_until <- done_at;
  t.st.updates_received_per_as.(receiver) <-
    t.st.updates_received_per_as.(receiver) + 1;
  t.st.bytes_received_per_as.(receiver) <-
    t.st.bytes_received_per_as.(receiver) +. size;
  Des.schedule_at t.des ~time:done_at (fun _ ->
      (* The session may have gone down while the update was in flight. *)
      match Hashtbl.find_opt node.sessions sender with
      | Some s when s.live_links > 0 ->
          (match path with
          | Some p -> Hashtbl.replace node.rib_in (sender, prefix) p
          | None -> Hashtbl.remove node.rib_in (sender, prefix));
          reconsider t node prefix
      | _ -> ())

let announce t ~origin =
  let node = t.nodes.(origin) in
  if not node.originating then begin
    node.originating <- true;
    reconsider t node origin
  end

let announce_all t =
  for v = 0 to Graph.n t.graph - 1 do
    announce t ~origin:v
  done

let withdraw_origin t ~origin =
  let node = t.nodes.(origin) in
  if node.originating then begin
    node.originating <- false;
    reconsider t node origin
  end

let affected_prefixes node neighbor =
  Hashtbl.fold
    (fun (u, prefix) _ acc -> if u = neighbor then prefix :: acc else acc)
    node.rib_in []
  |> List.sort_uniq compare

let session_down t v neighbor =
  let node = t.nodes.(v) in
  (match Hashtbl.find_opt node.sessions neighbor with
  | Some s ->
      Hashtbl.reset s.out;
      Hashtbl.reset s.pending
  | None -> ());
  let prefixes = affected_prefixes node neighbor in
  List.iter (fun p -> Hashtbl.remove node.rib_in (neighbor, p)) prefixes;
  List.iter (fun p -> reconsider t node p) prefixes

let session_up t v neighbor =
  (* Session (re-)establishment: advertise the full table. *)
  let node = t.nodes.(v) in
  match Hashtbl.find_opt node.sessions neighbor with
  | None -> ()
  | Some s ->
      Hashtbl.iter (fun prefix _ -> Hashtbl.replace s.pending prefix ()) node.best;
      flush_session t node s

let fail_link t l =
  let lk = Graph.link t.graph l in
  let drop v nbr =
    match Hashtbl.find_opt t.nodes.(v).sessions nbr with
    | None -> ()
    | Some s ->
        if s.live_links > 0 then begin
          s.live_links <- s.live_links - 1;
          if s.live_links = 0 then session_down t v nbr
        end
  in
  drop lk.Graph.a lk.Graph.b;
  drop lk.Graph.b lk.Graph.a

let restore_link t l =
  let lk = Graph.link t.graph l in
  let raise_ v nbr =
    match Hashtbl.find_opt t.nodes.(v).sessions nbr with
    | None -> ()
    | Some s ->
        s.live_links <- s.live_links + 1;
        if s.live_links = 1 then session_up t v nbr
  in
  raise_ lk.Graph.a lk.Graph.b;
  raise_ lk.Graph.b lk.Graph.a

let run_to_quiescence ?(max_time = 3600.0) t =
  let t_start = Des.now t.des in
  let updates_before = t.st.updates_sent + t.st.withdrawals_sent in
  let deadline = t_start +. max_time in
  let continue = ref true in
  while !continue do
    if Des.pending t.des = 0 || Des.now t.des > deadline then continue := false
    else ignore (Des.step t.des)
  done;
  let t_end = Des.now t.des in
  if t.obs_on && Trace.enabled t.tr Trace.Info then
    Trace.emit t.tr Trace.Info ~time:t_end ~category:"bgp"
      ~fields:
        [
          ("start", Printf.sprintf "%.3f" t_start);
          ("duration", Printf.sprintf "%.3f" (t_end -. t_start));
          ( "messages",
            string_of_int
              (t.st.updates_sent + t.st.withdrawals_sent - updates_before) );
        ]
      "convergence epoch complete";
  t_end

let best_path t ~src ~prefix =
  match Hashtbl.find_opt t.nodes.(src).best prefix with
  | Some r -> Some r.path
  | None -> None

let adj_rib_in_paths t ~src ~prefix =
  let node = t.nodes.(src) in
  Hashtbl.fold
    (fun (u, p) path acc ->
      if p = prefix && not (List.mem src path) then begin
        match Hashtbl.find_opt node.sessions u with
        | Some s when s.live_links > 0 -> (src :: path) :: acc
        | _ -> acc
      end
      else acc)
    node.rib_in []

let stats t =
  {
    updates_sent = t.st.updates_sent;
    withdrawals_sent = t.st.withdrawals_sent;
    bytes_sent = t.st.bytes_sent;
    updates_received_per_as = Array.copy t.st.updates_received_per_as;
    bytes_received_per_as = Array.copy t.st.bytes_received_per_as;
    last_route_change = t.st.last_route_change;
  }

let reset_stats t =
  t.st.updates_sent <- 0;
  t.st.withdrawals_sent <- 0;
  t.st.bytes_sent <- 0.0;
  Array.fill t.st.updates_received_per_as 0
    (Array.length t.st.updates_received_per_as)
    0;
  Array.fill t.st.bytes_received_per_as 0
    (Array.length t.st.bytes_received_per_as)
    0.0
