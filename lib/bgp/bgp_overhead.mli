(** Monthly control-plane overhead of BGP and BGPsec at monitor ASes
    (the Fig. 5 baseline and comparison series).

    The paper measures BGP from one month of RouteViews updates and
    simulates BGPsec with a one-day re-beaconing period multiplied by
    30 (§5.2). Without access to RouteViews we synthesise the workload:

    - {e prefixes per AS}: Pareto-distributed (few ASes originate most
      prefixes; mean ≈ 11, matching global table size / AS count);
    - {e flap events per prefix per month}: Pareto-distributed (update
      churn concentrates on few prefixes), with a path-exploration
      amplification factor per event;
    - BGPsec updates carry a single prefix each (RFC 8205 forbids
      aggregation) and are re-originated daily.

    A RouteViews monitor contributes one BGP session (its full feed to
    the collector), so overhead at a monitor counts the updates the
    monitor itself emits on that single session: one update per
    prefix-flap event (times the exploration amplification), with the
    monitor's own best-route AS-path length. This per-session quantity
    is what SCION's per-interface beaconing traffic is compared
    against in Fig. 5. *)

type workload = {
  prefixes : int array;  (** prefixes originated per AS *)
  flaps_per_prefix : float array;  (** monthly flap events per prefix, per AS *)
}

val make_workload :
  ?prefix_alpha:float ->
  ?prefix_mean_cap:int ->
  ?prefix_mean:float ->
  ?flap_alpha:float ->
  ?flap_x_min:float ->
  Graph.t ->
  seed:int64 ->
  workload
(** Deterministic synthetic workload. Defaults: prefix Pareto shape 1.1
    capped at [prefix_mean_cap = 2000]; flap Pareto shape 1.25, scale
    0.8 (mean ≈ 4 events/prefix/month). *)

type params = {
  churn_amplification : float;
      (** updates per flap event per exporting neighbor (path
          exploration); 2.0 by default *)
  bgpsec_refresh_days : int;  (** 30: one full-table refresh per day *)
  signature_bytes : int;  (** 96 for ECDSA-P384 *)
}

val default_params : params

type result = {
  monitors : int array;
  bgp_bytes : float array;  (** per monitor, one month *)
  bgp_updates : float array;
  bgpsec_bytes : float array;
  bgpsec_updates : float array;
}

val monthly_overhead : Graph.t -> workload -> monitors:int list -> params -> result
(** One Gao–Rexford table per destination; both protocols accounted in
    the same pass. *)

val top_degree_monitors : Graph.t -> count:int -> int list
(** Highest AS-degree ASes, the stand-in for RouteViews peers. *)
