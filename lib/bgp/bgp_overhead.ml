type workload = { prefixes : int array; flaps_per_prefix : float array }

let make_workload ?(prefix_alpha = 1.1) ?(prefix_mean_cap = 20000) ?(prefix_mean = 11.0)
    ?(flap_alpha = 1.25) ?(flap_x_min = 1.6) g ~seed =
  let rng = Rng.create seed in
  let n = Graph.n g in
  (* The Pareto(1.1, 1) draw has mean ~11; rescale to the requested
     mean so smaller-than-Internet topologies can carry an
     Internet-proportional prefix load (see Fig5). *)
  let rescale = prefix_mean /. 11.0 in
  let prefixes =
    Array.init n (fun _ ->
        let draw = Rng.pareto rng ~alpha:prefix_alpha ~x_min:1.0 *. rescale in
        max 1 (min prefix_mean_cap (int_of_float draw)))
  in
  let flaps_per_prefix =
    Array.init n (fun _ -> Rng.pareto rng ~alpha:flap_alpha ~x_min:flap_x_min)
  in
  { prefixes; flaps_per_prefix }

type params = {
  churn_amplification : float;
  bgpsec_refresh_days : int;
  signature_bytes : int;
}

let default_params =
  { churn_amplification = 2.5; bgpsec_refresh_days = 30; signature_bytes = 96 }

type result = {
  monitors : int array;
  bgp_bytes : float array;
  bgp_updates : float array;
  bgpsec_bytes : float array;
  bgpsec_updates : float array;
}

let monthly_overhead g workload ~monitors params =
  let monitors = Array.of_list monitors in
  let nm = Array.length monitors in
  let bgp_bytes = Array.make nm 0.0 in
  let bgp_updates = Array.make nm 0.0 in
  let bgpsec_bytes = Array.make nm 0.0 in
  let bgpsec_updates = Array.make nm 0.0 in
  for dst = 0 to Graph.n g - 1 do
    let table = Bgp_routes.compute g ~dst in
    let prefixes = workload.prefixes.(dst) in
    let flaps = workload.flaps_per_prefix.(dst) in
    Array.iteri
      (fun mi m ->
        if m <> dst && table.Bgp_routes.cls.(m) <> Bgp_routes.No_route then begin
          (* The monitor's full-feed session: its own best route,
             re-announced on every flap of any of the origin's
             prefixes (times path-exploration amplification). *)
          let len = table.Bgp_routes.dist.(m) + 1 in
          let events =
            float_of_int prefixes *. flaps *. params.churn_amplification
          in
          let bytes_per_event =
            float_of_int (Wire.bgp_update_bytes ~as_path_len:len ~prefixes:1)
          in
          bgp_bytes.(mi) <- bgp_bytes.(mi) +. (events *. bytes_per_event);
          bgp_updates.(mi) <- bgp_updates.(mi) +. events;
          (* BGPsec: a daily re-origination of every prefix in its own
             unaggregated, per-hop-signed update. *)
          let refreshes = float_of_int params.bgpsec_refresh_days in
          let per_update =
            float_of_int
              (Wire.bgpsec_update_bytes ~as_path_len:len
                 ~signature_bytes:params.signature_bytes)
          in
          bgpsec_bytes.(mi) <-
            bgpsec_bytes.(mi) +. (refreshes *. float_of_int prefixes *. per_update);
          bgpsec_updates.(mi) <-
            bgpsec_updates.(mi) +. (refreshes *. float_of_int prefixes)
        end)
      monitors
  done;
  { monitors; bgp_bytes; bgp_updates; bgpsec_bytes; bgpsec_updates }

let top_degree_monitors g ~count =
  let order = Array.init (Graph.n g) (fun i -> i) in
  Array.sort
    (fun a b -> compare (Graph.as_degree g b, a) (Graph.as_degree g a, b))
    order;
  Array.to_list (Array.sub order 0 (min count (Graph.n g)))
