(** BGP route computation under the Gao–Rexford policy model.

    Stands in for the paper's RouteViews ground truth and SimBGP
    simulations (§5.1–5.2). For one destination AS the stable outcome
    of BGP's decision process under standard export rules is computed
    directly (three-stage BFS): every AS prefers customer routes over
    peer routes over provider routes, breaking ties by AS-path length;
    customer routes are exported to everyone, peer and provider routes
    only to customers. Links of type {!Graph.Core} are treated as
    peering for routing purposes. *)

type route_class = No_route | Self | Via_customer | Via_peer | Via_provider

type table = {
  dst : int;
  cls : route_class array;  (** best-route class per AS *)
  dist : int array;  (** AS-path length of the best route; -1 if none *)
  parent : int array;  (** next hop toward [dst]; -1 at [dst] / no route *)
}

val compute : Graph.t -> dst:int -> table
(** Stable routing state for one destination. *)

val path_to : table -> src:int -> int list option
(** Best AS path [src; ...; dst], if any. *)

val exports_to : Graph.t -> table -> exporter:int -> importer:int -> bool
(** Would [exporter] announce its best [dst]-route to [importer]?
    True iff the exporter has a route, the importer is not the
    destination, and either the importer is the exporter's customer or
    the route is a customer/own route. *)

val exporting_neighbors : Graph.t -> table -> importer:int -> int list
(** Neighbors whose announcement reaches [importer] — the routes in the
    importer's Adj-RIBs-In for this destination. *)

val multipath_set : Graph.t -> table -> src:int -> int list list
(** The paper's best-case BGP multipath (§5.3): the distinct loop-free
    AS paths [src] can assemble from its Adj-RIBs-In — one path per
    exporting neighbor (the neighbor's best path), plus its own best
    path. *)

val shortest_multipath : Graph.t -> src:int -> dst:int -> int list list
(** Policy-free variant used on all-core subgraphs, where every link is
    mutual transit: BGP-multipath (ECMP) semantics — each neighbor on a
    {e shortest} path to [dst] (avoiding [src]) contributes one path;
    longer alternatives are not installable in BGP multipath. *)
