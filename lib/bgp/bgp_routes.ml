type route_class = No_route | Self | Via_customer | Via_peer | Via_provider

type table = {
  dst : int;
  cls : route_class array;
  dist : int array;
  parent : int array;
}

(* Peering and core links are both lateral for routing purposes. *)
let lateral (h : Graph.half_link) =
  h.Graph.dir = Graph.To_peer || h.Graph.dir = Graph.To_core

let compute g ~dst =
  let n = Graph.n g in
  let cls = Array.make n No_route in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  cls.(dst) <- Self;
  dist.(dst) <- 0;
  (* Stage 1: customer routes climb provider links (BFS = shortest). *)
  let queue = Queue.create () in
  Queue.push dst queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun (h : Graph.half_link) ->
        (* u announces upward: the peer on u's To_provider link learns a
           customer route. *)
        if h.Graph.dir = Graph.To_provider && cls.(h.Graph.peer) = No_route then begin
          cls.(h.Graph.peer) <- Via_customer;
          dist.(h.Graph.peer) <- dist.(u) + 1;
          parent.(h.Graph.peer) <- u;
          Queue.push h.Graph.peer queue
        end)
      (Graph.adj g u)
  done;
  (* Stage 2: peer routes — one lateral hop from a customer/self route. *)
  let peer_updates = ref [] in
  for v = 0 to n - 1 do
    if cls.(v) = No_route then begin
      let best = ref None in
      Array.iter
        (fun (h : Graph.half_link) ->
          if lateral h then begin
            let u = h.Graph.peer in
            if cls.(u) = Self || cls.(u) = Via_customer then begin
              match !best with
              | Some (d, _) when d <= dist.(u) + 1 -> ()
              | _ -> best := Some (dist.(u) + 1, u)
            end
          end)
        (Graph.adj g v);
      match !best with
      | Some (d, u) -> peer_updates := (v, d, u) :: !peer_updates
      | None -> ()
    end
  done;
  List.iter
    (fun (v, d, u) ->
      cls.(v) <- Via_peer;
      dist.(v) <- d;
      parent.(v) <- u)
    !peer_updates;
  (* Stage 3: provider routes descend customer links from any routed AS
     (multi-source BFS ordered by current distance). *)
  let heap = Heap.create ~cmp:(fun (a : int * int) b -> compare a b) in
  for v = 0 to n - 1 do
    if cls.(v) <> No_route then Heap.push heap (dist.(v), v)
  done;
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if d = dist.(u) then
          Array.iter
            (fun (h : Graph.half_link) ->
              if h.Graph.dir = Graph.To_customer then begin
                let c = h.Graph.peer in
                if cls.(c) = No_route then begin
                  cls.(c) <- Via_provider;
                  dist.(c) <- d + 1;
                  parent.(c) <- u;
                  Heap.push heap (d + 1, c)
                end
              end)
            (Graph.adj g u);
        drain ()
  in
  drain ();
  { dst; cls; dist; parent }

let path_to t ~src =
  if t.cls.(src) = No_route then None
  else begin
    let rec walk v acc guard =
      if guard > Array.length t.cls then None
      else if v = t.dst then Some (List.rev (v :: acc))
      else begin
        let p = t.parent.(v) in
        if p < 0 then None else walk p (v :: acc) (guard + 1)
      end
    in
    walk src [] 0
  end

let exports_to g t ~exporter ~importer =
  exporter <> importer && importer <> t.dst
  && t.cls.(exporter) <> No_route
  && begin
       let importer_is_customer =
         List.exists (fun c -> c = importer) (Graph.customers g exporter)
       in
       importer_is_customer
       || t.cls.(exporter) = Self
       || t.cls.(exporter) = Via_customer
     end

let exporting_neighbors g t ~importer =
  List.filter
    (fun u -> exports_to g t ~exporter:u ~importer)
    (Graph.neighbors g importer)

let multipath_set g t ~src =
  if src = t.dst then []
  else begin
    let paths = ref [] in
    let add p = if not (List.mem p !paths) then paths := p :: !paths in
    (match path_to t ~src with Some p -> add p | None -> ());
    List.iter
      (fun u ->
        match path_to t ~src:u with
        | Some p when not (List.mem src p) -> add (src :: p)
        | _ -> ())
      (exporting_neighbors g t ~importer:src);
    !paths
  end

let shortest_multipath g ~src ~dst =
  if src = dst then []
  else begin
    let n = Graph.n g in
    (* BFS from dst with src removed: the paths neighbors would
       advertise never contain src (loop prevention). *)
    let dist = Array.make n (-1) in
    dist.(dst) <- 0;
    dist.(src) <- -2;
    let queue = Queue.create () in
    Queue.push dst queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun (h : Graph.half_link) ->
          if dist.(h.Graph.peer) = -1 then begin
            dist.(h.Graph.peer) <- dist.(u) + 1;
            Queue.push h.Graph.peer queue
          end)
        (Graph.adj g u)
    done;
    let descend m =
      if dist.(m) < 0 then None
      else begin
        let rec walk v acc =
          if v = dst then Some (List.rev (v :: acc))
          else begin
            let next = ref (-1) in
            Array.iter
              (fun (h : Graph.half_link) ->
                if !next < 0 && dist.(h.Graph.peer) = dist.(v) - 1 then
                  next := h.Graph.peer)
              (Graph.adj g v);
            if !next < 0 then None else walk !next (v :: acc)
          end
        in
        walk m []
      end
    in
    (* BGP multipath requires equal AS-path length: only neighbors on a
       shortest path towards dst are usable next hops (ECMP). *)
    let best =
      List.fold_left
        (fun acc m -> if dist.(m) >= 0 then min acc (dist.(m) + 1) else acc)
        max_int (Graph.neighbors g src)
    in
    let paths = ref [] in
    List.iter
      (fun m ->
        if m = dst && best = 1 then begin
          if not (List.mem [ src; dst ] !paths) then paths := [ src; dst ] :: !paths
        end
        else if m <> dst && dist.(m) >= 0 && dist.(m) + 1 = best then begin
          match descend m with
          | Some p when not (List.mem p !paths) -> paths := (src :: p) :: !paths
          | _ -> ()
        end)
      (Graph.neighbors g src);
    !paths
  end
