exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* --- writer ---------------------------------------------------------- *)

type writer = Buffer.t

let writer () = Buffer.create 4096

let contents = Buffer.contents

let w_u8 w v = Buffer.add_char w (Char.chr (v land 0xFF))

let w_i64 w v =
  for byte = 7 downto 0 do
    Buffer.add_char w
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (byte * 8)) land 0xFF))
  done

let w_int w v = w_i64 w (Int64.of_int v)

let w_f64 w v = w_i64 w (Int64.bits_of_float v)

let w_bool w v = w_u8 w (if v then 1 else 0)

let w_raw w s = Buffer.add_string w s

let w_str w s =
  w_int w (String.length s);
  Buffer.add_string w s

let w_list w f l =
  w_int w (List.length l);
  List.iter (f w) l

let w_arr w f a =
  w_int w (Array.length a);
  Array.iter (f w) a

let w_opt w f = function
  | None -> w_u8 w 0
  | Some v ->
      w_u8 w 1;
      f w v

(* --- reader ---------------------------------------------------------- *)

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let need r n =
  if r.pos + n > String.length r.data then
    corrupt "snapshot truncated at byte %d (need %d more)" r.pos n

let r_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_i64 r =
  need r 8;
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code r.data.[r.pos]));
    r.pos <- r.pos + 1
  done;
  !v

let r_int r =
  let v = r_i64 r in
  let i = Int64.to_int v in
  if Int64.of_int i <> v then corrupt "integer out of range: %Ld" v;
  i

let r_f64 r = Int64.float_of_bits (r_i64 r)

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> corrupt "bad bool tag %d" v

let r_len r what =
  let n = r_int r in
  if n < 0 || n > String.length r.data - r.pos then
    corrupt "implausible %s length %d" what n;
  n

let r_str r =
  let n = r_len r "string" in
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_list r f = List.init (r_len r "list") (fun _ -> f r)

let r_arr r f = Array.init (r_len r "array") (fun _ -> f r)

let r_opt r f =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | v -> corrupt "bad option tag %d" v

let r_end r =
  if r.pos <> String.length r.data then
    corrupt "trailing bytes: %d of %d consumed" r.pos (String.length r.data)

(* --- domain values --------------------------------------------------- *)

let w_rng w rng = w_i64 w (Rng.state rng)

let r_rng r = Rng.of_state (r_i64 r)

let w_pcb w p = w_str w (Pcb_codec.encode p)

let r_pcb r =
  match Pcb_codec.decode (r_str r) with
  | Ok p -> p
  | Error e -> corrupt "bad PCB: %s" e

let w_hop w (h : Segment.hop_field) =
  w_int w h.Segment.as_idx;
  w_int w h.Segment.ingress;
  w_int w h.Segment.egress;
  w_int w h.Segment.link_in;
  w_int w h.Segment.link_out;
  w_arr w w_int h.Segment.peers;
  w_f64 w h.Segment.expiry;
  w_str w h.Segment.mac

let r_hop r =
  let as_idx = r_int r in
  let ingress = r_int r in
  let egress = r_int r in
  let link_in = r_int r in
  let link_out = r_int r in
  let peers = r_arr r r_int in
  let expiry = r_f64 r in
  let mac = r_str r in
  { Segment.as_idx; ingress; egress; link_in; link_out; peers; expiry; mac }

let w_segment w (s : Segment.t) =
  w_u8 w
    (match s.Segment.kind with
    | Segment.Up -> 0
    | Segment.Down -> 1
    | Segment.Core_seg -> 2);
  w_int w s.Segment.origin;
  w_int w s.Segment.leaf;
  w_f64 w s.Segment.timestamp;
  w_f64 w s.Segment.expiry;
  w_arr w w_hop s.Segment.hops;
  w_arr w w_int s.Segment.links

let r_segment r =
  let kind =
    match r_u8 r with
    | 0 -> Segment.Up
    | 1 -> Segment.Down
    | 2 -> Segment.Core_seg
    | v -> corrupt "bad segment kind %d" v
  in
  let origin = r_int r in
  let leaf = r_int r in
  let timestamp = r_f64 r in
  let expiry = r_f64 r in
  let hops = r_arr r r_hop in
  let links = r_arr r r_int in
  { Segment.kind; origin; leaf; timestamp; expiry; hops; links }

let w_histogram w (d : Histogram.dump) =
  w_f64 w d.Histogram.d_growth;
  w_int w d.Histogram.d_count;
  w_f64 w d.Histogram.d_sum;
  w_f64 w d.Histogram.d_vmin;
  w_f64 w d.Histogram.d_vmax;
  w_int w d.Histogram.d_nonpos;
  w_list w
    (fun w (i, c) ->
      w_int w i;
      w_int w c)
    d.Histogram.d_buckets

let r_histogram r =
  let d_growth = r_f64 r in
  let d_count = r_int r in
  let d_sum = r_f64 r in
  let d_vmin = r_f64 r in
  let d_vmax = r_f64 r in
  let d_nonpos = r_int r in
  let d_buckets =
    r_list r (fun r ->
        let i = r_int r in
        let c = r_int r in
        (i, c))
  in
  { Histogram.d_growth; d_count; d_sum; d_vmin; d_vmax; d_nonpos; d_buckets }

let w_labels w (labels : Registry.labels) =
  w_list w
    (fun w (k, v) ->
      w_str w k;
      w_str w v)
    labels

let r_labels r =
  r_list r (fun r ->
      let k = r_str r in
      let v = r_str r in
      (k, v))

let w_registry w (d : Registry.dump) =
  w_list w
    (fun w (name, labels, m) ->
      w_str w name;
      w_labels w labels;
      match m with
      | Registry.D_counter v ->
          w_u8 w 0;
          w_f64 w v
      | Registry.D_gauge v ->
          w_u8 w 1;
          w_f64 w v
      | Registry.D_hist h ->
          w_u8 w 2;
          w_histogram w h)
    d

let r_registry r =
  r_list r (fun r ->
      let name = r_str r in
      let labels = r_labels r in
      let m =
        match r_u8 r with
        | 0 -> Registry.D_counter (r_f64 r)
        | 1 -> Registry.D_gauge (r_f64 r)
        | 2 -> Registry.D_hist (r_histogram r)
        | v -> corrupt "bad metric tag %d" v
      in
      (name, labels, m))

let w_beacon_store w (d : Beacon_store.dump) =
  w_int w d.Beacon_store.d_limit;
  w_list w
    (fun w (origin, last_modified, pcbs) ->
      w_int w origin;
      w_f64 w last_modified;
      w_list w w_pcb pcbs)
    d.Beacon_store.d_origins

let r_beacon_store r =
  let d_limit = r_int r in
  let d_origins =
    r_list r (fun r ->
        let origin = r_int r in
        let last_modified = r_f64 r in
        let pcbs = r_list r r_pcb in
        (origin, last_modified, pcbs))
  in
  { Beacon_store.d_limit; d_origins }

let w_ps_stats w (s : Path_server.stats) =
  w_int w s.Path_server.registrations;
  w_int w s.Path_server.registration_bytes;
  w_int w s.Path_server.lookups_down;
  w_int w s.Path_server.lookups_core;
  w_int w s.Path_server.reply_segments_down;
  w_int w s.Path_server.reply_segments_core;
  w_int w s.Path_server.revocations;
  w_int w s.Path_server.revoked_segments

let r_ps_stats r =
  let registrations = r_int r in
  let registration_bytes = r_int r in
  let lookups_down = r_int r in
  let lookups_core = r_int r in
  let reply_segments_down = r_int r in
  let reply_segments_core = r_int r in
  let revocations = r_int r in
  let revoked_segments = r_int r in
  {
    Path_server.registrations;
    registration_bytes;
    lookups_down;
    lookups_core;
    reply_segments_down;
    reply_segments_core;
    revocations;
    revoked_segments;
  }

let w_bucket_list w l =
  w_list w
    (fun w (idx, segs) ->
      w_int w idx;
      w_list w w_segment segs)
    l

let r_bucket_list r =
  r_list r (fun r ->
      let idx = r_int r in
      let segs = r_list r r_segment in
      (idx, segs))

let w_path_server w (d : Path_server.dump) =
  w_int w d.Path_server.d_per_leaf_limit;
  w_bucket_list w d.Path_server.d_down;
  w_bucket_list w d.Path_server.d_core;
  w_ps_stats w d.Path_server.d_stats

let r_path_server r =
  let d_per_leaf_limit = r_int r in
  let d_down = r_bucket_list r in
  let d_core = r_bucket_list r in
  let d_stats = r_ps_stats r in
  { Path_server.d_per_leaf_limit; d_down; d_core; d_stats }

let w_link_state w (d : Link_state.dump) =
  w_arr w w_int d.Link_state.d_holds;
  w_arr w w_f64 d.Link_state.d_since

let r_link_state r =
  let d_holds = r_arr r r_int in
  let d_since = r_arr r r_f64 in
  { Link_state.d_holds; d_since }

let w_beacon_stats w (s : Beaconing.stats) =
  w_arr w w_f64 s.Beaconing.bytes_on_iface;
  w_arr w w_int s.Beaconing.pcbs_on_iface;
  w_f64 w s.Beaconing.total_bytes;
  w_int w s.Beaconing.total_pcbs;
  w_int w s.Beaconing.crypto_failures;
  w_int w s.Beaconing.rounds

let r_beacon_stats r =
  let bytes_on_iface = r_arr r r_f64 in
  let pcbs_on_iface = r_arr r r_int in
  let total_bytes = r_f64 r in
  let total_pcbs = r_int r in
  let crypto_failures = r_int r in
  let rounds = r_int r in
  {
    Beaconing.bytes_on_iface;
    pcbs_on_iface;
    total_bytes;
    total_pcbs;
    crypto_failures;
    rounds;
  }

let w_pair w (a, b) =
  w_int w a;
  w_int w b

let r_pair r =
  let a = r_int r in
  let b = r_int r in
  (a, b)

let w_recovery w (d : Recovery.dump) =
  w_int w d.Recovery.d_events_down;
  w_int w d.Recovery.d_events_up;
  w_list w w_pair d.Recovery.d_affected;
  w_int w d.Recovery.d_failovers;
  w_int w d.Recovery.d_blackouts;
  w_int w d.Recovery.d_unrecovered;
  w_f64 w d.Recovery.d_blackout_time_s;
  w_arr w w_f64 d.Recovery.d_recovery;
  w_arr w w_f64 d.Recovery.d_blackout;
  w_list w
    (fun w (pair, since) ->
      w_pair w pair;
      w_f64 w since)
    d.Recovery.d_open;
  w_int w d.Recovery.d_revoked_segments;
  w_int w d.Recovery.d_revocation_msgs;
  w_f64 w d.Recovery.d_revocation_bytes;
  w_int w d.Recovery.d_dropped_pcbs

let r_recovery r =
  let d_events_down = r_int r in
  let d_events_up = r_int r in
  let d_affected = r_list r r_pair in
  let d_failovers = r_int r in
  let d_blackouts = r_int r in
  let d_unrecovered = r_int r in
  let d_blackout_time_s = r_f64 r in
  let d_recovery = r_arr r r_f64 in
  let d_blackout = r_arr r r_f64 in
  let d_open =
    r_list r (fun r ->
        let pair = r_pair r in
        let since = r_f64 r in
        (pair, since))
  in
  let d_revoked_segments = r_int r in
  let d_revocation_msgs = r_int r in
  let d_revocation_bytes = r_f64 r in
  let d_dropped_pcbs = r_int r in
  {
    Recovery.d_events_down;
    d_events_up;
    d_affected;
    d_failovers;
    d_blackouts;
    d_unrecovered;
    d_blackout_time_s;
    d_recovery;
    d_blackout;
    d_open;
    d_revoked_segments;
    d_revocation_msgs;
    d_revocation_bytes;
    d_dropped_pcbs;
  }
