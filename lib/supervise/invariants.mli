(** Cross-component consistency checks at checkpoint boundaries.

    Long-horizon runs only stay trustworthy if the state being
    checkpointed is itself coherent. These checks tie the fault
    subsystem, beacon stores and path servers together:

    - {e link-state}: hold counts are non-negative and exactly equal an
      independent replay of the consumed prefix ([events[0..cursor)])
      of the compiled fault plan;
    - {e store-links}: every valid stored PCB traverses only links that
      are currently up (revocation reacted to every failure) and only
      links that exist in the graph;
    - {e path-server}: no valid registered segment traverses a down
      link (registry ↔ revocation consistency), and stats counters are
      non-negative.

    Checks are pure reads — running them never perturbs the state (or
    the byte-identity of a checkpointed run). *)

type violation = { check : string; detail : string }

exception Violated of violation list

type ctx = {
  graph : Graph.t;
  now : float;  (** validity horizon for "valid PCB / segment" *)
  links : Link_state.t;
  stores : Beacon_store.t array;
  path_server : Path_server.t option;
  events : Fault_plan.event array;  (** the compiled fault plan *)
  cursor : int;  (** events consumed so far *)
}

val check_all : ctx -> violation list
(** Every violation found, in check order; [[]] means consistent. *)

val check_exn : ctx -> unit
(** Raise {!Violated} if {!check_all} finds anything. *)
