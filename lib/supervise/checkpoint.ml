let magic = "SCKP"

let frame ~schema ~version payload =
  let w = Snapshot.writer () in
  Snapshot.w_raw w magic;
  Snapshot.w_int w version;
  Snapshot.w_str w schema;
  Snapshot.w_str w payload;
  Snapshot.w_str w (Sha256.digest payload);
  Snapshot.contents w

let unframe ~schema ~version data =
  let n = String.length magic in
  if String.length data < n || String.sub data 0 n <> magic then
    raise (Snapshot.Corrupt "not a checkpoint file (bad magic)");
  let r = Snapshot.reader (String.sub data n (String.length data - n)) in
  let v = Snapshot.r_int r in
  if v <> version then
    raise
      (Snapshot.Corrupt (Printf.sprintf "checkpoint version %d, expected %d" v version));
  let s = Snapshot.r_str r in
  if s <> schema then
    raise
      (Snapshot.Corrupt (Printf.sprintf "checkpoint schema %S, expected %S" s schema));
  let payload = Snapshot.r_str r in
  let digest = Snapshot.r_str r in
  Snapshot.r_end r;
  if digest <> Sha256.digest payload then
    raise (Snapshot.Corrupt "checkpoint integrity hash mismatch");
  payload

let write_file path data =
  (* Atomic: a crash mid-write leaves the previous checkpoint intact. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc data;
  close_out oc;
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save ~dir ~name ~schema ~version payload =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir name in
  write_file path (frame ~schema ~version payload);
  path

let load ~dir ~name ~schema ~version =
  unframe ~schema ~version (read_file (Filename.concat dir name))

let numbered_name ~prefix ~n = Printf.sprintf "%s.%06d.ckpt" prefix n

let parse_numbered ~prefix file =
  let head = prefix ^ "." and tail = ".ckpt" in
  let hl = String.length head and tl = String.length tail in
  let fl = String.length file in
  if
    fl > hl + tl
    && String.sub file 0 hl = head
    && String.sub file (fl - tl) tl = tail
  then int_of_string_opt (String.sub file hl (fl - hl - tl))
  else None

let latest ~dir ~prefix =
  if not (Sys.file_exists dir && Sys.is_directory dir) then None
  else
    Array.fold_left
      (fun acc file ->
        match parse_numbered ~prefix file with
        | None -> acc
        | Some n -> (
            match acc with
            | Some (best, _) when best >= n -> acc
            | _ -> Some (n, file)))
      None (Sys.readdir dir)
