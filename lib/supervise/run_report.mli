(** Structured outcome of a supervised job batch.

    Where unsupervised {!Runner.map_jobs} aborts the whole batch by
    raising {!Runner.Job_failed}, a supervised run degrades gracefully:
    every job either succeeded or is recorded here as a {!failure}
    carrying everything needed to re-run it standalone — index, label,
    seed, attempt count and the final error. *)

type failure = {
  index : int;  (** input position of the job *)
  label : string;
  seed : int64 option;  (** per-job base seed, when seeded *)
  attempts : int;  (** attempts made (1 = no retry) *)
  error : string;  (** printed form of the last exception *)
  backtrace : string;  (** backtrace of the last attempt *)
}

type t = { jobs : int; failures : failure list }
(** [failures] is sorted by index. *)

val empty : jobs:int -> t

val make : jobs:int -> failure list -> t
(** Sorts the failures by index. *)

val ok : t -> bool

val n_failed : t -> int

val to_json : t -> Obs_json.t

val observe : Obs.t -> t -> unit
(** Export [supervise_{jobs,jobs_failed,retries}_total] counters; no-op
    on a disabled context. *)

val pp : Format.formatter -> t -> unit
