type config = {
  graph : Graph.t;
  beacon : Beaconing.config;
  plan : Fault_plan.t;
  pairs : (int * int) array;
  register_top : int;
  metric_labels : (string * string) list;
}

type pair_track = {
  mutable prev_keys : string list;
  mutable births : (string * int) list;
  mutable avail_rounds : int;
  mutable jaccard_sum : float;
  mutable jaccard_n : int;
}

type state = {
  mutable round : int;
  rng : Rng.t;
  stores : Beacon_store.t array;
  stats : Beaconing.stats;
  links : Link_state.t;
  mutable cursor : int;
  mutable link_failures : int;
  mutable link_repairs : int;
  mutable pcbs_dropped : int;
  mutable segments_revoked : int;
  ps : Path_server.t;
  tracks : pair_track array;
  metrics : Registry.t;
}

type t = {
  config : config;
  events : Fault_plan.event array;
  fwd_keys : Fwd_keys.t;
  state : state;
}

let lifetime_metric = "soak_path_lifetime_rounds"

let validate cfg =
  (match cfg.beacon.Beaconing.algorithm with
  | Beacon_policy.Baseline -> ()
  | _ -> invalid_arg "Soak.create: only the Baseline algorithm is checkpointable");
  if cfg.register_top < 0 then invalid_arg "Soak.create: register_top < 0";
  let n = Graph.n cfg.graph in
  Array.iter
    (fun (s, d) ->
      if s < 0 || s >= n || d < 0 || d >= n || s = d then
        invalid_arg "Soak.create: invalid tracked pair")
    cfg.pairs

let fresh_track () =
  {
    prev_keys = [];
    births = [];
    avail_rounds = 0;
    jaccard_sum = 0.0;
    jaccard_n = 0;
  }

let create cfg =
  validate cfg;
  let eng = Beaconing.engine cfg.graph cfg.beacon in
  let metrics = Registry.create () in
  (* Eagerly create the lifetime histogram so reading a report never
     changes the registry (and thus never perturbs a re-saved
     snapshot). *)
  ignore (Registry.histogram metrics ~labels:cfg.metric_labels lifetime_metric);
  let state =
    {
      round = 0;
      rng = Rng.create cfg.plan.Fault_plan.seed;
      stores = Beaconing.engine_stores eng;
      stats = Beaconing.engine_stats eng;
      links = Link_state.create ~n_links:(Graph.num_links cfg.graph);
      cursor = 0;
      link_failures = 0;
      link_repairs = 0;
      pcbs_dropped = 0;
      segments_revoked = 0;
      ps = Path_server.create ~per_leaf_limit:cfg.beacon.Beaconing.storage_limit ();
      tracks = Array.map (fun _ -> fresh_track ()) cfg.pairs;
      metrics;
    }
  in
  {
    config = cfg;
    events = Fault_plan.compile ~graph:cfg.graph cfg.plan;
    fwd_keys = Fwd_keys.create ();
    state;
  }

let round t = t.state.round

let rounds_total t = t.state.stats.Beaconing.rounds

let registry t = t.state.metrics

(* --- sorted-key-set helpers ----------------------------------------- *)

let rec inter_union a b ~inter ~union =
  match (a, b) with
  | [], rest | rest, [] -> (inter, union + List.length rest)
  | x :: xs, y :: ys ->
      let c = compare x y in
      if c = 0 then inter_union xs ys ~inter:(inter + 1) ~union:(union + 1)
      else if c < 0 then inter_union xs (y :: ys) ~inter ~union:(union + 1)
      else inter_union (x :: xs) ys ~inter ~union:(union + 1)

let jaccard a b =
  match (a, b) with
  | [], [] -> 1.0
  | _ ->
      let inter, union = inter_union a b ~inter:0 ~union:0 in
      float_of_int inter /. float_of_int union

(* --- one round barrier ----------------------------------------------- *)

let barrier t ~round:r ~now =
  let st = t.state in
  let cfg = t.config in
  let lifetime_h =
    Registry.histogram st.metrics ~labels:cfg.metric_labels lifetime_metric
  in
  Array.iteri
    (fun i (s, o) ->
      let tr = st.tracks.(i) in
      let paths = Beacon_store.paths st.stores.(s) ~now ~origin:o in
      (* Keep the path server stocked with the pair's current best
         segments, so revocation consistency is observable. *)
      let rec register k = function
        | [] -> ()
        | (p : Pcb.t) :: rest ->
            if k > 0 && Array.length p.Pcb.hops > 0 then begin
              let seg =
                Segment.terminate cfg.graph t.fwd_keys ~kind:Segment.Core_seg
                  ~holder:s p
              in
              ignore (Path_server.register_core st.ps ~now seg);
              register (k - 1) rest
            end
      in
      register cfg.register_top paths;
      let keys =
        List.sort_uniq compare (List.map (fun (p : Pcb.t) -> p.Pcb.key) paths)
      in
      if keys <> [] then tr.avail_rounds <- tr.avail_rounds + 1;
      if r > 0 then begin
        tr.jaccard_sum <- tr.jaccard_sum +. jaccard tr.prev_keys keys;
        tr.jaccard_n <- tr.jaccard_n + 1
      end;
      (* Births for new keys, completed lifetimes for vanished ones. *)
      let surviving, died =
        List.partition (fun (k, _) -> List.mem k keys) tr.births
      in
      List.iter
        (fun (_, birth) ->
          Histogram.observe lifetime_h (float_of_int (r - birth)))
        died;
      let fresh =
        List.filter
          (fun k -> not (List.exists (fun (k', _) -> k' = k) surviving))
          keys
      in
      tr.births <-
        List.sort compare (surviving @ List.map (fun k -> (k, r)) fresh);
      tr.prev_keys <- keys)
    cfg.pairs;
  (* One random path-server probe per round: exercises lookup stats and
     keeps the trial RNG live across checkpoints. *)
  if Array.length cfg.pairs > 0 then begin
    let _, o = cfg.pairs.(Rng.int st.rng (Array.length cfg.pairs)) in
    ignore (Path_server.lookup_core st.ps ~now ~remote:o)
  end

let advance ?watchdog t ~upto =
  let st = t.state in
  let cfg = t.config in
  let interval = cfg.beacon.Beaconing.interval in
  let upto = min upto (rounds_total t) in
  if st.round < upto then begin
    let eng =
      Beaconing.engine
        ~link_up:(fun ~now:_ l -> Link_state.up st.links l)
        ~stores:st.stores ~stats:st.stats cfg.graph cfg.beacon
    in
    let des = Des.create () in
    (* Restore the virtual clock to the horizon the consumed events
       already covered, then install only the unconsumed suffix. *)
    if st.round > 0 then
      Des.run ~until:(float_of_int (st.round - 1) *. interval) des;
    let on_down ~now:_ ~link =
      st.link_failures <- st.link_failures + 1;
      st.pcbs_dropped <-
        st.pcbs_dropped
        + Array.fold_left
            (fun acc s -> acc + Beacon_store.drop_link s ~link)
            0 st.stores;
      st.segments_revoked <-
        st.segments_revoked + Path_server.revoke_link st.ps ~link
    in
    let on_up ~now:_ ~link:_ = st.link_repairs <- st.link_repairs + 1 in
    let remaining =
      Array.sub t.events st.cursor (Array.length t.events - st.cursor)
    in
    ignore
      (Fault_driver.install
         ~on_event:(fun () -> st.cursor <- st.cursor + 1)
         ~des ~state:st.links ~on_down ~on_up remaining);
    for r = st.round to upto - 1 do
      let now = float_of_int r *. interval in
      Des.run ~until:now des;
      Beaconing.engine_round eng ~round:r;
      barrier t ~round:r ~now;
      st.round <- r + 1;
      (* Check the deadline only at round boundaries: a timed-out job
         is abandoned with consistent state (and retries replay from
         the last snapshot, so partial progress cannot leak). *)
      match watchdog with Some w -> Watchdog.check w | None -> ()
    done
  end

let invariant_ctx t =
  let st = t.state in
  {
    Invariants.graph = t.config.graph;
    now =
      (if st.round = 0 then 0.0
       else float_of_int (st.round - 1) *. t.config.beacon.Beaconing.interval);
    links = st.links;
    stores = st.stores;
    path_server = Some st.ps;
    events = t.events;
    cursor = st.cursor;
  }

(* --- snapshot --------------------------------------------------------- *)

let encode t =
  let st = t.state in
  let w = Snapshot.writer () in
  Snapshot.w_int w st.round;
  Snapshot.w_rng w st.rng;
  Snapshot.w_int w st.cursor;
  Snapshot.w_int w st.link_failures;
  Snapshot.w_int w st.link_repairs;
  Snapshot.w_int w st.pcbs_dropped;
  Snapshot.w_int w st.segments_revoked;
  Snapshot.w_arr w
    (fun w s -> Snapshot.w_beacon_store w (Beacon_store.dump s))
    st.stores;
  Snapshot.w_beacon_stats w st.stats;
  Snapshot.w_link_state w (Link_state.dump st.links);
  Snapshot.w_path_server w (Path_server.dump st.ps);
  Snapshot.w_arr w
    (fun w tr ->
      Snapshot.w_list w Snapshot.w_str tr.prev_keys;
      Snapshot.w_list w
        (fun w (k, b) ->
          Snapshot.w_str w k;
          Snapshot.w_int w b)
        tr.births;
      Snapshot.w_int w tr.avail_rounds;
      Snapshot.w_f64 w tr.jaccard_sum;
      Snapshot.w_int w tr.jaccard_n)
    st.tracks;
  Snapshot.w_registry w (Registry.dump st.metrics);
  Snapshot.contents w

let restore cfg data =
  validate cfg;
  let r = Snapshot.reader data in
  let round = Snapshot.r_int r in
  let rng = Snapshot.r_rng r in
  let cursor = Snapshot.r_int r in
  let link_failures = Snapshot.r_int r in
  let link_repairs = Snapshot.r_int r in
  let pcbs_dropped = Snapshot.r_int r in
  let segments_revoked = Snapshot.r_int r in
  let stores =
    Snapshot.r_arr r (fun r -> Beacon_store.of_dump (Snapshot.r_beacon_store r))
  in
  let stats = Snapshot.r_beacon_stats r in
  let links = Link_state.of_dump (Snapshot.r_link_state r) in
  let ps = Path_server.of_dump (Snapshot.r_path_server r) in
  let tracks =
    Snapshot.r_arr r (fun r ->
        let prev_keys = Snapshot.r_list r Snapshot.r_str in
        let births =
          Snapshot.r_list r (fun r ->
              let k = Snapshot.r_str r in
              let b = Snapshot.r_int r in
              (k, b))
        in
        let avail_rounds = Snapshot.r_int r in
        let jaccard_sum = Snapshot.r_f64 r in
        let jaccard_n = Snapshot.r_int r in
        { prev_keys; births; avail_rounds; jaccard_sum; jaccard_n })
  in
  let metrics = Registry.of_dump (Snapshot.r_registry r) in
  Snapshot.r_end r;
  let events = Fault_plan.compile ~graph:cfg.graph cfg.plan in
  if Array.length stores <> Graph.n cfg.graph then
    raise (Snapshot.Corrupt "soak snapshot: store count / graph mismatch");
  if Link_state.n_links links <> Graph.num_links cfg.graph then
    raise (Snapshot.Corrupt "soak snapshot: link count / graph mismatch");
  if Array.length tracks <> Array.length cfg.pairs then
    raise (Snapshot.Corrupt "soak snapshot: tracked pair count mismatch");
  if cursor < 0 || cursor > Array.length events then
    raise (Snapshot.Corrupt "soak snapshot: fault cursor out of range");
  {
    config = cfg;
    events;
    fwd_keys = Fwd_keys.create ();
    state =
      {
        round;
        rng;
        stores;
        stats;
        links;
        cursor;
        link_failures;
        link_repairs;
        pcbs_dropped;
        segments_revoked;
        ps;
        tracks;
        metrics;
      };
  }

let config_key cfg =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "graph:%d/%d;" (Graph.n cfg.graph) (Graph.num_links cfg.graph);
  for l = 0 to Graph.num_links cfg.graph - 1 do
    let lk = Graph.link cfg.graph l in
    add "%d-%d;" lk.Graph.a lk.Graph.b
  done;
  let bc = cfg.beacon in
  add "beacon:%s/%g/%g/%d/%d/%d/%g/%b;"
    (match bc.Beaconing.scope with
    | Beaconing.Core_beaconing -> "core"
    | Beaconing.Intra_isd -> "intra")
    bc.Beaconing.interval bc.Beaconing.lifetime bc.Beaconing.dissemination_limit
    bc.Beaconing.storage_limit bc.Beaconing.signature_bytes
    bc.Beaconing.duration bc.Beaconing.verify_crypto;
  add "plan:%Ld;" cfg.plan.Fault_plan.seed;
  Array.iter
    (fun (e : Fault_plan.event) ->
      add "%h/%d/%s;" e.Fault_plan.time e.Fault_plan.link
        (match e.Fault_plan.action with Fault_plan.Down -> "d" | Fault_plan.Up -> "u"))
    (Fault_plan.compile ~graph:cfg.graph cfg.plan);
  Array.iter (fun (s, d) -> add "p%d-%d;" s d) cfg.pairs;
  add "top:%d" cfg.register_top;
  Sha256.hex (Sha256.digest (Buffer.contents b))

(* --- report ----------------------------------------------------------- *)

type pair_report = {
  src : int;
  dst : int;
  availability : float;
  jaccard_mean : float;
}

type report = {
  rounds_done : int;
  pair_reports : pair_report array;
  availability_mean : float;
  availability_min : float;
  jaccard_overall : float;
  lifetimes : Histogram.summary;
  survivors : int;
  link_failures : int;
  link_repairs : int;
  pcbs_dropped : int;
  segments_revoked : int;
  ps_stats : Path_server.stats;
  total_pcbs : int;
  total_bytes : float;
}

let report t =
  let st = t.state in
  let rounds_done = st.round in
  let pair_reports =
    Array.mapi
      (fun i (src, dst) ->
        let tr = st.tracks.(i) in
        {
          src;
          dst;
          availability =
            (if rounds_done = 0 then 0.0
             else float_of_int tr.avail_rounds /. float_of_int rounds_done);
          jaccard_mean =
            (if tr.jaccard_n = 0 then 1.0
             else tr.jaccard_sum /. float_of_int tr.jaccard_n);
        })
      t.config.pairs
  in
  let mean f =
    if Array.length pair_reports = 0 then 0.0
    else
      Array.fold_left (fun acc p -> acc +. f p) 0.0 pair_reports
      /. float_of_int (Array.length pair_reports)
  in
  let availability_min =
    Array.fold_left (fun acc p -> Float.min acc p.availability) 1.0 pair_reports
  in
  let lifetimes =
    Histogram.summarize
      (Registry.histogram st.metrics ~labels:t.config.metric_labels
         lifetime_metric)
  in
  let survivors =
    Array.fold_left (fun acc tr -> acc + List.length tr.births) 0 st.tracks
  in
  {
    rounds_done;
    pair_reports;
    availability_mean = mean (fun p -> p.availability);
    availability_min;
    jaccard_overall = mean (fun p -> p.jaccard_mean);
    lifetimes;
    survivors;
    link_failures = st.link_failures;
    link_repairs = st.link_repairs;
    pcbs_dropped = st.pcbs_dropped;
    segments_revoked = st.segments_revoked;
    ps_stats = Path_server.stats st.ps;
    total_pcbs = st.stats.Beaconing.total_pcbs;
    total_bytes = st.stats.Beaconing.total_bytes;
  }
