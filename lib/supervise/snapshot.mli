(** Deterministic binary snapshot codec.

    A minimal big-endian writer/reader pair plus codecs for every
    checkpointable simulator component. All component codecs consume
    the {e canonical} dump forms ({!Beacon_store.dump},
    {!Path_server.dump}, {!Registry.dump}, …), which are sorted and
    hash-table-layout-independent — so encoding the same logical state
    always yields the same bytes, and [encode (decode bytes) = bytes].
    Floats are serialized as their IEEE-754 bit patterns, making the
    round-trip exact (including infinities and [nan]).

    The codec is total on reads: malformed input raises {!Corrupt},
    never an out-of-bounds access or a silently wrong value. *)

exception Corrupt of string

(** {1 Writer} *)

type writer

val writer : unit -> writer

val contents : writer -> string

val w_u8 : writer -> int -> unit

val w_int : writer -> int -> unit
(** 8-byte big-endian (int63-safe). *)

val w_i64 : writer -> int64 -> unit

val w_f64 : writer -> float -> unit
(** IEEE-754 bit pattern; exact round-trip. *)

val w_bool : writer -> bool -> unit

val w_str : writer -> string -> unit

val w_raw : writer -> string -> unit
(** Append bytes with no length prefix (framing headers). *)

val w_list : writer -> (writer -> 'a -> unit) -> 'a list -> unit

val w_arr : writer -> (writer -> 'a -> unit) -> 'a array -> unit

val w_opt : writer -> (writer -> 'a -> unit) -> 'a option -> unit

(** {1 Reader} *)

type reader

val reader : string -> reader

val r_u8 : reader -> int

val r_int : reader -> int

val r_i64 : reader -> int64

val r_f64 : reader -> float

val r_bool : reader -> bool

val r_str : reader -> string

val r_list : reader -> (reader -> 'a) -> 'a list

val r_arr : reader -> (reader -> 'a) -> 'a array

val r_opt : reader -> (reader -> 'a) -> 'a option

val r_end : reader -> unit
(** Raises {!Corrupt} unless the input is fully consumed. *)

(** {1 Component codecs} *)

val w_rng : writer -> Rng.t -> unit

val r_rng : reader -> Rng.t

val w_pcb : writer -> Pcb.t -> unit
(** Via {!Pcb_codec}; the decoded PCB rebuilds its derived key. *)

val r_pcb : reader -> Pcb.t

val w_segment : writer -> Segment.t -> unit

val r_segment : reader -> Segment.t

val w_histogram : writer -> Histogram.dump -> unit

val r_histogram : reader -> Histogram.dump

val w_registry : writer -> Registry.dump -> unit

val r_registry : reader -> Registry.dump

val w_beacon_store : writer -> Beacon_store.dump -> unit

val r_beacon_store : reader -> Beacon_store.dump

val w_path_server : writer -> Path_server.dump -> unit

val r_path_server : reader -> Path_server.dump

val w_link_state : writer -> Link_state.dump -> unit

val r_link_state : reader -> Link_state.dump

val w_beacon_stats : writer -> Beaconing.stats -> unit

val r_beacon_stats : reader -> Beaconing.stats

val w_recovery : writer -> Recovery.dump -> unit

val r_recovery : reader -> Recovery.dump
