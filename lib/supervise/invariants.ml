type violation = { check : string; detail : string }

exception Violated of violation list

let () =
  Printexc.register_printer (function
    | Violated vs ->
        Some
          (Printf.sprintf "Invariants.Violated(%s)"
             (String.concat "; "
                (List.map (fun v -> v.check ^ ": " ^ v.detail) vs)))
    | _ -> None)

type ctx = {
  graph : Graph.t;
  now : float;
  links : Link_state.t;
  stores : Beacon_store.t array;
  path_server : Path_server.t option;
  events : Fault_plan.event array;
  cursor : int;
}

let violation check fmt = Printf.ksprintf (fun detail -> { check; detail }) fmt

let check_link_state ctx =
  let n = Graph.num_links ctx.graph in
  let vs = ref [] in
  if Link_state.n_links ctx.links <> n then
    vs :=
      violation "link-state" "tracks %d links, graph has %d"
        (Link_state.n_links ctx.links) n
      :: !vs
  else begin
    for l = 0 to n - 1 do
      if Link_state.holds ctx.links l < 0 then
        vs :=
          violation "link-state" "negative hold count %d on link %d"
            (Link_state.holds ctx.links l) l
          :: !vs
    done;
    (* The refcounts must equal an independent replay of the consumed
       prefix of the fault plan. *)
    if ctx.cursor < 0 || ctx.cursor > Array.length ctx.events then
      vs :=
        violation "fault-cursor" "cursor %d outside [0, %d]" ctx.cursor
          (Array.length ctx.events)
        :: !vs
    else begin
      let replay = Link_state.create ~n_links:n in
      for i = 0 to ctx.cursor - 1 do
        let e = ctx.events.(i) in
        ignore
          (Link_state.apply replay ~now:e.Fault_plan.time ~link:e.Fault_plan.link
             ~action:e.Fault_plan.action)
      done;
      for l = 0 to n - 1 do
        if Link_state.holds ctx.links l <> Link_state.holds replay l then
          vs :=
            violation "link-state" "link %d holds %d, replay of %d events gives %d"
              l
              (Link_state.holds ctx.links l)
              ctx.cursor (Link_state.holds replay l)
            :: !vs
      done
    end
  end;
  !vs

let check_stores ctx =
  let num_links = Graph.num_links ctx.graph in
  let vs = ref [] in
  Array.iteri
    (fun holder store ->
      List.iter
        (fun (p : Pcb.t) ->
          Array.iter
            (fun l ->
              if l < 0 || l >= num_links then
                vs :=
                  violation "store-links" "AS %d stores PCB over unknown link %d"
                    holder l
                  :: !vs
              else if not (Link_state.up ctx.links l) then
                vs :=
                  violation "store-links"
                    "AS %d stores a valid PCB over down link %d (origin %d)"
                    holder l p.Pcb.origin
                  :: !vs)
            p.Pcb.links)
        (Beacon_store.all_paths store ~now:ctx.now))
    ctx.stores;
  !vs

let check_path_server ctx =
  match ctx.path_server with
  | None -> []
  | Some ps ->
      let vs = ref [] in
      let d = Path_server.dump ps in
      let scan kind entries =
        List.iter
          (fun (idx, segs) ->
            List.iter
              (fun (s : Segment.t) ->
                if Segment.is_valid s ~now:ctx.now then
                  Array.iter
                    (fun l ->
                      if not (Link_state.up ctx.links l) then
                        vs :=
                          violation "path-server"
                            "%s bucket %d holds an unrevoked segment over down \
                             link %d"
                            kind idx l
                          :: !vs)
                    s.Segment.links)
              segs)
          entries
      in
      scan "down" d.Path_server.d_down;
      scan "core" d.Path_server.d_core;
      let st = d.Path_server.d_stats in
      if
        st.Path_server.registrations < 0
        || st.Path_server.revoked_segments < 0
        || st.Path_server.lookups_down < 0
        || st.Path_server.lookups_core < 0
      then vs := violation "path-server" "negative stats counter" :: !vs;
      !vs

let check_all ctx =
  check_link_state ctx @ check_stores ctx @ check_path_server ctx

let check_exn ctx =
  match check_all ctx with [] -> () | vs -> raise (Violated vs)
