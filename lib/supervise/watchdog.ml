exception Timeout of { label : string; budget_s : float; elapsed_s : float }

let () =
  Printexc.register_printer (function
    | Timeout { label; budget_s; elapsed_s } ->
        Some
          (Printf.sprintf "Watchdog.Timeout(%s: %.1f s elapsed, budget %.1f s)"
             label elapsed_s budget_s)
    | _ -> None)

type t = {
  label : string;
  budget_s : float option;
  started : float;
  now : unit -> float;
}

let start ?(now = Unix.gettimeofday) ?(label = "job") budget_s =
  (match budget_s with
  | Some b when not (b > 0.0) ->
      invalid_arg "Watchdog.start: budget must be positive"
  | _ -> ());
  { label; budget_s; started = now (); now }

let elapsed t = t.now () -. t.started

let expired t =
  match t.budget_s with None -> false | Some b -> elapsed t > b

let check t =
  match t.budget_s with
  | None -> ()
  | Some b ->
      let e = elapsed t in
      if e > b then raise (Timeout { label = t.label; budget_s = b; elapsed_s = e })
