(** Versioned, integrity-checked checkpoint files.

    A checkpoint is a framed {!Snapshot} payload:

    {v magic "SCKP" | version | schema tag | payload | SHA-256(payload) v}

    {!load} verifies all four layers — magic, version, schema and hash
    — and raises {!Snapshot.Corrupt} on any mismatch, so a truncated,
    bit-rotted or foreign file can never resume a run with silently
    wrong state. The schema tag should bind the checkpoint to its
    configuration (e.g. include a config fingerprint), making resume
    with different flags an error instead of undefined behaviour.

    Writes are atomic (temp file + rename): a crash mid-save leaves
    the previous checkpoint readable. *)

val save :
  dir:string -> name:string -> schema:string -> version:int -> string -> string
(** [save ~dir ~name ~schema ~version payload] writes
    [dir/name] (creating [dir] if missing) and returns the path. *)

val load : dir:string -> name:string -> schema:string -> version:int -> string
(** Read back a payload. Raises {!Snapshot.Corrupt} on a malformed or
    mismatching frame, [Sys_error] if the file does not exist. *)

val numbered_name : prefix:string -> n:int -> string
(** [prefix.%06d.ckpt] — the naming convention for checkpoint series. *)

val latest : dir:string -> prefix:string -> (int * string) option
(** Highest-numbered checkpoint of a series: [(n, filename)]. [None]
    if the directory does not exist or holds no matching file. *)
