(** Run supervision: crash isolation, retries, graceful degradation.

    {!map} is the supervised mode of {!Runner.map_jobs}: each job runs
    under a {!Watchdog} deadline and is retried up to [policy.retries]
    times on any exception (including {!Watchdog.Timeout}), with
    deterministic per-attempt seeds derived from the same SplitMix64
    partitioning as {!Runner.job_seed} — so a retried batch is exactly
    reproducible from [(base_seed, index, attempt)]. A job that
    exhausts its retries does {e not} abort the pool: the surviving
    jobs complete and the failure is reported as data in a
    {!Run_report}.

    The other half of supervision — deterministic checkpoint/resume —
    lives in {!Snapshot}, {!Checkpoint} and {!Soak}; {!cli} carries the
    flags both halves share. *)

type policy = {
  retries : int;  (** additional attempts after the first (default 1) *)
  watchdog_s : float option;  (** per-attempt wall-clock budget *)
}

val default_policy : policy

exception Killed of { checkpoints : int }
(** Raised by a checkpointing scenario when its [kill_after] budget is
    reached: a deterministic stand-in for SIGKILL at a checkpoint
    boundary, used by the resume tests and CI. The driver maps it to
    exit code 3 without printing results. *)

type cli = {
  checkpoint_every : int;  (** rounds between checkpoints; 0 = off *)
  checkpoint_dir : string option;
  resume : bool;  (** continue from the latest checkpoint *)
  kill_after : int option;  (** abort after N checkpoint writes *)
  max_failures : int;  (** tolerated failed jobs before nonzero exit *)
  retries : int;
  watchdog_s : float option;
  inject_fail : int option;  (** force the job at this index to raise *)
}
(** The supervision-related command-line surface, shared by every
    scenario through {!Scenario.cli}. *)

val default_cli : cli
(** Checkpointing off, one retry, no watchdog, no injection. *)

val policy_of_cli : cli -> policy

val attempt_seed : base_seed:int64 -> index:int -> attempt:int -> int64
(** Seed of attempt [attempt] of job [index]: attempt 0 uses
    [Runner.job_seed base_seed index]; attempt [k > 0] re-derives with
    [Runner.job_seed (job_seed base_seed index) k]. Deterministic and
    collision-free across (index, attempt) pairs. *)

val map :
  ?obs:Obs.t ->
  ?pool:Runner.t ->
  ?policy:policy ->
  ?label_of:(int -> string) ->
  jobs:int ->
  base_seed:int64 ->
  (obs:Obs.t -> seed:int64 -> watchdog:Watchdog.t -> 'a -> 'b) ->
  'a array ->
  ('b, Run_report.failure) result array * Run_report.t
(** Supervised parallel map. Jobs receive their attempt seed and a
    running watchdog (which they should {!Watchdog.check} at safe
    points). Results come back in input order; a failed job yields
    [Error failure] in its slot instead of poisoning the batch. When
    [obs] is given, per-job contexts are forked and merged exactly as
    {!Runner.map_jobs_obs} and the report is {!Run_report.observe}d.

    Determinism: results are independent of [jobs] (given a
    deterministic [f]); watchdog timeouts are the only wall-clock
    dependent outcomes and surface only in the report, never as
    corrupted results. *)
