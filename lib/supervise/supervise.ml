type policy = { retries : int; watchdog_s : float option }

let default_policy = { retries = 1; watchdog_s = None }

exception Killed of { checkpoints : int }

let () =
  Printexc.register_printer (function
    | Killed { checkpoints } ->
        Some
          (Printf.sprintf
             "Supervise.Killed(after %d checkpoint%s, as requested by --kill-after)"
             checkpoints
             (if checkpoints = 1 then "" else "s"))
    | _ -> None)

type cli = {
  checkpoint_every : int;
  checkpoint_dir : string option;
  resume : bool;
  kill_after : int option;
  max_failures : int;
  retries : int;
  watchdog_s : float option;
  inject_fail : int option;
}

let default_cli =
  {
    checkpoint_every = 0;
    checkpoint_dir = None;
    resume = false;
    kill_after = None;
    max_failures = 0;
    retries = 1;
    watchdog_s = None;
    inject_fail = None;
  }

let policy_of_cli c = { retries = c.retries; watchdog_s = c.watchdog_s }

let attempt_seed ~base_seed ~index ~attempt =
  let s0 = Runner.job_seed base_seed index in
  if attempt = 0 then s0 else Runner.job_seed s0 attempt

let map ?obs ?pool ?(policy = default_policy) ?label_of ~jobs ~base_seed f arr =
  let retries = max 0 policy.retries in
  let label i = match label_of with Some f -> f i | None -> string_of_int i in
  (* The wrapper returns a [result] instead of raising, so a crashing
     or timed-out job can never abort the pool: surviving jobs always
     complete and the failures come back as data. *)
  let supervised ~obs (i, x) =
    let rec attempt k =
      let seed = attempt_seed ~base_seed ~index:i ~attempt:k in
      let watchdog = Watchdog.start ~label:(label i) policy.watchdog_s in
      match f ~obs ~seed ~watchdog x with
      | v -> Ok v
      | exception exn ->
          if k < retries then attempt (k + 1)
          else
            Error
              {
                Run_report.index = i;
                label = label i;
                seed = Some (Runner.job_seed base_seed i);
                attempts = k + 1;
                error = Printexc.to_string exn;
                backtrace = Printexc.get_backtrace ();
              }
    in
    attempt 0
  in
  let results =
    Runner.map_jobs_obs ?obs ?pool ~base_seed ?label_of ~jobs supervised
      (Array.mapi (fun i x -> (i, x)) arr)
  in
  let failures =
    Array.to_list results
    |> List.filter_map (function Ok _ -> None | Error f -> Some f)
  in
  let report = Run_report.make ~jobs:(Array.length arr) failures in
  (match obs with Some obs -> Run_report.observe obs report | None -> ());
  (results, report)
