type failure = {
  index : int;
  label : string;
  seed : int64 option;
  attempts : int;
  error : string;
  backtrace : string;
}

type t = { jobs : int; failures : failure list }

let empty ~jobs = { jobs; failures = [] }

let make ~jobs failures =
  {
    jobs;
    failures = List.sort (fun a b -> compare a.index b.index) failures;
  }

let n_failed t = List.length t.failures

let ok t = t.failures = []

let failure_to_json f =
  let base =
    [
      ("index", Obs_json.Int f.index);
      ("label", Obs_json.String f.label);
      ("attempts", Obs_json.Int f.attempts);
      ("error", Obs_json.String f.error);
    ]
  in
  let seed =
    match f.seed with
    | None -> []
    | Some s -> [ ("seed", Obs_json.String (Int64.to_string s)) ]
  in
  Obs_json.Obj (base @ seed)

let to_json t =
  Obs_json.Obj
    [
      ("jobs", Obs_json.Int t.jobs);
      ("failed", Obs_json.Int (n_failed t));
      ("failures", Obs_json.List (List.map failure_to_json t.failures));
    ]

let observe obs t =
  if Obs.on obs then begin
    let reg = Obs.registry obs in
    Registry.add reg "supervise_jobs_total" (float_of_int t.jobs);
    Registry.add reg "supervise_jobs_failed_total" (float_of_int (n_failed t));
    let retries =
      List.fold_left (fun acc f -> acc + (f.attempts - 1)) 0 t.failures
    in
    Registry.add reg "supervise_retries_total" (float_of_int retries)
  end

let pp ppf t =
  if ok t then Format.fprintf ppf "all %d jobs succeeded" t.jobs
  else begin
    Format.fprintf ppf "%d of %d jobs failed:" (n_failed t) t.jobs;
    List.iter
      (fun f ->
        Format.fprintf ppf "@\n  job %d (%s)%s: %s after %d attempt%s" f.index
          f.label
          (match f.seed with
          | None -> ""
          | Some s -> Printf.sprintf " seed %Ld" s)
          f.error f.attempts
          (if f.attempts = 1 then "" else "s"))
      t.failures
  end
