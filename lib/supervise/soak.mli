(** Checkpointable long-horizon beaconing soak under a fault plan.

    One soak {e trial} runs the stepwise {!Beaconing.engine} for its
    full configured duration while a compiled {!Fault_plan} flaps links
    underneath it, and tracks path dynamics for a set of (source,
    origin) AS pairs at every round barrier:

    - {e path lifetimes}: rounds between a path key appearing in the
      source's beacon store and vanishing from it;
    - {e path-set stability}: Jaccard similarity of consecutive rounds'
      path-key sets;
    - {e availability}: fraction of rounds with at least one valid
      path.

    The whole trial state — round counter, RNG, beacon stores, byte
    accounting, link refcounts, fault cursor, path server, per-pair
    tracks and the private metrics registry — round-trips through
    {!encode}/{!restore}, and a restored trial continues {e
    byte-identically}: advancing a trial to round [r] in one go or in
    any sequence of [advance]/[encode]/[restore] chunks yields the same
    {!encode} bytes and the same {!report}. Only the [Baseline]
    beaconing algorithm is supported (see {!Beaconing.engine}). *)

type config = {
  graph : Graph.t;
  beacon : Beaconing.config;  (** must use the [Baseline] algorithm *)
  plan : Fault_plan.t;
  pairs : (int * int) array;  (** tracked (source AS, origin AS) pairs *)
  register_top : int;
      (** best segments per pair re-registered with the path server at
          every barrier (keeps registry ↔ revocation consistency
          observable) *)
  metric_labels : (string * string) list;
      (** labels applied to the trial's metrics (e.g. the cell id) *)
}

type t

val create : config -> t
(** Fresh trial at round 0. Raises [Invalid_argument] on a
    non-[Baseline] algorithm, an invalid pair, or a config
    {!Beaconing.engine} rejects. *)

val round : t -> int
(** Next round to execute (= rounds completed). *)

val rounds_total : t -> int

val advance : ?watchdog:Watchdog.t -> t -> upto:int -> unit
(** Execute rounds [round t .. upto - 1] (clamped to
    {!rounds_total}). The [watchdog] is checked at every round
    boundary, where state is consistent. *)

val registry : t -> Registry.t
(** The trial-private metrics registry (path-lifetime histogram);
    serialized with the trial, mergeable into an observability context
    by the caller. *)

val invariant_ctx : t -> Invariants.ctx
(** The trial's state packaged for {!Invariants.check_all}. *)

(** {1 Snapshots} *)

val encode : t -> string
(** Canonical bytes of the full trial state. Equal logical states
    encode equally; [encode (restore cfg (encode t)) = encode t]. *)

val restore : config -> string -> t
(** Rebuild a trial from {!encode} output. Raises {!Snapshot.Corrupt}
    on malformed bytes or a snapshot inconsistent with [config]
    (wrong store / link / pair counts). *)

val config_key : config -> string
(** Hex digest fingerprinting everything that determines a trial's
    evolution (graph links, beaconing parameters, compiled fault
    events, tracked pairs). Embedded in checkpoint schemas so a resume
    against a different configuration is rejected up front. *)

(** {1 Reports} *)

type pair_report = {
  src : int;
  dst : int;
  availability : float;  (** fraction of rounds with ≥ 1 valid path *)
  jaccard_mean : float;
      (** mean consecutive-round path-set similarity; 1.0 = static *)
}

type report = {
  rounds_done : int;
  pair_reports : pair_report array;
  availability_mean : float;
  availability_min : float;
  jaccard_overall : float;
  lifetimes : Histogram.summary;
      (** completed path lifetimes, in rounds *)
  survivors : int;  (** paths still alive at the end *)
  link_failures : int;  (** real down transitions (refcount 0→1) *)
  link_repairs : int;
  pcbs_dropped : int;  (** PCBs revoked from beacon stores *)
  segments_revoked : int;  (** segments revoked at the path server *)
  ps_stats : Path_server.stats;
  total_pcbs : int;
  total_bytes : float;
}

val report : t -> report
(** Pure read; never perturbs the trial state. *)
