(** Cooperative per-job deadlines.

    A watchdog is started when a supervised job begins; the job calls
    {!check} at safe points (round barriers, chunk boundaries) and a
    job that overruns its wall-clock budget raises {!Timeout} there —
    at a point where its state is consistent — instead of being killed
    mid-mutation. Cooperative deadlines keep the scheduler
    deterministic: the {e simulation} results never depend on timing,
    only whether a job is abandoned does (and the supervisor folds that
    into the {!Run_report}).

    A watchdog with no budget ([start None]) never fires, so callers
    can thread one unconditionally. *)

exception Timeout of { label : string; budget_s : float; elapsed_s : float }

type t

val start : ?now:(unit -> float) -> ?label:string -> float option -> t
(** [start budget_s] begins the clock. [now] (default
    [Unix.gettimeofday]) injects a fake clock for tests. Raises
    [Invalid_argument] on a non-positive budget. *)

val check : t -> unit
(** Raise {!Timeout} if the budget is exhausted; no-op otherwise (and
    always a no-op without a budget). *)

val expired : t -> bool

val elapsed : t -> float
(** Seconds since {!start}. *)
