(** Dinic's maximum-flow algorithm on small integer-capacity graphs.

    With unit capacities per inter-AS link, the max-flow between two
    ASes equals (Menger) both the minimum number of link failures that
    disconnects them (Fig. 6a / 7) and the number of parallel inter-AS
    links traffic can saturate (Fig. 6b / 8) — the paper notes this
    equivalence in §5.3. *)

type t

val create : n:int -> t
(** Flow network over nodes [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> unit
(** Add a directed edge. For an undirected unit link, call once in each
    direction (each direction with its own capacity). *)

val add_undirected : t -> int -> int -> cap:int -> unit
(** Symmetric capacity in both directions (an inter-AS link can carry
    traffic either way). *)

val max_flow : t -> src:int -> dst:int -> int
(** Computes and returns the max-flow value. The structure is consumed:
    run one query per [t]. Returns 0 when [src = dst]. *)
