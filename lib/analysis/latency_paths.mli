(** Latency-optimal reference paths (for the §4.2 latency-optimisation
    extension): Dijkstra over the multigraph with per-link latency
    weights. *)

val dijkstra : Graph.t -> weights:float array -> src:int -> float array
(** Minimum total latency from [src] to every AS ([infinity] when
    unreachable). [weights] is indexed by link id and must be
    non-negative. *)

val best_latency : Graph.t -> weights:float array -> src:int -> dst:int -> float
(** Convenience single-pair query. *)

val stored_best_latency :
  weights:float array -> Pcb.t list -> float
(** The lowest total latency among a set of disseminated paths;
    [infinity] for an empty set. *)
