let dijkstra g ~weights ~src =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  dist.(src) <- 0.0;
  let heap = Heap.create ~cmp:(fun (a : float * int) b -> compare a b) in
  Heap.push heap (0.0, src);
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
        if d <= dist.(v) then
          Array.iter
            (fun (h : Graph.half_link) ->
              let w = weights.(h.Graph.via) in
              if w < 0.0 then invalid_arg "Latency_paths.dijkstra: negative weight";
              let nd = d +. w in
              if nd < dist.(h.Graph.peer) then begin
                dist.(h.Graph.peer) <- nd;
                Heap.push heap (nd, h.Graph.peer)
              end)
            (Graph.adj g v);
        drain ()
  in
  drain ();
  dist

let best_latency g ~weights ~src ~dst = (dijkstra g ~weights ~src).(dst)

let stored_best_latency ~weights pcbs =
  List.fold_left
    (fun acc (p : Pcb.t) ->
      min acc (Array.fold_left (fun s l -> s +. weights.(l)) 0.0 p.Pcb.links))
    infinity pcbs
