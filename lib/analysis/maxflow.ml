(* Adjacency as arrays of edge indices; edges stored flat with their
   reverse-edge index, the standard Dinic layout. *)

type t = {
  n : int;
  mutable head : int array; (* per node, list head into [next] *)
  mutable dst : int array;
  mutable cap : int array;
  mutable next : int array;
  mutable m : int; (* number of directed edge slots used *)
}

let create ~n =
  {
    n;
    head = Array.make n (-1);
    dst = Array.make 16 0;
    cap = Array.make 16 0;
    next = Array.make 16 (-1);
    m = 0;
  }

let ensure t =
  if t.m = Array.length t.dst then begin
    let grow a = Array.append a (Array.make (Array.length a) 0) in
    t.dst <- grow t.dst;
    t.cap <- grow t.cap;
    t.next <- Array.append t.next (Array.make (Array.length t.next) (-1))
  end

let push_edge t src dst cap =
  ensure t;
  let e = t.m in
  t.dst.(e) <- dst;
  t.cap.(e) <- cap;
  t.next.(e) <- t.head.(src);
  t.head.(src) <- e;
  t.m <- e + 1

let add_edge t ~src ~dst ~cap =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: node out of range";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  (* Paired with its reverse edge at index xor 1. *)
  push_edge t src dst cap;
  push_edge t dst src 0

let add_undirected t x y ~cap =
  if x < 0 || x >= t.n || y < 0 || y >= t.n then
    invalid_arg "Maxflow.add_undirected: node out of range";
  push_edge t x y cap;
  push_edge t y x cap

let max_flow t ~src ~dst =
  if src = dst then 0
  else begin
    let level = Array.make t.n (-1) in
    let iter = Array.make t.n (-1) in
    let queue = Array.make t.n 0 in
    let bfs () =
      Array.fill level 0 t.n (-1);
      level.(src) <- 0;
      queue.(0) <- src;
      let qh = ref 0 and qt = ref 1 in
      while !qh < !qt do
        let v = queue.(!qh) in
        incr qh;
        let e = ref t.head.(v) in
        while !e >= 0 do
          if t.cap.(!e) > 0 && level.(t.dst.(!e)) < 0 then begin
            level.(t.dst.(!e)) <- level.(v) + 1;
            queue.(!qt) <- t.dst.(!e);
            incr qt
          end;
          e := t.next.(!e)
        done
      done;
      level.(dst) >= 0
    in
    let rec dfs v f =
      if v = dst then f
      else begin
        let result = ref 0 in
        while !result = 0 && iter.(v) >= 0 do
          let e = iter.(v) in
          let u = t.dst.(e) in
          if t.cap.(e) > 0 && level.(u) = level.(v) + 1 then begin
            let d = dfs u (min f t.cap.(e)) in
            if d > 0 then begin
              t.cap.(e) <- t.cap.(e) - d;
              t.cap.(e lxor 1) <- t.cap.(e lxor 1) + d;
              result := d
            end
            else iter.(v) <- t.next.(e)
          end
          else iter.(v) <- t.next.(e)
        done;
        !result
      end
    in
    let flow = ref 0 in
    while bfs () do
      Array.blit t.head 0 iter 0 t.n;
      let d = ref (dfs src max_int) in
      while !d > 0 do
        flow := !flow + !d;
        d := dfs src max_int
      done
    done;
    !flow
  end
