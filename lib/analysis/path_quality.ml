let optimum g ~src ~dst =
  let f = Maxflow.create ~n:(Graph.n g) in
  for l = 0 to Graph.num_links g - 1 do
    let lk = Graph.link g l in
    Maxflow.add_undirected f lk.Graph.a lk.Graph.b ~cap:1
  done;
  Maxflow.max_flow f ~src ~dst

let links_of_pcbs pcbs =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (p : Pcb.t) ->
      Array.iter
        (fun l -> if not (Hashtbl.mem seen l) then Hashtbl.replace seen l ())
        p.Pcb.links)
    pcbs;
  Hashtbl.fold (fun l () acc -> l :: acc) seen []

let flow_of_links g links ~src ~dst =
  let f = Maxflow.create ~n:(Graph.n g) in
  List.iter
    (fun l ->
      let lk = Graph.link g l in
      Maxflow.add_undirected f lk.Graph.a lk.Graph.b ~cap:1)
    links;
  Maxflow.max_flow f ~src ~dst

let of_pcbs g pcbs ~src ~dst = flow_of_links g (links_of_pcbs pcbs) ~src ~dst

let of_as_paths g paths ~src ~dst =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun path ->
      let rec walk = function
        | u :: (v :: _ as rest) ->
            List.iter
              (fun (lk : Graph.link) ->
                if not (Hashtbl.mem seen lk.Graph.link_id) then
                  Hashtbl.replace seen lk.Graph.link_id ())
              (Graph.links_between g u v);
            walk rest
        | _ -> ()
      in
      walk path)
    paths;
  flow_of_links g (Hashtbl.fold (fun l () acc -> l :: acc) seen []) ~src ~dst
