(** Path-quality metrics of §5.3: link-failure resilience and maximum
    capacity of a disseminated path set between two ASes.

    Both metrics are the max-flow with unit capacity per inter-AS link
    (§5.3 notes the equivalence): computed on the full topology they
    give the optimum; computed on the subgraph formed by the union of
    the links of a disseminated path set they give what a routing
    algorithm actually achieves. *)

val optimum : Graph.t -> src:int -> dst:int -> int
(** Max-flow over the whole multigraph, all parallel links counted. *)

val of_pcbs : Graph.t -> Pcb.t list -> src:int -> dst:int -> int
(** Flow restricted to the union of links appearing in the PCBs
    (SCION: the paths from origin [dst] stored at [src]). *)

val of_as_paths : Graph.t -> int list list -> src:int -> dst:int -> int
(** Flow restricted to the union of AS-level paths, each AS adjacency
    expanded to {e all} parallel links between the two ASes — the
    paper's best case for BGP multipath (§5.3). *)

val links_of_pcbs : Pcb.t list -> int list
(** Distinct link ids appearing in a PCB set. *)
