(** Per-trial fault-injection engine.

    Couples one beaconing run to a compiled fault plan and closes the
    failure→reaction→recovery loop of §4.1:

    - the plan's events fire between beaconing rounds on a {!Des.t}
      clock driven in lock-step with the rounds;
    - on a real link-down transition, beacon stores expire every PCB
      over the link ({!Beacon_store.drop_link}), the path server
      revokes affected segments ({!Path_server.revoke_link}), and the
      adjacent border router's {!Scmp} link-failure notification is
      accounted to every monitored pair that was using the link;
    - monitored pairs fail over to cached alternate paths when they
      have one (recovery = the SCMP notification delay) or enter a
      blackout until re-beaconing finds a new path (recovery = the
      blackout duration, only re-beaconing can end it);
    - dissemination over dead links is suppressed via the beaconing
      [link_up] hook, so the control plane routes around failures
      instead of advertising them.

    After the run, a validation pass builds a {!Control_service} from
    the final stores and drives an {!Endpoint} per monitored pair over
    a network whose still-down links are failed, counting end-to-end
    deliveries and dataplane failovers.

    Everything is deterministic: the plan compiles to a fixed event
    sequence and rounds are the only scheduling interleaving. *)

type config = {
  graph : Graph.t;
  beacon : Beaconing.config;
  plan : Fault_plan.t;
  pairs : (int * int) array;  (** monitored (src, dst) pairs *)
  scmp_delay_s : float;
      (** per-hop propagation delay of the SCMP notification path *)
}

type result = {
  outcome : Beaconing.outcome;  (** the underlying beaconing run *)
  recovery : Recovery.summary;
  path_server : Path_server.stats;
      (** registration/revocation accounting of the trial's server *)
  validated_pairs : int;
  validated_delivered : int;
      (** pairs whose endpoint delivered a packet end-to-end in the
          post-run validation pass *)
  validated_failovers : int;
      (** dataplane failovers (SCMP-triggered path switches) the
          validation endpoints performed *)
}

val run : ?obs:Obs.t -> config -> result
(** With an enabled [obs] (default {!Obs.disabled}): the beaconing,
    DES and path-server instrumentation all attach to it, fault
    transitions emit [fault]-category trace events ([Warn] down,
    [Info] up) and {!Recovery.observe} exports the trial's counters
    and histograms on completion. *)
