type config = {
  graph : Graph.t;
  beacon : Beaconing.config;
  plan : Fault_plan.t;
  pairs : (int * int) array;
  scmp_delay_s : float;
}

type result = {
  outcome : Beaconing.outcome;
  recovery : Recovery.summary;
  path_server : Path_server.stats;
  validated_pairs : int;
  validated_delivered : int;
  validated_failovers : int;
}

let on_path link (p : Pcb.t) = Array.exists (fun x -> x = link) p.Pcb.links

(* Position of the failed link on the first affected path: the SCMP
   notification travels that many hops back to the source (same
   failure-distance model as the convergence experiment). *)
let failure_distance link paths =
  match List.find_opt (on_path link) paths with
  | None -> 1
  | Some p ->
      let pos = ref 0 in
      Array.iteri (fun i x -> if x = link then pos := i) p.Pcb.links;
      !pos + 1

let run ?(obs = Obs.disabled) cfg =
  let g = cfg.graph in
  let obs_on = Obs.on obs in
  let tr = Obs.trace obs in
  let des = Des.create ~obs () in
  let state = Link_state.create ~n_links:(Graph.num_links g) in
  let recov = Recovery.create () in
  let ps = Path_server.create ~obs () in
  let reg_keys = Fwd_keys.create () in
  (* The live store array: set by the round hook before any event can
     fire, refreshed from the outcome for the post-run drain. *)
  let stores_ref = ref [||] in
  let on_down ~now ~link =
    Recovery.record_event recov ~action:Fault_plan.Down;
    let stores = !stores_ref in
    let lk = Graph.link g link in
    let msg =
      {
        Scmp.kind =
          Scmp.Link_failure
            {
              link;
              if_a = lk.Graph.a_if;
              if_b = lk.Graph.b_if;
              expiry = now +. Scmp.default_revocation_ttl;
            };
        origin_as = lk.Graph.a;
        at = now;
      }
    in
    (* Which monitored pairs were riding the link? Decide failover vs
       blackout from the pre-drop path sets. *)
    let notified = ref 0 in
    Array.iter
      (fun (s, d) ->
        if Array.length stores > 0 then begin
          let paths = Beacon_store.paths stores.(s) ~now ~origin:d in
          let affected = List.filter (on_path link) paths in
          if affected <> [] then begin
            Recovery.record_affected recov ~pair:(s, d);
            incr notified;
            if List.compare_lengths paths affected = 0 then
              Recovery.open_blackout recov ~now ~pair:(s, d)
            else
              Recovery.record_failover recov
                ~recovery_s:
                  (float_of_int (failure_distance link paths) *. cfg.scmp_delay_s)
          end
        end)
      cfg.pairs;
    let dropped =
      Array.fold_left (fun acc st -> acc + Beacon_store.drop_link st ~link) 0 stores
    in
    Recovery.record_dropped_pcbs recov dropped;
    let revoked = Path_server.revoke_link ps ~link in
    (* One SCMP revocation per notified endpoint plus the one that
       reaches the path server (§4.1). *)
    let msgs = !notified + 1 in
    Recovery.record_revocation recov ~segments:revoked ~msgs
      ~bytes:(msgs * Scmp.wire_bytes msg);
    if obs_on && Trace.enabled tr Trace.Warn then
      Trace.emit tr Trace.Warn ~time:now ~category:"fault"
        ~fields:
          [
            ("link", string_of_int link);
            ("dropped_pcbs", string_of_int dropped);
            ("revoked_segments", string_of_int revoked);
            ("notified", string_of_int !notified);
          ]
        "link down"
  in
  let on_up ~now ~link =
    Recovery.record_event recov ~action:Fault_plan.Up;
    if obs_on && Trace.enabled tr Trace.Info then
      Trace.emit tr Trace.Info ~time:now ~category:"fault"
        ~fields:[ ("link", string_of_int link) ]
        "link repaired"
  in
  let events = Fault_plan.compile ~graph:g cfg.plan in
  ignore (Fault_driver.install ~des ~state ~on_down ~on_up events);
  let on_round_start ~round:_ ~now ~stores =
    stores_ref := stores;
    Des.run ~until:now des
  in
  let on_round ~round:_ ~now =
    let stores = !stores_ref in
    Array.iter
      (fun (s, d) ->
        let paths = Beacon_store.paths stores.(s) ~now ~origin:d in
        (* Re-beaconing found a path again: the blackout (if any) ends. *)
        if paths <> [] then Recovery.close_blackout recov ~now ~pair:(s, d);
        (* Keep the path server stocked with the pair's current best
           segments so revocations have real registrations to purge. *)
        let rec register k = function
          | [] -> ()
          | pcb :: rest ->
              if k > 0 && Array.length pcb.Pcb.hops > 0 then begin
                let seg =
                  Segment.terminate g reg_keys ~kind:Segment.Core_seg ~holder:s pcb
                in
                ignore (Path_server.register_core ps ~now seg);
                register (k - 1) rest
              end
        in
        register cfg.beacon.Beaconing.dissemination_limit paths)
      cfg.pairs
  in
  let outcome =
    Beaconing.run ~obs
      ~link_up:(fun ~now:_ l -> Link_state.up state l)
      ~on_round_start ~on_round g cfg.beacon
  in
  (* Events past the last round (repairs, late failures) still count. *)
  stores_ref := outcome.Beaconing.stores;
  let horizon = cfg.beacon.Beaconing.duration in
  Des.run ~until:horizon des;
  Recovery.finish recov ~now:horizon;
  (* Validation pass: resolve and forward end-to-end over the surviving
     topology, with still-down links failed at the routers. *)
  let validated_pairs, validated_delivered, validated_failovers =
    Obs.phase obs "faults.validation" (fun () ->
        let cs = Control_service.build ~core:outcome ~intra:outcome () in
        let net = Forwarding.network g (Control_service.keys cs) in
        List.iter (Forwarding.fail_link net) (Link_state.down_links state);
        let now = Control_service.now cs in
        let total = ref 0 and delivered = ref 0 and failovers = ref 0 in
        Array.iter
          (fun (s, d) ->
            if s <> d then begin
              incr total;
              let ep = Endpoint.create cs net ~src:s ~dst:d in
              (match Endpoint.send ep ~now () with
              | Forwarding.Delivered _ -> incr delivered
              | Forwarding.Dropped _ -> ());
              failovers := !failovers + Endpoint.failovers ep
            end)
          cfg.pairs;
        (!total, !delivered, !failovers))
  in
  Recovery.observe obs recov;
  {
    outcome;
    recovery = Recovery.summary recov;
    path_server = Path_server.stats ps;
    validated_pairs;
    validated_delivered;
    validated_failovers;
  }
