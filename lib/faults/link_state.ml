type t = { holds : int array; since : float array }

type transition = Went_down | Went_up | No_change

let create ~n_links =
  if n_links < 0 then invalid_arg "Link_state.create: n_links must be >= 0";
  { holds = Array.make n_links 0; since = Array.make n_links nan }

let apply t ~now ~link ~action =
  match action with
  | Fault_plan.Down ->
      t.holds.(link) <- t.holds.(link) + 1;
      if t.holds.(link) = 1 then begin
        t.since.(link) <- now;
        Went_down
      end
      else No_change
  | Fault_plan.Up ->
      if t.holds.(link) = 0 then No_change
      else begin
        t.holds.(link) <- t.holds.(link) - 1;
        if t.holds.(link) = 0 then Went_up else No_change
      end

let up t l = t.holds.(l) = 0

let down_since t l = if t.holds.(l) > 0 then Some t.since.(l) else None

let down_links t =
  let acc = ref [] in
  for l = Array.length t.holds - 1 downto 0 do
    if t.holds.(l) > 0 then acc := l :: !acc
  done;
  !acc

let n_links t = Array.length t.holds

let holds t l = t.holds.(l)

type dump = { d_holds : int array; d_since : float array }

let dump t = { d_holds = Array.copy t.holds; d_since = Array.copy t.since }

let of_dump d =
  if Array.length d.d_holds <> Array.length d.d_since then
    invalid_arg "Link_state.of_dump: array length mismatch";
  { holds = Array.copy d.d_holds; since = Array.copy d.d_since }
