type action = Down | Up

type event = { time : float; link : int; action : action }

type spec =
  | Link_down of { link : int; at : float; duration : float }
  | As_outage of { as_idx : int; at : float; duration : float }
  | Flapping of {
      link : int;
      at : float;
      period : float;
      down_fraction : float;
      until : float;
    }
  | Regional_burst of { links : int list; at : float; duration : float; stagger : float }
  | Stochastic of { mtbf : float; mttr : float; start : float; until : float }

type t = { seed : int64; specs : spec list }

let plan ?(seed = 0xFA17L) specs = { seed; specs }

let check_link g l =
  if l < 0 || l >= Graph.num_links g then
    invalid_arg (Printf.sprintf "Fault_plan.compile: unknown link %d" l)

let check_time name x =
  if not (x >= 0.0) (* also rejects nan *) then
    invalid_arg (Printf.sprintf "Fault_plan.compile: %s must be >= 0" name)

let check_pos name x =
  if not (x > 0.0) then
    invalid_arg (Printf.sprintf "Fault_plan.compile: %s must be positive" name)

(* Links incident to an AS, deduplicated (self-loops are impossible in
   the multigraph) and in ascending id order for determinism. *)
let incident_links g v =
  Array.to_list (Graph.adj g v)
  |> List.map (fun (h : Graph.half_link) -> h.Graph.via)
  |> List.sort_uniq compare

let compile ~graph:g t =
  let events = ref [] in
  let seq = ref 0 in
  let emit time link action =
    events := (time, !seq, { time; link; action }) :: !events;
    incr seq
  in
  let down_up link ~at ~duration =
    emit at link Down;
    if duration < infinity then emit (at +. duration) link Up
  in
  List.iteri
    (fun spec_idx spec ->
      match spec with
      | Link_down { link; at; duration } ->
          check_link g link;
          check_time "at" at;
          check_pos "duration" duration;
          down_up link ~at ~duration
      | As_outage { as_idx; at; duration } ->
          if as_idx < 0 || as_idx >= Graph.n g then
            invalid_arg "Fault_plan.compile: unknown AS";
          check_time "at" at;
          check_pos "duration" duration;
          List.iter (fun l -> down_up l ~at ~duration) (incident_links g as_idx)
      | Flapping { link; at; period; down_fraction; until } ->
          check_link g link;
          check_time "at" at;
          check_pos "period" period;
          if not (down_fraction > 0.0 && down_fraction < 1.0) then
            invalid_arg "Fault_plan.compile: down_fraction must be in (0, 1)";
          let t = ref at in
          while !t < until do
            down_up link ~at:!t ~duration:(down_fraction *. period);
            t := !t +. period
          done
      | Regional_burst { links; at; duration; stagger } ->
          check_time "at" at;
          check_pos "duration" duration;
          check_time "stagger" stagger;
          List.iteri
            (fun i l ->
              check_link g l;
              down_up l ~at:(at +. (float_of_int i *. stagger)) ~duration)
            links
      | Stochastic { mtbf; mttr; start; until } ->
          check_pos "mtbf" mtbf;
          check_pos "mttr" mttr;
          check_time "start" start;
          (* Each link gets its own stream split off (plan seed, spec
             index), so adding a spec or a link never perturbs the
             draws of the others. *)
          let spec_seed = Runner.job_seed t.seed spec_idx in
          for l = 0 to Graph.num_links g - 1 do
            let rng = Rng.create (Runner.job_seed spec_seed l) in
            let now = ref (start +. Rng.exponential rng (1.0 /. mtbf)) in
            while !now < until do
              let repair = Rng.exponential rng (1.0 /. mttr) in
              down_up l ~at:!now ~duration:repair;
              now := !now +. repair +. Rng.exponential rng (1.0 /. mtbf)
            done
          done)
    t.specs;
  let arr = Array.of_list !events in
  Array.sort
    (fun (ta, sa, _) (tb, sb, _) ->
      match compare ta tb with 0 -> compare sa sb | c -> c)
    arr;
  Array.map (fun (_, _, e) -> e) arr

let sample_adjacencies ~rng ?(max_attempts = 500) ~count ~accept g =
  let selected = ref [] in
  let n_selected = ref 0 in
  let used = Hashtbl.create 8 in
  let attempts = ref 0 in
  while !n_selected < count && !attempts < max_attempts do
    incr attempts;
    let l = Rng.int rng (Graph.num_links g) in
    if not (Hashtbl.mem used l) then begin
      let lk = Graph.link g l in
      let siblings =
        List.map
          (fun (x : Graph.link) -> x.Graph.link_id)
          (Graph.links_between g lk.Graph.a lk.Graph.b)
      in
      match accept ~link:lk ~siblings with
      | None -> ()
      | Some v ->
          List.iter (fun sl -> Hashtbl.replace used sl ()) siblings;
          selected := v :: !selected;
          incr n_selected
    end
  done;
  List.rev !selected
