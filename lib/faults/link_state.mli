(** Reference-counted link liveness.

    Several overlapping fault specs may fail the same link (a flap
    inside an AS outage, a stochastic failure during a regional burst);
    a link is up only when {e no} cause holds it down. {!apply} folds a
    raw plan event into the counter and reports whether the link
    actually changed state, so reactions (revocation, repair) fire once
    per real transition, not once per overlapping cause. *)

type t

type transition = Went_down | Went_up | No_change

val create : n_links:int -> t
(** All links start up. *)

val apply : t -> now:float -> link:int -> action:Fault_plan.action -> transition
(** Fold one plan event. [Down] increments the link's hold count
    ([Went_down] on the 0→1 edge); [Up] decrements it, never below
    zero ([Went_up] on the 1→0 edge). *)

val up : t -> int -> bool

val down_since : t -> int -> float option
(** Time of the transition that took the link down, if it is down. *)

val down_links : t -> int list
(** Currently-down links in ascending id order. *)

val n_links : t -> int

val holds : t -> int -> int
(** Raw hold count of a link (0 = up). Exposed for invariant checks. *)

(** {1 Checkpointing} *)

type dump = { d_holds : int array; d_since : float array }

val dump : t -> dump
(** Copies of the internal arrays. *)

val of_dump : dump -> t
(** Rebuild from a dump (copying); raises [Invalid_argument] if the
    arrays differ in length. *)
