(** Failure-recovery accounting.

    Collects, per fault-injection trial, what the paper's §4.1/§5
    discussion cares about: how fast endpoints get back to a working
    path (failover to a cached alternate vs waiting out a blackout for
    re-beaconing), how many monitored pairs a failure touches, and
    what the revocation machinery costs in messages and bytes. *)

type t

val create : unit -> t

(** {1 Recording} *)

val record_event : t -> action:Fault_plan.action -> unit
(** One real link transition (post {!Link_state} collapsing). *)

val record_affected : t -> pair:int * int -> unit
(** A monitored pair lost at least one path to this failure. Each pair
    is counted once per trial however often it is hit. *)

val record_failover : t -> recovery_s:float -> unit
(** A pair switched to an already-cached alternate segment;
    [recovery_s] is the SCMP notification delay it had to wait. *)

val record_revocation : t -> segments:int -> msgs:int -> bytes:int -> unit
(** Revocation fan-out of one link failure: [segments] purged from
    path servers, [msgs] SCMP link-failure messages sent, [bytes]
    their total wire size. *)

val record_dropped_pcbs : t -> int -> unit
(** PCBs expired from beacon stores by a revocation. *)

val open_blackout : t -> now:float -> pair:int * int -> unit
(** The pair has no path left; idempotent while already open. *)

val close_blackout : t -> now:float -> pair:int * int -> unit
(** The pair regained a path: the blackout window closes and its
    duration is recorded both as blackout time and as that pair's
    time-to-recovery. No-op if no blackout is open. *)

val finish : t -> now:float -> unit
(** End of trial: close every still-open blackout at [now] (the
    outage outlived the run; the truncated window still counts as
    blackout time, but not as a recovery — the pair never recovered). *)

(** {1 Checkpointing}

    The accounting is shared between the resilience trials and the
    traffic workload engine; the latter checkpoints mid-trial, so the
    full recording state — including still-open blackout windows — is
    exposed in a canonical (sorted, hash-layout-independent) dump
    form, mirroring {!Link_state.dump}. *)

type dump = {
  d_events_down : int;
  d_events_up : int;
  d_affected : (int * int) list;  (** sorted *)
  d_failovers : int;
  d_blackouts : int;
  d_unrecovered : int;
  d_blackout_time_s : float;
  d_recovery : float array;  (** recording order *)
  d_blackout : float array;  (** recording order *)
  d_open : ((int * int) * float) list;  (** open windows, sorted *)
  d_revoked_segments : int;
  d_revocation_msgs : int;
  d_revocation_bytes : float;
  d_dropped_pcbs : int;
}

val dump : t -> dump
(** Canonical copy of the full recording state;
    [dump (of_dump d) = d]. *)

val of_dump : dump -> t

(** {1 Results} *)

type summary = {
  events_down : int;
  events_up : int;
  affected_pairs : int;
  failovers : int;
  blackouts : int;  (** blackout windows opened *)
  unrecovered : int;  (** still dark when the trial ended *)
  blackout_time_s : float;  (** summed over all windows *)
  recovery_samples : float array;
      (** per-recovery seconds: failover delays and closed-blackout
          durations, in recording order *)
  revoked_segments : int;
  revocation_msgs : int;
  revocation_bytes : float;
  dropped_pcbs : int;
}

val summary : t -> summary

val observe : Obs.t -> t -> unit
(** Export into an {!Obs.t} registry: [fault_events_total{action}],
    [fault_affected_pairs_total], [fault_failovers_total],
    [fault_blackouts_total], [fault_revocation_bytes_total] counters
    and the [fault_recovery_time_s] / [fault_blackout_s] histograms.
    No-op on a disabled context. *)
