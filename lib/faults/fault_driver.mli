(** Replay a compiled fault plan through the discrete-event engine.

    The driver schedules every compiled event into a {!Des.t}; when an
    event fires it is folded into a {!Link_state.t} and the [on_down] /
    [on_up] reactions run {e only on real transitions} (overlapping
    causes collapse, see {!Link_state}). Events whose time has already
    passed when the driver is installed fire at the current virtual
    time, in plan order. *)

val install :
  ?on_event:(unit -> unit) ->
  des:Des.t ->
  state:Link_state.t ->
  on_down:(now:float -> link:int -> unit) ->
  on_up:(now:float -> link:int -> unit) ->
  Fault_plan.event array ->
  int
(** Schedule all events; returns how many were installed. The caller
    drives the clock ([Des.run ~until] between beaconing rounds, a
    final drain afterwards) — the driver never advances it.

    [on_event] fires right before each event is folded, in plan order
    (events fire in time order and ties preserve plan order through the
    engine's FIFO). Checkpointing uses it as an event cursor: a resumed
    run re-installs only [Array.sub events cursor (n - cursor)] over
    the restored {!Link_state}. *)
