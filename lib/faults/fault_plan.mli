(** Declarative, seeded fault plans.

    A plan is a list of failure specifications over a topology's links;
    {!compile} expands it into a flat, time-sorted array of link
    down/up transitions that a {!Fault_driver} replays through the
    discrete-event engine. Compilation is a pure function of the plan
    (including its seed) and the graph, so the same plan always yields
    the same event sequence — the property the resilience experiments
    lean on for byte-identical parallel runs. *)

type action = Down | Up

type event = { time : float; link : int; action : action }
(** One link transition. Events compare equal on [time] preserve their
    generation order, so replay is deterministic even under ties. *)

type spec =
  | Link_down of { link : int; at : float; duration : float }
      (** One-shot: [link] fails at [at] and is repaired [duration]
          seconds later ([infinity] = never repaired). *)
  | As_outage of { as_idx : int; at : float; duration : float }
      (** Every link incident to [as_idx] fails at [at] (a whole AS
          dropping off the network) and recovers after [duration]. *)
  | Flapping of {
      link : int;
      at : float;
      period : float;
      down_fraction : float;
      until : float;
    }
      (** Periodic instability: from [at] until [until], the link goes
          down at the start of each [period] and comes back after
          [down_fraction * period] seconds. *)
  | Regional_burst of { links : int list; at : float; duration : float; stagger : float }
      (** Correlated regional failure: the listed links go down in
          order, [stagger] seconds apart, each recovering [duration]
          seconds after its own failure (a fibre cut or power event
          taking down co-located links). *)
  | Stochastic of { mtbf : float; mttr : float; start : float; until : float }
      (** Memoryless background failures on {e every} link: up-times
          are Exp(1/mtbf), repair times Exp(1/mttr), independently per
          link from a SplitMix stream partitioned off the plan seed.
          Failures are injected in [\[start, until)]; an in-flight
          repair may complete after [until]. *)

type t = { seed : int64; specs : spec list }

val plan : ?seed:int64 -> spec list -> t
(** [seed] (default [0xFA17L]) drives the [Stochastic] specs only;
    deterministic specs ignore it. *)

val compile : graph:Graph.t -> t -> event array
(** Expand the plan against [graph] into a time-sorted event array
    (ties broken by generation order). Raises [Invalid_argument] if a
    spec names a link or AS outside the graph, or has a non-positive
    period/mtbf/mttr. *)

val sample_adjacencies :
  rng:Rng.t ->
  ?max_attempts:int ->
  count:int ->
  accept:(link:Graph.link -> siblings:int list -> 'a option) ->
  Graph.t ->
  'a list
(** Shared failure-site sampler: draw links uniformly at random
    (consuming exactly one [Rng.int] per attempt) until [count]
    distinct {e adjacencies} are accepted or [max_attempts] (default
    500) draws are spent. For each fresh draw, [siblings] is the full
    parallel-link group between the two endpoint ASes; [accept]
    returning [Some v] selects the adjacency (all siblings become
    ineligible for later draws), [None] rejects it without marking
    anything used. Results are in acceptance order.

    This is the sampler behind both the convergence experiment's
    failure selection and the resilience scenario's fault sites, so
    the two agree on what "a random adjacency failure" means — and on
    the RNG stream they consume. *)
