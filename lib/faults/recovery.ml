type t = {
  mutable events_down : int;
  mutable events_up : int;
  affected : (int * int, unit) Hashtbl.t;
  mutable failovers : int;
  mutable blackouts : int;
  mutable unrecovered : int;
  mutable blackout_time_s : float;
  mutable recovery_rev : float list;
  mutable blackout_rev : float list;
  open_blackouts : (int * int, float) Hashtbl.t;
  mutable revoked_segments : int;
  mutable revocation_msgs : int;
  mutable revocation_bytes : float;
  mutable dropped_pcbs : int;
}

let create () =
  {
    events_down = 0;
    events_up = 0;
    affected = Hashtbl.create 64;
    failovers = 0;
    blackouts = 0;
    unrecovered = 0;
    blackout_time_s = 0.0;
    recovery_rev = [];
    blackout_rev = [];
    open_blackouts = Hashtbl.create 16;
    revoked_segments = 0;
    revocation_msgs = 0;
    revocation_bytes = 0.0;
    dropped_pcbs = 0;
  }

let record_event t ~action =
  match action with
  | Fault_plan.Down -> t.events_down <- t.events_down + 1
  | Fault_plan.Up -> t.events_up <- t.events_up + 1

let record_affected t ~pair = Hashtbl.replace t.affected pair ()

let record_failover t ~recovery_s =
  t.failovers <- t.failovers + 1;
  t.recovery_rev <- recovery_s :: t.recovery_rev

let record_revocation t ~segments ~msgs ~bytes =
  t.revoked_segments <- t.revoked_segments + segments;
  t.revocation_msgs <- t.revocation_msgs + msgs;
  t.revocation_bytes <- t.revocation_bytes +. float_of_int bytes

let record_dropped_pcbs t n = t.dropped_pcbs <- t.dropped_pcbs + n

let open_blackout t ~now ~pair =
  if not (Hashtbl.mem t.open_blackouts pair) then begin
    Hashtbl.replace t.open_blackouts pair now;
    t.blackouts <- t.blackouts + 1
  end

let close_blackout t ~now ~pair =
  match Hashtbl.find_opt t.open_blackouts pair with
  | None -> ()
  | Some since ->
      Hashtbl.remove t.open_blackouts pair;
      let d = now -. since in
      t.blackout_time_s <- t.blackout_time_s +. d;
      t.blackout_rev <- d :: t.blackout_rev;
      t.recovery_rev <- d :: t.recovery_rev

let finish t ~now =
  let dangling =
    Hashtbl.fold (fun pair since acc -> (pair, since) :: acc) t.open_blackouts []
    |> List.sort compare
  in
  List.iter
    (fun (pair, since) ->
      Hashtbl.remove t.open_blackouts pair;
      let d = now -. since in
      t.blackout_time_s <- t.blackout_time_s +. d;
      t.blackout_rev <- d :: t.blackout_rev;
      t.unrecovered <- t.unrecovered + 1)
    dangling

type dump = {
  d_events_down : int;
  d_events_up : int;
  d_affected : (int * int) list;
  d_failovers : int;
  d_blackouts : int;
  d_unrecovered : int;
  d_blackout_time_s : float;
  d_recovery : float array;
  d_blackout : float array;
  d_open : ((int * int) * float) list;
  d_revoked_segments : int;
  d_revocation_msgs : int;
  d_revocation_bytes : float;
  d_dropped_pcbs : int;
}

let dump t =
  {
    d_events_down = t.events_down;
    d_events_up = t.events_up;
    d_affected =
      Hashtbl.fold (fun pair () acc -> pair :: acc) t.affected []
      |> List.sort compare;
    d_failovers = t.failovers;
    d_blackouts = t.blackouts;
    d_unrecovered = t.unrecovered;
    d_blackout_time_s = t.blackout_time_s;
    d_recovery = Array.of_list (List.rev t.recovery_rev);
    d_blackout = Array.of_list (List.rev t.blackout_rev);
    d_open =
      Hashtbl.fold (fun pair since acc -> (pair, since) :: acc) t.open_blackouts []
      |> List.sort compare;
    d_revoked_segments = t.revoked_segments;
    d_revocation_msgs = t.revocation_msgs;
    d_revocation_bytes = t.revocation_bytes;
    d_dropped_pcbs = t.dropped_pcbs;
  }

let of_dump d =
  let t = create () in
  t.events_down <- d.d_events_down;
  t.events_up <- d.d_events_up;
  List.iter (fun pair -> Hashtbl.replace t.affected pair ()) d.d_affected;
  t.failovers <- d.d_failovers;
  t.blackouts <- d.d_blackouts;
  t.unrecovered <- d.d_unrecovered;
  t.blackout_time_s <- d.d_blackout_time_s;
  t.recovery_rev <- List.rev (Array.to_list d.d_recovery);
  t.blackout_rev <- List.rev (Array.to_list d.d_blackout);
  List.iter
    (fun (pair, since) -> Hashtbl.replace t.open_blackouts pair since)
    d.d_open;
  t.revoked_segments <- d.d_revoked_segments;
  t.revocation_msgs <- d.d_revocation_msgs;
  t.revocation_bytes <- d.d_revocation_bytes;
  t.dropped_pcbs <- d.d_dropped_pcbs;
  t

type summary = {
  events_down : int;
  events_up : int;
  affected_pairs : int;
  failovers : int;
  blackouts : int;
  unrecovered : int;
  blackout_time_s : float;
  recovery_samples : float array;
  revoked_segments : int;
  revocation_msgs : int;
  revocation_bytes : float;
  dropped_pcbs : int;
}

let summary (t : t) =
  {
    events_down = t.events_down;
    events_up = t.events_up;
    affected_pairs = Hashtbl.length t.affected;
    failovers = t.failovers;
    blackouts = t.blackouts;
    unrecovered = t.unrecovered;
    blackout_time_s = t.blackout_time_s;
    recovery_samples = Array.of_list (List.rev t.recovery_rev);
    revoked_segments = t.revoked_segments;
    revocation_msgs = t.revocation_msgs;
    revocation_bytes = t.revocation_bytes;
    dropped_pcbs = t.dropped_pcbs;
  }

let observe obs (t : t) =
  if Obs.on obs then begin
    let reg = Obs.registry obs in
    Registry.add reg "fault_events_total"
      ~labels:[ ("action", "down") ]
      (float_of_int t.events_down);
    Registry.add reg "fault_events_total"
      ~labels:[ ("action", "up") ]
      (float_of_int t.events_up);
    Registry.add reg "fault_affected_pairs_total"
      (float_of_int (Hashtbl.length t.affected));
    Registry.add reg "fault_failovers_total" (float_of_int t.failovers);
    Registry.add reg "fault_blackouts_total" (float_of_int t.blackouts);
    Registry.add reg "fault_revocation_bytes_total" t.revocation_bytes;
    let h_rec = Registry.histogram reg "fault_recovery_time_s" in
    List.iter (Histogram.observe h_rec) (List.rev t.recovery_rev);
    let h_black = Registry.histogram reg "fault_blackout_s" in
    List.iter (Histogram.observe h_black) (List.rev t.blackout_rev)
  end
