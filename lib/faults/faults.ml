(** Deterministic fault injection and failure recovery.

    Facade over the subsystem's parts, so callers can say
    [Faults.Plan.plan], [Faults.Engine.run], …:

    - {!Plan} ({!Fault_plan}): declarative seeded failure plans
      compiled to link down/up event sequences;
    - {!Link_state}: reference-counted liveness under overlapping
      causes;
    - {!Driver} ({!Fault_driver}): replays compiled events through a
      {!Des.t};
    - {!Recovery}: per-trial failover/blackout/revocation accounting;
    - {!Engine} ({!Fault_engine}): one beaconing run under one plan,
      reactions wired end to end. *)

module Plan = Fault_plan
module Link_state = Link_state
module Driver = Fault_driver
module Recovery = Recovery
module Engine = Fault_engine
