let install ?on_event ~des ~state ~on_down ~on_up events =
  Array.iter
    (fun (e : Fault_plan.event) ->
      let time = Float.max e.Fault_plan.time (Des.now des) in
      Des.schedule_at des ~time (fun des ->
          let now = Des.now des in
          (match on_event with None -> () | Some f -> f ());
          match
            Link_state.apply state ~now ~link:e.Fault_plan.link
              ~action:e.Fault_plan.action
          with
          | Link_state.Went_down -> on_down ~now ~link:e.Fault_plan.link
          | Link_state.Went_up -> on_up ~now ~link:e.Fault_plan.link
          | Link_state.No_change -> ()))
    events;
  Array.length events
