(** Swarm file-transfer workload.

    The BitTorrent-over-SCION experiment distilled: a population of
    bulk file transfers between the same endpoint pairs, run three
    times from one demand seed — forced single-path, multipath over a
    maximally link-disjoint set, and multipath with load-adaptive
    re-selection — so the only difference between the runs is how
    many (and which) of the offered paths each transfer rides.
    Multipath aggregates the fair shares of disjoint bottlenecks, so
    its mean completion time is measurably lower; {!compare} reports
    the speedups. *)

type params = {
  transfers : int;  (** file transfers over the horizon *)
  n_pairs : int;
  file_mbit : float;  (** mean file size *)
  width : int;  (** subflows per transfer in the multipath modes *)
  horizon_s : float;
  drain_s : float;  (** extra simulated time for late transfers *)
  seed : int64;
}

val default_params : params
(** 2 000 transfers of ~400 Mbit between 40 pairs over 10 minutes,
    3-way multipath, 5 minutes of drain. *)

val demand : Graph.t -> params -> Demand.t
(** The shared demand model: every mode consumes exactly this, so the
    comparison is paired at the level of individual transfers. *)

type mode = Single_path | Multi_diversity | Multi_adaptive

val modes : mode list

val mode_name : mode -> string
(** [single], [multi-div] or [multi-load]. *)

val cell_config :
  graph:Graph.t ->
  paths:Fwd_path.t array array ->
  latency_ms:float array ->
  demand:Demand.t ->
  capacity_scale:float ->
  slot_s:float ->
  params ->
  mode ->
  Traffic_sim.config
(** Simulation config for one mode; fault-free (the comparison
    isolates the multipath effect) and labelled
    [workload=swarm,mode=...]. *)

(** {1 Comparison} *)

type comparison = {
  single : Traffic_sim.report;
  multi_diversity : Traffic_sim.report;
  multi_adaptive : Traffic_sim.report;
  speedup_diversity : float;
      (** single-path mean FCT / diversity-multipath mean FCT *)
  speedup_adaptive : float;
}

val speedup : single:Traffic_sim.report -> multi:Traffic_sim.report -> float
(** Mean-FCT ratio; [nan] when either side completed nothing. *)

val compare :
  single:Traffic_sim.report ->
  multi_diversity:Traffic_sim.report ->
  multi_adaptive:Traffic_sim.report ->
  comparison
