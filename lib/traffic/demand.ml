type params = {
  n_pairs : int;
  flows : int;
  pair_zipf_s : float;
  pop_zipf_s : float;
  mean_size_mbit : float;
  pareto_alpha : float;
  horizon_s : float;
  seed : int64;
}

let default_params =
  {
    n_pairs = 200;
    flows = 10_000;
    pair_zipf_s = 1.1;
    pop_zipf_s = 1.0;
    mean_size_mbit = 40.0;
    pareto_alpha = 1.5;
    horizon_s = 3600.0;
    seed = 0x7AF1CL;
  }

type flow_spec = { arrival_s : float; size_mbit : float; pair : int }

type t = {
  params : params;
  pairs : (int * int) array;
  pair_zipf : Zipf.t;
  rank_of_as : int array;  (** degree rank (0 = best connected) per AS *)
  pop_zipf : Zipf.t;
}

let validate g p =
  if Graph.n g < 2 then invalid_arg "Demand.create: graph has fewer than 2 ASes";
  if p.n_pairs <= 0 then invalid_arg "Demand.create: n_pairs <= 0";
  if p.flows < 0 then invalid_arg "Demand.create: flows < 0";
  if p.mean_size_mbit <= 0.0 then invalid_arg "Demand.create: mean_size_mbit <= 0";
  if p.pareto_alpha <= 1.0 then invalid_arg "Demand.create: pareto_alpha <= 1";
  if p.horizon_s <= 0.0 then invalid_arg "Demand.create: horizon_s <= 0"

(* ASes sorted by descending degree (ties by index) give the rank
   order both Zipf laws are expressed over. *)
let degree_ranking g =
  let n = Graph.n g in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = compare (Graph.as_degree g b) (Graph.as_degree g a) in
      if c <> 0 then c else compare a b)
    order;
  let rank_of_as = Array.make n 0 in
  Array.iteri (fun rank v -> rank_of_as.(v) <- rank) order;
  (order, rank_of_as)

let create g p =
  validate g p;
  let n = Graph.n g in
  let as_of_rank, rank_of_as = degree_ranking g in
  let pop_zipf = Zipf.create ~n ~s:p.pop_zipf_s in
  let dst_zipf = Zipf.create ~n ~s:(p.pop_zipf_s +. 0.2) in
  (* Endpoint pairs: sources drawn from the population law, popular
     destinations from a slightly heavier one. Rejects self-pairs and
     duplicates; the attempt budget keeps pathological tiny graphs
     from looping forever. *)
  let rng = Rng.create p.seed in
  let seen = Hashtbl.create p.n_pairs in
  let acc = ref [] in
  let found = ref 0 in
  let attempts = ref 0 in
  let max_attempts = p.n_pairs * 100 in
  while !found < p.n_pairs && !attempts < max_attempts do
    incr attempts;
    let src = as_of_rank.(Zipf.sample pop_zipf rng) in
    let dst = as_of_rank.(Zipf.sample dst_zipf rng) in
    if src <> dst && not (Hashtbl.mem seen (src, dst)) then begin
      Hashtbl.replace seen (src, dst) ();
      acc := (src, dst) :: !acc;
      incr found
    end
  done;
  let pairs = Array.of_list (List.rev !acc) in
  if Array.length pairs = 0 then invalid_arg "Demand.create: no usable pair";
  {
    params = p;
    pairs;
    pair_zipf = Zipf.create ~n:(Array.length pairs) ~s:p.pair_zipf_s;
    rank_of_as;
    pop_zipf;
  }

let params t = t.params

let pairs t = t.pairs

let population t v = Zipf.weight t.pop_zipf t.rank_of_as.(v)

(* Pareto with the requested mean: x_min = mean * (alpha-1) / alpha. *)
let size_of rng t =
  let p = t.params in
  let x_min = p.mean_size_mbit *. (p.pareto_alpha -. 1.0) /. p.pareto_alpha in
  Rng.pareto rng ~alpha:p.pareto_alpha ~x_min

let flow t i =
  let p = t.params in
  if i < 0 || i >= p.flows then invalid_arg "Demand.flow: index out of range";
  let rng = Rng.create (Runner.job_seed p.seed i) in
  let arrival_s = Rng.float rng p.horizon_s in
  let pair = Zipf.sample t.pair_zipf rng in
  let size_mbit = size_of rng t in
  { arrival_s; size_mbit; pair }

let sorted_flows t =
  let specs = Array.init t.params.flows (flow t) in
  (* Stable by construction: ties on arrival keep flow-index order. *)
  let order = Array.init t.params.flows Fun.id in
  Array.sort
    (fun a b ->
      let c = compare specs.(a).arrival_s specs.(b).arrival_s in
      if c <> 0 then c else compare a b)
    order;
  Array.map (fun i -> specs.(i)) order

let config_key t =
  let p = t.params in
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "demand:%d/%d/%h/%h/%h/%h/%h/%Ld;" p.n_pairs p.flows p.pair_zipf_s
    p.pop_zipf_s p.mean_size_mbit p.pareto_alpha p.horizon_s p.seed;
  Array.iter (fun (s, d) -> add "%d-%d;" s d) t.pairs;
  Buffer.contents b
