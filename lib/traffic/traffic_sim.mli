(** Checkpointable flow-level traffic simulation.

    A slotted fluid model driven by the discrete-event engine: time
    advances in fixed slots; at each slot boundary the pending fault
    events fire (through {!Fault_driver} into a {!Link_state}), new
    flows are admitted onto strategy-chosen paths, the load-adaptive
    strategy may re-select paths for in-flight flows, and every active
    flow then transfers at its fluid rate — each subflow gets the
    fair share of its bottleneck link ({!Link_load.fair_share}), a
    flow's rate is the sum over its subflows, and completions inside
    the slot are interpolated exactly.

    When a link failure kills every path a flow rides, the flow fails
    over through the same {!Strategy} to the surviving offered paths
    and the event is booked in a {!Recovery} (failover vs blackout,
    exactly the resilience scenario's accounting). All simulation
    state snapshots through {!Supervise.Snapshot} combinators, so runs
    chunk, checkpoint and resume byte-identically like [pathdyn]. *)

type config = {
  graph : Graph.t;
  paths : Fwd_path.t array array;
      (** offered forwarding paths per demand pair (control-plane
          output; index parallel to [Demand.pairs demand]) *)
  latency_ms : float array;  (** per-link propagation latency *)
  demand : Demand.t;
  strategy : Strategy.t;
  width : int;  (** subflows per flow (1 = single-path) *)
  plan : Fault_plan.t;
  capacity_scale : float;
  slot_s : float;  (** slot duration (seconds of virtual time) *)
  slots : int;  (** total slots; should cover the arrival horizon
                    plus drain time *)
  adapt_margin : float;
      (** load-adaptive re-selection threshold: switch when the
          candidate's estimated rate exceeds [margin ×] the current
          rate (values [<= 1] disable re-selection; only the
          [Load_adaptive] strategy re-selects) *)
  metric_labels : (string * string) list;
}

type t

val create : config -> t
(** Raises [Invalid_argument] on inconsistent dimensions (offered
    path sets vs demand pairs, latency table vs links) or
    non-positive knobs. *)

val slot : t -> int
(** Slots fully processed so far. *)

val slots_total : t -> int

val registry : t -> Registry.t
(** The run's metrics: [traffic_fct_s], [traffic_link_utilization]
    (populated by {!finish}), [traffic_path_switches] histograms and
    [traffic_flows_admitted_total] / [traffic_flows_completed_total]
    counters, all under [metric_labels]. *)

val recovery : t -> Recovery.t
(** Failover/blackout accounting (shared with the resilience
    scenario); export with {!Recovery.observe}. *)

val advance : ?watchdog:Watchdog.t -> t -> upto:int -> unit
(** Process slots up to [min upto (slots_total t)]. The watchdog
    deadline is checked at slot boundaries only, so an abandoned job
    leaves consistent state. *)

val finish : t -> unit
(** Terminal accounting after the last {!advance}: closes still-open
    blackouts ({!Recovery.finish}) and fills the link-utilization
    histogram. Must run exactly once, after which the simulation must
    not be advanced or snapshotted again. *)

(** {1 Checkpointing} *)

val encode : t -> string
(** Canonical binary snapshot of the mutable state (not the config). *)

val restore : config -> string -> t
(** Rebuild from {!encode} output; raises {!Snapshot.Corrupt} on
    malformed or config-inconsistent data. *)

val config_key : config -> string
(** SHA-256 fingerprint of everything that shapes the run — graph,
    offered paths, demand, strategy, fault plan, knobs — for
    checkpoint schema compatibility. *)

(** {1 Results} *)

type report = {
  slots_done : int;
  flows_admitted : int;
  flows_rejected : int;
      (** arrivals on pairs the control plane produced no path for *)
  flows_completed : int;
  flows_unfinished : int;  (** still active (or stalled) at the end *)
  mean_fct_s : float;  (** over completed flows; [nan] when none *)
  fct : Histogram.summary;
  path_switches : int;  (** failovers + load-adaptive switches *)
  delivered_mbit : float;
  mean_utilization : float;  (** over links that carried traffic *)
  max_utilization : float;
  recovery : Recovery.summary;
}

val report : t -> report
(** Pure read of the current state (meaningful after {!finish}). *)
