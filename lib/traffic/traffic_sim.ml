type config = {
  graph : Graph.t;
  paths : Fwd_path.t array array;
  latency_ms : float array;
  demand : Demand.t;
  strategy : Strategy.t;
  width : int;
  plan : Fault_plan.t;
  capacity_scale : float;
  slot_s : float;
  slots : int;
  adapt_margin : float;
  metric_labels : (string * string) list;
}

type flow = {
  id : int;
  pair : int;
  arrival_s : float;
  mutable remaining : float;  (** Mbit left to transfer *)
  mutable sel : int array;  (** offered-path indices; [||] = stalled *)
  mutable switches : int;
}

type state = {
  mutable slot : int;
  mutable cursor : int;  (** consumed fault events *)
  mutable next_arrival : int;
  mutable rejected : int;
  mutable active : flow array;  (** admission order *)
  links : Link_state.t;
  load : Link_load.t;
  delivered : float array;  (** Mbit carried, per link *)
  recov : Recovery.t;
  metrics : Registry.t;
  mutable completed : int;
  mutable fct_sum : float;
  mutable switches_total : int;
  mutable finished : bool;
}

type t = {
  config : config;
  arrivals : Demand.flow_spec array;
  events : Fault_plan.event array;
  ctx : Strategy.ctx;
  state : state;
  fct_h : Histogram.t;
  util_h : Histogram.t;
  switch_h : Histogram.t;
  admitted_c : float ref;
  completed_c : float ref;
}

let fct_metric = "traffic_fct_s"

let util_metric = "traffic_link_utilization"

let switch_metric = "traffic_path_switches"

let validate cfg =
  let n_pairs = Array.length (Demand.pairs cfg.demand) in
  if Array.length cfg.paths <> n_pairs then
    invalid_arg "Traffic_sim.create: offered path sets / demand pairs mismatch";
  if Array.length cfg.latency_ms <> Graph.num_links cfg.graph then
    invalid_arg "Traffic_sim.create: latency table / link count mismatch";
  if cfg.width < 1 then invalid_arg "Traffic_sim.create: width < 1";
  if not (cfg.slot_s > 0.0) then invalid_arg "Traffic_sim.create: slot_s <= 0";
  if cfg.slots < 0 then invalid_arg "Traffic_sim.create: slots < 0";
  if not (cfg.capacity_scale > 0.0) then
    invalid_arg "Traffic_sim.create: capacity_scale <= 0"

let make t_of_state cfg =
  validate cfg;
  let metrics = t_of_state.metrics in
  (* Eagerly create every series so reading a report never changes the
     registry (and thus never perturbs a re-saved snapshot). *)
  let labels = cfg.metric_labels in
  let fct_h = Registry.histogram metrics ~labels fct_metric in
  let util_h = Registry.histogram metrics ~labels util_metric in
  let switch_h = Registry.histogram metrics ~labels switch_metric in
  let admitted_c =
    Registry.counter metrics ~labels "traffic_flows_admitted_total"
  in
  let completed_c =
    Registry.counter metrics ~labels "traffic_flows_completed_total"
  in
  {
    config = cfg;
    arrivals = Demand.sorted_flows cfg.demand;
    events = Fault_plan.compile ~graph:cfg.graph cfg.plan;
    ctx = { Strategy.latency_ms = cfg.latency_ms; load = t_of_state.load };
    state = t_of_state;
    fct_h;
    util_h;
    switch_h;
    admitted_c;
    completed_c;
  }

let create cfg =
  validate cfg;
  let state =
    {
      slot = 0;
      cursor = 0;
      next_arrival = 0;
      rejected = 0;
      active = [||];
      links = Link_state.create ~n_links:(Graph.num_links cfg.graph);
      load = Link_load.create ~capacity_scale:cfg.capacity_scale cfg.graph;
      delivered = Array.make (Graph.num_links cfg.graph) 0.0;
      recov = Recovery.create ();
      metrics = Registry.create ();
      completed = 0;
      fct_sum = 0.0;
      switches_total = 0;
      finished = false;
    }
  in
  make state cfg

let slot t = t.state.slot

let slots_total t = t.config.slots

let registry t = t.state.metrics

let recovery t = t.state.recov

(* --- path bookkeeping ------------------------------------------------- *)

let links_of t pair i = t.config.paths.(pair).(i).Fwd_path.links

let add_sel t f =
  Array.iter (fun i -> Link_load.add_path t.state.load (links_of t f.pair i)) f.sel

let remove_sel t f =
  Array.iter
    (fun i -> Link_load.remove_path t.state.load (links_of t f.pair i))
    f.sel

let path_alive t (p : Fwd_path.t) =
  Array.for_all (Link_state.up t.state.links) p.Fwd_path.links

(* Run the configured strategy over the currently-alive subset of the
   pair's offered paths, returning indices into the full offered set. *)
let select_alive t pair =
  let offered = t.config.paths.(pair) in
  let alive_idx = ref [] in
  Array.iteri (fun i p -> if path_alive t p then alive_idx := i :: !alive_idx) offered;
  let alive_idx = Array.of_list (List.rev !alive_idx) in
  if Array.length alive_idx = 0 then [||]
  else
    let alive = Array.map (fun i -> offered.(i)) alive_idx in
    let sel =
      Strategy.select t.config.strategy t.ctx ~width:t.config.width alive
    in
    Array.map (fun j -> alive_idx.(j)) sel

(* Aggregate rate a selection would get, accounting for the load its
   own subflows add on shared links — the comparison metric for
   load-adaptive re-selection. *)
let selection_estimate t pair sel =
  let load = t.state.load in
  let extra = Hashtbl.create 8 in
  let bonus l = match Hashtbl.find_opt extra l with Some k -> k | None -> 0 in
  Array.fold_left
    (fun total i ->
      let links = links_of t pair i in
      let est =
        Array.fold_left
          (fun acc l ->
            Float.min acc
              (Link_load.capacity_mbps load l
              /. float_of_int (Link_load.count load l + bonus l + 1)))
          infinity links
      in
      Array.iter (fun l -> Hashtbl.replace extra l (bonus l + 1)) links;
      total +. est)
    0.0 sel

(* --- fault reactions -------------------------------------------------- *)

let on_down t ~now ~link =
  let st = t.state in
  Recovery.record_event st.recov ~action:Fault_plan.Down;
  Array.iter
    (fun f ->
      if
        Array.length f.sel > 0
        && Array.exists
             (fun i -> Fwd_path.contains_link t.config.paths.(f.pair).(i) link)
             f.sel
      then begin
        Recovery.record_affected st.recov
          ~pair:(Demand.pairs t.config.demand).(f.pair);
        remove_sel t f;
        let sel' = select_alive t f.pair in
        if Array.length sel' = 0 then begin
          f.sel <- [||];
          Recovery.open_blackout st.recov ~now ~pair:(f.id, 0)
        end
        else begin
          f.sel <- sel';
          add_sel t f;
          f.switches <- f.switches + 1;
          st.switches_total <- st.switches_total + 1;
          (* Recovery delay: the failure notification travelling the
             replacement path back to the source. *)
          let lat =
            Strategy.path_latency t.ctx t.config.paths.(f.pair).(sel'.(0))
          in
          Recovery.record_failover st.recov ~recovery_s:(lat /. 1000.0)
        end
      end)
    st.active

let on_up t ~now ~link:_ =
  let st = t.state in
  Recovery.record_event st.recov ~action:Fault_plan.Up;
  Array.iter
    (fun f ->
      if Array.length f.sel = 0 then begin
        let sel' = select_alive t f.pair in
        if Array.length sel' > 0 then begin
          f.sel <- sel';
          add_sel t f;
          Recovery.close_blackout st.recov ~now ~pair:(f.id, 0)
        end
      end)
    st.active

(* --- one slot --------------------------------------------------------- *)

let reconsider t f =
  if Array.length f.sel > 0 then begin
    let st = t.state in
    remove_sel t f;
    let cand = select_alive t f.pair in
    (if Array.length cand > 0 && cand <> f.sel then begin
       let cur = selection_estimate t f.pair f.sel in
       let better = selection_estimate t f.pair cand in
       if better > t.config.adapt_margin *. cur then begin
         f.sel <- cand;
         f.switches <- f.switches + 1;
         st.switches_total <- st.switches_total + 1
       end
     end);
    add_sel t f
  end

let admit t ~t1 =
  let st = t.state in
  let n = Array.length t.arrivals in
  let acc = ref [] in
  while
    st.next_arrival < n && t.arrivals.(st.next_arrival).Demand.arrival_s < t1
  do
    let spec = t.arrivals.(st.next_arrival) in
    let id = st.next_arrival in
    st.next_arrival <- st.next_arrival + 1;
    if Array.length t.config.paths.(spec.Demand.pair) = 0 then
      (* The control plane produced nothing for this pair: the flow is
         unservable, not faulted. *)
      st.rejected <- st.rejected + 1
    else begin
      t.admitted_c := !(t.admitted_c) +. 1.0;
      let f =
        {
          id;
          pair = spec.Demand.pair;
          arrival_s = spec.Demand.arrival_s;
          remaining = spec.Demand.size_mbit;
          sel = [||];
          switches = 0;
        }
      in
      let offered = t.config.paths.(f.pair) in
      let sel = select_alive t f.pair in
      if Array.length sel = 0 then begin
        Recovery.record_affected t.state.recov
          ~pair:(Demand.pairs t.config.demand).(f.pair);
        Recovery.open_blackout t.state.recov ~now:f.arrival_s ~pair:(f.id, 0)
      end
      else begin
        (* The endpoint holds the full (stale) path set: if its
           preferred selection would touch a dead link, it learns so
           from the SCMP on first use and fails over — the admission
           analogue of {!on_down} for flows born inside an outage. *)
        (if not (Array.for_all (path_alive t) offered) then begin
           let pref =
             Strategy.select t.config.strategy t.ctx ~width:t.config.width
               offered
           in
           if
             Array.exists (fun i -> not (path_alive t offered.(i))) pref
           then begin
             Recovery.record_affected st.recov
               ~pair:(Demand.pairs t.config.demand).(f.pair);
             let lat = Strategy.path_latency t.ctx offered.(sel.(0)) in
             Recovery.record_failover st.recov ~recovery_s:(lat /. 1000.0);
             f.switches <- f.switches + 1;
             st.switches_total <- st.switches_total + 1
           end
         end);
        f.sel <- sel;
        add_sel t f
      end;
      acc := f :: !acc
    end
  done;
  if !acc <> [] then
    st.active <- Array.append st.active (Array.of_list (List.rev !acc))

let deliver t f shares dur =
  Array.iteri
    (fun j i ->
      let r = shares.(j) in
      Array.iter
        (fun l -> t.state.delivered.(l) <- t.state.delivered.(l) +. (r *. dur))
        (links_of t f.pair i))
    f.sel

let progress t ~t0 ~t1 =
  let st = t.state in
  if Array.length st.active > 0 then begin
    (* Rates snapshot first: completions release capacity only at the
       next slot, so a flow's rate cannot depend on its position in
       the active array. *)
    let shares =
      Array.map
        (fun f ->
          Array.map (fun i -> Link_load.fair_share st.load (links_of t f.pair i)) f.sel)
        st.active
    in
    let keep = ref [] in
    Array.iteri
      (fun k f ->
        let sh = shares.(k) in
        let rate = Array.fold_left ( +. ) 0.0 sh in
        if rate <= 0.0 then keep := f :: !keep
        else begin
          let start = Float.max t0 f.arrival_s in
          let dt = t1 -. start in
          if rate *. dt >= f.remaining then begin
            let dur = f.remaining /. rate in
            deliver t f sh dur;
            let fct = start +. dur -. f.arrival_s in
            Histogram.observe t.fct_h fct;
            Histogram.observe t.switch_h (float_of_int f.switches);
            t.completed_c := !(t.completed_c) +. 1.0;
            st.completed <- st.completed + 1;
            st.fct_sum <- st.fct_sum +. fct;
            remove_sel t f;
            f.sel <- [||]
          end
          else begin
            deliver t f sh dt;
            f.remaining <- f.remaining -. (rate *. dt);
            keep := f :: !keep
          end
        end)
      st.active;
    st.active <- Array.of_list (List.rev !keep)
  end

let advance ?watchdog t ~upto =
  let st = t.state in
  let cfg = t.config in
  if st.finished then invalid_arg "Traffic_sim.advance: already finished";
  let upto = min upto cfg.slots in
  if st.slot < upto then begin
    let des = Des.create () in
    (* Restore the virtual clock to the horizon the consumed events
       already covered, then install only the unconsumed suffix. *)
    if st.slot > 0 then
      Des.run ~until:(float_of_int (st.slot - 1) *. cfg.slot_s) des;
    let remaining =
      Array.sub t.events st.cursor (Array.length t.events - st.cursor)
    in
    ignore
      (Fault_driver.install
         ~on_event:(fun () -> st.cursor <- st.cursor + 1)
         ~des ~state:st.links ~on_down:(on_down t) ~on_up:(on_up t) remaining);
    for s = st.slot to upto - 1 do
      let t0 = float_of_int s *. cfg.slot_s in
      let t1 = t0 +. cfg.slot_s in
      Des.run ~until:t0 des;
      if cfg.strategy = Strategy.Load_adaptive && cfg.adapt_margin > 1.0 then
        Array.iter (reconsider t) st.active;
      admit t ~t1;
      progress t ~t0 ~t1;
      st.slot <- s + 1;
      (* Check the deadline only at slot boundaries: a timed-out job is
         abandoned with consistent state. *)
      match watchdog with Some w -> Watchdog.check w | None -> ()
    done
  end

let finish t =
  let st = t.state in
  if not st.finished then begin
    st.finished <- true;
    let elapsed = float_of_int st.slot *. t.config.slot_s in
    Recovery.finish st.recov ~now:elapsed;
    if elapsed > 0.0 then
      Array.iteri
        (fun l d ->
          if d > 0.0 then
            Histogram.observe t.util_h
              (d /. (Link_load.capacity_mbps st.load l *. elapsed)))
        st.delivered
  end

(* --- snapshot --------------------------------------------------------- *)

let encode t =
  let st = t.state in
  let w = Snapshot.writer () in
  Snapshot.w_int w st.slot;
  Snapshot.w_int w st.cursor;
  Snapshot.w_int w st.next_arrival;
  Snapshot.w_int w st.rejected;
  Snapshot.w_int w st.completed;
  Snapshot.w_f64 w st.fct_sum;
  Snapshot.w_int w st.switches_total;
  Snapshot.w_bool w st.finished;
  Snapshot.w_arr w
    (fun w f ->
      Snapshot.w_int w f.id;
      Snapshot.w_int w f.pair;
      Snapshot.w_f64 w f.arrival_s;
      Snapshot.w_f64 w f.remaining;
      Snapshot.w_arr w Snapshot.w_int f.sel;
      Snapshot.w_int w f.switches)
    st.active;
  Snapshot.w_link_state w (Link_state.dump st.links);
  Snapshot.w_arr w Snapshot.w_f64 st.delivered;
  Snapshot.w_recovery w (Recovery.dump st.recov);
  Snapshot.w_registry w (Registry.dump st.metrics);
  Snapshot.contents w

let restore cfg data =
  validate cfg;
  let r = Snapshot.reader data in
  let slot = Snapshot.r_int r in
  let cursor = Snapshot.r_int r in
  let next_arrival = Snapshot.r_int r in
  let rejected = Snapshot.r_int r in
  let completed = Snapshot.r_int r in
  let fct_sum = Snapshot.r_f64 r in
  let switches_total = Snapshot.r_int r in
  let finished = Snapshot.r_bool r in
  let active =
    Snapshot.r_arr r (fun r ->
        let id = Snapshot.r_int r in
        let pair = Snapshot.r_int r in
        let arrival_s = Snapshot.r_f64 r in
        let remaining = Snapshot.r_f64 r in
        let sel = Snapshot.r_arr r Snapshot.r_int in
        let switches = Snapshot.r_int r in
        { id; pair; arrival_s; remaining; sel; switches })
  in
  let links = Link_state.of_dump (Snapshot.r_link_state r) in
  let delivered = Snapshot.r_arr r Snapshot.r_f64 in
  let recov = Recovery.of_dump (Snapshot.r_recovery r) in
  let metrics = Registry.of_dump (Snapshot.r_registry r) in
  Snapshot.r_end r;
  let corrupt msg = raise (Snapshot.Corrupt ("traffic snapshot: " ^ msg)) in
  let n_pairs = Array.length (Demand.pairs cfg.demand) in
  if Link_state.n_links links <> Graph.num_links cfg.graph then
    corrupt "link count / graph mismatch";
  if Array.length delivered <> Graph.num_links cfg.graph then
    corrupt "delivered array / graph mismatch";
  if slot < 0 || slot > cfg.slots then corrupt "slot out of range";
  if next_arrival < 0 || next_arrival > (Demand.params cfg.demand).Demand.flows
  then corrupt "arrival cursor out of range";
  let load = Link_load.create ~capacity_scale:cfg.capacity_scale cfg.graph in
  Array.iter
    (fun f ->
      if f.pair < 0 || f.pair >= n_pairs then corrupt "flow pair out of range";
      Array.iter
        (fun i ->
          if i < 0 || i >= Array.length cfg.paths.(f.pair) then
            corrupt "flow path index out of range")
        f.sel;
      (* Link loads are derived state: replay the active selections. *)
      Array.iter
        (fun i -> Link_load.add_path load cfg.paths.(f.pair).(i).Fwd_path.links)
        f.sel)
    active;
  let state =
    {
      slot;
      cursor;
      next_arrival;
      rejected;
      active;
      links;
      load;
      delivered;
      recov;
      metrics;
      completed;
      fct_sum;
      switches_total;
      finished;
    }
  in
  let t = make state cfg in
  if cursor < 0 || cursor > Array.length t.events then
    corrupt "fault cursor out of range";
  t

let config_key cfg =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "graph:%d/%d;" (Graph.n cfg.graph) (Graph.num_links cfg.graph);
  for l = 0 to Graph.num_links cfg.graph - 1 do
    let lk = Graph.link cfg.graph l in
    add "%d-%d/%h;" lk.Graph.a lk.Graph.b cfg.latency_ms.(l)
  done;
  Array.iter
    (fun offered ->
      add "pair:";
      Array.iter (fun p -> add "%s;" (Fwd_path.key p)) offered)
    cfg.paths;
  add "demand:%s;" (Demand.config_key cfg.demand);
  add "strategy:%s/%d/%h;" (Strategy.name cfg.strategy) cfg.width
    cfg.adapt_margin;
  add "knobs:%h/%h/%d;" cfg.capacity_scale cfg.slot_s cfg.slots;
  add "plan:%Ld;" cfg.plan.Fault_plan.seed;
  Array.iter
    (fun (e : Fault_plan.event) ->
      add "%h/%d/%s;" e.Fault_plan.time e.Fault_plan.link
        (match e.Fault_plan.action with
        | Fault_plan.Down -> "d"
        | Fault_plan.Up -> "u"))
    (Fault_plan.compile ~graph:cfg.graph cfg.plan);
  List.iter (fun (k, v) -> add "label:%s=%s;" k v) cfg.metric_labels;
  Sha256.hex (Sha256.digest (Buffer.contents b))

(* --- report ----------------------------------------------------------- *)

type report = {
  slots_done : int;
  flows_admitted : int;
  flows_rejected : int;
  flows_completed : int;
  flows_unfinished : int;
  mean_fct_s : float;
  fct : Histogram.summary;
  path_switches : int;
  delivered_mbit : float;
  mean_utilization : float;
  max_utilization : float;
  recovery : Recovery.summary;
}

let report t =
  let st = t.state in
  let elapsed = float_of_int st.slot *. t.config.slot_s in
  let used = ref 0 and util_sum = ref 0.0 and util_max = ref 0.0 in
  if elapsed > 0.0 then
    Array.iteri
      (fun l d ->
        if d > 0.0 then begin
          let u = d /. (Link_load.capacity_mbps st.load l *. elapsed) in
          incr used;
          util_sum := !util_sum +. u;
          if u > !util_max then util_max := u
        end)
      st.delivered;
  {
    slots_done = st.slot;
    flows_admitted = st.next_arrival - st.rejected;
    flows_rejected = st.rejected;
    flows_completed = st.completed;
    flows_unfinished = Array.length st.active;
    mean_fct_s =
      (if st.completed = 0 then Float.nan
       else st.fct_sum /. float_of_int st.completed);
    fct = Histogram.summarize t.fct_h;
    path_switches = st.switches_total;
    delivered_mbit = Array.fold_left ( +. ) 0.0 st.delivered;
    mean_utilization =
      (if !used = 0 then 0.0 else !util_sum /. float_of_int !used);
    max_utilization = !util_max;
    recovery = Recovery.summary st.recov;
  }
