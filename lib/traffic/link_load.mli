(** Capacity-aware link loading.

    Every topology link gets a deterministic capacity derived from its
    business relationship and the provider's tier (core trunks are
    fattest, stub access links thinnest), scaled uniformly by the
    [--capacity-scale] knob. The loader tracks how many subflows
    currently ride each link and answers the fluid-model rate
    questions the engine and the load-adaptive strategy ask: what a
    subflow on a path gets now (max-min-style fair share of its
    bottleneck), and what a {e new} subflow would get if it joined —
    the congestion-feedback signal path selection steers by. *)

type t

val create : ?capacity_scale:float -> Graph.t -> t
(** [capacity_scale] (default 1.0, must be positive) multiplies every
    link capacity. *)

val capacity_mbps : t -> int -> float
(** Capacity of a link in Mbit/s (scaled). *)

val count : t -> int -> int
(** Subflows currently riding the link. *)

val add_path : t -> int array -> unit
(** Register one subflow on every link of a path. *)

val remove_path : t -> int array -> unit
(** Unregister; raises [Invalid_argument] if a count would go
    negative (a remove without a matching add). *)

val fair_share : t -> int array -> float
(** Rate of one subflow {e already counted} on the path: the minimum
    over its links of [capacity / count]. [infinity] on an empty
    path. *)

val admission_estimate : t -> int array -> float
(** Rate a new subflow would get on the path, i.e. the minimum of
    [capacity / (count + 1)] over its links — used by the
    load-adaptive strategy to avoid saturated links. *)

val bottleneck : t -> int array -> int
(** The first link on the path realising {!fair_share}; the thinnest
    link when the whole path is idle; [-1] on an empty path. *)

val n_links : t -> int

val clear : t -> unit
(** Zero every count (capacities are kept). *)
