type t = Latency_greedy | Diversity_max | Load_adaptive

let all = [ Latency_greedy; Diversity_max; Load_adaptive ]

let name = function
  | Latency_greedy -> "latency-greedy"
  | Diversity_max -> "diversity-max"
  | Load_adaptive -> "load-adaptive"

let of_string s =
  match List.find_opt (fun t -> name t = s) all with
  | Some t -> Ok t
  | None ->
      Error
        (Printf.sprintf "unknown strategy %S (expected %s)" s
           (String.concat ", " (List.map name all)))

type ctx = { latency_ms : float array; load : Link_load.t }

let path_latency ctx (p : Fwd_path.t) =
  Array.fold_left (fun acc l -> acc +. ctx.latency_ms.(l)) 0.0 p.links

(* Indices sorted by (latency, index) — the canonical preference order
   latency-greedy uses directly and the other strategies fall back
   to on ties. *)
let by_latency ctx offered =
  let lat = Array.map (path_latency ctx) offered in
  let order = Array.init (Array.length offered) Fun.id in
  Array.sort
    (fun a b ->
      let c = compare lat.(a) lat.(b) in
      if c <> 0 then c else compare a b)
    order;
  (order, lat)

let take_width width order =
  Array.sub order 0 (min width (Array.length order))

let select_latency ctx ~width offered =
  let order, _ = by_latency ctx offered in
  take_width width order

(* Greedy maximal link-disjointness: seed with the lowest-latency
   path, then repeatedly add the candidate sharing the fewest links
   with everything chosen so far (ties broken by latency, then
   index). Stops early only when the offered set runs out. *)
let select_diversity ctx ~width offered =
  let order, lat = by_latency ctx offered in
  let n = Array.length order in
  if n = 0 then [||]
  else begin
    let used = Hashtbl.create 16 in
    let mark i =
      Array.iter (fun l -> Hashtbl.replace used l ()) offered.(i).Fwd_path.links
    in
    let overlap i =
      Array.fold_left
        (fun acc l -> if Hashtbl.mem used l then acc + 1 else acc)
        0
        offered.(i).Fwd_path.links
    in
    let chosen = ref [ order.(0) ] in
    mark order.(0);
    let taken = Hashtbl.create 16 in
    Hashtbl.replace taken order.(0) ();
    while List.length !chosen < min width n do
      let best = ref (-1) and best_key = ref (max_int, infinity, max_int) in
      Array.iter
        (fun i ->
          if not (Hashtbl.mem taken i) then begin
            let key = (overlap i, lat.(i), i) in
            if key < !best_key then begin
              best_key := key;
              best := i
            end
          end)
        order;
      Hashtbl.replace taken !best ();
      mark !best;
      chosen := !best :: !chosen
    done;
    Array.of_list (List.rev !chosen)
  end

(* Maximise the rate a new subflow would actually get, accounting for
   the load the already-chosen subflows of this same selection will
   add ([extra]). Congestion feedback enters through
   [Link_load.admission_estimate]'s counts. *)
let select_adaptive ctx ~width offered =
  let n = Array.length offered in
  if n = 0 then [||]
  else begin
    let _, lat = by_latency ctx offered in
    let extra = Hashtbl.create 16 in
    let est i =
      Array.fold_left
        (fun acc l ->
          let bonus =
            match Hashtbl.find_opt extra l with Some k -> k | None -> 0
          in
          Float.min acc
            (Link_load.capacity_mbps ctx.load l
            /. float_of_int (Link_load.count ctx.load l + bonus + 1)))
        infinity
        offered.(i).Fwd_path.links
    in
    let taken = Hashtbl.create 16 in
    let chosen = ref [] in
    for _ = 1 to min width n do
      let best = ref (-1) and best_key = ref (neg_infinity, infinity, max_int) in
      for i = 0 to n - 1 do
        if not (Hashtbl.mem taken i) then begin
          (* higher estimate wins; ties prefer lower latency, then index *)
          let key = (est i, -.lat.(i), -i) in
          if
            !best < 0
            ||
            let e, l, j = !best_key in
            let e', l', j' = key in
            e' > e || (e' = e && (l' > l || (l' = l && j' > j)))
          then begin
            best_key := key;
            best := i
          end
        end
      done;
      Hashtbl.replace taken !best ();
      Array.iter
        (fun l ->
          let k =
            match Hashtbl.find_opt extra l with Some k -> k | None -> 0
          in
          Hashtbl.replace extra l (k + 1))
        offered.(!best).Fwd_path.links;
      chosen := !best :: !chosen
    done;
    Array.of_list (List.rev !chosen)
  end

let select t ctx ~width offered =
  if width < 1 then invalid_arg "Strategy.select: width < 1";
  if Array.length offered = 0 then [||]
  else
    match t with
    | Latency_greedy -> select_latency ctx ~width offered
    | Diversity_max -> select_diversity ctx ~width offered
    | Load_adaptive -> select_adaptive ctx ~width offered
