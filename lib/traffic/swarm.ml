type params = {
  transfers : int;
  n_pairs : int;
  file_mbit : float;
  width : int;
  horizon_s : float;
  drain_s : float;
  seed : int64;
}

let default_params =
  {
    transfers = 2_000;
    n_pairs = 40;
    file_mbit = 400.0;
    width = 3;
    horizon_s = 600.0;
    drain_s = 300.0;
    seed = 0x5EEDL;
  }

let validate p =
  if p.transfers < 0 then invalid_arg "Swarm.demand: transfers < 0";
  if p.n_pairs <= 0 then invalid_arg "Swarm.demand: n_pairs <= 0";
  if not (p.file_mbit > 0.0) then invalid_arg "Swarm.demand: file_mbit <= 0";
  if p.width < 1 then invalid_arg "Swarm.demand: width < 1";
  if not (p.horizon_s > 0.0) then invalid_arg "Swarm.demand: horizon_s <= 0";
  if p.drain_s < 0.0 then invalid_arg "Swarm.demand: drain_s < 0"

let demand g p =
  validate p;
  Demand.create g
    {
      Demand.default_params with
      Demand.n_pairs = p.n_pairs;
      flows = p.transfers;
      mean_size_mbit = p.file_mbit;
      (* Heavier shape than the demand default: file sizes cluster
         around the mean instead of a long mice tail, so completion
         times compare like-for-like across modes. *)
      pareto_alpha = 2.5;
      horizon_s = p.horizon_s;
      seed = p.seed;
    }

type mode = Single_path | Multi_diversity | Multi_adaptive

let modes = [ Single_path; Multi_diversity; Multi_adaptive ]

let mode_name = function
  | Single_path -> "single"
  | Multi_diversity -> "multi-div"
  | Multi_adaptive -> "multi-load"

let cell_config ~graph ~paths ~latency_ms ~demand ~capacity_scale ~slot_s p mode
    =
  validate p;
  let strategy, width =
    match mode with
    | Single_path -> (Strategy.Diversity_max, 1)
    | Multi_diversity -> (Strategy.Diversity_max, p.width)
    | Multi_adaptive -> (Strategy.Load_adaptive, p.width)
  in
  {
    Traffic_sim.graph;
    paths;
    latency_ms;
    demand;
    strategy;
    width;
    (* No fault injection inside the swarm cells: the comparison
       isolates the multipath effect. *)
    plan = Fault_plan.plan [];
    capacity_scale;
    slot_s;
    slots =
      int_of_float (Float.ceil ((p.horizon_s +. p.drain_s) /. slot_s)) + 1;
    adapt_margin = (match mode with Multi_adaptive -> 1.25 | _ -> 0.0);
    metric_labels = [ ("workload", "swarm"); ("mode", mode_name mode) ];
  }

type comparison = {
  single : Traffic_sim.report;
  multi_diversity : Traffic_sim.report;
  multi_adaptive : Traffic_sim.report;
  speedup_diversity : float;
  speedup_adaptive : float;
}

let speedup ~single ~multi =
  if
    single.Traffic_sim.flows_completed = 0
    || multi.Traffic_sim.flows_completed = 0
  then Float.nan
  else single.Traffic_sim.mean_fct_s /. multi.Traffic_sim.mean_fct_s

let compare ~single ~multi_diversity ~multi_adaptive =
  {
    single;
    multi_diversity;
    multi_adaptive;
    speedup_diversity = speedup ~single ~multi:multi_diversity;
    speedup_adaptive = speedup ~single ~multi:multi_adaptive;
  }
