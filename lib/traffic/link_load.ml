type t = {
  capacity : float array;  (** per link, Mbit/s, already scaled *)
  counts : int array;  (** subflows currently riding each link *)
}

(* Capacities in Mbit/s by business relationship. Core trunks are
   fattest; provider-customer links thin out with the provider's tier;
   peering sits in between. The absolute numbers only matter relative
   to the demand model's flow sizes — they are chosen so that popular
   links run into contention at the default scales. *)
let base_capacity g l =
  let open Graph in
  match l.rel with
  | Core -> 10_000.0
  | Peering -> 1_500.0
  | Provider_customer -> (
      match (as_info g l.a).tier with
      | 1 -> 4_000.0
      | 2 -> 2_000.0
      | _ -> 1_000.0)

let create ?(capacity_scale = 1.0) g =
  if not (capacity_scale > 0.0) then
    invalid_arg "Link_load.create: capacity_scale <= 0";
  let m = Graph.num_links g in
  {
    capacity =
      Array.init m (fun i -> base_capacity g (Graph.link g i) *. capacity_scale);
    counts = Array.make m 0;
  }

let capacity_mbps t l = t.capacity.(l)

let count t l = t.counts.(l)

let n_links t = Array.length t.capacity

let add_path t links =
  Array.iter (fun l -> t.counts.(l) <- t.counts.(l) + 1) links

let remove_path t links =
  Array.iter
    (fun l ->
      if t.counts.(l) = 0 then
        invalid_arg "Link_load.remove_path: count underflow";
      t.counts.(l) <- t.counts.(l) - 1)
    links

let fair_share t links =
  Array.fold_left
    (fun acc l ->
      let c = t.counts.(l) in
      if c = 0 then acc else Float.min acc (t.capacity.(l) /. float_of_int c))
    infinity links

let admission_estimate t links =
  Array.fold_left
    (fun acc l ->
      Float.min acc (t.capacity.(l) /. float_of_int (t.counts.(l) + 1)))
    infinity links

let bottleneck t links =
  let best = ref (-1) and best_rate = ref infinity in
  Array.iter
    (fun l ->
      let c = t.counts.(l) in
      if c > 0 then begin
        let r = t.capacity.(l) /. float_of_int c in
        if r < !best_rate then begin
          best_rate := r;
          best := l
        end
      end)
    links;
  (* On an all-idle path report the thinnest link instead of nothing:
     callers use this for labelling, not accounting. *)
  if !best < 0 && Array.length links > 0 then begin
    let thin = ref links.(0) in
    Array.iter (fun l -> if t.capacity.(l) < t.capacity.(!thin) then thin := l) links;
    best := !thin
  end;
  !best

let clear t = Array.fill t.counts 0 (Array.length t.counts) 0
