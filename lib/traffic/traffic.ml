(** Flow-level traffic workload engine.

    Facade over the subsystem's parts, so callers can say
    [Traffic.Demand.create], [Traffic.Sim.advance], …:

    - {!Demand}: Zipf-shaped endpoint-pair demand with per-flow
      SplitMix64 attribute derivation;
    - {!Link_load}: per-link capacities and fluid fair-share rates;
    - {!Strategy}: pluggable path selection (latency-greedy,
      diversity-maximizing, load-adaptive);
    - {!Sim} ({!Traffic_sim}): the checkpointable slotted simulation;
    - {!Swarm}: the single-path vs multipath file-transfer
      comparison workload. *)

module Demand = Demand
module Link_load = Link_load
module Strategy = Strategy
module Sim = Traffic_sim
module Swarm = Swarm
