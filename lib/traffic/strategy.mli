(** Pluggable path-selection strategies.

    Endpoints receive the [Fwd_path] set the control plane actually
    produced for their pair and must decide which path(s) to put a
    flow on. Following the axiomatic analysis of path-selection
    strategies, three archetypes are implemented:

    - {e latency-greedy} — always the lowest-latency paths; optimal
      for an isolated flow, herds popular pairs onto the same links;
    - {e diversity-maximizing} — a greedy maximally link-disjoint
      subset, the BitTorrent-over-SCION recipe for aggregating
      capacity across disjoint bottlenecks;
    - {e load-adaptive} — maximizes the admission-rate estimate from
      {!Link_load}, i.e. steers by congestion feedback.

    Selection is a deterministic pure function of the offered set,
    the latency table and the current link loads — strategies carry
    no hidden state, which is what makes sharded runs reproducible. *)

type t = Latency_greedy | Diversity_max | Load_adaptive

val all : t list

val name : t -> string
(** [latency-greedy], [diversity-max] or [load-adaptive] — the
    [--strategy] flag spelling. *)

val of_string : string -> (t, string) result

type ctx = {
  latency_ms : float array;  (** per-link propagation latency *)
  load : Link_load.t;
}

val path_latency : ctx -> Fwd_path.t -> float
(** One-way propagation latency: sum over the path's links. *)

val select : t -> ctx -> width:int -> Fwd_path.t array -> int array
(** [select s ctx ~width offered] returns the indices of the chosen
    paths, best first: at most [width] distinct indices into
    [offered], at least one when [offered] is non-empty, [| |]
    otherwise. Never invents paths and never mutates [ctx.load].
    Raises [Invalid_argument] when [width < 1]. *)
