(** Flow-level traffic demand.

    The workload engine needs {e who talks to whom, how much, and
    when}. Following the paper's §4.1 observation that Internet
    traffic concentrates on few popular destinations, demand is
    Zipf-shaped twice over: every AS carries a population of endpoints
    proportional to a Zipf weight of its degree rank, and destination
    popularity follows an independent Zipf law over the same ranking —
    so a handful of well-connected ASes source and sink most flows,
    exactly the regime in which path-selection strategy choices become
    visible on link load.

    Flow attributes are derived {e per flow index} from the SplitMix64
    partitioning ({!Runner.job_seed}): flow [i]'s arrival time, size
    and endpoint pair depend only on [(seed, i)], never on generation
    order — the property that keeps sharded and resumed runs
    byte-identical. *)

type params = {
  n_pairs : int;  (** distinct endpoint pairs demand concentrates on *)
  flows : int;  (** flows generated over the horizon *)
  pair_zipf_s : float;  (** popularity exponent across pairs *)
  pop_zipf_s : float;  (** population exponent across degree ranks *)
  mean_size_mbit : float;  (** mean flow size (Pareto-distributed) *)
  pareto_alpha : float;  (** Pareto shape; must be > 1 *)
  horizon_s : float;  (** arrivals fall uniformly in [0, horizon) *)
  seed : int64;
}

val default_params : params
(** 200 pairs, 10 000 flows, pair/population exponents 1.1/1.0, 40
    Mbit mean size with shape 1.5, one-hour horizon. *)

type t

type flow_spec = {
  arrival_s : float;
  size_mbit : float;
  pair : int;  (** index into {!pairs} *)
}

val create : Graph.t -> params -> t
(** Sample the endpoint-pair set against the graph. Raises
    [Invalid_argument] on a graph with fewer than two ASes or
    non-positive parameters. *)

val params : t -> params

val pairs : t -> (int * int) array
(** The distinct (src, dst) AS pairs, most popular first. Pair [k]
    receives a Zipf([pair_zipf_s]) share of the flows. *)

val flow : t -> int -> flow_spec
(** Attributes of flow [i] (any [0 <= i < flows]), a pure function of
    [(seed, i)]. *)

val sorted_flows : t -> flow_spec array
(** All flows sorted by arrival time (ties by flow index) — the
    admission order the simulator consumes. *)

val population : t -> int -> float
(** Normalised population weight of an AS (endpoint density). *)

val config_key : t -> string
(** Canonical description of the demand (params + pair set) for
    checkpoint schema fingerprints. *)
