(** Core SCION identifiers (§2.1).

    Routing is based on the [(ISD, AS)] tuple; host addressing appends a
    local address that inter-domain routing never inspects. AS numbers
    live in a 48-bit namespace that extends today's 32-bit BGP space. *)

type isd = int
(** Isolation Domain number (16-bit in SCION; we keep [int]). *)

type asn = int
(** AS number in the 48-bit SCION namespace. *)

type ia = { isd : isd; asn : asn }
(** The [(ISD, AS)] routing tuple. *)

type iface = int
(** AS-local inter-domain interface identifier. Interface 0 is reserved
    to mean "this AS" (origination / termination). *)

val ia : isd -> asn -> ia

val pp_ia : Format.formatter -> ia -> unit
(** Prints as ["<isd>-<asn>"], e.g. ["1-42"]. *)

val ia_to_string : ia -> string

val ia_of_string : string -> ia option
(** Parses ["<isd>-<asn>"]. *)

val compare_ia : ia -> ia -> int

val equal_ia : ia -> ia -> bool

val max_bgp_asn : int
(** 2^32 - 1: the largest AS number inherited from today's Internet. *)

val max_scion_asn : int
(** 2^48 - 1: the largest AS number in the extended SCION namespace. *)

val valid_asn : asn -> bool
(** Within the 48-bit namespace and non-negative. *)

type host_addr =
  | Ipv4 of int32
  | Ipv6 of string  (** 16 raw bytes *)
  | Mac of string  (** 6 raw bytes *)
(** Local addresses: not globally unique, never used in inter-domain
    forwarding (§2.1). *)

type endpoint = { host_ia : ia; local : host_addr }
(** The full [(ISD, AS, local address)] 3-tuple. *)

val pp_endpoint : Format.formatter -> endpoint -> unit
