(* SCION PCB *)

let pcb_header_bytes = 32
let hop_field_bytes = 16
let as_entry_meta_bytes = 48

let pcb_bytes ~hops ~signature_bytes =
  pcb_header_bytes + (hops * (hop_field_bytes + as_entry_meta_bytes + signature_bytes))

let path_segment_registration_bytes ~hops =
  (* Registration re-sends the segment plus a small request header. *)
  16 + pcb_bytes ~hops ~signature_bytes:96

(* BGP, RFC 4271 *)

let bgp_header_bytes = 19

let bgp_update_bytes ~as_path_len ~prefixes =
  let origin = 4 in
  let as_path = 3 + 2 + (4 * as_path_len) in
  let next_hop = 7 in
  let nlri = 5 * prefixes in
  bgp_header_bytes + 2 + 2 + origin + as_path + next_hop + nlri

let bgp_withdraw_bytes ~prefixes = bgp_header_bytes + 2 + (5 * prefixes) + 2

(* BGPsec, RFC 8205 *)

let bgpsec_update_bytes ~as_path_len ~signature_bytes =
  let base = bgp_header_bytes + 2 + 2 + 4 (* ORIGIN *) + 7 (* NEXT_HOP *) + 5 (* NLRI *) in
  let secure_path = 2 + (as_path_len * 6) in
  let signature_block = 3 + (as_path_len * (20 + 2 + signature_bytes)) in
  base + secure_path + signature_block
