(** Wire-size constants used for control-plane overhead accounting.

    SCION sizes follow the open-source SCION control-plane message
    layout (header + per-AS entries, each carrying a hop field and an
    ECDSA-P384 signature); BGP sizes follow RFC 4271 field definitions;
    BGPsec sizes follow RFC 8205 (one Secure_Path segment plus one
    signature per hop, no aggregation). All sizes in bytes. *)

(** {1 SCION PCB sizes} *)

val pcb_header_bytes : int
(** Fixed PCB part: segment info (timestamp, segment id, origin IA). *)

val hop_field_bytes : int
(** One hop field: ingress/egress interface ids, expiry, 6-byte MAC. *)

val as_entry_meta_bytes : int
(** Per-AS entry metadata besides the hop field and signature: IA, MTU,
    extension flags, certificate identifier. *)

val pcb_bytes : hops:int -> signature_bytes:int -> int
(** Total PCB wire size for a path of [hops] AS entries, each signed
    with a signature of [signature_bytes]. *)

val path_segment_registration_bytes : hops:int -> int
(** Size of registering one segment at a core path server (§4.1:
    roughly 10 KB per (de-)registration batch for typical ASes). *)

(** {1 BGP (RFC 4271) sizes} *)

val bgp_header_bytes : int
(** 19: marker (16) + length (2) + type (1). *)

val bgp_update_bytes : as_path_len:int -> prefixes:int -> int
(** An UPDATE carrying [prefixes] NLRI entries that share one attribute
    set with a 4-byte-ASN AS_PATH of [as_path_len] hops: header +
    withdrawn-len (2) + attrs-len (2) + ORIGIN (4) + AS_PATH
    (3 + 2 + 4·len) + NEXT_HOP (7) + NLRI (5 each, /24-ish). *)

val bgp_withdraw_bytes : prefixes:int -> int
(** An UPDATE that only withdraws [prefixes] routes. *)

(** {1 BGPsec (RFC 8205) sizes} *)

val bgpsec_update_bytes : as_path_len:int -> signature_bytes:int -> int
(** A BGPsec UPDATE for a single prefix (no aggregation possible):
    BGP header + base attributes + per-hop Secure_Path segment (6) +
    per-hop Signature_Segment (SKI 20 + sig-len 2 + signature). *)
