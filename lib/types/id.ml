type isd = int
type asn = int
type ia = { isd : isd; asn : asn }
type iface = int

let ia isd asn = { isd; asn }

let pp_ia fmt { isd; asn } = Format.fprintf fmt "%d-%d" isd asn

let ia_to_string i = Format.asprintf "%a" pp_ia i

let ia_of_string s =
  match String.index_opt s '-' with
  | None -> None
  | Some pos -> (
      let isd_s = String.sub s 0 pos in
      let asn_s = String.sub s (pos + 1) (String.length s - pos - 1) in
      match (int_of_string_opt isd_s, int_of_string_opt asn_s) with
      | Some isd, Some asn when isd >= 0 && asn >= 0 -> Some { isd; asn }
      | _ -> None)

let compare_ia a b =
  match compare a.isd b.isd with 0 -> compare a.asn b.asn | c -> c

let equal_ia a b = compare_ia a b = 0

let max_bgp_asn = (1 lsl 32) - 1
let max_scion_asn = (1 lsl 48) - 1

let valid_asn asn = asn >= 0 && asn <= max_scion_asn

type host_addr = Ipv4 of int32 | Ipv6 of string | Mac of string

type endpoint = { host_ia : ia; local : host_addr }

let pp_host_addr fmt = function
  | Ipv4 v ->
      let b i = Int32.to_int (Int32.logand (Int32.shift_right_logical v (8 * i)) 0xFFl) in
      Format.fprintf fmt "%d.%d.%d.%d" (b 3) (b 2) (b 1) (b 0)
  | Ipv6 raw -> Format.fprintf fmt "ipv6:%d-bytes" (String.length raw)
  | Mac raw -> Format.fprintf fmt "mac:%d-bytes" (String.length raw)

let pp_endpoint fmt { host_ia; local } =
  Format.fprintf fmt "%a,%a" pp_ia host_ia pp_host_addr local
