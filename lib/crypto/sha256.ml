let digest_size = 32
let block_size = 64

let k =
  [|
    0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
    0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
    0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
    0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
    0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
    0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
    0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
    0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
    0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
    0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
    0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
    0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
    0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l;
  |]

type ctx = {
  h : int32 array; (* 8 words of chaining state *)
  buf : Bytes.t; (* partial block, [block_size] bytes *)
  mutable buf_len : int;
  mutable total : int64; (* total message bytes absorbed *)
  w : int32 array; (* message schedule scratch, 64 words *)
}

let init () =
  {
    h =
      [|
        0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl;
        0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l;
      |];
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0L;
    w = Array.make 64 0l;
  }

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let ( ^^ ) = Int32.logxor
let ( &&& ) = Int32.logand
let ( ||| ) = Int32.logor
let ( +% ) = Int32.add
let lnot32 = Int32.lognot

(* Compress one 64-byte block located at [off] in [data]. *)
let compress ctx data off =
  let w = ctx.w in
  for t = 0 to 15 do
    let base = off + (t * 4) in
    let b i = Int32.of_int (Char.code (Bytes.get data (base + i))) in
    w.(t) <-
      Int32.shift_left (b 0) 24
      ||| Int32.shift_left (b 1) 16
      ||| Int32.shift_left (b 2) 8
      ||| b 3
  done;
  for t = 16 to 63 do
    let s0 = rotr w.(t - 15) 7 ^^ rotr w.(t - 15) 18 ^^ Int32.shift_right_logical w.(t - 15) 3 in
    let s1 = rotr w.(t - 2) 17 ^^ rotr w.(t - 2) 19 ^^ Int32.shift_right_logical w.(t - 2) 10 in
    w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
  done;
  let a = ref ctx.h.(0) and b = ref ctx.h.(1) and c = ref ctx.h.(2) in
  let d = ref ctx.h.(3) and e = ref ctx.h.(4) and f = ref ctx.h.(5) in
  let g = ref ctx.h.(6) and h = ref ctx.h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 ^^ rotr !e 11 ^^ rotr !e 25 in
    let ch = (!e &&& !f) ^^ (lnot32 !e &&& !g) in
    let t1 = !h +% s1 +% ch +% k.(t) +% w.(t) in
    let s0 = rotr !a 2 ^^ rotr !a 13 ^^ rotr !a 22 in
    let maj = (!a &&& !b) ^^ (!a &&& !c) ^^ (!b &&& !c) in
    let t2 = s0 +% maj in
    h := !g;
    g := !f;
    f := !e;
    e := !d +% t1;
    d := !c;
    c := !b;
    b := !a;
    a := t1 +% t2
  done;
  ctx.h.(0) <- ctx.h.(0) +% !a;
  ctx.h.(1) <- ctx.h.(1) +% !b;
  ctx.h.(2) <- ctx.h.(2) +% !c;
  ctx.h.(3) <- ctx.h.(3) +% !d;
  ctx.h.(4) <- ctx.h.(4) +% !e;
  ctx.h.(5) <- ctx.h.(5) +% !f;
  ctx.h.(6) <- ctx.h.(6) +% !g;
  ctx.h.(7) <- ctx.h.(7) +% !h

let update ctx s =
  let len = String.length s in
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref 0 in
  (* Fill a partial buffered block first. *)
  if ctx.buf_len > 0 then begin
    let need = block_size - ctx.buf_len in
    let take = min need len in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  (* Whole blocks straight from the input. *)
  let scratch = ctx.buf in
  while len - !pos >= block_size do
    Bytes.blit_string s !pos scratch 0 block_size;
    compress ctx scratch 0;
    pos := !pos + block_size
  done;
  if ctx.buf_len = 0 && len - !pos > 0 then begin
    Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let finalize ctx =
  let bit_len = Int64.mul ctx.total 8L in
  (* Padding: 0x80, zeros, 8-byte big-endian bit length. *)
  let pad_len =
    let rem = (ctx.buf_len + 1 + 8) mod block_size in
    if rem = 0 then 1 else 1 + (block_size - rem)
  in
  let padding = Bytes.make (pad_len + 8) '\000' in
  Bytes.set padding 0 '\x80';
  for i = 0 to 7 do
    Bytes.set padding
      (pad_len + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len ((7 - i) * 8)) 0xFFL)))
  done;
  (* update without touching [total] semantics: total is only read above. *)
  update ctx (Bytes.to_string padding);
  assert (ctx.buf_len = 0);
  let out = Bytes.create digest_size in
  for i = 0 to 7 do
    let word = ctx.h.(i) in
    for j = 0 to 3 do
      Bytes.set out
        ((i * 4) + j)
        (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical word ((3 - j) * 8)) 0xFFl)))
    done
  done;
  Bytes.to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let hex s =
  let d = digest s in
  let buf = Buffer.create (2 * digest_size) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf
