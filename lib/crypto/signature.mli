(** Simulated digital signatures with exact wire-size accounting.

    The evaluation (§5) only depends on the {e size} of signatures
    (ECDSA-P384: 96-byte raw signatures) and on sign/verify acts being
    performed per hop. In this closed simulation we realise signatures
    as deterministic HMAC-SHA256 tags keyed by the signer's private key
    and padded to the scheme's wire size; verification recomputes the
    tag through a keystore that stands in for the SCION control-plane
    PKI. See DESIGN.md §2 for the substitution rationale. *)

type scheme = Ecdsa_p384 | Ecdsa_p256 | Ed25519

val signature_size : scheme -> int
(** Raw signature wire size in bytes: 96 / 64 / 64. *)

val public_key_size : scheme -> int
(** Uncompressed public key size in bytes: 97 / 65 / 32. *)

type keypair
(** Private signing key bound to a scheme and a key identifier. *)

type keystore
(** Maps key identifiers to verification material (simulation PKI). *)

val create_keystore : unit -> keystore

val generate : keystore -> scheme -> id:string -> keypair
(** [generate ks scheme ~id] creates a keypair deterministically derived
    from [id], registers it in [ks], and returns it. Raises
    [Invalid_argument] if [id] is already registered. *)

val key_id : keypair -> string

val sign : keypair -> string -> string
(** [sign kp msg] is a signature of exactly
    [signature_size (scheme_of kp)] bytes. *)

val verify : keystore -> id:string -> msg:string -> signature:string -> bool
(** Checks the signature against the registered key for [id]. Unknown
    ids or wrong-size signatures verify as [false]. *)

val scheme_of : keypair -> scheme
