(** SHA-256 (FIPS 180-4), implemented from scratch on top of [int32]
    arithmetic. Used for PCB signing, hop-field MACs (via {!Hmac}) and
    content-addressed identifiers in the simulator. *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx

val update : ctx -> string -> unit
(** Absorb bytes. May be called repeatedly. *)

val finalize : ctx -> string
(** Produce the 32-byte digest. The context must not be reused. *)

val digest : string -> string
(** One-shot hash: 32 raw bytes. *)

val hex : string -> string
(** One-shot hash rendered as 64 lowercase hex characters. *)

val digest_size : int
(** 32. *)

val block_size : int
(** 64. *)
