let block_size = Sha256.block_size

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  key ^ String.make (block_size - String.length key) '\000'

let xor_with s byte = String.map (fun c -> Char.chr (Char.code c lxor byte)) s

let mac ~key msg =
  let k0 = normalize_key key in
  let inner = Sha256.digest (xor_with k0 0x36 ^ msg) in
  Sha256.digest (xor_with k0 0x5c ^ inner)

let mac_hex ~key msg =
  let d = mac ~key msg in
  let buf = Buffer.create 64 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf

let truncated ~key ~length msg =
  if length < 1 || length > Sha256.digest_size then
    invalid_arg "Hmac.truncated: length outside [1, 32]";
  String.sub (mac ~key msg) 0 length

let verify ~key ~tag msg =
  let n = String.length tag in
  if n = 0 || n > Sha256.digest_size then false
  else begin
    let expected = String.sub (mac ~key msg) 0 n in
    (* Constant-time comparison. *)
    let diff = ref 0 in
    for i = 0 to n - 1 do
      diff := !diff lor (Char.code tag.[i] lxor Char.code expected.[i])
    done;
    !diff = 0
  end
