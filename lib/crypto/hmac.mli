(** HMAC-SHA256 (RFC 2104). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag. *)

val mac_hex : key:string -> string -> string
(** Hex-encoded tag. *)

val truncated : key:string -> length:int -> string -> string
(** Tag truncated to [length] bytes (SCION hop fields use 6-byte MACs).
    Raises [Invalid_argument] if [length] is not in [\[1, 32\]]. *)

val verify : key:string -> tag:string -> string -> bool
(** Constant-time comparison of [tag] against the (possibly truncated,
    by [String.length tag]) recomputed tag. *)
