type scheme = Ecdsa_p384 | Ecdsa_p256 | Ed25519

let signature_size = function Ecdsa_p384 -> 96 | Ecdsa_p256 -> 64 | Ed25519 -> 64
let public_key_size = function Ecdsa_p384 -> 97 | Ecdsa_p256 -> 65 | Ed25519 -> 32

type keypair = { id : string; secret : string; scheme : scheme }

type keystore = (string, keypair) Hashtbl.t

let create_keystore () = Hashtbl.create 64

let generate ks scheme ~id =
  if Hashtbl.mem ks id then
    invalid_arg (Printf.sprintf "Signature.generate: duplicate key id %S" id);
  let secret = Sha256.digest ("scion-sim-key:" ^ id) in
  let kp = { id; secret; scheme } in
  Hashtbl.replace ks id kp;
  kp

let key_id kp = kp.id

let scheme_of kp = kp.scheme

(* Expand the 32-byte HMAC tag to the scheme's wire size with counter-mode
   rehashing, so signatures have realistic length and remain deterministic. *)
let expand tag size =
  let buf = Buffer.create size in
  let counter = ref 0 in
  while Buffer.length buf < size do
    Buffer.add_string buf (Sha256.digest (tag ^ string_of_int !counter));
    incr counter
  done;
  String.sub (Buffer.contents buf) 0 size

let sign kp msg =
  let tag = Hmac.mac ~key:kp.secret msg in
  expand tag (signature_size kp.scheme)

let verify ks ~id ~msg ~signature =
  match Hashtbl.find_opt ks id with
  | None -> false
  | Some kp ->
      String.length signature = signature_size kp.scheme
      && String.equal signature (sign kp msg)
