type t = { isd : int; version : int; roots : string list }

type cert = { subject : string; issuer : string; signature : string }

let create ~isd ~version ~roots =
  if roots = [] then invalid_arg "Trc.create: a TRC needs at least one trust root";
  { isd; version; roots }

let isd t = t.isd
let version t = t.version
let roots t = t.roots
let is_root t id = List.mem id t.roots

let cert_payload subject = "scion-cert:" ^ subject

let issue issuer_key ~subject =
  {
    subject;
    issuer = Signature.key_id issuer_key;
    signature = Signature.sign issuer_key (cert_payload subject);
  }

let verify_cert ks t cert =
  is_root t cert.issuer
  && Signature.verify ks ~id:cert.issuer ~msg:(cert_payload cert.subject)
       ~signature:cert.signature

let update t ~roots =
  if roots = [] then invalid_arg "Trc.update: a TRC needs at least one trust root";
  { t with version = t.version + 1; roots }
