(** Trust Root Configuration (TRC) and AS certificates (§2.1).

    Each ISD groups ASes that agree on a set of trust roots — the
    signing keys of the ISD's core ASes. Core ASes issue certificates
    to member ASes; PCB signatures verify through this chain. The model
    captures exactly the structure the control plane needs: root-key
    membership, certificate issuance, and chain verification. *)

type t
(** A TRC: versioned set of trust-root key ids for one ISD. *)

type cert = {
  subject : string;  (** key id of the certified AS *)
  issuer : string;  (** key id of the issuing core AS *)
  signature : string;  (** issuer's signature over the subject id *)
}

val create : isd:int -> version:int -> roots:string list -> t
(** [create ~isd ~version ~roots] builds a TRC whose trust roots are the
    given key ids. Raises [Invalid_argument] if [roots] is empty. *)

val isd : t -> int

val version : t -> int

val roots : t -> string list

val is_root : t -> string -> bool

val issue : Signature.keypair -> subject:string -> cert
(** [issue issuer_key ~subject] signs a certificate for [subject]. *)

val verify_cert : Signature.keystore -> t -> cert -> bool
(** A certificate is valid iff its issuer is a trust root of the TRC and
    the signature verifies against the issuer's registered key. *)

val update : t -> roots:string list -> t
(** Next TRC version with a new root set (trust-root rollover). *)
