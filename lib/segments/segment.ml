type kind = Up | Down | Core_seg

type hop_field = {
  as_idx : int;
  ingress : Id.iface;
  egress : Id.iface;
  link_in : int;
  link_out : int;
  peers : int array;
  expiry : float;
  mac : string;
}

type t = {
  kind : kind;
  origin : int;
  leaf : int;
  timestamp : float;
  expiry : float;
  hops : hop_field array;
  links : int array;
}

let mac_payload ~as_idx ~if1 ~if2 ~expiry =
  let lo = min if1 if2 and hi = max if1 if2 in
  Printf.sprintf "hf|%d|%d|%d|%.0f" as_idx lo hi expiry

let hop_mac keys ~as_idx ~if1 ~if2 ~expiry =
  Hmac.truncated ~key:(Fwd_keys.key keys as_idx) ~length:6
    (mac_payload ~as_idx ~if1 ~if2 ~expiry)

let terminate g keys ~kind ~holder (pcb : Pcb.t) =
  let nh = Array.length pcb.Pcb.hops in
  if nh = 0 then invalid_arg "Segment.terminate: PCB has no hops";
  let expiry = Pcb.expires_at pcb in
  let field ~as_idx ~ingress ~egress ~link_in ~link_out ~peers =
    {
      as_idx;
      ingress;
      egress;
      link_in;
      link_out;
      peers;
      expiry;
      mac = hop_mac keys ~as_idx ~if1:ingress ~if2:egress ~expiry;
    }
  in
  let hops =
    Array.init (nh + 1) (fun i ->
        if i < nh then begin
          let h = pcb.Pcb.hops.(i) in
          let link_in = if i = 0 then -1 else pcb.Pcb.hops.(i - 1).Pcb.link in
          field ~as_idx:h.Pcb.asn ~ingress:h.Pcb.ingress ~egress:h.Pcb.egress
            ~link_in ~link_out:h.Pcb.link ~peers:h.Pcb.peers
        end
        else begin
          (* Terminal entry for the holder, advertising its peering
             links so peering shortcuts can end (or start) here. *)
          let last = pcb.Pcb.hops.(nh - 1) in
          let ingress = Graph.iface_of (Graph.link g last.Pcb.link) holder in
          let peers =
            Array.of_list
              (List.filter_map
                 (fun (h : Graph.half_link) ->
                   if h.Graph.dir = Graph.To_peer then Some h.Graph.via else None)
                 (Array.to_list (Graph.adj g holder)))
          in
          field ~as_idx:holder ~ingress ~egress:0 ~link_in:last.Pcb.link
            ~link_out:(-1) ~peers
        end)
  in
  {
    kind;
    origin = pcb.Pcb.origin;
    leaf = holder;
    timestamp = pcb.Pcb.timestamp;
    expiry;
    hops;
    links = Array.copy pcb.Pcb.links;
  }

let verify_hop keys (hf : hop_field) ~now =
  now < hf.expiry
  && Hmac.verify
       ~key:(Fwd_keys.key keys hf.as_idx)
       ~tag:hf.mac
       (mac_payload ~as_idx:hf.as_idx ~if1:hf.ingress ~if2:hf.egress
          ~expiry:hf.expiry)

let verify keys t ~now = Array.for_all (fun hf -> verify_hop keys hf ~now) t.hops

let ases t = Array.to_list (Array.map (fun hf -> hf.as_idx) t.hops)

let contains_link t l = Array.exists (fun x -> x = l) t.links

let is_valid t ~now = now < t.expiry

let reversed_ases t = List.rev (ases t)

let registration_bytes t =
  Wire.path_segment_registration_bytes ~hops:(Array.length t.hops)

let pp fmt t =
  let kind_s =
    match t.kind with Up -> "up" | Down -> "down" | Core_seg -> "core"
  in
  Format.fprintf fmt "Seg[%s %d->%d via %s]" kind_s t.origin t.leaf
    (String.concat "," (List.map string_of_int (ases t)))
