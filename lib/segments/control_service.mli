(** The control service: glue between beaconing outcomes and the path
    lookup infrastructure (§2.2).

    After core and intra-ISD beaconing have run, every AS's beacon
    store holds PCBs. The control service terminates them into path
    segments, registers down-path segments at the core path server of
    their origin AS and core-path segments at the local core AS's path
    server, and resolves end-to-end paths on behalf of endpoints:
    up-segments from the local store, core- and down-segments fetched
    from path servers (with caching at the local server). *)

type t

val build :
  ?now:float ->
  core:Beaconing.outcome ->
  intra:Beaconing.outcome ->
  unit ->
  t
(** Both outcomes must be runs over the {e same} graph (core beaconing
    over core links, intra-ISD beaconing over provider–customer links).
    [now] defaults to the end of the beaconing runs. Raises
    [Invalid_argument] if the graphs differ. *)

val build_intra_only : ?now:float -> Beaconing.outcome -> t
(** Single-ISD network: no core segments, paths combine up- and
    down-segments at shared core ASes plus shortcuts. *)

val graph : t -> Graph.t

val keys : t -> Fwd_keys.t
(** The forwarding-key registry routers validate hop fields against. *)

val up_segments : t -> src:int -> Segment.t list
(** The AS's own up-path segments (local control-service query). *)

val resolve : t -> src:int -> dst:int -> Fwd_path.t list
(** Full path resolution for an endpoint in [src] towards [dst]:
    fetches core segments (from the local ISD core) and down segments
    (from the destination's registering core ASes), combines, and
    returns paths sorted by length. Lookup traffic is accounted in the
    underlying path servers' stats. *)

val revoke_link : t -> link:int -> int
(** Propagate a link failure: revoke affected segments at every path
    server (§4.1). Returns total segments revoked. *)

val core_path_server : t -> int -> Path_server.t option
(** The path server of a core AS, if that AS is core. *)

val now : t -> float
