(** Path segments (§2.2–2.3).

    A PCB received by an AS is terminated into a path segment: the
    terminating AS appends its own entry with egress 0, and every AS
    entry carries a hop field — the ingress/egress interface pair
    protected by a 6-byte MAC keyed with the AS's forwarding secret.
    Up- and down-path segments are interchangeable by reversing
    traversal direction; core-path segments connect core ASes. *)

type kind = Up | Down | Core_seg

type hop_field = {
  as_idx : int;
  ingress : Id.iface;  (** interface on the origin side; 0 at origin *)
  egress : Id.iface;  (** interface on the leaf side; 0 at the leaf *)
  link_in : int;  (** link id on the origin side; -1 at origin *)
  link_out : int;  (** link id on the leaf side; -1 at the leaf *)
  peers : int array;  (** advertised peering links of this AS *)
  expiry : float;
  mac : string;  (** 6-byte truncated HMAC over the hop field *)
}

type t = {
  kind : kind;
  origin : int;  (** core AS that initiated the underlying PCB *)
  leaf : int;  (** AS that terminated the PCB *)
  timestamp : float;
  expiry : float;
  hops : hop_field array;  (** origin first, leaf last *)
  links : int array;  (** traversed link ids, origin → leaf order *)
}

val mac_payload : as_idx:int -> if1:Id.iface -> if2:Id.iface -> expiry:float -> string
(** Canonical MAC input; symmetric in the interface pair so a hop field
    verifies in both traversal directions (up/down interchangeability,
    §2.2). *)

val hop_mac : Fwd_keys.t -> as_idx:int -> if1:Id.iface -> if2:Id.iface -> expiry:float -> string

val terminate : Graph.t -> Fwd_keys.t -> kind:kind -> holder:int -> Pcb.t -> t
(** [terminate g keys ~kind ~holder pcb] turns a stored PCB into a
    segment at [holder] (the AS whose beacon store held it), appending
    the holder's terminal hop field. Raises [Invalid_argument] if the
    PCB has no hops. *)

val verify_hop : Fwd_keys.t -> hop_field -> now:float -> bool
(** MAC and expiry check with the AS's current forwarding key. *)

val verify : Fwd_keys.t -> t -> now:float -> bool
(** All hop fields verify. *)

val ases : t -> int list
(** AS sequence origin → leaf. *)

val contains_link : t -> int -> bool

val is_valid : t -> now:float -> bool

val reversed_ases : t -> int list
(** Leaf → origin, the traversal order when used as an up-segment. *)

val registration_bytes : t -> int
(** Wire size of registering this segment at a path server (§4.1). *)

val pp : Format.formatter -> t -> unit
