(** Pull-based path-lookup simulation (§4.1, "Down-Path Segment
    Lookup").

    The paper argues the lookup infrastructure scales because (a)
    fetches are unicast and amortised by data traffic, (b) segments
    live for hours so caches stay warm, and (c) destination popularity
    is Zipf-distributed, so a small cache covers most queries. This
    simulator quantifies that: endpoints in client ASes resolve
    Zipf-popular destination ASes through their local path server,
    which caches fetched down-segments until expiry and otherwise asks
    the destination's core path server. *)

type params = {
  n_destinations : int;
  zipf_s : float;  (** popularity skew; ~1 for web-like traffic *)
  requests : int;
  client_ases : int;  (** each runs its own cache *)
  cache : bool;
  segment_lifetime : float;  (** seconds a cached segment stays valid *)
  request_rate : float;  (** requests per second across all clients *)
  segments_per_reply : int;
  seed : int64;
}

val default_params : params
(** 1 000 destinations, s = 1.1, 50 000 requests, 20 client ASes,
    caching on, 6 h lifetimes, 10 req/s. *)

type result = {
  params : params;
  cache_hits : int;
  cache_misses : int;
  hit_rate : float;
  upstream_messages : int;  (** query + reply per miss *)
  upstream_bytes : float;
  expired_evictions : int;
}

val run : ?obs:Obs.t -> params -> result
(** With an enabled [obs] context (default {!Obs.disabled}) the run
    maintains [lookup_cache_{hits,misses}_total] and
    [lookup_upstream_bytes_total] counters labeled [{cache; zipf}] and
    emits [lookup]-category trace events (per-miss at [Debug], run
    summary at [Info]). *)

val print_sweep : result list -> unit
(** One row per configuration: the Zipf-sweep table. *)
