(** Per-AS forwarding keys.

    Each AS derives hop-field MACs from a local secret key that never
    leaves the AS (§2.3: hop fields are cryptographically protected so
    paths cannot be altered). In the simulation, keys are derived
    deterministically per AS index. *)

type t

val create : unit -> t

val key : t -> int -> string
(** The forwarding secret of an AS (32 bytes, derived and cached). *)

val rotate : t -> int -> unit
(** Replace an AS's key (old MACs stop verifying — used by tests). *)
