(** Packet-carried forwarding state (§2.3).

    An end-to-end forwarding path is a sequence of AS crossings, each
    authorised by one hop field — or by two at segment-crossing points
    (core joints, shortcuts, peering shortcuts), exactly as in SCION
    where the packet carries both segments' hop fields. Routers keep no
    per-path state: everything needed to validate and forward is in
    this structure. *)

type crossing = {
  as_idx : int;
  in_if : Id.iface;  (** 0 when the packet originates in this AS *)
  out_if : Id.iface;  (** 0 when the packet is delivered in this AS *)
  in_link : int;  (** link id entered on; -1 at the source *)
  out_link : int;  (** link id left on; -1 at the destination *)
  proofs : Segment.hop_field list;
      (** hop fields authorising this crossing (two at joints) *)
}

type combination =
  | Up_only
  | Down_only
  | Core_only
  | Up_core
  | Core_down
  | Up_down  (** joined at a shared core AS *)
  | Up_core_down
  | Shortcut  (** crossover at a shared non-core AS (§2.2) *)
  | Peering_shortcut  (** via a peering link present in both segments *)

type t = {
  crossings : crossing array;  (** source AS first *)
  links : int array;  (** traversed link ids in travel order *)
  combination : combination;
}

val src : t -> int
val dst : t -> int

val length : t -> int
(** Number of AS crossings. *)

val contains_link : t -> int -> bool

val ases : t -> int list

val key : t -> string
(** Canonical identity (AS sequence + link sequence) for dedup. *)

val pp : Format.formatter -> t -> unit
