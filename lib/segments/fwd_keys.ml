type t = { keys : (int, string) Hashtbl.t; mutable generation : int }

let create () = { keys = Hashtbl.create 64; generation = 0 }

let derive generation v =
  Sha256.digest (Printf.sprintf "scion-fwd-key:%d:%d" generation v)

let key t v =
  match Hashtbl.find_opt t.keys v with
  | Some k -> k
  | None ->
      let k = derive 0 v in
      Hashtbl.replace t.keys v k;
      k

let rotate t v =
  t.generation <- t.generation + 1;
  Hashtbl.replace t.keys v (derive t.generation v)
