(** Path servers (§2.2, "Path Segment Dissemination").

    A core AS's path server stores the intra-ISD (down-path) segments
    registered by the leaf ASes of its ISD and the core-path segments
    its beacon server constructed. Lookups are pull-based; the
    infrastructure resembles DNS, with caching at non-core path servers
    and endpoints. *)

type t

val create : ?obs:Obs.t -> ?per_leaf_limit:int -> unit -> t
(** [per_leaf_limit] caps registered segments per destination leaf AS
    (default 60, matching the PCB storage limit in §5.1).

    With an enabled [obs] context (default {!Obs.disabled}) the server
    maintains [path_server_lookup_{hits,misses}_total] counters labeled
    [{kind}] ([down] or [core]; a hit is a lookup returning at least
    one valid segment), plus [path_server_registrations_total] and
    [path_server_revoked_segments_total], and emits
    [path_server]-category trace events (per-lookup at [Debug],
    revocations at [Warn]). *)

val register_down : t -> now:float -> Segment.t -> bool
(** Register a down-path segment under its leaf AS. Returns [false] if
    it was a duplicate, expired, or rejected by the per-leaf cap.
    Registration overhead is accounted in {!stats}. *)

val register_core : t -> now:float -> Segment.t -> bool
(** Register a core-path segment under its remote (origin) core AS. *)

val lookup_down : t -> now:float -> leaf:int -> Segment.t list
(** Valid down-path segments to [leaf], sorted by segment key (a total
    order, so replies never depend on internal hash-table layout);
    counts one lookup. *)

val lookup_core : t -> now:float -> remote:int -> Segment.t list
(** Valid core-path segments to the remote core AS [remote], sorted
    like {!lookup_down}. *)

val deregister_leaf : t -> leaf:int -> int
(** Remove every segment registered for [leaf] (path de-registration,
    §4.1). Returns the number removed. *)

val revoke_link : t -> link:int -> int
(** Path revocation (§4.1): drop all segments containing the failed
    link. Returns the number of segments revoked. *)

type stats = {
  registrations : int;
  registration_bytes : int;
  lookups_down : int;
  lookups_core : int;
  reply_segments_down : int;
  reply_segments_core : int;
  revocations : int;
  revoked_segments : int;
}

val stats : t -> stats

val total_segments : t -> int

(** {1 Checkpointing} *)

type dump = {
  d_per_leaf_limit : int;
  d_down : (int * Segment.t list) list;
      (** (leaf, segments sorted by key), sorted by leaf *)
  d_core : (int * Segment.t list) list;
      (** (origin, segments sorted by key), sorted by origin *)
  d_stats : stats;
}
(** Canonical value of the whole server (registry plus counters):
    equal servers dump equal values regardless of registration order. *)

val dump : t -> dump

val of_dump : ?obs:Obs.t -> dump -> t
(** Rebuild a server from a dump; [dump (of_dump d) = d]. Restoring
    does {e not} re-count registrations — stats come back exactly as
    dumped, and obs counters (of the fresh [obs] context) start at
    zero. *)
