type params = {
  n_destinations : int;
  zipf_s : float;
  requests : int;
  client_ases : int;
  cache : bool;
  segment_lifetime : float;
  request_rate : float;
  segments_per_reply : int;
  seed : int64;
}

let default_params =
  {
    n_destinations = 1000;
    zipf_s = 1.1;
    requests = 50_000;
    client_ases = 20;
    cache = true;
    segment_lifetime = 21_600.0;
    request_rate = 10.0;
    segments_per_reply = 5;
    seed = 0x100C07L;
  }

type result = {
  params : params;
  cache_hits : int;
  cache_misses : int;
  hit_rate : float;
  upstream_messages : int;
  upstream_bytes : float;
  expired_evictions : int;
}

let run p =
  if p.n_destinations < 1 || p.requests < 0 || p.client_ases < 1 then
    invalid_arg "Lookup_sim.run: invalid parameters";
  let rng = Rng.create p.seed in
  let zipf = Zipf.create ~n:p.n_destinations ~s:p.zipf_s in
  (* Per client AS: destination -> cached-until. *)
  let caches = Array.init p.client_ases (fun _ -> Hashtbl.create 256) in
  let hits = ref 0 and misses = ref 0 and evictions = ref 0 in
  let upstream_bytes = ref 0.0 in
  let reply_bytes =
    float_of_int
      (16 + (p.segments_per_reply * Wire.pcb_bytes ~hops:4 ~signature_bytes:96))
  in
  let query_bytes = 64.0 in
  for i = 0 to p.requests - 1 do
    let now = float_of_int i /. p.request_rate in
    let client = Rng.int rng p.client_ases in
    let dst = Zipf.sample zipf rng in
    let cached =
      p.cache
      &&
      match Hashtbl.find_opt caches.(client) dst with
      | Some until when now < until -> true
      | Some _ ->
          Hashtbl.remove caches.(client) dst;
          incr evictions;
          false
      | None -> false
    in
    if cached then incr hits
    else begin
      incr misses;
      upstream_bytes := !upstream_bytes +. query_bytes +. reply_bytes;
      if p.cache then
        Hashtbl.replace caches.(client) dst (now +. p.segment_lifetime)
    end
  done;
  {
    params = p;
    cache_hits = !hits;
    cache_misses = !misses;
    hit_rate = (if p.requests = 0 then 0.0 else float_of_int !hits /. float_of_int p.requests);
    upstream_messages = 2 * !misses;
    upstream_bytes = !upstream_bytes;
    expired_evictions = !evictions;
  }

let print_sweep results =
  Table.print
    ~header:
      [ "zipf s"; "cache"; "requests"; "hit rate"; "upstream msgs"; "upstream bytes"; "msgs/request" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Printf.sprintf "%.2f" r.params.zipf_s;
             (if r.params.cache then "on" else "off");
             string_of_int r.params.requests;
             Printf.sprintf "%.1f%%" (100.0 *. r.hit_rate);
             string_of_int r.upstream_messages;
             Printf.sprintf "%.3g" r.upstream_bytes;
             Printf.sprintf "%.3f"
               (float_of_int r.upstream_messages /. float_of_int (max 1 r.params.requests));
           ])
         results)
