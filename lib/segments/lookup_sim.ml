type params = {
  n_destinations : int;
  zipf_s : float;
  requests : int;
  client_ases : int;
  cache : bool;
  segment_lifetime : float;
  request_rate : float;
  segments_per_reply : int;
  seed : int64;
}

let default_params =
  {
    n_destinations = 1000;
    zipf_s = 1.1;
    requests = 50_000;
    client_ases = 20;
    cache = true;
    segment_lifetime = 21_600.0;
    request_rate = 10.0;
    segments_per_reply = 5;
    seed = 0x100C07L;
  }

type result = {
  params : params;
  cache_hits : int;
  cache_misses : int;
  hit_rate : float;
  upstream_messages : int;
  upstream_bytes : float;
  expired_evictions : int;
}

let run ?(obs = Obs.disabled) p =
  if p.n_destinations < 1 || p.requests < 0 || p.client_ases < 1 then
    invalid_arg "Lookup_sim.run: invalid parameters";
  let obs_on = Obs.on obs in
  let tr = Obs.trace obs in
  let labels =
    [
      ("cache", if p.cache then "on" else "off");
      ("zipf", Printf.sprintf "%.2f" p.zipf_s);
    ]
  in
  let c_hits, c_misses, c_bytes =
    if obs_on then begin
      let reg = Obs.registry obs in
      ( Registry.counter reg ~labels "lookup_cache_hits_total",
        Registry.counter reg ~labels "lookup_cache_misses_total",
        Registry.counter reg ~labels "lookup_upstream_bytes_total" )
    end
    else (ref 0.0, ref 0.0, ref 0.0)
  in
  let rng = Rng.create p.seed in
  let zipf = Zipf.create ~n:p.n_destinations ~s:p.zipf_s in
  (* Per client AS: destination -> cached-until. *)
  let caches = Array.init p.client_ases (fun _ -> Hashtbl.create 256) in
  let hits = ref 0 and misses = ref 0 and evictions = ref 0 in
  let upstream_bytes = ref 0.0 in
  let reply_bytes =
    float_of_int
      (16 + (p.segments_per_reply * Wire.pcb_bytes ~hops:4 ~signature_bytes:96))
  in
  let query_bytes = 64.0 in
  for i = 0 to p.requests - 1 do
    let now = float_of_int i /. p.request_rate in
    let client = Rng.int rng p.client_ases in
    let dst = Zipf.sample zipf rng in
    let cached =
      p.cache
      &&
      match Hashtbl.find_opt caches.(client) dst with
      | Some until when now < until -> true
      | Some _ ->
          Hashtbl.remove caches.(client) dst;
          incr evictions;
          false
      | None -> false
    in
    if cached then begin
      incr hits;
      if obs_on then c_hits := !c_hits +. 1.0
    end
    else begin
      incr misses;
      upstream_bytes := !upstream_bytes +. query_bytes +. reply_bytes;
      if obs_on then begin
        c_misses := !c_misses +. 1.0;
        c_bytes := !c_bytes +. query_bytes +. reply_bytes;
        if Trace.enabled tr Trace.Debug then
          Trace.emit tr Trace.Debug ~time:now ~category:"lookup"
            ~fields:
              [ ("client", string_of_int client); ("dst", string_of_int dst) ]
            "cache miss, upstream fetch"
      end;
      if p.cache then
        Hashtbl.replace caches.(client) dst (now +. p.segment_lifetime)
    end
  done;
  if obs_on && Trace.enabled tr Trace.Info then
    Trace.emit tr Trace.Info
      ~time:(float_of_int p.requests /. p.request_rate)
      ~category:"lookup"
      ~fields:
        [
          ("requests", string_of_int p.requests);
          ("hits", string_of_int !hits);
          ("misses", string_of_int !misses);
          ("evictions", string_of_int !evictions);
        ]
      "lookup simulation complete";
  {
    params = p;
    cache_hits = !hits;
    cache_misses = !misses;
    hit_rate = (if p.requests = 0 then 0.0 else float_of_int !hits /. float_of_int p.requests);
    upstream_messages = 2 * !misses;
    upstream_bytes = !upstream_bytes;
    expired_evictions = !evictions;
  }

let print_sweep results =
  Table.print
    ~header:
      [ "zipf s"; "cache"; "requests"; "hit rate"; "upstream msgs"; "upstream bytes"; "msgs/request" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Printf.sprintf "%.2f" r.params.zipf_s;
             (if r.params.cache then "on" else "off");
             string_of_int r.params.requests;
             Printf.sprintf "%.1f%%" (100.0 *. r.hit_rate);
             string_of_int r.upstream_messages;
             Printf.sprintf "%.3g" r.upstream_bytes;
             Printf.sprintf "%.3f"
               (float_of_int r.upstream_messages /. float_of_int (max 1 r.params.requests));
           ])
         results)
