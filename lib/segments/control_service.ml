type t = {
  graph : Graph.t;
  keys : Fwd_keys.t;
  now : float;
  core_ps : (int, Path_server.t) Hashtbl.t;
  up_store : (int, Segment.t list) Hashtbl.t;
  core_store : (int, Segment.t list) Hashtbl.t;
  revoked : (int, unit) Hashtbl.t;
}

let graph t = t.graph
let keys t = t.keys
let now t = t.now

let same_graph a b =
  Graph.n a = Graph.n b && Graph.num_links a = Graph.num_links b

let core_ases_of_isd g isd =
  List.filter (fun c -> (Graph.as_info g c).Graph.ia.Id.isd = isd) (Graph.core_ases g)

let ps t c =
  match Hashtbl.find_opt t.core_ps c with
  | Some p -> p
  | None ->
      let p = Path_server.create () in
      Hashtbl.replace t.core_ps c p;
      p

let ingest_intra t (intra : Beaconing.outcome) =
  let g = t.graph in
  for v = 0 to Graph.n g - 1 do
    if not (Graph.is_core g v) then begin
      let pcbs = Beacon_store.all_paths intra.Beaconing.stores.(v) ~now:t.now in
      let ups =
        List.filter_map
          (fun pcb ->
            if Array.length pcb.Pcb.hops = 0 then None
            else Some (Segment.terminate g t.keys ~kind:Segment.Up ~holder:v pcb))
          pcbs
      in
      Hashtbl.replace t.up_store v ups;
      (* Register the same segments as down-path segments at the core
         path server of their origin AS (§2.2: leaf ASes register). *)
      List.iter
        (fun pcb ->
          if Array.length pcb.Pcb.hops > 0 then begin
            let seg = Segment.terminate g t.keys ~kind:Segment.Down ~holder:v pcb in
            ignore (Path_server.register_down (ps t seg.Segment.origin) ~now:t.now seg)
          end)
        pcbs
    end
  done

let ingest_core t (core : Beaconing.outcome) =
  let g = t.graph in
  List.iter
    (fun c ->
      let pcbs = Beacon_store.all_paths core.Beaconing.stores.(c) ~now:t.now in
      let segs =
        List.filter_map
          (fun pcb ->
            if Array.length pcb.Pcb.hops = 0 then None
            else Some (Segment.terminate g t.keys ~kind:Segment.Core_seg ~holder:c pcb))
          pcbs
      in
      Hashtbl.replace t.core_store c segs;
      List.iter
        (fun seg -> ignore (Path_server.register_core (ps t c) ~now:t.now seg))
        segs)
    (Graph.core_ases g)

let make graph now =
  {
    graph;
    keys = Fwd_keys.create ();
    now;
    core_ps = Hashtbl.create 16;
    up_store = Hashtbl.create 64;
    core_store = Hashtbl.create 16;
    revoked = Hashtbl.create 8;
  }

let build ?now ~(core : Beaconing.outcome) ~(intra : Beaconing.outcome) () =
  if not (same_graph core.Beaconing.graph intra.Beaconing.graph) then
    invalid_arg "Control_service.build: outcomes are over different graphs";
  let now =
    match now with
    | Some n -> n
    | None ->
        max core.Beaconing.config.Beaconing.duration
          intra.Beaconing.config.Beaconing.duration
        -. 1.0
  in
  let t = make core.Beaconing.graph now in
  ingest_intra t intra;
  ingest_core t core;
  t

let build_intra_only ?now (intra : Beaconing.outcome) =
  let now =
    match now with
    | Some n -> n
    | None -> intra.Beaconing.config.Beaconing.duration -. 1.0
  in
  let t = make intra.Beaconing.graph now in
  ingest_intra t intra;
  t

let up_segments t ~src =
  Option.value ~default:[] (Hashtbl.find_opt t.up_store src)

let not_revoked t (p : Fwd_path.t) =
  not (Array.exists (fun l -> Hashtbl.mem t.revoked l) p.Fwd_path.links)

let resolve t ~src ~dst =
  if src = dst then []
  else begin
    let g = t.graph in
    let src_core = Graph.is_core g src and dst_core = Graph.is_core g dst in
    let ups = if src_core then [] else up_segments t ~src in
    let src_cores =
      if src_core then [ src ]
      else
        List.sort_uniq compare (List.map (fun (s : Segment.t) -> s.Segment.origin) ups)
    in
    let dst_isd = (Graph.as_info g dst).Graph.ia.Id.isd in
    let dst_cores = if dst_core then [ dst ] else core_ases_of_isd g dst_isd in
    let downs =
      if dst_core then []
      else
        List.concat_map
          (fun c -> Path_server.lookup_down (ps t c) ~now:t.now ~leaf:dst)
          dst_cores
    in
    let cores =
      List.concat_map
        (fun c1 ->
          List.concat_map
            (fun c2 ->
              if c1 = c2 then []
              else Path_server.lookup_core (ps t c1) ~now:t.now ~remote:c2)
            dst_cores)
        src_cores
    in
    Seg_combine.combine g ~up:ups ~core:cores ~down:downs ~src ~dst
    |> List.filter (not_revoked t)
  end

let revoke_link t ~link =
  Hashtbl.replace t.revoked link ();
  Hashtbl.fold
    (fun _ p acc -> acc + Path_server.revoke_link p ~link)
    t.core_ps 0

let core_path_server t c =
  if Graph.is_core t.graph c then Some (ps t c) else None
