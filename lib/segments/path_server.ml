type stats = {
  registrations : int;
  registration_bytes : int;
  lookups_down : int;
  lookups_core : int;
  reply_segments_down : int;
  reply_segments_core : int;
  revocations : int;
  revoked_segments : int;
}

type t = {
  per_leaf_limit : int;
  down : (int, (string, Segment.t) Hashtbl.t) Hashtbl.t;
  core : (int, (string, Segment.t) Hashtbl.t) Hashtbl.t;
  mutable registrations : int;
  mutable registration_bytes : int;
  mutable lookups_down : int;
  mutable lookups_core : int;
  mutable reply_segments_down : int;
  mutable reply_segments_core : int;
  mutable revocations : int;
  mutable revoked_segments : int;
  (* Observability cells, hoisted at creation. *)
  obs_on : bool;
  tr : Trace.t;
  c_down_hits : float ref;
  c_down_misses : float ref;
  c_core_hits : float ref;
  c_core_misses : float ref;
  c_registrations : float ref;
  c_revoked : float ref;
}

let create ?(obs = Obs.disabled) ?(per_leaf_limit = 60) () =
  if per_leaf_limit < 1 then invalid_arg "Path_server.create: per_leaf_limit < 1";
  let obs_on = Obs.on obs in
  let counter kind name =
    if obs_on then
      Registry.counter (Obs.registry obs)
        ~labels:(match kind with Some k -> [ ("kind", k) ] | None -> [])
        name
    else ref 0.0
  in
  {
    per_leaf_limit;
    down = Hashtbl.create 64;
    core = Hashtbl.create 64;
    registrations = 0;
    registration_bytes = 0;
    lookups_down = 0;
    lookups_core = 0;
    reply_segments_down = 0;
    reply_segments_core = 0;
    revocations = 0;
    revoked_segments = 0;
    obs_on;
    tr = Obs.trace obs;
    c_down_hits = counter (Some "down") "path_server_lookup_hits_total";
    c_down_misses = counter (Some "down") "path_server_lookup_misses_total";
    c_core_hits = counter (Some "core") "path_server_lookup_hits_total";
    c_core_misses = counter (Some "core") "path_server_lookup_misses_total";
    c_registrations = counter None "path_server_registrations_total";
    c_revoked = counter None "path_server_revoked_segments_total";
  }

let seg_key (s : Segment.t) =
  Printf.sprintf "%d|%s" s.Segment.origin (Pcb.path_key s.Segment.links)

let bucket table idx =
  match Hashtbl.find_opt table idx with
  | Some b -> b
  | None ->
      let b = Hashtbl.create 8 in
      Hashtbl.replace table idx b;
      b

let register t table ~idx ~now (s : Segment.t) =
  if not (Segment.is_valid s ~now) then false
  else begin
    let b = bucket table idx in
    let key = seg_key s in
    let fresh = not (Hashtbl.mem b key) in
    if fresh && Hashtbl.length b >= t.per_leaf_limit then false
    else begin
      Hashtbl.replace b key s;
      t.registrations <- t.registrations + 1;
      t.registration_bytes <- t.registration_bytes + Segment.registration_bytes s;
      if t.obs_on then t.c_registrations := !(t.c_registrations) +. 1.0;
      true
    end
  end

let register_down t ~now s = register t t.down ~idx:s.Segment.leaf ~now s

let register_core t ~now s = register t t.core ~idx:s.Segment.origin ~now s

let lookup table ~now idx =
  match Hashtbl.find_opt table idx with
  | None -> []
  | Some b ->
      (* Sorted by segment key so replies are a pure function of the
         registered set, not of hash-table layout. *)
      Hashtbl.fold
        (fun key s acc -> if Segment.is_valid s ~now then (key, s) :: acc else acc)
        b []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map snd

let observe_lookup t ~now ~kind ~idx ~hit ~c_hits ~c_misses ~n_segs =
  let c = if hit then c_hits else c_misses in
  c := !c +. 1.0;
  if Trace.enabled t.tr Trace.Debug then
    Trace.emit t.tr Trace.Debug ~time:now ~category:"path_server"
      ~fields:
        [
          ("kind", kind);
          ("dst", string_of_int idx);
          ("segments", string_of_int n_segs);
        ]
      (if hit then "lookup hit" else "lookup miss")

let lookup_down t ~now ~leaf =
  let segs = lookup t.down ~now leaf in
  t.lookups_down <- t.lookups_down + 1;
  let n = List.length segs in
  t.reply_segments_down <- t.reply_segments_down + n;
  if t.obs_on then
    observe_lookup t ~now ~kind:"down" ~idx:leaf ~hit:(n > 0)
      ~c_hits:t.c_down_hits ~c_misses:t.c_down_misses ~n_segs:n;
  segs

let lookup_core t ~now ~remote =
  let segs = lookup t.core ~now remote in
  t.lookups_core <- t.lookups_core + 1;
  let n = List.length segs in
  t.reply_segments_core <- t.reply_segments_core + n;
  if t.obs_on then
    observe_lookup t ~now ~kind:"core" ~idx:remote ~hit:(n > 0)
      ~c_hits:t.c_core_hits ~c_misses:t.c_core_misses ~n_segs:n;
  segs

let deregister_leaf t ~leaf =
  match Hashtbl.find_opt t.down leaf with
  | None -> 0
  | Some b ->
      let n = Hashtbl.length b in
      Hashtbl.remove t.down leaf;
      n

let revoke_link t ~link =
  t.revocations <- t.revocations + 1;
  let purge table =
    let removed = ref 0 in
    Hashtbl.iter
      (fun _ b ->
        let dead =
          Hashtbl.fold
            (fun key s acc -> if Segment.contains_link s link then key :: acc else acc)
            b []
        in
        List.iter
          (fun key ->
            Hashtbl.remove b key;
            incr removed)
          dead)
      table;
    !removed
  in
  let n = purge t.down + purge t.core in
  t.revoked_segments <- t.revoked_segments + n;
  if t.obs_on then begin
    t.c_revoked := !(t.c_revoked) +. float_of_int n;
    if Trace.enabled t.tr Trace.Warn then
      Trace.emit t.tr Trace.Warn ~time:0.0 ~category:"path_server"
        ~fields:
          [ ("link", string_of_int link); ("revoked", string_of_int n) ]
        "link revocation purged segments"
  end;
  n

let stats t =
  {
    registrations = t.registrations;
    registration_bytes = t.registration_bytes;
    lookups_down = t.lookups_down;
    lookups_core = t.lookups_core;
    reply_segments_down = t.reply_segments_down;
    reply_segments_core = t.reply_segments_core;
    revocations = t.revocations;
    revoked_segments = t.revoked_segments;
  }

let total_segments t =
  let count table = Hashtbl.fold (fun _ b acc -> acc + Hashtbl.length b) table 0 in
  count t.down + count t.core

type dump = {
  d_per_leaf_limit : int;
  d_down : (int * Segment.t list) list;
  d_core : (int * Segment.t list) list;
  d_stats : stats;
}

let dump_table table =
  Hashtbl.fold
    (fun idx b acc ->
      let segs =
        Hashtbl.fold (fun key s acc -> (key, s) :: acc) b []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.map snd
      in
      if segs = [] then acc else (idx, segs) :: acc)
    table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let dump t =
  {
    d_per_leaf_limit = t.per_leaf_limit;
    d_down = dump_table t.down;
    d_core = dump_table t.core;
    d_stats = stats t;
  }

let of_dump ?obs d =
  let t = create ?obs ~per_leaf_limit:d.d_per_leaf_limit () in
  (* Write the buckets directly: going through [register] would bump
     registration stats and obs counters a second time. *)
  let fill table entries =
    List.iter
      (fun (idx, segs) ->
        let b = bucket table idx in
        List.iter (fun s -> Hashtbl.replace b (seg_key s) s) segs)
      entries
  in
  fill t.down d.d_down;
  fill t.core d.d_core;
  t.registrations <- d.d_stats.registrations;
  t.registration_bytes <- d.d_stats.registration_bytes;
  t.lookups_down <- d.d_stats.lookups_down;
  t.lookups_core <- d.d_stats.lookups_core;
  t.reply_segments_down <- d.d_stats.reply_segments_down;
  t.reply_segments_core <- d.d_stats.reply_segments_core;
  t.revocations <- d.d_stats.revocations;
  t.revoked_segments <- d.d_stats.revoked_segments;
  t
