type crossing = {
  as_idx : int;
  in_if : Id.iface;
  out_if : Id.iface;
  in_link : int;
  out_link : int;
  proofs : Segment.hop_field list;
}

type combination =
  | Up_only
  | Down_only
  | Core_only
  | Up_core
  | Core_down
  | Up_down
  | Up_core_down
  | Shortcut
  | Peering_shortcut

type t = {
  crossings : crossing array;
  links : int array;
  combination : combination;
}

let src t = t.crossings.(0).as_idx

let dst t = t.crossings.(Array.length t.crossings - 1).as_idx

let length t = Array.length t.crossings

let contains_link t l = Array.exists (fun x -> x = l) t.links

let ases t = Array.to_list (Array.map (fun c -> c.as_idx) t.crossings)

let key t =
  String.concat ";"
    (List.map string_of_int (ases t)
    @ ("|" :: List.map string_of_int (Array.to_list t.links)))

let combination_name = function
  | Up_only -> "up"
  | Down_only -> "down"
  | Core_only -> "core"
  | Up_core -> "up+core"
  | Core_down -> "core+down"
  | Up_down -> "up+down"
  | Up_core_down -> "up+core+down"
  | Shortcut -> "shortcut"
  | Peering_shortcut -> "peering-shortcut"

let pp fmt t =
  Format.fprintf fmt "Path[%s %s]" (combination_name t.combination)
    (String.concat "->" (List.map string_of_int (ases t)))
