(** End-to-end path construction from path segments (§2.3).

    Hosts combine one up-path segment with fetched core- and down-path
    segments. Besides the full up+core+down combination, the combiner
    produces every special form SCION supports: segment subsets when an
    endpoint sits in a core AS, up+down joins at a shared core AS,
    shortcuts crossing over at a non-core AS common to both segments,
    and peering shortcuts over a peering link advertised in both
    segments. Combinations that would repeat an AS are discarded
    (cryptographic protections prevent unauthorised combinations in
    real SCION; the combiner simply never builds them). *)

val combine :
  ?max_paths:int ->
  Graph.t ->
  up:Segment.t list ->
  core:Segment.t list ->
  down:Segment.t list ->
  src:int ->
  dst:int ->
  Fwd_path.t list
(** All valid, deduplicated forwarding paths from [src] to [dst],
    sorted by AS-hop count. [max_paths] (default 64) caps the result.

    Expected segment orientations (as produced by {!Segment.terminate}):
    up segments have [leaf = src]; core segments are held by the local
    core AS (leaf) with [origin] the remote core AS; down segments have
    [origin] a core AS and [leaf = dst]. *)

val traverse_down : Segment.t -> Fwd_path.crossing array
(** Origin → leaf traversal of one segment (exposed for tests). *)

val traverse_up : Segment.t -> Fwd_path.crossing array
(** Leaf → origin traversal. *)
