open Fwd_path

let traverse_down (s : Segment.t) =
  Array.map
    (fun (hf : Segment.hop_field) ->
      {
        as_idx = hf.Segment.as_idx;
        in_if = hf.Segment.ingress;
        out_if = hf.Segment.egress;
        in_link = hf.Segment.link_in;
        out_link = hf.Segment.link_out;
        proofs = [ hf ];
      })
    s.Segment.hops

let traverse_up (s : Segment.t) =
  let n = Array.length s.Segment.hops in
  Array.init n (fun i ->
      let hf = s.Segment.hops.(n - 1 - i) in
      {
        as_idx = hf.Segment.as_idx;
        in_if = hf.Segment.egress;
        out_if = hf.Segment.ingress;
        in_link = hf.Segment.link_out;
        out_link = hf.Segment.link_in;
        proofs = [ hf ];
      })

(* Join two traversals sharing their boundary AS: the joint crossing
   enters with the first segment's hop field and leaves with the
   second's, carrying both proofs (as SCION packets do). *)
let join a b =
  let la = Array.length a in
  if la = 0 || Array.length b = 0 then invalid_arg "Seg_combine.join: empty traversal";
  let last = a.(la - 1) and first = b.(0) in
  if last.as_idx <> first.as_idx then
    invalid_arg "Seg_combine.join: traversals do not share a boundary AS";
  let joint =
    {
      as_idx = last.as_idx;
      in_if = last.in_if;
      out_if = first.out_if;
      in_link = last.in_link;
      out_link = first.out_link;
      proofs = last.proofs @ first.proofs;
    }
  in
  Array.concat [ Array.sub a 0 (la - 1); [| joint |]; Array.sub b 1 (Array.length b - 1) ]

let links_of crossings =
  Array.of_list
    (List.filter_map
       (fun c -> if c.out_link >= 0 then Some c.out_link else None)
       (Array.to_list crossings))

let no_repeated_as crossings =
  let seen = Hashtbl.create 16 in
  Array.for_all
    (fun c ->
      if Hashtbl.mem seen c.as_idx then false
      else begin
        Hashtbl.replace seen c.as_idx ();
        true
      end)
    crossings

let make combination crossings =
  if Array.length crossings = 0 || not (no_repeated_as crossings) then None
  else Some { crossings; links = links_of crossings; combination }

let index_of_as crossings x =
  let rec go i =
    if i >= Array.length crossings then None
    else if crossings.(i).as_idx = x then Some i
    else go (i + 1)
  in
  go 0

let combine ?(max_paths = 64) g ~up ~core ~down ~src ~dst =
  let results = ref [] in
  let add p = match p with Some p -> results := p :: !results | None -> () in
  let ups = List.filter (fun (s : Segment.t) -> s.Segment.leaf = src) up in
  let downs = List.filter (fun (s : Segment.t) -> s.Segment.leaf = dst) down in
  (* Single-segment combinations. *)
  List.iter
    (fun (u : Segment.t) ->
      if u.Segment.origin = dst then add (make Up_only (traverse_up u)))
    ups;
  List.iter
    (fun (d : Segment.t) ->
      if d.Segment.origin = src then add (make Down_only (traverse_down d)))
    downs;
  List.iter
    (fun (c : Segment.t) ->
      if c.Segment.leaf = src && c.Segment.origin = dst then
        add (make Core_only (traverse_up c)))
    core;
  (* Two-segment combinations. *)
  List.iter
    (fun (u : Segment.t) ->
      List.iter
        (fun (c : Segment.t) ->
          if u.Segment.origin = c.Segment.leaf && c.Segment.origin = dst then
            add (make Up_core (join (traverse_up u) (traverse_up c))))
        core)
    ups;
  List.iter
    (fun (c : Segment.t) ->
      List.iter
        (fun (d : Segment.t) ->
          if c.Segment.leaf = src && c.Segment.origin = d.Segment.origin then
            add (make Core_down (join (traverse_up c) (traverse_down d))))
        downs)
    core;
  List.iter
    (fun (u : Segment.t) ->
      List.iter
        (fun (d : Segment.t) ->
          (* Join at a shared core AS, no core segment needed. *)
          if u.Segment.origin = d.Segment.origin then
            add (make Up_down (join (traverse_up u) (traverse_down d)));
          (* Shortcut: cross over at any common non-origin AS (§2.3). *)
          let tu = traverse_up u and td = traverse_down d in
          Array.iter
            (fun cu ->
              if cu.as_idx <> u.Segment.origin then begin
                match index_of_as td cu.as_idx with
                | Some j when j > 0 ->
                    let upto =
                      match index_of_as tu cu.as_idx with Some i -> i | None -> -1
                    in
                    if upto >= 0 then begin
                      let a = Array.sub tu 0 (upto + 1) in
                      let b = Array.sub td j (Array.length td - j) in
                      add (make Shortcut (join a b))
                    end
                | _ -> ()
              end)
            tu;
          (* Peering shortcut: a peering link advertised by an AS on the
             up segment and an AS on the down segment (§2.2). *)
          Array.iteri
            (fun ui cu ->
              List.iter
                (fun proof ->
                  Array.iter
                    (fun l ->
                      Array.iteri
                        (fun dj cd ->
                          let l_matches_down =
                            List.exists
                              (fun (p : Segment.hop_field) ->
                                Array.exists (fun x -> x = l) p.Segment.peers)
                              cd.proofs
                          in
                          if l_matches_down then begin
                            let lk = Graph.link g l in
                            let connects =
                              (lk.Graph.a = cu.as_idx && lk.Graph.b = cd.as_idx)
                              || (lk.Graph.b = cu.as_idx && lk.Graph.a = cd.as_idx)
                            in
                            if connects then begin
                              let a = Array.sub tu 0 (ui + 1) in
                              let b = Array.sub td dj (Array.length td - dj) in
                              let x_cross =
                                {
                                  (a.(ui)) with
                                  out_if = Graph.iface_of lk cu.as_idx;
                                  out_link = l;
                                }
                              in
                              let y_cross =
                                {
                                  (b.(0)) with
                                  in_if = Graph.iface_of lk cd.as_idx;
                                  in_link = l;
                                }
                              in
                              a.(ui) <- x_cross;
                              b.(0) <- y_cross;
                              add (make Peering_shortcut (Array.append a b))
                            end
                          end)
                        td)
                    proof.Segment.peers)
                cu.proofs)
            tu)
        downs)
    ups;
  (* Three-segment combination. *)
  List.iter
    (fun (u : Segment.t) ->
      List.iter
        (fun (c : Segment.t) ->
          if u.Segment.origin = c.Segment.leaf then
            List.iter
              (fun (d : Segment.t) ->
                if c.Segment.origin = d.Segment.origin then
                  add
                    (make Up_core_down
                       (join (join (traverse_up u) (traverse_up c)) (traverse_down d))))
              downs)
        core)
    ups;
  (* Deduplicate, sort by AS-hop count, cap. *)
  let seen = Hashtbl.create 32 in
  let uniq =
    List.filter
      (fun p ->
        let k = Fwd_path.key p in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      !results
  in
  let sorted = List.sort (fun a b -> compare (Fwd_path.length a) (Fwd_path.length b)) uniq in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take max_paths sorted
