(** Deterministic parallel experiment engine.

    A fixed-size pool of OCaml 5 domains executes independent jobs —
    beaconing runs, per-trial failure simulations, grid-search
    candidates — while keeping every observable result identical to the
    sequential execution:

    - {!map_jobs} preserves input order: result [i] always comes from
      input [i], no matter which domain computed it or in which order
      jobs finished.
    - [jobs:1] (the default everywhere) bypasses the pool entirely and
      runs on the calling domain, so sequential behaviour is not merely
      equivalent but literally the same code path.
    - Failures carry their job context: the first failing job (by input
      index, not completion order) is re-raised as {!Job_failed} after
      the barrier, so which error surfaces does not depend on domain
      scheduling.
    - {!job_seed} derives statistically independent per-job RNG seeds
      from a base seed and the job index, so stochastic jobs partition
      their randomness deterministically instead of sharing a stream.
    - {!map_jobs_obs} forks one {!Obs.t} child context per job and
      merges the children back into the parent registry after the
      barrier (in input order), so metrics aggregate race-free and
      counter totals match the sequential run.

    The pool uses only the stdlib ([Domain], [Mutex], [Condition],
    [Queue]); there is no dependency on domainslib. Blocked {!await}
    calls help execute queued jobs instead of idling, which makes
    nested submissions (a job that itself submits and awaits sub-jobs)
    deadlock-free even on a pool with a single worker. *)

exception
  Job_failed of {
    index : int;  (** input position of the failing job *)
    label : string;  (** job label (the index unless [label_of] was given) *)
    seed : int64 option;
        (** the job's {!job_seed} when [base_seed] was given, so the
            failing job can be re-run standalone *)
    backtrace : string;  (** backtrace captured on the worker domain *)
    exn : exn;  (** the original exception *)
  }
(** Raised by {!map_jobs} (and friends) when a job fails. The original
    exception and its worker-side backtrace are preserved. *)

type t
(** A pool of worker domains sharing one FIFO job queue. *)

type 'a future
(** Handle to a submitted job's eventual result. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible [--jobs] value
    for "use the whole machine". *)

val create : domains:int -> unit -> t
(** [create ~domains ()] spawns [domains] worker domains (clamped to
    [0 .. 126] so the stdlib's domain limit cannot be exceeded; [0] is
    legal and means all work happens in helping {!await} calls). *)

val shutdown : t -> unit
(** Drain the queue, stop the workers and join their domains.
    Idempotent. Submitting to a shut-down pool raises
    [Invalid_argument]. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] over a fresh pool and always shuts
    it down, also on exception. *)

val submit : t -> ?label:string -> (unit -> 'a) -> 'a future
(** Enqueue a job. The result (or exception) is captured on whichever
    domain runs it and delivered at {!await}. *)

val await : 'a future -> 'a
(** Block until the job finished; while its result is pending, execute
    other queued jobs on the calling domain (this is what makes nested
    submit/await safe). Re-raises the job's exception (with its
    original backtrace) if it failed. *)

val map_jobs :
  ?pool:t ->
  ?base_seed:int64 ->
  ?label_of:(int -> string) ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [map_jobs ~jobs f arr] applies [f] to every element, running up to
    [jobs] applications concurrently, and returns the results in input
    order. With [jobs <= 1] (or fewer than two elements) the
    applications run sequentially on the calling domain. With [pool]
    the jobs run on the given pool (whose worker count then bounds the
    parallelism); otherwise a transient pool of [jobs - 1] workers is
    created — the caller participates as the [jobs]-th worker through
    helping {!await}s — and shut down before returning.

    If any job raises, the remaining jobs still run to completion (the
    barrier is unconditional), and then the failure with the {e
    smallest input index} is re-raised as {!Job_failed}. [base_seed]
    stamps the failure with [job_seed base_seed index]; [label_of]
    supplies a human-readable label per index. Both affect only error
    reporting, never the computation. *)

val job_seed : int64 -> int -> int64
(** [job_seed base i] is a SplitMix64-derived seed for job [i]:
    deterministic in [(base, i)] and statistically independent across
    indices. Feed it to {!Rng.create} so each parallel job owns its own
    stream. *)

val map_jobs_obs :
  ?obs:Obs.t ->
  ?pool:t ->
  ?base_seed:int64 ->
  ?label_of:(int -> string) ->
  jobs:int ->
  (obs:Obs.t -> 'a -> 'b) ->
  'a array ->
  'b array
(** {!map_jobs} for instrumented jobs. With [jobs <= 1] every job
    receives the parent [obs] unchanged (the exact sequential
    behaviour). With [jobs > 1] each job receives {!Obs.fork}[ obs] —
    an isolated child context — and after the barrier the children are
    merged back into the parent with {!Obs.merge}, in input order, so
    counters, histograms and phase timers aggregate exactly as in the
    sequential run (gauges keep the last-indexed job's value). The
    children are merged even when a job failed, before {!Job_failed}
    propagates. On a disabled [obs] (the default) instrumentation stays
    zero-cost. *)
