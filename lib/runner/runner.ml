exception
  Job_failed of {
    index : int;
    label : string;
    seed : int64 option;
    backtrace : string;
    exn : exn;
  }

let () =
  Printexc.register_printer (function
    | Job_failed { index; label; seed; exn; _ } ->
        let seed_part =
          match seed with
          | None -> ""
          | Some s -> Printf.sprintf " seed %Ld" s
        in
        Some
          (Printf.sprintf "Runner.Job_failed(job %d %S%s: %s)" index label
             seed_part (Printexc.to_string exn))
    | _ -> None)

type job = unit -> unit

type t = {
  mutex : Mutex.t;
  cond : Condition.t;  (* signaled on: new job, job completion, shutdown *)
  queue : job Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = { pool : t; mutable state : 'a state }

let default_jobs () = Domain.recommended_domain_count ()

(* The stdlib caps live domains at 128 (including the main one); clamp
   so a generous --jobs cannot abort the program. *)
let max_workers = 126

let worker_loop pool =
  let rec take () =
    (* Called with the mutex held. *)
    match Queue.take_opt pool.queue with
    | Some j -> Some j
    | None ->
        if pool.stopped then None
        else begin
          Condition.wait pool.cond pool.mutex;
          take ()
        end
  in
  let rec loop () =
    Mutex.lock pool.mutex;
    let j = take () in
    Mutex.unlock pool.mutex;
    match j with
    | None -> ()
    | Some j ->
        j ();
        loop ()
  in
  loop ()

let create ~domains () =
  let pool =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stopped = false;
      workers = [];
    }
  in
  let n = max 0 (min domains max_workers) in
  pool.workers <- List.init n (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopped <- true;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  let workers = pool.workers in
  pool.workers <- [];
  List.iter Domain.join workers

let with_pool ~domains f =
  let pool = create ~domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let submit pool ?(label = "job") f =
  let fut = { pool; state = Pending } in
  let run () =
    (* Run outside the lock; only the state hand-off is critical. *)
    let result =
      match f () with
      | v -> Done v
      | exception exn -> Failed (exn, Printexc.get_raw_backtrace ())
    in
    Mutex.lock pool.mutex;
    fut.state <- result;
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mutex
  in
  Mutex.lock pool.mutex;
  if pool.stopped then begin
    Mutex.unlock pool.mutex;
    invalid_arg (Printf.sprintf "Runner.submit %S: pool is shut down" label)
  end;
  Queue.push run pool.queue;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  fut

let await_result fut =
  let pool = fut.pool in
  let rec wait () =
    Mutex.lock pool.mutex;
    match fut.state with
    | Done v ->
        Mutex.unlock pool.mutex;
        Ok v
    | Failed (exn, bt) ->
        Mutex.unlock pool.mutex;
        Error (exn, bt)
    | Pending -> (
        (* Help: run queued jobs instead of idling, so a job awaiting a
           sub-job it just submitted cannot deadlock the pool. *)
        match Queue.take_opt pool.queue with
        | Some j ->
            Mutex.unlock pool.mutex;
            j ();
            wait ()
        | None ->
            Condition.wait pool.cond pool.mutex;
            Mutex.unlock pool.mutex;
            wait ())
  in
  wait ()

let await fut =
  match await_result fut with
  | Ok v -> v
  | Error (exn, bt) -> Printexc.raise_with_backtrace exn bt

(* Golden-ratio stepping plus the SplitMix64 finalizer (via Rng): jobs
   get well-separated, statistically independent streams for any base. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let job_seed base i =
  Rng.int64 (Rng.create (Int64.add base (Int64.mul golden_gamma (Int64.of_int i))))

let fail ?base_seed ?label_of index exn bt =
  let label =
    match label_of with Some f -> f index | None -> string_of_int index
  in
  let seed = Option.map (fun base -> job_seed base index) base_seed in
  raise
    (Job_failed
       { index; label; seed; backtrace = Printexc.raw_backtrace_to_string bt; exn })

let map_jobs_on ?base_seed ?label_of pool f arr =
  let futs =
    Array.mapi (fun i x -> submit pool ~label:(string_of_int i) (fun () -> f x)) arr
  in
  (* Unconditional barrier: every job finishes before any error is
     reported, so the raised failure is the first by input index, not
     by completion order. *)
  let results = Array.map await_result futs in
  Array.mapi
    (fun index r ->
      match r with
      | Ok v -> v
      | Error (exn, bt) -> fail ?base_seed ?label_of index exn bt)
    results

let map_jobs ?pool ?base_seed ?label_of ~jobs f arr =
  let n = Array.length arr in
  if jobs <= 1 || n <= 1 then
    (* Sequential path: same code path as Array.map, but failures still
       carry their job context so a crash is reproducible standalone. *)
    Array.mapi
      (fun i x ->
        match f x with
        | v -> v
        | exception exn ->
            let bt = Printexc.get_raw_backtrace () in
            fail ?base_seed ?label_of i exn bt)
      arr
  else
    match pool with
    | Some pool -> map_jobs_on ?base_seed ?label_of pool f arr
    | None ->
        (* The caller helps through the awaits, so [jobs - 1] workers
           give [jobs]-way parallelism. *)
        with_pool ~domains:(min (jobs - 1) (n - 1)) (fun pool ->
            map_jobs_on ?base_seed ?label_of pool f arr)

let map_jobs_obs ?(obs = Obs.disabled) ?pool ?base_seed ?label_of ~jobs f arr =
  let n = Array.length arr in
  if jobs <= 1 || n <= 1 then
    map_jobs ?base_seed ?label_of ~jobs:1 (fun x -> f ~obs x) arr
  else begin
    let children = Array.map (fun _ -> Obs.fork obs) arr in
    (* Merge in input order even if a job failed, so the metrics of the
       completed jobs survive the error. *)
    Fun.protect
      ~finally:(fun () -> Array.iter (fun child -> Obs.merge ~into:obs child) children)
      (fun () ->
        map_jobs ?pool ?base_seed ?label_of ~jobs
          (fun (i, x) -> f ~obs:children.(i) x)
          (Array.mapi (fun i x -> (i, x)) arr))
  end
