type params = {
  n : int;
  n_tier1 : int;
  transit_fraction : float;
  mean_providers : float;
  peering_prob : float;
  cities : int;
  max_parallel : int;
  seed : int64;
}

let default_params =
  {
    n = 12000;
    n_tier1 = 15;
    transit_fraction = 0.18;
    mean_providers = 1.9;
    peering_prob = 0.35;
    cities = 150;
    max_parallel = 8;
    seed = 0x5C10AL;
  }

let small_params = { default_params with n = 1200; n_tier1 = 12; cities = 80 }

let draw_cities rng ~cities ~count =
  let chosen = Hashtbl.create count in
  while Hashtbl.length chosen < count do
    Hashtbl.replace chosen (Rng.int rng cities) ()
  done;
  let arr = Array.make count 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun c () ->
      arr.(!i) <- c;
      incr i)
    chosen;
  Array.sort compare arr;
  arr

let shared_cities a b =
  (* Both arrays are sorted. *)
  let na = Array.length a and nb = Array.length b in
  let rec go i j acc =
    if i >= na || j >= nb then acc
    else if a.(i) = b.(j) then go (i + 1) (j + 1) (acc + 1)
    else if a.(i) < b.(j) then go (i + 1) j acc
    else go i (j + 1) acc
  in
  go 0 0 0

let parallel_count p a_cities b_cities =
  max 1 (min p.max_parallel (shared_cities a_cities b_cities))

let generate p =
  if p.n < p.n_tier1 then invalid_arg "Caida_like.generate: n < n_tier1";
  if p.n_tier1 < 2 then invalid_arg "Caida_like.generate: need at least 2 tier-1 ASes";
  let rng = Rng.create p.seed in
  let b = Graph.builder () in
  let cities_of = Array.make p.n [||] in
  let tier_of = Array.make p.n 3 in
  (* Preferential-attachment urn: an AS appears once per incident link. *)
  let urn = Array.make (16 * p.n) 0 in
  let urn_len = ref 0 in
  let urn_add v =
    if !urn_len < Array.length urn then begin
      urn.(!urn_len) <- v;
      incr urn_len
    end
  in
  let add_as i ~tier ~city_count =
    let cities = draw_cities rng ~cities:p.cities ~count:(min p.cities city_count) in
    cities_of.(i) <- cities;
    tier_of.(i) <- tier;
    let idx = Graph.add_as b ~tier ~cities (Id.ia 1 (i + 1)) in
    assert (idx = i)
  in
  (* Tier-1 clique. *)
  for i = 0 to p.n_tier1 - 1 do
    add_as i ~tier:1 ~city_count:(25 + Rng.int rng 36)
  done;
  for i = 0 to p.n_tier1 - 1 do
    for j = i + 1 to p.n_tier1 - 1 do
      let count = parallel_count p cities_of.(i) cities_of.(j) in
      Graph.add_link b ~count ~rel:Graph.Peering i j;
      for _ = 1 to count do
        urn_add i;
        urn_add j
      done
    done
  done;
  (* Everyone else attaches to transit providers preferentially. *)
  let extra_provider_prob = max 0.0 (min 1.0 (p.mean_providers -. 1.0)) in
  for i = p.n_tier1 to p.n - 1 do
    let transit = Rng.float rng 1.0 < p.transit_fraction in
    let tier = if transit then 2 else 3 in
    let city_count =
      if transit then 4 + Rng.int rng 12 else 1 + Rng.int rng 2
    in
    add_as i ~tier ~city_count;
    let n_providers =
      1
      + (if Rng.float rng 1.0 < extra_provider_prob then 1 else 0)
      + if Rng.float rng 1.0 < extra_provider_prob /. 3.0 then 1 else 0
    in
    let chosen = Hashtbl.create 4 in
    let attempts = ref 0 in
    while Hashtbl.length chosen < n_providers && !attempts < 200 do
      incr attempts;
      let cand = urn.(Rng.int rng !urn_len) in
      if cand <> i && tier_of.(cand) <= 2 && not (Hashtbl.mem chosen cand) then
        Hashtbl.replace chosen cand ()
    done;
    if Hashtbl.length chosen = 0 then
      (* Extremely unlikely fallback: attach to a random tier-1. *)
      Hashtbl.replace chosen (Rng.int rng p.n_tier1) ();
    Hashtbl.iter
      (fun prov () ->
        let count = parallel_count p cities_of.(prov) cities_of.(i) in
        Graph.add_link b ~count ~rel:Graph.Provider_customer prov i;
        for _ = 1 to count do
          urn_add prov;
          urn_add i
        done)
      chosen;
    (* Transit ASes sometimes add a peering link to another transit AS. *)
    if transit && Rng.float rng 1.0 < p.peering_prob then begin
      let attempts = ref 0 in
      let found = ref (-1) in
      while !found < 0 && !attempts < 50 do
        incr attempts;
        let cand = urn.(Rng.int rng !urn_len) in
        if cand <> i && tier_of.(cand) = 2 then found := cand
      done;
      if !found >= 0 then begin
        let count = parallel_count p cities_of.(!found) cities_of.(i) in
        Graph.add_link b ~count ~rel:Graph.Peering !found i;
        for _ = 1 to count do
          urn_add !found;
          urn_add i
        done
      end
    end
  done;
  Graph.freeze b

let core_subset g ~k = Graph.prune_to_top_degree g k

let assign_isds g ~per_isd =
  if per_isd < 1 then invalid_arg "Caida_like.assign_isds: per_isd must be >= 1";
  let b = Graph.builder () in
  for v = 0 to Graph.n g - 1 do
    let info = Graph.as_info g v in
    let ia = Id.ia ((v / per_isd) + 1) (v + 1) in
    ignore (Graph.add_as b ~tier:info.Graph.tier ~cities:info.Graph.cities ~core:info.Graph.core ia)
  done;
  for l = 0 to Graph.num_links g - 1 do
    let lk = Graph.link g l in
    Graph.add_link b ~rel:lk.Graph.rel lk.Graph.a lk.Graph.b
  done;
  Graph.freeze b

let cone_sizes g =
  let n = Graph.n g in
  let cones = Array.init n (fun _ -> Bitset.create n) in
  (* Customers always have a higher index than their providers (the
     generator attaches each new AS to existing providers), so reverse
     index order is a topological order of the p2c DAG. For graphs not
     built by [generate], fall back to iterating until fixpoint. *)
  for v = n - 1 downto 0 do
    Bitset.add cones.(v) v;
    List.iter
      (fun c -> Bitset.union_into ~dst:cones.(v) cones.(c))
      (Graph.customers g v)
  done;
  (* One fixpoint sweep to be safe for arbitrary DAG orderings. *)
  let changed = ref true in
  let guard = ref 0 in
  while !changed && !guard < 32 do
    changed := false;
    incr guard;
    for v = n - 1 downto 0 do
      let before = Bitset.cardinal cones.(v) in
      List.iter
        (fun c -> Bitset.union_into ~dst:cones.(v) cones.(c))
        (Graph.customers g v);
      if Bitset.cardinal cones.(v) <> before then changed := true
    done
  done;
  (cones, Array.map Bitset.cardinal cones)

let build_isd g ~n_core =
  let cones, sizes = cone_sizes g in
  let order = Array.init (Graph.n g) (fun i -> i) in
  Array.sort (fun a b -> compare (sizes.(b), a) (sizes.(a), b)) order;
  let core_old = Array.sub order 0 (min n_core (Graph.n g)) in
  let members = Bitset.create (Graph.n g) in
  Array.iter
    (fun c -> Bitset.union_into ~dst:members cones.(c))
    core_old;
  let keep = Bitset.to_list members in
  let sub, old_of_new = Graph.induced_subgraph g keep in
  let core_set = Hashtbl.create n_core in
  Array.iter (fun c -> Hashtbl.replace core_set c ()) core_old;
  let sub = Graph.map_core sub (fun ni -> Hashtbl.mem core_set old_of_new.(ni)) in
  (sub, old_of_new)
