(** SCIONLab-like research-testbed topology (§5.4, Appendix B).

    The paper evaluates the control plane on the SCIONLab testbed: 21
    core ASes whose core graph is sparse ("on average, a core AS has 2
    neighbors"). We generate a ring of the 21 core ASes with a small
    number of chords, which matches that average degree, plus optional
    non-core attachment ASes. *)

type params = {
  n_core : int;  (** 21 in SCIONLab *)
  chords : int;  (** extra core links beyond the ring *)
  parallel_edges : int;  (** ring edges doubled (parallel links exist in
                             the testbed and drive the 3+ region of
                             Figs. 7–8) *)
  attachments_per_core : int;  (** user ASes attached below each core AS *)
  seed : int64;
}

val default_params : params
(** 21 core ASes, 2 chords, 2 doubled edges, no attachment ASes. *)

val generate : params -> Graph.t
(** Core links form a ring plus [chords] random chords, with
    [parallel_edges] randomly chosen ring edges doubled; attachment
    ASes hang off core ASes with provider–customer links. *)
