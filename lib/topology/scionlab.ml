type params = {
  n_core : int;
  chords : int;
  parallel_edges : int;
  attachments_per_core : int;
  seed : int64;
}

let default_params =
  { n_core = 21; chords = 2; parallel_edges = 2; attachments_per_core = 0; seed = 0x5C10AB2L }

let generate p =
  if p.n_core < 3 then invalid_arg "Scionlab.generate: need at least 3 core ASes";
  let rng = Rng.create p.seed in
  let b = Graph.builder () in
  for i = 0 to p.n_core - 1 do
    ignore (Graph.add_as b ~tier:1 ~core:true (Id.ia ((i / 3) + 1) (i + 1)))
  done;
  for i = 0 to p.n_core - 1 do
    Graph.add_link b ~rel:Graph.Core i ((i + 1) mod p.n_core)
  done;
  let added = Hashtbl.create 8 in
  let chords = ref 0 in
  let attempts = ref 0 in
  while !chords < p.chords && !attempts < 1000 do
    incr attempts;
    let x = Rng.int rng p.n_core in
    let y = Rng.int rng p.n_core in
    let lo = min x y and hi = max x y in
    let adjacent = hi - lo = 1 || (lo = 0 && hi = p.n_core - 1) in
    if lo <> hi && (not adjacent) && not (Hashtbl.mem added (lo, hi)) then begin
      Hashtbl.replace added (lo, hi) ();
      Graph.add_link b ~rel:Graph.Core lo hi;
      incr chords
    end
  done;
  (* Double a few ring edges: parallel inter-AS links. *)
  let doubled = Hashtbl.create 4 in
  let added_parallel = ref 0 in
  let attempts = ref 0 in
  while !added_parallel < p.parallel_edges && !attempts < 1000 do
    incr attempts;
    let i = Rng.int rng p.n_core in
    if not (Hashtbl.mem doubled i) then begin
      Hashtbl.replace doubled i ();
      Graph.add_link b ~rel:Graph.Core i ((i + 1) mod p.n_core);
      incr added_parallel
    end
  done;
  let next_asn = ref (p.n_core + 1) in
  for i = 0 to p.n_core - 1 do
    for _ = 1 to p.attachments_per_core do
      let isd = (i / 3) + 1 in
      let leaf = Graph.add_as b ~tier:3 (Id.ia isd !next_asn) in
      incr next_asn;
      Graph.add_link b ~rel:Graph.Provider_customer i leaf
    done
  done;
  Graph.freeze b
