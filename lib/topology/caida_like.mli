(** Synthetic Internet-like topology generator.

    Stands in for the CAIDA AS-rel-geo dataset (§5.1). The generator
    reproduces the structural properties the evaluation depends on:

    - heavy-tailed AS degrees via preferential attachment of customers
      to transit providers;
    - a densely meshed tier-1 clique;
    - Gao–Rexford relationship labels (provider–customer, peering);
    - geo presence per AS (more locations for higher tiers), from which
      {e parallel inter-AS links} are derived as the number of shared
      interconnection cities — concentrating multi-links in the core,
      as observed in the real dataset.

    See DESIGN.md §2 for the substitution rationale. *)

type params = {
  n : int;  (** total number of ASes *)
  n_tier1 : int;  (** size of the fully meshed tier-1 clique *)
  transit_fraction : float;  (** fraction of non-tier-1 ASes that are transit *)
  mean_providers : float;  (** mean provider count per customer AS *)
  peering_prob : float;  (** probability a transit AS adds a peering link *)
  cities : int;  (** number of interconnection locations *)
  max_parallel : int;  (** cap on parallel links per AS pair *)
  seed : int64;
}

val default_params : params
(** 12 000 ASes, 15 tier-1s, matching the dataset scale of §5.1. *)

val small_params : params
(** 1 200 ASes for CI-scale runs. *)

val generate : params -> Graph.t
(** Build a connected topology. The tier-1 clique is linked by
    {!Graph.Peering} links among themselves; everyone else attaches to
    providers with {!Graph.Provider_customer} links. *)

val core_subset : Graph.t -> k:int -> Graph.t * int array
(** [core_subset g ~k] extracts the [k] highest-degree ASes by
    incremental pruning (§5.1), relabels every surviving link as
    {!Graph.Core} and marks every AS as core. Also returns the
    new-to-old index map. *)

val assign_isds : Graph.t -> per_isd:int -> Graph.t
(** Partition core ASes into ISDs of [per_isd] members (200 ISDs × 10
    core ASes in the paper's core-beaconing setup), assigning
    [Id.ia] values accordingly. Membership is by index blocks; core
    beaconing mechanics do not depend on the grouping. *)

val build_isd : Graph.t -> n_core:int -> Graph.t * int array
(** [build_isd g ~n_core] models the intra-ISD experiment topology:
    pick the [n_core] largest-customer-cone ASes as the ISD core, take
    the union of their customer cones, and induce the subgraph (the
    paper obtains 11 core + 7017 non-core ASes this way). Core flags
    are set on the selected ASes. *)
