(** AS-level multigraph with business relationships.

    The inter-domain topology is a multigraph: two ASes may be joined by
    several parallel links (one per shared interconnection location in
    the CAIDA AS-rel-geo dataset the paper uses). Every link endpoint
    carries an AS-local interface identifier, because SCION path
    segments are expressed at the granularity of inter-domain
    interfaces (§2.2). ASes are indexed densely from 0. *)

type relationship =
  | Core  (** link between core ASes (core beaconing runs over these) *)
  | Provider_customer  (** directed: the [a] endpoint is the provider *)
  | Peering  (** settlement-free peering between non-core ASes *)

type rel_from_self =
  | To_provider
  | To_customer
  | To_peer
  | To_core
(** A link's relationship as seen from one of its endpoints. *)

type link = {
  link_id : int;
  a : int;  (** AS index; the provider for {!Provider_customer} links *)
  a_if : Id.iface;
  b : int;
  b_if : Id.iface;
  rel : relationship;
}

type half_link = {
  via : int;  (** link id *)
  peer : int;  (** neighbor AS index *)
  local_if : Id.iface;
  remote_if : Id.iface;
  dir : rel_from_self;
}
(** One endpoint's view of an incident link. *)

type as_info = {
  ia : Id.ia;
  tier : int;  (** 1 = tier-1 transit, larger = lower in the hierarchy *)
  cities : int array;  (** interconnection locations (city ids) *)
  core : bool;  (** member of its ISD's core *)
}

type t

(** {1 Construction} *)

type builder

val builder : unit -> builder

val add_as : builder -> ?tier:int -> ?cities:int array -> ?core:bool -> Id.ia -> int
(** Adds an AS, returning its dense index. *)

val add_link : builder -> ?count:int -> rel:relationship -> int -> int -> unit
(** [add_link b ~count ~rel a c] adds [count] (default 1) parallel links
    between ASes [a] and [c]; interface ids are allocated sequentially
    per AS, starting at 1. For {!Provider_customer}, [a] is the
    provider. Raises [Invalid_argument] on self-links or unknown
    indices. *)

val freeze : builder -> t

(** {1 Accessors} *)

val n : t -> int
(** Number of ASes. *)

val num_links : t -> int

val as_info : t -> int -> as_info

val find_by_ia : t -> Id.ia -> int option

val link : t -> int -> link

val adj : t -> int -> half_link array
(** All incident half-links of an AS (one entry per parallel link). *)

val neighbors : t -> int -> int list
(** Distinct neighbor AS indices. *)

val link_degree : t -> int -> int
(** Number of incident links (counting parallel links). *)

val as_degree : t -> int -> int
(** Number of distinct neighbor ASes. *)

val links_between : t -> int -> int -> link list

val customers : t -> int -> int list
val providers : t -> int -> int list
val peers : t -> int -> int list
(** Distinct neighbors by relationship direction ({!To_core} neighbors
    are reported by none of these three). *)

val core_ases : t -> int list

val is_core : t -> int -> bool

val other_end : link -> int -> int
(** [other_end l v] is the opposite endpoint of [v]. Raises
    [Invalid_argument] if [v] is not an endpoint of [l]. *)

val iface_of : link -> int -> Id.iface
(** The interface id that AS [v] uses on link [l]. *)

(** {1 Derived structure} *)

val customer_cone : t -> int -> int list
(** The AS itself plus all direct and indirect customers (CAIDA AS-rank
    cone, used to select the intra-ISD experiment's core ASes). *)

val connected_components : t -> int list list
(** Components as lists of AS indices, largest first. *)

val induced_subgraph : ?relabel_rel:(relationship -> relationship) -> t -> int list -> t * int array
(** [induced_subgraph g keep] builds the subgraph on [keep] (old
    indices), optionally rewriting relationships (used to turn a pruned
    high-degree subgraph into an all-core graph). Returns the new graph
    and the mapping from new index to old index. Interface ids are
    re-allocated. *)

val prune_to_top_degree : t -> int -> t * int array
(** [prune_to_top_degree g k] incrementally removes the lowest
    AS-degree AS until [k] remain (the paper's §5.1 procedure for
    extracting the 2000-AS core), then takes the largest connected
    component of the result and relabels every surviving link as
    {!Core}. Returns the new graph and new-to-old index mapping. *)

val set_core : t -> int -> bool -> t
(** Functional update of one AS's core flag. *)

val map_core : t -> (int -> bool) -> t
(** Recompute every AS's core flag. *)

(** {1 Serialisation} *)

val to_text : t -> string
(** Line-oriented text format, parsable by {!of_text}. *)

val of_text : string -> (t, string) result
