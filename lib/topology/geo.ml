(* SplitMix-style integer hash for deterministic pseudo-geography. *)
let hash64 x =
  let open Int64 in
  let z = add (of_int x) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let unit_float h =
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let city_position c =
  let h1 = hash64 (2 * c) and h2 = hash64 ((2 * c) + 1) in
  (10_000.0 *. unit_float h1, 10_000.0 *. unit_float h2)

let shares_city a b =
  Array.exists (fun c -> Array.exists (fun c' -> c = c') b) a

let representative cities fallback =
  if Array.length cities = 0 then fallback else cities.(0)

let link_latency_ms g l =
  let lk = Graph.link g l in
  let ia = (Graph.as_info g lk.Graph.a).Graph.cities in
  let ib = (Graph.as_info g lk.Graph.b).Graph.cities in
  let base = 1.0 in
  let spread =
    (* Parallel links land in different cities: a deterministic 0-2 ms
       per-link spread keeps them distinguishable. *)
    2.0 *. unit_float (hash64 (0x11 + l))
  in
  if Array.length ia > 0 && Array.length ib > 0 && shares_city ia ib then
    base +. spread
  else begin
    let ca = representative ia (lk.Graph.a * 7919) in
    let cb = representative ib (lk.Graph.b * 7919) in
    let xa, ya = city_position ca and xb, yb = city_position cb in
    let km = sqrt (((xa -. xb) ** 2.0) +. ((ya -. yb) ** 2.0)) in
    base +. spread +. (km /. 200.0)
  end

let latency_table g = Array.init (Graph.num_links g) (link_latency_ms g)

let path_latency_ms table links =
  Array.fold_left (fun acc l -> acc +. table.(l)) 0.0 links
