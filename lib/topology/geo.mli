(** Geographic link latencies.

    §4.2 notes that optimising paths for latency needs information
    beyond interface identifiers — e.g. border-router locations or
    latency measurements. The generator already places every AS in a
    set of interconnection cities; this module derives deterministic
    per-link propagation latencies from those locations: links between
    ASes sharing a city are metro-length, others pay the great-circle
    cost between representative cities. *)

val city_position : int -> float * float
(** Deterministic pseudo-position of a city id on a 10 000 × 10 000 km
    plane (hash-based; no dataset required). *)

val link_latency_ms : Graph.t -> int -> float
(** One-way propagation latency of a link in milliseconds: 1 ms base
    (metro hop) when the endpoints share a city, otherwise base plus
    distance at 200 km/ms (fibre), plus a small deterministic per-link
    spread so parallel links differ. Always positive. *)

val latency_table : Graph.t -> float array
(** [link_latency_ms] for every link, indexed by link id. *)

val path_latency_ms : float array -> int array -> float
(** Total latency of a link sequence against a latency table. *)
