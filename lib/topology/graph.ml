type relationship = Core | Provider_customer | Peering

type rel_from_self = To_provider | To_customer | To_peer | To_core

type link = {
  link_id : int;
  a : int;
  a_if : Id.iface;
  b : int;
  b_if : Id.iface;
  rel : relationship;
}

type half_link = {
  via : int;
  peer : int;
  local_if : Id.iface;
  remote_if : Id.iface;
  dir : rel_from_self;
}

type as_info = { ia : Id.ia; tier : int; cities : int array; core : bool }

type t = {
  ases : as_info array;
  links : link array;
  adjacency : half_link array array;
  by_ia : (Id.ia, int) Hashtbl.t;
}

(* --- Builder --- *)

type builder = {
  mutable b_ases : as_info list; (* reversed *)
  mutable b_n : int;
  mutable b_links : (int * int * relationship) list; (* reversed, (a, b, rel) *)
  mutable b_nlinks : int;
  b_seen : (Id.ia, unit) Hashtbl.t;
}

let builder () =
  { b_ases = []; b_n = 0; b_links = []; b_nlinks = 0; b_seen = Hashtbl.create 64 }

let add_as b ?(tier = 3) ?(cities = [||]) ?(core = false) ia =
  if Hashtbl.mem b.b_seen ia then
    invalid_arg (Printf.sprintf "Graph.add_as: duplicate IA %s" (Id.ia_to_string ia));
  Hashtbl.replace b.b_seen ia ();
  let idx = b.b_n in
  b.b_ases <- { ia; tier; cities; core } :: b.b_ases;
  b.b_n <- idx + 1;
  idx

let add_link b ?(count = 1) ~rel x y =
  if x = y then invalid_arg "Graph.add_link: self-link";
  if x < 0 || x >= b.b_n || y < 0 || y >= b.b_n then
    invalid_arg "Graph.add_link: unknown AS index";
  if count < 1 then invalid_arg "Graph.add_link: count must be >= 1";
  for _ = 1 to count do
    b.b_links <- (x, y, rel) :: b.b_links;
    b.b_nlinks <- b.b_nlinks + 1
  done

let dir_of_endpoint rel ~is_a =
  match rel with
  | Core -> To_core
  | Peering -> To_peer
  | Provider_customer -> if is_a then To_customer else To_provider

let freeze b =
  let n = b.b_n in
  let ases = Array.of_list (List.rev b.b_ases) in
  let raw = Array.of_list (List.rev b.b_links) in
  let next_if = Array.make n 1 in
  let links =
    Array.mapi
      (fun link_id (x, y, rel) ->
        let a_if = next_if.(x) in
        next_if.(x) <- a_if + 1;
        let b_if = next_if.(y) in
        next_if.(y) <- b_if + 1;
        { link_id; a = x; a_if; b = y; b_if; rel })
      raw
  in
  let counts = Array.make n 0 in
  Array.iter
    (fun l ->
      counts.(l.a) <- counts.(l.a) + 1;
      counts.(l.b) <- counts.(l.b) + 1)
    links;
  let adjacency =
    Array.init n (fun v ->
        Array.make counts.(v)
          { via = -1; peer = -1; local_if = 0; remote_if = 0; dir = To_core })
  in
  let fill = Array.make n 0 in
  Array.iter
    (fun l ->
      let put v ~is_a =
        let peer, local_if, remote_if =
          if is_a then (l.b, l.a_if, l.b_if) else (l.a, l.b_if, l.a_if)
        in
        adjacency.(v).(fill.(v)) <-
          { via = l.link_id; peer; local_if; remote_if; dir = dir_of_endpoint l.rel ~is_a };
        fill.(v) <- fill.(v) + 1
      in
      put l.a ~is_a:true;
      put l.b ~is_a:false)
    links;
  let by_ia = Hashtbl.create n in
  Array.iteri (fun i info -> Hashtbl.replace by_ia info.ia i) ases;
  { ases; links; adjacency; by_ia }

(* --- Accessors --- *)

let n t = Array.length t.ases
let num_links t = Array.length t.links
let as_info t v = t.ases.(v)
let find_by_ia t ia = Hashtbl.find_opt t.by_ia ia
let link t id = t.links.(id)
let adj t v = t.adjacency.(v)

let neighbors t v =
  let seen = Hashtbl.create 8 in
  Array.fold_left
    (fun acc h ->
      if Hashtbl.mem seen h.peer then acc
      else begin
        Hashtbl.replace seen h.peer ();
        h.peer :: acc
      end)
    [] t.adjacency.(v)
  |> List.rev

let link_degree t v = Array.length t.adjacency.(v)

let as_degree t v = List.length (neighbors t v)

let links_between t x y =
  Array.fold_left
    (fun acc h -> if h.peer = y then t.links.(h.via) :: acc else acc)
    [] t.adjacency.(x)
  |> List.rev

let by_dir t v want =
  let seen = Hashtbl.create 8 in
  Array.fold_left
    (fun acc h ->
      if h.dir = want && not (Hashtbl.mem seen h.peer) then begin
        Hashtbl.replace seen h.peer ();
        h.peer :: acc
      end
      else acc)
    [] t.adjacency.(v)
  |> List.rev

let customers t v = by_dir t v To_customer
let providers t v = by_dir t v To_provider
let peers t v = by_dir t v To_peer

let core_ases t =
  let acc = ref [] in
  for v = n t - 1 downto 0 do
    if t.ases.(v).core then acc := v :: !acc
  done;
  !acc

let is_core t v = t.ases.(v).core

let other_end l v =
  if l.a = v then l.b
  else if l.b = v then l.a
  else invalid_arg "Graph.other_end: AS is not an endpoint"

let iface_of l v =
  if l.a = v then l.a_if
  else if l.b = v then l.b_if
  else invalid_arg "Graph.iface_of: AS is not an endpoint"

(* --- Derived structure --- *)

let customer_cone t root =
  let visited = Hashtbl.create 64 in
  let rec visit v acc =
    if Hashtbl.mem visited v then acc
    else begin
      Hashtbl.replace visited v ();
      List.fold_left (fun acc c -> visit c acc) (v :: acc) (customers t v)
    end
  in
  List.rev (visit root [])

let connected_components t =
  let nn = n t in
  let comp = Array.make nn (-1) in
  let next = ref 0 in
  for v = 0 to nn - 1 do
    if comp.(v) = -1 then begin
      let c = !next in
      incr next;
      let stack = ref [ v ] in
      comp.(v) <- c;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
            stack := rest;
            Array.iter
              (fun h ->
                if comp.(h.peer) = -1 then begin
                  comp.(h.peer) <- c;
                  stack := h.peer :: !stack
                end)
              t.adjacency.(u)
      done
    end
  done;
  let buckets = Array.make !next [] in
  for v = nn - 1 downto 0 do
    buckets.(comp.(v)) <- v :: buckets.(comp.(v))
  done;
  Array.to_list buckets
  |> List.sort (fun x y -> compare (List.length y) (List.length x))

let induced_subgraph ?(relabel_rel = fun r -> r) t keep =
  let keep = List.sort_uniq compare keep in
  let old_of_new = Array.of_list keep in
  let new_of_old = Hashtbl.create (Array.length old_of_new) in
  Array.iteri (fun ni oi -> Hashtbl.replace new_of_old oi ni) old_of_new;
  let b = builder () in
  Array.iter
    (fun oi ->
      let info = t.ases.(oi) in
      ignore (add_as b ~tier:info.tier ~cities:info.cities ~core:info.core info.ia))
    old_of_new;
  Array.iter
    (fun l ->
      match (Hashtbl.find_opt new_of_old l.a, Hashtbl.find_opt new_of_old l.b) with
      | Some na, Some nb -> add_link b ~rel:(relabel_rel l.rel) na nb
      | _ -> ())
    t.links;
  (freeze b, old_of_new)

let map_core_internal t f =
  { t with ases = Array.mapi (fun i info -> { info with core = f i }) t.ases }

let prune_to_top_degree t k =
  let nn = n t in
  if k >= nn then begin
    let all = List.init nn (fun i -> i) in
    induced_subgraph ~relabel_rel:(fun _ -> Core) t all
  end
  else begin
    (* Incremental min-degree pruning with a lazy-deletion heap. *)
    let removed = Array.make nn false in
    let degree = Array.make nn 0 in
    for v = 0 to nn - 1 do
      degree.(v) <- as_degree t v
    done;
    let heap = Heap.create ~cmp:(fun (x : int * int) y -> compare x y) in
    for v = 0 to nn - 1 do
      Heap.push heap (degree.(v), v)
    done;
    let remaining = ref nn in
    while !remaining > k do
      match Heap.pop heap with
      | None -> remaining := k
      | Some (d, v) ->
          if (not removed.(v)) && d = degree.(v) then begin
            removed.(v) <- true;
            decr remaining;
            let touched = Hashtbl.create 8 in
            Array.iter
              (fun h ->
                if (not removed.(h.peer)) && not (Hashtbl.mem touched h.peer) then begin
                  Hashtbl.replace touched h.peer ();
                  degree.(h.peer) <- degree.(h.peer) - 1;
                  Heap.push heap (degree.(h.peer), h.peer)
                end)
              t.adjacency.(v)
          end
    done;
    let keep = ref [] in
    for v = nn - 1 downto 0 do
      if not removed.(v) then keep := v :: !keep
    done;
    let sub, map1 = induced_subgraph ~relabel_rel:(fun _ -> Core) t !keep in
    match connected_components sub with
    | [] -> (sub, map1)
    | largest :: _ ->
        if List.length largest = n sub then
          ((* Already connected: mark everyone core. *)
           map_core_internal sub (fun _ -> true), map1)
        else begin
          let sub2, map2 = induced_subgraph sub largest in
          let composed = Array.map (fun ni -> map1.(ni)) map2 in
          (map_core_internal sub2 (fun _ -> true), composed)
        end
  end

let set_core t v flag =
  let ases = Array.copy t.ases in
  ases.(v) <- { ases.(v) with core = flag };
  { t with ases }

let map_core = map_core_internal

(* --- Serialisation --- *)

let rel_to_string = function
  | Core -> "core"
  | Provider_customer -> "p2c"
  | Peering -> "peer"

let rel_of_string = function
  | "core" -> Some Core
  | "p2c" -> Some Provider_customer
  | "peer" -> Some Peering
  | _ -> None

let to_text t =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun i info ->
      Buffer.add_string buf
        (Printf.sprintf "as %d %s tier=%d core=%d cities=%s\n" i
           (Id.ia_to_string info.ia) info.tier
           (if info.core then 1 else 0)
           (String.concat "," (Array.to_list (Array.map string_of_int info.cities)))))
    t.ases;
  Array.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "link %d %d %s\n" l.a l.b (rel_to_string l.rel)))
    t.links;
  Buffer.contents buf

let of_text s =
  let b = builder () in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line <> "" && !error = None then begin
        match String.split_on_char ' ' line with
        | [ "as"; _idx; ia_s; tier_s; core_s; cities_s ] -> (
            let parse_kv prefix s =
              if String.length s >= String.length prefix
                 && String.sub s 0 (String.length prefix) = prefix
              then
                Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
              else None
            in
            match
              ( Id.ia_of_string ia_s,
                Option.bind (parse_kv "tier=" tier_s) int_of_string_opt,
                Option.bind (parse_kv "core=" core_s) int_of_string_opt,
                parse_kv "cities=" cities_s )
            with
            | Some ia, Some tier, Some core, Some cities_v ->
                let cities =
                  if cities_v = "" then [||]
                  else
                    String.split_on_char ',' cities_v
                    |> List.filter_map int_of_string_opt
                    |> Array.of_list
                in
                ignore (add_as b ~tier ~cities ~core:(core = 1) ia)
            | _ -> fail (Printf.sprintf "line %d: malformed as line" (lineno + 1)))
        | [ "link"; a_s; b_s; rel_s ] -> (
            match (int_of_string_opt a_s, int_of_string_opt b_s, rel_of_string rel_s) with
            | Some a, Some bb, Some rel -> (
                try add_link b ~rel a bb
                with Invalid_argument m ->
                  fail (Printf.sprintf "line %d: %s" (lineno + 1) m))
            | _ -> fail (Printf.sprintf "line %d: malformed link line" (lineno + 1)))
        | _ -> fail (Printf.sprintf "line %d: unknown record" (lineno + 1))
      end)
    lines;
  match !error with Some msg -> Error msg | None -> Ok (freeze b)
