type t = (string, float ref) Hashtbl.t

let create () = Hashtbl.create 32

let cell t key =
  match Hashtbl.find_opt t key with
  | Some r -> r
  | None ->
      let r = ref 0.0 in
      Hashtbl.replace t key r;
      r

let add t key v =
  let r = cell t key in
  r := !r +. v

let incr t key = add t key 1.0

let get t key = match Hashtbl.find_opt t key with Some r -> !r | None -> 0.0

let fold t ~init ~f = Hashtbl.fold (fun key r acc -> f acc key !r) t init

let to_sorted_list t =
  fold t ~init:[] ~f:(fun acc key v -> (key, v) :: acc)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Zero the counters but keep the keys: a series that existed before a
   reset stays visible (at 0.) afterwards, so windowed reporting never
   sees series appear and disappear between windows. *)
let reset t = Hashtbl.iter (fun _ r -> r := 0.0) t

let clear t = Hashtbl.reset t
