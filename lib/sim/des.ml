type event = { time : float; seq : int; action : t -> unit }

and t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : event Heap.t;
  (* Observability: cells hoisted at creation so the hot path pays one
     predictable branch when disabled. *)
  obs_on : bool;
  trace : Trace.t;
  obs_events : float ref;
  obs_depth : Histogram.t;
}

let compare_event e1 e2 =
  match compare e1.time e2.time with 0 -> compare e1.seq e2.seq | c -> c

(* Queue depth is sampled every [depth_sample_mask + 1] fired events. *)
let depth_sample_mask = 63

let create ?(obs = Obs.disabled) () =
  let obs_on = Obs.on obs in
  {
    clock = 0.0;
    next_seq = 0;
    queue = Heap.create ~cmp:compare_event;
    obs_on;
    trace = Obs.trace obs;
    obs_events =
      (if obs_on then Registry.counter (Obs.registry obs) "des_events_total"
       else ref 0.0);
    obs_depth =
      (if obs_on then Registry.histogram (Obs.registry obs) "des_queue_depth"
       else Histogram.create ());
  }

let now t = t.clock

let schedule_at t ~time action =
  if Float.is_nan time then invalid_arg "Des.schedule_at: time is nan";
  if time < t.clock then invalid_arg "Des.schedule_at: time is in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.queue { time; seq; action }

let schedule t ~delay action =
  if Float.is_nan delay then invalid_arg "Des.schedule: nan delay";
  if delay < 0.0 then invalid_arg "Des.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let every t ~interval ?start ?until action =
  if not (interval > 0.0) then invalid_arg "Des.every: interval must be positive";
  let first = match start with Some s -> s | None -> t.clock +. interval in
  (* Tick times are computed multiplicatively from [first] and snapped
     to [until] when within a relative epsilon, so a tick that lands
     exactly on the boundary is not lost to accumulated floating-point
     drift (e.g. interval 0.1, until 0.3). *)
  let eps = interval *. 1e-9 in
  let time_of k =
    let ti = first +. (float_of_int k *. interval) in
    match until with
    | Some u when Float.abs (ti -. u) <= eps -> u
    | _ -> ti
  in
  let rec tick k sim =
    action sim;
    let next = time_of (k + 1) in
    match until with
    | Some u when next > u -> ()
    | _ -> schedule_at sim ~time:next (tick (k + 1))
  in
  let skip = match until with Some u -> time_of 0 > u | None -> false in
  if not skip then schedule_at t ~time:(time_of 0) (tick 0)

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      if t.obs_on then begin
        t.obs_events := !(t.obs_events) +. 1.0;
        let n = int_of_float !(t.obs_events) in
        if n land depth_sample_mask = 0 then
          Histogram.observe t.obs_depth (float_of_int (Heap.length t.queue));
        if Trace.enabled t.trace Trace.Debug then
          Trace.emit t.trace Trace.Debug ~time:ev.time ~category:"des"
            ~fields:[ ("queue", string_of_int (Heap.length t.queue)) ]
            "event fired"
      end;
      ev.action t;
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some u ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.queue with
        | Some ev when ev.time <= u -> ignore (step t)
        | _ ->
            t.clock <- max t.clock u;
            continue := false
      done

let pending t = Heap.length t.queue
