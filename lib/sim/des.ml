type event = { time : float; seq : int; action : t -> unit }

and t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : event Heap.t;
}

let compare_event e1 e2 =
  match compare e1.time e2.time with 0 -> compare e1.seq e2.seq | c -> c

let create () = { clock = 0.0; next_seq = 0; queue = Heap.create ~cmp:compare_event }

let now t = t.clock

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Des.schedule_at: time is in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.queue { time; seq; action }

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Des.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let every t ~interval ?start ?until action =
  if interval <= 0.0 then invalid_arg "Des.every: interval must be positive";
  let first = match start with Some s -> s | None -> t.clock +. interval in
  let rec tick sim =
    action sim;
    let next = now sim +. interval in
    match until with
    | Some u when next > u -> ()
    | _ -> schedule_at sim ~time:next tick
  in
  let skip = match until with Some u when first > u -> true | _ -> false in
  if not skip then schedule_at t ~time:first tick

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      ev.action t;
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some u ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.queue with
        | Some ev when ev.time <= u -> ignore (step t)
        | _ ->
            t.clock <- max t.clock u;
            continue := false
      done

let pending t = Heap.length t.queue
