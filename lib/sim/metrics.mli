(** Named measurement counters for experiment accounting. *)

type t

val create : unit -> t

val add : t -> string -> float -> unit
(** Accumulate into a named counter (created on first use). *)

val incr : t -> string -> unit
(** [add t key 1.]. *)

val get : t -> string -> float
(** 0. for unknown counters. *)

val fold : t -> init:'a -> f:('a -> string -> float -> 'a) -> 'a

val to_sorted_list : t -> (string * float) list
(** Counters sorted by name. *)

val reset : t -> unit
(** Zero every counter, {e keeping} the keys: after a reset, known
    counters report 0. and still appear in {!to_sorted_list}/{!fold},
    so windowed reporting retains stable series identity. Use {!clear}
    to also drop the keys. *)

val clear : t -> unit
(** Remove every counter (keys and values). *)
