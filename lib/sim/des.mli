(** Deterministic discrete-event simulation engine.

    Replaces the ns-3 core the paper's simulator is built on: a virtual
    clock and a time-ordered event queue. Events scheduled for the same
    instant fire in scheduling order, which keeps runs reproducible. *)

type t

val create : ?obs:Obs.t -> unit -> t
(** [obs] (default {!Obs.disabled}) enables instrumentation: every
    fired event increments the [des_events_total] counter, the queue
    depth is sampled into the [des_queue_depth] histogram every 64
    events, and each firing emits a [des]-category [Debug] trace
    event. Costs one branch per event when disabled. *)

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay]. Raises
    [Invalid_argument] for negative or nan delays. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Absolute-time variant; the time must not be in the past (nor nan). *)

val every : t -> interval:float -> ?start:float -> ?until:float -> (t -> unit) -> unit
(** Periodic event starting at [start] (default [interval] from now),
    repeating until virtual time exceeds [until] (default: forever).
    A tick landing exactly on [until] fires: tick times are derived
    multiplicatively from the start time and snapped to [until] within
    a relative epsilon of [1e-9 * interval], so accumulated
    floating-point drift cannot skip the boundary tick. *)

val run : ?until:float -> t -> unit
(** Drain the event queue. With [until], stop once the next event lies
    strictly beyond that time (the clock is then advanced to [until]). *)

val step : t -> bool
(** Execute one event; [false] if the queue was empty. *)

val pending : t -> int
(** Number of queued events. *)
