(* Experiment driver: one subcommand per paper artefact.

   scion_expt table1 [--scale S] [--measure]
   scion_expt fig5   [--scale S]
   scion_expt fig6   [--scale S]
   scion_expt scionlab
   scion_expt tune   [--cores N] [--verbose]
   scion_expt topo   [--scale S]
   scion_expt all    [--scale S] *)

open Cmdliner

let scale_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Exp_common.scale_of_string s) in
  let print fmt s = Format.pp_print_string fmt (Exp_common.scale_to_string s) in
  Arg.conv (parse, print)

let scale_term =
  Arg.(
    value
    & opt scale_arg Exp_common.Tiny
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Experiment scale: tiny, small, medium or paper (\xc2\xa75.1 sizes).")

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "\n[%s finished in %.1f s]\n%!" name (Unix.gettimeofday () -. t0);
  r

(* Shared observability flags: every subcommand accepts --metrics-out,
   --metrics-csv and --trace, and runs under an Obs context that is
   Obs.disabled (zero-cost) unless at least one flag is given. *)

let level_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Trace.level_of_string s) in
  let print fmt l = Format.pp_print_string fmt (Trace.level_to_string l) in
  Arg.conv (parse, print)

let obs_term =
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write metrics (labeled counters, gauges, histograms), phase timers \
             and the retained trace tail as JSON to $(docv) when the command \
             finishes.")
  in
  let metrics_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-csv" ] ~docv:"FILE"
          ~doc:"Write the final metric snapshot as CSV to $(docv).")
  in
  let trace =
    Arg.(
      value
      & opt (some level_arg) None
      & info [ "trace" ] ~docv:"LEVEL"
          ~doc:
            "Enable structured tracing at $(docv) (error, warn, info or debug). \
             Events stream to stderr; the most recent 4096 are also kept for \
             --metrics-out.")
  in
  Term.(
    const (fun metrics_out metrics_csv trace -> (metrics_out, metrics_csv, trace))
    $ metrics_out $ metrics_csv $ trace)

let with_obs (metrics_out, metrics_csv, trace) f =
  match (metrics_out, metrics_csv, trace) with
  | None, None, None -> f Obs.disabled
  | _ ->
      let tr =
        match trace with
        | None -> Trace.null
        | Some level -> Trace.create ~sink:Trace.Stderr level
      in
      let obs = Obs.create ~trace:tr () in
      Fun.protect
        ~finally:(fun () ->
          Option.iter
            (fun file ->
              Obs.write_json_file obs file;
              Printf.eprintf "metrics written to %s\n%!" file)
            metrics_out;
          Option.iter
            (fun file ->
              Obs.write_csv_file obs file;
              Printf.eprintf "metrics CSV written to %s\n%!" file)
            metrics_csv)
        (fun () -> f obs)

let table1_cmd =
  let measure =
    Arg.(value & flag & info [ "measure" ] ~doc:"Also run the grounding simulation.")
  in
  let run scale measure obs_opts =
    with_obs obs_opts (fun obs ->
        timed "table1" (fun () ->
            if measure then Table1.print ~measured:(Table1.measure ~obs scale) ()
            else Table1.print ()))
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Table 1: control-plane overhead taxonomy")
    Term.(const run $ scale_term $ measure $ obs_term)

let fig5_cmd =
  let run scale obs_opts =
    with_obs obs_opts (fun obs ->
        timed "fig5" (fun () -> Fig5.print (Fig5.run ~obs scale)))
  in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Figure 5: control-plane overhead relative to BGP")
    Term.(const run $ scale_term $ obs_term)

let fig6_cmd =
  let run scale obs_opts =
    with_obs obs_opts (fun obs ->
        timed "fig6" (fun () -> Fig6.print (Fig6.run ~obs scale)))
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Figure 6: path quality (resilience and capacity)")
    Term.(const run $ scale_term $ obs_term)

let scionlab_cmd =
  let run obs_opts =
    with_obs obs_opts (fun obs ->
        timed "scionlab" (fun () -> Scionlab_exp.print (Scionlab_exp.run ~obs ())))
  in
  Cmd.v
    (Cmd.info "scionlab" ~doc:"Appendix B: SCIONLab figures 7, 8 and 9")
    Term.(const run $ obs_term)

let tune_cmd =
  let cores =
    Arg.(value & opt int 30 & info [ "cores" ] ~docv:"N" ~doc:"Core ASes in the tuning topology.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every candidate.") in
  let run cores verbose =
    timed "tune" (fun () ->
        let full =
          Caida_like.generate { Caida_like.small_params with Caida_like.n = cores * 8 }
        in
        let core, _ = Caida_like.core_subset full ~k:cores in
        let best = Tuning.grid_search ~verbose core in
        let p = best.Tuning.params in
        Printf.printf
          "Best parameters: alpha=%.1f beta=%.2f gamma=%.1f threshold=%.3f gm_max=%.1f\n"
          p.Beacon_policy.alpha p.Beacon_policy.beta p.Beacon_policy.gamma
          p.Beacon_policy.threshold p.Beacon_policy.gm_max;
        Printf.printf "connectivity=%.3f capacity=%.3f overhead=%.3g bytes score=%.3f\n"
          best.Tuning.connectivity best.Tuning.capacity_fraction
          best.Tuning.overhead_bytes best.Tuning.score)
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"Grid search for diversity parameters (\\u00a74.2)")
    Term.(const run $ cores $ verbose)

let convergence_cmd =
  let failures =
    Arg.(value & opt int 5 & info [ "failures" ] ~docv:"N" ~doc:"Links to fail.")
  in
  let run scale failures obs_opts =
    with_obs obs_opts (fun obs ->
        timed "convergence" (fun () ->
            Convergence.print (Convergence.run ~obs ~n_failures:failures scale)))
  in
  Cmd.v
    (Cmd.info "convergence"
       ~doc:"BGP reconvergence vs SCION failover after link failures")
    Term.(const run $ scale_term $ failures $ obs_term)

let latency_cmd =
  let run scale obs_opts =
    with_obs obs_opts (fun obs ->
        timed "latency" (fun () -> Latency_exp.print (Latency_exp.run ~obs scale)))
  in
  Cmd.v
    (Cmd.info "latency"
       ~doc:"Latency-aware path construction (section 4.2 'other criteria' extension)")
    Term.(const run $ scale_term $ obs_term)

let lookup_cmd =
  let requests =
    Arg.(value & opt int 50000 & info [ "requests" ] ~docv:"N" ~doc:"Lookup requests.")
  in
  let run requests obs_opts =
    with_obs obs_opts (fun obs ->
        timed "lookup" (fun () ->
            let base = { Lookup_sim.default_params with Lookup_sim.requests } in
            let configs =
              List.concat_map
                (fun s ->
                  List.map
                    (fun cache -> { base with Lookup_sim.zipf_s = s; Lookup_sim.cache })
                    [ true; false ])
                [ 0.8; 1.1; 1.4 ]
            in
            print_endline
              "Down-path segment lookup with caching under Zipf popularity (section 4.1):";
            Lookup_sim.print_sweep (List.map (Lookup_sim.run ~obs) configs)))
  in
  Cmd.v
    (Cmd.info "lookup" ~doc:"Path-lookup caching simulation (section 4.1)")
    Term.(const run $ requests $ obs_term)

let topo_cmd =
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"PREFIX"
          ~doc:"Also write the topologies to PREFIX.{full,core,isd}.topo.")
  in
  let run scale save =
    timed "topo" (fun () ->
        let p = Exp_common.prepare scale in
        let describe name g =
          let degs = Array.init (Graph.n g) (fun v -> float_of_int (Graph.as_degree g v)) in
          let links = Array.init (Graph.n g) (fun v -> float_of_int (Graph.link_degree g v)) in
          Printf.printf "%-6s: %5d ASes %6d links (parallel incl.)  AS-degree %s\n"
            name (Graph.n g) (Graph.num_links g) (Stats.summary degs);
          Printf.printf "        link-degree %s  core ASes: %d\n" (Stats.summary links)
            (List.length (Graph.core_ases g));
          match save with
          | None -> ()
          | Some prefix ->
              let file = Printf.sprintf "%s.%s.topo" prefix name in
              let oc = open_out file in
              output_string oc (Graph.to_text g);
              close_out oc;
              Printf.printf "        written to %s\n" file
        in
        describe "full" p.Exp_common.full;
        describe "core" p.Exp_common.core;
        describe "isd" p.Exp_common.isd)
  in
  Cmd.v
    (Cmd.info "topo"
       ~doc:"Describe (and optionally export) the generated experiment topologies")
    Term.(const run $ scale_term $ save)

let all_cmd =
  let run scale obs_opts =
    with_obs obs_opts (fun obs ->
        timed "all" (fun () ->
            Table1.print ~measured:(Table1.measure ~obs scale) ();
            print_newline ();
            Fig5.print (Fig5.run ~obs scale);
            print_newline ();
            Fig6.print (Fig6.run ~obs scale);
            print_newline ();
            Scionlab_exp.print (Scionlab_exp.run ~obs ());
            print_newline ();
            Convergence.print (Convergence.run ~obs scale);
            print_newline ();
            Latency_exp.print (Latency_exp.run ~obs scale)))
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment at the given scale")
    Term.(const run $ scale_term $ obs_term)

let () =
  let info =
    Cmd.info "scion_expt" ~version:"1.0"
      ~doc:
        "Reproduce the tables and figures of 'Deployment and Scalability of an \
         Inter-Domain Multi-Path Routing Infrastructure' (CoNEXT '21)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            table1_cmd;
            fig5_cmd;
            fig6_cmd;
            scionlab_cmd;
            convergence_cmd;
            latency_cmd;
            lookup_cmd;
            tune_cmd;
            topo_cmd;
            all_cmd;
          ]))
