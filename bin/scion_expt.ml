(* Experiment driver.

   Every experiment implements Scenario.Cli, so one generic subcommand
   drives them all:

     scion_expt run SCENARIO [--scale S] [--seed N] [--jobs N] [--out F]

   with SCENARIO one of table1, fig5, fig6, scionlab, convergence,
   latency, tune (see Scenarios.all). The historical per-experiment
   subcommands remain as aliases with their extra flags:

   scion_expt table1 [--scale S] [--measure]
   scion_expt fig5   [--scale S]
   scion_expt fig6   [--scale S]
   scion_expt scionlab
   scion_expt tune   [--cores N] [--verbose]
   scion_expt convergence [--scale S] [--failures N]
   scion_expt latency [--scale S]
   scion_expt topo   [--scale S]
   scion_expt all    [--scale S] *)

open Cmdliner

let scale_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Exp_common.scale_of_string s) in
  let print fmt s = Format.pp_print_string fmt (Exp_common.scale_to_string s) in
  Arg.conv (parse, print)

let scale_term =
  Arg.(
    value
    & opt scale_arg Exp_common.Tiny
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Experiment scale: tiny, small, medium or paper (\xc2\xa75.1 sizes).")

let seed_term =
  Arg.(
    value
    & opt (some int64) None
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Override the experiment's deterministic seed (the topology seed for \
           most scenarios).")

let jobs_term =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run the experiment's independent stages on $(docv) domains (0 = one \
           per core). Results are identical for every value; 1 is fully \
           sequential.")

let out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Also write the experiment result as JSON to $(docv).")

let resolve_jobs jobs = if jobs = 0 then Runner.default_jobs () else jobs

(* Supervision flags (checkpoint/resume, retries, failure injection).
   Only the generic [run] subcommand exposes them; the historical
   aliases run unsupervised with Supervise.default_cli. *)
let sup_term =
  let checkpoint_every =
    Arg.(
      value
      & opt int 0
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Write a resumable checkpoint every $(docv) rounds (0 = off; \
             requires --checkpoint-dir). Supported by checkpointing scenarios \
             (pathdyn).")
  in
  let checkpoint_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:"Directory for checkpoint files (created if missing).")
  in
  let resume =
    Arg.(
      value
      & flag
      & info [ "resume" ]
          ~doc:
            "Continue from the newest compatible checkpoint in \
             --checkpoint-dir instead of starting fresh. The completed run is \
             byte-identical to an uninterrupted one.")
  in
  let kill_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-after" ] ~docv:"K"
          ~doc:
            "Abort (exit 3) right after the $(docv)-th checkpoint write — a \
             deterministic stand-in for SIGKILL, used by the resume tests.")
  in
  let max_failures =
    Arg.(
      value
      & opt int 0
      & info [ "max-failures" ] ~docv:"N"
          ~doc:
            "Tolerate up to $(docv) failed jobs before exiting nonzero; failed \
             jobs are always excluded from results and listed in the report.")
  in
  let retries =
    Arg.(
      value
      & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a crashed or timed-out job up to $(docv) times with \
             deterministically re-derived seeds.")
  in
  let watchdog =
    Arg.(
      value
      & opt (some float) None
      & info [ "watchdog" ] ~docv:"SECONDS"
          ~doc:
            "Per-attempt wall-clock budget; a job exceeding it is abandoned at \
             its next safe point and retried.")
  in
  let inject_fail =
    Arg.(
      value
      & opt (some int) None
      & info [ "inject-fail" ] ~docv:"I"
          ~doc:
            "Force the job at index $(docv) to raise on every attempt \
             (graceful-degradation testing).")
  in
  Term.(
    const
      (fun checkpoint_every checkpoint_dir resume kill_after max_failures retries
           watchdog_s inject_fail ->
        {
          Supervise.checkpoint_every;
          checkpoint_dir;
          resume;
          kill_after;
          max_failures;
          retries;
          watchdog_s;
          inject_fail;
        })
    $ checkpoint_every $ checkpoint_dir $ resume $ kill_after $ max_failures
    $ retries $ watchdog $ inject_fail)

(* The footer goes to stderr so stdout is byte-identical across runs
   (and across --jobs values); wall-clock time is not deterministic. *)
let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.eprintf "\n[%s finished in %.1f s]\n%!" name (Unix.gettimeofday () -. t0);
  r

let write_result out json =
  Option.iter
    (fun file ->
      let oc = open_out file in
      output_string oc (Obs_json.to_string_pretty json);
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "result written to %s\n%!" file)
    out

(* Shared observability flags: every subcommand accepts --metrics-out,
   --metrics-csv and --trace, and runs under an Obs context that is
   Obs.disabled (zero-cost) unless at least one flag is given. *)

let level_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Trace.level_of_string s) in
  let print fmt l = Format.pp_print_string fmt (Trace.level_to_string l) in
  Arg.conv (parse, print)

let obs_term =
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write metrics (labeled counters, gauges, histograms), phase timers \
             and the retained trace tail as JSON to $(docv) when the command \
             finishes.")
  in
  let metrics_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-csv" ] ~docv:"FILE"
          ~doc:"Write the final metric snapshot as CSV to $(docv).")
  in
  let trace =
    Arg.(
      value
      & opt (some level_arg) None
      & info [ "trace" ] ~docv:"LEVEL"
          ~doc:
            "Enable structured tracing at $(docv) (error, warn, info or debug). \
             Events stream to stderr; the most recent 4096 are also kept for \
             --metrics-out.")
  in
  Term.(
    const (fun metrics_out metrics_csv trace -> (metrics_out, metrics_csv, trace))
    $ metrics_out $ metrics_csv $ trace)

let with_obs (metrics_out, metrics_csv, trace) f =
  match (metrics_out, metrics_csv, trace) with
  | None, None, None -> f Obs.disabled
  | _ ->
      let tr =
        match trace with
        | None -> Trace.null
        | Some level -> Trace.create ~sink:Trace.Stderr level
      in
      let obs = Obs.create ~trace:tr () in
      Fun.protect
        ~finally:(fun () ->
          Option.iter
            (fun file ->
              Obs.write_json_file obs file;
              Printf.eprintf "metrics written to %s\n%!" file)
            metrics_out;
          Option.iter
            (fun file ->
              Obs.write_csv_file obs file;
              Printf.eprintf "metrics CSV written to %s\n%!" file)
            metrics_csv)
        (fun () -> f obs)

(* Run one scenario end to end: build, run, print, optionally export.
   The aliases below feed hand-built configs through the same path.
   Exits nonzero when the scenario reports a failure budget overrun,
   and with code 3 on a deliberate --kill-after abort (after the
   with_obs finalizers have run). *)
let exec (type c) (module S : Scenario.Cli with type config = c) (config : c) jobs
    out obs_opts =
  match
    with_obs obs_opts (fun obs ->
        timed S.name (fun () ->
            let result = S.run ~obs ~jobs:(resolve_jobs jobs) config in
            S.print result;
            write_result out (S.to_json result);
            S.exit_code result))
  with
  | 0 -> ()
  | code -> exit code
  | exception Supervise.Killed { checkpoints } ->
      Printf.eprintf "aborted after %d checkpoint(s) (--kill-after)\n%!"
        checkpoints;
      exit 3

let strategy_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Strategy.of_string s) in
  let print fmt s = Format.pp_print_string fmt (Strategy.name s) in
  Arg.conv (parse, print)

(* The traffic scenario's own knobs; every other scenario ignores them. *)
let traffic_term =
  let flows =
    Arg.(
      value
      & opt (some int) None
      & info [ "flows" ] ~docv:"N"
          ~doc:"Traffic scenario: demand flows per strategy cell.")
  in
  let strategy =
    Arg.(
      value
      & opt (some strategy_arg) None
      & info [ "strategy" ] ~docv:"NAME"
          ~doc:
            "Traffic scenario: restrict the demand sweep to one path-selection \
             strategy (latency-greedy, diversity-max or load-adaptive).")
  in
  let capacity_scale =
    Arg.(
      value
      & opt (some float) None
      & info [ "capacity-scale" ] ~docv:"X"
          ~doc:"Traffic scenario: uniform link-capacity multiplier.")
  in
  Term.(
    const (fun flows strategy capacity_scale -> (flows, strategy, capacity_scale))
    $ flows $ strategy $ capacity_scale)

let run_cmd =
  let scenario =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO"
          ~doc:
            (Printf.sprintf "The scenario to run: %s."
               (String.concat ", " Scenarios.names)))
  in
  let run name scale seed sup (flows, strategy, capacity_scale) jobs out obs_opts
      =
    match Scenarios.find name with
    | None ->
        `Error
          ( false,
            Printf.sprintf "unknown scenario %S (available: %s)" name
              (String.concat ", " Scenarios.names) )
    | Some (module S : Scenario.Cli) ->
        exec (module S)
          (S.config_of_cli
             { Scenario.scale; seed; sup; flows; strategy; capacity_scale })
          jobs out obs_opts;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run any experiment through the generic scenario driver")
    Term.(
      ret
        (const run $ scenario $ scale_term $ seed_term $ sup_term $ traffic_term
       $ jobs_term $ out_term $ obs_term))

let table1_cmd =
  let measure =
    Arg.(value & flag & info [ "measure" ] ~doc:"Also run the grounding simulation.")
  in
  let run scale measure jobs out obs_opts =
    exec (module Table1) (Table1.config ~measure scale) jobs out obs_opts
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Table 1: control-plane overhead taxonomy")
    Term.(const run $ scale_term $ measure $ jobs_term $ out_term $ obs_term)

let scenario_alias (module S : Scenario.Cli) ~doc =
  let run scale seed jobs out obs_opts =
    exec (module S)
      (S.config_of_cli
         {
           Scenario.scale;
           seed;
           sup = Supervise.default_cli;
           flows = None;
           strategy = None;
           capacity_scale = None;
         })
      jobs out obs_opts
  in
  Cmd.v (Cmd.info S.name ~doc)
    Term.(const run $ scale_term $ seed_term $ jobs_term $ out_term $ obs_term)

let fig5_cmd =
  scenario_alias (module Fig5) ~doc:"Figure 5: control-plane overhead relative to BGP"

let fig6_cmd =
  scenario_alias (module Fig6) ~doc:"Figure 6: path quality (resilience and capacity)"

let scionlab_cmd =
  scenario_alias (module Scionlab_exp) ~doc:"Appendix B: SCIONLab figures 7, 8 and 9"

let latency_cmd =
  scenario_alias
    (module Latency_exp)
    ~doc:"Latency-aware path construction (section 4.2 'other criteria' extension)"

let convergence_cmd =
  let failures =
    Arg.(value & opt int 5 & info [ "failures" ] ~docv:"N" ~doc:"Adjacencies to fail.")
  in
  let run scale failures seed jobs out obs_opts =
    let config =
      match seed with
      | None -> Convergence.config ~n_failures:failures scale
      | Some seed -> Convergence.config ~n_failures:failures ~seed scale
    in
    exec (module Convergence) config jobs out obs_opts
  in
  Cmd.v
    (Cmd.info "convergence"
       ~doc:"BGP reconvergence vs SCION failover after link failures")
    Term.(const run $ scale_term $ failures $ seed_term $ jobs_term $ out_term $ obs_term)

let tune_cmd =
  let cores =
    Arg.(value & opt int 30 & info [ "cores" ] ~docv:"N" ~doc:"Core ASes in the tuning topology.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every candidate.") in
  let run cores verbose jobs out obs_opts =
    exec (module Tuning) (Tuning.config ~cores ~verbose ()) jobs out obs_opts
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"Grid search for diversity parameters (section 4.2)")
    Term.(const run $ cores $ verbose $ jobs_term $ out_term $ obs_term)

let lookup_cmd =
  let requests =
    Arg.(value & opt int 50000 & info [ "requests" ] ~docv:"N" ~doc:"Lookup requests.")
  in
  let run requests obs_opts =
    with_obs obs_opts (fun obs ->
        timed "lookup" (fun () ->
            let base = { Lookup_sim.default_params with Lookup_sim.requests } in
            let configs =
              List.concat_map
                (fun s ->
                  List.map
                    (fun cache -> { base with Lookup_sim.zipf_s = s; Lookup_sim.cache })
                    [ true; false ])
                [ 0.8; 1.1; 1.4 ]
            in
            print_endline
              "Down-path segment lookup with caching under Zipf popularity (section 4.1):";
            Lookup_sim.print_sweep (List.map (Lookup_sim.run ~obs) configs)))
  in
  Cmd.v
    (Cmd.info "lookup" ~doc:"Path-lookup caching simulation (section 4.1)")
    Term.(const run $ requests $ obs_term)

let topo_cmd =
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"PREFIX"
          ~doc:"Also write the topologies to PREFIX.{full,core,isd}.topo.")
  in
  let run scale save =
    timed "topo" (fun () ->
        let p = Exp_common.prepare scale in
        let describe name g =
          let degs = Array.init (Graph.n g) (fun v -> float_of_int (Graph.as_degree g v)) in
          let links = Array.init (Graph.n g) (fun v -> float_of_int (Graph.link_degree g v)) in
          Printf.printf "%-6s: %5d ASes %6d links (parallel incl.)  AS-degree %s\n"
            name (Graph.n g) (Graph.num_links g) (Stats.summary degs);
          Printf.printf "        link-degree %s  core ASes: %d\n" (Stats.summary links)
            (List.length (Graph.core_ases g));
          match save with
          | None -> ()
          | Some prefix ->
              let file = Printf.sprintf "%s.%s.topo" prefix name in
              let oc = open_out file in
              output_string oc (Graph.to_text g);
              close_out oc;
              Printf.printf "        written to %s\n" file
        in
        describe "full" p.Exp_common.full;
        describe "core" p.Exp_common.core;
        describe "isd" p.Exp_common.isd)
  in
  Cmd.v
    (Cmd.info "topo"
       ~doc:"Describe (and optionally export) the generated experiment topologies")
    Term.(const run $ scale_term $ save)

let all_cmd =
  let run scale seed jobs obs_opts =
    with_obs obs_opts (fun obs ->
        timed "all" (fun () ->
            let cli =
              {
                Scenario.scale;
                seed;
                sup = Supervise.default_cli;
                flows = None;
                strategy = None;
                capacity_scale = None;
              }
            in
            let jobs = resolve_jobs jobs in
            (* Every registered scenario except the grid search, which
               is a tool rather than a paper artefact. *)
            Scenarios.all
            |> List.filter (fun (module S : Scenario.Cli) -> S.name <> Tuning.name)
            |> List.iteri (fun i (module S : Scenario.Cli) ->
                   if i > 0 then print_newline ();
                   S.print (S.run ~obs ~jobs (S.config_of_cli cli)))))
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment at the given scale")
    Term.(const run $ scale_term $ seed_term $ jobs_term $ obs_term)

let () =
  let info =
    Cmd.info "scion_expt" ~version:"1.0"
      ~doc:
        "Reproduce the tables and figures of 'Deployment and Scalability of an \
         Inter-Domain Multi-Path Routing Infrastructure' (CoNEXT '21)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            table1_cmd;
            fig5_cmd;
            fig6_cmd;
            scionlab_cmd;
            convergence_cmd;
            latency_cmd;
            lookup_cmd;
            tune_cmd;
            topo_cmd;
            all_cmd;
          ]))
