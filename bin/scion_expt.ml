(* Experiment driver: one subcommand per paper artefact.

   scion_expt table1 [--scale S] [--measure]
   scion_expt fig5   [--scale S]
   scion_expt fig6   [--scale S]
   scion_expt scionlab
   scion_expt tune   [--cores N] [--verbose]
   scion_expt topo   [--scale S]
   scion_expt all    [--scale S] *)

open Cmdliner

let scale_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Exp_common.scale_of_string s) in
  let print fmt s = Format.pp_print_string fmt (Exp_common.scale_to_string s) in
  Arg.conv (parse, print)

let scale_term =
  Arg.(
    value
    & opt scale_arg Exp_common.Tiny
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Experiment scale: tiny, small, medium or paper (\\u00a75.1 sizes).")

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "\n[%s finished in %.1f s]\n%!" name (Unix.gettimeofday () -. t0);
  r

let table1_cmd =
  let measure =
    Arg.(value & flag & info [ "measure" ] ~doc:"Also run the grounding simulation.")
  in
  let run scale measure =
    timed "table1" (fun () ->
        if measure then Table1.print ~measured:(Table1.measure scale) ()
        else Table1.print ())
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Table 1: control-plane overhead taxonomy")
    Term.(const run $ scale_term $ measure)

let fig5_cmd =
  let run scale = timed "fig5" (fun () -> Fig5.print (Fig5.run scale)) in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Figure 5: control-plane overhead relative to BGP")
    Term.(const run $ scale_term)

let fig6_cmd =
  let run scale = timed "fig6" (fun () -> Fig6.print (Fig6.run scale)) in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Figure 6: path quality (resilience and capacity)")
    Term.(const run $ scale_term)

let scionlab_cmd =
  let run () = timed "scionlab" (fun () -> Scionlab_exp.print (Scionlab_exp.run ())) in
  Cmd.v
    (Cmd.info "scionlab" ~doc:"Appendix B: SCIONLab figures 7, 8 and 9")
    Term.(const run $ const ())

let tune_cmd =
  let cores =
    Arg.(value & opt int 30 & info [ "cores" ] ~docv:"N" ~doc:"Core ASes in the tuning topology.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every candidate.") in
  let run cores verbose =
    timed "tune" (fun () ->
        let full =
          Caida_like.generate { Caida_like.small_params with Caida_like.n = cores * 8 }
        in
        let core, _ = Caida_like.core_subset full ~k:cores in
        let best = Tuning.grid_search ~verbose core in
        let p = best.Tuning.params in
        Printf.printf
          "Best parameters: alpha=%.1f beta=%.2f gamma=%.1f threshold=%.3f gm_max=%.1f\n"
          p.Beacon_policy.alpha p.Beacon_policy.beta p.Beacon_policy.gamma
          p.Beacon_policy.threshold p.Beacon_policy.gm_max;
        Printf.printf "connectivity=%.3f capacity=%.3f overhead=%.3g bytes score=%.3f\n"
          best.Tuning.connectivity best.Tuning.capacity_fraction
          best.Tuning.overhead_bytes best.Tuning.score)
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"Grid search for diversity parameters (\\u00a74.2)")
    Term.(const run $ cores $ verbose)

let convergence_cmd =
  let failures =
    Arg.(value & opt int 5 & info [ "failures" ] ~docv:"N" ~doc:"Links to fail.")
  in
  let run scale failures =
    timed "convergence" (fun () ->
        Convergence.print (Convergence.run ~n_failures:failures scale))
  in
  Cmd.v
    (Cmd.info "convergence"
       ~doc:"BGP reconvergence vs SCION failover after link failures")
    Term.(const run $ scale_term $ failures)

let latency_cmd =
  let run scale = timed "latency" (fun () -> Latency_exp.print (Latency_exp.run scale)) in
  Cmd.v
    (Cmd.info "latency"
       ~doc:"Latency-aware path construction (section 4.2 'other criteria' extension)")
    Term.(const run $ scale_term)

let lookup_cmd =
  let requests =
    Arg.(value & opt int 50000 & info [ "requests" ] ~docv:"N" ~doc:"Lookup requests.")
  in
  let run requests =
    timed "lookup" (fun () ->
        let base = { Lookup_sim.default_params with Lookup_sim.requests } in
        let configs =
          List.concat_map
            (fun s ->
              List.map
                (fun cache -> { base with Lookup_sim.zipf_s = s; Lookup_sim.cache })
                [ true; false ])
            [ 0.8; 1.1; 1.4 ]
        in
        print_endline
          "Down-path segment lookup with caching under Zipf popularity (section 4.1):";
        Lookup_sim.print_sweep (List.map Lookup_sim.run configs))
  in
  Cmd.v
    (Cmd.info "lookup" ~doc:"Path-lookup caching simulation (section 4.1)")
    Term.(const run $ requests)

let topo_cmd =
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"PREFIX"
          ~doc:"Also write the topologies to PREFIX.{full,core,isd}.topo.")
  in
  let run scale save =
    timed "topo" (fun () ->
        let p = Exp_common.prepare scale in
        let describe name g =
          let degs = Array.init (Graph.n g) (fun v -> float_of_int (Graph.as_degree g v)) in
          let links = Array.init (Graph.n g) (fun v -> float_of_int (Graph.link_degree g v)) in
          Printf.printf "%-6s: %5d ASes %6d links (parallel incl.)  AS-degree %s\n"
            name (Graph.n g) (Graph.num_links g) (Stats.summary degs);
          Printf.printf "        link-degree %s  core ASes: %d\n" (Stats.summary links)
            (List.length (Graph.core_ases g));
          match save with
          | None -> ()
          | Some prefix ->
              let file = Printf.sprintf "%s.%s.topo" prefix name in
              let oc = open_out file in
              output_string oc (Graph.to_text g);
              close_out oc;
              Printf.printf "        written to %s\n" file
        in
        describe "full" p.Exp_common.full;
        describe "core" p.Exp_common.core;
        describe "isd" p.Exp_common.isd)
  in
  Cmd.v
    (Cmd.info "topo"
       ~doc:"Describe (and optionally export) the generated experiment topologies")
    Term.(const run $ scale_term $ save)

let all_cmd =
  let run scale =
    timed "all" (fun () ->
        Table1.print ~measured:(Table1.measure scale) ();
        print_newline ();
        Fig5.print (Fig5.run scale);
        print_newline ();
        Fig6.print (Fig6.run scale);
        print_newline ();
        Scionlab_exp.print (Scionlab_exp.run ());
        print_newline ();
        Convergence.print (Convergence.run scale);
        print_newline ();
        Latency_exp.print (Latency_exp.run scale))
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment at the given scale")
    Term.(const run $ scale_term)

let () =
  let info =
    Cmd.info "scion_expt" ~version:"1.0"
      ~doc:
        "Reproduce the tables and figures of 'Deployment and Scalability of an \
         Inter-Domain Multi-Path Routing Infrastructure' (CoNEXT '21)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            table1_cmd;
            fig5_cmd;
            fig6_cmd;
            scionlab_cmd;
            convergence_cmd;
            latency_cmd;
            lookup_cmd;
            tune_cmd;
            topo_cmd;
            all_cmd;
          ]))
