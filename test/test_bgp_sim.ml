(* Tests for the event-driven BGP simulator: convergence to the
   closed-form Gao-Rexford solution, withdrawals, link failures, MRAI
   behaviour and churn accounting. *)

let check = Alcotest.check

(* The same policy graph as test_bgp. *)
let policy_graph () =
  let b = Graph.builder () in
  for i = 0 to 6 do
    ignore (Graph.add_as b ~tier:(if i < 2 then 1 else if i < 5 then 2 else 3) (Id.ia 1 (i + 1)))
  done;
  Graph.add_link b ~rel:Graph.Peering 0 1;
  Graph.add_link b ~rel:Graph.Provider_customer 0 2;
  Graph.add_link b ~rel:Graph.Provider_customer 0 3;
  Graph.add_link b ~rel:Graph.Provider_customer 1 4;
  Graph.add_link b ~rel:Graph.Provider_customer 2 5;
  Graph.add_link b ~rel:Graph.Provider_customer 3 6;
  Graph.add_link b ~rel:Graph.Provider_customer 4 6;
  Graph.freeze b

let converged_sim ?(config = Bgp_sim.default_config) g =
  let t = Bgp_sim.create g config in
  Bgp_sim.announce_all t;
  ignore (Bgp_sim.run_to_quiescence t);
  t

let test_converges_to_closed_form () =
  let g = policy_graph () in
  let t = converged_sim g in
  for dst = 0 to 6 do
    let table = Bgp_routes.compute g ~dst in
    for src = 0 to 6 do
      if src <> dst then begin
        match (Bgp_sim.best_path t ~src ~prefix:dst, Bgp_routes.path_to table ~src) with
        | Some p_sim, Some p_cf ->
            (* Tie-breaks may differ; class preference and length must
               agree. *)
            check Alcotest.int
              (Printf.sprintf "path length %d->%d" src dst)
              (List.length p_cf) (List.length p_sim);
            check Alcotest.int "ends at origin" dst
              (List.nth p_sim (List.length p_sim - 1))
        | None, None -> ()
        | Some _, None -> Alcotest.failf "sim found a route %d->%d, model did not" src dst
        | None, Some _ -> Alcotest.failf "sim missing route %d->%d" src dst
      end
    done
  done

let test_loop_free () =
  let g = policy_graph () in
  let t = converged_sim g in
  for src = 0 to 6 do
    for dst = 0 to 6 do
      match Bgp_sim.best_path t ~src ~prefix:dst with
      | None -> ()
      | Some p ->
          check Alcotest.int "no repeated AS" (List.length p)
            (List.length (List.sort_uniq compare p))
    done
  done

let test_withdraw_cascades () =
  let g = policy_graph () in
  let t = converged_sim g in
  Bgp_sim.withdraw_origin t ~origin:6;
  ignore (Bgp_sim.run_to_quiescence t);
  for src = 0 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "AS %d dropped the route" src)
      true
      (Bgp_sim.best_path t ~src ~prefix:6 = None)
  done;
  let st = Bgp_sim.stats t in
  Alcotest.(check bool) "withdrawals were sent" true (st.Bgp_sim.withdrawals_sent > 0)

let test_link_failure_reroute () =
  let g = policy_graph () in
  let t = converged_sim g in
  (* S2 (6) is dual-homed via M2 (3) and M3 (4). Fail the 3-6 link. *)
  let l36 = (List.hd (Graph.links_between g 3 6)).Graph.link_id in
  (match Bgp_sim.best_path t ~src:3 ~prefix:6 with
  | Some [ 3; 6 ] -> ()
  | p -> Alcotest.failf "unexpected initial path %s"
           (match p with None -> "none" | Some q -> String.concat "," (List.map string_of_int q)));
  Bgp_sim.reset_stats t;
  Bgp_sim.fail_link t l36;
  ignore (Bgp_sim.run_to_quiescence t);
  (match Bgp_sim.best_path t ~src:3 ~prefix:6 with
  | Some p ->
      Alcotest.(check bool) "rerouted around the failed link" true
        (List.length p > 2)
  | None -> Alcotest.fail "3 must still reach 6");
  let st = Bgp_sim.stats t in
  Alcotest.(check bool) "churn updates counted" true
    (st.Bgp_sim.updates_sent + st.Bgp_sim.withdrawals_sent > 0);
  (* Restore: the direct route returns. *)
  Bgp_sim.restore_link t l36;
  ignore (Bgp_sim.run_to_quiescence t);
  match Bgp_sim.best_path t ~src:3 ~prefix:6 with
  | Some [ 3; 6 ] -> ()
  | _ -> Alcotest.fail "direct route must return after restore"

let test_parallel_link_sessions () =
  (* Two parallel links: failing one must not disturb routing. *)
  let b = Graph.builder () in
  let x = Graph.add_as b ~core:true (Id.ia 1 1) in
  let y = Graph.add_as b ~core:true (Id.ia 1 2) in
  Graph.add_link b ~count:2 ~rel:Graph.Peering x y;
  let g = Graph.freeze b in
  let t = converged_sim g in
  Bgp_sim.reset_stats t;
  Bgp_sim.fail_link t 0;
  ignore (Bgp_sim.run_to_quiescence t);
  Alcotest.(check bool) "route survives on the second link" true
    (Bgp_sim.best_path t ~src:x ~prefix:y <> None);
  let st = Bgp_sim.stats t in
  check Alcotest.int "no churn for a redundant link" 0
    (st.Bgp_sim.updates_sent + st.Bgp_sim.withdrawals_sent);
  (* Failing the second one kills the session. *)
  Bgp_sim.fail_link t 1;
  ignore (Bgp_sim.run_to_quiescence t);
  Alcotest.(check bool) "route gone" true (Bgp_sim.best_path t ~src:x ~prefix:y = None)

let test_adj_rib_in_multipath () =
  let g = policy_graph () in
  let t = converged_sim g in
  (* T1a hears about S2 (6) from M2 (customer route). *)
  let pool = Bgp_sim.adj_rib_in_paths t ~src:0 ~prefix:6 in
  Alcotest.(check bool) "at least one offer" true (pool <> []);
  List.iter
    (fun p ->
      check Alcotest.int "rooted at src" 0 (List.hd p);
      check Alcotest.int "ends at origin" 6 (List.nth p (List.length p - 1)))
    pool

let test_mrai_paces_updates () =
  (* With a long MRAI, convergence takes at least one MRAI round when
     paths must be re-advertised after a better route arrives. *)
  let g = policy_graph () in
  let fast = converged_sim ~config:{ Bgp_sim.default_config with Bgp_sim.mrai = 0.01 } g in
  let slow = converged_sim ~config:{ Bgp_sim.default_config with Bgp_sim.mrai = 30.0 } g in
  let st_fast = Bgp_sim.stats fast and st_slow = Bgp_sim.stats slow in
  (* MRAI batching: the slow speaker never sends more messages. *)
  Alcotest.(check bool) "mrai batches" true
    (st_slow.Bgp_sim.updates_sent <= st_fast.Bgp_sim.updates_sent);
  Alcotest.(check bool) "slow converges later or equal" true
    (st_slow.Bgp_sim.last_route_change >= st_fast.Bgp_sim.last_route_change -. 1e-9)

let test_bgpsec_bytes_larger () =
  let g = policy_graph () in
  let plain = converged_sim g in
  let sec = converged_sim ~config:{ Bgp_sim.default_config with Bgp_sim.bgpsec = true } g in
  let b_plain = (Bgp_sim.stats plain).Bgp_sim.bytes_sent in
  let b_sec = (Bgp_sim.stats sec).Bgp_sim.bytes_sent in
  Alcotest.(check bool) "bgpsec costs more bytes" true (b_sec > 3.0 *. b_plain)

let test_quiescence_time_positive () =
  let g = policy_graph () in
  let t = Bgp_sim.create g Bgp_sim.default_config in
  Bgp_sim.announce_all t;
  let tq = Bgp_sim.run_to_quiescence t in
  Alcotest.(check bool) "time advanced" true (tq > 0.0);
  let st = Bgp_sim.stats t in
  Alcotest.(check bool) "convergence marker set" true (st.Bgp_sim.last_route_change > 0.0);
  Alcotest.(check bool) "marker before quiescence" true
    (st.Bgp_sim.last_route_change <= tq)

let test_generated_topology_full_reachability () =
  let g = Caida_like.generate { Caida_like.small_params with Caida_like.n = 60 } in
  let t = converged_sim g in
  let missing = ref 0 in
  for src = 0 to Graph.n g - 1 do
    for dst = 0 to Graph.n g - 1 do
      if src <> dst && Bgp_sim.best_path t ~src ~prefix:dst = None then incr missing
    done
  done;
  check Alcotest.int "every AS reaches every prefix" 0 !missing

let suite =
  [
    ("converges to closed form", `Quick, test_converges_to_closed_form);
    ("loop free", `Quick, test_loop_free);
    ("withdraw cascades", `Quick, test_withdraw_cascades);
    ("link failure reroute", `Quick, test_link_failure_reroute);
    ("parallel link sessions", `Quick, test_parallel_link_sessions);
    ("adj-rib-in multipath", `Quick, test_adj_rib_in_multipath);
    ("mrai paces updates", `Quick, test_mrai_paces_updates);
    ("bgpsec bytes larger", `Quick, test_bgpsec_bytes_larger);
    ("quiescence time positive", `Quick, test_quiescence_time_positive);
    ("generated topology reachability", `Slow, test_generated_topology_full_reachability);
  ]
