(* Tests for scion_supervise: the snapshot codec (primitives and every
   component codec), checkpoint framing/corruption/series, the
   cooperative watchdog, supervised map retry/degradation/determinism,
   the invariant checker, and byte-identical soak chunking. *)

let check = Alcotest.check

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* Same 4-core ring (plus a chord) as the fault tests: small enough for
   sub-second beaconing runs, rich enough for multipath churn. *)
let ring () =
  let b = Graph.builder () in
  let c = Array.init 4 (fun i -> Graph.add_as b ~core:true (Id.ia 1 (i + 1))) in
  Graph.add_link b ~rel:Graph.Core c.(0) c.(1);
  Graph.add_link b ~rel:Graph.Core c.(1) c.(2);
  Graph.add_link b ~rel:Graph.Core c.(2) c.(3);
  Graph.add_link b ~rel:Graph.Core c.(3) c.(0);
  Graph.add_link b ~rel:Graph.Core c.(0) c.(2);
  Graph.freeze b

let soak_config ?(seed = 1L) ?(rounds = 12) ?(limit = 5) () =
  let g = ring () in
  let interval = 600.0 in
  let duration = float_of_int rounds *. interval in
  {
    Soak.graph = g;
    beacon =
      {
        Beaconing.default_config with
        Beaconing.algorithm = Beacon_policy.Baseline;
        interval;
        duration;
        storage_limit = limit;
      };
    plan =
      Fault_plan.plan ~seed
        [
          Fault_plan.Flapping
            {
              link = 0;
              at = interval;
              period = 3.0 *. interval;
              down_fraction = 0.5;
              until = duration;
            };
          Fault_plan.Stochastic
            { mtbf = 7200.0; mttr = 600.0; start = interval; until = duration };
        ];
    pairs = [| (0, 2); (1, 3) |];
    register_top = 2;
    metric_labels = [ ("cell", "test") ];
  }

(* A directory name that is fresh, writable and absent — Checkpoint.save
   creates it on first use. *)
let fresh_dir () =
  let f = Filename.temp_file "scion_ckpt" "" in
  Sys.remove f;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(* --- Snapshot: primitives ------------------------------------------- *)

let test_snapshot_primitives () =
  let w = Snapshot.writer () in
  List.iter (Snapshot.w_int w) [ 0; 1; -1; max_int; min_int ];
  Snapshot.w_i64 w 0x0123456789ABCDEFL;
  List.iter (Snapshot.w_f64 w) [ 1.5; -0.0; infinity; neg_infinity; nan ];
  Snapshot.w_bool w true;
  Snapshot.w_bool w false;
  Snapshot.w_str w "";
  Snapshot.w_str w "h\x00i\xff";
  Snapshot.w_list w Snapshot.w_int [ 3; 1; 4 ];
  Snapshot.w_arr w Snapshot.w_f64 [| 0.5; -2.25 |];
  Snapshot.w_opt w Snapshot.w_str None;
  Snapshot.w_opt w Snapshot.w_str (Some "x");
  let r = Snapshot.reader (Snapshot.contents w) in
  List.iter
    (fun v -> check Alcotest.int "int roundtrip" v (Snapshot.r_int r))
    [ 0; 1; -1; max_int; min_int ];
  check Alcotest.int64 "i64 roundtrip" 0x0123456789ABCDEFL (Snapshot.r_i64 r);
  List.iter
    (fun v ->
      check Alcotest.int64 "f64 roundtrip is bit-exact" (Int64.bits_of_float v)
        (Int64.bits_of_float (Snapshot.r_f64 r)))
    [ 1.5; -0.0; infinity; neg_infinity; nan ];
  Alcotest.(check bool) "bool true" true (Snapshot.r_bool r);
  Alcotest.(check bool) "bool false" false (Snapshot.r_bool r);
  check Alcotest.string "empty string" "" (Snapshot.r_str r);
  check Alcotest.string "binary string" "h\x00i\xff" (Snapshot.r_str r);
  check (Alcotest.list Alcotest.int) "list" [ 3; 1; 4 ]
    (Snapshot.r_list r Snapshot.r_int);
  check (Alcotest.array (Alcotest.float 0.0)) "array" [| 0.5; -2.25 |]
    (Snapshot.r_arr r Snapshot.r_f64);
  Alcotest.(check bool) "none" true (Snapshot.r_opt r Snapshot.r_str = None);
  Alcotest.(check bool) "some" true (Snapshot.r_opt r Snapshot.r_str = Some "x");
  Snapshot.r_end r

let test_snapshot_i64_wire_format () =
  (* Exactly 8 big-endian bytes per word — a regression check for the
     codec's framing (a wrong stride corrupts every composite codec). *)
  let w = Snapshot.writer () in
  Snapshot.w_i64 w 0x0102030405060708L;
  check Alcotest.string "big-endian bytes" "\x01\x02\x03\x04\x05\x06\x07\x08"
    (Snapshot.contents w);
  let w = Snapshot.writer () in
  Snapshot.w_int w 7;
  check Alcotest.int "int is 8 bytes" 8 (String.length (Snapshot.contents w))

let test_snapshot_corruption () =
  let expect_corrupt what f =
    match f () with
    | _ -> Alcotest.fail (what ^ ": expected Snapshot.Corrupt")
    | exception Snapshot.Corrupt _ -> ()
  in
  expect_corrupt "truncated int" (fun () ->
      Snapshot.r_int (Snapshot.reader "\x00\x01"));
  expect_corrupt "implausible string length" (fun () ->
      let w = Snapshot.writer () in
      Snapshot.w_int w 1_000_000;
      Snapshot.r_str (Snapshot.reader (Snapshot.contents w)));
  expect_corrupt "negative list length" (fun () ->
      let w = Snapshot.writer () in
      Snapshot.w_int w (-1);
      Snapshot.r_list (Snapshot.reader (Snapshot.contents w)) Snapshot.r_int);
  expect_corrupt "bad bool tag" (fun () ->
      let w = Snapshot.writer () in
      Snapshot.w_u8 w 7;
      Snapshot.r_bool (Snapshot.reader (Snapshot.contents w)));
  expect_corrupt "bad option tag" (fun () ->
      let w = Snapshot.writer () in
      Snapshot.w_u8 w 9;
      Snapshot.r_opt (Snapshot.reader (Snapshot.contents w)) Snapshot.r_u8);
  expect_corrupt "trailing bytes" (fun () ->
      let w = Snapshot.writer () in
      Snapshot.w_int w 1;
      Snapshot.w_int w 2;
      let r = Snapshot.reader (Snapshot.contents w) in
      ignore (Snapshot.r_int r);
      Snapshot.r_end r)

(* --- Snapshot: component codecs ------------------------------------- *)

let test_snapshot_rng () =
  let rng = Rng.create 99L in
  for _ = 1 to 5 do
    ignore (Rng.int rng 1000)
  done;
  let w = Snapshot.writer () in
  Snapshot.w_rng w rng;
  let rng' = Snapshot.r_rng (Snapshot.reader (Snapshot.contents w)) in
  check (Alcotest.list Alcotest.int) "restored stream continues identically"
    (List.init 8 (fun _ -> Rng.int rng 1000))
    (List.init 8 (fun _ -> Rng.int rng' 1000))

let sample_segment () =
  let hop link_out =
    {
      Segment.as_idx = 1;
      ingress = 0;
      egress = 2;
      link_in = -1;
      link_out;
      peers = [| 3; 5 |];
      expiry = 7200.0;
      mac = "\x01\xfe\x02";
    }
  in
  {
    Segment.kind = Segment.Core_seg;
    origin = 0;
    leaf = 2;
    timestamp = 600.0;
    expiry = 7200.0;
    hops = [| hop 0; hop 4 |];
    links = [| 0; 4 |];
  }

let test_snapshot_segment () =
  let s = sample_segment () in
  let w = Snapshot.writer () in
  Snapshot.w_segment w s;
  let r = Snapshot.reader (Snapshot.contents w) in
  let s' = Snapshot.r_segment r in
  Snapshot.r_end r;
  Alcotest.(check bool) "segment roundtrips" true (s = s');
  List.iter
    (fun kind ->
      let w = Snapshot.writer () in
      Snapshot.w_segment w { s with Segment.kind };
      Alcotest.(check bool) "kind preserved" true
        ((Snapshot.r_segment (Snapshot.reader (Snapshot.contents w))).Segment.kind
        = kind))
    [ Segment.Up; Segment.Down; Segment.Core_seg ]

let test_snapshot_registry () =
  let reg = Registry.create () in
  Registry.add reg "c" 2.5;
  Registry.add reg ~labels:[ ("k", "v"); ("a", "b") ] "c" 7.0;
  Registry.set reg "g" (-3.0);
  List.iter (Registry.observe reg "h") [ 0.1; 5.0; -2.0; 40.0 ];
  let d = Registry.dump reg in
  let w = Snapshot.writer () in
  Snapshot.w_registry w d;
  let r = Snapshot.reader (Snapshot.contents w) in
  let d' = Snapshot.r_registry r in
  Snapshot.r_end r;
  Alcotest.(check bool) "registry dump roundtrips" true (d = d');
  (* The rebuilt registry re-dumps canonically to the same value. *)
  Alcotest.(check bool) "of_dump/dump fixpoint" true
    (Registry.dump (Registry.of_dump d') = d);
  let s = Histogram.summarize (Registry.histogram (Registry.of_dump d') "h") in
  check Alcotest.int "histogram observations survive" 4 s.Histogram.count

(* One soak gives real instances of every remaining component: beacon
   stores filled by dissemination, live link state, a path server with
   registrations and revocations, and beacon stats. *)
let soaked =
  lazy
    (let cfg = soak_config ~rounds:8 () in
     let t = Soak.create cfg in
     Soak.advance t ~upto:8;
     (cfg, t))

let roundtrip w_f r_f v =
  let w = Snapshot.writer () in
  w_f w v;
  let r = Snapshot.reader (Snapshot.contents w) in
  let v' = r_f r in
  Snapshot.r_end r;
  v'

let test_snapshot_components_from_soak () =
  let _, t = Lazy.force soaked in
  let ctx = Soak.invariant_ctx t in
  (* Beacon stores (at least one must be non-empty after 8 rounds). *)
  let occupied = ref 0 in
  Array.iter
    (fun store ->
      let d = Beacon_store.dump store in
      if d.Beacon_store.d_origins <> [] then incr occupied;
      let d' = roundtrip Snapshot.w_beacon_store Snapshot.r_beacon_store d in
      Alcotest.(check bool) "beacon store dump roundtrips" true (d = d');
      Alcotest.(check bool) "of_dump re-dumps equal" true
        (Beacon_store.dump (Beacon_store.of_dump d') = d))
    ctx.Invariants.stores;
  Alcotest.(check bool) "stores hold PCBs" true (!occupied > 0);
  (* Link state. A never-failed link's d_since is nan, so compare the
     float array bit-exactly rather than structurally. *)
  let same_link_dump (a : Link_state.dump) (b : Link_state.dump) =
    a.Link_state.d_holds = b.Link_state.d_holds
    && Array.map Int64.bits_of_float a.Link_state.d_since
       = Array.map Int64.bits_of_float b.Link_state.d_since
  in
  let ld = Link_state.dump ctx.Invariants.links in
  let ld' = roundtrip Snapshot.w_link_state Snapshot.r_link_state ld in
  Alcotest.(check bool) "link state dump roundtrips" true (same_link_dump ld ld');
  Alcotest.(check bool) "link state of_dump re-dumps equal" true
    (same_link_dump (Link_state.dump (Link_state.of_dump ld')) ld);
  (* Path server (including its stats). *)
  match ctx.Invariants.path_server with
  | None -> Alcotest.fail "soak must run a path server"
  | Some ps ->
      let pd = Path_server.dump ps in
      Alcotest.(check bool) "path server saw registrations" true
        ((Path_server.stats ps).Path_server.registrations > 0);
      let pd' = roundtrip Snapshot.w_path_server Snapshot.r_path_server pd in
      Alcotest.(check bool) "path server dump roundtrips" true (pd = pd');
      Alcotest.(check bool) "path server of_dump re-dumps equal" true
        (Path_server.dump (Path_server.of_dump pd') = pd)

let test_snapshot_beacon_stats () =
  let outcome =
    Beaconing.run (ring ())
      {
        Beaconing.default_config with
        Beaconing.algorithm = Beacon_policy.Baseline;
        duration = 600.0 *. 4.0;
      }
  in
  let s = outcome.Beaconing.stats in
  Alcotest.(check bool) "stats have traffic" true (s.Beaconing.total_pcbs > 0);
  let s' = roundtrip Snapshot.w_beacon_stats Snapshot.r_beacon_stats s in
  Alcotest.(check bool) "beacon stats roundtrip" true (s = s')

(* --- Checkpoint files ------------------------------------------------ *)

let test_checkpoint_roundtrip_and_corruption () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let payload = "\x00binary\xffpayload" ^ String.make 100 'z' in
  let path = Checkpoint.save ~dir ~name:"a.ckpt" ~schema:"s1" ~version:2 payload in
  Alcotest.(check bool) "save returns the file path" true (Sys.file_exists path);
  check Alcotest.string "load returns the payload" payload
    (Checkpoint.load ~dir ~name:"a.ckpt" ~schema:"s1" ~version:2);
  let expect_corrupt what f =
    match f () with
    | (_ : string) -> Alcotest.fail (what ^ ": expected Snapshot.Corrupt")
    | exception Snapshot.Corrupt _ -> ()
  in
  expect_corrupt "wrong schema" (fun () ->
      Checkpoint.load ~dir ~name:"a.ckpt" ~schema:"s2" ~version:2);
  expect_corrupt "wrong version" (fun () ->
      Checkpoint.load ~dir ~name:"a.ckpt" ~schema:"s1" ~version:3);
  (* Flip one payload byte on disk: the digest check must catch it. *)
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let flipped = Bytes.of_string raw in
  let mid = Bytes.length flipped / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc flipped;
  close_out oc;
  expect_corrupt "bit rot" (fun () ->
      Checkpoint.load ~dir ~name:"a.ckpt" ~schema:"s1" ~version:2);
  (* A foreign file fails on the magic, a truncated one on framing. *)
  let oc = open_out_bin (Filename.concat dir "b.ckpt") in
  output_string oc "not a checkpoint";
  close_out oc;
  expect_corrupt "bad magic" (fun () ->
      Checkpoint.load ~dir ~name:"b.ckpt" ~schema:"s1" ~version:2);
  let oc = open_out_bin (Filename.concat dir "c.ckpt") in
  output_string oc (String.sub raw 0 6);
  close_out oc;
  expect_corrupt "truncated" (fun () ->
      Checkpoint.load ~dir ~name:"c.ckpt" ~schema:"s1" ~version:2)

let test_checkpoint_series () =
  check Alcotest.string "numbered name" "soak.000008.ckpt"
    (Checkpoint.numbered_name ~prefix:"soak" ~n:8);
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  Alcotest.(check bool) "no dir, no latest" true
    (Checkpoint.latest ~dir ~prefix:"soak" = None);
  List.iter
    (fun n ->
      ignore
        (Checkpoint.save ~dir
           ~name:(Checkpoint.numbered_name ~prefix:"soak" ~n)
           ~schema:"s" ~version:1
           (Printf.sprintf "payload-%d" n)))
    [ 4; 12; 8 ];
  (* Foreign files in the directory are ignored. *)
  let oc = open_out_bin (Filename.concat dir "other.txt") in
  output_string oc "x";
  close_out oc;
  match Checkpoint.latest ~dir ~prefix:"soak" with
  | None -> Alcotest.fail "series exists"
  | Some (n, name) ->
      check Alcotest.int "highest round wins" 12 n;
      check Alcotest.string "its filename" "soak.000012.ckpt" name;
      check Alcotest.string "and it loads" "payload-12"
        (Checkpoint.load ~dir ~name ~schema:"s" ~version:1)

(* --- Watchdog -------------------------------------------------------- *)

let test_watchdog () =
  let clock = ref 100.0 in
  let now () = !clock in
  let wd = Watchdog.start ~now ~label:"trial-3" (Some 5.0) in
  Watchdog.check wd;
  clock := 104.9;
  Watchdog.check wd;
  Alcotest.(check bool) "not yet expired" false (Watchdog.expired wd);
  Alcotest.(check (float 1e-9)) "elapsed tracks the clock" 4.9 (Watchdog.elapsed wd);
  clock := 105.2;
  Alcotest.(check bool) "expired" true (Watchdog.expired wd);
  (match Watchdog.check wd with
  | () -> Alcotest.fail "expected Timeout"
  | exception Watchdog.Timeout { label; budget_s; elapsed_s } ->
      check Alcotest.string "label" "trial-3" label;
      Alcotest.(check (float 1e-9)) "budget" 5.0 budget_s;
      Alcotest.(check bool) "elapsed >= budget" true (elapsed_s >= budget_s));
  (* No budget: never fires, whatever the clock does. *)
  let free = Watchdog.start ~now ~label:"free" None in
  clock := 1.0e12;
  Watchdog.check free;
  Alcotest.(check bool) "budget-free never expires" false (Watchdog.expired free);
  match Watchdog.start ~now (Some 0.0) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- Supervise.map --------------------------------------------------- *)

let test_attempt_seed () =
  check Alcotest.int64 "attempt 0 is the runner's job seed"
    (Runner.job_seed 42L 5)
    (Supervise.attempt_seed ~base_seed:42L ~index:5 ~attempt:0);
  check Alcotest.int64 "deterministic"
    (Supervise.attempt_seed ~base_seed:42L ~index:5 ~attempt:3)
    (Supervise.attempt_seed ~base_seed:42L ~index:5 ~attempt:3);
  let seeds =
    List.concat_map
      (fun index ->
        List.init 4 (fun attempt ->
            Supervise.attempt_seed ~base_seed:42L ~index ~attempt))
      [ 0; 1; 2; 3 ]
  in
  check Alcotest.int "distinct across (index, attempt)" 16
    (List.length (List.sort_uniq Int64.compare seeds))

let test_supervised_map_retries () =
  (* A flaky job: fails on its first attempt, succeeds on the retry.
     jobs:1 keeps the attempt counters race-free. *)
  let attempts = Array.make 4 0 in
  let results, report =
    Supervise.map ~jobs:1 ~base_seed:5L
      (fun ~obs:_ ~seed:_ ~watchdog:_ i ->
        attempts.(i) <- attempts.(i) + 1;
        if i = 1 && attempts.(1) = 1 then failwith "flaky";
        i * 10)
      (Array.init 4 Fun.id)
  in
  Alcotest.(check bool) "all jobs succeed" true (Run_report.ok report);
  check Alcotest.int "report counts the batch" 4 report.Run_report.jobs;
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> check Alcotest.int "result" (i * 10) v
      | Error _ -> Alcotest.fail "no failures expected")
    results;
  check Alcotest.int "flaky job ran twice" 2 attempts.(1);
  check Alcotest.int "healthy jobs ran once" 1 attempts.(0)

let test_supervised_map_degrades () =
  let f ~obs:_ ~seed:_ ~watchdog:_ i =
    if i = 2 then failwith "boom2" else i + 100
  in
  let run jobs =
    Supervise.map ~jobs ~base_seed:7L
      ~label_of:(Printf.sprintf "w%d")
      f (Array.init 5 Fun.id)
  in
  let results, report = run 2 in
  check Alcotest.int "one failure" 1 (Run_report.n_failed report);
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> check Alcotest.int "survivors complete" (i + 100) v
      | Error (fl : Run_report.failure) ->
          check Alcotest.int "failing index" 2 fl.Run_report.index;
          check Alcotest.string "label" "w2" fl.Run_report.label;
          Alcotest.(check bool) "seed recorded" true
            (fl.Run_report.seed = Some (Runner.job_seed 7L 2));
          check Alcotest.int "default policy = 1 retry" 2 fl.Run_report.attempts;
          Alcotest.(check bool) "error text kept" true
            (contains fl.Run_report.error "boom2"))
    results;
  (* Outcomes are independent of the worker count (modulo backtraces). *)
  let strip (r, _) =
    Array.map
      (function
        | Ok v -> Ok v
        | Error (f : Run_report.failure) ->
            Error
              ( f.Run_report.index,
                f.Run_report.label,
                f.Run_report.seed,
                f.Run_report.attempts,
                f.Run_report.error ))
      r
  in
  Alcotest.(check bool) "jobs=1 and jobs=2 agree" true
    (strip (run 1) = strip (results, report))

(* --- Invariants ------------------------------------------------------ *)

let test_invariants_clean_soak () =
  let _, t = Lazy.force soaked in
  let ctx = Soak.invariant_ctx t in
  Alcotest.(check bool) "events were consumed" true (ctx.Invariants.cursor > 0);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "no violations" []
    (List.map
       (fun (v : Invariants.violation) ->
         (v.Invariants.check, v.Invariants.detail))
       (Invariants.check_all ctx))

let test_invariants_detect_replay_divergence () =
  let _, t = Lazy.force soaked in
  let ctx = Soak.invariant_ctx t in
  (* Rewinding the cursor makes the hold counts disagree with the
     replayed event prefix. *)
  let bad = { ctx with Invariants.cursor = 0 } in
  let vs = Invariants.check_all bad in
  Alcotest.(check bool) "replay divergence flagged" true
    (List.exists (fun v -> v.Invariants.check = "link-state") vs);
  match Invariants.check_exn bad with
  | () -> Alcotest.fail "expected Violated"
  | exception Invariants.Violated (_ :: _) -> ()

let test_invariants_detect_negative_holds () =
  let g = ring () in
  let n = Graph.num_links g in
  let links =
    Link_state.of_dump
      {
        Link_state.d_holds = Array.init n (fun l -> if l = 1 then -1 else 0);
        d_since = Array.make n 0.0;
      }
  in
  let ctx =
    {
      Invariants.graph = g;
      now = 0.0;
      links;
      stores = Array.init (Graph.n g) (fun _ -> Beacon_store.create ~limit:5);
      path_server = None;
      events = [||];
      cursor = 0;
    }
  in
  Alcotest.(check bool) "negative hold flagged" true
    (List.exists
       (fun (v : Invariants.violation) ->
         v.Invariants.check = "link-state"
         && contains v.Invariants.detail "negative")
       (Invariants.check_all ctx))

let test_invariants_detect_stale_stores () =
  (* Stores filled with every link up, then the whole fabric goes down
     without any revocation: every surviving PCB now violates
     store-links. *)
  let g = ring () in
  let outcome =
    Beaconing.run g
      {
        Beaconing.default_config with
        Beaconing.algorithm = Beacon_policy.Baseline;
        duration = 600.0 *. 4.0;
      }
  in
  let n = Graph.num_links g in
  let events =
    Array.init n (fun link ->
        { Fault_plan.time = 0.0; link; action = Fault_plan.Down })
  in
  let links = Link_state.create ~n_links:n in
  Array.iter
    (fun (e : Fault_plan.event) ->
      ignore
        (Link_state.apply links ~now:e.Fault_plan.time ~link:e.Fault_plan.link
           ~action:e.Fault_plan.action))
    events;
  let ctx =
    {
      Invariants.graph = g;
      now = 600.0 *. 4.0;
      links;
      stores = outcome.Beaconing.stores;
      path_server = None;
      events;
      cursor = n;
    }
  in
  Alcotest.(check bool) "PCBs over down links flagged" true
    (List.exists
       (fun (v : Invariants.violation) -> v.Invariants.check = "store-links")
       (Invariants.check_all ctx))

(* --- Soak: chunked determinism --------------------------------------- *)

let test_soak_chunked_byte_identical () =
  let cfg = soak_config () in
  let direct = Soak.create cfg in
  Soak.advance direct ~upto:12;
  let want = Soak.encode direct in
  (* Same horizon, but through encode/restore at two cut points. *)
  let t = Soak.create cfg in
  Soak.advance t ~upto:5;
  let t = Soak.restore cfg (Soak.encode t) in
  Soak.advance t ~upto:9;
  let t = Soak.restore cfg (Soak.encode t) in
  Soak.advance t ~upto:12;
  check Alcotest.int "rounds completed" 12 (Soak.round t);
  Alcotest.(check bool) "chunked run encodes byte-identically" true
    (want = Soak.encode t);
  Alcotest.(check bool) "and reports identically" true
    (Soak.report direct = Soak.report t);
  Alcotest.(check bool) "encode/restore is a fixpoint" true
    (Soak.encode (Soak.restore cfg want) = want)

let test_soak_restore_rejects_mismatch () =
  let cfg = soak_config ~rounds:4 () in
  let t = Soak.create cfg in
  Soak.advance t ~upto:4;
  let bytes = Soak.encode t in
  let expect_corrupt what f =
    match f () with
    | (_ : Soak.t) -> Alcotest.fail (what ^ ": expected Snapshot.Corrupt")
    | exception Snapshot.Corrupt _ -> ()
  in
  expect_corrupt "different pair set" (fun () ->
      Soak.restore { cfg with Soak.pairs = [| (0, 2) |] } bytes);
  expect_corrupt "truncated bytes" (fun () ->
      Soak.restore cfg (String.sub bytes 0 (String.length bytes / 2)))

let test_soak_config_key () =
  let cfg = soak_config () in
  check Alcotest.string "stable fingerprint" (Soak.config_key cfg)
    (Soak.config_key (soak_config ()));
  Alcotest.(check bool) "plan seed changes it" true
    (Soak.config_key cfg <> Soak.config_key (soak_config ~seed:2L ()));
  Alcotest.(check bool) "storage limit changes it" true
    (Soak.config_key cfg <> Soak.config_key (soak_config ~limit:6 ()))

(* qcheck: whatever the fault-plan seed and wherever the run is cut,
   save -> load -> invariant-check -> re-save is byte-stable and the
   resumed run converges on the direct run's bytes. *)
let prop_soak_resume_byte_identical =
  QCheck.Test.make ~name:"soak resume is byte-identical under any cut" ~count:10
    QCheck.(pair (int_bound 1000) (int_bound 6))
    (fun (seed, cut) ->
      let rounds = 8 in
      let cut = 1 + cut in
      let cfg = soak_config ~seed:(Int64.of_int (seed + 1)) ~rounds () in
      let direct = Soak.create cfg in
      Soak.advance direct ~upto:rounds;
      let want = Soak.encode direct in
      let t = Soak.create cfg in
      Soak.advance t ~upto:cut;
      let frozen = Soak.encode t in
      let thawed = Soak.restore cfg frozen in
      (* The checkpointed state is internally consistent and re-encodes
         to the same bytes before advancing further. *)
      Invariants.check_all (Soak.invariant_ctx thawed) = []
      && Soak.encode thawed = frozen
      &&
      (Soak.advance thawed ~upto:rounds;
       Soak.encode thawed = want))

let suite =
  [
    ("snapshot primitives", `Quick, test_snapshot_primitives);
    ("snapshot i64 wire format", `Quick, test_snapshot_i64_wire_format);
    ("snapshot corruption", `Quick, test_snapshot_corruption);
    ("snapshot rng", `Quick, test_snapshot_rng);
    ("snapshot segment", `Quick, test_snapshot_segment);
    ("snapshot registry", `Quick, test_snapshot_registry);
    ("snapshot soak components", `Quick, test_snapshot_components_from_soak);
    ("snapshot beacon stats", `Quick, test_snapshot_beacon_stats);
    ("checkpoint roundtrip/corruption", `Quick, test_checkpoint_roundtrip_and_corruption);
    ("checkpoint series", `Quick, test_checkpoint_series);
    ("watchdog", `Quick, test_watchdog);
    ("attempt seeds", `Quick, test_attempt_seed);
    ("supervised map retries", `Quick, test_supervised_map_retries);
    ("supervised map degrades", `Quick, test_supervised_map_degrades);
    ("invariants: clean soak", `Quick, test_invariants_clean_soak);
    ("invariants: replay divergence", `Quick, test_invariants_detect_replay_divergence);
    ("invariants: negative holds", `Quick, test_invariants_detect_negative_holds);
    ("invariants: stale stores", `Quick, test_invariants_detect_stale_stores);
    ("soak chunked determinism", `Slow, test_soak_chunked_byte_identical);
    ("soak restore rejects mismatch", `Quick, test_soak_restore_rejects_mismatch);
    ("soak config key", `Quick, test_soak_config_key);
    QCheck_alcotest.to_alcotest prop_soak_resume_byte_identical;
  ]
