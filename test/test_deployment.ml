(* Tests for scion_deployment: ISP link models (Fig. 2), end-domain
   models (Fig. 3), IXP models (Fig. 4) and leased-line economics. *)

let check = Alcotest.check

let small_graph () =
  let b = Graph.builder () in
  for i = 0 to 3 do
    ignore (Graph.add_as b ~core:true (Id.ia 1 (i + 1)))
  done;
  Graph.add_link b ~rel:Graph.Core 0 1;
  Graph.add_link b ~rel:Graph.Core 1 2;
  Graph.add_link b ~rel:Graph.Core 2 3;
  Graph.add_link b ~rel:Graph.Core 3 0;
  Graph.freeze b

(* --- ISP link models --- *)

let test_bgp_free () =
  let mk u = { Isp_deployment.link = 0; underlay = u; queueing_discipline = true } in
  Alcotest.(check bool) "native" true
    (Isp_deployment.bgp_free (mk Isp_deployment.Native_cross_connect));
  Alcotest.(check bool) "router-on-a-stick with host routes" true
    (Isp_deployment.bgp_free (mk (Isp_deployment.Router_on_a_stick { host_routes = true })));
  Alcotest.(check bool) "router-on-a-stick without host routes" false
    (Isp_deployment.bgp_free (mk (Isp_deployment.Router_on_a_stick { host_routes = false })));
  Alcotest.(check bool) "tunnel" false (Isp_deployment.bgp_free (mk Isp_deployment.Ip_tunnel))

let test_congestion_safety () =
  let mk u q = { Isp_deployment.link = 0; underlay = u; queueing_discipline = q } in
  Alcotest.(check bool) "native safe without qdisc" true
    (Isp_deployment.congestion_safe (mk Isp_deployment.Native_cross_connect false));
  Alcotest.(check bool) "shared link unsafe without qdisc" false
    (Isp_deployment.congestion_safe
       (mk (Isp_deployment.Router_on_a_stick { host_routes = true }) false));
  Alcotest.(check bool) "shared link safe with qdisc" true
    (Isp_deployment.congestion_safe
       (mk (Isp_deployment.Router_on_a_stick { host_routes = true }) true))

let test_native_plan_survives_bgp_failure () =
  let g = small_graph () in
  let plan = Isp_deployment.uniform_plan g Isp_deployment.Native_cross_connect in
  Alcotest.(check bool) "connected under BGP failure" true
    (Isp_deployment.scion_connected g plan ~bgp_failed:true ~ip_flood:true);
  Alcotest.(check (float 1e-9)) "full pair connectivity" 1.0
    (Isp_deployment.connectivity_under_bgp_failure g plan)

let test_tunnel_plan_dies_with_bgp () =
  let g = small_graph () in
  let plan = Isp_deployment.uniform_plan g Isp_deployment.Ip_tunnel in
  Alcotest.(check bool) "fine while BGP works" true
    (Isp_deployment.scion_connected g plan ~bgp_failed:false ~ip_flood:false);
  Alcotest.(check bool) "dead when BGP fails" false
    (Isp_deployment.scion_connected g plan ~bgp_failed:true ~ip_flood:false);
  Alcotest.(check (float 1e-9)) "no pairs survive" 0.0
    (Isp_deployment.connectivity_under_bgp_failure g plan)

let test_mixed_plan_partial () =
  let g = small_graph () in
  (* Three native links, one tunnel: the ring loses one edge under BGP
     failure but stays connected. *)
  let plan =
    List.mapi
      (fun i (d : Isp_deployment.link_deployment) ->
        if i = 0 then { d with Isp_deployment.underlay = Isp_deployment.Ip_tunnel } else d)
      (Isp_deployment.uniform_plan g Isp_deployment.Native_cross_connect)
  in
  Alcotest.(check bool) "ring minus one edge still connected" true
    (Isp_deployment.scion_connected g plan ~bgp_failed:true ~ip_flood:false);
  check (Alcotest.list Alcotest.int) "surviving links" [ 1; 2; 3 ]
    (Isp_deployment.surviving_links plan ~bgp_failed:true ~ip_flood:false)

let test_redundant_connection () =
  (* Fig. 2c: a native and an encapsulated link in parallel — failing
     BGP must leave the native one. *)
  let b = Graph.builder () in
  let x = Graph.add_as b ~core:true (Id.ia 1 1) in
  let y = Graph.add_as b ~core:true (Id.ia 1 2) in
  Graph.add_link b ~count:2 ~rel:Graph.Core x y;
  let g = Graph.freeze b in
  let plan =
    [
      {
        Isp_deployment.link = 0;
        underlay = Isp_deployment.Native_cross_connect;
        queueing_discipline = false;
      };
      {
        Isp_deployment.link = 1;
        underlay = Isp_deployment.Router_on_a_stick { host_routes = false };
        queueing_discipline = true;
      };
    ]
  in
  check (Alcotest.list Alcotest.int) "native leg survives" [ 0 ]
    (Isp_deployment.surviving_links plan ~bgp_failed:true ~ip_flood:false);
  Alcotest.(check bool) "still connected" true
    (Isp_deployment.scion_connected g plan ~bgp_failed:true ~ip_flood:false)

(* --- End-domain models --- *)

let test_end_domain_capabilities () =
  let native = End_domain.capabilities End_domain.Native_scion_as in
  Alcotest.(check bool) "native: app path control" true
    native.End_domain.application_path_control;
  Alcotest.(check bool) "native: host changes" true native.End_domain.host_changes_required;
  let cpe = End_domain.capabilities End_domain.Cpe_sig in
  Alcotest.(check bool) "cpe: own AS" true cpe.End_domain.own_as;
  Alcotest.(check bool) "cpe: no host changes" false cpe.End_domain.host_changes_required;
  Alcotest.(check bool) "cpe: no app path control" false
    cpe.End_domain.application_path_control;
  let cg = End_domain.capabilities End_domain.Carrier_grade_sig in
  Alcotest.(check bool) "cgsig: no own AS" false cg.End_domain.own_as;
  Alcotest.(check bool) "cgsig: fast failover still provided" true
    cg.End_domain.fast_failover

let test_end_domain_recommendation () =
  Alcotest.(check bool) "scion-capable hosts -> native" true
    (End_domain.recommended ~hosts_scion_capable:true ~wants_own_as:false
    = End_domain.Native_scion_as);
  Alcotest.(check bool) "legacy + own AS -> CPE" true
    (End_domain.recommended ~hosts_scion_capable:false ~wants_own_as:true
    = End_domain.Cpe_sig);
  Alcotest.(check bool) "legacy, no AS -> CGSIG" true
    (End_domain.recommended ~hosts_scion_capable:false ~wants_own_as:false
    = End_domain.Carrier_grade_sig)

(* --- IXP models --- *)

let members = [ { Ixp.as_idx = 0; site = 0 }; { Ixp.as_idx = 2; site = 1 } ]

let test_ixp_big_switch () =
  let g = small_graph () in
  let g' = Ixp.big_switch g ~members ~full_mesh:true in
  check Alcotest.int "same AS count" (Graph.n g) (Graph.n g');
  check Alcotest.int "one peering link added" (Graph.num_links g + 1) (Graph.num_links g');
  Alcotest.(check bool) "0 and 2 now peer" true (Graph.links_between g' 0 2 <> [])

let test_ixp_big_switch_same_site_only () =
  let g = small_graph () in
  let g' = Ixp.big_switch g ~members ~full_mesh:false in
  check Alcotest.int "different sites, no link" (Graph.num_links g) (Graph.num_links g')

let test_ixp_exposed_topology () =
  let g = small_graph () in
  let e =
    Ixp.exposed_topology g ~members ~sites:2 ~inter_site_links:[ (0, 1, 2) ] ~isd:9
  in
  check Alcotest.int "two site ASes added" (Graph.n g + 2) (Graph.n e.Ixp.graph);
  (* sites are core ASes of the IXP's ISD *)
  Array.iter
    (fun s ->
      Alcotest.(check bool) "site is core" true (Graph.is_core e.Ixp.graph s);
      check Alcotest.int "site ISD" 9 (Graph.as_info e.Ixp.graph s).Graph.ia.Id.isd)
    e.Ixp.site_as;
  (* redundant inter-site links carried over *)
  check Alcotest.int "2 parallel inter-site links" 2
    (List.length (Graph.links_between e.Ixp.graph e.Ixp.site_as.(0) e.Ixp.site_as.(1)))

let test_ixp_exposed_increases_capacity () =
  (* Two members connected only via a long path get extra capacity
     through the exposed IXP fabric. *)
  let b = Graph.builder () in
  let m1 = Graph.add_as b ~core:true (Id.ia 1 1) in
  let m2 = Graph.add_as b ~core:true (Id.ia 1 2) in
  Graph.add_link b ~rel:Graph.Core m1 m2;
  let g = Graph.freeze b in
  let before = Ixp.member_pair_capacity g m1 m2 in
  let e =
    Ixp.exposed_topology g
      ~members:[ { Ixp.as_idx = m1; site = 0 }; { Ixp.as_idx = m2; site = 1 } ]
      ~sites:2 ~inter_site_links:[ (0, 1, 2) ] ~isd:9
  in
  let after = Ixp.member_pair_capacity e.Ixp.graph m1 m2 in
  Alcotest.(check bool) "capacity increases" true (after > before);
  check Alcotest.int "exactly one more disjoint route" (before + 1) after

let test_ixp_invalid_site () =
  let g = small_graph () in
  Alcotest.check_raises "unknown site"
    (Invalid_argument "Ixp.exposed_topology: member at unknown site") (fun () ->
      ignore
        (Ixp.exposed_topology g
           ~members:[ { Ixp.as_idx = 0; site = 5 } ]
           ~sites:2 ~inter_site_links:[] ~isd:9))

(* --- Leased-line economics --- *)

let scenario = { Leased_line.branches = 10; data_centres = 3; redundancy = 1 }

let test_leased_line_counts () =
  check Alcotest.int "n*k lines" 30 (Leased_line.leased_lines_needed scenario);
  check Alcotest.int "n+k connections" 13 (Leased_line.scion_connections_needed scenario);
  let redundant = { scenario with Leased_line.redundancy = 2 } in
  check Alcotest.int "redundant lines" 60 (Leased_line.leased_lines_needed redundant);
  check Alcotest.int "redundant connections" 26
    (Leased_line.scion_connections_needed redundant)

let costs =
  {
    Leased_line.leased_line_monthly = 1000.0;
    scion_connection_monthly = 800.0;
    scion_equipment_once = 5000.0;
  }

let test_leased_line_saving () =
  Alcotest.(check (float 1e-6)) "monthly saving" (30000.0 -. 10400.0)
    (Leased_line.monthly_saving scenario costs)

let test_leased_line_breakeven () =
  (match Leased_line.breakeven_months scenario costs with
  | Some m -> Alcotest.(check bool) "breaks even within 4 months" true (m < 4.0)
  | None -> Alcotest.fail "should break even");
  (* A 1x1 site pair with expensive SCION never breaks even. *)
  let tiny = { Leased_line.branches = 1; data_centres = 1; redundancy = 1 } in
  let pricey = { costs with Leased_line.scion_connection_monthly = 2000.0 } in
  Alcotest.(check bool) "no breakeven" true
    (Leased_line.breakeven_months tiny pricey = None)

let test_leased_line_invalid () =
  Alcotest.check_raises "invalid" (Invalid_argument "Leased_line: invalid scenario")
    (fun () ->
      ignore
        (Leased_line.leased_lines_needed
           { Leased_line.branches = 1; data_centres = 1; redundancy = 0 }))

let test_leased_line_properties () =
  let props = Leased_line.properties_match () in
  Alcotest.(check bool) "fast failover matched" true
    (List.assoc "high reliability via fast failover" props);
  Alcotest.(check bool) "dedicated capacity not matched" false
    (List.assoc "dedicated physical capacity" props)

let suite =
  [
    ("bgp free", `Quick, test_bgp_free);
    ("congestion safety", `Quick, test_congestion_safety);
    ("native plan survives BGP failure", `Quick, test_native_plan_survives_bgp_failure);
    ("tunnel plan dies with BGP", `Quick, test_tunnel_plan_dies_with_bgp);
    ("mixed plan partial", `Quick, test_mixed_plan_partial);
    ("redundant connection", `Quick, test_redundant_connection);
    ("end-domain capabilities", `Quick, test_end_domain_capabilities);
    ("end-domain recommendation", `Quick, test_end_domain_recommendation);
    ("ixp big switch", `Quick, test_ixp_big_switch);
    ("ixp big switch same-site only", `Quick, test_ixp_big_switch_same_site_only);
    ("ixp exposed topology", `Quick, test_ixp_exposed_topology);
    ("ixp exposed increases capacity", `Quick, test_ixp_exposed_increases_capacity);
    ("ixp invalid site", `Quick, test_ixp_invalid_site);
    ("leased line counts", `Quick, test_leased_line_counts);
    ("leased line saving", `Quick, test_leased_line_saving);
    ("leased line breakeven", `Quick, test_leased_line_breakeven);
    ("leased line invalid", `Quick, test_leased_line_invalid);
    ("leased line properties", `Quick, test_leased_line_properties);
  ]
