(* Tests for scion_experiments: the experiment harnesses at CI scale. *)

let check = Alcotest.check

let test_scales () =
  (match Exp_common.scale_of_string "paper" with
  | Ok s ->
      let d = Exp_common.dimensions s in
      check Alcotest.int "paper full" 12000 d.Exp_common.full_n;
      check Alcotest.int "paper core" 2000 d.Exp_common.core_k;
      check Alcotest.int "paper isd cores" 11 d.Exp_common.isd_cores;
      check Alcotest.int "paper monitors" 26 d.Exp_common.monitors
  | Error e -> Alcotest.fail e);
  (match Exp_common.scale_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject");
  check Alcotest.string "roundtrip" "tiny"
    (Exp_common.scale_to_string
       (Result.get_ok (Exp_common.scale_of_string "tiny")))

let test_months_factor () =
  Alcotest.(check (float 1e-9)) "6h windows per month" 120.0
    (Exp_common.months_factor Exp_common.beacon_config)

let test_sample_pairs () =
  let g = Scionlab.generate Scionlab.default_params in
  let pairs = Exp_common.sample_pairs g ~count:50 ~seed:1L in
  check Alcotest.int "count" 50 (Array.length pairs);
  Array.iter (fun (s, d) -> Alcotest.(check bool) "distinct" true (s <> d)) pairs;
  let uniq = Array.to_list pairs |> List.sort_uniq compare in
  check Alcotest.int "no duplicates" 50 (List.length uniq);
  let again = Exp_common.sample_pairs g ~count:50 ~seed:1L in
  check Alcotest.bool "deterministic" true (pairs = again)

let prepared = lazy (Exp_common.prepare Exp_common.Tiny)

let test_prepare_consistency () =
  let p = Lazy.force prepared in
  let d = Exp_common.dimensions Exp_common.Tiny in
  check Alcotest.int "full size" d.Exp_common.full_n (Graph.n p.Exp_common.full);
  Alcotest.(check bool) "core size ~k" true
    (Graph.n p.Exp_common.core <= d.Exp_common.core_k);
  (* Monitors exist in both graphs and match by the old/new mapping. *)
  List.iter2
    (fun mf mc ->
      check Alcotest.int "monitor mapping" mf p.Exp_common.core_old_of_new.(mc))
    p.Exp_common.monitors_full p.Exp_common.monitors_core;
  (* ISD has the requested core count. *)
  check Alcotest.int "isd cores" d.Exp_common.isd_cores
    (List.length (Graph.core_ases p.Exp_common.isd))

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_table1_shape () =
  check Alcotest.int "seven components" 7 (List.length Table1.components);
  let rendered = Table1.render () in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s in table" c.Table1.name)
        true
        (contains_substring rendered c.Table1.name))
    Table1.components

let test_table1_against_paper () =
  let find name =
    List.find (fun c -> c.Table1.name = name) Table1.components
  in
  (* Spot-check the classification against Table 1. *)
  let cb = find "Core Beaconing" in
  Alcotest.(check bool) "core beaconing global+minutes" true
    (cb.Table1.scope = Table1.Global_scope && cb.Table1.frequency = Table1.Minutes);
  let el = find "Endpoint Path Lookup" in
  Alcotest.(check bool) "endpoint lookup AS+seconds" true
    (el.Table1.scope = Table1.As_scope && el.Table1.frequency = Table1.Seconds);
  let dl = find "Down-Path Segment Lookup" in
  Alcotest.(check bool) "down lookup global+hours" true
    (dl.Table1.scope = Table1.Global_scope && dl.Table1.frequency = Table1.Hours)

let test_scionlab_experiment () =
  let r = Scionlab_exp.run (Scionlab_exp.config ()) in
  check Alcotest.int "210 pairs" 210 (Array.length r.Scionlab_exp.pairs);
  check Alcotest.int "six algos" 6 (List.length r.Scionlab_exp.algos);
  (* Flows bounded by optimum; measurement equals baseline(5). *)
  let find name = List.find (fun a -> a.Scionlab_exp.name = name) r.Scionlab_exp.algos in
  let meas = find "Measurement" and base5 = find "SCION Baseline (5)" in
  check (Alcotest.array Alcotest.int) "measurement = baseline(5)"
    meas.Scionlab_exp.flows base5.Scionlab_exp.flows;
  List.iter
    (fun a ->
      Array.iteri
        (fun i f ->
          Alcotest.(check bool) "bounded by optimum" true
            (f <= r.Scionlab_exp.optimum.(i)))
        a.Scionlab_exp.flows)
    r.Scionlab_exp.algos;
  (* Diversity with a bigger store is never worse on average. *)
  let mean a =
    let s = Array.fold_left ( + ) 0 a.Scionlab_exp.flows in
    float_of_int s /. float_of_int (Array.length a.Scionlab_exp.flows)
  in
  Alcotest.(check bool) "div(60) >= div(5) on average" true
    (mean (find "SCION Diversity (60)") >= mean (find "SCION Diversity (5)") -. 1e-9);
  (* Fig. 9 distribution is non-empty with positive rates. *)
  Alcotest.(check bool) "iface rates present" true
    (Array.length r.Scionlab_exp.iface_bps > 0);
  Array.iter
    (fun b -> Alcotest.(check bool) "non-negative" true (b >= 0.0))
    r.Scionlab_exp.iface_bps

let test_tuning_evaluate () =
  (* A small-diameter core so refresh waves complete within the short
     lifetime used by the tuning objective. *)
  let g =
    Scionlab.generate { Scionlab.default_params with Scionlab.n_core = 8; chords = 3 }
  in
  let o = Tuning.evaluate ~duration_rounds:16 ~lifetime_rounds:12 g Beacon_policy.default_div_params in
  Alcotest.(check bool) "connectivity reached" true (o.Tuning.connectivity > 0.9);
  Alcotest.(check bool) "some overhead" true (o.Tuning.overhead_bytes > 0.0);
  Alcotest.(check bool) "capacity fraction in [0,1]" true
    (o.Tuning.capacity_fraction >= 0.0 && o.Tuning.capacity_fraction <= 1.0)

let test_table1_measure () =
  let measured = Table1.measure Exp_common.Tiny in
  check Alcotest.int "seven measured components" 7 (List.length measured);
  let get name = List.find (fun m -> m.Table1.component = name) measured in
  Alcotest.(check bool) "core beaconing has traffic" true
    ((get "Core Beaconing").Table1.bytes > 0.0);
  Alcotest.(check bool) "intra beaconing has traffic" true
    ((get "Intra-ISD Beaconing").Table1.bytes > 0.0);
  Alcotest.(check bool) "registrations happened" true
    ((get "Path (De-)Registration").Table1.messages > 0.0);
  Alcotest.(check bool) "lookups happened" true
    ((get "Endpoint Path Lookup").Table1.messages > 0.0)

let test_scenarios_registry () =
  check Alcotest.int "ten scenarios" 10 (List.length Scenarios.all);
  check Alcotest.int "distinct names" 10
    (List.length (List.sort_uniq compare Scenarios.names));
  List.iter
    (fun n ->
      match Scenarios.find n with
      | Some (module S : Scenario.Cli) -> check Alcotest.string "lookup name" n S.name
      | None -> Alcotest.fail (Printf.sprintf "scenario %s not found" n))
    Scenarios.names;
  (match Scenarios.find "bogus" with
  | None -> ()
  | Some _ -> Alcotest.fail "bogus should not resolve");
  (* The generic driver's contract: every registered scenario accepts
     the shared CLI record and documents itself. *)
  List.iter
    (fun (module S : Scenario.Cli) ->
      ignore
        (S.config_of_cli
           {
             Scenario.scale = Exp_common.Tiny;
             seed = None;
             sup = Supervise.default_cli;
             flows = None;
             strategy = None;
             capacity_scale = None;
           });
      Alcotest.(check bool) (S.name ^ " has doc") true (String.length S.doc > 0))
    Scenarios.all

let suite =
  [
    ("scales", `Quick, test_scales);
    ("months factor", `Quick, test_months_factor);
    ("sample pairs", `Quick, test_sample_pairs);
    ("prepare consistency", `Quick, test_prepare_consistency);
    ("table1 shape", `Quick, test_table1_shape);
    ("table1 against paper", `Quick, test_table1_against_paper);
    ("scionlab experiment", `Slow, test_scionlab_experiment);
    ("tuning evaluate", `Quick, test_tuning_evaluate);
    ("table1 measure", `Slow, test_table1_measure);
    ("scenario registry", `Quick, test_scenarios_registry);
  ]
