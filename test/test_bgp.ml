(* Tests for scion_bgp: Gao-Rexford route computation, export rules,
   multipath extraction and the overhead model. *)

let check = Alcotest.check

(* Hand topology:

       T1a ~~~~ T1b          (~~ peering)
       /  \       \
      M1   M2      M3        (provider-customer, downward)
      |      \    /
      S1       S2

   indexes: T1a=0 T1b=1 M1=2 M2=3 M3=4 S1=5 S2=6 *)
let policy_graph () =
  let b = Graph.builder () in
  for i = 0 to 6 do
    ignore (Graph.add_as b ~tier:(if i < 2 then 1 else if i < 5 then 2 else 3) (Id.ia 1 (i + 1)))
  done;
  Graph.add_link b ~rel:Graph.Peering 0 1;
  Graph.add_link b ~rel:Graph.Provider_customer 0 2;
  Graph.add_link b ~rel:Graph.Provider_customer 0 3;
  Graph.add_link b ~rel:Graph.Provider_customer 1 4;
  Graph.add_link b ~rel:Graph.Provider_customer 2 5;
  Graph.add_link b ~rel:Graph.Provider_customer 3 6;
  Graph.add_link b ~rel:Graph.Provider_customer 4 6;
  Graph.freeze b

let test_self_route () =
  let g = policy_graph () in
  let t = Bgp_routes.compute g ~dst:5 in
  Alcotest.(check bool) "self" true (t.Bgp_routes.cls.(5) = Bgp_routes.Self);
  check Alcotest.int "self dist" 0 t.Bgp_routes.dist.(5)

let test_customer_route_preferred () =
  let g = policy_graph () in
  (* Destination S2 (6): M2 and M3 learn it as a customer route. *)
  let t = Bgp_routes.compute g ~dst:6 in
  Alcotest.(check bool) "M2 customer route" true
    (t.Bgp_routes.cls.(3) = Bgp_routes.Via_customer);
  Alcotest.(check bool) "T1a customer route (via M2)" true
    (t.Bgp_routes.cls.(0) = Bgp_routes.Via_customer);
  check Alcotest.int "T1a dist 2" 2 t.Bgp_routes.dist.(0)

let test_peer_route () =
  let g = policy_graph () in
  (* Destination M3 (4): T1a has no customer path to 4 but peers with
     T1b whose customer it is. *)
  let t = Bgp_routes.compute g ~dst:4 in
  Alcotest.(check bool) "T1a peer route" true (t.Bgp_routes.cls.(0) = Bgp_routes.Via_peer);
  check Alcotest.int "dist" 2 t.Bgp_routes.dist.(0)

let test_provider_route () =
  let g = policy_graph () in
  (* Destination S1 (5): S2 reaches it only via its providers. *)
  let t = Bgp_routes.compute g ~dst:5 in
  Alcotest.(check bool) "S2 provider route" true
    (t.Bgp_routes.cls.(6) = Bgp_routes.Via_provider)

let test_paths_valley_free () =
  let g = policy_graph () in
  for dst = 0 to 6 do
    let t = Bgp_routes.compute g ~dst in
    for src = 0 to 6 do
      match Bgp_routes.path_to t ~src with
      | None -> if src <> dst then Alcotest.failf "no route %d->%d" src dst
      | Some path ->
          check Alcotest.int "starts at src" src (List.hd path);
          check Alcotest.int "ends at dst" dst (List.nth path (List.length path - 1));
          (* Valley-freeness: once the path goes down (provider->customer)
             or lateral, it never goes up (customer->provider) again. *)
          let rec walk went_down = function
            | u :: (v :: _ as rest) ->
                let up = List.mem v (Graph.providers g u) in
                let down = List.mem v (Graph.customers g u) in
                if up && went_down then Alcotest.failf "valley in path %d->%d" src dst;
                walk (went_down || down || not up) rest
            | _ -> ()
          in
          walk false path
    done
  done

let test_exports_to () =
  let g = policy_graph () in
  let t = Bgp_routes.compute g ~dst:6 in
  (* M2 (3) has a customer route to 6: exports to everyone. *)
  Alcotest.(check bool) "M2 exports to T1a" true
    (Bgp_routes.exports_to g t ~exporter:3 ~importer:0);
  (* S2 (6) is the destination; no exports towards it counted. *)
  Alcotest.(check bool) "no export to destination" false
    (Bgp_routes.exports_to g t ~exporter:3 ~importer:6);
  (* T1a's route to 6 is via its customer: exported to its peer T1b. *)
  Alcotest.(check bool) "T1a exports customer route to peer" true
    (Bgp_routes.exports_to g t ~exporter:0 ~importer:1);
  (* Destination M3 (4): T1a's route is via peer T1b — not exported to
     the peer M2... M2 is T1a's customer, so it IS exported. *)
  let t4 = Bgp_routes.compute g ~dst:4 in
  Alcotest.(check bool) "peer route exported to customer" true
    (Bgp_routes.exports_to g t4 ~exporter:0 ~importer:2);
  (* But a peer route is not exported to another peer: T1b's customer
     route is fine, check reverse direction: T1a -> T1b for dst 4. *)
  Alcotest.(check bool) "peer route not exported to peer" false
    (Bgp_routes.exports_to g t4 ~exporter:0 ~importer:1)

let test_exporting_neighbors () =
  let g = policy_graph () in
  let t = Bgp_routes.compute g ~dst:6 in
  (* S1 (5) imports from its provider M1 (2). *)
  check (Alcotest.list Alcotest.int) "S1 hears from M1" [ 2 ]
    (Bgp_routes.exporting_neighbors g t ~importer:5)

let test_multipath_set () =
  let g = policy_graph () in
  let t = Bgp_routes.compute g ~dst:6 in
  let paths = Bgp_routes.multipath_set g t ~src:0 in
  Alcotest.(check bool) "at least one path" true (paths <> []);
  List.iter
    (fun p ->
      check Alcotest.int "src first" 0 (List.hd p);
      check Alcotest.int "dst last" 6 (List.nth p (List.length p - 1));
      check Alcotest.int "loop free" (List.length p)
        (List.length (List.sort_uniq compare p)))
    paths

let test_shortest_multipath_ring () =
  (* Ring of 4: both directions to the opposite node are equally long,
     so ECMP multipath installs both. *)
  let b = Graph.builder () in
  for i = 0 to 3 do
    ignore (Graph.add_as b ~core:true (Id.ia 1 (i + 1)))
  done;
  for i = 0 to 3 do
    Graph.add_link b ~rel:Graph.Core i ((i + 1) mod 4)
  done;
  let g = Graph.freeze b in
  let paths = Bgp_routes.shortest_multipath g ~src:0 ~dst:2 in
  check Alcotest.int "two directions" 2 (List.length paths);
  (* An unequal-length alternative is NOT installed: ring of 5. *)
  let b5 = Graph.builder () in
  for i = 0 to 4 do
    ignore (Graph.add_as b5 ~core:true (Id.ia 2 (i + 1)))
  done;
  for i = 0 to 4 do
    Graph.add_link b5 ~rel:Graph.Core i ((i + 1) mod 5)
  done;
  let g5 = Graph.freeze b5 in
  check Alcotest.int "ECMP rejects longer direction" 1
    (List.length (Bgp_routes.shortest_multipath g5 ~src:0 ~dst:2));
  List.iter
    (fun p ->
      check Alcotest.int "loop free" (List.length p)
        (List.length (List.sort_uniq compare p)))
    paths

let test_shortest_multipath_avoids_src () =
  let g = policy_graph () in
  let paths = Bgp_routes.shortest_multipath g ~src:0 ~dst:6 in
  List.iter
    (fun p ->
      let tail = List.tl p in
      Alcotest.(check bool) "src not revisited" true (not (List.mem 0 tail)))
    paths

(* --- Overhead model --- *)

let test_workload_deterministic () =
  let g = policy_graph () in
  let w1 = Bgp_overhead.make_workload g ~seed:1L in
  let w2 = Bgp_overhead.make_workload g ~seed:1L in
  check (Alcotest.array Alcotest.int) "prefixes deterministic"
    w1.Bgp_overhead.prefixes w2.Bgp_overhead.prefixes

let test_workload_positive () =
  let g = policy_graph () in
  let w = Bgp_overhead.make_workload g ~seed:5L in
  Array.iter
    (fun p -> Alcotest.(check bool) "at least one prefix" true (p >= 1))
    w.Bgp_overhead.prefixes;
  Array.iter
    (fun f -> Alcotest.(check bool) "positive flap rate" true (f > 0.0))
    w.Bgp_overhead.flaps_per_prefix

let test_monthly_overhead_shape () =
  let g = policy_graph () in
  let w = Bgp_overhead.make_workload g ~seed:5L in
  let r =
    Bgp_overhead.monthly_overhead g w ~monitors:[ 0; 5 ] Bgp_overhead.default_params
  in
  check Alcotest.int "two monitors" 2 (Array.length r.Bgp_overhead.bgp_bytes);
  Array.iteri
    (fun i b ->
      Alcotest.(check bool) "bgp bytes positive" true (b > 0.0);
      Alcotest.(check bool) "bgpsec bigger than bgp" true
        (r.Bgp_overhead.bgpsec_bytes.(i) > b))
    r.Bgp_overhead.bgp_bytes

let test_prefix_mean_scales () =
  let g = policy_graph () in
  let w1 = Bgp_overhead.make_workload ~prefix_mean:11.0 g ~seed:9L in
  let w2 = Bgp_overhead.make_workload ~prefix_mean:110.0 g ~seed:9L in
  let sum w = Array.fold_left ( + ) 0 w.Bgp_overhead.prefixes in
  Alcotest.(check bool) "10x mean gives more prefixes" true (sum w2 > 3 * sum w1)

let test_top_degree_monitors () =
  let g = policy_graph () in
  let ms = Bgp_overhead.top_degree_monitors g ~count:2 in
  check Alcotest.int "two monitors" 2 (List.length ms);
  (* T1a (0) has degree 3, the maximum. *)
  check Alcotest.int "highest degree first" 0 (List.hd ms)

let suite =
  [
    ("self route", `Quick, test_self_route);
    ("customer route preferred", `Quick, test_customer_route_preferred);
    ("peer route", `Quick, test_peer_route);
    ("provider route", `Quick, test_provider_route);
    ("paths valley free", `Quick, test_paths_valley_free);
    ("exports_to", `Quick, test_exports_to);
    ("exporting neighbors", `Quick, test_exporting_neighbors);
    ("multipath set", `Quick, test_multipath_set);
    ("shortest multipath ring", `Quick, test_shortest_multipath_ring);
    ("shortest multipath avoids src", `Quick, test_shortest_multipath_avoids_src);
    ("workload deterministic", `Quick, test_workload_deterministic);
    ("workload positive", `Quick, test_workload_positive);
    ("monthly overhead shape", `Quick, test_monthly_overhead_shape);
    ("prefix mean scales", `Quick, test_prefix_mean_scales);
    ("top degree monitors", `Quick, test_top_degree_monitors);
  ]
