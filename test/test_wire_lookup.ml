(* Tests for the SCION header codec and the lookup-cache simulation. *)

let check = Alcotest.check

(* --- Scion_header --- *)

let sample_proof ?(peers = [||]) as_idx =
  {
    Segment.as_idx;
    ingress = 2;
    egress = 5;
    link_in = 7;
    link_out = 9;
    peers;
    expiry = 21600.5;
    mac = String.init 6 (fun i -> Char.chr (65 + i + as_idx));
  }

let sample_path () =
  {
    Fwd_path.crossings =
      [|
        {
          Fwd_path.as_idx = 3;
          in_if = 0;
          out_if = 4;
          in_link = -1;
          out_link = 12;
          proofs = [ sample_proof 3 ];
        };
        {
          Fwd_path.as_idx = 8;
          in_if = 6;
          out_if = 2;
          in_link = 12;
          out_link = 13;
          proofs = [ sample_proof 8; sample_proof ~peers:[| 44; 55 |] 9 ];
        };
        {
          Fwd_path.as_idx = 1;
          in_if = 3;
          out_if = 0;
          in_link = 13;
          out_link = -1;
          proofs = [ sample_proof 1 ];
        };
      |];
    links = [| 12; 13 |];
    combination = Fwd_path.Peering_shortcut;
  }

let sample_header ?(local = Id.Ipv4 0x0A000001l) () =
  {
    Scion_header.src = { Id.host_ia = Id.ia 1 42; local };
    dst = { Id.host_ia = Id.ia 7 99999; local = Id.Ipv4 0xC0A80001l };
    payload_len = 1400;
    path = sample_path ();
  }

let headers_equal a b =
  a.Scion_header.payload_len = b.Scion_header.payload_len
  && a.Scion_header.src = b.Scion_header.src
  && a.Scion_header.dst = b.Scion_header.dst
  && a.Scion_header.path.Fwd_path.combination = b.Scion_header.path.Fwd_path.combination
  && a.Scion_header.path.Fwd_path.links = b.Scion_header.path.Fwd_path.links
  && a.Scion_header.path.Fwd_path.crossings = b.Scion_header.path.Fwd_path.crossings

let test_header_roundtrip () =
  let h = sample_header () in
  match Scion_header.decode (Scion_header.encode h) with
  | Ok h' -> Alcotest.(check bool) "roundtrip" true (headers_equal h h')
  | Error e -> Alcotest.fail e

let test_header_roundtrip_ipv6_mac () =
  let h6 = sample_header ~local:(Id.Ipv6 (String.make 16 '\x42')) () in
  (match Scion_header.decode (Scion_header.encode h6) with
  | Ok h' -> Alcotest.(check bool) "ipv6 roundtrip" true (headers_equal h6 h')
  | Error e -> Alcotest.fail e);
  let hm = sample_header ~local:(Id.Mac "\x01\x02\x03\x04\x05\x06") () in
  match Scion_header.decode (Scion_header.encode hm) with
  | Ok h' -> Alcotest.(check bool) "mac roundtrip" true (headers_equal hm h')
  | Error e -> Alcotest.fail e

let test_header_reencode_identical () =
  let h = sample_header () in
  let wire = Scion_header.encode h in
  match Scion_header.decode wire with
  | Ok h' -> check Alcotest.string "byte identical" wire (Scion_header.encode h')
  | Error e -> Alcotest.fail e

let test_header_size () =
  let h = sample_header () in
  check Alcotest.int "encoded_size matches" (String.length (Scion_header.encode h))
    (Scion_header.encoded_size h)

let test_header_rejects_truncation () =
  let wire = Scion_header.encode (sample_header ()) in
  for cut = 0 to String.length wire - 1 do
    match Scion_header.decode (String.sub wire 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation at %d accepted" cut
  done

let test_header_rejects_trailing () =
  let wire = Scion_header.encode (sample_header ()) ^ "x" in
  match Scion_header.decode wire with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing byte accepted"

let test_header_rejects_bad_version () =
  let wire = Scion_header.encode (sample_header ()) in
  let bad = "\xff" ^ String.sub wire 1 (String.length wire - 1) in
  match Scion_header.decode bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad version accepted"

let test_header_range_checks () =
  let h = sample_header () in
  let h = { h with Scion_header.payload_len = 100_000 } in
  Alcotest.(check bool) "oversized payload rejected" true
    (try
       ignore (Scion_header.encode h);
       false
     with Invalid_argument _ -> true)

let test_header_on_resolved_path () =
  (* End-to-end: encode a path the control service actually produced. *)
  let b = Graph.builder () in
  let c0 = Graph.add_as b ~core:true (Id.ia 1 1) in
  let c1 = Graph.add_as b ~core:true (Id.ia 2 1) in
  let a2 = Graph.add_as b (Id.ia 1 2) in
  let a3 = Graph.add_as b (Id.ia 2 2) in
  Graph.add_link b ~rel:Graph.Core c0 c1;
  Graph.add_link b ~rel:Graph.Provider_customer c0 a2;
  Graph.add_link b ~rel:Graph.Provider_customer c1 a3;
  let g = Graph.freeze b in
  let cfg = { Beaconing.default_config with Beaconing.duration = 3600.0 } in
  let core = Beaconing.run g { cfg with Beaconing.scope = Beaconing.Core_beaconing } in
  let intra = Beaconing.run g { cfg with Beaconing.scope = Beaconing.Intra_isd } in
  let cs = Control_service.build ~core ~intra () in
  match Control_service.resolve cs ~src:a2 ~dst:a3 with
  | [] -> Alcotest.fail "no path"
  | path :: _ -> (
      let h =
        {
          Scion_header.src = { Id.host_ia = Id.ia 1 2; local = Id.Ipv4 1l };
          dst = { Id.host_ia = Id.ia 2 2; local = Id.Ipv4 2l };
          payload_len = 512;
          path;
        }
      in
      match Scion_header.decode (Scion_header.encode h) with
      | Error e -> Alcotest.fail e
      | Ok h' ->
          Alcotest.(check bool) "resolved path roundtrips" true (headers_equal h h');
          (* The decoded path still forwards. *)
          let net = Forwarding.network g (Control_service.keys cs) in
          (match
             Forwarding.forward net ~now:(Control_service.now cs)
               (Forwarding.packet h'.Scion_header.path ())
           with
          | Forwarding.Delivered _ -> ()
          | Forwarding.Dropped _ -> Alcotest.fail "decoded path must forward"))

let prop_header_random_paths =
  let gen =
    QCheck.Gen.(
      let* n_cross = int_range 1 6 in
      let* seedling = int_bound 1_000_000 in
      return (n_cross, seedling))
  in
  QCheck.Test.make ~name:"random synthetic paths roundtrip" ~count:100 (QCheck.make gen)
    (fun (n_cross, seedling) ->
      let rng = Rng.create (Int64.of_int seedling) in
      let crossing i =
        {
          Fwd_path.as_idx = Rng.int rng 1000;
          in_if = (if i = 0 then 0 else Rng.int rng 100);
          out_if = (if i = n_cross - 1 then 0 else Rng.int rng 100);
          in_link = (if i = 0 then -1 else Rng.int rng 5000);
          out_link = (if i = n_cross - 1 then -1 else Rng.int rng 5000);
          proofs =
            List.init
              (1 + Rng.int rng 2)
              (fun _ ->
                {
                  Segment.as_idx = Rng.int rng 1000;
                  ingress = Rng.int rng 100;
                  egress = Rng.int rng 100;
                  link_in = Rng.int rng 5000 - 1;
                  link_out = Rng.int rng 5000 - 1;
                  peers = Array.init (Rng.int rng 3) (fun _ -> Rng.int rng 5000);
                  expiry = Rng.float rng 1e6;
                  mac = String.init 6 (fun _ -> Char.chr (Rng.int rng 256));
                });
        }
      in
      let path =
        {
          Fwd_path.crossings = Array.init n_cross crossing;
          links = Array.init (max 0 (n_cross - 1)) (fun _ -> Rng.int rng 5000);
          combination = Fwd_path.Up_core_down;
        }
      in
      let h =
        {
          Scion_header.src = { Id.host_ia = Id.ia 1 1; local = Id.Ipv4 1l };
          dst = { Id.host_ia = Id.ia 2 2; local = Id.Ipv4 2l };
          payload_len = 100;
          path;
        }
      in
      match Scion_header.decode (Scion_header.encode h) with
      | Ok h' -> headers_equal h h'
      | Error _ -> false)

(* --- Lookup_sim --- *)

let quick p = Lookup_sim.run p

let test_lookup_no_cache () =
  let r =
    quick { Lookup_sim.default_params with Lookup_sim.cache = false; requests = 5000 }
  in
  check Alcotest.int "all misses" 5000 r.Lookup_sim.cache_misses;
  check Alcotest.int "two messages per request" 10000 r.Lookup_sim.upstream_messages;
  Alcotest.(check (float 1e-9)) "zero hit rate" 0.0 r.Lookup_sim.hit_rate

let test_lookup_cache_helps () =
  let base = { Lookup_sim.default_params with Lookup_sim.requests = 20000 } in
  let on = quick base in
  let off = quick { base with Lookup_sim.cache = false } in
  Alcotest.(check bool) "cache cuts upstream traffic" true
    (on.Lookup_sim.upstream_bytes < off.Lookup_sim.upstream_bytes /. 1.5);
  Alcotest.(check bool) "decent hit rate at zipf 1.1" true (on.Lookup_sim.hit_rate > 0.5)

let test_lookup_zipf_skew_monotone () =
  let base = { Lookup_sim.default_params with Lookup_sim.requests = 20000 } in
  let h s = (quick { base with Lookup_sim.zipf_s = s }).Lookup_sim.hit_rate in
  Alcotest.(check bool) "more skew, more hits" true (h 1.4 > h 1.1 && h 1.1 > h 0.8)

let test_lookup_expiry_evicts () =
  let r =
    quick
      {
        Lookup_sim.default_params with
        Lookup_sim.requests = 20000;
        segment_lifetime = 10.0 (* much shorter than the run *);
      }
  in
  Alcotest.(check bool) "expired entries evicted" true (r.Lookup_sim.expired_evictions > 0)

let test_lookup_counts_consistent () =
  let r = quick { Lookup_sim.default_params with Lookup_sim.requests = 12345 } in
  check Alcotest.int "hits + misses = requests" 12345
    (r.Lookup_sim.cache_hits + r.Lookup_sim.cache_misses)

let test_lookup_invalid () =
  Alcotest.check_raises "invalid" (Invalid_argument "Lookup_sim.run: invalid parameters")
    (fun () ->
      ignore (quick { Lookup_sim.default_params with Lookup_sim.n_destinations = 0 }))

let suite =
  [
    ("header roundtrip", `Quick, test_header_roundtrip);
    ("header roundtrip ipv6/mac", `Quick, test_header_roundtrip_ipv6_mac);
    ("header re-encode identical", `Quick, test_header_reencode_identical);
    ("header size", `Quick, test_header_size);
    ("header rejects truncation", `Quick, test_header_rejects_truncation);
    ("header rejects trailing", `Quick, test_header_rejects_trailing);
    ("header rejects bad version", `Quick, test_header_rejects_bad_version);
    ("header range checks", `Quick, test_header_range_checks);
    ("header on resolved path", `Quick, test_header_on_resolved_path);
    QCheck_alcotest.to_alcotest prop_header_random_paths;
    ("lookup no cache", `Quick, test_lookup_no_cache);
    ("lookup cache helps", `Quick, test_lookup_cache_helps);
    ("lookup zipf skew monotone", `Quick, test_lookup_zipf_skew_monotone);
    ("lookup expiry evicts", `Quick, test_lookup_expiry_evicts);
    ("lookup counts consistent", `Quick, test_lookup_counts_consistent);
    ("lookup invalid", `Quick, test_lookup_invalid);
  ]
