(* Tests for scion_crypto: SHA-256 against FIPS vectors, HMAC against
   RFC 4231 vectors, the simulated signature scheme, and TRCs. *)

let check = Alcotest.check

(* --- SHA-256 FIPS 180-4 test vectors --- *)

let test_sha256_empty () =
  check Alcotest.string "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex "")

let test_sha256_abc () =
  check Alcotest.string "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex "abc")

let test_sha256_two_blocks () =
  check Alcotest.string "448-bit message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_million_a () =
  check Alcotest.string "1M x 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (String.make 1_000_000 'a'))

let test_sha256_exact_block () =
  (* 64 bytes: exercises the padding path that adds a whole extra block. *)
  check Alcotest.string "64 bytes"
    "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
    (Sha256.hex (String.make 64 'a'))

let test_sha256_55_56_bytes () =
  (* 55 bytes fits length in the same block; 56 does not. *)
  check Alcotest.string "55 bytes"
    "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"
    (Sha256.hex (String.make 55 'a'));
  check Alcotest.string "56 bytes"
    "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
    (Sha256.hex (String.make 56 'a'))

let prop_sha256_incremental =
  QCheck.Test.make ~name:"incremental hashing equals one-shot" ~count:100
    QCheck.(pair string (list small_nat))
    (fun (s, cuts) ->
      (* Split s at arbitrary points and feed the chunks. *)
      let ctx = Sha256.init () in
      let n = String.length s in
      let cuts = List.sort_uniq compare (List.map (fun c -> c mod (n + 1)) cuts) in
      let rec feed start = function
        | [] -> Sha256.update ctx (String.sub s start (n - start))
        | c :: rest when c >= start ->
            Sha256.update ctx (String.sub s start (c - start));
            feed c rest
        | _ :: rest -> feed start rest
      in
      feed 0 cuts;
      Sha256.finalize ctx = Sha256.digest s)

let test_sha256_digest_size () =
  check Alcotest.int "digest size" 32 (String.length (Sha256.digest "x"))

(* --- HMAC RFC 4231 vectors --- *)

let test_hmac_rfc4231_case1 () =
  let key = String.make 20 '\x0b' in
  check Alcotest.string "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac_hex ~key "Hi There")

let test_hmac_rfc4231_case2 () =
  check Alcotest.string "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac_hex ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_rfc4231_case6_long_key () =
  let key = String.make 131 '\xaa' in
  check Alcotest.string "case 6 (key > block size)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac_hex ~key "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_truncated () =
  let tag = Hmac.truncated ~key:"k" ~length:6 "msg" in
  check Alcotest.int "6 bytes" 6 (String.length tag);
  check Alcotest.string "is a prefix" (String.sub (Hmac.mac ~key:"k" "msg") 0 6) tag

let test_hmac_truncated_invalid () =
  Alcotest.check_raises "length 0" (Invalid_argument "Hmac.truncated: length outside [1, 32]")
    (fun () -> ignore (Hmac.truncated ~key:"k" ~length:0 "m"))

let test_hmac_verify () =
  let tag = Hmac.truncated ~key:"secret" ~length:6 "payload" in
  Alcotest.(check bool) "accepts" true (Hmac.verify ~key:"secret" ~tag "payload");
  Alcotest.(check bool) "rejects wrong payload" false
    (Hmac.verify ~key:"secret" ~tag "other");
  Alcotest.(check bool) "rejects wrong key" false (Hmac.verify ~key:"x" ~tag "payload");
  Alcotest.(check bool) "rejects empty tag" false (Hmac.verify ~key:"secret" ~tag:"" "payload")

let prop_hmac_verify_roundtrip =
  QCheck.Test.make ~name:"verify accepts every generated mac" ~count:100
    QCheck.(pair string string)
    (fun (key, msg) ->
      let tag = Hmac.mac ~key msg in
      Hmac.verify ~key ~tag msg)

(* --- Signatures --- *)

let test_signature_sizes () =
  check Alcotest.int "p384" 96 (Signature.signature_size Signature.Ecdsa_p384);
  check Alcotest.int "p256" 64 (Signature.signature_size Signature.Ecdsa_p256);
  check Alcotest.int "ed25519 pk" 32 (Signature.public_key_size Signature.Ed25519)

let test_signature_roundtrip () =
  let ks = Signature.create_keystore () in
  let kp = Signature.generate ks Signature.Ecdsa_p384 ~id:"as:1" in
  let s = Signature.sign kp "hello" in
  check Alcotest.int "wire size" 96 (String.length s);
  Alcotest.(check bool) "verifies" true
    (Signature.verify ks ~id:"as:1" ~msg:"hello" ~signature:s);
  Alcotest.(check bool) "wrong msg" false
    (Signature.verify ks ~id:"as:1" ~msg:"hullo" ~signature:s);
  Alcotest.(check bool) "unknown id" false
    (Signature.verify ks ~id:"as:2" ~msg:"hello" ~signature:s)

let test_signature_duplicate_id () =
  let ks = Signature.create_keystore () in
  ignore (Signature.generate ks Signature.Ecdsa_p384 ~id:"dup");
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Signature.generate: duplicate key id \"dup\"") (fun () ->
      ignore (Signature.generate ks Signature.Ecdsa_p384 ~id:"dup"))

let test_signature_cross_key () =
  let ks = Signature.create_keystore () in
  let k1 = Signature.generate ks Signature.Ecdsa_p384 ~id:"a" in
  ignore (Signature.generate ks Signature.Ecdsa_p384 ~id:"b");
  let s = Signature.sign k1 "m" in
  Alcotest.(check bool) "b cannot claim a's signature" false
    (Signature.verify ks ~id:"b" ~msg:"m" ~signature:s)

(* --- TRC --- *)

let test_trc_basic () =
  let ks = Signature.create_keystore () in
  let root = Signature.generate ks Signature.Ecdsa_p384 ~id:"core:1" in
  let trc = Trc.create ~isd:1 ~version:1 ~roots:[ "core:1" ] in
  let cert = Trc.issue root ~subject:"as:7" in
  Alcotest.(check bool) "valid cert" true (Trc.verify_cert ks trc cert);
  Alcotest.(check bool) "is root" true (Trc.is_root trc "core:1");
  Alcotest.(check bool) "not root" false (Trc.is_root trc "as:7")

let test_trc_non_root_issuer () =
  let ks = Signature.create_keystore () in
  ignore (Signature.generate ks Signature.Ecdsa_p384 ~id:"core:1");
  let rogue = Signature.generate ks Signature.Ecdsa_p384 ~id:"rogue" in
  let trc = Trc.create ~isd:1 ~version:1 ~roots:[ "core:1" ] in
  let cert = Trc.issue rogue ~subject:"as:7" in
  Alcotest.(check bool) "rejected" false (Trc.verify_cert ks trc cert)

let test_trc_rollover () =
  let ks = Signature.create_keystore () in
  let old_root = Signature.generate ks Signature.Ecdsa_p384 ~id:"old" in
  ignore (Signature.generate ks Signature.Ecdsa_p384 ~id:"new");
  let trc = Trc.create ~isd:2 ~version:1 ~roots:[ "old" ] in
  let trc2 = Trc.update trc ~roots:[ "new" ] in
  check Alcotest.int "version bumped" 2 (Trc.version trc2);
  let cert = Trc.issue old_root ~subject:"as:9" in
  Alcotest.(check bool) "old root rejected after rollover" false
    (Trc.verify_cert ks trc2 cert)

let test_trc_empty_roots () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Trc.create: a TRC needs at least one trust root") (fun () ->
      ignore (Trc.create ~isd:1 ~version:1 ~roots:[]))

let suite =
  [
    ("sha256 empty", `Quick, test_sha256_empty);
    ("sha256 abc", `Quick, test_sha256_abc);
    ("sha256 two blocks", `Quick, test_sha256_two_blocks);
    ("sha256 million a", `Slow, test_sha256_million_a);
    ("sha256 exact block", `Quick, test_sha256_exact_block);
    ("sha256 55/56 bytes", `Quick, test_sha256_55_56_bytes);
    QCheck_alcotest.to_alcotest prop_sha256_incremental;
    ("sha256 digest size", `Quick, test_sha256_digest_size);
    ("hmac rfc4231 case 1", `Quick, test_hmac_rfc4231_case1);
    ("hmac rfc4231 case 2", `Quick, test_hmac_rfc4231_case2);
    ("hmac rfc4231 case 6", `Quick, test_hmac_rfc4231_case6_long_key);
    ("hmac truncated", `Quick, test_hmac_truncated);
    ("hmac truncated invalid", `Quick, test_hmac_truncated_invalid);
    ("hmac verify", `Quick, test_hmac_verify);
    QCheck_alcotest.to_alcotest prop_hmac_verify_roundtrip;
    ("signature sizes", `Quick, test_signature_sizes);
    ("signature roundtrip", `Quick, test_signature_roundtrip);
    ("signature duplicate id", `Quick, test_signature_duplicate_id);
    ("signature cross key", `Quick, test_signature_cross_key);
    ("trc basic", `Quick, test_trc_basic);
    ("trc non-root issuer", `Quick, test_trc_non_root_issuer);
    ("trc rollover", `Quick, test_trc_rollover);
    ("trc empty roots", `Quick, test_trc_empty_roots);
  ]

