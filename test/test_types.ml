(* Tests for scion_types: identifiers and wire-size formulas. *)

let check = Alcotest.check

let test_ia_pp () =
  check Alcotest.string "pp" "3-42" (Id.ia_to_string (Id.ia 3 42))

let test_ia_parse () =
  (match Id.ia_of_string "7-1234" with
  | Some ia ->
      check Alcotest.int "isd" 7 ia.Id.isd;
      check Alcotest.int "asn" 1234 ia.Id.asn
  | None -> Alcotest.fail "should parse");
  Alcotest.(check bool) "garbage" true (Id.ia_of_string "nope" = None);
  Alcotest.(check bool) "negative" true (Id.ia_of_string "-1-2" = None);
  Alcotest.(check bool) "empty" true (Id.ia_of_string "" = None)

let prop_ia_roundtrip =
  QCheck.Test.make ~name:"ia pp/parse roundtrip" ~count:200
    QCheck.(pair (int_bound 65535) (int_bound 1_000_000))
    (fun (isd, asn) ->
      let ia = Id.ia isd asn in
      Id.ia_of_string (Id.ia_to_string ia) = Some ia)

let test_ia_compare () =
  Alcotest.(check bool) "isd dominates" true
    (Id.compare_ia (Id.ia 1 99) (Id.ia 2 1) < 0);
  Alcotest.(check bool) "asn breaks ties" true
    (Id.compare_ia (Id.ia 1 5) (Id.ia 1 9) < 0);
  Alcotest.(check bool) "equal" true (Id.equal_ia (Id.ia 1 5) (Id.ia 1 5))

let test_asn_namespace () =
  Alcotest.(check bool) "bgp asn valid" true (Id.valid_asn Id.max_bgp_asn);
  Alcotest.(check bool) "scion asn valid" true (Id.valid_asn Id.max_scion_asn);
  Alcotest.(check bool) "beyond 48-bit invalid" false (Id.valid_asn (Id.max_scion_asn + 1));
  Alcotest.(check bool) "negative invalid" false (Id.valid_asn (-1));
  Alcotest.(check bool) "scion space larger" true (Id.max_scion_asn > Id.max_bgp_asn)

let test_pcb_bytes () =
  (* One hop: header + hop field + metadata + signature. *)
  check Alcotest.int "one hop" (32 + 16 + 48 + 96) (Wire.pcb_bytes ~hops:1 ~signature_bytes:96);
  check Alcotest.int "zero hops" 32 (Wire.pcb_bytes ~hops:0 ~signature_bytes:96)

let test_pcb_bytes_linear () =
  let d1 = Wire.pcb_bytes ~hops:2 ~signature_bytes:96 - Wire.pcb_bytes ~hops:1 ~signature_bytes:96 in
  let d2 = Wire.pcb_bytes ~hops:7 ~signature_bytes:96 - Wire.pcb_bytes ~hops:6 ~signature_bytes:96 in
  check Alcotest.int "linear in hops" d1 d2

let test_bgp_update_bytes () =
  (* RFC 4271 minimum pieces for one prefix and one hop. *)
  check Alcotest.int "1 hop 1 prefix" (19 + 2 + 2 + 4 + (3 + 2 + 4) + 7 + 5)
    (Wire.bgp_update_bytes ~as_path_len:1 ~prefixes:1);
  Alcotest.(check bool) "longer paths bigger" true
    (Wire.bgp_update_bytes ~as_path_len:5 ~prefixes:1
    > Wire.bgp_update_bytes ~as_path_len:2 ~prefixes:1)

let test_bgpsec_vs_bgp () =
  (* BGPsec updates carry per-hop signatures: much larger at any length. *)
  for len = 1 to 8 do
    Alcotest.(check bool) "bgpsec larger" true
      (Wire.bgpsec_update_bytes ~as_path_len:len ~signature_bytes:96
      > 3 * Wire.bgp_update_bytes ~as_path_len:len ~prefixes:1)
  done

let test_bgpsec_per_hop_cost () =
  let d =
    Wire.bgpsec_update_bytes ~as_path_len:4 ~signature_bytes:96
    - Wire.bgpsec_update_bytes ~as_path_len:3 ~signature_bytes:96
  in
  (* Secure_Path segment (6) + SKI (20) + sig length (2) + signature (96). *)
  check Alcotest.int "per-hop increment" (6 + 20 + 2 + 96) d

let test_withdraw_bytes () =
  Alcotest.(check bool) "withdraw smaller than announce" true
    (Wire.bgp_withdraw_bytes ~prefixes:1 < Wire.bgp_update_bytes ~as_path_len:1 ~prefixes:1)

let test_registration_bytes () =
  Alcotest.(check bool) "registration carries the segment" true
    (Wire.path_segment_registration_bytes ~hops:3 > Wire.pcb_bytes ~hops:3 ~signature_bytes:96)

let test_endpoint_pp () =
  let e = { Id.host_ia = Id.ia 1 2; local = Id.Ipv4 0x0A000001l } in
  check Alcotest.string "pp endpoint" "1-2,10.0.0.1" (Format.asprintf "%a" Id.pp_endpoint e)

let suite =
  [
    ("ia pp", `Quick, test_ia_pp);
    ("ia parse", `Quick, test_ia_parse);
    QCheck_alcotest.to_alcotest prop_ia_roundtrip;
    ("ia compare", `Quick, test_ia_compare);
    ("asn namespace", `Quick, test_asn_namespace);
    ("pcb bytes", `Quick, test_pcb_bytes);
    ("pcb bytes linear", `Quick, test_pcb_bytes_linear);
    ("bgp update bytes", `Quick, test_bgp_update_bytes);
    ("bgpsec vs bgp", `Quick, test_bgpsec_vs_bgp);
    ("bgpsec per-hop cost", `Quick, test_bgpsec_per_hop_cost);
    ("withdraw bytes", `Quick, test_withdraw_bytes);
    ("registration bytes", `Quick, test_registration_bytes);
    ("endpoint pp", `Quick, test_endpoint_pp);
  ]
