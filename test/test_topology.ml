(* Tests for scion_topology: graph invariants, the CAIDA-like
   generator, pruning, ISD construction, SCIONLab and serialisation. *)

let check = Alcotest.check

(* A small hand-built topology used across the tests:

     0 (core) === 1 (core)        === : 2 parallel core links
       |            |
     2 (transit) -- peer -- 3 (transit)
       |                      |
     4 (leaf)               5 (leaf)                                *)
let hand_graph () =
  let b = Graph.builder () in
  let a0 = Graph.add_as b ~tier:1 ~core:true (Id.ia 1 1) in
  let a1 = Graph.add_as b ~tier:1 ~core:true (Id.ia 1 2) in
  let a2 = Graph.add_as b ~tier:2 (Id.ia 1 3) in
  let a3 = Graph.add_as b ~tier:2 (Id.ia 1 4) in
  let a4 = Graph.add_as b ~tier:3 (Id.ia 1 5) in
  let a5 = Graph.add_as b ~tier:3 (Id.ia 1 6) in
  Graph.add_link b ~count:2 ~rel:Graph.Core a0 a1;
  Graph.add_link b ~rel:Graph.Provider_customer a0 a2;
  Graph.add_link b ~rel:Graph.Provider_customer a1 a3;
  Graph.add_link b ~rel:Graph.Peering a2 a3;
  Graph.add_link b ~rel:Graph.Provider_customer a2 a4;
  Graph.add_link b ~rel:Graph.Provider_customer a3 a5;
  Graph.freeze b

let test_build_counts () =
  let g = hand_graph () in
  check Alcotest.int "n" 6 (Graph.n g);
  check Alcotest.int "links" 7 (Graph.num_links g)

let test_duplicate_ia () =
  let b = Graph.builder () in
  ignore (Graph.add_as b (Id.ia 1 1));
  Alcotest.check_raises "duplicate IA"
    (Invalid_argument "Graph.add_as: duplicate IA 1-1") (fun () ->
      ignore (Graph.add_as b (Id.ia 1 1)))

let test_self_link () =
  let b = Graph.builder () in
  let a = Graph.add_as b (Id.ia 1 1) in
  Alcotest.check_raises "self link" (Invalid_argument "Graph.add_link: self-link")
    (fun () -> Graph.add_link b ~rel:Graph.Core a a)

let test_adjacency_symmetric () =
  let g = hand_graph () in
  for v = 0 to Graph.n g - 1 do
    Array.iter
      (fun (h : Graph.half_link) ->
        let back = Graph.adj g h.Graph.peer in
        Alcotest.(check bool) "reverse half-link exists" true
          (Array.exists
             (fun (h' : Graph.half_link) ->
               h'.Graph.via = h.Graph.via && h'.Graph.peer = v)
             back))
      (Graph.adj g v)
  done

let test_interfaces_unique_per_as () =
  let g = hand_graph () in
  for v = 0 to Graph.n g - 1 do
    let ifaces =
      Array.to_list (Array.map (fun (h : Graph.half_link) -> h.Graph.local_if) (Graph.adj g v))
    in
    check Alcotest.int "unique interface ids"
      (List.length ifaces)
      (List.length (List.sort_uniq compare ifaces))
  done

let test_relationship_directions () =
  let g = hand_graph () in
  check (Alcotest.list Alcotest.int) "customers of 0" [ 2 ] (Graph.customers g 0);
  check (Alcotest.list Alcotest.int) "providers of 4" [ 2 ] (Graph.providers g 4);
  check (Alcotest.list Alcotest.int) "peers of 2" [ 3 ] (Graph.peers g 2);
  check (Alcotest.list Alcotest.int) "core ases" [ 0; 1 ] (Graph.core_ases g)

let test_parallel_links () =
  let g = hand_graph () in
  check Alcotest.int "two parallel core links" 2 (List.length (Graph.links_between g 0 1));
  check Alcotest.int "link degree counts both" 3 (Graph.link_degree g 0);
  check Alcotest.int "as degree counts one" 2 (Graph.as_degree g 0)

let test_other_end_iface () =
  let g = hand_graph () in
  let l = List.hd (Graph.links_between g 0 2) in
  check Alcotest.int "other end" 2 (Graph.other_end l 0);
  check Alcotest.int "other end sym" 0 (Graph.other_end l 2);
  Alcotest.(check bool) "iface positive" true (Graph.iface_of l 0 > 0);
  Alcotest.check_raises "not an endpoint"
    (Invalid_argument "Graph.other_end: AS is not an endpoint") (fun () ->
      ignore (Graph.other_end l 5))

let test_customer_cone () =
  let g = hand_graph () in
  check (Alcotest.list Alcotest.int) "cone of 2" [ 2; 4 ]
    (List.sort compare (Graph.customer_cone g 2));
  check (Alcotest.list Alcotest.int) "cone of 0" [ 0; 2; 4 ]
    (List.sort compare (Graph.customer_cone g 0))

let test_connected_components () =
  let g = hand_graph () in
  match Graph.connected_components g with
  | [ c ] -> check Alcotest.int "all connected" 6 (List.length c)
  | cs -> Alcotest.failf "expected 1 component, got %d" (List.length cs)

let test_induced_subgraph () =
  let g = hand_graph () in
  let sub, map = Graph.induced_subgraph g [ 0; 1; 2 ] in
  check Alcotest.int "n" 3 (Graph.n sub);
  (* links kept: 2 core + 1 p2c = 3 *)
  check Alcotest.int "links" 3 (Graph.num_links sub);
  check Alcotest.int "mapping" 3 (Array.length map)

let test_find_by_ia () =
  let g = hand_graph () in
  Alcotest.(check (option int)) "found" (Some 3) (Graph.find_by_ia g (Id.ia 1 4));
  Alcotest.(check (option int)) "missing" None (Graph.find_by_ia g (Id.ia 9 9))

let test_serialization_roundtrip () =
  let g = hand_graph () in
  match Graph.of_text (Graph.to_text g) with
  | Error e -> Alcotest.fail e
  | Ok g' ->
      check Alcotest.int "n" (Graph.n g) (Graph.n g');
      check Alcotest.int "links" (Graph.num_links g) (Graph.num_links g');
      for v = 0 to Graph.n g - 1 do
        check Alcotest.bool "core flags" (Graph.is_core g v) (Graph.is_core g' v);
        check (Alcotest.list Alcotest.int) "neighbors" (Graph.neighbors g v)
          (Graph.neighbors g' v)
      done

let test_serialization_rejects_garbage () =
  (match Graph.of_text "bogus line" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject");
  match Graph.of_text "link 0 1 core" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "link to unknown AS should be rejected"

(* --- Generator properties --- *)

let generated = lazy (Caida_like.generate { Caida_like.small_params with Caida_like.n = 400 })

let test_generator_connected () =
  let g = Lazy.force generated in
  match Graph.connected_components g with
  | [ c ] -> check Alcotest.int "one component" (Graph.n g) (List.length c)
  | _ -> Alcotest.fail "generator must produce a connected graph"

let test_generator_heavy_tail () =
  let g = Lazy.force generated in
  let degs = Array.init (Graph.n g) (fun v -> float_of_int (Graph.as_degree g v)) in
  let med = Stats.median degs in
  let mx = Stats.quantile degs 1.0 in
  Alcotest.(check bool) "max degree >> median" true (mx > 10.0 *. med)

let test_generator_p2c_acyclic () =
  (* Providers always have a smaller index than customers by
     construction, so customer links must point upward in index. *)
  let g = Lazy.force generated in
  for v = 0 to Graph.n g - 1 do
    List.iter
      (fun c -> Alcotest.(check bool) "provider index below customer" true (c > v))
      (Graph.customers g v)
  done

let test_generator_deterministic () =
  let p = { Caida_like.small_params with Caida_like.n = 200 } in
  let g1 = Caida_like.generate p and g2 = Caida_like.generate p in
  check Alcotest.int "same links" (Graph.num_links g1) (Graph.num_links g2);
  check Alcotest.string "same serialisation" (Graph.to_text g1) (Graph.to_text g2)

let test_prune_to_top_degree () =
  let g = Lazy.force generated in
  let core, map = Caida_like.core_subset g ~k:50 in
  Alcotest.(check bool) "at most 50" true (Graph.n core <= 50);
  Alcotest.(check bool) "close to 50" true (Graph.n core >= 40);
  (* every surviving AS is core and every link is a core link *)
  for v = 0 to Graph.n core - 1 do
    Alcotest.(check bool) "core flag" true (Graph.is_core core v)
  done;
  for l = 0 to Graph.num_links core - 1 do
    Alcotest.(check bool) "core rel" true ((Graph.link core l).Graph.rel = Graph.Core)
  done;
  (* survivors have high degree in the original graph *)
  let kept_degrees = Array.map (fun oi -> Graph.as_degree g oi) map in
  let med_kept = Stats.median (Array.map float_of_int kept_degrees) in
  let all = Array.init (Graph.n g) (fun v -> float_of_int (Graph.as_degree g v)) in
  Alcotest.(check bool) "kept ASes are high degree" true (med_kept > Stats.median all);
  match Graph.connected_components core with
  | [ c ] -> check Alcotest.int "connected" (Graph.n core) (List.length c)
  | _ -> Alcotest.fail "core must be connected"

let test_assign_isds () =
  let g = Lazy.force generated in
  let core, _ = Caida_like.core_subset g ~k:30 in
  let core = Caida_like.assign_isds core ~per_isd:10 in
  let isds =
    List.sort_uniq compare
      (List.init (Graph.n core) (fun v -> (Graph.as_info core v).Graph.ia.Id.isd))
  in
  check Alcotest.int "three ISDs" 3 (List.length isds)

let test_build_isd () =
  let g = Lazy.force generated in
  let isd, _ = Caida_like.build_isd g ~n_core:5 in
  let cores = Graph.core_ases isd in
  check Alcotest.int "five cores" 5 (List.length cores);
  Alcotest.(check bool) "has non-core members" true (Graph.n isd > 5);
  (* every member is in the customer cone of some core: reachable from
     a core AS over provider->customer links *)
  let reachable = Array.make (Graph.n isd) false in
  let rec visit v =
    if not reachable.(v) then begin
      reachable.(v) <- true;
      List.iter visit (Graph.customers isd v)
    end
  in
  List.iter visit cores;
  Array.iteri
    (fun v r -> Alcotest.(check bool) (Printf.sprintf "AS %d reachable" v) true r)
    reachable

let test_set_map_core () =
  let g = hand_graph () in
  let g2 = Graph.set_core g 4 true in
  Alcotest.(check bool) "set core" true (Graph.is_core g2 4);
  Alcotest.(check bool) "original untouched" false (Graph.is_core g 4);
  let g3 = Graph.map_core g (fun v -> v mod 2 = 0) in
  check (Alcotest.list Alcotest.int) "mapped cores" [ 0; 2; 4 ] (Graph.core_ases g3)

let test_scionlab () =
  let g = Scionlab.generate Scionlab.default_params in
  check Alcotest.int "21 core ASes" 21 (Graph.n g);
  check Alcotest.int "ring + 2 chords + 2 parallel" 25 (Graph.num_links g);
  let mean_degree =
    2.0 *. float_of_int (Graph.num_links g) /. float_of_int (Graph.n g)
  in
  Alcotest.(check bool) "average core degree ~2" true
    (mean_degree >= 2.0 && mean_degree < 2.6);
  List.iter
    (fun v -> Alcotest.(check bool) "all core" true (Graph.is_core g v))
    (List.init (Graph.n g) (fun i -> i))

let test_scionlab_attachments () =
  let g =
    Scionlab.generate { Scionlab.default_params with Scionlab.attachments_per_core = 2 }
  in
  check Alcotest.int "21 + 42 ASes" 63 (Graph.n g);
  Alcotest.(check bool) "leaves are not core" true (not (Graph.is_core g 62))

let prop_roundtrip_random_graphs =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 12 in
      let* edges = list_size (int_range 1 20) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
      return (n, edges))
  in
  QCheck.Test.make ~name:"serialisation roundtrips random graphs" ~count:100
    (QCheck.make gen)
    (fun (n, edges) ->
      let b = Graph.builder () in
      for i = 0 to n - 1 do
        ignore (Graph.add_as b (Id.ia 1 (i + 1)))
      done;
      List.iter
        (fun (x, y) -> if x <> y then Graph.add_link b ~rel:Graph.Peering x y)
        edges;
      let g = Graph.freeze b in
      match Graph.of_text (Graph.to_text g) with
      | Error _ -> false
      | Ok g' ->
          Graph.n g' = Graph.n g
          && Graph.num_links g' = Graph.num_links g
          && List.for_all
               (fun v -> Graph.neighbors g v = Graph.neighbors g' v)
               (List.init n (fun i -> i)))

let suite =
  [
    ("build counts", `Quick, test_build_counts);
    ("duplicate ia", `Quick, test_duplicate_ia);
    ("self link", `Quick, test_self_link);
    ("adjacency symmetric", `Quick, test_adjacency_symmetric);
    ("interfaces unique per AS", `Quick, test_interfaces_unique_per_as);
    ("relationship directions", `Quick, test_relationship_directions);
    ("parallel links", `Quick, test_parallel_links);
    ("other end / iface", `Quick, test_other_end_iface);
    ("customer cone", `Quick, test_customer_cone);
    ("connected components", `Quick, test_connected_components);
    ("induced subgraph", `Quick, test_induced_subgraph);
    ("find by ia", `Quick, test_find_by_ia);
    ("serialisation roundtrip", `Quick, test_serialization_roundtrip);
    ("serialisation rejects garbage", `Quick, test_serialization_rejects_garbage);
    ("generator connected", `Quick, test_generator_connected);
    ("generator heavy tail", `Quick, test_generator_heavy_tail);
    ("generator p2c acyclic", `Quick, test_generator_p2c_acyclic);
    ("generator deterministic", `Quick, test_generator_deterministic);
    ("prune to top degree", `Quick, test_prune_to_top_degree);
    ("assign isds", `Quick, test_assign_isds);
    ("build isd", `Quick, test_build_isd);
    ("set/map core", `Quick, test_set_map_core);
    ("scionlab", `Quick, test_scionlab);
    ("scionlab attachments", `Quick, test_scionlab_attachments);
    QCheck_alcotest.to_alcotest prop_roundtrip_random_graphs;
  ]
