(* Tests for scion_core: PCBs, the beacon store, the scoring functions
   of §4.2, diversity state, and the beaconing engine. *)

let check = Alcotest.check

(* A triangle of core ASes with one parallel link:
   0 === 1, 0 -- 2, 1 -- 2. *)
let triangle () =
  let b = Graph.builder () in
  let a0 = Graph.add_as b ~core:true (Id.ia 1 1) in
  let a1 = Graph.add_as b ~core:true (Id.ia 1 2) in
  let a2 = Graph.add_as b ~core:true (Id.ia 2 1) in
  Graph.add_link b ~count:2 ~rel:Graph.Core a0 a1;
  Graph.add_link b ~rel:Graph.Core a0 a2;
  Graph.add_link b ~rel:Graph.Core a1 a2;
  Graph.freeze b

(* A chain of core ASes 0 - 1 - 2 - 3. *)
let chain n =
  let b = Graph.builder () in
  for i = 0 to n - 1 do
    ignore (Graph.add_as b ~core:true (Id.ia 1 (i + 1)))
  done;
  for i = 0 to n - 2 do
    Graph.add_link b ~rel:Graph.Core i (i + 1)
  done;
  Graph.freeze b

(* --- Pcb --- *)

let test_pcb_origin () =
  let p = Pcb.origin_pcb ~origin:7 ~now:100.0 ~lifetime:600.0 in
  check Alcotest.int "no hops" 0 (Pcb.num_hops p);
  Alcotest.(check bool) "valid" true (Pcb.is_valid p ~now:100.0);
  Alcotest.(check bool) "expired" false (Pcb.is_valid p ~now:700.0);
  Alcotest.(check (float 1e-9)) "expiry" 700.0 (Pcb.expires_at p);
  Alcotest.(check bool) "contains origin" true (Pcb.contains_as p 7);
  Alcotest.(check (option int)) "no last link" None (Pcb.last_link p)

let test_pcb_extend () =
  let p = Pcb.origin_pcb ~origin:0 ~now:0.0 ~lifetime:600.0 in
  let p1 = Pcb.extend p ~asn:0 ~ingress:0 ~egress:1 ~link:10 ~peers:[||] in
  let p2 = Pcb.extend p1 ~asn:5 ~ingress:2 ~egress:3 ~link:11 ~peers:[| 42 |] in
  check Alcotest.int "two hops" 2 (Pcb.num_hops p2);
  Alcotest.(check (option int)) "last link" (Some 11) (Pcb.last_link p2);
  Alcotest.(check bool) "contains 5" true (Pcb.contains_as p2 5);
  Alcotest.(check bool) "not contains 9" false (Pcb.contains_as p2 9);
  check Alcotest.string "key matches links" (Pcb.path_key [| 10; 11 |]) p2.Pcb.key

let test_pcb_extend_key () =
  let k = Pcb.path_key [| 10 |] in
  check Alcotest.string "extend_key" (Pcb.path_key [| 10; 11 |]) (Pcb.extend_key k 11)

let prop_extend_key =
  QCheck.Test.make ~name:"extend_key equals path_key of appended array" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 0 6) (int_bound 0xFFFFFF)) (int_bound 0xFFFFFF))
    (fun (ls, l) ->
      let arr = Array.of_list ls in
      Pcb.extend_key (Pcb.path_key arr) l = Pcb.path_key (Array.append arr [| l |]))

let test_pcb_wire_bytes () =
  let p = Pcb.origin_pcb ~origin:0 ~now:0.0 ~lifetime:600.0 in
  let p1 = Pcb.extend p ~asn:0 ~ingress:0 ~egress:1 ~link:0 ~peers:[||] in
  check Alcotest.int "one hop size" (Wire.pcb_bytes ~hops:1 ~signature_bytes:96)
    (Pcb.wire_bytes p1 ~signature_bytes:96);
  let p2 = Pcb.extend p1 ~asn:1 ~ingress:1 ~egress:2 ~link:1 ~peers:[| 5; 6 |] in
  check Alcotest.int "peering entries add 16 bytes each"
    (Wire.pcb_bytes ~hops:2 ~signature_bytes:96 + 32)
    (Pcb.wire_bytes p2 ~signature_bytes:96)

let test_pcb_age_remaining () =
  let p = Pcb.origin_pcb ~origin:0 ~now:100.0 ~lifetime:50.0 in
  Alcotest.(check (float 1e-9)) "age" 20.0 (Pcb.age p ~now:120.0);
  Alcotest.(check (float 1e-9)) "remaining" 30.0 (Pcb.remaining p ~now:120.0);
  Alcotest.(check (float 1e-9)) "remaining clamps" 0.0 (Pcb.remaining p ~now:500.0)

(* --- Beacon_store --- *)

let mk_pcb ?(origin = 0) ?(now = 0.0) ?(lifetime = 600.0) links =
  let p = ref (Pcb.origin_pcb ~origin ~now ~lifetime) in
  List.iteri
    (fun i l -> p := Pcb.extend !p ~asn:(100 + i) ~ingress:0 ~egress:1 ~link:l ~peers:[||])
    links;
  !p

let test_store_insert () =
  let s = Beacon_store.create ~limit:2 in
  check Alcotest.bool "added"
    (Beacon_store.insert s ~now:0.0 (mk_pcb [ 1 ]) = Beacon_store.Added)
    true;
  check Alcotest.int "count" 1 (Beacon_store.count s ~origin:0);
  check (Alcotest.list Alcotest.int) "origins" [ 0 ] (Beacon_store.origins s)

let test_store_refresh () =
  let s = Beacon_store.create ~limit:2 in
  ignore (Beacon_store.insert s ~now:0.0 (mk_pcb ~now:0.0 [ 1 ]));
  check Alcotest.bool "newer instance refreshes"
    (Beacon_store.insert s ~now:10.0 (mk_pcb ~now:10.0 [ 1 ]) = Beacon_store.Refreshed)
    true;
  check Alcotest.bool "older instance rejected"
    (Beacon_store.insert s ~now:10.0 (mk_pcb ~now:5.0 [ 1 ]) = Beacon_store.Rejected)
    true;
  check Alcotest.int "still one entry" 1 (Beacon_store.count s ~origin:0)

let test_store_limit_and_eviction () =
  let s = Beacon_store.create ~limit:2 in
  ignore (Beacon_store.insert s ~now:0.0 (mk_pcb [ 1; 2; 3 ]));
  ignore (Beacon_store.insert s ~now:0.0 (mk_pcb [ 4; 5 ]));
  (* Full. A longer path is rejected; a shorter one evicts the worst. *)
  check Alcotest.bool "longer rejected"
    (Beacon_store.insert s ~now:0.0 (mk_pcb [ 6; 7; 8; 9 ]) = Beacon_store.Rejected)
    true;
  check Alcotest.bool "shorter evicts"
    (Beacon_store.insert s ~now:0.0 (mk_pcb [ 6 ]) = Beacon_store.Evicted_other)
    true;
  check Alcotest.int "limit respected" 2 (Beacon_store.count s ~origin:0)

let test_store_expired_rejected () =
  let s = Beacon_store.create ~limit:5 in
  check Alcotest.bool "expired rejected"
    (Beacon_store.insert s ~now:1000.0 (mk_pcb ~now:0.0 ~lifetime:600.0 [ 1 ])
    = Beacon_store.Rejected)
    true

let test_store_paths_sorted () =
  let s = Beacon_store.create ~limit:5 in
  ignore (Beacon_store.insert s ~now:0.0 (mk_pcb [ 1; 2; 3 ]));
  ignore (Beacon_store.insert s ~now:0.0 (mk_pcb [ 4 ]));
  ignore (Beacon_store.insert s ~now:0.0 (mk_pcb [ 5; 6 ]));
  let lens = List.map Pcb.num_hops (Beacon_store.paths s ~now:0.0 ~origin:0) in
  check (Alcotest.list Alcotest.int) "shortest first" [ 1; 2; 3 ] lens

let test_store_prune () =
  let s = Beacon_store.create ~limit:5 in
  ignore (Beacon_store.insert s ~now:0.0 (mk_pcb ~now:0.0 ~lifetime:100.0 [ 1 ]));
  ignore (Beacon_store.insert s ~now:0.0 (mk_pcb ~now:0.0 ~lifetime:900.0 [ 2 ]));
  Beacon_store.prune_expired s ~now:500.0;
  check Alcotest.int "one survivor" 1 (Beacon_store.count s ~origin:0)

let test_store_last_modified () =
  let s = Beacon_store.create ~limit:5 in
  Alcotest.(check bool) "initially -inf" true
    (Beacon_store.last_modified s ~origin:0 = neg_infinity);
  ignore (Beacon_store.insert s ~now:42.0 (mk_pcb [ 1 ]));
  Alcotest.(check (float 1e-9)) "updated" 42.0 (Beacon_store.last_modified s ~origin:0);
  (* A rejected insert must not bump the timestamp. *)
  ignore (Beacon_store.insert s ~now:50.0 (mk_pcb ~now:0.0 [ 1 ]));
  Alcotest.(check (float 1e-9)) "unchanged on reject" 42.0
    (Beacon_store.last_modified s ~origin:0)

let prop_store_limit =
  QCheck.Test.make ~name:"store never exceeds its per-origin limit" ~count:100
    QCheck.(list (list_of_size (Gen.int_range 1 5) (int_bound 30)))
    (fun pcbs ->
      let s = Beacon_store.create ~limit:3 in
      List.iter (fun links -> ignore (Beacon_store.insert s ~now:0.0 (mk_pcb links))) pcbs;
      Beacon_store.count s ~origin:0 <= 3)

(* --- Scoring (§4.2) --- *)

let params = Beacon_policy.default_div_params

let test_score_fresh_age_zero () =
  Alcotest.(check (float 1e-9)) "fresh scores 1" 1.0
    (Beacon_policy.score_fresh params ~ds:0.5 ~age:0.0 ~lifetime:600.0)

let test_score_fresh_decreasing_in_age () =
  let s1 = Beacon_policy.score_fresh params ~ds:0.8 ~age:100.0 ~lifetime:600.0 in
  let s2 = Beacon_policy.score_fresh params ~ds:0.8 ~age:300.0 ~lifetime:600.0 in
  Alcotest.(check bool) "older scores lower" true (s2 < s1)

let test_score_fresh_increasing_in_ds () =
  let lo = Beacon_policy.score_fresh params ~ds:0.3 ~age:100.0 ~lifetime:600.0 in
  let hi = Beacon_policy.score_fresh params ~ds:0.9 ~age:100.0 ~lifetime:600.0 in
  Alcotest.(check bool) "more diverse scores higher" true (hi > lo)

let test_score_resend_suppression () =
  (* Just sent: remaining lifetimes equal, must be heavily suppressed. *)
  let s =
    Beacon_policy.score_resend params ~ds:0.9 ~sent_remaining:600.0 ~current_remaining:600.0
  in
  Alcotest.(check bool) "suppressed" true (s < params.Beacon_policy.threshold)

let test_score_resend_refresh () =
  (* Sent instance nearly expired, fresh instance available: resend. *)
  let s =
    Beacon_policy.score_resend params ~ds:0.9 ~sent_remaining:10.0 ~current_remaining:600.0
  in
  Alcotest.(check bool) "refresh allowed" true (s > params.Beacon_policy.threshold)

let test_score_resend_monotone () =
  let prev = ref 2.0 in
  for i = 0 to 10 do
    let sr = float_of_int i *. 60.0 in
    let s =
      Beacon_policy.score_resend params ~ds:0.9 ~sent_remaining:sr ~current_remaining:600.0
    in
    Alcotest.(check bool) "decreasing in sent_remaining" true (s <= !prev);
    prev := s
  done

let test_diversity_of_gm () =
  Alcotest.(check (float 1e-9)) "gm 1 -> 1" 1.0 (Beacon_policy.diversity_of_gm params 1.0);
  Alcotest.(check (float 1e-9)) "gm beyond max -> 0" 0.0
    (Beacon_policy.diversity_of_gm params (params.Beacon_policy.gm_max +. 2.0));
  let mid = Beacon_policy.diversity_of_gm params 2.0 in
  Alcotest.(check bool) "in (0,1)" true (mid > 0.0 && mid < 1.0)

let test_crossing_time () =
  let ds = 0.9 in
  let sent_expires_at = 3000.0 and current_expires_at = 6000.0 in
  let now = 0.0 in
  let t =
    Beacon_policy.resend_crossing_time params ~ds ~now ~sent_expires_at ~current_expires_at
  in
  Alcotest.(check bool) "in the future" true (t > now);
  Alcotest.(check bool) "before sent expiry" true (t <= sent_expires_at);
  (* Just before the crossing the score is below the threshold; just
     after it is above. *)
  let score at =
    Beacon_policy.score_resend params ~ds ~sent_remaining:(sent_expires_at -. at)
      ~current_remaining:(current_expires_at -. at)
  in
  if t > 1.0 && t < sent_expires_at -. 1.0 then begin
    Alcotest.(check bool) "below before" true
      (score (t -. 1.0) < params.Beacon_policy.threshold +. 1e-6);
    Alcotest.(check bool) "above after" true
      (score (t +. 1.0) > params.Beacon_policy.threshold -. 1e-6)
  end

let test_crossing_never_when_same_instance () =
  let t =
    Beacon_policy.resend_crossing_time params ~ds:0.9 ~now:0.0 ~sent_expires_at:600.0
      ~current_expires_at:600.0
  in
  Alcotest.(check bool) "never crosses" true (t = infinity)

(* --- Diversity_state --- *)

let test_counters_mean_kinds () =
  let st = Diversity_state.create ~n_as:10 in
  (* One heavily-reused link next to fresh ones: AM >= GM strictly. *)
  for _ = 1 to 7 do
    Diversity_state.increment st ~origin:1 ~neighbor:2 ~links:[| 5 |] ~extra:5
  done;
  let gm =
    Diversity_state.counters_mean st ~kind:Beacon_policy.Geometric ~origin:1
      ~neighbor:2 ~links:[| 5; 6 |] ~extra:7
  in
  let am =
    Diversity_state.counters_mean st ~kind:Beacon_policy.Arithmetic ~origin:1
      ~neighbor:2 ~links:[| 5; 6 |] ~extra:7
  in
  Alcotest.(check bool) "AM > GM on skewed counters" true (am > gm);
  (* Both agree on an empty table. *)
  Alcotest.(check (float 1e-9)) "empty table AM" 1.0
    (Diversity_state.counters_mean st ~kind:Beacon_policy.Arithmetic ~origin:3
       ~neighbor:4 ~links:[| 1 |] ~extra:2)

let test_diversity_state_counters () =
  let st = Diversity_state.create ~n_as:10 in
  Alcotest.(check (float 1e-9)) "empty table -> gm 1" 1.0
    (Diversity_state.counters_gm st ~origin:1 ~neighbor:2 ~links:[| 5 |] ~extra:6);
  Diversity_state.increment st ~origin:1 ~neighbor:2 ~links:[| 5 |] ~extra:6;
  let gm = Diversity_state.counters_gm st ~origin:1 ~neighbor:2 ~links:[| 5 |] ~extra:6 in
  Alcotest.(check (float 1e-9)) "both counters 1 -> gm 2" 2.0 gm;
  (* Other pairs are unaffected. *)
  Alcotest.(check (float 1e-9)) "pair isolation" 1.0
    (Diversity_state.counters_gm st ~origin:1 ~neighbor:3 ~links:[| 5 |] ~extra:6)

let test_diversity_state_sent () =
  let st = Diversity_state.create ~n_as:10 in
  Alcotest.(check bool) "absent" true
    (Diversity_state.find_sent st ~egress:3 ~key:"k" = None);
  Diversity_state.record_sent st ~origin:1 ~neighbor:2 ~egress:3 ~key:"k" ~links:[| 3 |]
    ~ds:0.8 ~expires_at:600.0;
  (match Diversity_state.find_sent st ~egress:3 ~key:"k" with
  | None -> Alcotest.fail "should be present"
  | Some info ->
      Alcotest.(check (float 1e-9)) "ds" 0.8 info.Diversity_state.ds;
      Diversity_state.refresh_sent info ~expires_at:900.0;
      Alcotest.(check (float 1e-9)) "timer updated" 900.0
        info.Diversity_state.sent_expires_at);
  check Alcotest.int "one entry" 1 (Diversity_state.sent_count st)

let test_diversity_state_prune_decrements () =
  let st = Diversity_state.create ~n_as:10 in
  Diversity_state.increment st ~origin:1 ~neighbor:2 ~links:[||] ~extra:3;
  Diversity_state.record_sent st ~origin:1 ~neighbor:2 ~egress:3 ~key:"k" ~links:[| 3 |]
    ~ds:0.8 ~expires_at:100.0;
  Diversity_state.prune st ~now:200.0;
  check Alcotest.int "entry dropped" 0 (Diversity_state.sent_count st);
  Alcotest.(check (float 1e-9)) "counter decremented back to gm 1" 1.0
    (Diversity_state.counters_gm st ~origin:1 ~neighbor:2 ~links:[||] ~extra:3)

let test_diversity_state_gating () =
  let st = Diversity_state.create ~n_as:10 in
  Alcotest.(check bool) "new pair evaluates" true
    (Diversity_state.should_evaluate st ~origin:1 ~neighbor:2 ~store_last_mod:0.0 ~now:0.0);
  Diversity_state.begin_evaluation st ~origin:1 ~neighbor:2 ~now:0.0;
  Alcotest.(check bool) "quiet pair skipped" false
    (Diversity_state.should_evaluate st ~origin:1 ~neighbor:2 ~store_last_mod:(-1.0) ~now:1.0);
  Alcotest.(check bool) "store change triggers" true
    (Diversity_state.should_evaluate st ~origin:1 ~neighbor:2 ~store_last_mod:0.5 ~now:1.0);
  Diversity_state.propose_next_eval st ~origin:1 ~neighbor:2 10.0;
  Alcotest.(check bool) "before next_eval skipped" false
    (Diversity_state.should_evaluate st ~origin:1 ~neighbor:2 ~store_last_mod:(-1.0) ~now:9.0);
  Alcotest.(check bool) "at next_eval triggers" true
    (Diversity_state.should_evaluate st ~origin:1 ~neighbor:2 ~store_last_mod:(-1.0) ~now:10.0)

(* --- Beaconing engine --- *)

let cfg_short =
  {
    Beaconing.default_config with
    Beaconing.duration = 600.0 *. 8.0;
    Beaconing.lifetime = 600.0 *. 12.0;
  }

let path_is_consistent g (p : Pcb.t) holder =
  (* Consecutive links must chain through the hop ASes to the holder. *)
  let hops = p.Pcb.hops in
  let ok = ref true in
  Array.iteri
    (fun i (h : Pcb.hop) ->
      let lk = Graph.link g h.Pcb.link in
      let next = if i + 1 < Array.length hops then hops.(i + 1).Pcb.asn else holder in
      let connects =
        (lk.Graph.a = h.Pcb.asn && lk.Graph.b = next)
        || (lk.Graph.b = h.Pcb.asn && lk.Graph.a = next)
      in
      if not connects then ok := false)
    hops;
  !ok && (Array.length hops = 0 || hops.(0).Pcb.asn = p.Pcb.origin)

let test_baseline_propagates () =
  let g = chain 4 in
  let out = Beaconing.run g cfg_short in
  (* Every AS must know a path to every origin. *)
  for v = 0 to 3 do
    for o = 0 to 3 do
      if v <> o then begin
        let paths =
          Beacon_store.paths out.Beaconing.stores.(v)
            ~now:(cfg_short.Beaconing.duration -. 1.0) ~origin:o
        in
        Alcotest.(check bool) (Printf.sprintf "AS %d knows origin %d" v o) true
          (paths <> []);
        List.iter
          (fun p ->
            Alcotest.(check bool) "path consistent with topology" true
              (path_is_consistent g p v);
            Alcotest.(check bool) "loop free (holder not on path)" true
              (not (Pcb.contains_as p v)))
          paths
      end
    done
  done

let test_baseline_shortest_on_chain () =
  let g = chain 4 in
  let out = Beaconing.run g cfg_short in
  let paths =
    Beacon_store.paths out.Beaconing.stores.(3)
      ~now:(cfg_short.Beaconing.duration -. 1.0) ~origin:0
  in
  (* Only one simple path exists: 0-1-2-3, three hops recorded. *)
  check Alcotest.int "exactly one path" 1 (List.length paths);
  check Alcotest.int "three AS entries" 3 (Pcb.num_hops (List.hd paths))

let test_diversity_propagates () =
  let g = triangle () in
  let cfg =
    { cfg_short with Beaconing.algorithm = Beacon_policy.Diversity Beacon_policy.default_div_params }
  in
  let out = Beaconing.run g cfg in
  for v = 0 to 2 do
    for o = 0 to 2 do
      if v <> o then
        Alcotest.(check bool) "knows origin" true
          (Beacon_store.paths out.Beaconing.stores.(v)
             ~now:(cfg.Beaconing.duration -. 1.0) ~origin:o
          <> [])
    done
  done

let test_diversity_cheaper_than_baseline () =
  let g = triangle () in
  let base = Beaconing.run g cfg_short in
  let div =
    Beaconing.run g
      { cfg_short with Beaconing.algorithm = Beacon_policy.Diversity Beacon_policy.default_div_params }
  in
  Alcotest.(check bool) "diversity sends fewer PCBs" true
    (div.Beaconing.stats.Beaconing.total_pcbs
    < base.Beaconing.stats.Beaconing.total_pcbs)

let test_diversity_finds_parallel_links () =
  (* The triangle has two parallel links 0===1; diversity must
     disseminate paths over both. *)
  let g = triangle () in
  let cfg =
    { cfg_short with Beaconing.algorithm = Beacon_policy.Diversity Beacon_policy.default_div_params }
  in
  let out = Beaconing.run g cfg in
  let paths =
    Beacon_store.paths out.Beaconing.stores.(1)
      ~now:(cfg.Beaconing.duration -. 1.0) ~origin:0
  in
  let links = Path_quality.links_of_pcbs paths in
  let direct = List.map (fun (l : Graph.link) -> l.Graph.link_id) (Graph.links_between g 0 1) in
  List.iter
    (fun l ->
      Alcotest.(check bool) (Printf.sprintf "parallel link %d used" l) true
        (List.mem l links))
    direct

let test_dissemination_limit_per_iface () =
  let g = triangle () in
  let out = Beaconing.run g cfg_short in
  let rounds = out.Beaconing.stats.Beaconing.rounds in
  let origins = 3 in
  Array.iter
    (fun count ->
      Alcotest.(check bool) "per-interface cap" true
        (count <= rounds * origins * cfg_short.Beaconing.dissemination_limit))
    out.Beaconing.stats.Beaconing.pcbs_on_iface

let test_crypto_verification () =
  let g = triangle () in
  let cfg = { cfg_short with Beaconing.verify_crypto = true } in
  let out = Beaconing.run g cfg in
  check Alcotest.int "no crypto failures" 0 out.Beaconing.stats.Beaconing.crypto_failures;
  (* Stores still fill. *)
  Alcotest.(check bool) "paths stored" true
    (Beacon_store.total out.Beaconing.stores.(2) > 0)

let test_storage_limit_respected () =
  let g = triangle () in
  let cfg = { cfg_short with Beaconing.storage_limit = 2 } in
  let out = Beaconing.run g cfg in
  for v = 0 to 2 do
    List.iter
      (fun o ->
        Alcotest.(check bool) "within storage limit" true
          (Beacon_store.count out.Beaconing.stores.(v) ~origin:o <= 2))
      (Beacon_store.origins out.Beaconing.stores.(v))
  done

let test_intra_isd_direction () =
  (* core 0 -> customer 1 -> customer 2; a PCB must never flow upward. *)
  let b = Graph.builder () in
  let a0 = Graph.add_as b ~core:true (Id.ia 1 1) in
  let a1 = Graph.add_as b (Id.ia 1 2) in
  let a2 = Graph.add_as b (Id.ia 1 3) in
  Graph.add_link b ~rel:Graph.Provider_customer a0 a1;
  Graph.add_link b ~rel:Graph.Provider_customer a1 a2;
  let g = Graph.freeze b in
  let cfg = { cfg_short with Beaconing.scope = Beaconing.Intra_isd } in
  let out = Beaconing.run g cfg in
  let now = cfg.Beaconing.duration -. 1.0 in
  Alcotest.(check bool) "leaf knows core" true
    (Beacon_store.paths out.Beaconing.stores.(a2) ~now ~origin:a0 <> []);
  (* The core AS never receives anything. *)
  check Alcotest.int "core store empty" 0 (Beacon_store.total out.Beaconing.stores.(a0));
  (* Upward interfaces carried no PCBs: only 2 directed interfaces used. *)
  let used =
    Array.fold_left
      (fun acc c -> if c > 0 then acc + 1 else acc)
      0 out.Beaconing.stats.Beaconing.pcbs_on_iface
  in
  check Alcotest.int "only downward directions used" 2 used

let test_intra_isd_carries_peering () =
  (* 0 core; 1, 2 customers of 0; 3 customer of 1; 1--2 peering.
     The PCB stored at 3 carries 1's AS entry, which must advertise
     1's peering link (§2.2). *)
  let b = Graph.builder () in
  let a0 = Graph.add_as b ~core:true (Id.ia 1 1) in
  let a1 = Graph.add_as b (Id.ia 1 2) in
  let a2 = Graph.add_as b (Id.ia 1 3) in
  let a3 = Graph.add_as b (Id.ia 1 4) in
  Graph.add_link b ~rel:Graph.Provider_customer a0 a1;
  Graph.add_link b ~rel:Graph.Provider_customer a0 a2;
  Graph.add_link b ~rel:Graph.Peering a1 a2;
  Graph.add_link b ~rel:Graph.Provider_customer a1 a3;
  let g = Graph.freeze b in
  let peer_link =
    (List.hd (Graph.links_between g a1 a2)).Graph.link_id
  in
  let cfg = { cfg_short with Beaconing.scope = Beaconing.Intra_isd } in
  let out = Beaconing.run g cfg in
  let now = cfg.Beaconing.duration -. 1.0 in
  match Beacon_store.paths out.Beaconing.stores.(a3) ~now ~origin:a0 with
  | [] -> Alcotest.fail "leaf must have a path"
  | p :: _ ->
      let hop_of_a1 =
        Array.to_list p.Pcb.hops |> List.find (fun (h : Pcb.hop) -> h.Pcb.asn = a1)
      in
      Alcotest.(check bool) "AS 1 advertises its peering link" true
        (Array.exists (fun l -> l = peer_link) hop_of_a1.Pcb.peers)

let prop_beaconing_invariants =
  (* Random connected multigraphs: spanning tree + extra random edges,
     some parallel. Invariants checked for both algorithms: stored
     paths are loop-free and consistent with the topology, storage
     limits hold, byte accounting balances. *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 4 8 in
      let* extra = list_size (int_range 0 6) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
      let* seed = int_bound 10_000 in
      return (n, extra, seed))
  in
  QCheck.Test.make ~name:"beaconing invariants on random core graphs" ~count:15
    (QCheck.make gen)
    (fun (n, extra, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let b = Graph.builder () in
      for i = 0 to n - 1 do
        ignore (Graph.add_as b ~core:true (Id.ia ((i mod 3) + 1) (i + 1)))
      done;
      for i = 1 to n - 1 do
        Graph.add_link b ~rel:Graph.Core (Rng.int rng i) i
      done;
      List.iter (fun (x, y) -> if x <> y then Graph.add_link b ~rel:Graph.Core x y) extra;
      let g = Graph.freeze b in
      let check_outcome (out : Beaconing.outcome) =
        let now = out.Beaconing.config.Beaconing.duration -. 1.0 in
        let ok = ref true in
        for v = 0 to n - 1 do
          List.iter
            (fun o ->
              if Beacon_store.count out.Beaconing.stores.(v) ~origin:o > 4 then
                ok := false;
              List.iter
                (fun p ->
                  if Pcb.contains_as p v then ok := false;
                  if not (path_is_consistent g p v) then ok := false)
                (Beacon_store.paths out.Beaconing.stores.(v) ~now ~origin:o))
            (Beacon_store.origins out.Beaconing.stores.(v))
        done;
        let sent = Array.fold_left ( +. ) 0.0 (Beaconing.sent_bytes_by_as out) in
        let recv = Array.fold_left ( +. ) 0.0 (Beaconing.received_bytes_by_as out) in
        if abs_float (sent -. recv) > 1e-6 then ok := false;
        if abs_float (sent -. out.Beaconing.stats.Beaconing.total_bytes) > 1e-6 then
          ok := false;
        !ok
      in
      let cfg =
        {
          Beaconing.default_config with
          Beaconing.duration = 600.0 *. 6.0;
          Beaconing.storage_limit = 4;
        }
      in
      check_outcome (Beaconing.run g cfg)
      && check_outcome
           (Beaconing.run g
              {
                cfg with
                Beaconing.algorithm =
                  Beacon_policy.Diversity Beacon_policy.default_div_params;
              }))

let test_rounds_count () =
  let g = triangle () in
  let out = Beaconing.run g cfg_short in
  check Alcotest.int "rounds" 8 out.Beaconing.stats.Beaconing.rounds

let test_received_sent_balance () =
  let g = triangle () in
  let out = Beaconing.run g cfg_short in
  let sent = Array.fold_left ( +. ) 0.0 (Beaconing.sent_bytes_by_as out) in
  let recv = Array.fold_left ( +. ) 0.0 (Beaconing.received_bytes_by_as out) in
  Alcotest.(check (float 1e-6)) "conservation" sent recv;
  Alcotest.(check (float 1e-6)) "matches total" out.Beaconing.stats.Beaconing.total_bytes sent

let suite =
  [
    ("pcb origin", `Quick, test_pcb_origin);
    ("pcb extend", `Quick, test_pcb_extend);
    ("pcb extend_key", `Quick, test_pcb_extend_key);
    QCheck_alcotest.to_alcotest prop_extend_key;
    ("pcb wire bytes", `Quick, test_pcb_wire_bytes);
    ("pcb age/remaining", `Quick, test_pcb_age_remaining);
    ("store insert", `Quick, test_store_insert);
    ("store refresh", `Quick, test_store_refresh);
    ("store limit & eviction", `Quick, test_store_limit_and_eviction);
    ("store expired rejected", `Quick, test_store_expired_rejected);
    ("store paths sorted", `Quick, test_store_paths_sorted);
    ("store prune", `Quick, test_store_prune);
    ("store last modified", `Quick, test_store_last_modified);
    QCheck_alcotest.to_alcotest prop_store_limit;
    ("score fresh age zero", `Quick, test_score_fresh_age_zero);
    ("score fresh decreasing in age", `Quick, test_score_fresh_decreasing_in_age);
    ("score fresh increasing in ds", `Quick, test_score_fresh_increasing_in_ds);
    ("score resend suppression", `Quick, test_score_resend_suppression);
    ("score resend refresh", `Quick, test_score_resend_refresh);
    ("score resend monotone", `Quick, test_score_resend_monotone);
    ("diversity of gm", `Quick, test_diversity_of_gm);
    ("crossing time", `Quick, test_crossing_time);
    ("crossing never for same instance", `Quick, test_crossing_never_when_same_instance);
    ("counters mean kinds (ablation)", `Quick, test_counters_mean_kinds);
    ("diversity state counters", `Quick, test_diversity_state_counters);
    ("diversity state sent list", `Quick, test_diversity_state_sent);
    ("diversity state prune decrements", `Quick, test_diversity_state_prune_decrements);
    ("diversity state gating", `Quick, test_diversity_state_gating);
    ("baseline propagates", `Quick, test_baseline_propagates);
    ("baseline shortest on chain", `Quick, test_baseline_shortest_on_chain);
    ("diversity propagates", `Quick, test_diversity_propagates);
    ("diversity cheaper than baseline", `Quick, test_diversity_cheaper_than_baseline);
    ("diversity finds parallel links", `Quick, test_diversity_finds_parallel_links);
    ("dissemination limit per iface", `Quick, test_dissemination_limit_per_iface);
    ("crypto verification", `Quick, test_crypto_verification);
    ("storage limit respected", `Quick, test_storage_limit_respected);
    ("intra-ISD direction", `Quick, test_intra_isd_direction);
    ("intra-ISD peering advertisement", `Quick, test_intra_isd_carries_peering);
    QCheck_alcotest.to_alcotest prop_beaconing_invariants;
    ("rounds count", `Quick, test_rounds_count);
    ("received/sent balance", `Quick, test_received_sent_balance);
  ]
