(* Tests for scion_obs: histograms, the labeled registry, tracing,
   timers and the hand-rolled JSON writer. *)

let check = Alcotest.check

(* --- Histogram ----------------------------------------------------- *)

let test_hist_empty () =
  let h = Histogram.create () in
  check Alcotest.int "count" 0 (Histogram.count h);
  Alcotest.(check bool) "quantile nan" true (Float.is_nan (Histogram.quantile h 0.5));
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Histogram.mean h))

let test_hist_single_value () =
  let h = Histogram.create () in
  Histogram.observe h 42.0;
  Alcotest.(check (float 1e-9)) "p50 is the value" 42.0 (Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p99 is the value" 42.0 (Histogram.quantile h 0.99);
  Alcotest.(check (float 1e-9)) "min" 42.0 (Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 42.0 (Histogram.max_value h)

(* Log-bucketed quantiles are approximate: with the default growth of
   2^0.25 a bucket spans ~19%, so the estimate must be within that
   relative error of the exact order statistic. *)
let test_hist_quantile_accuracy () =
  let h = Histogram.create () in
  for i = 1 to 10_000 do
    Histogram.observe h (float_of_int i)
  done;
  let check_q q exact =
    let got = Histogram.quantile h q in
    let rel = Float.abs (got -. exact) /. exact in
    if rel > 0.2 then
      Alcotest.failf "q=%.2f: estimate %.1f vs exact %.1f (rel %.3f)" q got exact rel
  in
  check_q 0.5 5000.0;
  check_q 0.9 9000.0;
  check_q 0.99 9900.0;
  Alcotest.(check (float 1e-6)) "sum" 5.0005e7 (Histogram.sum h);
  check Alcotest.int "count" 10_000 (Histogram.count h)

let test_hist_fraction_le () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.observe h (float_of_int i)
  done;
  let f = Histogram.fraction_le h 500.0 in
  if Float.abs (f -. 0.5) > 0.1 then Alcotest.failf "fraction_le 500 = %.3f" f;
  Alcotest.(check (float 1e-9)) "everything below max bound" 1.0
    (Histogram.fraction_le h 1e12);
  Alcotest.(check (float 1e-9)) "nothing below tiny" 0.0
    (Histogram.fraction_le h 1e-9)

let test_hist_nonpos () =
  let h = Histogram.create () in
  Histogram.observe h 0.0;
  Histogram.observe h (-5.0);
  Histogram.observe h 10.0;
  check Alcotest.int "count includes nonpos" 3 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "min tracks negatives" (-5.0) (Histogram.min_value h);
  (* Both non-positive observations sit below any positive threshold. *)
  Alcotest.(check (float 1e-9)) "fraction_le 1.0" (2.0 /. 3.0)
    (Histogram.fraction_le h 1.0)

let test_hist_nan_rejected () =
  let h = Histogram.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Histogram.observe: nan") (fun () ->
      Histogram.observe h nan)

let test_hist_merge_reset () =
  let a = Histogram.create () in
  let b = Histogram.create () in
  for i = 1 to 50 do
    Histogram.observe a (float_of_int i);
    Histogram.observe b (float_of_int (i + 50))
  done;
  Histogram.merge ~into:a b;
  check Alcotest.int "merged count" 100 (Histogram.count a);
  Alcotest.(check (float 1e-9)) "merged max" 100.0 (Histogram.max_value a);
  Alcotest.(check (float 1e-9)) "merged min" 1.0 (Histogram.min_value a);
  Histogram.reset a;
  check Alcotest.int "reset count" 0 (Histogram.count a)

(* --- Registry ------------------------------------------------------ *)

let test_registry_counters_and_labels () =
  let r = Registry.create () in
  let c1 = Registry.counter r ~labels:[ ("algo", "baseline") ] "pcbs_total" in
  let c2 = Registry.counter r ~labels:[ ("algo", "diversity") ] "pcbs_total" in
  c1 := 5.0;
  c2 := 7.0;
  (* Labels are order-insensitive: the same cell comes back. *)
  let c1' = Registry.counter r ~labels:[ ("algo", "baseline") ] "pcbs_total" in
  Alcotest.(check (float 1e-9)) "same cell" 5.0 !c1';
  Registry.incr r ~labels:[ ("algo", "baseline") ] "pcbs_total";
  Alcotest.(check (float 1e-9)) "one-shot incr hits the cell" 6.0 !c1;
  check Alcotest.int "two series" 2 (List.length (Registry.snapshot r))

let test_registry_kind_mismatch () =
  let r = Registry.create () in
  ignore (Registry.counter r "x");
  Alcotest.(check bool) "gauge over counter raises" true
    (try
       ignore (Registry.gauge r "x");
       false
     with Invalid_argument _ -> true)

let test_registry_snapshot_diff () =
  let r = Registry.create () in
  let c = Registry.counter r "events" in
  let g = Registry.gauge r "depth" in
  c := 10.0;
  g := 3.0;
  let before = Registry.snapshot r in
  c := 25.0;
  g := 7.0;
  let after = Registry.snapshot r in
  let d = Registry.diff ~before ~after in
  let find name =
    match List.find_opt (fun s -> s.Registry.name = name) d with
    | Some s -> s.Registry.value
    | None -> Alcotest.failf "series %s missing from diff" name
  in
  (match find "events" with
  | Registry.Counter v -> Alcotest.(check (float 1e-9)) "counter delta" 15.0 v
  | _ -> Alcotest.fail "events not a counter");
  match find "depth" with
  | Registry.Gauge v -> Alcotest.(check (float 1e-9)) "gauge keeps after" 7.0 v
  | _ -> Alcotest.fail "depth not a gauge"

let test_registry_csv () =
  let r = Registry.create () in
  Registry.add r ~labels:[ ("as", "3") ] "bytes" 12.5;
  Registry.observe r "latency" 1.0;
  let csv = Registry.to_csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check Alcotest.int "header + 2 rows" 3 (List.length lines);
  Alcotest.(check bool) "header first" true
    (String.length (List.hd lines) >= 4 && String.sub (List.hd lines) 0 4 = "name");
  Alcotest.(check bool) "labeled row present" true
    (List.exists (fun l -> String.length l > 6 && String.sub l 0 6 = "bytes,") lines)

(* --- Trace --------------------------------------------------------- *)

let test_trace_levels () =
  let tr = Trace.create ~sink:Trace.Null Trace.Info in
  Alcotest.(check bool) "info enabled" true (Trace.enabled tr Trace.Info);
  Alcotest.(check bool) "warn enabled" true (Trace.enabled tr Trace.Warn);
  Alcotest.(check bool) "debug disabled" false (Trace.enabled tr Trace.Debug);
  Trace.emit tr Trace.Debug ~time:0.0 ~category:"x" "dropped";
  Trace.emit tr Trace.Info ~time:1.0 ~category:"x" "kept";
  check Alcotest.int "only the enabled event" 1 (List.length (Trace.events tr))

let test_trace_null_off () =
  Alcotest.(check bool) "null rejects errors" false (Trace.enabled Trace.null Trace.Error);
  Trace.emit Trace.null Trace.Error ~time:0.0 ~category:"x" "ignored";
  check Alcotest.int "nothing stored" 0 (List.length (Trace.events Trace.null))

let test_trace_ring_wraparound () =
  let tr = Trace.create ~capacity:4 ~sink:Trace.Null Trace.Debug in
  for i = 1 to 10 do
    Trace.emit tr Trace.Info ~time:(float_of_int i) ~category:"c"
      (Printf.sprintf "e%d" i)
  done;
  let evs = Trace.events tr in
  check Alcotest.int "capacity bounds retention" 4 (List.length evs);
  check Alcotest.int "emitted counts all" 10 (Trace.emitted tr);
  check Alcotest.int "dropped the overflow" 6 (Trace.dropped tr);
  check
    (Alcotest.list Alcotest.string)
    "oldest-first, newest kept" [ "e7"; "e8"; "e9"; "e10" ]
    (List.map (fun e -> e.Trace.message) evs)

let test_trace_custom_sink () =
  let seen = ref [] in
  let tr =
    Trace.create ~sink:(Trace.Custom (fun e -> seen := e.Trace.message :: !seen))
      Trace.Warn
  in
  Trace.emit tr Trace.Error ~time:0.0 ~category:"c" "boom";
  Trace.emit tr Trace.Debug ~time:0.0 ~category:"c" "quiet";
  check (Alcotest.list Alcotest.string) "sink sees accepted events" [ "boom" ] !seen

let test_trace_level_of_string () =
  let lvl = Alcotest.testable (Fmt.of_to_string Trace.level_to_string) ( = ) in
  (match Trace.level_of_string "info" with
  | Ok l -> check lvl "info" Trace.Info l
  | Error e -> Alcotest.fail e);
  match Trace.level_of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus accepted"
  | Error _ -> ()

(* --- Obs context and JSON ------------------------------------------ *)

let test_obs_disabled_is_off () =
  Alcotest.(check bool) "off" false (Obs.on Obs.disabled);
  (* phase must still run the thunk. *)
  check Alcotest.int "phase transparent" 7 (Obs.phase Obs.disabled "p" (fun () -> 7))

let test_obs_phase_timing () =
  let obs = Obs.create () in
  check Alcotest.int "result" 3 (Obs.phase obs "work" (fun () -> 3));
  ignore (Obs.phase obs "work" (fun () -> 0));
  match Timer.report (Obs.timers obs) with
  | [ (name, total, count) ] ->
      check Alcotest.string "name" "work" name;
      check Alcotest.int "two timings" 2 count;
      Alcotest.(check bool) "nonneg total" true (total >= 0.0)
  | l -> Alcotest.failf "expected one timer, got %d" (List.length l)

let test_json_escaping () =
  let s = Obs_json.to_string (Obs_json.String "a\"b\\c\nd\te") in
  check Alcotest.string "escaped" "\"a\\\"b\\\\c\\nd\\te\"" s

let test_json_special_floats () =
  check Alcotest.string "nan is null" "null" (Obs_json.to_string (Obs_json.Float nan));
  check Alcotest.string "inf is null" "null"
    (Obs_json.to_string (Obs_json.Float infinity));
  check Alcotest.string "integral floats stay exact" "42"
    (Obs_json.to_string (Obs_json.Float 42.0))

(* Minimal structural validator: balanced brackets outside strings and
   legal escapes — enough to catch malformed output without a JSON
   dependency. *)
let assert_balanced json =
  let depth = ref 0 and in_str = ref false and esc = ref false in
  String.iter
    (fun c ->
      if !esc then esc := false
      else if !in_str then begin
        if c = '\\' then esc := true else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then Alcotest.fail "unbalanced brackets"
        | _ -> ())
    json;
  Alcotest.(check bool) "string closed" false !in_str;
  check Alcotest.int "balanced" 0 !depth

let test_obs_to_json_shape () =
  let obs = Obs.create ~trace:(Trace.create ~sink:Trace.Null Trace.Debug) () in
  let c = Registry.counter (Obs.registry obs) ~labels:[ ("k", "v") ] "hits" in
  c := 3.0;
  Registry.observe (Obs.registry obs) "sizes" 128.0;
  Trace.emit (Obs.trace obs) Trace.Info ~time:1.5 ~category:"t"
    ~fields:[ ("a", "b") ] "hello \"quoted\"";
  ignore (Obs.phase obs "stage" (fun () -> ()));
  let json = Obs_json.to_string_pretty (Obs.to_json obs) in
  assert_balanced json;
  let has needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true (go 0)
  in
  has "\"metrics\"";
  has "\"timers\"";
  has "\"trace\"";
  has "\"hits\"";
  has "\"p99\"";
  has "hello \\\"quoted\\\""

let suite =
  [
    ("histogram empty", `Quick, test_hist_empty);
    ("histogram single value", `Quick, test_hist_single_value);
    ("histogram quantile accuracy", `Quick, test_hist_quantile_accuracy);
    ("histogram fraction_le", `Quick, test_hist_fraction_le);
    ("histogram nonpositive values", `Quick, test_hist_nonpos);
    ("histogram nan rejected", `Quick, test_hist_nan_rejected);
    ("histogram merge and reset", `Quick, test_hist_merge_reset);
    ("registry counters and labels", `Quick, test_registry_counters_and_labels);
    ("registry kind mismatch", `Quick, test_registry_kind_mismatch);
    ("registry snapshot diff", `Quick, test_registry_snapshot_diff);
    ("registry csv export", `Quick, test_registry_csv);
    ("trace levels", `Quick, test_trace_levels);
    ("trace null is off", `Quick, test_trace_null_off);
    ("trace ring wraparound", `Quick, test_trace_ring_wraparound);
    ("trace custom sink", `Quick, test_trace_custom_sink);
    ("trace level parsing", `Quick, test_trace_level_of_string);
    ("obs disabled", `Quick, test_obs_disabled_is_off);
    ("obs phase timing", `Quick, test_obs_phase_timing);
    ("json escaping", `Quick, test_json_escaping);
    ("json special floats", `Quick, test_json_special_floats);
    ("obs to_json shape", `Quick, test_obs_to_json_shape);
  ]
