(* Tests for scion_faults: plan compilation, flap scheduling, link
   state refcounting, driver replay, and the engine's reaction wiring
   (revocation propagation, endpoint failover, blackout accounting). *)

let check = Alcotest.check

(* Ring of 4 core ASes plus a chord, so the monitored pair 0 <-> 2 has
   a direct link and two 2-hop alternates. *)
let ring () =
  let b = Graph.builder () in
  let c = Array.init 4 (fun i -> Graph.add_as b ~core:true (Id.ia 1 (i + 1))) in
  Graph.add_link b ~rel:Graph.Core c.(0) c.(1);
  Graph.add_link b ~rel:Graph.Core c.(1) c.(2);
  Graph.add_link b ~rel:Graph.Core c.(2) c.(3);
  Graph.add_link b ~rel:Graph.Core c.(3) c.(0);
  Graph.add_link b ~rel:Graph.Core c.(0) c.(2);
  Graph.freeze b

let direct_link g = (List.hd (Graph.links_between g 0 2)).Graph.link_id

(* --- Fault_plan --- *)

let test_plan_compile_deterministic () =
  let g = ring () in
  let plan =
    Fault_plan.plan ~seed:11L
      [
        Fault_plan.Stochastic
          { mtbf = 3600.0; mttr = 600.0; start = 0.0; until = 21600.0 };
        Fault_plan.Link_down { link = 0; at = 100.0; duration = 50.0 };
      ]
  in
  let a = Fault_plan.compile ~graph:g plan in
  let b = Fault_plan.compile ~graph:g plan in
  Alcotest.(check bool) "same plan compiles identically" true (a = b);
  Alcotest.(check bool) "stochastic spec produced events" true (Array.length a > 2);
  Array.iteri
    (fun i (e : Fault_plan.event) ->
      if i > 0 then
        Alcotest.(check bool) "sorted by time" true
          (a.(i - 1).Fault_plan.time <= e.Fault_plan.time))
    a;
  let other = Fault_plan.compile ~graph:g { plan with Fault_plan.seed = 12L } in
  Alcotest.(check bool) "different seed, different stochastic draws" true (a <> other)

let test_plan_compile_validates () =
  let g = ring () in
  Alcotest.check_raises "unknown link"
    (Invalid_argument "Fault_plan.compile: unknown link 99") (fun () ->
      ignore
        (Fault_plan.compile ~graph:g
           (Fault_plan.plan
              [ Fault_plan.Link_down { link = 99; at = 0.0; duration = 1.0 } ])))

let test_flap_scheduling () =
  let g = ring () in
  let events =
    Fault_plan.compile ~graph:g
      (Fault_plan.plan
         [
           Fault_plan.Flapping
             {
               link = 1;
               at = 100.0;
               period = 60.0;
               down_fraction = 0.25;
               until = 280.0;
             };
         ])
  in
  (* Cycles start at 100, 160, 220 (280 is past [until]): three
     down/up pairs, each down for 15 s. *)
  let expect =
    [
      (100.0, Fault_plan.Down); (115.0, Fault_plan.Up);
      (160.0, Fault_plan.Down); (175.0, Fault_plan.Up);
      (220.0, Fault_plan.Down); (235.0, Fault_plan.Up);
    ]
  in
  check Alcotest.int "event count" (List.length expect) (Array.length events);
  List.iteri
    (fun i (t, a) ->
      check (Alcotest.float 1e-9) "flap time" t events.(i).Fault_plan.time;
      check Alcotest.int "flap link" 1 events.(i).Fault_plan.link;
      Alcotest.(check bool) "flap action" true (events.(i).Fault_plan.action = a))
    expect

let test_as_outage_covers_incident_links () =
  let g = ring () in
  let events =
    Fault_plan.compile ~graph:g
      (Fault_plan.plan
         [ Fault_plan.As_outage { as_idx = 2; at = 10.0; duration = 5.0 } ])
  in
  (* AS 2 touches three links (ring neighbours 1 and 3, chord to 0). *)
  check Alcotest.int "3 links x down+up" 6 (Array.length events);
  let downs =
    Array.to_list events
    |> List.filter_map (fun (e : Fault_plan.event) ->
           if e.Fault_plan.action = Fault_plan.Down then Some e.Fault_plan.link
           else None)
  in
  List.iter
    (fun l ->
      let lk = Graph.link g l in
      Alcotest.(check bool) "down link touches AS 2" true
        (lk.Graph.a = 2 || lk.Graph.b = 2))
    downs

let test_sample_adjacencies_siblings () =
  let b = Graph.builder () in
  let x = Graph.add_as b ~core:true (Id.ia 1 1) in
  let y = Graph.add_as b ~core:true (Id.ia 1 2) in
  let z = Graph.add_as b ~core:true (Id.ia 1 3) in
  Graph.add_link b ~count:2 ~rel:Graph.Core x y;
  Graph.add_link b ~rel:Graph.Core y z;
  let g = Graph.freeze b in
  let rng = Rng.create 5L in
  let picked =
    Fault_plan.sample_adjacencies ~rng ~count:2 g
      ~accept:(fun ~link:_ ~siblings -> Some siblings)
  in
  check Alcotest.int "two adjacencies" 2 (List.length picked);
  (* The parallel x--y links form one adjacency; picking it once must
     exclude its sibling, so the two results are distinct groups. *)
  (match picked with
  | [ s1; s2 ] ->
      Alcotest.(check bool) "distinct sibling groups" true
        (not (List.exists (fun l -> List.mem l s2) s1))
  | _ -> Alcotest.fail "expected two groups");
  (* Deterministic in the RNG. *)
  let again =
    Fault_plan.sample_adjacencies ~rng:(Rng.create 5L) ~count:2 g
      ~accept:(fun ~link:_ ~siblings -> Some siblings)
  in
  Alcotest.(check bool) "same rng, same sample" true (picked = again)

(* --- Link_state --- *)

let test_link_state_refcount () =
  let st = Link_state.create ~n_links:3 in
  Alcotest.(check bool) "starts up" true (Link_state.up st 1);
  Alcotest.(check bool) "0->1 is a transition" true
    (Link_state.apply st ~now:5.0 ~link:1 ~action:Fault_plan.Down
    = Link_state.Went_down);
  Alcotest.(check bool) "second cause collapses" true
    (Link_state.apply st ~now:6.0 ~link:1 ~action:Fault_plan.Down
    = Link_state.No_change);
  Alcotest.(check bool) "down" false (Link_state.up st 1);
  check
    (Alcotest.option (Alcotest.float 1e-9))
    "down since first cause" (Some 5.0) (Link_state.down_since st 1);
  Alcotest.(check bool) "first repair not enough" true
    (Link_state.apply st ~now:7.0 ~link:1 ~action:Fault_plan.Up
    = Link_state.No_change);
  Alcotest.(check bool) "second repair restores" true
    (Link_state.apply st ~now:8.0 ~link:1 ~action:Fault_plan.Up
    = Link_state.Went_up);
  Alcotest.(check bool) "spurious up ignored" true
    (Link_state.apply st ~now:9.0 ~link:1 ~action:Fault_plan.Up
    = Link_state.No_change);
  check (Alcotest.list Alcotest.int) "no down links" [] (Link_state.down_links st)

let test_driver_replay () =
  let g = ring () in
  let des = Des.create () in
  let state = Link_state.create ~n_links:(Graph.num_links g) in
  let log = ref [] in
  let events =
    Fault_plan.compile ~graph:g
      (Fault_plan.plan
         [
           Fault_plan.Link_down { link = 0; at = 10.0; duration = 20.0 };
           Fault_plan.Link_down { link = 0; at = 15.0; duration = 5.0 };
         ])
  in
  let n =
    Fault_driver.install ~des ~state
      ~on_down:(fun ~now ~link -> log := (now, link, `Down) :: !log)
      ~on_up:(fun ~now ~link -> log := (now, link, `Up) :: !log)
      events
  in
  check Alcotest.int "4 raw events installed" 4 n;
  Des.run des;
  (* The overlapping second failure neither re-fails nor re-repairs:
     one real down at 10, one real up at 30. *)
  check Alcotest.int "two real transitions" 2 (List.length !log);
  Alcotest.(check bool) "down at 10, up at 30" true
    (List.rev !log = [ (10.0, 0, `Down); (30.0, 0, `Up) ])

(* --- Beacon_store.drop_link / Beaconing link_up gate --- *)

let test_store_drop_link () =
  let store = Beacon_store.create ~limit:10 in
  let p1 = Pcb.origin_pcb ~origin:7 ~now:0.0 ~lifetime:3600.0 in
  let a = Pcb.extend p1 ~asn:7 ~ingress:0 ~egress:1 ~link:3 ~peers:[||] in
  let b = Pcb.extend p1 ~asn:7 ~ingress:0 ~egress:2 ~link:4 ~peers:[||] in
  ignore (Beacon_store.insert store ~now:1.0 a);
  ignore (Beacon_store.insert store ~now:1.0 b);
  check Alcotest.int "two stored" 2 (Beacon_store.total store);
  check Alcotest.int "one dropped" 1 (Beacon_store.drop_link store ~link:3);
  check Alcotest.int "one left" 1 (Beacon_store.total store);
  check Alcotest.int "survivor avoids the link" 0
    (List.length
       (List.filter
          (fun (p : Pcb.t) -> Array.exists (fun l -> l = 3) p.Pcb.links)
          (Beacon_store.paths store ~now:2.0 ~origin:7)));
  check Alcotest.int "unknown link no-op" 0 (Beacon_store.drop_link store ~link:99)

let test_beaconing_link_up_gate () =
  let g = ring () in
  let cfg = { Beaconing.default_config with Beaconing.duration = 1800.0 } in
  let gated =
    Beaconing.run ~link_up:(fun ~now:_ _ -> false) g cfg
  in
  check Alcotest.int "all dissemination suppressed" 0
    gated.Beaconing.stats.Beaconing.total_pcbs;
  check (Alcotest.float 0.0) "no bytes either" 0.0
    gated.Beaconing.stats.Beaconing.total_bytes;
  let open_ = Beaconing.run g cfg in
  Alcotest.(check bool) "ungated run disseminates" true
    (open_.Beaconing.stats.Beaconing.total_pcbs > 0)

(* --- Fault_engine --- *)

let engine_cfg g plan =
  {
    Fault_engine.graph = g;
    beacon = { Beaconing.default_config with Beaconing.duration = 4800.0 };
    plan;
    pairs = [| (0, 2) |];
    scmp_delay_s = 0.05;
  }

let test_engine_failover_and_revocation () =
  let g = ring () in
  let l = direct_link g in
  let plan =
    Fault_plan.plan [ Fault_plan.Link_down { link = l; at = 1800.0; duration = 1200.0 } ]
  in
  let r = Fault_engine.run (engine_cfg g plan) in
  let s = r.Fault_engine.recovery in
  check Alcotest.int "one real down" 1 s.Recovery.events_down;
  check Alcotest.int "one real up" 1 s.Recovery.events_up;
  check Alcotest.int "pair affected" 1 s.Recovery.affected_pairs;
  check Alcotest.int "failover, not blackout" 1 s.Recovery.failovers;
  check Alcotest.int "no blackout" 0 s.Recovery.blackouts;
  (* SCMP came back from the adjacent AS: one hop of delay. *)
  check (Alcotest.float 1e-9) "recovery = one scmp hop" 0.05
    s.Recovery.recovery_samples.(0);
  Alcotest.(check bool) "stores dropped PCBs over the link" true
    (s.Recovery.dropped_pcbs > 0);
  Alcotest.(check bool) "path server purged segments" true
    (s.Recovery.revoked_segments > 0);
  (* One notified endpoint plus the path server. *)
  check Alcotest.int "revocation messages" 2 s.Recovery.revocation_msgs;
  check (Alcotest.float 1e-9) "revocation bytes = 2 scmp messages"
    (float_of_int
       (2
       * Scmp.wire_bytes
           {
             Scmp.kind =
               Scmp.Link_failure { link = l; if_a = 0; if_b = 0; expiry = 0.0 };
             origin_as = 0;
             at = 0.0;
           }))
    s.Recovery.revocation_bytes;
  check Alcotest.int "validation delivers end-to-end" 1
    r.Fault_engine.validated_delivered

let test_engine_blackout_and_recovery () =
  let g = ring () in
  let plan =
    Fault_plan.plan
      [ Fault_plan.As_outage { as_idx = 2; at = 1800.0; duration = 1200.0 } ]
  in
  let r = Fault_engine.run (engine_cfg g plan) in
  let s = r.Fault_engine.recovery in
  check Alcotest.int "pair affected" 1 s.Recovery.affected_pairs;
  check Alcotest.int "blackout opened" 1 s.Recovery.blackouts;
  check Alcotest.int "and recovered" 0 s.Recovery.unrecovered;
  (* Dark from the outage at 1800 until the first beaconing round
     after the repair at 3000 re-delivers a path from origin 2. *)
  check (Alcotest.float 1e-9) "blackout spans the outage" 1200.0
    s.Recovery.blackout_time_s;
  Alcotest.(check bool) "blackout recorded as a recovery sample" true
    (Array.exists (fun x -> x = 1200.0) s.Recovery.recovery_samples);
  check Alcotest.int "validation delivers after recovery" 1
    r.Fault_engine.validated_delivered

let test_engine_permanent_outage () =
  let g = ring () in
  let plan =
    Fault_plan.plan
      [ Fault_plan.As_outage { as_idx = 2; at = 1800.0; duration = infinity } ]
  in
  let r = Fault_engine.run (engine_cfg g plan) in
  let s = r.Fault_engine.recovery in
  check Alcotest.int "blackout opened" 1 s.Recovery.blackouts;
  check Alcotest.int "never recovered" 1 s.Recovery.unrecovered;
  (* Truncated at the 4800 s horizon. *)
  check (Alcotest.float 1e-9) "blackout runs to the horizon" 3000.0
    s.Recovery.blackout_time_s;
  check Alcotest.int "no end-to-end delivery" 0 r.Fault_engine.validated_delivered;
  check Alcotest.int "validation still attempted the pair" 1
    r.Fault_engine.validated_pairs

let test_engine_deterministic () =
  let g = ring () in
  let plan =
    Fault_plan.plan ~seed:3L
      [
        Fault_plan.Stochastic
          { mtbf = 4800.0; mttr = 600.0; start = 600.0; until = 4800.0 };
      ]
  in
  let a = Fault_engine.run (engine_cfg g plan) in
  let b = Fault_engine.run (engine_cfg g plan) in
  Alcotest.(check bool) "identical recovery summaries" true
    (a.Fault_engine.recovery = b.Fault_engine.recovery);
  check Alcotest.int "identical validation" a.Fault_engine.validated_delivered
    b.Fault_engine.validated_delivered

let suite =
  [
    ("plan compile deterministic", `Quick, test_plan_compile_deterministic);
    ("plan compile validates", `Quick, test_plan_compile_validates);
    ("flap scheduling", `Quick, test_flap_scheduling);
    ("AS outage covers incident links", `Quick, test_as_outage_covers_incident_links);
    ("adjacency sampler", `Quick, test_sample_adjacencies_siblings);
    ("link state refcount", `Quick, test_link_state_refcount);
    ("driver replay", `Quick, test_driver_replay);
    ("store drop link", `Quick, test_store_drop_link);
    ("beaconing link_up gate", `Quick, test_beaconing_link_up_gate);
    ("engine failover + revocation", `Quick, test_engine_failover_and_revocation);
    ("engine blackout + recovery", `Quick, test_engine_blackout_and_recovery);
    ("engine permanent outage", `Quick, test_engine_permanent_outage);
    ("engine deterministic", `Quick, test_engine_deterministic);
  ]
