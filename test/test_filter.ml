(* Tests for AS-local beaconing policies (§2.2). *)

let check = Alcotest.check

(* Line of core ASes across two ISDs:
   0 (ISD 1) - 1 (ISD 1) - 2 (ISD 2) - 3 (ISD 1), plus a chord 0-3. *)
let graph () =
  let b = Graph.builder () in
  let a0 = Graph.add_as b ~core:true (Id.ia 1 1) in
  let a1 = Graph.add_as b ~core:true (Id.ia 1 2) in
  let a2 = Graph.add_as b ~core:true (Id.ia 2 1) in
  let a3 = Graph.add_as b ~core:true (Id.ia 1 3) in
  Graph.add_link b ~rel:Graph.Core a0 a1;
  Graph.add_link b ~rel:Graph.Core a1 a2;
  Graph.add_link b ~rel:Graph.Core a2 a3;
  Graph.add_link b ~rel:Graph.Core a0 a3;
  Graph.freeze b

let mk_pcb g hops_spec origin =
  let p = ref (Pcb.origin_pcb ~origin ~now:0.0 ~lifetime:3600.0) in
  List.iter
    (fun (asn, link) ->
      ignore g;
      p := Pcb.extend !p ~asn ~ingress:0 ~egress:1 ~link ~peers:[||])
    hops_spec;
  !p

let test_rules () =
  let g = graph () in
  let p = mk_pcb g [ (0, 0); (1, 1) ] 0 in
  (* path: origin 0, hops 0 (link 0), 1 (link 1) *)
  Alcotest.(check bool) "empty policy allows" true (Beacon_filter.allows g [] p);
  Alcotest.(check bool) "deny-as on path" false
    (Beacon_filter.allows g [ Beacon_filter.Deny_as 1 ] p);
  Alcotest.(check bool) "deny-as off path" true
    (Beacon_filter.allows g [ Beacon_filter.Deny_as 2 ] p);
  Alcotest.(check bool) "deny-origin" false
    (Beacon_filter.allows g [ Beacon_filter.Deny_origin 0 ] p);
  Alcotest.(check bool) "deny-link on path" false
    (Beacon_filter.allows g [ Beacon_filter.Deny_link 1 ] p);
  Alcotest.(check bool) "max hops passes" true
    (Beacon_filter.allows g [ Beacon_filter.Max_hops 2 ] p);
  Alcotest.(check bool) "max hops rejects" false
    (Beacon_filter.allows g [ Beacon_filter.Max_hops 1 ] p);
  Alcotest.(check bool) "deny ISD 1 (origin's ISD)" false
    (Beacon_filter.allows g [ Beacon_filter.Deny_isd 1 ] p);
  Alcotest.(check bool) "deny ISD 2 (not touched)" true
    (Beacon_filter.allows g [ Beacon_filter.Deny_isd 2 ] p);
  (* Conjunction: any deny rule rejects. *)
  Alcotest.(check bool) "rule conjunction" false
    (Beacon_filter.allows g [ Beacon_filter.Max_hops 5; Beacon_filter.Deny_as 0 ] p)

let test_deny_isd_in_beaconing () =
  (* AS 3 refuses to propagate anything touching ISD 2 (geofencing):
     AS 0 must then only learn 3-origin paths via the direct chord or
     via 1-2... no: paths THROUGH 2 are still learnt from others; but
     3 itself must never forward a path containing AS 2. We verify that
     every path AS 0 stores whose last hop is 3 avoids ISD 2. *)
  let g = graph () in
  let cfg =
    {
      Beaconing.default_config with
      Beaconing.duration = 600.0 *. 8.0;
      Beaconing.filters = [ (3, [ Beacon_filter.Deny_isd 2 ]) ];
    }
  in
  let out = Beaconing.run g cfg in
  let now = cfg.Beaconing.duration -. 1.0 in
  List.iter
    (fun o ->
      List.iter
        (fun (p : Pcb.t) ->
          let nh = Pcb.num_hops p in
          if nh > 0 && p.Pcb.hops.(nh - 1).Pcb.asn = 3 then
            Alcotest.(check bool) "AS 3 never forwarded an ISD-2 path" true
              (not (Pcb.contains_as p 2)))
        (Beacon_store.paths out.Beaconing.stores.(0) ~now ~origin:o))
    (Beacon_store.origins out.Beaconing.stores.(0))

let test_deny_origin_blackholes () =
  (* AS 1 refuses to propagate origin 2: AS 0 can then only learn
     2-origin paths whose last hop is 3 (via the chord). *)
  let g = graph () in
  let cfg =
    {
      Beaconing.default_config with
      Beaconing.duration = 600.0 *. 8.0;
      Beaconing.filters = [ (1, [ Beacon_filter.Deny_origin 2 ]) ];
    }
  in
  let out = Beaconing.run g cfg in
  let now = cfg.Beaconing.duration -. 1.0 in
  let paths = Beacon_store.paths out.Beaconing.stores.(0) ~now ~origin:2 in
  Alcotest.(check bool) "still reachable via 3" true (paths <> []);
  List.iter
    (fun (p : Pcb.t) ->
      let nh = Pcb.num_hops p in
      check Alcotest.int "only via the chord through 3" 3 p.Pcb.hops.(nh - 1).Pcb.asn)
    paths

let test_unknown_as_rejected () =
  let g = graph () in
  let cfg =
    { Beaconing.default_config with Beaconing.filters = [ (99, [ Beacon_filter.Max_hops 1 ]) ] }
  in
  Alcotest.check_raises "unknown AS"
    (Invalid_argument "Beaconing.run: filter for unknown AS") (fun () ->
      ignore (Beaconing.run g cfg))

let test_pp_rule () =
  check Alcotest.string "pp" "deny-isd 7"
    (Format.asprintf "%a" Beacon_filter.pp_rule (Beacon_filter.Deny_isd 7))

let suite =
  [
    ("filter rules", `Quick, test_rules);
    ("deny-isd during beaconing", `Quick, test_deny_isd_in_beaconing);
    ("deny-origin blackholes locally", `Quick, test_deny_origin_blackholes);
    ("unknown AS rejected", `Quick, test_unknown_as_rejected);
    ("pp rule", `Quick, test_pp_rule);
  ]
