(* Tests for scion_segments: segment termination, hop-field MACs,
   combination (incl. shortcuts and peering), path servers and the
   control service glue. *)

let check = Alcotest.check

(* Two-ISD network:

   ISD 1: core C0; C0 -> A2 -> A4 (customers); C0 -> A3; A2 -- A3 peering
   ISD 2: core C1; C1 -> A5
   core link C0 === C1 (2 parallel)

   indexes: C0=0 C1=1 A2=2 A3=3 A4=4 A5=5 *)
let network () =
  let b = Graph.builder () in
  let c0 = Graph.add_as b ~core:true (Id.ia 1 1) in
  let c1 = Graph.add_as b ~core:true (Id.ia 2 1) in
  let a2 = Graph.add_as b (Id.ia 1 2) in
  let a3 = Graph.add_as b (Id.ia 1 3) in
  let a4 = Graph.add_as b (Id.ia 1 4) in
  let a5 = Graph.add_as b (Id.ia 2 2) in
  Graph.add_link b ~count:2 ~rel:Graph.Core c0 c1;
  Graph.add_link b ~rel:Graph.Provider_customer c0 a2;
  Graph.add_link b ~rel:Graph.Provider_customer c0 a3;
  Graph.add_link b ~rel:Graph.Provider_customer a2 a4;
  Graph.add_link b ~rel:Graph.Peering a2 a3;
  Graph.add_link b ~rel:Graph.Provider_customer c1 a5;
  Graph.freeze b

let beacon_cfg scope =
  {
    Beaconing.default_config with
    Beaconing.scope;
    Beaconing.duration = 600.0 *. 8.0;
    Beaconing.lifetime = 600.0 *. 12.0;
  }

let built =
  lazy
    (let g = network () in
     let core = Beaconing.run g (beacon_cfg Beaconing.Core_beaconing) in
     let intra = Beaconing.run g (beacon_cfg Beaconing.Intra_isd) in
     (g, Control_service.build ~core ~intra ()))

(* --- Segment --- *)

let sample_segment () =
  let g, cs = Lazy.force built in
  let keys = Control_service.keys cs in
  (* Build a PCB C0 -> A2 by hand and terminate it at A4. *)
  let l_c0_a2 = List.hd (Graph.links_between g 0 2) in
  let l_a2_a4 = List.hd (Graph.links_between g 2 4) in
  let p = Pcb.origin_pcb ~origin:0 ~now:0.0 ~lifetime:3600.0 in
  let p =
    Pcb.extend p ~asn:0 ~ingress:0 ~egress:(Graph.iface_of l_c0_a2 0)
      ~link:l_c0_a2.Graph.link_id ~peers:[||]
  in
  let p =
    Pcb.extend p ~asn:2 ~ingress:(Graph.iface_of l_c0_a2 2)
      ~egress:(Graph.iface_of l_a2_a4 2) ~link:l_a2_a4.Graph.link_id ~peers:[||]
  in
  (g, keys, Segment.terminate g keys ~kind:Segment.Up ~holder:4 p)

let test_terminate () =
  let _, _, seg = sample_segment () in
  check (Alcotest.list Alcotest.int) "AS sequence" [ 0; 2; 4 ] (Segment.ases seg);
  check Alcotest.int "origin" 0 seg.Segment.origin;
  check Alcotest.int "leaf" 4 seg.Segment.leaf;
  check Alcotest.int "terminal egress is 0" 0
    seg.Segment.hops.(2).Segment.egress;
  check Alcotest.int "origin ingress is 0" 0 seg.Segment.hops.(0).Segment.ingress

let test_terminate_empty_pcb () =
  let g, cs = Lazy.force built in
  let keys = Control_service.keys cs in
  Alcotest.check_raises "empty" (Invalid_argument "Segment.terminate: PCB has no hops")
    (fun () ->
      ignore
        (Segment.terminate g keys ~kind:Segment.Up ~holder:0
           (Pcb.origin_pcb ~origin:0 ~now:0.0 ~lifetime:1.0)))

let test_segment_verify () =
  let _, keys, seg = sample_segment () in
  Alcotest.(check bool) "verifies" true (Segment.verify keys seg ~now:10.0);
  Alcotest.(check bool) "expired fails" false (Segment.verify keys seg ~now:4000.0)

let test_segment_mac_tamper () =
  let _, keys, seg = sample_segment () in
  let hf = seg.Segment.hops.(1) in
  let tampered = { hf with Segment.egress = hf.Segment.egress + 1 } in
  Alcotest.(check bool) "tampered hop rejected" false
    (Segment.verify_hop keys tampered ~now:10.0)

let test_segment_key_rotation () =
  let g, cs = Lazy.force built in
  ignore g;
  let keys = Control_service.keys cs in
  let _, _, seg = sample_segment () in
  Alcotest.(check bool) "before rotation" true (Segment.verify keys seg ~now:10.0);
  Fwd_keys.rotate keys 2;
  Alcotest.(check bool) "after rotating AS 2's key" false
    (Segment.verify keys seg ~now:10.0)

let test_segment_mac_symmetric () =
  (* The same hop field must validate for up and down traversal. *)
  let keys = Fwd_keys.create () in
  let m1 = Segment.hop_mac keys ~as_idx:3 ~if1:5 ~if2:9 ~expiry:100.0 in
  let m2 = Segment.hop_mac keys ~as_idx:3 ~if1:9 ~if2:5 ~expiry:100.0 in
  check Alcotest.string "direction independent" m1 m2

(* --- Traversals & combination --- *)

let test_traversals () =
  let _, _, seg = sample_segment () in
  let down = Seg_combine.traverse_down seg in
  let up = Seg_combine.traverse_up seg in
  check Alcotest.int "down starts at origin" 0 down.(0).Fwd_path.as_idx;
  check Alcotest.int "up starts at leaf" 4 up.(0).Fwd_path.as_idx;
  check Alcotest.int "up source in_if is 0" 0 up.(0).Fwd_path.in_if;
  check Alcotest.int "down source in_if is 0" 0 down.(0).Fwd_path.in_if

let resolve src dst =
  let _, cs = Lazy.force built in
  Control_service.resolve cs ~src ~dst

let crossing_links_consistent g (p : Fwd_path.t) =
  let cs = p.Fwd_path.crossings in
  let ok = ref true in
  Array.iteri
    (fun i c ->
      if c.Fwd_path.out_link >= 0 then begin
        let lk = Graph.link g c.Fwd_path.out_link in
        let next = cs.(i + 1).Fwd_path.as_idx in
        if
          not
            ((lk.Graph.a = c.Fwd_path.as_idx && lk.Graph.b = next)
            || (lk.Graph.b = c.Fwd_path.as_idx && lk.Graph.a = next))
        then ok := false
      end)
    cs;
  !ok

let test_resolve_cross_isd () =
  let g, _ = Lazy.force built in
  let paths = resolve 4 5 in
  Alcotest.(check bool) "cross-ISD paths found" true (paths <> []);
  List.iter
    (fun p ->
      check Alcotest.int "starts at src" 4 (Fwd_path.src p);
      check Alcotest.int "ends at dst" 5 (Fwd_path.dst p);
      Alcotest.(check bool) "links consistent" true (crossing_links_consistent g p))
    paths;
  (* The parallel core links give at least two distinct paths. *)
  Alcotest.(check bool) "multipath over parallel core links" true
    (List.length paths >= 2)

let test_resolve_same_isd_updown () =
  let g, _ = Lazy.force built in
  (* A4 -> A3: up to C0, down to A3 — or the peering shortcut A2~A3. *)
  let paths = resolve 4 3 in
  Alcotest.(check bool) "paths found" true (paths <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool) "consistent" true (crossing_links_consistent g p))
    paths;
  let kinds = List.map (fun p -> p.Fwd_path.combination) paths in
  Alcotest.(check bool) "an up+down join exists" true
    (List.mem Fwd_path.Up_down kinds)

let test_peering_shortcut_found () =
  let paths = resolve 4 3 in
  let kinds = List.map (fun p -> p.Fwd_path.combination) paths in
  Alcotest.(check bool) "peering shortcut exists" true
    (List.mem Fwd_path.Peering_shortcut kinds);
  (* The peering shortcut (A4-A2~A3) is the shortest: 3 crossings. *)
  match paths with
  | best :: _ -> check Alcotest.int "shortest first" 3 (Fwd_path.length best)
  | [] -> Alcotest.fail "no paths"

let test_shortcut_found () =
  (* A4 -> A2 crossing over at A2 itself means Up_only; instead test
     destination deeper: A4 (below A2) to... reuse: src=4 dst=2 should
     give Up_only of the partial up segment? Our up segments end at the
     core, so 4->2 resolves via... check it at least resolves. *)
  let paths = resolve 4 2 in
  Alcotest.(check bool) "resolves" true (paths <> [])

let test_resolve_to_core () =
  let paths = resolve 4 1 in
  Alcotest.(check bool) "paths to remote core" true (paths <> []);
  let kinds = List.map (fun p -> p.Fwd_path.combination) paths in
  Alcotest.(check bool) "up+core combination" true (List.mem Fwd_path.Up_core kinds)

let test_resolve_from_core () =
  let paths = resolve 1 4 in
  Alcotest.(check bool) "paths from remote core" true (paths <> []);
  let kinds = List.map (fun p -> p.Fwd_path.combination) paths in
  Alcotest.(check bool) "core+down combination" true (List.mem Fwd_path.Core_down kinds)

let test_resolve_core_to_core () =
  let paths = resolve 0 1 in
  Alcotest.(check bool) "core to core" true (paths <> []);
  Alcotest.(check bool) "uses both parallel links" true (List.length paths >= 2)

let test_no_repeated_as () =
  List.iter
    (fun (s, d) ->
      List.iter
        (fun p ->
          let ases = Fwd_path.ases p in
          check Alcotest.int "no AS repeats" (List.length ases)
            (List.length (List.sort_uniq compare ases)))
        (resolve s d))
    [ (4, 5); (4, 3); (5, 4); (3, 4); (0, 5); (4, 1) ]

let test_resolve_self () =
  check (Alcotest.list Alcotest.int) "self resolves to nothing" []
    (List.map Fwd_path.length (resolve 4 4))

let test_fwd_path_accessors () =
  let paths = resolve 4 5 in
  match paths with
  | [] -> Alcotest.fail "no path"
  | p :: _ ->
      check Alcotest.int "src" 4 (Fwd_path.src p);
      check Alcotest.int "dst" 5 (Fwd_path.dst p);
      Alcotest.(check bool) "key distinguishes paths" true
        (match paths with
        | a :: b :: _ -> Fwd_path.key a <> Fwd_path.key b
        | _ -> true);
      Alcotest.(check bool) "pp renders" true
        (String.length (Format.asprintf "%a" Fwd_path.pp p) > 0);
      (* links accessor consistent with crossings *)
      Array.iter
        (fun l -> Alcotest.(check bool) "contains_link" true (Fwd_path.contains_link p l))
        p.Fwd_path.links

(* --- Path server --- *)

let test_path_server_register_lookup () =
  let _, keys, seg = sample_segment () in
  ignore keys;
  let ps = Path_server.create () in
  Alcotest.(check bool) "registered" true (Path_server.register_down ps ~now:1.0 seg);
  Alcotest.(check bool) "duplicate re-register ok (refresh)" true
    (Path_server.register_down ps ~now:1.0 seg);
  check Alcotest.int "stored once" 1 (Path_server.total_segments ps);
  check Alcotest.int "lookup finds it" 1
    (List.length (Path_server.lookup_down ps ~now:2.0 ~leaf:4));
  check Alcotest.int "other leaf empty" 0
    (List.length (Path_server.lookup_down ps ~now:2.0 ~leaf:9));
  let st = Path_server.stats ps in
  check Alcotest.int "2 registrations" 2 st.Path_server.registrations;
  check Alcotest.int "2 down lookups" 2 st.Path_server.lookups_down;
  Alcotest.(check bool) "registration bytes counted" true
    (st.Path_server.registration_bytes > 0)

let test_path_server_expiry () =
  let _, _, seg = sample_segment () in
  let ps = Path_server.create () in
  ignore (Path_server.register_down ps ~now:1.0 seg);
  check Alcotest.int "expired filtered" 0
    (List.length (Path_server.lookup_down ps ~now:1e9 ~leaf:4))

let test_path_server_revoke () =
  let _, _, seg = sample_segment () in
  let ps = Path_server.create () in
  ignore (Path_server.register_down ps ~now:1.0 seg);
  let link = seg.Segment.links.(0) in
  check Alcotest.int "one revoked" 1 (Path_server.revoke_link ps ~link);
  check Alcotest.int "gone" 0 (Path_server.total_segments ps);
  check Alcotest.int "idempotent" 0 (Path_server.revoke_link ps ~link)

let test_path_server_revoke_unknown_link () =
  let _, _, seg = sample_segment () in
  let ps = Path_server.create () in
  ignore (Path_server.register_down ps ~now:1.0 seg);
  (* A link no stored segment traverses: no-op, nothing purged, but
     the revocation attempt itself is still counted. *)
  check Alcotest.int "unknown link revokes nothing" 0
    (Path_server.revoke_link ps ~link:424242);
  check Alcotest.int "store untouched" 1 (Path_server.total_segments ps);
  let st = Path_server.stats ps in
  check Alcotest.int "revocation attempt counted" 1 st.Path_server.revocations;
  check Alcotest.int "no segments revoked" 0 st.Path_server.revoked_segments

let test_path_server_revoke_obs_consistency () =
  let _, _, seg = sample_segment () in
  let obs = Obs.create () in
  let ps = Path_server.create ~obs () in
  ignore (Path_server.register_down ps ~now:1.0 seg);
  let link = seg.Segment.links.(0) in
  let revoked = Path_server.revoke_link ps ~link in
  ignore (Path_server.revoke_link ps ~link:424242);
  let st = Path_server.stats ps in
  check Alcotest.int "stats agree with return value" revoked
    st.Path_server.revoked_segments;
  let counter =
    Registry.counter (Obs.registry obs) "path_server_revoked_segments_total"
  in
  check (Alcotest.float 0.0) "obs counter agrees with stats"
    (float_of_int st.Path_server.revoked_segments)
    !counter

let test_path_server_reregister_after_recovery () =
  let _, _, seg = sample_segment () in
  let ps = Path_server.create () in
  ignore (Path_server.register_down ps ~now:1.0 seg);
  let link = seg.Segment.links.(0) in
  check Alcotest.int "revoked" 1 (Path_server.revoke_link ps ~link);
  check Alcotest.int "empty while down" 0 (Path_server.total_segments ps);
  (* The link comes back and the leaf re-registers the same segment:
     the server must accept it again. *)
  Alcotest.(check bool) "re-register accepted" true
    (Path_server.register_down ps ~now:2.0 seg);
  check Alcotest.int "stored again" 1 (Path_server.total_segments ps);
  check Alcotest.int "lookup finds it again" 1
    (List.length (Path_server.lookup_down ps ~now:3.0 ~leaf:4))

let test_path_server_cap () =
  let g, cs = Lazy.force built in
  let keys = Control_service.keys cs in
  let ps = Path_server.create ~per_leaf_limit:1 () in
  let l_c0_a2 = List.hd (Graph.links_between g 0 2) in
  let l_c0_a3 = List.hd (Graph.links_between g 0 3) in
  let seg_via lk mid =
    let p = Pcb.origin_pcb ~origin:0 ~now:0.0 ~lifetime:3600.0 in
    let p =
      Pcb.extend p ~asn:0 ~ingress:0 ~egress:(Graph.iface_of lk 0)
        ~link:lk.Graph.link_id ~peers:[||]
    in
    Segment.terminate g keys ~kind:Segment.Down ~holder:mid p
  in
  Alcotest.(check bool) "first fits" true
    (Path_server.register_down ps ~now:1.0 (seg_via l_c0_a2 2));
  Alcotest.(check bool) "same leaf second rejected... different leaf ok" true
    (Path_server.register_down ps ~now:1.0 (seg_via l_c0_a3 3))

let test_deregister () =
  let _, _, seg = sample_segment () in
  let ps = Path_server.create () in
  ignore (Path_server.register_down ps ~now:1.0 seg);
  check Alcotest.int "deregistered" 1 (Path_server.deregister_leaf ps ~leaf:4);
  check Alcotest.int "empty" 0 (Path_server.total_segments ps)

(* --- Control service revocation --- *)

let test_control_service_revocation () =
  (* Build a private instance so revocation does not pollute the shared
     lazy network used by other tests. *)
  let g = network () in
  let core = Beaconing.run g (beacon_cfg Beaconing.Core_beaconing) in
  let intra = Beaconing.run g (beacon_cfg Beaconing.Intra_isd) in
  let cs = Control_service.build ~core ~intra () in
  let before = Control_service.resolve cs ~src:4 ~dst:5 in
  Alcotest.(check bool) "paths before" true (before <> []);
  (* Kill the A2->A4 access link: every 4<->5 path dies. *)
  let access = (List.hd (Graph.links_between g 2 4)).Graph.link_id in
  let revoked = Control_service.revoke_link cs ~link:access in
  Alcotest.(check bool) "segments revoked" true (revoked > 0);
  check (Alcotest.list Alcotest.int) "no paths after" []
    (List.map Fwd_path.length (Control_service.resolve cs ~src:4 ~dst:5));
  (* Killing only one of the two parallel core links keeps 4->5 alive. *)
  let g2 = network () in
  let core2 = Beaconing.run g2 (beacon_cfg Beaconing.Core_beaconing) in
  let intra2 = Beaconing.run g2 (beacon_cfg Beaconing.Intra_isd) in
  let cs2 = Control_service.build ~core:core2 ~intra:intra2 () in
  let parallel = (List.hd (Graph.links_between g2 0 1)).Graph.link_id in
  ignore (Control_service.revoke_link cs2 ~link:parallel);
  Alcotest.(check bool) "survives one parallel link failure" true
    (Control_service.resolve cs2 ~src:4 ~dst:5 <> [])

let prop_resolve_forwardable =
  (* Fuzz: random two-ISD networks; every resolved path between random
     leaf pairs must forward successfully on the data plane. *)
  let gen =
    QCheck.Gen.(
      let* leaves1 = int_range 1 3 in
      let* leaves2 = int_range 1 3 in
      let* seed = int_bound 10_000 in
      return (leaves1, leaves2, seed))
  in
  QCheck.Test.make ~name:"random networks: resolved paths all forward" ~count:5
    (QCheck.make gen)
    (fun (leaves1, leaves2, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let b = Graph.builder () in
      let c0 = Graph.add_as b ~core:true (Id.ia 1 1) in
      let c1 = Graph.add_as b ~core:true (Id.ia 2 1) in
      Graph.add_link b ~count:(1 + Rng.int rng 2) ~rel:Graph.Core c0 c1;
      let attach isd core count =
        List.init count (fun i ->
            let leaf = Graph.add_as b (Id.ia isd (10 + i)) in
            Graph.add_link b ~rel:Graph.Provider_customer core leaf;
            leaf)
      in
      let l1 = attach 1 c0 leaves1 in
      let l2 = attach 2 c1 leaves2 in
      (* Random peering between leaves of the same ISD. *)
      (match l1 with
      | a :: bb :: _ when Rng.bool rng -> Graph.add_link b ~rel:Graph.Peering a bb
      | _ -> ());
      let g = Graph.freeze b in
      let cfg scope = { Beaconing.default_config with Beaconing.scope; Beaconing.duration = 600.0 *. 6.0 } in
      let core = Beaconing.run g (cfg Beaconing.Core_beaconing) in
      let intra = Beaconing.run g (cfg Beaconing.Intra_isd) in
      let cs = Control_service.build ~core ~intra () in
      let net = Forwarding.network g (Control_service.keys cs) in
      let ok = ref true in
      List.iter
        (fun s ->
          List.iter
            (fun d ->
              let paths = Control_service.resolve cs ~src:s ~dst:d in
              if paths = [] then ok := false;
              List.iter
                (fun path ->
                  match
                    Forwarding.forward net ~now:(Control_service.now cs)
                      (Forwarding.packet path ())
                  with
                  | Forwarding.Delivered _ -> ()
                  | Forwarding.Dropped _ -> ok := false)
                paths)
            l2)
        l1;
      !ok)

let test_build_rejects_mismatched_graphs () =
  let g1 = network () in
  let g2 = Scionlab.generate Scionlab.default_params in
  let core = Beaconing.run g2 (beacon_cfg Beaconing.Core_beaconing) in
  let intra = Beaconing.run g1 (beacon_cfg Beaconing.Intra_isd) in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Control_service.build: outcomes are over different graphs")
    (fun () -> ignore (Control_service.build ~core ~intra ()))

let suite =
  [
    ("terminate", `Quick, test_terminate);
    ("terminate empty pcb", `Quick, test_terminate_empty_pcb);
    ("segment verify", `Quick, test_segment_verify);
    ("segment mac tamper", `Quick, test_segment_mac_tamper);
    ("segment key rotation", `Quick, test_segment_key_rotation);
    ("segment mac symmetric", `Quick, test_segment_mac_symmetric);
    ("traversals", `Quick, test_traversals);
    ("resolve cross-ISD", `Quick, test_resolve_cross_isd);
    ("resolve same-ISD up+down", `Quick, test_resolve_same_isd_updown);
    ("peering shortcut", `Quick, test_peering_shortcut_found);
    ("shortcut/other resolution", `Quick, test_shortcut_found);
    ("resolve to core", `Quick, test_resolve_to_core);
    ("resolve from core", `Quick, test_resolve_from_core);
    ("resolve core to core", `Quick, test_resolve_core_to_core);
    ("no repeated AS", `Quick, test_no_repeated_as);
    ("resolve self", `Quick, test_resolve_self);
    ("fwd path accessors", `Quick, test_fwd_path_accessors);
    ("path server register/lookup", `Quick, test_path_server_register_lookup);
    ("path server expiry", `Quick, test_path_server_expiry);
    ("path server revoke", `Quick, test_path_server_revoke);
    ("path server revoke unknown link", `Quick, test_path_server_revoke_unknown_link);
    ("path server revoke obs counter", `Quick, test_path_server_revoke_obs_consistency);
    ( "path server re-register after recovery",
      `Quick,
      test_path_server_reregister_after_recovery );
    ("path server cap", `Quick, test_path_server_cap);
    ("path server deregister", `Quick, test_deregister);
    ("control service revocation", `Quick, test_control_service_revocation);
    QCheck_alcotest.to_alcotest prop_resolve_forwardable;
    ("build rejects mismatched graphs", `Quick, test_build_rejects_mismatched_graphs);
  ]
