let () =
  Alcotest.run "scion"
    [
      ("util", Test_util.suite);
      ("crypto", Test_crypto.suite);
      ("types", Test_types.suite);
      ("topology", Test_topology.suite);
      ("sim", Test_sim.suite);
      ("obs", Test_obs.suite);
      ("runner", Test_runner.suite);
      ("core", Test_core.suite);
      ("bgp", Test_bgp.suite);
      ("bgp-sim", Test_bgp_sim.suite);
      ("latency", Test_latency.suite);
      ("wire-lookup", Test_wire_lookup.suite);
      ("filter", Test_filter.suite);
      ("pcb-codec", Test_pcb_codec.suite);
      ("analysis", Test_analysis.suite);
      ("segments", Test_segments.suite);
      ("faults", Test_faults.suite);
      ("supervise", Test_supervise.suite);
      ("dataplane", Test_dataplane.suite);
      ("traffic", Test_traffic.suite);
      ("deployment", Test_deployment.suite);
      ("experiments", Test_experiments.suite);
    ]
