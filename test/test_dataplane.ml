(* Tests for scion_dataplane: stateless forwarding with hop-field
   validation, SCMP link-failure signalling, endpoint fast failover and
   the SCION-IP gateway. *)

let check = Alcotest.check

(* Same two-ISD network as the segments tests. *)
let network () =
  let b = Graph.builder () in
  let c0 = Graph.add_as b ~core:true (Id.ia 1 1) in
  let c1 = Graph.add_as b ~core:true (Id.ia 2 1) in
  let a2 = Graph.add_as b (Id.ia 1 2) in
  let a3 = Graph.add_as b (Id.ia 1 3) in
  let a4 = Graph.add_as b (Id.ia 1 4) in
  let a5 = Graph.add_as b (Id.ia 2 2) in
  Graph.add_link b ~count:2 ~rel:Graph.Core c0 c1;
  Graph.add_link b ~rel:Graph.Provider_customer c0 a2;
  Graph.add_link b ~rel:Graph.Provider_customer c0 a3;
  Graph.add_link b ~rel:Graph.Provider_customer a2 a4;
  Graph.add_link b ~rel:Graph.Peering a2 a3;
  Graph.add_link b ~rel:Graph.Provider_customer c1 a5;
  Graph.freeze b

let beacon_cfg scope =
  {
    Beaconing.default_config with
    Beaconing.scope;
    Beaconing.duration = 600.0 *. 8.0;
    Beaconing.lifetime = 600.0 *. 12.0;
  }

let env =
  lazy
    (let g = network () in
     let core = Beaconing.run g (beacon_cfg Beaconing.Core_beaconing) in
     let intra = Beaconing.run g (beacon_cfg Beaconing.Intra_isd) in
     let cs = Control_service.build ~core ~intra () in
     let net = Forwarding.network g (Control_service.keys cs) in
     (g, cs, net))

let now_of cs = Control_service.now cs

let test_forward_delivers () =
  let g, cs, net = Lazy.force env in
  ignore g;
  match Control_service.resolve cs ~src:4 ~dst:5 with
  | [] -> Alcotest.fail "no path"
  | path :: _ -> (
      let pkt = Forwarding.packet path () in
      match Forwarding.forward net ~now:(now_of cs) pkt with
      | Forwarding.Delivered { trace; _ } ->
          check Alcotest.int "trace starts at src" 4 (List.hd trace);
          check Alcotest.int "trace ends at dst" 5 (List.nth trace (List.length trace - 1))
      | Forwarding.Dropped _ -> Alcotest.fail "packet dropped on a valid path")

let test_forward_all_resolved_paths () =
  let _, cs, net = Lazy.force env in
  List.iter
    (fun (s, d) ->
      List.iter
        (fun path ->
          match Forwarding.forward net ~now:(now_of cs) (Forwarding.packet path ()) with
          | Forwarding.Delivered _ -> ()
          | Forwarding.Dropped { reason = _; at_as; _ } ->
              Alcotest.failf "path %d->%d dropped at AS %d" s d at_as)
        (Control_service.resolve cs ~src:s ~dst:d))
    [ (4, 5); (5, 4); (4, 3); (3, 4); (0, 1); (2, 5) ]

let test_forward_rejects_tampered_mac () =
  let _, cs, net = Lazy.force env in
  match Control_service.resolve cs ~src:4 ~dst:5 with
  | [] -> Alcotest.fail "no path"
  | path :: _ -> (
      (* Corrupt one proof's MAC. *)
      let crossings = Array.copy path.Fwd_path.crossings in
      let mid = Array.length crossings / 2 in
      let c = crossings.(mid) in
      let bad_proofs =
        List.map
          (fun (p : Segment.hop_field) -> { p with Segment.mac = String.make 6 'x' })
          c.Fwd_path.proofs
      in
      crossings.(mid) <- { c with Fwd_path.proofs = bad_proofs };
      let forged = { path with Fwd_path.crossings = crossings } in
      match Forwarding.forward net ~now:(now_of cs) (Forwarding.packet forged ()) with
      | Forwarding.Dropped { reason = Forwarding.Bad_mac _; _ } -> ()
      | _ -> Alcotest.fail "tampered packet must be dropped with Bad_mac")

let test_forward_rejects_expired () =
  let _, cs, net = Lazy.force env in
  match Control_service.resolve cs ~src:4 ~dst:5 with
  | [] -> Alcotest.fail "no path"
  | path :: _ -> (
      match Forwarding.forward net ~now:1e9 (Forwarding.packet path ()) with
      | Forwarding.Dropped { reason = Forwarding.Expired_hop _; _ } -> ()
      | _ -> Alcotest.fail "expired path must be dropped")

let test_forward_link_failure_scmp () =
  let g, cs, _ = Lazy.force env in
  (* Private network so the failure does not leak into other tests. *)
  let net = Forwarding.network g (Control_service.keys cs) in
  match Control_service.resolve cs ~src:4 ~dst:5 with
  | [] -> Alcotest.fail "no path"
  | path :: _ -> (
      let l = path.Fwd_path.links.(Array.length path.Fwd_path.links - 1) in
      Forwarding.fail_link net l;
      (match Forwarding.forward net ~now:(now_of cs) (Forwarding.packet path ()) with
      | Forwarding.Dropped { reason = Forwarding.Link_down l'; scmp = Some m; _ } ->
          check Alcotest.int "reports the failed link" l l';
          (match m.Scmp.kind with
          | Scmp.Link_failure { link; if_a; if_b; expiry } ->
              check Alcotest.int "scmp link" l link;
              let lk = Graph.link g l in
              check Alcotest.int "scmp if_a" lk.Graph.a_if if_a;
              check Alcotest.int "scmp if_b" lk.Graph.b_if if_b;
              Alcotest.(check bool) "revocation expires in the future" true
                (expiry > now_of cs)
          | _ -> Alcotest.fail "wrong SCMP kind");
          Alcotest.(check bool) "scmp has a size" true (Scmp.wire_bytes m > 0)
      | _ -> Alcotest.fail "must be dropped with SCMP");
      Forwarding.restore_link net l;
      match Forwarding.forward net ~now:(now_of cs) (Forwarding.packet path ()) with
      | Forwarding.Delivered _ -> ()
      | _ -> Alcotest.fail "restored link must deliver again")

let test_endpoint_failover () =
  let g, cs, _ = Lazy.force env in
  let net = Forwarding.network g (Control_service.keys cs) in
  let ep = Endpoint.create cs net ~src:4 ~dst:5 in
  let n_paths = List.length (Endpoint.available_paths ep) in
  Alcotest.(check bool) "multiple paths available" true (n_paths >= 2);
  (* Fail one of the parallel core links: first send triggers failover
     and still delivers. *)
  let parallel = (List.hd (Graph.links_between g 0 1)).Graph.link_id in
  (* Only fail it if the active path uses it; otherwise fail the other. *)
  let active = Option.get (Endpoint.active_path ep) in
  let used = active.Fwd_path.links in
  let to_fail =
    if Array.exists (fun l -> l = parallel) used then parallel
    else (List.nth (Graph.links_between g 0 1) 1).Graph.link_id
  in
  Forwarding.fail_link net to_fail;
  (match Endpoint.send ep ~now:(now_of cs) () with
  | Forwarding.Delivered _ -> ()
  | Forwarding.Dropped _ -> Alcotest.fail "failover should deliver");
  Alcotest.(check bool) "at most one failover needed" true (Endpoint.failovers ep <= 1);
  (* Paths over the failed link are excluded now. *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "failed link excluded" true
        (not (Fwd_path.contains_link p to_fail)))
    (Endpoint.available_paths ep)

let test_endpoint_exhaustion () =
  let g, cs, _ = Lazy.force env in
  let net = Forwarding.network g (Control_service.keys cs) in
  let ep = Endpoint.create cs net ~src:4 ~dst:5 in
  (* The single access link 2-4 is on every path. *)
  let access = (List.hd (Graph.links_between g 2 4)).Graph.link_id in
  Forwarding.fail_link net access;
  (match Endpoint.send ep ~now:(now_of cs) () with
  | Forwarding.Dropped { scmp = Some { Scmp.kind = Scmp.Destination_unreachable; _ }; _ } ->
      ()
  | Forwarding.Dropped _ -> Alcotest.fail "expected destination-unreachable"
  | Forwarding.Delivered _ -> Alcotest.fail "cannot deliver without the access link");
  check (Alcotest.list Alcotest.int) "no paths left" []
    (List.map Fwd_path.length (Endpoint.available_paths ep));
  (* refresh restores the path set (control plane still knows them). *)
  Endpoint.refresh ep;
  Alcotest.(check bool) "refresh restores" true (Endpoint.available_paths ep <> [])

let test_endpoint_failover_retry_counts () =
  (* The failover retry happens inside a single send: exactly one
     failover is counted for one revocation, and the follow-up send on
     the surviving path adds none. *)
  let g, cs, _ = Lazy.force env in
  let net = Forwarding.network g (Control_service.keys cs) in
  let ep = Endpoint.create cs net ~src:4 ~dst:5 in
  let active = Option.get (Endpoint.active_path ep) in
  (* Fail a parallel core link the active path actually uses, so the
     first forward comes back with a Link_failure SCMP. *)
  let on_core l =
    List.exists (fun (lk : Graph.link) -> lk.Graph.link_id = l) (Graph.links_between g 0 1)
  in
  let to_fail =
    active.Fwd_path.links |> Array.to_list |> List.find on_core
  in
  Forwarding.fail_link net to_fail;
  check Alcotest.int "fresh endpoint, no failovers" 0 (Endpoint.failovers ep);
  (match Endpoint.send ep ~now:(now_of cs) () with
  | Forwarding.Delivered _ -> ()
  | Forwarding.Dropped _ -> Alcotest.fail "retry must deliver on the sibling link");
  check Alcotest.int "one revocation, one failover" 1 (Endpoint.failovers ep);
  (match Endpoint.send ep ~now:(now_of cs) () with
  | Forwarding.Delivered _ -> ()
  | Forwarding.Dropped _ -> Alcotest.fail "settled path must keep delivering");
  check Alcotest.int "no further failovers once settled" 1 (Endpoint.failovers ep);
  Alcotest.(check bool) "revoked link stays excluded" true
    (List.for_all
       (fun p -> not (Fwd_path.contains_link p to_fail))
       (Endpoint.available_paths ep))

let test_endpoint_all_paths_revoked () =
  (* Edge case: every path is revoked. The blackout send reports
     destination-unreachable without counting phantom failovers, and
     repeating it does not double-count anything. *)
  let g, cs, _ = Lazy.force env in
  let net = Forwarding.network g (Control_service.keys cs) in
  let ep = Endpoint.create cs net ~src:4 ~dst:5 in
  List.iter
    (fun (p : Fwd_path.t) ->
      Array.iter (Endpoint.exclude_link ep) p.Fwd_path.links)
    (Endpoint.available_paths ep);
  check Alcotest.int "no usable paths" 0 (List.length (Endpoint.available_paths ep));
  (match Endpoint.send ep ~now:(now_of cs) () with
  | Forwarding.Dropped
      { scmp = Some { Scmp.kind = Scmp.Destination_unreachable; _ }; _ } ->
      ()
  | _ -> Alcotest.fail "blackout must report destination-unreachable");
  check Alcotest.int "revocation-only blackout counts zero failovers" 0
    (Endpoint.failovers ep);
  (* A blackout caused by a data-plane failure counts the one failover
     that discovered it — and only once, however often we retry. *)
  let ep2 = Endpoint.create cs net ~src:4 ~dst:5 in
  let access = (List.hd (Graph.links_between g 2 4)).Graph.link_id in
  Forwarding.fail_link net access;
  (match Endpoint.send ep2 ~now:(now_of cs) () with
  | Forwarding.Dropped
      { scmp = Some { Scmp.kind = Scmp.Destination_unreachable; _ }; _ } ->
      ()
  | _ -> Alcotest.fail "expected destination-unreachable");
  let after_first = Endpoint.failovers ep2 in
  check Alcotest.int "discovery counted once" 1 after_first;
  (match Endpoint.send ep2 ~now:(now_of cs) () with
  | Forwarding.Dropped _ -> ()
  | Forwarding.Delivered _ -> Alcotest.fail "cannot deliver without the access link");
  check Alcotest.int "blackout retries do not double-count" after_first
    (Endpoint.failovers ep2);
  Forwarding.restore_link net access

let test_scmp_wire_bytes_and_pp () =
  (* wire_bytes is kind-dependent, and pp round-trips every field of
     the message into its rendering. *)
  let failure =
    {
      Scmp.kind = Scmp.Link_failure { link = 42; if_a = 3; if_b = 7; expiry = 1200.0 };
      origin_as = 9;
      at = 600.0;
    }
  in
  let expired = { Scmp.kind = Scmp.Path_expired; origin_as = 9; at = 600.0 } in
  let unreachable =
    { Scmp.kind = Scmp.Destination_unreachable; origin_as = 9; at = 600.0 }
  in
  let base = Scmp.header_bytes + Scmp.quote_bytes in
  check Alcotest.int "unreachable is header + quote" base
    (Scmp.wire_bytes unreachable);
  check Alcotest.int "path-expired adds the timestamp" (base + 8)
    (Scmp.wire_bytes expired);
  check Alcotest.int "link failure adds link + ifaces + expiry" (base + 16)
    (Scmp.wire_bytes failure);
  Alcotest.(check bool) "link failure is the largest kind" true
    (Scmp.wire_bytes failure > Scmp.wire_bytes expired
    && Scmp.wire_bytes expired > Scmp.wire_bytes unreachable);
  let rendered = Format.asprintf "%a" Scmp.pp failure in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "pp mentions %S" needle)
        true
        (let len = String.length needle in
         let n = String.length rendered in
         let rec scan i = i + len <= n && (String.sub rendered i len = needle || scan (i + 1)) in
         scan 0))
    [ "42"; "3"; "7"; "1200"; "AS 9"; "600" ]

let test_sig_gateway_lpm () =
  let _, cs, net = Lazy.force env in
  let sig_gw = Sig_gateway.create cs net ~local_as:4 in
  Sig_gateway.add_mapping sig_gw ~prefix:0x0A000000l ~prefix_len:8 ~as_idx:5;
  Sig_gateway.add_mapping sig_gw ~prefix:0x0A010000l ~prefix_len:16 ~as_idx:3;
  Alcotest.(check (option int)) "/16 wins" (Some 3) (Sig_gateway.lookup sig_gw 0x0A010203l);
  Alcotest.(check (option int)) "/8 fallback" (Some 5) (Sig_gateway.lookup sig_gw 0x0A020304l);
  Alcotest.(check (option int)) "no match" None (Sig_gateway.lookup sig_gw 0x0B000001l)

let test_sig_gateway_send () =
  let _, cs, net = Lazy.force env in
  let sig_gw = Sig_gateway.create cs net ~local_as:4 in
  Sig_gateway.add_mapping sig_gw ~prefix:0x0A000000l ~prefix_len:8 ~as_idx:5;
  (match Sig_gateway.send_ip sig_gw ~now:(now_of cs) ~dst_ip:0x0A000001l ~payload_bytes:500 with
  | Ok (Forwarding.Delivered _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "SIG send should deliver");
  (match Sig_gateway.send_ip sig_gw ~now:(now_of cs) ~dst_ip:0x0B000001l ~payload_bytes:500 with
  | Error Sig_gateway.No_mapping -> ()
  | _ -> Alcotest.fail "unmapped IP must fail");
  let st = Sig_gateway.stats sig_gw in
  check Alcotest.int "one encapsulation" 1 st.Sig_gateway.packets_encapsulated;
  check Alcotest.int "one unmapped drop" 1 st.Sig_gateway.no_mapping_drops;
  Alcotest.(check bool) "encap overhead counted" true
    (st.Sig_gateway.encapsulation_overhead_bytes > 0)

let test_sig_header_grows_with_path () =
  Alcotest.(check bool) "longer path, bigger header" true
    (Sig_gateway.scion_header_bytes ~path_hops:6 > Sig_gateway.scion_header_bytes ~path_hops:2)

let test_sig_invalid_prefix_len () =
  let _, cs, net = Lazy.force env in
  let sig_gw = Sig_gateway.create cs net ~local_as:4 in
  Alcotest.check_raises "bad prefix len"
    (Invalid_argument "Sig_gateway.add_mapping: prefix length outside [0, 32]") (fun () ->
      Sig_gateway.add_mapping sig_gw ~prefix:0l ~prefix_len:33 ~as_idx:1)

let suite =
  [
    ("forward delivers", `Quick, test_forward_delivers);
    ("forward all resolved paths", `Quick, test_forward_all_resolved_paths);
    ("forward rejects tampered MAC", `Quick, test_forward_rejects_tampered_mac);
    ("forward rejects expired", `Quick, test_forward_rejects_expired);
    ("link failure SCMP", `Quick, test_forward_link_failure_scmp);
    ("SCMP wire bytes and pp", `Quick, test_scmp_wire_bytes_and_pp);
    ("endpoint failover", `Quick, test_endpoint_failover);
    ("endpoint exhaustion", `Quick, test_endpoint_exhaustion);
    ("endpoint failover retry counts", `Quick, test_endpoint_failover_retry_counts);
    ("endpoint all paths revoked", `Quick, test_endpoint_all_paths_revoked);
    ("sig gateway LPM", `Quick, test_sig_gateway_lpm);
    ("sig gateway send", `Quick, test_sig_gateway_send);
    ("sig header grows with path", `Quick, test_sig_header_grows_with_path);
    ("sig invalid prefix len", `Quick, test_sig_invalid_prefix_len);
  ]
