(* Tests for scion_runner: the domain pool, order preservation,
   exception propagation, seed partitioning, the Obs fork/merge
   reduction, and jobs-independence of whole experiments. *)

let check = Alcotest.check

(* --- map_jobs ------------------------------------------------------ *)

let test_map_jobs_order () =
  let input = Array.init 100 (fun i -> i) in
  let expect = Array.map (fun i -> i * i) input in
  List.iter
    (fun jobs ->
      check
        (Alcotest.array Alcotest.int)
        (Printf.sprintf "jobs=%d" jobs)
        expect
        (Runner.map_jobs ~jobs (fun i -> i * i) input))
    [ 1; 2; 4; 9 ]

let test_map_jobs_small_inputs () =
  check (Alcotest.array Alcotest.int) "empty" [||]
    (Runner.map_jobs ~jobs:4 (fun i -> i) [||]);
  check (Alcotest.array Alcotest.int) "singleton" [| 7 |]
    (Runner.map_jobs ~jobs:4 (fun i -> i + 4) [| 3 |])

let test_map_jobs_on_shared_pool () =
  Runner.with_pool ~domains:2 (fun pool ->
      let a = Runner.map_jobs ~pool ~jobs:4 (fun i -> i + 1) (Array.init 10 (fun i -> i)) in
      let b = Runner.map_jobs ~pool ~jobs:4 (fun i -> i * 2) (Array.init 10 (fun i -> i)) in
      check (Alcotest.array Alcotest.int) "first" (Array.init 10 (fun i -> i + 1)) a;
      check (Alcotest.array Alcotest.int) "second" (Array.init 10 (fun i -> i * 2)) b)

let test_exception_propagation () =
  (* Two jobs fail; the one with the smallest input index wins, no
     matter which finishes first. *)
  match
    Runner.map_jobs ~jobs:3
      (fun i -> if i >= 3 then failwith (Printf.sprintf "boom%d" i) else i)
      (Array.init 6 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Runner.Job_failed { index; exn = Failure msg; _ } ->
      check Alcotest.int "smallest failing index" 3 index;
      check Alcotest.string "original exception" "boom3" msg
  | exception e -> raise e

let test_failure_carries_context () =
  (* Job_failed records everything needed to re-run the failing job
     standalone: its label and its job_seed-derived base seed. *)
  Printexc.record_backtrace true;
  match
    Runner.map_jobs ~jobs:2 ~base_seed:9L
      ~label_of:(Printf.sprintf "trial-%d")
      (fun i -> if i = 2 then failwith "kaboom" else i)
      (Array.init 4 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Runner.Job_failed { index; label; seed; backtrace; exn = Failure msg } ->
      check Alcotest.int "failing index" 2 index;
      check Alcotest.string "label" "trial-2" label;
      (match seed with
      | Some s -> check Alcotest.int64 "seed of the failing job" (Runner.job_seed 9L 2) s
      | None -> Alcotest.fail "seed must be stamped when base_seed is given");
      check Alcotest.string "original exception" "kaboom" msg;
      Alcotest.(check bool) "backtrace captured on the worker" true
        (String.length backtrace > 0);
      (* Without base_seed the failure is unstamped. *)
      (match
         Runner.map_jobs ~jobs:1 (fun _ -> failwith "x") [| 0 |]
       with
      | _ -> Alcotest.fail "expected Job_failed"
      | exception Runner.Job_failed { seed = None; _ } -> ()
      | exception Runner.Job_failed _ -> Alcotest.fail "no base_seed, no seed")

let test_pool_reusable_after_failure () =
  Runner.with_pool ~domains:2 (fun pool ->
      (match
         Runner.map_jobs ~pool ~jobs:4 (fun i -> if i = 1 then failwith "x" else i)
           (Array.init 4 (fun i -> i))
       with
      | _ -> Alcotest.fail "expected Job_failed"
      | exception Runner.Job_failed _ -> ());
      check (Alcotest.array Alcotest.int) "pool still works"
        (Array.init 4 (fun i -> i))
        (Runner.map_jobs ~pool ~jobs:4 (fun i -> i) (Array.init 4 (fun i -> i))))

(* --- submit / await / nesting -------------------------------------- *)

let test_submit_await () =
  Runner.with_pool ~domains:2 (fun pool ->
      let futs = List.init 16 (fun i -> Runner.submit pool (fun () -> i * 3)) in
      List.iteri (fun i f -> check Alcotest.int "future value" (i * 3) (Runner.await f)) futs)

let test_await_reraises () =
  Runner.with_pool ~domains:1 (fun pool ->
      let f = Runner.submit pool (fun () -> failwith "direct") in
      match Runner.await f with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg -> check Alcotest.string "original message" "direct" msg)

let nested_sum pool =
  let outer =
    Runner.submit pool (fun () ->
        let subs = List.init 4 (fun i -> Runner.submit pool (fun () -> i * 10)) in
        List.fold_left (fun acc f -> acc + Runner.await f) 0 subs)
  in
  Runner.await outer

let test_nested_submit () =
  (* Help-first await makes nesting safe even when every worker is
     occupied by the outer job (domains:1), and even with no workers at
     all (domains:0 — the awaiting caller runs everything). *)
  Runner.with_pool ~domains:1 (fun pool ->
      check Alcotest.int "one worker" 60 (nested_sum pool));
  Runner.with_pool ~domains:0 (fun pool ->
      check Alcotest.int "zero workers" 60 (nested_sum pool))

let test_shutdown_rejects_submit () =
  let pool = Runner.create ~domains:1 () in
  Runner.shutdown pool;
  Runner.shutdown pool;
  (* idempotent *)
  match Runner.submit pool (fun () -> ()) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- seed partitioning --------------------------------------------- *)

let test_job_seed () =
  check Alcotest.int64 "deterministic" (Runner.job_seed 42L 5) (Runner.job_seed 42L 5);
  let seeds = List.init 16 (Runner.job_seed 42L) in
  check Alcotest.int "distinct across indices" 16
    (List.length (List.sort_uniq Int64.compare seeds));
  Alcotest.(check bool) "distinct across bases" true
    (Runner.job_seed 1L 0 <> Runner.job_seed 2L 0);
  (* Streams seeded from adjacent indices diverge immediately. *)
  let a = Rng.create (Runner.job_seed 7L 0) and b = Rng.create (Runner.job_seed 7L 1) in
  Alcotest.(check bool) "independent streams" true
    (List.init 8 (fun _ -> Rng.int a 1000) <> List.init 8 (fun _ -> Rng.int b 1000))

(* --- Registry / Timer / Obs merge ---------------------------------- *)

let test_registry_merge () =
  let a = Registry.create () and b = Registry.create () in
  Registry.add a "c" 2.0;
  Registry.add b "c" 3.0;
  Registry.add b "c" ~labels:[ ("k", "v") ] 7.0;
  Registry.set a "g" 1.0;
  Registry.set b "g" 5.0;
  Registry.observe a "h" 1.0;
  Registry.observe b "h" 2.0;
  Registry.observe b "h" 4.0;
  Registry.merge ~into:a b;
  Alcotest.(check (float 1e-12)) "counters sum" 5.0 !(Registry.counter a "c");
  Alcotest.(check (float 1e-12)) "missing series created" 7.0
    !(Registry.counter a ~labels:[ ("k", "v") ] "c");
  Alcotest.(check (float 1e-12)) "gauge takes source" 5.0 !(Registry.gauge a "g");
  let s = Histogram.summarize (Registry.histogram a "h") in
  check Alcotest.int "histogram counts merge" 3 s.Histogram.count;
  Alcotest.(check (float 1e-12)) "histogram max merges" 4.0 s.Histogram.max;
  (* Kind clash across registries is a programming error. *)
  let c = Registry.create () in
  Registry.set c "c" 9.0;
  match Registry.merge ~into:a c with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_timer_merge () =
  let a = Timer.create () and b = Timer.create () in
  Timer.record a "x" 1.0;
  Timer.record b "x" 2.0;
  Timer.record b "y" 0.5;
  Timer.merge ~into:a b;
  Alcotest.(check (float 1e-12)) "totals sum" 3.0 (Timer.total a "x");
  Alcotest.(check (float 1e-12)) "missing name created" 0.5 (Timer.total a "y");
  match List.assoc_opt "x" (List.map (fun (n, _, c) -> (n, c)) (Timer.report a)) with
  | Some count -> check Alcotest.int "counts sum" 2 count
  | None -> Alcotest.fail "x missing from report"

let test_obs_fork_merge () =
  Alcotest.(check bool) "fork of disabled stays disabled" false
    (Obs.on (Obs.fork Obs.disabled));
  let parent = Obs.create () in
  let child = Obs.fork parent in
  Alcotest.(check bool) "fork of enabled is enabled" true (Obs.on child);
  Registry.add (Obs.registry parent) "m" 1.0;
  Registry.add (Obs.registry child) "m" 2.0;
  Obs.phase child "p" (fun () -> ());
  Obs.merge ~into:parent child;
  Alcotest.(check (float 1e-12)) "counter merged" 3.0
    !(Registry.counter (Obs.registry parent) "m");
  Alcotest.(check bool) "phase timer merged" true
    (List.exists (fun (n, _, _) -> n = "p") (Timer.report (Obs.timers parent)))

let test_map_jobs_obs_totals () =
  let totals jobs =
    let obs = Obs.create () in
    let out =
      Runner.map_jobs_obs ~obs ~jobs
        (fun ~obs i ->
          if Obs.on obs then begin
            Registry.add (Obs.registry obs) "runner_test_total" 1.0;
            Registry.observe (Obs.registry obs) "runner_test_value" (float_of_int i)
          end;
          i)
        (Array.init 8 (fun i -> i))
    in
    check (Alcotest.array Alcotest.int) "results in order" (Array.init 8 (fun i -> i)) out;
    ( !(Registry.counter (Obs.registry obs) "runner_test_total"),
      (Histogram.summarize (Registry.histogram (Obs.registry obs) "runner_test_value"))
        .Histogram.count )
  in
  let c1, n1 = totals 1 and c4, n4 = totals 4 in
  Alcotest.(check (float 0.0)) "counter total matches sequential" c1 c4;
  Alcotest.(check (float 0.0)) "every job counted" 8.0 c4;
  check Alcotest.int "histogram count matches sequential" n1 n4

(* --- whole experiments are jobs-independent ------------------------ *)

let short_beacon =
  { Exp_common.beacon_config with Beaconing.duration = 600.0 *. 4.0 }

let fig6_cfg =
  lazy (Fig6.config ~beacon:short_beacon ~storage_limits:[ Some 15 ] Exp_common.Tiny)

let test_fig6_determinism () =
  let cfg = Lazy.force fig6_cfg in
  let r1 = Fig6.run ~jobs:1 cfg in
  let r4 = Fig6.run ~jobs:4 cfg in
  check (Alcotest.array Alcotest.int) "optimum" r1.Fig6.optimum r4.Fig6.optimum;
  check Alcotest.int "same algos" (List.length r1.Fig6.algos) (List.length r4.Fig6.algos);
  List.iter2
    (fun (a : Fig6.algo) (b : Fig6.algo) ->
      check Alcotest.string "algo name" a.Fig6.name b.Fig6.name;
      check (Alcotest.array Alcotest.int) a.Fig6.name a.Fig6.flows b.Fig6.flows)
    r1.Fig6.algos r4.Fig6.algos

let test_fig6_merged_registry () =
  (* Counter totals after the fork/merge reduction match the sequential
     run (same observations, only the summation grouping differs). *)
  let counters jobs =
    let obs = Obs.create () in
    ignore (Fig6.run ~obs ~jobs (Lazy.force fig6_cfg));
    List.filter_map
      (fun (s : Registry.sample) ->
        match s.Registry.value with
        | Registry.Counter v -> Some (s.Registry.name, s.Registry.labels, v)
        | Registry.Gauge _ | Registry.Hist _ -> None)
      (Registry.snapshot (Obs.registry obs))
  in
  let c1 = counters 1 and c4 = counters 4 in
  check Alcotest.int "same counter series" (List.length c1) (List.length c4);
  Alcotest.(check bool) "some counters recorded" true (c1 <> []);
  List.iter2
    (fun (n1, l1, v1) (n2, l2, v2) ->
      check Alcotest.string "series name" n1 n2;
      Alcotest.(check bool) "series labels" true (l1 = l2);
      Alcotest.(check bool)
        (Printf.sprintf "total of %s" n1)
        true
        (Float.abs (v1 -. v2) <= 1e-9 *. Float.max 1.0 (Float.abs v1)))
    c1 c4

let test_convergence_determinism () =
  let cfg = Convergence.config ~n_failures:2 Exp_common.Tiny in
  let r1 = Convergence.run ~jobs:1 cfg in
  let r3 = Convergence.run ~jobs:3 cfg in
  Alcotest.(check bool) "identical trial stats" true (r1 = r3);
  check Alcotest.int "requested failures" 2 (List.length r1.Convergence.samples)

let suite =
  [
    ("map_jobs order", `Quick, test_map_jobs_order);
    ("map_jobs small inputs", `Quick, test_map_jobs_small_inputs);
    ("map_jobs on shared pool", `Quick, test_map_jobs_on_shared_pool);
    ("exception propagation", `Quick, test_exception_propagation);
    ("failure carries context", `Quick, test_failure_carries_context);
    ("pool reusable after failure", `Quick, test_pool_reusable_after_failure);
    ("submit/await", `Quick, test_submit_await);
    ("await re-raises", `Quick, test_await_reraises);
    ("nested submit", `Quick, test_nested_submit);
    ("shutdown rejects submit", `Quick, test_shutdown_rejects_submit);
    ("job seeds", `Quick, test_job_seed);
    ("registry merge", `Quick, test_registry_merge);
    ("timer merge", `Quick, test_timer_merge);
    ("obs fork/merge", `Quick, test_obs_fork_merge);
    ("map_jobs_obs totals", `Quick, test_map_jobs_obs_totals);
    ("fig6 jobs-independent", `Slow, test_fig6_determinism);
    ("fig6 merged registry", `Slow, test_fig6_merged_registry);
    ("convergence jobs-independent", `Slow, test_convergence_determinism);
  ]
