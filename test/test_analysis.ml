(* Tests for scion_analysis: Dinic max-flow and the path-quality
   metrics of §5.3. *)

let check = Alcotest.check

let test_maxflow_single_edge () =
  let f = Maxflow.create ~n:2 in
  Maxflow.add_edge f ~src:0 ~dst:1 ~cap:3;
  check Alcotest.int "flow 3" 3 (Maxflow.max_flow f ~src:0 ~dst:1)

let test_maxflow_disconnected () =
  let f = Maxflow.create ~n:3 in
  Maxflow.add_edge f ~src:0 ~dst:1 ~cap:1;
  check Alcotest.int "no path" 0 (Maxflow.max_flow f ~src:0 ~dst:2)

let test_maxflow_same_node () =
  let f = Maxflow.create ~n:2 in
  check Alcotest.int "src=dst" 0 (Maxflow.max_flow f ~src:0 ~dst:0)

let test_maxflow_diamond () =
  (* 0 -> {1,2} -> 3, unit capacities: flow 2. *)
  let f = Maxflow.create ~n:4 in
  Maxflow.add_edge f ~src:0 ~dst:1 ~cap:1;
  Maxflow.add_edge f ~src:0 ~dst:2 ~cap:1;
  Maxflow.add_edge f ~src:1 ~dst:3 ~cap:1;
  Maxflow.add_edge f ~src:2 ~dst:3 ~cap:1;
  check Alcotest.int "diamond" 2 (Maxflow.max_flow f ~src:0 ~dst:3)

let test_maxflow_bottleneck () =
  (* 0 -> 1 (cap 5) -> 2 (cap 2): flow 2. *)
  let f = Maxflow.create ~n:3 in
  Maxflow.add_edge f ~src:0 ~dst:1 ~cap:5;
  Maxflow.add_edge f ~src:1 ~dst:2 ~cap:2;
  check Alcotest.int "bottleneck" 2 (Maxflow.max_flow f ~src:0 ~dst:2)

let test_maxflow_undirected_parallel () =
  let f = Maxflow.create ~n:2 in
  Maxflow.add_undirected f 0 1 ~cap:1;
  Maxflow.add_undirected f 0 1 ~cap:1;
  check Alcotest.int "two parallel links" 2 (Maxflow.max_flow f ~src:0 ~dst:1)

let test_maxflow_undirected_backflow () =
  (* Classic case where an undirected edge is used "backwards":
     0-1, 0-2, 1-3, 2-3, 1-2. Flow 0->3 is 2. *)
  let f = Maxflow.create ~n:4 in
  List.iter
    (fun (a, b) -> Maxflow.add_undirected f a b ~cap:1)
    [ (0, 1); (0, 2); (1, 3); (2, 3); (1, 2) ];
  check Alcotest.int "flow 2" 2 (Maxflow.max_flow f ~src:0 ~dst:3)

let test_maxflow_invalid () =
  let f = Maxflow.create ~n:2 in
  Alcotest.check_raises "bad node" (Invalid_argument "Maxflow.add_edge: node out of range")
    (fun () -> Maxflow.add_edge f ~src:0 ~dst:5 ~cap:1)

let prop_flow_bounded_by_degree =
  (* On random undirected unit-capacity graphs, flow(s,t) <= min(deg s, deg t). *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 10 in
      let* edges = list_size (int_range 1 25) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
      return (n, edges))
  in
  QCheck.Test.make ~name:"flow bounded by endpoint degree" ~count:200 (QCheck.make gen)
    (fun (n, edges) ->
      let f = Maxflow.create ~n in
      let deg = Array.make n 0 in
      List.iter
        (fun (a, b) ->
          if a <> b then begin
            Maxflow.add_undirected f a b ~cap:1;
            deg.(a) <- deg.(a) + 1;
            deg.(b) <- deg.(b) + 1
          end)
        edges;
      let s = 0 and t = n - 1 in
      Maxflow.max_flow f ~src:s ~dst:t <= min deg.(s) deg.(t))

(* --- Path_quality --- *)

let quality_graph () =
  (* 0 ==2== 1 --- 2, 0 --- 2 : optimum 0->1 is 3 (two parallel + via 2). *)
  let b = Graph.builder () in
  let a0 = Graph.add_as b ~core:true (Id.ia 1 1) in
  let a1 = Graph.add_as b ~core:true (Id.ia 1 2) in
  let a2 = Graph.add_as b ~core:true (Id.ia 1 3) in
  Graph.add_link b ~count:2 ~rel:Graph.Core a0 a1;
  Graph.add_link b ~rel:Graph.Core a1 a2;
  Graph.add_link b ~rel:Graph.Core a0 a2;
  Graph.freeze b

let test_optimum () =
  let g = quality_graph () in
  check Alcotest.int "optimum 0->1" 3 (Path_quality.optimum g ~src:0 ~dst:1);
  check Alcotest.int "optimum 0->2" 2 (Path_quality.optimum g ~src:0 ~dst:2)

let test_of_pcbs_subset () =
  let g = quality_graph () in
  (* A single PCB over one of the parallel links gives flow 1. *)
  let direct = List.hd (Graph.links_between g 0 1) in
  let p =
    Pcb.extend
      (Pcb.origin_pcb ~origin:1 ~now:0.0 ~lifetime:600.0)
      ~asn:1 ~ingress:0 ~egress:direct.Graph.b_if ~link:direct.Graph.link_id ~peers:[||]
  in
  check Alcotest.int "single path flow" 1 (Path_quality.of_pcbs g [ p ] ~src:0 ~dst:1);
  check Alcotest.int "empty set" 0 (Path_quality.of_pcbs g [] ~src:0 ~dst:1)

let test_of_as_paths () =
  let g = quality_graph () in
  (* The AS path 0-1 expands to both parallel links. *)
  check Alcotest.int "parallel expansion" 2
    (Path_quality.of_as_paths g [ [ 0; 1 ] ] ~src:0 ~dst:1);
  check Alcotest.int "both AS paths reach optimum" 3
    (Path_quality.of_as_paths g [ [ 0; 1 ]; [ 0; 2; 1 ] ] ~src:0 ~dst:1)

let test_links_of_pcbs_dedup () =
  let g = quality_graph () in
  let direct = List.hd (Graph.links_between g 0 1) in
  let mk () =
    Pcb.extend
      (Pcb.origin_pcb ~origin:1 ~now:0.0 ~lifetime:600.0)
      ~asn:1 ~ingress:0 ~egress:direct.Graph.b_if ~link:direct.Graph.link_id ~peers:[||]
  in
  check Alcotest.int "dedup" 1 (List.length (Path_quality.links_of_pcbs [ mk (); mk () ]))

let test_disseminated_never_beats_optimum () =
  (* End-to-end: run beaconing on a small core and check every stored
     path set's flow is bounded by the optimum. *)
  let full = Caida_like.generate { Caida_like.small_params with Caida_like.n = 150 } in
  let g, _ = Caida_like.core_subset full ~k:20 in
  let cfg =
    { Beaconing.default_config with Beaconing.duration = 600.0 *. 6.0 }
  in
  let out = Beaconing.run g cfg in
  let now = cfg.Beaconing.duration -. 1.0 in
  let pairs = Exp_common.sample_pairs g ~count:20 ~seed:3L in
  Array.iter
    (fun (s, d) ->
      let pcbs = Beacon_store.paths out.Beaconing.stores.(s) ~now ~origin:d in
      let flow = Path_quality.of_pcbs g pcbs ~src:s ~dst:d in
      let opt = Path_quality.optimum g ~src:s ~dst:d in
      Alcotest.(check bool) "bounded by optimum" true (flow <= opt);
      if pcbs <> [] then Alcotest.(check bool) "positive when paths exist" true (flow >= 1))
    pairs

let suite =
  [
    ("maxflow single edge", `Quick, test_maxflow_single_edge);
    ("maxflow disconnected", `Quick, test_maxflow_disconnected);
    ("maxflow same node", `Quick, test_maxflow_same_node);
    ("maxflow diamond", `Quick, test_maxflow_diamond);
    ("maxflow bottleneck", `Quick, test_maxflow_bottleneck);
    ("maxflow undirected parallel", `Quick, test_maxflow_undirected_parallel);
    ("maxflow undirected backflow", `Quick, test_maxflow_undirected_backflow);
    ("maxflow invalid", `Quick, test_maxflow_invalid);
    QCheck_alcotest.to_alcotest prop_flow_bounded_by_degree;
    ("optimum", `Quick, test_optimum);
    ("of_pcbs subset", `Quick, test_of_pcbs_subset);
    ("of_as_paths", `Quick, test_of_as_paths);
    ("links_of_pcbs dedup", `Quick, test_links_of_pcbs_dedup);
    ("disseminated never beats optimum", `Quick, test_disseminated_never_beats_optimum);
  ]
