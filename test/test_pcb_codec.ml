(* Tests for the PCB wire codec. *)

let check = Alcotest.check

let sample_pcb () =
  let p = Pcb.origin_pcb ~origin:7 ~now:1234.5 ~lifetime:21600.0 in
  let p = Pcb.extend p ~asn:7 ~ingress:0 ~egress:3 ~link:100 ~peers:[||] in
  Pcb.extend p ~asn:12 ~ingress:2 ~egress:9 ~link:200 ~peers:[| 55; 66 |]

let pcbs_equal (a : Pcb.t) (b : Pcb.t) =
  a.Pcb.origin = b.Pcb.origin
  && a.Pcb.timestamp = b.Pcb.timestamp
  && a.Pcb.lifetime = b.Pcb.lifetime
  && a.Pcb.hops = b.Pcb.hops
  && a.Pcb.links = b.Pcb.links
  && a.Pcb.key = b.Pcb.key
  && a.Pcb.signatures = b.Pcb.signatures

let test_roundtrip () =
  let p = sample_pcb () in
  match Pcb_codec.decode (Pcb_codec.encode p) with
  | Ok p' -> Alcotest.(check bool) "roundtrip" true (pcbs_equal p p')
  | Error e -> Alcotest.fail e

let test_roundtrip_empty () =
  let p = Pcb.origin_pcb ~origin:0 ~now:0.0 ~lifetime:600.0 in
  match Pcb_codec.decode (Pcb_codec.encode p) with
  | Ok p' -> Alcotest.(check bool) "zero hops" true (pcbs_equal p p')
  | Error e -> Alcotest.fail e

let test_signatures_survive () =
  let ks = Signature.create_keystore () in
  let k7 = Signature.generate ks Signature.Ecdsa_p384 ~id:"as:7" in
  let k12 = Signature.generate ks Signature.Ecdsa_p384 ~id:"as:12" in
  let p = Pcb.origin_pcb ~origin:7 ~now:0.0 ~lifetime:600.0 in
  let p = Pcb.extend p ~asn:7 ~ingress:0 ~egress:3 ~link:100 ~peers:[||] in
  let p = Pcb.with_signature p (Signature.sign k7 (Pcb.signable_bytes p)) in
  let p = Pcb.extend p ~asn:12 ~ingress:2 ~egress:9 ~link:200 ~peers:[||] in
  let p = Pcb.with_signature p (Signature.sign k12 (Pcb.signable_bytes p)) in
  match Pcb_codec.decode (Pcb_codec.encode p) with
  | Error e -> Alcotest.fail e
  | Ok p' ->
      check Alcotest.int "two signatures" 2 (List.length p'.Pcb.signatures);
      (* The outermost signature still verifies on the decoded PCB. *)
      let newest = List.hd p'.Pcb.signatures in
      Alcotest.(check bool) "verifies after decode" true
        (Signature.verify ks ~id:"as:12" ~msg:(Pcb.signable_bytes p') ~signature:newest)

let test_key_recomputed () =
  let p = sample_pcb () in
  match Pcb_codec.decode (Pcb_codec.encode p) with
  | Ok p' ->
      check Alcotest.string "store-compatible key" (Pcb.path_key [| 100; 200 |]) p'.Pcb.key
  | Error e -> Alcotest.fail e

let test_truncation_rejected () =
  let wire = Pcb_codec.encode (sample_pcb ()) in
  for cut = 0 to String.length wire - 1 do
    match Pcb_codec.decode (String.sub wire 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation at %d accepted" cut
  done

let test_trailing_rejected () =
  match Pcb_codec.decode (Pcb_codec.encode (sample_pcb ()) ^ "z") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing byte accepted"

let test_bad_version () =
  let wire = Pcb_codec.encode (sample_pcb ()) in
  match Pcb_codec.decode ("\x63" ^ String.sub wire 1 (String.length wire - 1)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad version accepted"

let test_size () =
  let p = sample_pcb () in
  check Alcotest.int "size" (String.length (Pcb_codec.encode p)) (Pcb_codec.encoded_size p)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"random PCBs roundtrip" ~count:150
    QCheck.(pair (int_bound 100000) (list_of_size (Gen.int_range 0 8) (pair (int_bound 1000) (int_bound 0xFFFF))))
    (fun (origin, hops) ->
      let p = ref (Pcb.origin_pcb ~origin ~now:42.0 ~lifetime:600.0) in
      List.iteri
        (fun i (asn, iface) ->
          p :=
            Pcb.extend !p ~asn ~ingress:(iface land 0xFF) ~egress:(iface lsr 8)
              ~link:(i * 7) ~peers:(Array.init (i mod 3) (fun k -> k + 1)))
        hops;
      match Pcb_codec.decode (Pcb_codec.encode !p) with
      | Ok p' -> pcbs_equal !p p'
      | Error _ -> false)

let test_store_accepts_decoded () =
  (* End-to-end: a decoded PCB behaves like the original in a store. *)
  let s = Beacon_store.create ~limit:5 in
  let p = sample_pcb () in
  ignore (Beacon_store.insert s ~now:1300.0 p);
  match Pcb_codec.decode (Pcb_codec.encode p) with
  | Error e -> Alcotest.fail e
  | Ok p' ->
      (* Same key: treated as the same path (rejected as non-newer). *)
      Alcotest.(check bool) "same-path dedup" true
        (Beacon_store.insert s ~now:1300.0 p' = Beacon_store.Rejected);
      check Alcotest.int "one entry" 1 (Beacon_store.count s ~origin:7)

let suite =
  [
    ("roundtrip", `Quick, test_roundtrip);
    ("roundtrip empty", `Quick, test_roundtrip_empty);
    ("signatures survive", `Quick, test_signatures_survive);
    ("key recomputed", `Quick, test_key_recomputed);
    ("truncation rejected", `Quick, test_truncation_rejected);
    ("trailing rejected", `Quick, test_trailing_rejected);
    ("bad version", `Quick, test_bad_version);
    ("size", `Quick, test_size);
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
    ("store accepts decoded", `Quick, test_store_accepts_decoded);
  ]
