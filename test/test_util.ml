(* Tests for scion_util: RNG, heap, Zipf, stats, bitset, table. *)

let check = Alcotest.check

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_int_invalid () =
  let rng = Rng.create 7L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.create 9L in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_split_independent () =
  let parent = Rng.create 5L in
  let child = Rng.split parent in
  let a = Rng.int64 child and b = Rng.int64 parent in
  Alcotest.(check bool) "split streams differ" true (a <> b)

let test_rng_copy () =
  let a = Rng.create 11L in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_exponential_positive () =
  let rng = Rng.create 21L in
  for _ = 1 to 200 do
    Alcotest.(check bool) "positive" true (Rng.exponential rng 2.0 >= 0.0)
  done

let test_rng_pareto_min () =
  let rng = Rng.create 23L in
  for _ = 1 to 200 do
    Alcotest.(check bool) "at least x_min" true
      (Rng.pareto rng ~alpha:1.5 ~x_min:2.0 >= 2.0)
  done

(* --- Heap --- *)

let test_heap_sorted_drain () =
  let h = Heap.of_list ~cmp:compare [ 5; 1; 4; 1; 3; 9; 2 ] in
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ]
    (Heap.to_sorted_list h)

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop none" None (Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_peek () =
  let h = Heap.of_list ~cmp:compare [ 3; 1; 2 ] in
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  check Alcotest.int "length unchanged" 3 (Heap.length h)

let test_heap_clear () =
  let h = Heap.of_list ~cmp:compare [ 1; 2 ] in
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any list sorted" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = Heap.of_list ~cmp:compare l in
      Heap.to_sorted_list h = List.sort compare l)

(* --- Zipf --- *)

let test_zipf_weights_sum () =
  let z = Zipf.create ~n:50 ~s:1.1 in
  let total = ref 0.0 in
  for k = 0 to 49 do
    total := !total +. Zipf.weight z k
  done;
  Alcotest.(check bool) "weights sum to 1" true (abs_float (!total -. 1.0) < 1e-9)

let test_zipf_monotone () =
  let z = Zipf.create ~n:20 ~s:1.0 in
  for k = 1 to 19 do
    Alcotest.(check bool) "non-increasing" true (Zipf.weight z k <= Zipf.weight z (k - 1))
  done

let test_zipf_sample_bounds () =
  let z = Zipf.create ~n:10 ~s:1.2 in
  let rng = Rng.create 31L in
  for _ = 1 to 500 do
    let k = Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 10)
  done

let test_zipf_head_heavy () =
  let z = Zipf.create ~n:1000 ~s:1.2 in
  let rng = Rng.create 33L in
  let head = ref 0 in
  for _ = 1 to 2000 do
    if Zipf.sample z rng < 10 then incr head
  done;
  Alcotest.(check bool) "top-10 ranks dominate" true (!head > 600)

let test_zipf_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~s:1.0))

(* Distribution check: whatever the seed, the empirical rank
   frequencies of a large sample track the rank-frequency law the
   sampler claims to draw from. 20k draws put the standard error of a
   rank-k frequency below ~0.4%, so a 2% absolute tolerance on the
   heavy head and on the aggregated tail is a real test of the
   inverse-CDF tables, not of the noise. *)
let prop_zipf_matches_law =
  QCheck.Test.make ~name:"zipf samples follow the rank-frequency law" ~count:20
    QCheck.(map Int64.of_int int)
    (fun seed ->
      let n = 50 and s = 1.2 and draws = 20_000 in
      let z = Zipf.create ~n ~s in
      let rng = Rng.create seed in
      let hits = Array.make n 0 in
      for _ = 1 to draws do
        let k = Zipf.sample z rng in
        hits.(k) <- hits.(k) + 1
      done;
      let freq k = float_of_int hits.(k) /. float_of_int draws in
      let head_ok = ref true in
      for k = 0 to 9 do
        if abs_float (freq k -. Zipf.weight z k) > 0.02 then head_ok := false
      done;
      let tail_freq = ref 0.0 and tail_weight = ref 0.0 in
      for k = 10 to n - 1 do
        tail_freq := !tail_freq +. freq k;
        tail_weight := !tail_weight +. Zipf.weight z k
      done;
      !head_ok && abs_float (!tail_freq -. !tail_weight) < 0.02)

(* --- Stats --- *)

let feq msg a b = Alcotest.(check (float 1e-9)) msg a b

let test_stats_mean () = feq "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_mean_empty () = feq "empty mean" 0.0 (Stats.mean [||])

let test_stats_geometric_mean () =
  feq "gm" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |]);
  feq "gm with zero" 0.0 (Stats.geometric_mean [| 0.0; 8.0 |])

let test_stats_quantiles () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  feq "median" 3.0 (Stats.median xs);
  feq "min" 1.0 (Stats.quantile xs 0.0);
  feq "max" 5.0 (Stats.quantile xs 1.0);
  feq "interp" 1.5 (Stats.quantile xs 0.125)

let test_stats_quantile_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.quantile: empty sample")
    (fun () -> ignore (Stats.quantile [||] 0.5))

let test_stats_stddev () =
  feq "stddev" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])

let test_stats_cdf () =
  let c = Stats.cdf [| 1.0; 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "points" 3 (List.length c);
  feq "at 1" 0.5 (Stats.cdf_at c 1.0);
  feq "at 2.5" 0.75 (Stats.cdf_at c 2.5);
  feq "below all" 0.0 (Stats.cdf_at c 0.5);
  feq "above all" 1.0 (Stats.cdf_at c 10.0)

let test_stats_five_number () =
  let f = Stats.five_number [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  feq "p25" 2.0 f.Stats.p25;
  feq "p75" 4.0 f.Stats.p75

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantiles are monotone in q" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 30) (float_range (-100.) 100.)) (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (l, (q1, q2)) ->
      let xs = Array.of_list l in
      let lo = min q1 q2 and hi = max q1 q2 in
      Stats.quantile xs lo <= Stats.quantile xs hi +. 1e-9)

(* --- Bitset --- *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 99;
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "not mem 50" false (Bitset.mem b 50);
  check Alcotest.int "cardinal" 3 (Bitset.cardinal b);
  check (Alcotest.list Alcotest.int) "to_list" [ 0; 63; 99 ] (Bitset.to_list b)

let test_bitset_union () =
  let a = Bitset.create 10 and b = Bitset.create 10 in
  Bitset.add a 1;
  Bitset.add b 2;
  Bitset.union_into ~dst:a b;
  check (Alcotest.list Alcotest.int) "union" [ 1; 2 ] (Bitset.to_list a)

let test_bitset_out_of_range () =
  let b = Bitset.create 5 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add b 5)

let prop_bitset_like_set =
  QCheck.Test.make ~name:"bitset agrees with list-set semantics" ~count:200
    QCheck.(list (int_bound 63))
    (fun l ->
      let b = Bitset.create 64 in
      List.iter (Bitset.add b) l;
      Bitset.to_list b = List.sort_uniq compare l)

(* --- Table --- *)

let test_rng_pick () =
  let rng = Rng.create 77L in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick from array" true (Array.mem (Rng.pick rng arr) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

let test_stats_summary_string () =
  Alcotest.(check bool) "mentions median" true
    (String.length (Stats.summary [| 1.0; 2.0; 3.0 |]) > 10);
  check Alcotest.string "empty" "(empty)" (Stats.summary [||])

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333" ] ] in
  let lines = String.split_on_char '\n' (String.trim s) in
  check Alcotest.int "line count" 4 (List.length lines);
  Alcotest.(check bool) "pads short rows" true
    (List.exists (fun l -> String.trim l = "333") lines)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seeds differ", `Quick, test_rng_seeds_differ);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int invalid", `Quick, test_rng_int_invalid);
    ("rng float bounds", `Quick, test_rng_float_bounds);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng copy", `Quick, test_rng_copy);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("rng exponential positive", `Quick, test_rng_exponential_positive);
    ("rng pareto min", `Quick, test_rng_pareto_min);
    ("heap sorted drain", `Quick, test_heap_sorted_drain);
    ("heap empty", `Quick, test_heap_empty);
    ("heap peek", `Quick, test_heap_peek);
    ("heap clear", `Quick, test_heap_clear);
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    ("zipf weights sum", `Quick, test_zipf_weights_sum);
    ("zipf monotone", `Quick, test_zipf_monotone);
    ("zipf sample bounds", `Quick, test_zipf_sample_bounds);
    ("zipf head heavy", `Quick, test_zipf_head_heavy);
    ("zipf invalid", `Quick, test_zipf_invalid);
    QCheck_alcotest.to_alcotest prop_zipf_matches_law;
    ("stats mean", `Quick, test_stats_mean);
    ("stats mean empty", `Quick, test_stats_mean_empty);
    ("stats geometric mean", `Quick, test_stats_geometric_mean);
    ("stats quantiles", `Quick, test_stats_quantiles);
    ("stats quantile invalid", `Quick, test_stats_quantile_invalid);
    ("stats stddev", `Quick, test_stats_stddev);
    ("stats cdf", `Quick, test_stats_cdf);
    ("stats five number", `Quick, test_stats_five_number);
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
    ("bitset basic", `Quick, test_bitset_basic);
    ("bitset union", `Quick, test_bitset_union);
    ("bitset out of range", `Quick, test_bitset_out_of_range);
    QCheck_alcotest.to_alcotest prop_bitset_like_set;
    ("rng pick", `Quick, test_rng_pick);
    ("stats summary string", `Quick, test_stats_summary_string);
    ("table render", `Quick, test_table_render);
  ]
