(* Tests for the latency extension: geo latencies, Dijkstra, the
   latency-aware beaconing variant and the convergence experiment. *)

let check = Alcotest.check

let small_graph () =
  let b = Graph.builder () in
  for i = 0 to 3 do
    ignore (Graph.add_as b ~core:true ~cities:[| i |] (Id.ia 1 (i + 1)))
  done;
  Graph.add_link b ~rel:Graph.Core 0 1;
  Graph.add_link b ~rel:Graph.Core 1 2;
  Graph.add_link b ~rel:Graph.Core 2 3;
  Graph.add_link b ~rel:Graph.Core 0 3;
  Graph.freeze b

(* --- Geo --- *)

let test_city_position_deterministic () =
  check (Alcotest.pair (Alcotest.float 1e-9) (Alcotest.float 1e-9)) "stable"
    (Geo.city_position 42) (Geo.city_position 42);
  let x, y = Geo.city_position 7 in
  Alcotest.(check bool) "within the plane" true
    (x >= 0.0 && x <= 10_000.0 && y >= 0.0 && y <= 10_000.0)

let test_link_latency_positive_deterministic () =
  let g = small_graph () in
  for l = 0 to Graph.num_links g - 1 do
    let lat = Geo.link_latency_ms g l in
    Alcotest.(check bool) "positive" true (lat > 0.0);
    Alcotest.(check (float 1e-12)) "deterministic" lat (Geo.link_latency_ms g l)
  done

let test_shared_city_is_metro () =
  (* Two ASes sharing a city get a metro-range latency; two on distant
     cities pay fibre distance. *)
  let b = Graph.builder () in
  let a0 = Graph.add_as b ~core:true ~cities:[| 1; 2 |] (Id.ia 1 1) in
  let a1 = Graph.add_as b ~core:true ~cities:[| 2; 3 |] (Id.ia 1 2) in
  let a2 = Graph.add_as b ~core:true ~cities:[| 9 |] (Id.ia 1 3) in
  Graph.add_link b ~rel:Graph.Core a0 a1;
  Graph.add_link b ~rel:Graph.Core a0 a2;
  let g = Graph.freeze b in
  let metro = Geo.link_latency_ms g 0 in
  Alcotest.(check bool) "metro link under 3 ms" true (metro <= 3.0)

let test_latency_table_and_path () =
  let g = small_graph () in
  let t = Geo.latency_table g in
  check Alcotest.int "one entry per link" (Graph.num_links g) (Array.length t);
  Alcotest.(check (float 1e-9)) "path sums" (t.(0) +. t.(1))
    (Geo.path_latency_ms t [| 0; 1 |]);
  Alcotest.(check (float 1e-9)) "empty path" 0.0 (Geo.path_latency_ms t [||])

(* --- Dijkstra --- *)

let test_dijkstra_simple () =
  let g = small_graph () in
  let weights = [| 1.0; 1.0; 1.0; 10.0 |] in
  let dist = Latency_paths.dijkstra g ~weights ~src:0 in
  Alcotest.(check (float 1e-9)) "self" 0.0 dist.(0);
  Alcotest.(check (float 1e-9)) "one hop" 1.0 dist.(1);
  (* 0->3: direct costs 10, around the ring costs 3. *)
  Alcotest.(check (float 1e-9)) "takes the cheap way" 3.0 dist.(3)

let test_dijkstra_unreachable () =
  let b = Graph.builder () in
  ignore (Graph.add_as b ~core:true (Id.ia 1 1));
  ignore (Graph.add_as b ~core:true (Id.ia 1 2));
  let g = Graph.freeze b in
  let dist = Latency_paths.dijkstra g ~weights:[||] ~src:0 in
  Alcotest.(check bool) "unreachable is infinite" true (dist.(1) = infinity)

let test_dijkstra_negative_rejected () =
  let g = small_graph () in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Latency_paths.dijkstra: negative weight") (fun () ->
      ignore (Latency_paths.dijkstra g ~weights:[| -1.0; 1.0; 1.0; 1.0 |] ~src:0))

let test_stored_best_latency () =
  let weights = [| 2.0; 3.0; 4.0 |] in
  let mk links =
    let p = ref (Pcb.origin_pcb ~origin:0 ~now:0.0 ~lifetime:600.0) in
    List.iter
      (fun l -> p := Pcb.extend !p ~asn:0 ~ingress:0 ~egress:1 ~link:l ~peers:[||])
      links;
    !p
  in
  Alcotest.(check (float 1e-9)) "min over paths" 4.0
    (Latency_paths.stored_best_latency ~weights [ mk [ 0; 1 ]; mk [ 2 ] ]);
  Alcotest.(check bool) "empty set" true
    (Latency_paths.stored_best_latency ~weights [] = infinity)

(* --- Latency-aware beaconing --- *)

let latency_quality_params weights scale =
  {
    Beacon_policy.base = Beacon_policy.default_div_params;
    link_latency_ms = weights;
    latency_scale_ms = scale;
  }

let test_latency_quality () =
  let p = latency_quality_params [||] 100.0 in
  Alcotest.(check (float 1e-9)) "zero latency scores 1" 1.0
    (Beacon_policy.latency_quality p ~total_ms:0.0);
  Alcotest.(check (float 1e-9)) "beyond scale scores 0" 0.0
    (Beacon_policy.latency_quality p ~total_ms:200.0);
  Alcotest.(check (float 1e-9)) "midpoint" 0.5
    (Beacon_policy.latency_quality p ~total_ms:50.0)

let test_latency_aware_beaconing_prefers_fast_paths () =
  (* Square where the direct 0-3 link is very slow: the latency-aware
     algorithm must still deliver the fast way around, and its best
     stored path for (3 -> origin 0) must be the cheap one. *)
  let g = small_graph () in
  let weights = [| 1.0; 1.0; 1.0; 50.0 |] in
  let cfg =
    {
      Beaconing.default_config with
      Beaconing.duration = 600.0 *. 8.0;
      Beaconing.algorithm =
        Beacon_policy.Latency_aware (latency_quality_params weights 100.0);
    }
  in
  let out = Beaconing.run g cfg in
  let now = cfg.Beaconing.duration -. 1.0 in
  let paths = Beacon_store.paths out.Beaconing.stores.(3) ~now ~origin:0 in
  Alcotest.(check bool) "paths found" true (paths <> []);
  let best = Latency_paths.stored_best_latency ~weights paths in
  Alcotest.(check (float 1e-9)) "optimal latency disseminated" 3.0 best

let test_latency_experiment_smoke () =
  let beacon = { Exp_common.beacon_config with Beaconing.duration = 600.0 *. 6.0 } in
  let r = Latency_exp.run (Latency_exp.config ~beacon Exp_common.Tiny) in
  check Alcotest.int "three algorithms" 3 (List.length r.Latency_exp.algos);
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (a.Latency_exp.name ^ " stretch >= 1")
        true
        (a.Latency_exp.mean_stretch >= 1.0 -. 1e-9))
    r.Latency_exp.algos;
  (* The latency-aware variant is at least as good as the baseline. *)
  let find n = List.find (fun a -> a.Latency_exp.name = n) r.Latency_exp.algos in
  Alcotest.(check bool) "latency-aware at most baseline stretch" true
    ((find "SCION Latency-aware (60)").Latency_exp.mean_stretch
    <= (find "SCION Baseline (60)").Latency_exp.mean_stretch +. 0.25)

(* --- Convergence experiment --- *)

let test_convergence_experiment () =
  let r = Convergence.run (Convergence.config ~n_failures:2 Exp_common.Tiny) in
  Alcotest.(check bool) "initial convergence happened" true
    (r.Convergence.initial_convergence_s > 0.0);
  Alcotest.(check bool) "initial updates flowed" true (r.Convergence.initial_updates > 0);
  check Alcotest.int "two samples" 2 (List.length r.Convergence.samples);
  List.iter
    (fun s ->
      Alcotest.(check bool) "bgp churn present" true (s.Convergence.bgp_updates > 0);
      check Alcotest.int "scion needs no control messages" 0
        s.Convergence.scion_control_messages;
      Alcotest.(check bool) "scion failover under a second" true
        (s.Convergence.scion_failover_s < 1.0);
      Alcotest.(check bool) "scion failover below bgp reconvergence" true
        (s.Convergence.scion_failover_s < s.Convergence.bgp_convergence_s);
      Alcotest.(check bool) "spare paths ready" true
        (s.Convergence.scion_alternatives_ready > 0))
    r.Convergence.samples

let suite =
  [
    ("city position deterministic", `Quick, test_city_position_deterministic);
    ("link latency positive+deterministic", `Quick, test_link_latency_positive_deterministic);
    ("shared city is metro", `Quick, test_shared_city_is_metro);
    ("latency table and path", `Quick, test_latency_table_and_path);
    ("dijkstra simple", `Quick, test_dijkstra_simple);
    ("dijkstra unreachable", `Quick, test_dijkstra_unreachable);
    ("dijkstra negative rejected", `Quick, test_dijkstra_negative_rejected);
    ("stored best latency", `Quick, test_stored_best_latency);
    ("latency quality", `Quick, test_latency_quality);
    ("latency-aware beaconing", `Quick, test_latency_aware_beaconing_prefers_fast_paths);
    ("latency experiment smoke", `Slow, test_latency_experiment_smoke);
    ("convergence experiment", `Slow, test_convergence_experiment);
  ]
