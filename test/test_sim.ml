(* Tests for scion_sim: the discrete-event engine and metrics. *)

let check = Alcotest.check

let test_des_ordering () =
  let sim = Des.create () in
  let log = ref [] in
  Des.schedule sim ~delay:3.0 (fun _ -> log := 3 :: !log);
  Des.schedule sim ~delay:1.0 (fun _ -> log := 1 :: !log);
  Des.schedule sim ~delay:2.0 (fun _ -> log := 2 :: !log);
  Des.run sim;
  check (Alcotest.list Alcotest.int) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_des_fifo_same_time () =
  let sim = Des.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Des.schedule sim ~delay:1.0 (fun _ -> log := i :: !log)
  done;
  Des.run sim;
  check (Alcotest.list Alcotest.int) "fifo at equal time" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_des_clock_advances () =
  let sim = Des.create () in
  let seen = ref 0.0 in
  Des.schedule sim ~delay:5.5 (fun s -> seen := Des.now s);
  Des.run sim;
  Alcotest.(check (float 1e-9)) "clock at event time" 5.5 !seen

let test_des_nested_scheduling () =
  let sim = Des.create () in
  let fired = ref [] in
  Des.schedule sim ~delay:1.0 (fun s ->
      fired := Des.now s :: !fired;
      Des.schedule s ~delay:2.0 (fun s' -> fired := Des.now s' :: !fired));
  Des.run sim;
  check (Alcotest.list (Alcotest.float 1e-9)) "nested event at 3.0" [ 1.0; 3.0 ]
    (List.rev !fired)

let test_des_run_until () =
  let sim = Des.create () in
  let count = ref 0 in
  Des.every sim ~interval:1.0 (fun _ -> incr count);
  Des.run ~until:5.5 sim;
  check Alcotest.int "five firings" 5 !count;
  Alcotest.(check (float 1e-9)) "clock at until" 5.5 (Des.now sim);
  Alcotest.(check bool) "event still pending" true (Des.pending sim > 0)

let test_des_every_until () =
  let sim = Des.create () in
  let count = ref 0 in
  Des.every sim ~interval:1.0 ~start:0.0 ~until:3.0 (fun _ -> incr count);
  Des.run sim;
  check Alcotest.int "fires at 0,1,2,3" 4 !count

let test_des_negative_delay () =
  let sim = Des.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Des.schedule: negative delay")
    (fun () -> Des.schedule sim ~delay:(-1.0) (fun _ -> ()))

let test_des_past_time () =
  let sim = Des.create () in
  Des.schedule sim ~delay:2.0 (fun _ -> ());
  Des.run sim;
  Alcotest.check_raises "past" (Invalid_argument "Des.schedule_at: time is in the past")
    (fun () -> Des.schedule_at sim ~time:1.0 (fun _ -> ()))

let test_des_step () =
  let sim = Des.create () in
  Des.schedule sim ~delay:1.0 (fun _ -> ());
  Alcotest.(check bool) "one step" true (Des.step sim);
  Alcotest.(check bool) "empty" false (Des.step sim)

(* Regression: interval 0.1 accumulates float drift (0.1 is not exact
   in binary), so the naive [now +. interval] recurrence lands at
   0.30000000000000004 > until and skipped the boundary tick. Tick
   times must be derived multiplicatively from the start. *)
let test_des_every_boundary_drift () =
  let sim = Des.create () in
  let times = ref [] in
  Des.every sim ~interval:0.1 ~start:0.0 ~until:0.3 (fun s ->
      times := Des.now s :: !times);
  Des.run sim;
  check Alcotest.int "fires at 0, 0.1, 0.2 and 0.3" 4 (List.length !times);
  Alcotest.(check (float 1e-9)) "last tick on the boundary" 0.3 (List.hd !times)

let test_des_every_start_beyond_until () =
  let sim = Des.create () in
  let count = ref 0 in
  Des.every sim ~interval:1.0 ~start:5.0 ~until:2.0 (fun _ -> incr count);
  Des.run sim;
  check Alcotest.int "never fires" 0 !count

(* An event scheduled with delay 0 from inside a handler runs at the
   same instant but after everything already queued for that time. *)
let test_des_same_instant_nested () =
  let sim = Des.create () in
  let log = ref [] in
  Des.schedule sim ~delay:1.0 (fun s ->
      log := "a" :: !log;
      Des.schedule s ~delay:0.0 (fun _ -> log := "nested" :: !log));
  Des.schedule sim ~delay:1.0 (fun _ -> log := "b" :: !log);
  Des.run sim;
  check
    (Alcotest.list Alcotest.string)
    "nested after queued peers" [ "a"; "b"; "nested" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "no time advance" 1.0 (Des.now sim)

(* Two periodic streams sharing tick instants interleave in creation
   order at every shared instant. *)
let test_des_interleaved_every () =
  let sim = Des.create () in
  let log = ref [] in
  Des.every sim ~interval:1.0 ~start:1.0 ~until:2.0 (fun _ -> log := "x" :: !log);
  Des.every sim ~interval:1.0 ~start:1.0 ~until:2.0 (fun _ -> log := "y" :: !log);
  Des.run sim;
  check
    (Alcotest.list Alcotest.string)
    "x before y at each instant" [ "x"; "y"; "x"; "y" ] (List.rev !log)

let test_des_nan_guards () =
  let sim = Des.create () in
  Alcotest.check_raises "nan delay" (Invalid_argument "Des.schedule: nan delay")
    (fun () -> Des.schedule sim ~delay:nan (fun _ -> ()));
  Alcotest.check_raises "nan time" (Invalid_argument "Des.schedule_at: time is nan")
    (fun () -> Des.schedule_at sim ~time:nan (fun _ -> ()))

(* The engine's own instrumentation: event counter and queue-depth
   histogram appear when an enabled obs context is passed. *)
let test_des_obs_instrumentation () =
  let obs = Obs.create () in
  let sim = Des.create ~obs () in
  for i = 1 to 100 do
    Des.schedule sim ~delay:(float_of_int i) (fun _ -> ())
  done;
  Des.run sim;
  let c = Registry.counter (Obs.registry obs) "des_events_total" in
  Alcotest.(check (float 1e-9)) "all events counted" 100.0 !c;
  let h = Registry.histogram (Obs.registry obs) "des_queue_depth" in
  Alcotest.(check bool) "queue depth sampled" true (Histogram.count h > 0)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.add m "bytes" 10.0;
  Metrics.add m "bytes" 5.0;
  Metrics.incr m "msgs";
  Alcotest.(check (float 1e-9)) "sum" 15.0 (Metrics.get m "bytes");
  Alcotest.(check (float 1e-9)) "incr" 1.0 (Metrics.get m "msgs");
  Alcotest.(check (float 1e-9)) "unknown" 0.0 (Metrics.get m "nope");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 1e-9)))
    "sorted" [ ("bytes", 15.0); ("msgs", 1.0) ] (Metrics.to_sorted_list m);
  Metrics.reset m;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Metrics.get m "bytes")

(* reset zeroes values but keeps the keys (stable series identity for
   windowed reporting); clear drops everything. *)
let test_metrics_reset_vs_clear () =
  let m = Metrics.create () in
  Metrics.add m "bytes" 10.0;
  Metrics.incr m "msgs";
  Metrics.reset m;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 1e-9)))
    "keys survive reset at 0" [ ("bytes", 0.0); ("msgs", 0.0) ]
    (Metrics.to_sorted_list m);
  Metrics.add m "bytes" 2.0;
  Alcotest.(check (float 1e-9)) "accumulates after reset" 2.0 (Metrics.get m "bytes");
  Metrics.clear m;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 1e-9)))
    "clear drops keys" [] (Metrics.to_sorted_list m)

let suite =
  [
    ("des ordering", `Quick, test_des_ordering);
    ("des fifo same time", `Quick, test_des_fifo_same_time);
    ("des clock advances", `Quick, test_des_clock_advances);
    ("des nested scheduling", `Quick, test_des_nested_scheduling);
    ("des run until", `Quick, test_des_run_until);
    ("des every until", `Quick, test_des_every_until);
    ("des negative delay", `Quick, test_des_negative_delay);
    ("des past time", `Quick, test_des_past_time);
    ("des step", `Quick, test_des_step);
    ("des every boundary drift", `Quick, test_des_every_boundary_drift);
    ("des every start beyond until", `Quick, test_des_every_start_beyond_until);
    ("des same-instant nested", `Quick, test_des_same_instant_nested);
    ("des interleaved every", `Quick, test_des_interleaved_every);
    ("des nan guards", `Quick, test_des_nan_guards);
    ("des obs instrumentation", `Quick, test_des_obs_instrumentation);
    ("metrics", `Quick, test_metrics);
    ("metrics reset vs clear", `Quick, test_metrics_reset_vs_clear);
  ]
