(* Tests for scion_sim: the discrete-event engine and metrics. *)

let check = Alcotest.check

let test_des_ordering () =
  let sim = Des.create () in
  let log = ref [] in
  Des.schedule sim ~delay:3.0 (fun _ -> log := 3 :: !log);
  Des.schedule sim ~delay:1.0 (fun _ -> log := 1 :: !log);
  Des.schedule sim ~delay:2.0 (fun _ -> log := 2 :: !log);
  Des.run sim;
  check (Alcotest.list Alcotest.int) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_des_fifo_same_time () =
  let sim = Des.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Des.schedule sim ~delay:1.0 (fun _ -> log := i :: !log)
  done;
  Des.run sim;
  check (Alcotest.list Alcotest.int) "fifo at equal time" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_des_clock_advances () =
  let sim = Des.create () in
  let seen = ref 0.0 in
  Des.schedule sim ~delay:5.5 (fun s -> seen := Des.now s);
  Des.run sim;
  Alcotest.(check (float 1e-9)) "clock at event time" 5.5 !seen

let test_des_nested_scheduling () =
  let sim = Des.create () in
  let fired = ref [] in
  Des.schedule sim ~delay:1.0 (fun s ->
      fired := Des.now s :: !fired;
      Des.schedule s ~delay:2.0 (fun s' -> fired := Des.now s' :: !fired));
  Des.run sim;
  check (Alcotest.list (Alcotest.float 1e-9)) "nested event at 3.0" [ 1.0; 3.0 ]
    (List.rev !fired)

let test_des_run_until () =
  let sim = Des.create () in
  let count = ref 0 in
  Des.every sim ~interval:1.0 (fun _ -> incr count);
  Des.run ~until:5.5 sim;
  check Alcotest.int "five firings" 5 !count;
  Alcotest.(check (float 1e-9)) "clock at until" 5.5 (Des.now sim);
  Alcotest.(check bool) "event still pending" true (Des.pending sim > 0)

let test_des_every_until () =
  let sim = Des.create () in
  let count = ref 0 in
  Des.every sim ~interval:1.0 ~start:0.0 ~until:3.0 (fun _ -> incr count);
  Des.run sim;
  check Alcotest.int "fires at 0,1,2,3" 4 !count

let test_des_negative_delay () =
  let sim = Des.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Des.schedule: negative delay")
    (fun () -> Des.schedule sim ~delay:(-1.0) (fun _ -> ()))

let test_des_past_time () =
  let sim = Des.create () in
  Des.schedule sim ~delay:2.0 (fun _ -> ());
  Des.run sim;
  Alcotest.check_raises "past" (Invalid_argument "Des.schedule_at: time is in the past")
    (fun () -> Des.schedule_at sim ~time:1.0 (fun _ -> ()))

let test_des_step () =
  let sim = Des.create () in
  Des.schedule sim ~delay:1.0 (fun _ -> ());
  Alcotest.(check bool) "one step" true (Des.step sim);
  Alcotest.(check bool) "empty" false (Des.step sim)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.add m "bytes" 10.0;
  Metrics.add m "bytes" 5.0;
  Metrics.incr m "msgs";
  Alcotest.(check (float 1e-9)) "sum" 15.0 (Metrics.get m "bytes");
  Alcotest.(check (float 1e-9)) "incr" 1.0 (Metrics.get m "msgs");
  Alcotest.(check (float 1e-9)) "unknown" 0.0 (Metrics.get m "nope");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 1e-9)))
    "sorted" [ ("bytes", 15.0); ("msgs", 1.0) ] (Metrics.to_sorted_list m);
  Metrics.reset m;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Metrics.get m "bytes")

let suite =
  [
    ("des ordering", `Quick, test_des_ordering);
    ("des fifo same time", `Quick, test_des_fifo_same_time);
    ("des clock advances", `Quick, test_des_clock_advances);
    ("des nested scheduling", `Quick, test_des_nested_scheduling);
    ("des run until", `Quick, test_des_run_until);
    ("des every until", `Quick, test_des_every_until);
    ("des negative delay", `Quick, test_des_negative_delay);
    ("des past time", `Quick, test_des_past_time);
    ("des step", `Quick, test_des_step);
    ("metrics", `Quick, test_metrics);
  ]
