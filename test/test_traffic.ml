(* Tests for scion_traffic: capacity model, path-selection strategy
   invariants, demand purity, the checkpointable flow simulation
   (chunked advance vs direct, fault composition, recovery dump
   round-trip) and the swarm multipath comparison. *)

let check = Alcotest.check

(* --- fixtures ---------------------------------------------------------- *)

(* A forwarding path is identified by its link sequence only, which is
   all the traffic engine consumes. *)
let fpath links =
  {
    Fwd_path.crossings = [||];
    links = Array.of_list links;
    combination = Fwd_path.Core_only;
  }

(* Same two-ISD network as the dataplane tests: 2 core ASes joined by
   two parallel core links, two customer chains below. *)
let network () =
  let b = Graph.builder () in
  let c0 = Graph.add_as b ~core:true (Id.ia 1 1) in
  let c1 = Graph.add_as b ~core:true (Id.ia 2 1) in
  let a2 = Graph.add_as b (Id.ia 1 2) in
  let a3 = Graph.add_as b (Id.ia 1 3) in
  let a4 = Graph.add_as b (Id.ia 1 4) in
  let a5 = Graph.add_as b (Id.ia 2 2) in
  Graph.add_link b ~count:2 ~rel:Graph.Core c0 c1;
  Graph.add_link b ~rel:Graph.Provider_customer c0 a2;
  Graph.add_link b ~rel:Graph.Provider_customer c0 a3;
  Graph.add_link b ~rel:Graph.Provider_customer a2 a4;
  Graph.add_link b ~rel:Graph.Peering a2 a3;
  Graph.add_link b ~rel:Graph.Provider_customer c1 a5;
  Graph.freeze b

let beacon_cfg scope =
  {
    Beaconing.default_config with
    Beaconing.scope;
    Beaconing.duration = 600.0 *. 8.0;
    Beaconing.lifetime = 600.0 *. 12.0;
  }

let env =
  lazy
    (let g = network () in
     let core = Beaconing.run g (beacon_cfg Beaconing.Core_beaconing) in
     let intra = Beaconing.run g (beacon_cfg Beaconing.Intra_isd) in
     let cs = Control_service.build ~core ~intra () in
     (g, cs))

let resolve_paths cs demand =
  Array.map
    (fun (src, dst) ->
      let seen = Hashtbl.create 8 in
      Control_service.resolve cs ~src ~dst
      |> List.filter (fun p ->
             let k = Fwd_path.key p in
             if Hashtbl.mem seen k then false
             else begin
               Hashtbl.add seen k ();
               true
             end)
      |> Array.of_list)
    (Demand.pairs demand)

(* --- Link_load --------------------------------------------------------- *)

let test_link_load_capacities () =
  let g = network () in
  let ll = Link_load.create g in
  check Alcotest.int "sized to the graph" (Graph.num_links g)
    (Link_load.n_links ll);
  for l = 0 to Link_load.n_links ll - 1 do
    Alcotest.(check bool) "positive capacity" true (Link_load.capacity_mbps ll l > 0.0)
  done;
  (* Core trunks are fatter than customer access links. *)
  let core_cap = Link_load.capacity_mbps ll 0 in
  let stub_cap = Link_load.capacity_mbps ll 4 in
  Alcotest.(check bool) "core > stub" true (core_cap > stub_cap);
  let half = Link_load.create ~capacity_scale:0.5 g in
  Alcotest.(check (float 1e-9)) "scale multiplies"
    (0.5 *. core_cap)
    (Link_load.capacity_mbps half 0);
  Alcotest.check_raises "scale must be positive"
    (Invalid_argument "Link_load.create: capacity_scale <= 0")
    (fun () -> ignore (Link_load.create ~capacity_scale:0.0 g))

let test_link_load_fair_share () =
  let g = network () in
  let ll = Link_load.create g in
  let path = [| 0; 2 |] in
  check (Alcotest.float 1e-9) "idle admission is thinnest capacity"
    (Float.min (Link_load.capacity_mbps ll 0) (Link_load.capacity_mbps ll 2))
    (Link_load.admission_estimate ll path);
  Link_load.add_path ll path;
  Link_load.add_path ll path;
  check Alcotest.int "both subflows counted" 2 (Link_load.count ll 0);
  let thin = Float.min (Link_load.capacity_mbps ll 0) (Link_load.capacity_mbps ll 2) in
  check (Alcotest.float 1e-9) "fair share splits the bottleneck" (thin /. 2.0)
    (Link_load.fair_share ll path);
  check (Alcotest.float 1e-9) "admission sees one more" (thin /. 3.0)
    (Link_load.admission_estimate ll path);
  Alcotest.(check bool) "bottleneck on the path" true
    (Array.exists (fun l -> l = Link_load.bottleneck ll path) path);
  Link_load.remove_path ll path;
  Link_load.remove_path ll path;
  check Alcotest.int "released" 0 (Link_load.count ll 0);
  Alcotest.check_raises "underflow detected"
    (Invalid_argument "Link_load.remove_path: count underflow")
    (fun () -> Link_load.remove_path ll path);
  check (Alcotest.float 1e-9) "empty path share" infinity
    (Link_load.fair_share ll [||]);
  check Alcotest.int "empty path bottleneck" (-1) (Link_load.bottleneck ll [||])

(* --- Strategy ---------------------------------------------------------- *)

(* Two-link world: path 0 rides link 0 (fast), path 1 rides link 1
   (slow), path 2 rides both. *)
let tiny_ctx () =
  let g = network () in
  let load = Link_load.create g in
  let latency_ms = Array.init (Graph.num_links g) (fun l -> 5.0 +. float_of_int l) in
  { Strategy.latency_ms; load }

let offered_fixture = [| fpath [ 0 ]; fpath [ 1 ]; fpath [ 0; 1 ] |]

let test_strategy_contract () =
  let ctx = tiny_ctx () in
  List.iter
    (fun s ->
      check Alcotest.int "empty offer, empty selection" 0
        (Array.length (Strategy.select s ctx ~width:2 [||]));
      Alcotest.check_raises "width must be positive"
        (Invalid_argument "Strategy.select: width < 1") (fun () ->
          ignore (Strategy.select s ctx ~width:0 offered_fixture));
      List.iter
        (fun width ->
          let sel = Strategy.select s ctx ~width offered_fixture in
          Alcotest.(check bool) "at least one path" true (Array.length sel >= 1);
          Alcotest.(check bool) "at most width" true (Array.length sel <= width);
          Array.iter
            (fun i ->
              Alcotest.(check bool) "index into offered" true
                (i >= 0 && i < Array.length offered_fixture))
            sel;
          check Alcotest.int "distinct indices"
            (Array.length sel)
            (List.length (List.sort_uniq compare (Array.to_list sel)));
          Alcotest.(check bool) "deterministic" true
            (sel = Strategy.select s ctx ~width offered_fixture))
        [ 1; 2; 3; 5 ])
    Strategy.all

let test_strategy_latency_greedy () =
  let ctx = tiny_ctx () in
  let sel = Strategy.select Strategy.Latency_greedy ctx ~width:1 offered_fixture in
  check Alcotest.int "fastest path first" 0 sel.(0);
  let sel2 = Strategy.select Strategy.Latency_greedy ctx ~width:2 offered_fixture in
  Alcotest.(check bool) "then next fastest" true (sel2 = [| 0; 1 |])

let test_strategy_diversity () =
  let ctx = tiny_ctx () in
  let sel = Strategy.select Strategy.Diversity_max ctx ~width:2 offered_fixture in
  (* Paths 0 and 1 are link-disjoint; path 2 overlaps both. *)
  Alcotest.(check bool) "disjoint pair chosen" true
    (List.sort compare (Array.to_list sel) = [ 0; 1 ])

let test_strategy_load_adaptive_shifts () =
  let ctx = tiny_ctx () in
  let sel = Strategy.select Strategy.Load_adaptive ctx ~width:1 offered_fixture in
  check Alcotest.int "idle: fattest estimate wins" 0 sel.(0);
  (* Saturate link 0: the adaptive strategy must shift to link 1 while
     the latency-greedy one keeps herding onto the saturated link. *)
  for _ = 1 to 50 do
    Link_load.add_path ctx.Strategy.load [| 0 |]
  done;
  let sel' = Strategy.select Strategy.Load_adaptive ctx ~width:1 offered_fixture in
  check Alcotest.int "saturated: shifts to the idle link" 1 sel'.(0);
  let greedy = Strategy.select Strategy.Latency_greedy ctx ~width:1 offered_fixture in
  check Alcotest.int "greedy ignores load" 0 greedy.(0)

let test_strategy_names () =
  List.iter
    (fun s ->
      match Strategy.of_string (Strategy.name s) with
      | Ok s' -> Alcotest.(check bool) "name round-trips" true (s = s')
      | Error e -> Alcotest.fail e)
    Strategy.all;
  (match Strategy.of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus strategy accepted")

(* --- Demand ------------------------------------------------------------ *)

let small_demand g =
  Demand.create g
    {
      Demand.default_params with
      Demand.n_pairs = 8;
      flows = 400;
      horizon_s = 120.0;
      seed = 42L;
    }

let test_demand_pure_and_sorted () =
  let g, _ = Lazy.force env in
  let d = small_demand g in
  let d' = small_demand g in
  check Alcotest.int "pair count" 8 (Array.length (Demand.pairs d));
  Alcotest.(check bool) "pair sampling deterministic" true
    (Demand.pairs d = Demand.pairs d');
  Array.iter
    (fun (s, t) ->
      Alcotest.(check bool) "pair within graph" true
        (s >= 0 && s < Graph.n g && t >= 0 && t < Graph.n g && s <> t))
    (Demand.pairs d);
  check Alcotest.int "distinct pairs" 8
    (List.length (List.sort_uniq compare (Array.to_list (Demand.pairs d))));
  (* flow i is a pure function of (seed, i), whatever else was asked. *)
  let probe = Demand.flow d 123 in
  ignore (Demand.sorted_flows d);
  ignore (Demand.flow d 7);
  Alcotest.(check bool) "flow attributes pure" true (probe = Demand.flow d 123);
  Alcotest.(check bool) "same seed, same flows" true
    (Demand.flow d 123 = Demand.flow d' 123);
  let sorted = Demand.sorted_flows d in
  check Alcotest.int "all flows sorted" 400 (Array.length sorted);
  Array.iteri
    (fun i (f : Demand.flow_spec) ->
      if i > 0 then
        Alcotest.(check bool) "sorted by arrival" true
          (sorted.(i - 1).Demand.arrival_s <= f.Demand.arrival_s);
      Alcotest.(check bool) "arrival in horizon" true
        (f.Demand.arrival_s >= 0.0 && f.Demand.arrival_s < 120.0);
      Alcotest.(check bool) "positive size" true (f.Demand.size_mbit > 0.0);
      Alcotest.(check bool) "pair in range" true
        (f.Demand.pair >= 0 && f.Demand.pair < 8))
    sorted;
  let other =
    Demand.create g
      { (Demand.params d) with Demand.seed = 43L }
  in
  Alcotest.(check bool) "seed changes the fingerprint" true
    (Demand.config_key d <> Demand.config_key other);
  Alcotest.(check bool) "fingerprint stable" true
    (Demand.config_key d = Demand.config_key d')

(* --- Recovery dump (shared with the resilience scenario) --------------- *)

let test_recovery_dump_roundtrip () =
  let r = Recovery.create () in
  Recovery.record_event r ~action:Fault_plan.Down;
  Recovery.record_affected r ~pair:(3, 1);
  Recovery.record_affected r ~pair:(0, 2);
  Recovery.record_affected r ~pair:(3, 1);
  Recovery.record_failover r ~recovery_s:0.25;
  Recovery.record_failover r ~recovery_s:0.75;
  Recovery.open_blackout r ~now:10.0 ~pair:(5, 6);
  Recovery.close_blackout r ~now:14.0 ~pair:(5, 6);
  Recovery.open_blackout r ~now:20.0 ~pair:(7, 8);
  Recovery.record_revocation r ~segments:4 ~msgs:9 ~bytes:512;
  let d = Recovery.dump r in
  check Alcotest.int "affected deduped" 2 (List.length d.Recovery.d_affected);
  Alcotest.(check bool) "affected sorted" true
    (d.Recovery.d_affected = List.sort compare d.Recovery.d_affected);
  check Alcotest.int "open window carried" 1 (List.length d.Recovery.d_open);
  Alcotest.(check bool) "dump round-trips" true
    (Recovery.dump (Recovery.of_dump d) = d);
  (* The restored copy keeps accounting live: the open window closes. *)
  let r' = Recovery.of_dump d in
  Recovery.close_blackout r' ~now:26.0 ~pair:(7, 8);
  let s = Recovery.summary r' in
  check Alcotest.int "failovers preserved" 2 s.Recovery.failovers;
  check Alcotest.int "blackouts counted" 2 s.Recovery.blackouts;
  check (Alcotest.float 1e-9) "blackout time summed" 10.0
    s.Recovery.blackout_time_s

(* --- Traffic_sim ------------------------------------------------------- *)

let sim_config ?(strategy = Strategy.Latency_greedy) ?(width = 1) ?(plan = [])
    () =
  let g, cs = Lazy.force env in
  let demand = small_demand g in
  let paths = resolve_paths cs demand in
  let latency_ms = Geo.latency_table g in
  {
    Traffic_sim.graph = g;
    paths;
    latency_ms;
    demand;
    strategy;
    width;
    plan = Fault_plan.plan ~seed:5L plan;
    capacity_scale = 0.001;
    slot_s = 1.0;
    slots = 200;
    adapt_margin = (if strategy = Strategy.Load_adaptive then 1.25 else 0.0);
    metric_labels = [ ("workload", "test") ];
  }

let outage_events () =
  (* Fail one link of the most popular pair's first offered path
     mid-run, long enough to hit many admissions. *)
  let cfg = sim_config () in
  let link =
    let p = cfg.Traffic_sim.paths.(0).(0) in
    p.Fwd_path.links.(0)
  in
  [ Fault_plan.Link_down { link; at = 40.0; duration = 40.0 } ]

let run_to_end cfg =
  let t = Traffic_sim.create cfg in
  Traffic_sim.advance t ~upto:(Traffic_sim.slots_total t);
  Traffic_sim.finish t;
  t

let test_sim_accounting () =
  let cfg = sim_config () in
  let t = run_to_end cfg in
  let r = Traffic_sim.report t in
  check Alcotest.int "every slot processed" 200 r.Traffic_sim.slots_done;
  check Alcotest.int "arrivals partitioned" 400
    (r.Traffic_sim.flows_admitted + r.Traffic_sim.flows_rejected);
  check Alcotest.int "admitted partitioned" r.Traffic_sim.flows_admitted
    (r.Traffic_sim.flows_completed + r.Traffic_sim.flows_unfinished);
  Alcotest.(check bool) "flows completed" true (r.Traffic_sim.flows_completed > 0);
  Alcotest.(check bool) "traffic delivered" true
    (r.Traffic_sim.delivered_mbit > 0.0);
  Alcotest.(check bool) "mean fct positive" true (r.Traffic_sim.mean_fct_s > 0.0);
  Alcotest.(check bool) "utilization sane" true
    (r.Traffic_sim.max_utilization >= r.Traffic_sim.mean_utilization
    && r.Traffic_sim.mean_utilization > 0.0)

let test_sim_chunked_equals_direct () =
  let cfg = sim_config ~strategy:Strategy.Load_adaptive ~width:2
      ~plan:(outage_events ()) ()
  in
  let direct = run_to_end cfg in
  (* Chunked: advance 7 slots at a time, snapshotting and restoring
     between every chunk — the checkpoint/resume path. *)
  let state = ref (Traffic_sim.encode (Traffic_sim.create cfg)) in
  let upto = ref 0 in
  while !upto < 200 do
    upto := min 200 (!upto + 7);
    let t = Traffic_sim.restore cfg !state in
    Traffic_sim.advance t ~upto:!upto;
    state := Traffic_sim.encode t
  done;
  let chunked = Traffic_sim.restore cfg !state in
  Traffic_sim.finish chunked;
  let t_direct = Traffic_sim.report direct in
  Alcotest.(check bool) "chunked run is byte-identical" true
    (t_direct = Traffic_sim.report chunked);
  Alcotest.(check bool) "registries agree" true
    (Registry.dump (Traffic_sim.registry direct)
    = Registry.dump (Traffic_sim.registry chunked))

let test_sim_restore_rejects_corrupt () =
  let cfg = sim_config () in
  let t = Traffic_sim.create cfg in
  Traffic_sim.advance t ~upto:50;
  let s = Traffic_sim.encode t in
  (match
     Traffic_sim.restore cfg (String.sub s 0 (String.length s / 2))
   with
  | exception Snapshot.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated snapshot accepted");
  let r = Traffic_sim.restore cfg s in
  check Alcotest.int "clock restored" 50 (Traffic_sim.slot r)

let test_sim_fault_composition () =
  let cfg = sim_config ~plan:(outage_events ()) () in
  let t = run_to_end cfg in
  let s = (Traffic_sim.report t).Traffic_sim.recovery in
  check Alcotest.int "down event seen" 1 s.Recovery.events_down;
  check Alcotest.int "up event seen" 1 s.Recovery.events_up;
  Alcotest.(check bool) "outage touched pairs" true (s.Recovery.affected_pairs > 0);
  Alcotest.(check bool) "failovers recorded" true (s.Recovery.failovers > 0);
  (* A fault-free run of the same config books nothing. *)
  let calm = run_to_end (sim_config ()) in
  let c = (Traffic_sim.report calm).Traffic_sim.recovery in
  check Alcotest.int "calm: no failovers" 0 c.Recovery.failovers;
  check Alcotest.int "calm: no blackouts" 0 c.Recovery.blackouts

let test_sim_config_key_sensitivity () =
  let a = sim_config () in
  let b = sim_config ~strategy:Strategy.Diversity_max () in
  Alcotest.(check bool) "same config, same key" true
    (Traffic_sim.config_key a = Traffic_sim.config_key (sim_config ()));
  Alcotest.(check bool) "strategy changes the key" true
    (Traffic_sim.config_key a <> Traffic_sim.config_key b);
  Alcotest.(check bool) "plan changes the key" true
    (Traffic_sim.config_key a
    <> Traffic_sim.config_key (sim_config ~plan:(outage_events ()) ()))

(* --- Swarm ------------------------------------------------------------- *)

let test_swarm_multipath_wins () =
  let g, cs = Lazy.force env in
  let p =
    {
      Swarm.transfers = 150;
      n_pairs = 6;
      file_mbit = 100.0;
      width = 3;
      horizon_s = 60.0;
      drain_s = 300.0;
      seed = 9L;
    }
  in
  let demand = Swarm.demand g p in
  let paths = resolve_paths cs demand in
  let latency_ms = Geo.latency_table g in
  let run mode =
    let cfg =
      Swarm.cell_config ~graph:g ~paths ~latency_ms ~demand
        ~capacity_scale:0.01 ~slot_s:1.0 p mode
    in
    Traffic_sim.report (run_to_end cfg)
  in
  let single = run Swarm.Single_path in
  let multi_diversity = run Swarm.Multi_diversity in
  let multi_adaptive = run Swarm.Multi_adaptive in
  let c = Swarm.compare ~single ~multi_diversity ~multi_adaptive in
  Alcotest.(check bool) "everyone finished some transfers" true
    (single.Traffic_sim.flows_completed > 0
    && multi_diversity.Traffic_sim.flows_completed > 0);
  Alcotest.(check bool) "multipath beats single-path FCT" true
    (multi_diversity.Traffic_sim.mean_fct_s < single.Traffic_sim.mean_fct_s);
  Alcotest.(check bool) "diversity speedup > 1" true
    (c.Swarm.speedup_diversity > 1.0);
  Alcotest.(check bool) "adaptive multipath also wins" true
    (c.Swarm.speedup_adaptive > 1.0)

(* --- The scenario: jobs-independence ----------------------------------- *)

let test_scenario_jobs_independent () =
  let cfg =
    Traffic_exp.config ~seed:11L ~flows:300 ~swarm_transfers:80
      Exp_common.Tiny
  in
  let a = Traffic_exp.run ~jobs:1 cfg in
  let b = Traffic_exp.run ~jobs:2 cfg in
  Alcotest.(check bool) "jobs=1 equals jobs=2" true
    (Obs_json.to_string (Traffic_exp.to_json a)
    = Obs_json.to_string (Traffic_exp.to_json b));
  check Alcotest.int "clean exit" 0 (Traffic_exp.exit_code a);
  (match a.Traffic_exp.swarm with
  | None -> Alcotest.fail "swarm comparison missing"
  | Some c ->
      Alcotest.(check bool) "scenario swarm speedup > 1" true
        (c.Swarm.speedup_diversity > 1.0));
  Alcotest.(check bool) "outage produced failovers" true
    (List.exists
       (fun (cell : Traffic_exp.cell_result) ->
         match cell.Traffic_exp.report with
         | Some r -> r.Traffic_sim.recovery.Recovery.failovers > 0
         | None -> false)
       a.Traffic_exp.cells)

let suite =
  [
    ("link-load capacities", `Quick, test_link_load_capacities);
    ("link-load fair share", `Quick, test_link_load_fair_share);
    ("strategy contract", `Quick, test_strategy_contract);
    ("strategy latency-greedy", `Quick, test_strategy_latency_greedy);
    ("strategy diversity", `Quick, test_strategy_diversity);
    ("strategy load-adaptive shifts", `Quick, test_strategy_load_adaptive_shifts);
    ("strategy names", `Quick, test_strategy_names);
    ("demand pure and sorted", `Quick, test_demand_pure_and_sorted);
    ("recovery dump round-trip", `Quick, test_recovery_dump_roundtrip);
    ("sim accounting", `Quick, test_sim_accounting);
    ("sim chunked equals direct", `Quick, test_sim_chunked_equals_direct);
    ("sim restore rejects corrupt", `Quick, test_sim_restore_rejects_corrupt);
    ("sim fault composition", `Quick, test_sim_fault_composition);
    ("sim config-key sensitivity", `Quick, test_sim_config_key_sensitivity);
    ("swarm multipath wins", `Slow, test_swarm_multipath_wins);
    ("scenario jobs-independent", `Slow, test_scenario_jobs_independent);
  ]
