(* ISP and end-domain deployment models (§3.3-3.4, Figures 2 and 3):
   compare the three inter-ISP link underlays under a BGP failure and
   an IP flood, and run legacy IP hosts through a SIG.

   Run with:  dune exec examples/deployment_models.exe *)

let () = print_endline "=== Deployment models (Figures 2 and 3) ==="

(* A small provider ring with one customer AS per provider. *)
let g =
  let b = Graph.builder () in
  let p = Array.init 4 (fun i -> Graph.add_as b ~core:true (Id.ia 1 (i + 1))) in
  for i = 0 to 3 do
    Graph.add_link b ~rel:Graph.Core p.(i) p.((i + 1) mod 4)
  done;
  let c = Array.init 4 (fun i -> Graph.add_as b (Id.ia 1 (10 + i))) in
  Array.iteri (fun i ci -> Graph.add_link b ~rel:Graph.Provider_customer p.(i) ci) c;
  Graph.freeze b

(* --- 1. Fig. 2: link underlays under failure conditions ----------- *)

let describe name plan =
  let ok b = if b then "survives" else "FAILS   " in
  let normal = Isp_deployment.scion_connected g plan ~bgp_failed:false ~ip_flood:false in
  let bgp = Isp_deployment.scion_connected g plan ~bgp_failed:true ~ip_flood:false in
  let flood = Isp_deployment.scion_connected g plan ~bgp_failed:false ~ip_flood:true in
  let both = Isp_deployment.scion_connected g plan ~bgp_failed:true ~ip_flood:true in
  Printf.printf "  %-34s normal:%s  bgp-outage:%s  ip-flood:%s  both:%s\n" name
    (ok normal) (ok bgp) (ok flood) (ok both);
  Printf.printf "  %-34s pair connectivity under BGP outage: %.0f%%\n" ""
    (100.0 *. Isp_deployment.connectivity_under_bgp_failure g plan)

let () =
  print_endline "\nSCION network connectivity per deployment plan:";
  describe "native cross-connect (Fig. 2a)"
    (Isp_deployment.uniform_plan g Isp_deployment.Native_cross_connect);
  describe "router-on-a-stick + host routes"
    (Isp_deployment.uniform_plan g
       (Isp_deployment.Router_on_a_stick { host_routes = true }));
  describe "router-on-a-stick, no host routes"
    (Isp_deployment.uniform_plan g
       (Isp_deployment.Router_on_a_stick { host_routes = false }));
  describe "IP tunnels over the Internet"
    (Isp_deployment.uniform_plan g Isp_deployment.Ip_tunnel);
  (* Fig. 2c: redundant — native + encapsulated per link. Model as the
     native plan (one leg always survives). *)
  print_endline
    "  (Fig. 2c redundant = native + encapsulated per link: behaves like native,\n\
    \   and exposes both legs as separate SCION interfaces for multipath)"

(* --- 2. Fig. 3: end-domain models ---------------------------------- *)

let () =
  print_endline "\nEnd-domain deployment options:";
  List.iter
    (fun m ->
      let c = End_domain.capabilities m in
      Printf.printf "  %-28s own-AS:%b  host-changes:%b  app-path-control:%b  multipath:%b\n"
        (Format.asprintf "%a" End_domain.pp_model m)
        c.End_domain.own_as c.End_domain.host_changes_required
        c.End_domain.application_path_control c.End_domain.multipath;
      Printf.printf "  %-28s equipment: %s\n" "" c.End_domain.premises_equipment)
    [ End_domain.Native_scion_as; End_domain.Cpe_sig; End_domain.Carrier_grade_sig ]

(* --- 3. A SIG in action (Fig. 3b) ---------------------------------- *)

let () =
  print_endline "\nSIG-based customer (case b): legacy IP hosts over SCION";
  let cfg = { Beaconing.default_config with Beaconing.duration = 3600.0 } in
  let core_out = Beaconing.run g { cfg with Beaconing.scope = Beaconing.Core_beaconing } in
  let intra_out = Beaconing.run g { cfg with Beaconing.scope = Beaconing.Intra_isd } in
  let cs = Control_service.build ~core:core_out ~intra:intra_out () in
  let net = Forwarding.network g (Control_service.keys cs) in
  (* Customer AS 4 (first leaf) talks to customer AS 7 (last leaf). *)
  let sig_gw = Sig_gateway.create cs net ~local_as:4 in
  Sig_gateway.add_mapping sig_gw ~prefix:0xC0A80000l ~prefix_len:16 ~as_idx:7;
  let now = Control_service.now cs in
  (match Sig_gateway.send_ip sig_gw ~now ~dst_ip:0xC0A80101l ~payload_bytes:1400 with
  | Ok (Forwarding.Delivered { hops; _ }) ->
      Printf.printf "  192.168.1.1 encapsulated and delivered across %d ASes\n" hops
  | _ -> print_endline "  delivery failed?!");
  let st = Sig_gateway.stats sig_gw in
  Printf.printf "  encapsulation overhead: %d bytes on %d packet(s)\n"
    st.Sig_gateway.encapsulation_overhead_bytes st.Sig_gateway.packets_encapsulated;
  (* A CGSIG (case c) is the same machinery run by the provider, so the
     provider AS hosts the gateway and aggregates many customers. *)
  let cgsig = Sig_gateway.create cs net ~local_as:0 in
  Sig_gateway.add_mapping cgsig ~prefix:0xC0A80000l ~prefix_len:16 ~as_idx:7;
  Sig_gateway.add_mapping cgsig ~prefix:0x0A000000l ~prefix_len:8 ~as_idx:5;
  (match Sig_gateway.send_ip cgsig ~now ~dst_ip:0x0A000001l ~payload_bytes:200 with
  | Ok _ -> print_endline "  CGSIG (case c): provider-side gateway serves SCION-unaware customers"
  | Error _ -> print_endline "  CGSIG path failed?!")
