(* Quickstart: build the SCION network of the paper's Figure 1 (three
   ISDs with 2-3 core ASes each), run core and intra-ISD beaconing,
   resolve an end-to-end path from B-3 to A-6, and forward a packet
   over it — then fail a link and watch the endpoint fail over.

   Run with:  dune exec examples/quickstart.exe *)

let () = print_endline "=== SCION quickstart: the network of Figure 1 ==="

(* --- 1. Topology ------------------------------------------------- *)

(* ISD A: core A-1, A-2; children A-3..A-6.
   ISD B: core B-1, B-2; children B-3..B-5.
   ISD C: core C-1, C-2; children C-3..C-5. *)
let g, names =
  let b = Graph.builder () in
  let names = Hashtbl.create 32 in
  let add name isd asn ~core =
    let idx = Graph.add_as b ~core (Id.ia isd asn) in
    Hashtbl.replace names name idx;
    idx
  in
  let a1 = add "A-1" 1 1 ~core:true and a2 = add "A-2" 1 2 ~core:true in
  let a3 = add "A-3" 1 3 ~core:false and a4 = add "A-4" 1 4 ~core:false in
  let a5 = add "A-5" 1 5 ~core:false and a6 = add "A-6" 1 6 ~core:false in
  let b1 = add "B-1" 2 1 ~core:true and b2 = add "B-2" 2 2 ~core:true in
  let b3 = add "B-3" 2 3 ~core:false and b4 = add "B-4" 2 4 ~core:false in
  let b5 = add "B-5" 2 5 ~core:false in
  let c1 = add "C-1" 3 1 ~core:true and c2 = add "C-2" 3 2 ~core:true in
  let c3 = add "C-3" 3 3 ~core:false and c4 = add "C-4" 3 4 ~core:false in
  let c5 = add "C-5" 3 5 ~core:false in
  (* Core links within and between ISDs (red double arrows in Fig. 1),
     with a redundant pair between A-1 and B-1. *)
  Graph.add_link b ~rel:Graph.Core a1 a2;
  Graph.add_link b ~rel:Graph.Core b1 b2;
  Graph.add_link b ~rel:Graph.Core c1 c2;
  Graph.add_link b ~count:2 ~rel:Graph.Core a1 b1;
  Graph.add_link b ~rel:Graph.Core a2 c1;
  Graph.add_link b ~rel:Graph.Core b2 c2;
  (* Intra-ISD provider-customer links (blue arrows). *)
  Graph.add_link b ~rel:Graph.Provider_customer a1 a3;
  Graph.add_link b ~rel:Graph.Provider_customer a2 a4;
  Graph.add_link b ~rel:Graph.Provider_customer a3 a5;
  Graph.add_link b ~rel:Graph.Provider_customer a4 a5;
  Graph.add_link b ~rel:Graph.Provider_customer a4 a6;
  Graph.add_link b ~rel:Graph.Provider_customer b1 b3;
  Graph.add_link b ~rel:Graph.Provider_customer b2 b3;
  Graph.add_link b ~rel:Graph.Provider_customer b2 b4;
  Graph.add_link b ~rel:Graph.Provider_customer b3 b5;
  Graph.add_link b ~rel:Graph.Provider_customer c1 c3;
  Graph.add_link b ~rel:Graph.Provider_customer c2 c4;
  Graph.add_link b ~rel:Graph.Provider_customer c3 c5;
  (* A peering link between non-core ASes of A and B. *)
  Graph.add_link b ~rel:Graph.Peering a4 b4;
  ignore (a5, b5, c4, c5);
  (Graph.freeze b, names)

let idx name = Hashtbl.find names name
let name_of = Hashtbl.fold (fun n i acc -> (i, n) :: acc) names [] |> List.to_seq |> Hashtbl.of_seq
let pretty i = try Hashtbl.find name_of i with Not_found -> string_of_int i

let () =
  Printf.printf "topology: %d ASes, %d links, %d core ASes\n" (Graph.n g)
    (Graph.num_links g)
    (List.length (Graph.core_ases g))

(* --- 2. Beaconing ------------------------------------------------- *)

let cfg =
  {
    Beaconing.default_config with
    Beaconing.duration = 3600.0;  (* 6 intervals are plenty here *)
    Beaconing.verify_crypto = true;  (* sign and verify every AS entry *)
  }

let core_out = Beaconing.run g { cfg with Beaconing.scope = Beaconing.Core_beaconing }
let intra_out = Beaconing.run g { cfg with Beaconing.scope = Beaconing.Intra_isd }

let () =
  Printf.printf "core beaconing:  %d PCBs, %.1f KB, %d signature failures\n"
    core_out.Beaconing.stats.Beaconing.total_pcbs
    (core_out.Beaconing.stats.Beaconing.total_bytes /. 1024.)
    core_out.Beaconing.stats.Beaconing.crypto_failures;
  Printf.printf "intra beaconing: %d PCBs, %.1f KB\n"
    intra_out.Beaconing.stats.Beaconing.total_pcbs
    (intra_out.Beaconing.stats.Beaconing.total_bytes /. 1024.)

(* --- 3. Path resolution (§2.3) ------------------------------------ *)

let cs = Control_service.build ~core:core_out ~intra:intra_out ()

let src = idx "B-3"
let dst = idx "A-6"

let paths = Control_service.resolve cs ~src ~dst

let () =
  Printf.printf "\npaths from B-3 to A-6 (%d found):\n" (List.length paths);
  List.iteri
    (fun i p ->
      Printf.printf "  %d. [%d hops] %s\n" (i + 1) (Fwd_path.length p)
        (String.concat " -> " (List.map pretty (Fwd_path.ases p))))
    paths

(* --- 4. Data plane: packet-carried forwarding state --------------- *)

let net = Forwarding.network g (Control_service.keys cs)
let ep = Endpoint.create cs net ~src ~dst
let now = Control_service.now cs

let () =
  match Endpoint.send ep ~now () with
  | Forwarding.Delivered { trace; hops } ->
      Printf.printf "\npacket delivered over %d ASes: %s\n" hops
        (String.concat " -> " (List.map pretty trace))
  | Forwarding.Dropped _ -> print_endline "packet dropped?!"

(* --- 5. Fast failover after a link failure (§4.1) ----------------- *)

let () =
  (* Fail one of the redundant A-1 === B-1 core links. *)
  let active = Option.get (Endpoint.active_path ep) in
  let link_on_path = active.Fwd_path.links.(Array.length active.Fwd_path.links / 2) in
  Forwarding.fail_link net link_on_path;
  Printf.printf "\nfailing link %d on the active path...\n" link_on_path;
  match Endpoint.send ep ~now () with
  | Forwarding.Delivered { trace; _ } ->
      Printf.printf "failover #%d delivered via: %s\n" (Endpoint.failovers ep)
        (String.concat " -> " (List.map pretty trace))
  | Forwarding.Dropped _ ->
      print_endline "no alternate path (try failing a different link)"

let () = print_endline "\nDone. See examples/README for the other scenarios."
