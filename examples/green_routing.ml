(* CO2-optimised routing (§3.1 lists it among the workloads SCION's
   path awareness enables, citing "Footprints on the path"). The
   quality-aware construction machinery is metric-agnostic: feeding it
   a per-link carbon-intensity table instead of latencies makes the
   control plane disseminate low-carbon paths, and endpoints can verify
   the property thanks to path transparency.

   Run with:  dune exec examples/green_routing.exe *)

let () = print_endline "=== CO2-optimised routing over SCION ==="

(* A 6-AS core: a short "dirty" backbone (coal-powered region) and a
   longer "green" detour (hydro region). *)
let g =
  let b = Graph.builder () in
  let a = Array.init 6 (fun i -> Graph.add_as b ~core:true (Id.ia 1 (i + 1))) in
  (* dirty backbone: 0 - 1 - 2 *)
  Graph.add_link b ~rel:Graph.Core a.(0) a.(1);
  Graph.add_link b ~rel:Graph.Core a.(1) a.(2);
  (* green detour: 0 - 3 - 4 - 5 - 2 *)
  Graph.add_link b ~rel:Graph.Core a.(0) a.(3);
  Graph.add_link b ~rel:Graph.Core a.(3) a.(4);
  Graph.add_link b ~rel:Graph.Core a.(4) a.(5);
  Graph.add_link b ~rel:Graph.Core a.(5) a.(2);
  Graph.freeze b

(* gCO2 per GB per link: the backbone through AS 1 is carbon-heavy. *)
let carbon = [| 120.0; 150.0; 15.0; 10.0; 12.0; 14.0 |]

let run algorithm =
  Beaconing.run g
    {
      Beaconing.default_config with
      Beaconing.duration = 600.0 *. 8.0;
      Beaconing.algorithm;
    }

let best_carbon out =
  let now = 600.0 *. 8.0 -. 1.0 in
  let paths = Beacon_store.paths out.Beaconing.stores.(2) ~now ~origin:0 in
  List.fold_left
    (fun acc (p : Pcb.t) ->
      min acc (Array.fold_left (fun s l -> s +. carbon.(l)) 0.0 p.Pcb.links))
    infinity paths

let describe out =
  let now = 600.0 *. 8.0 -. 1.0 in
  Beacon_store.paths out.Beaconing.stores.(2) ~now ~origin:0
  |> List.map (fun (p : Pcb.t) ->
         let footprint = Array.fold_left (fun s l -> s +. carbon.(l)) 0.0 p.Pcb.links in
         Printf.sprintf "%s (%.0f gCO2/GB)"
           (String.concat "->"
              (Array.to_list (Array.map (fun (h : Pcb.hop) -> string_of_int h.Pcb.asn) p.Pcb.hops)))
           footprint)
  |> String.concat "\n    "

let () =
  let shortest = run Beacon_policy.Baseline in
  let green =
    run
      (Beacon_policy.Latency_aware
         {
           Beacon_policy.base = Beacon_policy.default_div_params;
           link_latency_ms = carbon (* any per-link cost works *);
           latency_scale_ms = 400.0;
         })
  in
  Printf.printf "paths disseminated to AS 2 (towards origin 0):\n";
  Printf.printf "  shortest-path baseline:\n    %s\n" (describe shortest);
  Printf.printf "  carbon-aware construction:\n    %s\n\n" (describe green);
  Printf.printf "best footprint, baseline:      %.0f gCO2/GB\n" (best_carbon shortest);
  Printf.printf "best footprint, carbon-aware:  %.0f gCO2/GB\n" (best_carbon green);
  print_endline
    "\nSame Eq. 1-3 dissemination machinery, different quality metric — the\n\
     extensibility the paper's §4.2 'optimizing for other criteria' argues for,\n\
     applied to the CO2 use case its deployment section motivates."
