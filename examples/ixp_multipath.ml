(* IXP deployment models (§3.5, Figure 4): the same four member ASes
   interconnected (a) over a big-switch IXP — bilateral peering,
   invisible fabric — and (b) over an IXP that exposes its four sites
   as SCION ASes with redundant inter-site links. Exposing the fabric
   gives members more disjoint paths, higher capacity and failover
   across IXP-internal links.

   Run with:  dune exec examples/ixp_multipath.exe *)

let () = print_endline "=== IXP models: big switch vs exposed topology (Fig. 4) ==="

(* Four member ASes (AS1..AS4 in Fig. 4), each attached at one of the
   four IXP sites; no other interconnection. *)
let base =
  let b = Graph.builder () in
  for i = 0 to 3 do
    ignore (Graph.add_as b ~core:true (Id.ia 1 (i + 1)))
  done;
  Graph.freeze b

let members =
  [
    { Ixp.as_idx = 0; site = 0 };
    { Ixp.as_idx = 1; site = 1 };
    { Ixp.as_idx = 2; site = 2 };
    { Ixp.as_idx = 3; site = 3 };
  ]

(* --- Model 1: big switch ------------------------------------------- *)

let big = Ixp.big_switch base ~members ~full_mesh:true

let () =
  Printf.printf "\nbig switch: %d ASes, %d bilateral peering links\n" (Graph.n big)
    (Graph.num_links big);
  Printf.printf "AS1<->AS2 capacity: %d link(s)\n" (Ixp.member_pair_capacity big 0 1)

(* --- Model 2: exposed topology ------------------------------------- *)

(* Fig. 4's sites 1-4 with redundant links (A..F): a ring plus both
   diagonals, the diagonal site1-site4 being doubled. *)
let exposed =
  Ixp.exposed_topology base ~members ~sites:4
    ~inter_site_links:[ (0, 1, 1); (1, 3, 1); (3, 2, 1); (2, 0, 1); (0, 3, 2) ]
    ~isd:9

let () =
  let g = exposed.Ixp.graph in
  Printf.printf "\nexposed topology: %d ASes (4 IXP site ASes), %d links\n" (Graph.n g)
    (Graph.num_links g);
  Printf.printf "AS1<->AS2 capacity through the fabric: %d (bounded by single-site attachment)\n"
    (Ixp.member_pair_capacity g 0 1);
  Printf.printf "site1<->site4 fabric capacity: %d disjoint routes (A, F, F and via the ring)\n"
    (Ixp.member_pair_capacity g exposed.Ixp.site_as.(0) exposed.Ixp.site_as.(3))

(* --- Multipath + failover through the exposed fabric --------------- *)

let () =
  let g = exposed.Ixp.graph in
  (* Beacon over the IXP fabric: sites are core ASes; member links are
     peering, so treat members as core too for this demo by relabeling
     everything core. *)
  let g = Graph.map_core g (fun _ -> true) in
  let b = Graph.builder () in
  for v = 0 to Graph.n g - 1 do
    let info = Graph.as_info g v in
    ignore (Graph.add_as b ~tier:info.Graph.tier ~core:true info.Graph.ia)
  done;
  for l = 0 to Graph.num_links g - 1 do
    let lk = Graph.link g l in
    Graph.add_link b ~rel:Graph.Core lk.Graph.a lk.Graph.b
  done;
  let g = Graph.freeze b in
  let cfg = { Beaconing.default_config with Beaconing.duration = 3600.0 } in
  let core_out = Beaconing.run g cfg in
  let intra_out = Beaconing.run g { cfg with Beaconing.scope = Beaconing.Intra_isd } in
  let cs = Control_service.build ~core:core_out ~intra:intra_out () in
  let paths = Control_service.resolve cs ~src:0 ~dst:3 in
  Printf.printf "\nAS1 -> AS4 paths through the exposed IXP (%d):\n" (List.length paths);
  List.iteri
    (fun i p ->
      Printf.printf "  %d. %s\n" (i + 1)
        (String.concat " -> "
           (List.map
              (fun v ->
                let ia = (Graph.as_info g v).Graph.ia in
                if ia.Id.isd = 9 then Printf.sprintf "site%d" (ia.Id.asn - 8999)
                else Printf.sprintf "AS%d" (ia.Id.asn))
              (Fwd_path.ases p))))
    paths;
  (* Fail an IXP-internal link; traffic survives via the others. *)
  let net = Forwarding.network g (Control_service.keys cs) in
  let ep = Endpoint.create cs net ~src:0 ~dst:3 in
  let site0 = exposed.Ixp.site_as.(0) and site3 = exposed.Ixp.site_as.(3) in
  let internal = List.hd (Graph.links_between g site0 site3) in
  Forwarding.fail_link net internal.Graph.link_id;
  (match Endpoint.send ep ~now:(Control_service.now cs) () with
  | Forwarding.Delivered { hops; _ } ->
      Printf.printf
        "\nIXP-internal link site1<->site4 failed: delivered anyway over %d ASes \
         (multipath across the fabric)\n"
        hops
  | Forwarding.Dropped _ -> print_endline "dropped?!");
  print_endline
    "\nWith the big-switch model this failure would be invisible to members and\n\
     unroutable-around; exposing the fabric turns IXP redundancy into member-visible\n\
     SCION multipath (the incentive argued in \xc2\xa73.5)."
