(* Bulk transfer over multiple disjoint paths (§3.1 names bulk file
   transfers among the workloads that benefit from SCION's native
   multi-path): an endpoint picks a set of link-disjoint paths from the
   disseminated path pool, stripes chunks across them for aggregate
   capacity, and keeps the transfer running when a link dies mid-way.

   Run with:  dune exec examples/multipath_transfer.exe *)

let () = print_endline "=== Multipath bulk transfer with mid-transfer failover ==="

(* Two sites connected through a well-meshed core with parallel links. *)
let g =
  let b = Graph.builder () in
  let c = Array.init 4 (fun i -> Graph.add_as b ~core:true (Id.ia 1 (i + 1))) in
  Graph.add_link b ~count:2 ~rel:Graph.Core c.(0) c.(1);
  Graph.add_link b ~rel:Graph.Core c.(0) c.(2);
  Graph.add_link b ~rel:Graph.Core c.(1) c.(3);
  Graph.add_link b ~rel:Graph.Core c.(2) c.(3);
  Graph.add_link b ~count:2 ~rel:Graph.Core c.(1) c.(2);
  let src = Graph.add_as b (Id.ia 1 10) in
  let dst = Graph.add_as b (Id.ia 1 11) in
  (* Dual-homed sites: two upstream providers each. *)
  Graph.add_link b ~rel:Graph.Provider_customer c.(0) src;
  Graph.add_link b ~rel:Graph.Provider_customer c.(2) src;
  Graph.add_link b ~rel:Graph.Provider_customer c.(1) dst;
  Graph.add_link b ~rel:Graph.Provider_customer c.(3) dst;
  Graph.freeze b

let src = 4
let dst = 5

let cfg =
  {
    Beaconing.default_config with
    Beaconing.duration = 3600.0;
    Beaconing.algorithm = Beacon_policy.Diversity Beacon_policy.default_div_params;
  }

let core_out = Beaconing.run g { cfg with Beaconing.scope = Beaconing.Core_beaconing }
let intra_out = Beaconing.run g { cfg with Beaconing.scope = Beaconing.Intra_isd }
let cs = Control_service.build ~core:core_out ~intra:intra_out ()
let net = Forwarding.network g (Control_service.keys cs)
let now = Control_service.now cs

(* Greedy link-disjoint path selection from the resolved pool. *)
let disjoint_paths paths =
  let used = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let fresh =
        Array.for_all (fun l -> not (Hashtbl.mem used l)) p.Fwd_path.links
      in
      if fresh then Array.iter (fun l -> Hashtbl.replace used l ()) p.Fwd_path.links;
      fresh)
    paths

let () =
  let pool = Control_service.resolve cs ~src ~dst in
  let lanes = disjoint_paths pool in
  Printf.printf "path pool: %d paths, %d mutually link-disjoint lanes\n"
    (List.length pool) (List.length lanes);
  Printf.printf "theoretical capacity: %dx a single path (paper: N+K sites, not N*K lines)\n\n"
    (List.length lanes);
  (* Stripe 60 chunks round-robin over the lanes; kill a core link a
     third of the way through. *)
  let lanes = Array.of_list lanes in
  let excluded = ref [] in
  let delivered = Array.make (Array.length lanes) 0 in
  let failovers = ref 0 in
  let kill_at = 20 in
  let total_chunks = 60 in
  let victim = ref (-1) in
  for chunk = 0 to total_chunks - 1 do
    if chunk = kill_at then begin
      (* Fail a link on lane 0. *)
      let lane0 = lanes.(0) in
      victim := lane0.Fwd_path.links.(Array.length lane0.Fwd_path.links / 2);
      Forwarding.fail_link net !victim;
      Printf.printf "chunk %d: link %d on lane 1 fails mid-transfer\n" chunk !victim
    end;
    let usable =
      Array.to_list lanes
      |> List.mapi (fun i l -> (i, l))
      |> List.filter (fun (_, l) ->
             not (List.exists (fun bad -> Fwd_path.contains_link l bad) !excluded))
    in
    match usable with
    | [] -> failwith "no usable lanes left"
    | _ -> (
        let i, lane = List.nth usable (chunk mod List.length usable) in
        match Forwarding.forward net ~now (Forwarding.packet lane ~payload_bytes:65536 ()) with
        | Forwarding.Delivered _ -> delivered.(i) <- delivered.(i) + 1
        | Forwarding.Dropped
            { scmp = Some { Scmp.kind = Scmp.Link_failure { link; _ }; _ }; _ } ->
            (* SCMP: stop using paths over that link, resend the chunk
               on the next lane. *)
            excluded := link :: !excluded;
            incr failovers;
            let remaining =
              List.filter
                (fun (_, l) -> not (Fwd_path.contains_link l link))
                usable
            in
            (match remaining with
            | (j, lane') :: _ -> (
                match
                  Forwarding.forward net ~now (Forwarding.packet lane' ~payload_bytes:65536 ())
                with
                | Forwarding.Delivered _ -> delivered.(j) <- delivered.(j) + 1
                | Forwarding.Dropped _ -> failwith "retry failed")
            | [] -> failwith "no disjoint lane left")
        | Forwarding.Dropped _ -> failwith "unexpected drop")
  done;
  Printf.printf "\ntransfer complete: %d chunks over %d lanes (%s), %d failover(s)\n"
    total_chunks (Array.length lanes)
    (String.concat "+" (Array.to_list (Array.map string_of_int delivered)))
    !failovers;
  print_endline
    "The failed lane's chunks moved to the surviving disjoint lanes without any\n\
     routing convergence — the disjointness the diversity algorithm optimises for\n\
     (§4.2) is what makes the aggregate survive."
