(* Leased-line replacement (§3.1): the paper's first production use
   case. A bank connects N branches with K data centres. With leased
   lines that needs N*K circuits; with SCION each site buys one
   connection. We model the Secure-Swiss-Finance-Network-style setup,
   compute the economics, and demonstrate the two properties that made
   the bank adopt SCION: fast failover and geofencing.

   Run with:  dune exec examples/finance_network.exe *)

let branches = 6
let data_centres = 2

let () =
  Printf.printf "=== Leased-line replacement: %d branches, %d data centres ===\n\n"
    branches data_centres

(* --- 1. Economics (§3.1: N*K lines vs N+K connections) ------------ *)

let scenario = { Leased_line.branches; data_centres; redundancy = 1 }

let costs =
  {
    Leased_line.leased_line_monthly = 1200.0;
    scion_connection_monthly = 650.0;
    scion_equipment_once = 4000.0;
  }

let () =
  Printf.printf "leased lines needed:      %d\n" (Leased_line.leased_lines_needed scenario);
  Printf.printf "SCION connections needed: %d\n"
    (Leased_line.scion_connections_needed scenario);
  Printf.printf "monthly saving:           %.0f CHF\n" (Leased_line.monthly_saving scenario costs);
  (match Leased_line.breakeven_months scenario costs with
  | Some m -> Printf.printf "equipment breakeven:      %.1f months\n" m
  | None -> print_endline "equipment breakeven:      never");
  let redundant = { scenario with Leased_line.redundancy = 2 } in
  Printf.printf "with 2x redundancy:       %d lines vs %d connections\n\n"
    (Leased_line.leased_lines_needed redundant)
    (Leased_line.scion_connections_needed redundant);
  print_endline "leased-line properties SCION approximates (\xc2\xa73.1):";
  List.iter
    (fun (prop, matched) ->
      Printf.printf "  [%s] %s\n" (if matched then "x" else " ") prop)
    (Leased_line.properties_match ());
  print_newline ()

(* --- 2. The network ------------------------------------------------

   Three provider ISPs (the SSFN model: Sunrise, Swisscom, SWITCH) form
   the ISD core; every bank site is a leaf AS behind one provider, with
   branches 0 and 1 dual-homed for redundancy. *)

let g, provider_of, site_name =
  let b = Graph.builder () in
  let p1 = Graph.add_as b ~core:true (Id.ia 1 1) in
  let p2 = Graph.add_as b ~core:true (Id.ia 1 2) in
  let p3 = Graph.add_as b ~core:true (Id.ia 1 3) in
  Graph.add_link b ~rel:Graph.Core p1 p2;
  Graph.add_link b ~rel:Graph.Core p2 p3;
  Graph.add_link b ~rel:Graph.Core p1 p3;
  let providers = [| p1; p2; p3 |] in
  let site_name = Hashtbl.create 16 in
  let provider_of = Hashtbl.create 16 in
  let add_site label i =
    let idx = Graph.add_as b (Id.ia 1 (10 + i)) in
    Hashtbl.replace site_name idx label;
    let prov = providers.(i mod 3) in
    Hashtbl.replace provider_of idx prov;
    Graph.add_link b ~rel:Graph.Provider_customer prov idx;
    (* Dual-home the first two branches. *)
    if i < 2 then Graph.add_link b ~rel:Graph.Provider_customer providers.((i + 1) mod 3) idx;
    idx
  in
  (* Evaluation order matters: branches must be added before the data
     centres so their indices come first. *)
  let branch_idx =
    List.init branches (fun i -> add_site (Printf.sprintf "branch-%d" (i + 1)) i)
  in
  let dc_idx =
    List.init data_centres (fun k ->
        add_site (Printf.sprintf "dc-%d" (k + 1)) (branches + k))
  in
  ignore (branch_idx, dc_idx);
  (Graph.freeze b, provider_of, site_name)

let () = ignore provider_of

let labelled prefix =
  Hashtbl.fold
    (fun idx label acc ->
      if String.length label >= String.length prefix
         && String.sub label 0 (String.length prefix) = prefix
      then idx :: acc
      else acc)
    site_name []
  |> List.sort compare

let branch_sites = labelled "branch"
let dc_sites = labelled "dc"

let cfg = { Beaconing.default_config with Beaconing.duration = 3600.0 }
let core_out = Beaconing.run g { cfg with Beaconing.scope = Beaconing.Core_beaconing }
let intra_out = Beaconing.run g { cfg with Beaconing.scope = Beaconing.Intra_isd }
let cs = Control_service.build ~core:core_out ~intra:intra_out ()
let net = Forwarding.network g (Control_service.keys cs)
let now = Control_service.now cs

(* --- 3. Full reachability over the shared network ----------------- *)

let () =
  let total = ref 0 and reachable = ref 0 in
  List.iter
    (fun br ->
      List.iter
        (fun dc ->
          incr total;
          if Control_service.resolve cs ~src:br ~dst:dc <> [] then incr reachable)
        dc_sites)
    branch_sites;
  Printf.printf "branch->DC reachability over SCION: %d/%d pairs\n" !reachable !total

(* --- 4. Fast failover on a dual-homed branch ---------------------- *)

let () =
  let branch = List.hd branch_sites and dc = List.hd dc_sites in
  let ep = Endpoint.create cs net ~src:branch ~dst:dc in
  Printf.printf "\n%s -> %s: %d paths available\n"
    (Hashtbl.find site_name branch) (Hashtbl.find site_name dc)
    (List.length (Endpoint.available_paths ep));
  (* Cut the branch's primary access link. *)
  let access = (List.hd (Graph.links_between g 0 branch)).Graph.link_id in
  Forwarding.fail_link net access;
  match Endpoint.send ep ~now () with
  | Forwarding.Delivered { trace; _ } ->
      Printf.printf "primary access link down -> failover delivered via AS path [%s]\n"
        (String.concat "; " (List.map string_of_int trace))
  | Forwarding.Dropped _ -> print_endline "failover failed?!"

(* --- 5. Geofencing (§3.1) ------------------------------------------

   SCION paths are fully transparent: the customer can verify that
   every traversed AS stays inside the allowed ISD. *)

let () =
  let allowed_isd = 1 in
  let violations = ref 0 and checked = ref 0 in
  List.iter
    (fun br ->
      List.iter
        (fun dc ->
          List.iter
            (fun p ->
              incr checked;
              List.iter
                (fun v ->
                  if (Graph.as_info g v).Graph.ia.Id.isd <> allowed_isd then
                    incr violations)
                (Fwd_path.ases p))
            (Control_service.resolve cs ~src:br ~dst:dc))
        dc_sites)
    branch_sites;
  Printf.printf
    "\ngeofencing: %d paths audited, %d ASes outside ISD %d (leased-line-grade confinement)\n"
    !checked !violations allowed_isd
