(* Benchmark harness.

   Two parts:

   1. Regeneration — every table and figure of the paper is regenerated
      at bench scale (shortened beaconing horizon, Tiny topology) and
      printed in the paper's layout: Table 1, Figure 5, Figures 6a/6b,
      Figures 7/8/9 (Appendix B).

   2. Bechamel micro-benchmarks — one Test.make per artefact covering
      its computational kernel, plus the crypto and data-structure
      primitives everything rests on, and the ablation comparing the
      baseline and diversity selection rounds.

   Run with:  dune exec bench/main.exe [-- --quick] [-- --out FILE]

   --quick runs a smoke-test subset (taxonomy + SCIONLab regeneration,
   50 ms Bechamel quota) for CI; the full mode regenerates every
   artefact with a 500 ms quota. Either way the measured estimates are
   written as machine-readable JSON (default bench.json). *)

open Bechamel
open Toolkit

let line title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* --- Part 1: regenerate every table and figure -------------------- *)

let bench_beacon =
  {
    Beaconing.default_config with
    Beaconing.duration = 600.0 *. 12.0 (* 2 h horizon keeps bench time sane *);
  }

let regenerate ~quick ~jobs () =
  if quick then begin
    (* Smoke subset: the cheap taxonomy plus the 21-AS testbed run. *)
    line "Table 1 — path management overhead comparison";
    Table1.print (Table1.run ~jobs (Table1.config ~measure:false Exp_common.Tiny));
    line "Figures 7/8/9 — SCIONLab testbed (Appendix B)";
    Scionlab_exp.print (Scionlab_exp.run ~jobs (Scionlab_exp.config ()))
  end
  else begin
    line "Table 1 — path management overhead comparison";
    Table1.print (Table1.run ~jobs (Table1.config Exp_common.Tiny));
    line "Figure 5 — control-plane overhead relative to BGP (bench scale)";
    Fig5.print (Fig5.run ~jobs (Fig5.config ~beacon:bench_beacon Exp_common.Tiny));
    line "Figure 6 — path quality (bench scale)";
    Fig6.print
      (Fig6.run ~jobs
         (Fig6.config ~beacon:bench_beacon ~storage_limits:[ Some 15; Some 60 ]
            Exp_common.Tiny));
    line "Figures 7/8/9 — SCIONLab testbed (Appendix B)";
    Scionlab_exp.print (Scionlab_exp.run ~jobs (Scionlab_exp.config ()))
  end

(* --- Part 2: micro-benchmarks -------------------------------------- *)

let small_core =
  lazy
    (let full = Caida_like.generate { Caida_like.small_params with Caida_like.n = 240 } in
     let core, _ = Caida_like.core_subset full ~k:24 in
     core)

let scionlab = lazy (Scionlab.generate Scionlab.default_params)

let one_kib = String.make 1024 'x'

let keys = lazy (Fwd_keys.create ())

let sample_pcb =
  lazy
    (let p = Pcb.origin_pcb ~origin:0 ~now:0.0 ~lifetime:21600.0 in
     Pcb.extend p ~asn:0 ~ingress:0 ~egress:1 ~link:3 ~peers:[||])

(* A mid-run soak trial on the fig5 small core: the state a pathdyn
   checkpoint serializes. *)
let bench_soak =
  lazy
    (let g = Lazy.force small_core in
     let interval = 600.0 in
     let duration = interval *. 6.0 in
     let cfg =
       {
         Soak.graph = g;
         beacon =
           {
             Beaconing.default_config with
             Beaconing.algorithm = Beacon_policy.Baseline;
             Beaconing.storage_limit = 20;
             Beaconing.duration = duration;
           };
         plan =
           Fault_plan.plan ~seed:42L
             [
               Fault_plan.Stochastic
                 { mtbf = 7200.0; mttr = 600.0; start = interval; until = duration };
             ];
         pairs = Array.init 4 (fun i -> (i, i + 8));
         register_top = 3;
         metric_labels = [ ("cell", "bench") ];
       }
     in
     let t = Soak.create cfg in
     Soak.advance t ~upto:6;
     (cfg, t))

let bench_soak_trial = lazy (snd (Lazy.force bench_soak))

let bench_soak_bytes =
  lazy
    (let cfg, t = Lazy.force bench_soak in
     (cfg, Soak.encode t))

(* Traffic-engine kernels on the SCIONLab testbed graph: offered
   paths straight from the control plane, a Zipf demand over them. *)
let bench_traffic =
  lazy
    (let g = Lazy.force scionlab in
     let beacon scope =
       {
         Beaconing.default_config with
         Beaconing.scope;
         Beaconing.duration = 600.0 *. 8.0;
         Beaconing.lifetime = 600.0 *. 12.0;
       }
     in
     let core = Beaconing.run g (beacon Beaconing.Core_beaconing) in
     let intra = Beaconing.run g (beacon Beaconing.Intra_isd) in
     let cs = Control_service.build ~core ~intra () in
     let demand =
       Demand.create g
         {
           Demand.default_params with
           Demand.n_pairs = 24;
           flows = 400;
           horizon_s = 60.0;
           seed = 17L;
         }
     in
     let paths =
       Array.map
         (fun (src, dst) ->
           let seen = Hashtbl.create 8 in
           Control_service.resolve cs ~src ~dst
           |> List.filter (fun p ->
                  let k = Fwd_path.key p in
                  if Hashtbl.mem seen k then false
                  else begin
                    Hashtbl.add seen k ();
                    true
                  end)
           |> Array.of_list)
         (Demand.pairs demand)
     in
     let cfg =
       {
         Traffic_sim.graph = g;
         paths;
         latency_ms = Geo.latency_table g;
         demand;
         strategy = Strategy.Load_adaptive;
         width = 2;
         plan = Fault_plan.plan [];
         capacity_scale = 0.01;
         slot_s = 1.0;
         slots = 120;
         adapt_margin = 1.25;
         metric_labels = [ ("cell", "bench") ];
       }
     in
     (g, cfg, paths))

let beaconing_run g algorithm rounds =
  let cfg =
    {
      Beaconing.default_config with
      Beaconing.algorithm;
      Beaconing.duration = 600.0 *. float_of_int rounds;
    }
  in
  Beaconing.run g cfg

let tests =
  [
    (* Substrate primitives. *)
    Test.make ~name:"crypto/sha256-1KiB" (Staged.stage (fun () -> Sha256.digest one_kib));
    Test.make ~name:"crypto/hop-field-mac"
      (Staged.stage (fun () ->
           Segment.hop_mac (Lazy.force keys) ~as_idx:7 ~if1:2 ~if2:5 ~expiry:21600.0));
    Test.make ~name:"core/pcb-extend"
      (Staged.stage (fun () ->
           Pcb.extend (Lazy.force sample_pcb) ~asn:1 ~ingress:2 ~egress:3 ~link:9
             ~peers:[||]));
    Test.make ~name:"core/beacon-store-insert"
      (Staged.stage (fun () ->
           let s = Beacon_store.create ~limit:60 in
           ignore (Beacon_store.insert s ~now:0.0 (Lazy.force sample_pcb))));
    Test.make ~name:"core/diversity-score"
      (Staged.stage
         (let st = Diversity_state.create ~n_as:64 in
          Diversity_state.increment st ~origin:1 ~neighbor:2 ~links:[| 1; 2; 3 |] ~extra:4;
          let p = Beacon_policy.default_div_params in
          fun () ->
            let gm =
              Diversity_state.counters_gm st ~origin:1 ~neighbor:2 ~links:[| 1; 2; 3 |]
                ~extra:4
            in
            Beacon_policy.score_fresh p
              ~ds:(Beacon_policy.diversity_of_gm p gm)
              ~age:600.0 ~lifetime:21600.0));
    (* Table 1: the taxonomy itself is cheap; bench the grounding
       component, a path-server lookup round. *)
    Test.make ~name:"table1/path-server-lookup"
      (Staged.stage
         (let ps = Path_server.create () in
          fun () -> Path_server.lookup_down ps ~now:1.0 ~leaf:42));
    (* Figure 5 kernels: one BGP routing table; one baseline beaconing
       round and one diversity round on the same small core (the
       ablation the overhead comparison rests on). *)
    Test.make ~name:"fig5/bgp-routing-table"
      (Staged.stage (fun () -> Bgp_routes.compute (Lazy.force small_core) ~dst:0));
    Test.make ~name:"fig5/beaconing-baseline-3rounds"
      (Staged.stage (fun () ->
           beaconing_run (Lazy.force small_core) Beacon_policy.Baseline 3));
    Test.make ~name:"fig5/beaconing-diversity-3rounds"
      (Staged.stage (fun () ->
           beaconing_run (Lazy.force small_core)
             (Beacon_policy.Diversity Beacon_policy.default_div_params)
             3));
    (* Figure 6 kernel: a max-flow path-quality query. *)
    Test.make ~name:"fig6/maxflow-optimum"
      (Staged.stage (fun () ->
           Path_quality.optimum (Lazy.force small_core) ~src:0 ~dst:7));
    (* Figures 7-9 kernel: a full SCIONLab beaconing horizon. *)
    Test.make ~name:"fig7-9/scionlab-baseline-12rounds"
      (Staged.stage (fun () ->
           beaconing_run (Lazy.force scionlab) Beacon_policy.Baseline 12));
    (* Resilience kernels: compiling a day of stochastic faults for the
       small core, and the beacon-store purge scan a revocation triggers. *)
    Test.make ~name:"faults/plan-compile-day"
      (Staged.stage
         (let plan =
            Fault_plan.plan ~seed:42L
              [
                Fault_plan.Stochastic
                  { mtbf = 7200.0; mttr = 900.0; start = 0.0; until = 86400.0 };
              ]
          in
          fun () -> Fault_plan.compile ~graph:(Lazy.force small_core) plan));
    Test.make ~name:"faults/store-drop-link-scan"
      (Staged.stage
         (let s = Beacon_store.create ~limit:128 in
          let p = Pcb.origin_pcb ~origin:0 ~now:0.0 ~lifetime:21600.0 in
          for i = 1 to 100 do
            ignore
              (Beacon_store.insert s ~now:0.0
                 (Pcb.extend p ~asn:0 ~ingress:0 ~egress:1 ~link:i ~peers:[||]))
          done;
          fun () -> Beacon_store.drop_link s ~link:0));
    (* Supervision kernels: the per-checkpoint cost of the pathdyn soak
       (snapshot encode/decode and the invariant gate, at the fig5
       small-core scale) and the per-round watchdog / supervised-map
       overhead every supervised experiment pays. *)
    Test.make ~name:"supervise/soak-encode-small-core"
      (Staged.stage
         (let t = Lazy.force bench_soak_trial in
          fun () -> Soak.encode t));
    Test.make ~name:"supervise/soak-decode-small-core"
      (Staged.stage
         (let cfg, bytes = Lazy.force bench_soak_bytes in
          fun () -> Soak.restore cfg bytes));
    Test.make ~name:"supervise/invariants-check"
      (Staged.stage
         (let ctx = Soak.invariant_ctx (Lazy.force bench_soak_trial) in
          fun () -> Invariants.check_all ctx));
    Test.make ~name:"supervise/watchdog-check"
      (Staged.stage
         (let wd = Watchdog.start ~label:"bench" (Some 3600.0) in
          fun () -> Watchdog.check wd));
    Test.make ~name:"supervise/map-16-noop-jobs"
      (Staged.stage
         (let input = Array.init 16 (fun i -> i) in
          fun () ->
            Supervise.map ~jobs:1 ~base_seed:1L
              (fun ~obs:_ ~seed:_ ~watchdog:_ i -> i)
              input));
    (* Traffic-engine kernels: one strategy decision over a real
       offered set, the per-(de)admission link-load update, and the
       full flow-scheduling loop (admission, selection, fluid
       progress) over a 120-slot workload. *)
    Test.make ~name:"traffic/strategy-select"
      (Staged.stage
         (let g, _, paths = Lazy.force bench_traffic in
          let ctx =
            { Strategy.latency_ms = Geo.latency_table g;
              load = Link_load.create ~capacity_scale:0.01 g }
          in
          let offered =
            Array.fold_left
              (fun best o -> if Array.length o > Array.length best then o else best)
              [||] paths
          in
          fun () -> Strategy.select Strategy.Load_adaptive ctx ~width:3 offered));
    Test.make ~name:"traffic/link-load-update"
      (Staged.stage
         (let g, _, paths = Lazy.force bench_traffic in
          let load = Link_load.create ~capacity_scale:0.01 g in
          let links =
            (Array.fold_left
               (fun best o -> if Array.length o > Array.length best then o else best)
               [||] paths).(0)
              .Fwd_path.links
          in
          fun () ->
            Link_load.add_path load links;
            ignore (Link_load.fair_share load links);
            Link_load.remove_path load links));
    Test.make ~name:"traffic/sim-120-slots"
      (Staged.stage
         (let _, cfg, _ = Lazy.force bench_traffic in
          fun () ->
            let t = Traffic_sim.create cfg in
            Traffic_sim.advance t ~upto:(Traffic_sim.slots_total t);
            Traffic_sim.finish t));
    (* Ablations: the design choices called out in DESIGN.md. *)
    Test.make ~name:"ablation/diversity-arith-mean-3rounds"
      (Staged.stage (fun () ->
           beaconing_run (Lazy.force small_core)
             (Beacon_policy.Diversity
                { Beacon_policy.default_div_params with
                  Beacon_policy.mean_kind = Beacon_policy.Arithmetic })
             3));
    Test.make ~name:"ablation/gm-link-counters"
      (Staged.stage
         (let st = Diversity_state.create ~n_as:64 in
          Diversity_state.increment st ~origin:1 ~neighbor:2 ~links:[| 1; 2; 3; 4; 5 |]
            ~extra:6;
          fun () ->
            Diversity_state.counters_gm st ~origin:1 ~neighbor:2
              ~links:[| 1; 2; 3; 4; 5 |] ~extra:6));
  ]

let run_benchmarks ~quick () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let quota = if quick then Time.millisecond 50.0 else Time.second 0.5 in
  let limit = if quick then 200 else 2000 in
  let cfg = Benchmark.cfg ~limit ~quota ~kde:(Some 1000) () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"scion" ~fmt:"%s %s" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> est
          | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  line "Micro-benchmarks (monotonic clock, OLS estimate per run)";
  Table.print
    ~header:[ "benchmark"; "time/run" ]
    ~rows:
      (List.map
         (fun (name, ns) ->
           let pretty =
             if Float.is_nan ns then "n/a"
             else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
             else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
             else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
             else Printf.sprintf "%.0f ns" ns
           in
           [ name; pretty ])
         rows);
  rows

(* Machine-readable results, one object per benchmark with the OLS
   nanoseconds-per-run estimate. Consumed by CI trend tracking. *)
let write_json ~file ~quick ~elapsed_s rows =
  let result (name, ns) =
    Obs_json.Obj
      [ ("name", Obs_json.String name); ("ns_per_run", Obs_json.Float ns) ]
  in
  let doc =
    Obs_json.Obj
      [
        ("schema", Obs_json.String "scion-bench/1");
        ("quick", Obs_json.Bool quick);
        ("elapsed_s", Obs_json.Float elapsed_s);
        ("results", Obs_json.List (List.map result rows));
      ]
  in
  let oc = open_out file in
  output_string oc (Obs_json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "results written to %s\n" file

let () =
  let quick = ref false in
  let out = ref "bench.json" in
  let jobs = ref 1 in
  let spec =
    [
      ("--quick", Arg.Set quick, " smoke mode: reduced regeneration, 50 ms quota");
      ("--out", Arg.Set_string out, "FILE JSON results file (default bench.json)");
      ( "--jobs",
        Arg.Set_int jobs,
        "N regenerate with N domains (0 = one per core; results are identical)" );
    ]
  in
  Arg.parse (Arg.align spec)
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "bench/main.exe [--quick] [--jobs N] [--out FILE]";
  let jobs = if !jobs = 0 then Runner.default_jobs () else !jobs in
  let t0 = Unix.gettimeofday () in
  regenerate ~quick:!quick ~jobs ();
  let rows = run_benchmarks ~quick:!quick () in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  write_json ~file:!out ~quick:!quick ~elapsed_s rows;
  Printf.printf "\n[bench completed in %.1f s]\n" elapsed_s
